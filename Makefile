GO ?= go

.PHONY: build test vet race verify determinism bench bench-serve bench-chaos microbench clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the tier-1 gate: everything must build, vet clean, and pass
# under the race detector.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# determinism runs the E14 chaos sweep twice with the same seed at
# different worker-pool sizes, the E16 scaling sweep at two shard counts
# and at two commit-lane counts, and the E17 observability run across
# both axes, requiring byte-identical reports every time: neither the
# sharded replication runner, the epoch-barrier fleet executor, nor the
# parallel commit lanes may leak scheduling order into results,
# telemetry, fault plans, sampled series, or flight-recorder logs.
determinism:
	$(GO) build -o /tmp/vdapbench ./cmd/vdapbench
	/tmp/vdapbench -exp chaos -seed 7 -reps 4 -parallel 1 > /tmp/chaos-p1.txt
	/tmp/vdapbench -exp chaos -seed 7 -reps 4 -parallel 4 > /tmp/chaos-p4.txt
	diff -u /tmp/chaos-p1.txt /tmp/chaos-p4.txt
	@echo "determinism: chaos reports byte-identical across -parallel levels"
	/tmp/vdapbench -exp scale -seed 7 -vehicles 60,120 -shards 1 -lanes 1 -benchout /tmp/scale-s1.json 2>/dev/null > /tmp/scale-s1.txt
	/tmp/vdapbench -exp scale -seed 7 -vehicles 60,120 -shards 4 -lanes 1 -benchout /tmp/scale-s4.json 2>/dev/null > /tmp/scale-s4.txt
	diff -u /tmp/scale-s1.txt /tmp/scale-s4.txt
	@echo "determinism: scale reports byte-identical across -shards levels"
	/tmp/vdapbench -exp scale -seed 7 -vehicles 60,120 -shards 4 -lanes 4 -benchout /tmp/scale-l4.json 2>/dev/null > /tmp/scale-l4.txt
	diff -u /tmp/scale-s4.txt /tmp/scale-l4.txt
	@echo "determinism: scale reports byte-identical across -lanes levels"
	/tmp/vdapbench -exp obs -seed 7 -reps 2 -parallel 1 -shards 1 -runreport /tmp/obs-p1.json 2>/dev/null > /tmp/obs-p1.txt
	/tmp/vdapbench -exp obs -seed 7 -reps 2 -parallel 4 -shards 1 -runreport /tmp/obs-p4.json 2>/dev/null > /tmp/obs-p4.txt
	diff -u /tmp/obs-p1.txt /tmp/obs-p4.txt
	diff -u /tmp/obs-p1.json /tmp/obs-p4.json
	@echo "determinism: obs series + events byte-identical across -parallel levels"
	/tmp/vdapbench -exp obs -seed 7 -reps 2 -parallel 2 -shards 4 -runreport /tmp/obs-s4.json 2>/dev/null > /tmp/obs-s4.txt
	diff -u /tmp/obs-p1.txt /tmp/obs-s4.txt
	diff -u /tmp/obs-p1.json /tmp/obs-s4.json
	@echo "determinism: obs series + events byte-identical across -shards levels"
	/tmp/vdapbench -exp chaosserve -clients 0 -seed 7 -parallel 1 > /tmp/netchaos-p1.txt
	/tmp/vdapbench -exp chaosserve -clients 0 -seed 7 -parallel 4 > /tmp/netchaos-p4.txt
	diff -u /tmp/netchaos-p1.txt /tmp/netchaos-p4.txt
	@echo "determinism: E19 chaos plan byte-identical across -parallel levels"
	/tmp/vdapbench -exp ddi -seed 7 -records 200000 -parallel 1 -benchout /tmp/ddi-p1.json 2>/dev/null > /tmp/ddi-p1.txt
	/tmp/vdapbench -exp ddi -seed 7 -records 200000 -parallel 4 -benchout /tmp/ddi-p4.json 2>/dev/null > /tmp/ddi-p4.txt
	diff -u /tmp/ddi-p1.txt /tmp/ddi-p4.txt
	@echo "determinism: E20 DDI query digest byte-identical across -parallel levels"

# bench runs the tracked E15 hot-path suite, the E16 scaling sweep, and
# the E20 columnar DDI store sweep (10M-record corpus), refreshing
# BENCH_PERF.json (schema openvdap.bench_perf/v1) — one point in the
# repo's performance trajectory. For the raw per-package microbenchmarks
# use `make microbench`.
bench:
	$(GO) build -o /tmp/vdapbench ./cmd/vdapbench
	/tmp/vdapbench -exp perf -benchout BENCH_PERF.json
	/tmp/vdapbench -exp scale -benchout BENCH_PERF.json
	/tmp/vdapbench -exp ddi -benchout BENCH_PERF.json > /dev/null
	/tmp/vdapbench -exp obs -runreport RUN_REPORT.json > /dev/null

# bench-serve runs the E18 serving-tier load test at full scale — 1000
# concurrent clients against a live advancing platform — and refreshes
# BENCH_SERVE.json (schema openvdap.bench_serve/v1): per-endpoint
# p50/p99/p999 latency, error rates, and response-cache hit ratios.
bench-serve:
	$(GO) build -o /tmp/vdapbench ./cmd/vdapbench
	/tmp/vdapbench -exp serve -clients 1000 -servedur 5s -serveout BENCH_SERVE.json

# bench-chaos runs the E19 paired chaos-proxy load test — the same seeded
# network-fault plan with client resilience off, then on — and refreshes
# BENCH_CHAOS.json (schema openvdap.bench_chaos/v1): paired success rates,
# retries, hedge wins, stream reconnects, and latency percentiles.
bench-chaos:
	$(GO) build -o /tmp/vdapbench ./cmd/vdapbench
	/tmp/vdapbench -exp chaosserve -clients 200 -servedur 4s -seed 1 -chaosout BENCH_CHAOS.json

microbench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...

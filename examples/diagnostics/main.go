// Real-time diagnostics: the paper's §II-A service. The vehicle collects
// OBD telemetry into DDI continuously; a diagnostics service analyzes
// recent windows to predict faults; an injected coolant fault surfaces as
// trouble codes, the prediction flags it, and the old data migrates to the
// cloud community archive under a pseudonym.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/ddi"
	"repro/internal/edgeos"
	"repro/internal/sensors"
	"repro/internal/tasks"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("diagnostics: ", err)
	}
}

func run() error {
	dataDir, err := os.MkdirTemp("", "openvdap-diag-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	platform, err := core.New(core.DefaultConfig(dataDir))
	if err != nil {
		return err
	}
	defer platform.Close()

	svc := &edgeos.Service{
		Name:     "real-time-diagnostics",
		Priority: edgeos.PriorityInteractive,
		Deadline: 2 * time.Second,
		DAG:      tasks.Diagnostics(),
		Image:    []byte("diagnostics-v1"),
	}
	if err := platform.InstallService(svc); err != nil {
		return err
	}
	if err := platform.StartCollection(time.Second); err != nil {
		return err
	}

	fmt.Println("== Real-time diagnostics ==")

	// Healthy phase: two minutes of driving.
	if err := platform.Engine().RunUntil(2 * time.Minute); err != nil {
		return err
	}
	report, err := analyzeWindow(platform, time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("t=%v healthy check : %s\n", platform.Engine().Now(), report)

	// Fault injection: the engine starts overheating.
	platform.DDI().OBD().InjectFault(sensors.FaultOverheat)
	fmt.Println("-- injecting coolant overheat fault --")
	if err := platform.Engine().RunUntil(4 * time.Minute); err != nil {
		return err
	}
	report, err = analyzeWindow(platform, time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("t=%v fault check   : %s\n", platform.Engine().Now(), report)

	// Run the diagnostics service (the on-platform compute path).
	res, err := platform.InvokeService("real-time-diagnostics")
	if err != nil {
		return err
	}
	fmt.Printf("diagnostics service ran via %s/%s in %v\n", res.Pipeline, res.Dest, res.Latency)

	// Nightly migration: everything older than 3 minutes goes to the
	// cloud community archive under the current pseudonym.
	platform.StopCollection()
	n, dur, err := platform.MigrateOldData(3 * time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("migrated %d records to the cloud in %v (archive now %d records, %d bytes)\n",
		n, dur.Round(time.Millisecond), platform.Cloud().Data().Count(), platform.Cloud().Data().Bytes())
	fmt.Printf("local store retains %d recent records\n", platform.DDI().Store().Count())
	return nil
}

// analyzeWindow summarizes the last `window` of OBD data: max coolant
// temperature and any diagnostic trouble codes.
func analyzeWindow(platform *core.Platform, window time.Duration) (string, error) {
	now := platform.Engine().Now()
	from := time.Duration(0)
	if now > window {
		from = now - window
	}
	recs, _, err := platform.DDI().Download(now, ddi.Query{Source: ddi.SourceOBD, From: from, To: now})
	if err != nil {
		return "", err
	}
	maxCoolant := 0.0
	codes := map[string]int{}
	for _, r := range recs {
		var reading sensors.OBDReading
		if err := json.Unmarshal(r.Payload, &reading); err != nil {
			return "", err
		}
		if reading.CoolantTempC > maxCoolant {
			maxCoolant = reading.CoolantTempC
		}
		for _, c := range reading.DTCs {
			codes[c]++
		}
	}
	verdict := "OK"
	if len(codes) > 0 || maxCoolant > 105 {
		verdict = "FAULT PREDICTED — schedule service"
	}
	return fmt.Sprintf("%d samples, max coolant %.1f C, DTCs %v => %s",
		len(recs), maxCoolant, codes, verdict), nil
}

// Convoy: the paper's §III-C collaboration story. Four CAVs drive the
// same corridor; each needs per-segment object detection and fresh HD-map
// tiles. With OpenVDAP's collaboration layer, one convoy member computes
// each segment's perception result and the rest pull it over DSRC, while
// the HD-map prefetcher keeps tile lookups off the critical path.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/collab"
	"repro/internal/geo"
	"repro/internal/hardware"
	"repro/internal/hdmap"
	"repro/internal/sim"
	"repro/internal/vdapcrypto"
)

const (
	convoySize = 4
	driveTime  = 3 * time.Minute
)

func main() {
	if err := run(); err != nil {
		log.Fatal("convoy: ", err)
	}
}

func run() error {
	road, err := geo.NewRoad(50000)
	if err != nil {
		return err
	}
	tx2, err := hardware.Lookup(hardware.DeviceTX2MaxP)
	if err != nil {
		return err
	}
	detectCost, err := tx2.ExecTime(hardware.DNNInference, hardware.InceptionV3GFLOP)
	if err != nil {
		return err
	}

	fmt.Println("== Convoy collaboration + HD-map prefetch ==")
	fmt.Printf("%d vehicles, %v drive at 35 MPH; detection costs %v on a TX2\n\n",
		convoySize, driveTime, detectCost.Round(time.Millisecond))

	convoy, err := collab.NewConvoy(300)
	if err != nil {
		return err
	}
	keyer, err := collab.NewKeyer(100, 2*time.Second)
	if err != nil {
		return err
	}
	var vehicles []*collab.Vehicle
	var maps []*hdmap.Service
	for i := 0; i < convoySize; i++ {
		cache, err := collab.NewCache(keyer, 10*time.Second)
		if err != nil {
			return err
		}
		scheme, err := vdapcrypto.NewPseudonymScheme(
			[]byte(fmt.Sprintf("convoy-vehicle-%d-secret-material!", i)), 10*time.Minute)
		if err != nil {
			return err
		}
		v := &collab.Vehicle{
			Name:      fmt.Sprintf("cav-%d", i),
			Mobility:  geo.Mobility{Road: road, SpeedMS: geo.MPH(35), StartX: float64(i) * 25},
			Cache:     cache,
			Pseudonym: scheme.At,
		}
		if err := convoy.Add(v); err != nil {
			return err
		}
		vehicles = append(vehicles, v)
		m, err := hdmap.New(hdmap.Config{CacheTiles: 32}, sim.NewRNG(int64(100+i)))
		if err != nil {
			return err
		}
		maps = append(maps, m)
	}

	var sharedCost, mapBlocked time.Duration
	for now := time.Duration(0); now < driveTime; now += time.Second {
		for i, v := range vehicles {
			// HD map: prefetch ahead, then the on-path lookup must be free.
			if _, _, err := maps[i].Prefetch(v.Mobility, now, 15*time.Second); err != nil {
				return err
			}
			_, blocked, err := maps[i].Lookup(v.Mobility.PositionAt(now).X)
			if err != nil {
				return err
			}
			mapBlocked += blocked

			// Perception: compute or borrow.
			key := keyer.For("object-detect", v.Mobility.PositionAt(now).X, now)
			_, cost, err := convoy.Obtain(v, key, now, func() (collab.Result, time.Duration, error) {
				return collab.Result{At: now, Bytes: 2048}, detectCost, nil
			})
			if err != nil {
				return err
			}
			sharedCost += cost
		}
	}

	totalComputed, totalBorrowed := 0, 0
	for _, v := range vehicles {
		hits, misses := v.Cache.Stats()
		fmt.Printf("%s: computed %3d, borrowed %3d, cache %d/%d hit/miss\n",
			v.Name, v.Computed(), v.Borrowed(), hits, misses)
		totalComputed += v.Computed()
		totalBorrowed += v.Borrowed()
	}
	soloCost := time.Duration(totalComputed+totalBorrowed) * detectCost
	fmt.Printf("\nperception: %d computations + %d DSRC borrows (cost %v; solo would be %v, %.1fx saved)\n",
		totalComputed, totalBorrowed, sharedCost.Round(time.Millisecond),
		soloCost.Round(time.Millisecond), float64(soloCost)/float64(sharedCost))
	fmt.Printf("HD map: %v of blocking fetches across the convoy (prefetcher active)\n", mapBlocked)
	if mapBlocked == 0 {
		fmt.Println("        every on-path tile lookup was served from cache")
	}
	return nil
}

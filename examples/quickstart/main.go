// Quickstart: assemble an OpenVDAP platform, install a polymorphic
// service, invoke it, collect some driving data, and query it through the
// libvdap RESTful API — the minimal end-to-end tour of the public surface.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/edgeos"
	"repro/internal/libvdap"
	"repro/internal/tasks"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("quickstart: ", err)
	}
}

func run() error {
	dataDir, err := os.MkdirTemp("", "openvdap-quickstart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	// 1. Bring up a vehicle platform: a 20 km corridor with LTE towers
	// and RSUs, a heterogeneous VCU, EdgeOSv, DDI, and the cloud tier.
	platform, err := core.New(core.DefaultConfig(dataDir))
	if err != nil {
		return err
	}
	defer platform.Close()
	fmt.Println("== OpenVDAP quickstart ==")
	fmt.Printf("VCU devices: %d, offload sites: %d\n",
		len(platform.MHEP().Devices()), len(platform.Offload().Sites()))

	// 2. Install a polymorphic service (license-plate search, three
	// pipelines) under container isolation with attestation.
	svc := &edgeos.Service{
		Name:     "kidnapper-search",
		Priority: edgeos.PriorityInteractive,
		Deadline: 2 * time.Second,
		DAG:      tasks.ALPR(),
		Image:    []byte("mobile-a3-v1"),
	}
	if err := platform.InstallService(svc); err != nil {
		return err
	}
	if err := platform.Security().Attest("kidnapper-search"); err != nil {
		return err
	}
	fmt.Println("service installed and attested")

	// 3. Invoke it: elastic management evaluates every pipeline against
	// the current network and platform load and runs the best one.
	res, err := platform.InvokeService("kidnapper-search")
	if err != nil {
		return err
	}
	fmt.Printf("invocation: pipeline=%s dest=%s latency=%v energy=%.2f J\n",
		res.Pipeline, res.Dest, res.Latency, res.EnergyJ)

	// 4. Collect a minute of driving data into DDI.
	if err := platform.StartCollection(time.Second); err != nil {
		return err
	}
	if err := platform.Engine().RunUntil(platform.Engine().Now() + time.Minute); err != nil {
		return err
	}
	platform.StopCollection()
	fmt.Printf("DDI holds %d records after one minute\n", platform.DDI().Store().Count())

	// 5. Query it back over the RESTful API with the Go client.
	ts := httptest.NewServer(platform.API())
	defer ts.Close()
	client, err := libvdap.NewClient(ts.URL, nil)
	if err != nil {
		return err
	}
	recs, latencyMS, err := client.QueryData("obd", 0, platform.Engine().Now().Seconds(), 5)
	if err != nil {
		return err
	}
	fmt.Printf("API query: %d OBD records, simulated latency %.3f ms\n", len(recs), latencyMS)
	models, err := client.Models()
	if err != nil {
		return err
	}
	fmt.Printf("model library: %d models available\n", len(models))
	fmt.Println("quickstart complete")
	return nil
}

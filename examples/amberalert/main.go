// Amber alert: the paper's mobile-A3 scenario. A kidnapper-search service
// scans dash-camera frames for a target license plate while the vehicle
// drives; elastic management re-picks the execution pipeline as network
// conditions change with speed, and matches are shared with the
// vehicle-recorder service through the authenticated Data Sharing module.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/edgeos"
	"repro/internal/sensors"
	"repro/internal/tasks"
)

const targetPlate = "KDN-777"

func main() {
	if err := run(); err != nil {
		log.Fatal("amberalert: ", err)
	}
}

func run() error {
	dataDir, err := os.MkdirTemp("", "openvdap-amber-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	platform, err := core.New(core.DefaultConfig(dataDir))
	if err != nil {
		return err
	}
	defer platform.Close()

	// Install the polymorphic search service.
	svc := &edgeos.Service{
		Name:     "kidnapper-search",
		Priority: edgeos.PriorityInteractive,
		Deadline: 2 * time.Second,
		DAG:      tasks.ALPR(),
		Image:    []byte("mobile-a3-v1"),
	}
	if err := platform.InstallService(svc); err != nil {
		return err
	}

	// Wire data sharing: A3 publishes matches; the recorder subscribes.
	sharing := platform.Sharing()
	a3Tok, err := sharing.Enroll("kidnapper-search")
	if err != nil {
		return err
	}
	recTok, err := sharing.Enroll("vehicle-recorder")
	if err != nil {
		return err
	}
	if err := sharing.Grant("a3-matches", "kidnapper-search", "pub"); err != nil {
		return err
	}
	if err := sharing.Grant("a3-matches", "vehicle-recorder", "sub"); err != nil {
		return err
	}

	camera, err := sensors.NewCamera(1280, 720, 30, 2.5, platform.Engine().RNG().Fork())
	if err != nil {
		return err
	}

	fmt.Println("== AMBER alert search (mobile A3) ==")
	fmt.Printf("target plate: %s\n\n", targetPlate)

	// Drive three legs at different speeds; scan one frame per second.
	legs := []struct {
		mph     float64
		seconds int
	}{
		{0, 20},  // parked at a light: offloading is cheap
		{35, 30}, // urban cruise
		{70, 30}, // highway: cellular degrades, pipelines adapt
	}
	// The suspect vehicle passes twice during the drive.
	sightings := map[int]bool{25: true, 61: true}
	matches := 0
	elapsed := 0
	pipelineUse := map[string]int{}
	for _, leg := range legs {
		platform.SetSpeedMPH(leg.mph)
		var legLatency time.Duration
		for s := 0; s < leg.seconds; s++ {
			frame := camera.Capture(platform.Engine().Now())
			elapsed++
			if sightings[elapsed] {
				frame.Plates = append(frame.Plates, targetPlate)
			}
			res, err := platform.InvokeService("kidnapper-search")
			if err != nil {
				return err
			}
			if res.HungUp {
				continue
			}
			legLatency += res.Latency
			pipelineUse[res.Pipeline]++
			// The recognizer stage "reads" the frame's plates; a match is
			// published to the recorder.
			for _, plate := range frame.Plates {
				if plate == targetPlate {
					matches++
					payload := fmt.Sprintf(`{"plate":%q,"at":%.1f,"x":%.1f}`,
						plate, platform.Engine().Now().Seconds(), frame.At.Seconds())
					if err := sharing.Publish("kidnapper-search", a3Tok, "a3-matches",
						platform.Engine().Now(), []byte(payload)); err != nil {
						return err
					}
				}
			}
			// Advance one second of driving between frames.
			if err := platform.Engine().RunUntil(platform.Engine().Now() + time.Second); err != nil {
				return err
			}
		}
		st, err := platform.Elastic().Stats("kidnapper-search")
		if err != nil {
			return err
		}
		avg := time.Duration(0)
		if n := leg.seconds; n > 0 {
			avg = legLatency / time.Duration(n)
		}
		fmt.Printf("leg @ %2.0f MPH: avg scan latency %8v, hang-ups so far %d\n",
			leg.mph, avg.Round(time.Millisecond), st.HangUps)
	}

	fmt.Printf("\npipeline usage across the drive: %v\n", pipelineUse)
	got, err := sharing.Fetch("vehicle-recorder", recTok, "a3-matches", 0)
	if err != nil {
		return err
	}
	fmt.Printf("recorder received %d match report(s); camera showed the plate %d time(s)\n",
		len(got), matches)
	for _, m := range got {
		fmt.Printf("  match from %s at t=%v: %s\n", m.From, m.At.Round(time.Second), m.Payload)
	}
	return nil
}

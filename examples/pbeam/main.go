// pBEAM: the paper's §IV-E personalized driving-behavior pipeline, end to
// end with real training and real compression: a common model (cBEAM) is
// trained on population data "in the cloud", compressed with Deep
// Compression (prune → weight sharing → Huffman), shipped to the vehicle,
// fine-tuned on the driver's own telemetry into pBEAM, registered in the
// libvdap model library, and served through the RESTful API — where an
// insurance-style client scores the driver.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/libvdap"
	"repro/internal/models"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("pbeam: ", err)
	}
}

func run() error {
	dataDir, err := os.MkdirTemp("", "openvdap-pbeam-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	platform, err := core.New(core.DefaultConfig(dataDir))
	if err != nil {
		return err
	}
	defer platform.Close()

	fmt.Println("== pBEAM: cloud pre-train -> compress -> edge transfer-learn ==")
	driver := models.SyntheticDriver("alice", 4242)
	res, err := models.BuildPBEAM(models.PBEAMConfig{}, driver, sim.NewRNG(4242))
	if err != nil {
		return err
	}
	st := res.CompressStats
	fmt.Printf("cBEAM:   %d params, %d bytes dense\n", res.CBEAM.ParamCount(), st.OriginalBytes)
	fmt.Printf("shipped: %d bytes after Deep Compression (%.1fx, %.0f%% pruned, %d-bit codebooks)\n",
		st.CompressedBytes, st.Ratio, st.PrunedFraction*100, st.CodebookBits)
	fmt.Printf("accuracy on %s's own held-out driving data:\n", driver.Name)
	fmt.Printf("  population cBEAM      %.1f%%\n", res.CBEAMDriverAccuracy*100)
	fmt.Printf("  compressed cBEAM      %.1f%%\n", res.CompressedDriverAccuracy*100)
	fmt.Printf("  personalized pBEAM    %.1f%%\n", res.PBEAMDriverAccuracy*100)

	// Register both models in the vehicle's library.
	reg := platform.Registry()
	if err := reg.RegisterMLP("cbeam", libvdap.KindDrivingBehavior, res.CBEAM, false, false, 0.05); err != nil {
		return err
	}
	if err := reg.RegisterMLP("pbeam-alice", libvdap.KindDrivingBehavior, res.PBEAM, true, true, 0.02); err != nil {
		return err
	}

	// A third-party client (e.g. an insurer's app) scores the driver over
	// the RESTful API using pBEAM.
	ts := httptest.NewServer(platform.API())
	defer ts.Close()
	client, err := libvdap.NewClient(ts.URL, nil)
	if err != nil {
		return err
	}
	sample, err := models.GenerateDataset(200, driver, sim.NewRNG(777))
	if err != nil {
		return err
	}
	counts := make([]int, models.NumStyles)
	start := time.Now()
	for i := range sample.X {
		resp, err := client.Predict("pbeam-alice", sample.X[i])
		if err != nil {
			return err
		}
		counts[resp.Class]++
	}
	names := []string{"cautious", "normal", "aggressive"}
	fmt.Printf("\ninsurer scored %d trips over the API in %v:\n", sample.Len(), time.Since(start).Round(time.Millisecond))
	for c, n := range counts {
		fmt.Printf("  %-10s %3d trips (%.0f%%)\n", names[c], n, 100*float64(n)/float64(sample.Len()))
	}
	aggressiveShare := float64(counts[models.StyleAggressive]) / float64(sample.Len())
	verdict := "standard premium"
	if aggressiveShare > 0.45 {
		verdict = "premium surcharge"
	} else if aggressiveShare < 0.25 {
		verdict = "safe-driver discount"
	}
	fmt.Printf("underwriting verdict: %s\n", verdict)
	return nil
}

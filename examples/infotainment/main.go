// Infotainment: the paper's §II-C workload and Figure-2 drive test in one.
// A backseat passenger streams live video over LTE while the vehicle
// drives at increasing speed; the example reports packet/frame loss per
// leg (the Figure-2 phenomenon) and runs the decode/enhance service on the
// VCU, showing where the bandwidth-heavy service lands.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/edgeos"
	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/tasks"
	"repro/internal/video"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("infotainment: ", err)
	}
}

func run() error {
	dataDir, err := os.MkdirTemp("", "openvdap-infotainment-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	platform, err := core.New(core.DefaultConfig(dataDir))
	if err != nil {
		return err
	}
	defer platform.Close()

	svc := &edgeos.Service{
		Name:     "infotainment",
		Priority: edgeos.PriorityBackground,
		DAG:      tasks.InfotainmentDecode(),
		Image:    []byte("infotainment-v1"),
	}
	if err := platform.InstallService(svc); err != nil {
		return err
	}

	fmt.Println("== In-vehicle infotainment: live video over LTE ==")
	lte, err := network.LookupLink("lte")
	if err != nil {
		return err
	}
	profile := video.Profile1080p()
	fmt.Printf("stream: %s @ %.1f Mbps, key frame every %v\n\n",
		profile.Name, profile.BitrateMbps, profile.KeyInterval)

	fmt.Printf("%-10s %-12s %-12s %s\n", "leg", "packet loss", "frame loss", "viewer experience")
	for _, leg := range []struct {
		name string
		mph  float64
	}{
		{"parked", 0}, {"35 MPH", 35}, {"70 MPH", 70},
	} {
		mob := geo.Mobility{Road: platform.Road(), SpeedMS: geo.MPH(leg.mph)}
		ch, err := network.NewCellularChannel(lte, mob, profile.BitrateMbps, platform.Engine().RNG().Fork())
		if err != nil {
			return err
		}
		stream, err := video.NewStream(profile, time.Minute)
		if err != nil {
			return err
		}
		rpt, err := video.Upload(stream, ch)
		if err != nil {
			return err
		}
		exp := "smooth"
		switch {
		case rpt.FrameLossRate > 0.8:
			exp = "unwatchable"
		case rpt.FrameLossRate > 0.3:
			exp = "heavy stalls"
		case rpt.FrameLossRate > 0.05:
			exp = "occasional glitches"
		}
		fmt.Printf("%-10s %-12.3f %-12.3f %s\n", leg.name, rpt.PacketLossRate, rpt.FrameLossRate, exp)
	}

	// The decode/enhance pipeline runs locally: shipping raw decoded
	// frames across the network is never worth it.
	fmt.Println()
	for i := 0; i < 3; i++ {
		res, err := platform.InvokeService("infotainment")
		if err != nil {
			return err
		}
		fmt.Printf("decode+enhance chunk %d: pipeline=%s dest=%s latency=%v\n",
			i+1, res.Pipeline, res.Dest, res.Latency.Round(time.Millisecond))
	}
	st, err := platform.Elastic().Stats("infotainment")
	if err != nil {
		return err
	}
	fmt.Printf("service stats: %d invocations, %.2f J vehicle energy\n",
		st.Invocations, st.TotalEnergyJ)
	return nil
}

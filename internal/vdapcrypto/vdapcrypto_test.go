package vdapcrypto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

var testSecret = []byte("0123456789abcdef0123456789abcdef")

func TestNewPseudonymSchemeValidation(t *testing.T) {
	if _, err := NewPseudonymScheme([]byte("short"), time.Minute); err == nil {
		t.Fatal("short secret accepted")
	}
	if _, err := NewPseudonymScheme(testSecret, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestPseudonymRotation(t *testing.T) {
	s, err := NewPseudonymScheme(testSecret, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p0 := s.At(0)
	p1 := s.At(9 * time.Minute)
	p2 := s.At(11 * time.Minute)
	if p0 != p1 {
		t.Fatal("pseudonym changed within one epoch")
	}
	if p0 == p2 {
		t.Fatal("pseudonym did not rotate across epochs")
	}
	if len(p0) != 32 {
		t.Fatalf("pseudonym length = %d hex chars, want 32", len(p0))
	}
}

func TestPseudonymUnlinkabilityAcrossVehicles(t *testing.T) {
	a, _ := NewPseudonymScheme(testSecret, time.Minute)
	b, _ := NewPseudonymScheme([]byte("fedcba9876543210fedcba9876543210"), time.Minute)
	if a.At(0) == b.At(0) {
		t.Fatal("different vehicles produced identical pseudonyms")
	}
}

func TestPseudonymMine(t *testing.T) {
	s, _ := NewPseudonymScheme(testSecret, time.Minute)
	now := 30 * time.Minute
	if !s.Mine(s.At(now), now, 0) {
		t.Fatal("current pseudonym not recognized")
	}
	old := s.At(now - 5*time.Minute)
	if s.Mine(old, now, 0) {
		t.Fatal("expired pseudonym recognized without lookback")
	}
	if !s.Mine(old, now, 10*time.Minute) {
		t.Fatal("recent pseudonym not recognized within lookback")
	}
	other, _ := NewPseudonymScheme([]byte("fedcba9876543210fedcba9876543210"), time.Minute)
	if s.Mine(other.At(now), now, time.Hour) {
		t.Fatal("foreign pseudonym recognized")
	}
	if s.Mine(s.At(2*time.Minute), time.Minute, 5*time.Minute) {
		t.Fatal("future-epoch lookup with negative start recognized wrongly")
	}
}

func TestSealerRoundTrip(t *testing.T) {
	s, err := NewSealer(testSecret)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("pedestrian at (12.5, 3.2), confidence 0.93")
	env, err := s.Seal(msg, []byte("svc:pedestrian-alert"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Open(env, []byte("svc:pedestrian-alert"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestSealerRejectsWrongAssociatedData(t *testing.T) {
	s, _ := NewSealer(testSecret)
	env, _ := s.Seal([]byte("secret"), []byte("svc:a"))
	if _, err := s.Open(env, []byte("svc:b")); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("err = %v, want ErrDecrypt for wrong AD", err)
	}
}

func TestSealerRejectsTampering(t *testing.T) {
	s, _ := NewSealer(testSecret)
	env, _ := s.Seal([]byte("secret"), nil)
	env[len(env)-1] ^= 0xff
	if _, err := s.Open(env, nil); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("err = %v, want ErrDecrypt after tamper", err)
	}
	if _, err := s.Open([]byte("tiny"), nil); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("err = %v, want ErrDecrypt for short envelope", err)
	}
}

func TestSealerRejectsWrongKey(t *testing.T) {
	a, _ := NewSealer(testSecret)
	b, _ := NewSealer([]byte("fedcba9876543210fedcba9876543210"))
	env, _ := a.Seal([]byte("secret"), nil)
	if _, err := b.Open(env, nil); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("err = %v, want ErrDecrypt with wrong key", err)
	}
}

func TestSealerNoncesUnique(t *testing.T) {
	s, _ := NewSealer(testSecret)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		env, err := s.Seal([]byte("x"), nil)
		if err != nil {
			t.Fatal(err)
		}
		nonce := string(env[:12])
		if seen[nonce] {
			t.Fatal("nonce reused")
		}
		seen[nonce] = true
	}
}

func TestNewSealerValidation(t *testing.T) {
	if _, err := NewSealer([]byte("short")); err == nil {
		t.Fatal("short secret accepted")
	}
}

func TestSealerRoundTripProperty(t *testing.T) {
	s, _ := NewSealer(testSecret)
	if err := quick.Check(func(msg, ad []byte) bool {
		env, err := s.Seal(msg, ad)
		if err != nil {
			return false
		}
		got, err := s.Open(env, ad)
		if err != nil {
			return false
		}
		return bytes.Equal(got, msg)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprint(t *testing.T) {
	a := Fingerprint([]byte("service-binary-v1"))
	b := Fingerprint([]byte("service-binary-v1"))
	c := Fingerprint([]byte("service-binary-v2"))
	if a != b {
		t.Fatal("fingerprint not deterministic")
	}
	if a == c {
		t.Fatal("different data share fingerprint")
	}
	if len(a) != 16 {
		t.Fatalf("fingerprint length = %d, want 16", len(a))
	}
}

func TestSignerRoundTrip(t *testing.T) {
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("bsm payload")
	sig, err := s.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifySignature(s.PublicKey(), msg, sig) {
		t.Fatal("own signature rejected")
	}
	if VerifySignature(s.PublicKey(), []byte("other"), sig) {
		t.Fatal("signature verified for different message")
	}
	other, _ := NewSigner()
	if VerifySignature(other.PublicKey(), msg, sig) {
		t.Fatal("signature verified under wrong key")
	}
	if VerifySignature([]byte{0x02, 0x01}, msg, sig) {
		t.Fatal("garbage key verified")
	}
	if len(s.PublicKey()) != 33 {
		t.Fatalf("compressed key length = %d", len(s.PublicKey()))
	}
}

// Package vdapcrypto provides the cryptographic mechanisms EdgeOSv's
// security and privacy modules rely on: rotating HMAC-derived pseudonyms
// for privacy-preserving data sharing between vehicles and XEdge (paper
// §IV-C), and AES-GCM sealed envelopes standing in for TEE-sealed memory
// and encrypted inter-service data sharing.
package vdapcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"time"
)

// ErrDecrypt is returned when an envelope fails authentication.
var ErrDecrypt = errors.New("vdapcrypto: decryption failed")

// PseudonymScheme derives short-lived vehicle pseudonyms from a long-term
// secret. Observers (RSUs, other vehicles) see unlinkable identifiers that
// rotate every Period, while the issuing vehicle can always recognize its
// own pseudonyms.
type PseudonymScheme struct {
	secret []byte
	period time.Duration
}

// NewPseudonymScheme builds a scheme from a vehicle's long-term secret.
// Period is the rotation interval (paper: "generated and periodically
// updated by the Privacy module").
func NewPseudonymScheme(secret []byte, period time.Duration) (*PseudonymScheme, error) {
	if len(secret) < 16 {
		return nil, fmt.Errorf("vdapcrypto: secret must be at least 16 bytes, got %d", len(secret))
	}
	if period <= 0 {
		return nil, fmt.Errorf("vdapcrypto: rotation period must be positive, got %v", period)
	}
	return &PseudonymScheme{secret: append([]byte(nil), secret...), period: period}, nil
}

// Epoch returns the rotation epoch containing virtual time t.
func (s *PseudonymScheme) Epoch(t time.Duration) uint64 {
	return uint64(t / s.period)
}

// At returns the pseudonym valid at virtual time t (hex, 16 bytes).
func (s *PseudonymScheme) At(t time.Duration) string {
	var epoch [8]byte
	binary.LittleEndian.PutUint64(epoch[:], s.Epoch(t))
	mac := hmac.New(sha256.New, s.secret)
	mac.Write([]byte("openvdap-pseudonym-v1"))
	mac.Write(epoch[:])
	return hex.EncodeToString(mac.Sum(nil)[:16])
}

// Mine reports whether pseudonym p was issued by this scheme at a time
// within the epochs [t-lookback, t].
func (s *PseudonymScheme) Mine(p string, t, lookback time.Duration) bool {
	if lookback < 0 {
		lookback = 0
	}
	start := time.Duration(0)
	if t > lookback {
		start = t - lookback
	}
	for e := s.Epoch(start); e <= s.Epoch(t); e++ {
		if hmac.Equal([]byte(p), []byte(s.At(time.Duration(e)*s.period))) {
			return true
		}
	}
	return false
}

// Sealer encrypts and authenticates byte payloads with AES-256-GCM. It
// models both TEE memory sealing and the Data Sharing module's envelopes.
type Sealer struct {
	aead cipher.AEAD
	// nonceCounter produces unique nonces; GCM nonce reuse is fatal, so
	// the counter is never reset.
	nonceCounter uint64
}

// NewSealer derives an AES-256 key from the given secret via SHA-256.
func NewSealer(secret []byte) (*Sealer, error) {
	if len(secret) < 16 {
		return nil, fmt.Errorf("vdapcrypto: secret must be at least 16 bytes, got %d", len(secret))
	}
	key := sha256.Sum256(secret)
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("new cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("new gcm: %w", err)
	}
	return &Sealer{aead: aead}, nil
}

// Seal encrypts plaintext bound to the given associated data (e.g. the
// destination service name, so envelopes cannot be replayed elsewhere).
func (s *Sealer) Seal(plaintext, associated []byte) ([]byte, error) {
	nonce := make([]byte, s.aead.NonceSize())
	s.nonceCounter++
	binary.LittleEndian.PutUint64(nonce, s.nonceCounter)
	out := make([]byte, 0, len(nonce)+len(plaintext)+s.aead.Overhead())
	out = append(out, nonce...)
	return s.aead.Seal(out, nonce, plaintext, associated), nil
}

// Open authenticates and decrypts an envelope produced by Seal with the
// same secret and associated data.
func (s *Sealer) Open(envelope, associated []byte) ([]byte, error) {
	ns := s.aead.NonceSize()
	if len(envelope) < ns+s.aead.Overhead() {
		return nil, ErrDecrypt
	}
	plaintext, err := s.aead.Open(nil, envelope[:ns], envelope[ns:], associated)
	if err != nil {
		return nil, ErrDecrypt
	}
	return plaintext, nil
}

// Fingerprint returns a short stable identifier for a byte string (e.g.
// attestation measurements of service binaries).
func Fingerprint(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// Signer signs V2V messages with an ECDSA P-256 key, the mechanism class
// IEEE 1609.2 prescribes for DSRC safety messages. Each pseudonym epoch
// can carry its own signer so signatures do not link identities.
type Signer struct {
	key *ecdsa.PrivateKey
}

// NewSigner generates a fresh P-256 keypair.
func NewSigner() (*Signer, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("vdapcrypto: generate key: %w", err)
	}
	return &Signer{key: key}, nil
}

// PublicKey returns the compressed public point (33 bytes) receivers use
// to verify.
func (s *Signer) PublicKey() []byte {
	return elliptic.MarshalCompressed(elliptic.P256(), s.key.PublicKey.X, s.key.PublicKey.Y)
}

// Sign returns an ASN.1 ECDSA signature over SHA-256(data).
func (s *Signer) Sign(data []byte) ([]byte, error) {
	digest := sha256.Sum256(data)
	sig, err := ecdsa.SignASN1(rand.Reader, s.key, digest[:])
	if err != nil {
		return nil, fmt.Errorf("vdapcrypto: sign: %w", err)
	}
	return sig, nil
}

// VerifySignature checks sig over data against a compressed public key.
func VerifySignature(compressedPub, data, sig []byte) bool {
	x, y := elliptic.UnmarshalCompressed(elliptic.P256(), compressedPub)
	if x == nil {
		return false
	}
	pub := &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}
	digest := sha256.Sum256(data)
	return ecdsa.VerifyASN1(pub, digest[:], sig)
}

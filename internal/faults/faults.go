// Package faults is the platform's deterministic virtual-time fault
// injection layer (the disruption side of OpenVDAP §III/§IV-C: RSUs
// vanish behind the vehicle, LTE links degrade at speed, edge servers
// saturate and fail). A seeded Plan compiles, per site, three families of
// timed fault windows before the simulation starts:
//
//   - outages: the site goes down (Site.SetAvailable driven from the sim
//     clock) and every submission inside the window fails;
//   - link degradation: loss spikes and bandwidth collapse layered onto
//     the site's access path (offload.Engine's PathAdjuster hook);
//   - transient execution faults: Site.Submit fails inside the window
//     while estimates stay clean — the failure is a surprise the
//     offloading layer must absorb.
//
// Because the whole schedule is a pure function of (config, RNG stream)
// and every query is keyed by virtual time, injection is byte-identical
// per seed and race-clean under the sharded replication runner: each
// replication compiles its own plan from its own sim.NewStream substream.
package faults

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/xedge"
)

// PlanConfig parameterizes plan compilation. Each fault family is
// enabled by a positive mean-time-to-event; zero disables it. Event
// inter-arrival times and window lengths are exponential draws, so an
// intensity sweep scales the means.
type PlanConfig struct {
	// Horizon bounds the schedule; no window starts at or after it.
	Horizon time.Duration

	// MeanTimeToOutage is the expected up-time between site outages
	// (0 disables outages). MeanOutage is the expected outage length
	// (default 1.5s).
	MeanTimeToOutage time.Duration
	MeanOutage       time.Duration

	// MeanTimeToDegrade spaces link-degradation windows (0 disables).
	// MeanDegrade is the expected window length (default 2s). During a
	// window every link on the site's access path suffers LossDelta
	// added packet loss (default 0.35, capped at 0.95 total) and its
	// bandwidth multiplied by BandwidthFactor (default 0.25).
	MeanTimeToDegrade time.Duration
	MeanDegrade       time.Duration
	LossDelta         float64
	BandwidthFactor   float64

	// MeanTimeToExecFault spaces transient execution-fault windows
	// (0 disables). MeanExecFault is the expected window length
	// (default 600ms). Submissions inside a window fail; retrying past
	// the window succeeds — the transient/permanent distinction is the
	// window length relative to the caller's retry budget.
	MeanTimeToExecFault time.Duration
	MeanExecFault       time.Duration

	// ExemptKinds lists site kinds never faulted (e.g. keep the cloud
	// tier up to isolate edge-failure effects).
	ExemptKinds []xedge.SiteKind
}

func (c PlanConfig) withDefaults() PlanConfig {
	if c.MeanOutage <= 0 {
		c.MeanOutage = 1500 * time.Millisecond
	}
	if c.MeanDegrade <= 0 {
		c.MeanDegrade = 2 * time.Second
	}
	if c.LossDelta == 0 {
		c.LossDelta = 0.35
	}
	if c.BandwidthFactor <= 0 {
		c.BandwidthFactor = 0.25
	}
	if c.MeanExecFault <= 0 {
		c.MeanExecFault = 600 * time.Millisecond
	}
	return c
}

// Window is one half-open fault interval [From, To) in virtual time.
type Window struct {
	From time.Duration `json:"from"`
	To   time.Duration `json:"to"`
}

// contains reports whether t falls inside the window.
func (w Window) contains(t time.Duration) bool { return t >= w.From && t < w.To }

// inWindows reports whether t falls inside any of the sorted windows.
func inWindows(ws []Window, t time.Duration) bool {
	return inWindowsFrom(ws, 0, t)
}

// inWindowsFrom is inWindows starting at index cur, for callers that know
// every earlier window already ended (the epoch-cursor fast path).
func inWindowsFrom(ws []Window, cur int, t time.Duration) bool {
	for _, w := range ws[cur:] {
		if w.From > t {
			return false
		}
		if w.contains(t) {
			return true
		}
	}
	return false
}

// advanceWindowCursor moves cur past every window that ended at or before
// now. Windows are sorted and disjoint, so the skipped prefix can never
// contain a query time >= now again.
func advanceWindowCursor(ws []Window, cur int, now time.Duration) int {
	for cur < len(ws) && ws[cur].To <= now {
		cur++
	}
	return cur
}

// sitePlan is one site's compiled fault schedule.
type sitePlan struct {
	site       *xedge.Site
	outages    []Window
	degrades   []Window
	execFaults []Window

	// Per-family window cursors: index of the first window whose To is
	// still ahead of the injector's epoch cursor. Only AdvanceTo moves
	// them — once per epoch, on the single-threaded epoch boundary — so
	// the hot per-query hooks (faultAt, AdjustPath) scan read-only from
	// the cursor. That keeps them race-clean during the parallel decision
	// phase of a sharded fleet round and makes the whole schedule walk
	// amortized O(windows) per run instead of O(windows) per query.
	outageCur, degradeCur, execCur int
}

// Plan is a compiled fault schedule over a set of sites.
type Plan struct {
	cfg    PlanConfig
	sites  []*sitePlan
	byName map[string]*sitePlan
}

// NewPlan compiles a deterministic fault schedule for the given sites
// from cfg and the caller's RNG stream (hand each replication its own
// sim.NewStream substream for sharded determinism). Sites are processed
// in slice order and each family draws from its own forked substream, so
// the schedule is a pure function of (cfg, rng state, site order).
func NewPlan(cfg PlanConfig, rng *sim.RNG, sites []*xedge.Site) (*Plan, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("faults: horizon must be positive, got %v", cfg.Horizon)
	}
	if rng == nil {
		return nil, fmt.Errorf("faults: nil RNG")
	}
	if cfg.BandwidthFactor > 1 {
		return nil, fmt.Errorf("faults: bandwidth factor %v > 1 would improve the link", cfg.BandwidthFactor)
	}
	if cfg.LossDelta < 0 || cfg.LossDelta >= 1 {
		return nil, fmt.Errorf("faults: loss delta %v outside [0,1)", cfg.LossDelta)
	}
	cfg = cfg.withDefaults()
	exempt := make(map[xedge.SiteKind]bool, len(cfg.ExemptKinds))
	for _, k := range cfg.ExemptKinds {
		exempt[k] = true
	}
	p := &Plan{cfg: cfg, byName: make(map[string]*sitePlan, len(sites))}
	for _, s := range sites {
		if s == nil {
			continue
		}
		sp := &sitePlan{site: s}
		if !exempt[s.Kind()] {
			sp.outages = drawWindows(rng.Fork(), cfg.Horizon, cfg.MeanTimeToOutage, cfg.MeanOutage)
			sp.degrades = drawWindows(rng.Fork(), cfg.Horizon, cfg.MeanTimeToDegrade, cfg.MeanDegrade)
			sp.execFaults = drawWindows(rng.Fork(), cfg.Horizon, cfg.MeanTimeToExecFault, cfg.MeanExecFault)
		}
		p.sites = append(p.sites, sp)
		p.byName[s.Name()] = sp
	}
	return p, nil
}

// drawWindows alternates exponential up-time and fault-length draws until
// the horizon. meanGap <= 0 disables the family. Windows are clipped to
// the horizon and never start at t=0 (worlds boot healthy).
func drawWindows(rng *sim.RNG, horizon, meanGap, meanLen time.Duration) []Window {
	if meanGap <= 0 {
		return nil
	}
	var out []Window
	t := time.Duration(0)
	for {
		gap := time.Duration(rng.Exponential(float64(meanGap)))
		if gap < time.Millisecond {
			gap = time.Millisecond
		}
		t += gap
		if t >= horizon {
			return out
		}
		length := time.Duration(rng.Exponential(float64(meanLen)))
		if length < time.Millisecond {
			length = time.Millisecond
		}
		end := t + length
		if end > horizon {
			end = horizon
		}
		out = append(out, Window{From: t, To: end})
		t = end
	}
}

// Config returns the compiled configuration (defaults resolved).
func (p *Plan) Config() PlanConfig { return p.cfg }

// Outages returns a site's outage windows (nil for unknown sites).
func (p *Plan) Outages(site string) []Window {
	return p.windows(site, func(sp *sitePlan) []Window { return sp.outages })
}

// Degrades returns a site's link-degradation windows.
func (p *Plan) Degrades(site string) []Window {
	return p.windows(site, func(sp *sitePlan) []Window { return sp.degrades })
}

// ExecFaults returns a site's transient execution-fault windows.
func (p *Plan) ExecFaults(site string) []Window {
	return p.windows(site, func(sp *sitePlan) []Window { return sp.execFaults })
}

func (p *Plan) windows(site string, pick func(*sitePlan) []Window) []Window {
	sp, ok := p.byName[site]
	if !ok {
		return nil
	}
	out := make([]Window, len(pick(sp)))
	copy(out, pick(sp))
	return out
}

// EventCount totals scheduled fault windows across all sites.
func (p *Plan) EventCount() int {
	n := 0
	for _, sp := range p.sites {
		n += len(sp.outages) + len(sp.degrades) + len(sp.execFaults)
	}
	return n
}

// Injector applies a compiled Plan to the live simulation: it drives
// Site.SetAvailable as virtual time advances, degrades access paths
// through offload's PathAdjuster hook, and fails submissions inside
// exec-fault or outage windows. All queries are pure functions of
// (plan, virtual time), so the injector adds no nondeterminism.
//
// Concurrency: an Injector belongs to its replication's goroutine, like
// the sites it drives.
type Injector struct {
	plan   *Plan
	cursor time.Duration

	tracer   *trace.Tracer
	metrics  *telemetry.Registry
	recorder *obs.Recorder
	m        injectorMetrics
}

// SetRecorder attaches a flight recorder: every outage window entered or
// left emits a structured event stamped at the window edge. Nil detaches.
func (in *Injector) SetRecorder(rec *obs.Recorder) { in.recorder = rec }

// injectorMetrics holds the injector's interned metric handles, resolved
// once in Instrument. The per-site counters can all be resolved up front
// because the compiled plan fixes the site set, so the submission-time
// fault hook never rebuilds a metric name. Handles are nil-safe.
type injectorMetrics struct {
	siteDown      *telemetry.Counter
	siteUp        *telemetry.Counter
	degradedPaths *telemetry.Counter
	outageRejects *telemetry.Counter
	execFaults    *telemetry.Counter
	perSite       map[string]*siteFaultCounters
}

// siteFaultCounters is one site's fault counter set.
type siteFaultCounters struct {
	outage        *telemetry.Counter
	outageRejects *telemetry.Counter
	execFaults    *telemetry.Counter
}

// NewInjector wraps a compiled plan.
func NewInjector(plan *Plan) (*Injector, error) {
	if plan == nil {
		return nil, fmt.Errorf("faults: nil plan")
	}
	return &Injector{plan: plan}, nil
}

// Instrument attaches a tracer and metrics registry (either may be nil).
// Fault activity then emits `faults` spans and `faults.*` counters.
func (in *Injector) Instrument(tr *trace.Tracer, reg *telemetry.Registry) {
	in.tracer = tr
	in.metrics = reg
	in.m = injectorMetrics{
		siteDown:      reg.CounterHandle("faults.site_down"),
		siteUp:        reg.CounterHandle("faults.site_up"),
		degradedPaths: reg.CounterHandle("faults.degraded_paths"),
		outageRejects: reg.CounterHandle("faults.outage_rejects"),
		execFaults:    reg.CounterHandle("faults.exec_faults"),
		perSite:       make(map[string]*siteFaultCounters, len(in.plan.sites)),
	}
	for _, sp := range in.plan.sites {
		name := sp.site.Name()
		in.m.perSite[name] = &siteFaultCounters{
			outage:        reg.CounterHandle("faults.outage." + name),
			outageRejects: reg.CounterHandle("faults.outage_rejects." + name),
			execFaults:    reg.CounterHandle("faults.exec_faults." + name),
		}
	}
}

// siteCounters returns the interned per-site fault counter set (nil, and
// thus inert, for unknown sites or an uninstrumented injector).
func (in *Injector) siteCounters(site string) *siteFaultCounters {
	return in.m.perSite[site]
}

// Plan returns the compiled schedule.
func (in *Injector) Plan() *Plan { return in.plan }

// Attach installs the injector's submission-time fault hook on every
// planned site. Call once after construction; pair with either
// AdvanceTo (pull-based worlds: fleets invoked at explicit times) or
// Schedule (push-based worlds: a sim.Engine kernel), not both.
func (in *Injector) Attach() {
	for _, sp := range in.plan.sites {
		sp := sp
		if len(sp.outages) == 0 && len(sp.execFaults) == 0 {
			continue
		}
		name := sp.site.Name()
		sp.site.SetFaultInjector(func(now time.Duration) error {
			return in.faultAt(name, now)
		})
	}
}

// faultAt decides whether a submission to site fails at virtual time now.
// Queries at or past the epoch cursor scan from the per-family cursors; a
// query behind the cursor (pull-based worlds probing the past) falls back
// to the full scan.
func (in *Injector) faultAt(site string, now time.Duration) error {
	sp, ok := in.plan.byName[site]
	if !ok {
		return nil
	}
	outageCur, execCur := sp.outageCur, sp.execCur
	if now < in.cursor {
		outageCur, execCur = 0, 0
	}
	if inWindowsFrom(sp.outages, outageCur, now) {
		in.m.outageRejects.Inc()
		if sc := in.siteCounters(site); sc != nil {
			sc.outageRejects.Inc()
		}
		return fmt.Errorf("faults: site down at %v (scheduled outage)", now)
	}
	if inWindowsFrom(sp.execFaults, execCur, now) {
		in.m.execFaults.Inc()
		if sc := in.siteCounters(site); sc != nil {
			sc.execFaults.Inc()
		}
		return fmt.Errorf("faults: transient execution fault at %v", now)
	}
	return nil
}

// AdvanceTo applies every outage transition in (cursor, now] to the
// sites' availability flags, emitting faults.site_down / faults.site_up
// counters and one `faults.outage` span per outage window entered. Time
// never rewinds; calls with now <= cursor are no-ops.
//
// AdvanceTo is the injector's once-per-epoch step: it is the only method
// that mutates injector state (the epoch cursor and each site plan's
// per-family window cursors), so a sharded fleet calls it on the epoch
// boundary and the per-query hooks stay read-only through the parallel
// phase that follows.
func (in *Injector) AdvanceTo(now time.Duration) {
	if now <= in.cursor {
		return
	}
	for _, sp := range in.plan.sites {
		// Windows before the cursor ended at or before in.cursor, so they
		// cannot transition in (cursor, now]; later windows start after
		// now. Only the slice between needs a look.
		for _, w := range sp.outages[sp.outageCur:] {
			if w.From > now {
				break
			}
			if w.From > in.cursor {
				in.siteDown(sp.site, w)
			}
			if w.To > in.cursor && w.To <= now {
				in.siteUp(sp.site, w.To)
			}
		}
		sp.outageCur = advanceWindowCursor(sp.outages, sp.outageCur, now)
		sp.degradeCur = advanceWindowCursor(sp.degrades, sp.degradeCur, now)
		sp.execCur = advanceWindowCursor(sp.execFaults, sp.execCur, now)
		sp.site.SetAvailable(!inWindowsFrom(sp.outages, sp.outageCur, now))
	}
	in.cursor = now
}

// Schedule registers every outage transition as a kernel event so the
// sim clock itself drives Site.SetAvailable (the core.Platform path).
func (in *Injector) Schedule(eng *sim.Engine) error {
	if eng == nil {
		return fmt.Errorf("faults: nil engine")
	}
	for _, sp := range in.plan.sites {
		sp := sp
		for _, w := range sp.outages {
			w := w
			eng.At(w.From, func() { in.siteDown(sp.site, w) })
			eng.At(w.To, func() { in.siteUp(sp.site, w.To) })
		}
	}
	return nil
}

func (in *Injector) siteDown(s *xedge.Site, w Window) {
	s.SetAvailable(false)
	in.m.siteDown.Inc()
	if sc := in.siteCounters(s.Name()); sc != nil {
		sc.outage.Inc()
	}
	if in.tracer.Enabled() {
		in.tracer.SpanAt("faults", "faults.outage", w.From, w.To,
			trace.String("site", s.Name()), trace.Dur("length", w.To-w.From))
	}
	if in.recorder.Enabled() {
		in.recorder.Emit(w.From, "faults", obs.SevWarn, "outage.begin",
			obs.String("site", s.Name()), obs.Dur("length", w.To-w.From))
	}
}

func (in *Injector) siteUp(s *xedge.Site, at time.Duration) {
	s.SetAvailable(true)
	in.m.siteUp.Inc()
	if in.recorder.Enabled() {
		in.recorder.Emit(at, "faults", obs.SevInfo, "outage.end",
			obs.String("site", s.Name()))
	}
}

// AdjustPath implements offload.PathAdjuster: inside a degradation
// window the destination's access links lose LossDelta extra packets
// (total loss capped at 0.95) and keep only BandwidthFactor of their
// bandwidth. Outside windows the path is returned untouched.
//
// AdjustPath never mutates injector state (the degraded-path counter is
// atomic), so concurrent calls from the parallel decision phase of a
// sharded fleet are race-clean.
func (in *Injector) AdjustPath(dest string, p network.Path, now time.Duration) network.Path {
	sp, ok := in.plan.byName[dest]
	if !ok {
		return p
	}
	degradeCur := sp.degradeCur
	if now < in.cursor {
		degradeCur = 0
	}
	if !inWindowsFrom(sp.degrades, degradeCur, now) {
		return p
	}
	cfg := in.plan.cfg
	adj := network.Path{Name: p.Name, Links: make([]network.LinkSpec, len(p.Links))}
	copy(adj.Links, p.Links)
	for i := range adj.Links {
		adj.Links[i].UpMbps *= cfg.BandwidthFactor
		adj.Links[i].DownMbps *= cfg.BandwidthFactor
		loss := adj.Links[i].BaseLoss + cfg.LossDelta
		if loss > 0.95 {
			loss = 0.95
		}
		adj.Links[i].BaseLoss = loss
	}
	in.m.degradedPaths.Inc()
	return adj
}

// Describe renders the schedule deterministically, one line per window,
// sorted by site then time — the human-readable fault plan format.
func (p *Plan) Describe() string {
	type line struct {
		site, kind string
		w          Window
	}
	var lines []line
	for _, sp := range p.sites {
		for _, w := range sp.outages {
			lines = append(lines, line{sp.site.Name(), "outage", w})
		}
		for _, w := range sp.degrades {
			lines = append(lines, line{sp.site.Name(), "degrade", w})
		}
		for _, w := range sp.execFaults {
			lines = append(lines, line{sp.site.Name(), "exec-fault", w})
		}
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].site != lines[j].site {
			return lines[i].site < lines[j].site
		}
		if lines[i].w.From != lines[j].w.From {
			return lines[i].w.From < lines[j].w.From
		}
		return lines[i].kind < lines[j].kind
	})
	out := ""
	for _, l := range lines {
		out += fmt.Sprintf("%-20s %-10s %12v -> %12v\n", l.site, l.kind, l.w.From, l.w.To)
	}
	return out
}

package faults

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

func TestNetPlanDeterministicAcrossCompilations(t *testing.T) {
	cfg := DefaultNetChaos(7, 128)
	a, err := CompileNetPlan(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileNetPlan(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Describe() != b.Describe() {
		t.Fatal("same (config, seed) produced different plans")
	}
	if a.Digest() != b.Digest() {
		t.Fatal("same plan, different digest")
	}
	other, err := CompileNetPlan(DefaultNetChaos(8, 128), 1)
	if err != nil {
		t.Fatal(err)
	}
	if other.Digest() == a.Digest() {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestNetPlanDeterministicAcrossParallelism(t *testing.T) {
	cfg := DefaultNetChaos(42, 300)
	want := ""
	for _, parallel := range []int{1, 2, 4, 7} {
		p, err := CompileNetPlan(cfg, parallel)
		if err != nil {
			t.Fatal(err)
		}
		if want == "" {
			want = p.Describe()
			continue
		}
		if got := p.Describe(); got != want {
			t.Fatalf("parallel=%d compiled a different plan", parallel)
		}
	}
}

func TestNetPlanCoversEveryFamily(t *testing.T) {
	p, err := CompileNetPlan(DefaultNetChaos(1, 512), 2)
	if err != nil {
		t.Fatal(err)
	}
	latency, resets, truncates, stalls := p.CountFaults()
	for name, n := range map[string]int{
		"latency": latency, "reset": resets, "truncate": truncates, "stall": stalls,
	} {
		if n == 0 {
			t.Errorf("default chaos recipe drew zero %s faults over 512 conns", name)
		}
	}
	if !strings.Contains(DescribeNetPlanSummary(p), "conns=512") {
		t.Errorf("summary missing conn count: %s", DescribeNetPlanSummary(p))
	}
}

func TestNetPlanRejectsBadProbability(t *testing.T) {
	cfg := DefaultNetChaos(1, 8)
	cfg.ResetProb = 1.5
	if _, err := CompileNetPlan(cfg, 1); err == nil {
		t.Fatal("probability 1.5 accepted")
	}
}

// echoBackend accepts connections and writes back everything it reads.
func echoBackend(t *testing.T) (addr string, closeFn func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func TestChaosProxyForwardsCleanConnections(t *testing.T) {
	backend, stop := echoBackend(t)
	defer stop()
	// A plan with no fault families: every connection is clean.
	plan, err := CompileNetPlan(NetChaosConfig{Seed: 3, Conns: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := NewChaosProxy(backend, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	conn, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("hello through the chaos proxy")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
	if st := proxy.Stats(); st.Conns != 1 || st.Resets != 0 || st.Truncates != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestChaosProxyCutsConnectionAtByteBudget(t *testing.T) {
	backend, stop := echoBackend(t)
	defer stop()
	// Force a reset after 64 response bytes on every connection.
	plan := &NetPlan{
		cfg:   NetChaosConfig{Seed: 1, Conns: 1},
		conns: []ConnPlan{{Conn: 0, ResetAfter: 64}},
	}
	proxy, err := NewChaosProxy(backend, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	conn, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := bytes.Repeat([]byte("x"), 4096)
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := io.Copy(io.Discard, conn)
	if err == nil && n >= int64(len(payload)) {
		t.Fatalf("full %d-byte echo survived a 64-byte reset budget", n)
	}
	if n > 64 {
		t.Fatalf("forwarded %d bytes past the 64-byte budget", n)
	}
	if st := proxy.Stats(); st.Resets != 1 {
		t.Fatalf("expected 1 reset, got %+v", st)
	}
}

func TestChaosProxyWrapsPlanIndex(t *testing.T) {
	p := &NetPlan{conns: []ConnPlan{{Conn: 0, ResetAfter: 10}, {Conn: 1}}}
	if got := p.Conn(2); got.ResetAfter != 10 {
		t.Fatalf("Conn(2) = %+v, want wrap to conn 0", got)
	}
	if got := p.Conn(3); got.ResetAfter != 0 {
		t.Fatalf("Conn(3) = %+v, want wrap to conn 1", got)
	}
	fmt.Fprint(io.Discard, p.Describe())
}

package faults

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/xedge"
)

func testSites(t *testing.T) []*xedge.Site {
	t.Helper()
	rsu, err := xedge.NewRSU(geo.Station{ID: "rsu-0", Kind: geo.RSU, Pos: geo.Point{X: 100}, Radius: 50000})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := xedge.NewCloud()
	if err != nil {
		t.Fatal(err)
	}
	return []*xedge.Site{rsu, cl}
}

func densePlanConfig() PlanConfig {
	return PlanConfig{
		Horizon:             10 * time.Second,
		MeanTimeToOutage:    time.Second,
		MeanOutage:          500 * time.Millisecond,
		MeanTimeToDegrade:   time.Second,
		MeanDegrade:         time.Second,
		MeanTimeToExecFault: 500 * time.Millisecond,
		MeanExecFault:       300 * time.Millisecond,
	}
}

func TestNewPlanValidation(t *testing.T) {
	sites := testSites(t)
	rng := sim.NewStream(1, 0)
	if _, err := NewPlan(PlanConfig{}, rng, sites); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := NewPlan(densePlanConfig(), nil, sites); err == nil {
		t.Fatal("nil RNG accepted")
	}
	bad := densePlanConfig()
	bad.BandwidthFactor = 2
	if _, err := NewPlan(bad, rng, sites); err == nil {
		t.Fatal("bandwidth factor > 1 accepted")
	}
	bad = densePlanConfig()
	bad.LossDelta = 1.5
	if _, err := NewPlan(bad, rng, sites); err == nil {
		t.Fatal("loss delta >= 1 accepted")
	}
}

// TestPlanDeterminism: a plan is a pure function of (config, stream):
// same (seed, stream) is byte-identical, different streams diverge.
func TestPlanDeterminism(t *testing.T) {
	a, err := NewPlan(densePlanConfig(), sim.NewStream(7, 3), testSites(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(densePlanConfig(), sim.NewStream(7, 3), testSites(t))
	if err != nil {
		t.Fatal(err)
	}
	if a.Describe() != b.Describe() {
		t.Fatal("identical seeds produced different plans")
	}
	c, err := NewPlan(densePlanConfig(), sim.NewStream(7, 4), testSites(t))
	if err != nil {
		t.Fatal(err)
	}
	if a.Describe() == c.Describe() {
		t.Fatal("different streams produced identical plans")
	}
	if a.EventCount() == 0 {
		t.Fatal("dense config produced no events")
	}
}

// TestWindowsWellFormed: per family, windows are sorted, non-overlapping,
// positive-length, and clipped to the horizon; worlds boot healthy.
func TestWindowsWellFormed(t *testing.T) {
	plan, err := NewPlan(densePlanConfig(), sim.NewStream(11, 0), testSites(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range []string{"rsu-0", "cloud"} {
		for _, ws := range [][]Window{plan.Outages(site), plan.Degrades(site), plan.ExecFaults(site)} {
			prevEnd := time.Duration(0)
			for i, w := range ws {
				if w.From <= 0 {
					t.Fatalf("%s window %d starts at boot (%v)", site, i, w.From)
				}
				if w.To <= w.From {
					t.Fatalf("%s window %d empty: %+v", site, i, w)
				}
				if w.From < prevEnd {
					t.Fatalf("%s window %d overlaps previous: %+v", site, i, w)
				}
				if w.To > plan.Config().Horizon {
					t.Fatalf("%s window %d exceeds horizon: %+v", site, i, w)
				}
				prevEnd = w.To
			}
		}
	}
}

func TestExemptKindsAreNeverFaulted(t *testing.T) {
	cfg := densePlanConfig()
	cfg.ExemptKinds = []xedge.SiteKind{xedge.CloudSite}
	plan, err := NewPlan(cfg, sim.NewStream(5, 0), testSites(t))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(plan.Outages("cloud")) + len(plan.Degrades("cloud")) + len(plan.ExecFaults("cloud")); n != 0 {
		t.Fatalf("exempt cloud has %d fault windows", n)
	}
	if len(plan.Outages("rsu-0")) == 0 {
		t.Fatal("non-exempt site has no outages under a dense config")
	}
}

// TestAdvanceToTogglesAvailability: outage boundaries crossed by
// AdvanceTo drive SetAvailable and the faults.* counters; time never
// rewinds.
func TestAdvanceToTogglesAvailability(t *testing.T) {
	sites := testSites(t)
	plan, err := NewPlan(densePlanConfig(), sim.NewStream(3, 0), sites)
	if err != nil {
		t.Fatal(err)
	}
	outages := plan.Outages("rsu-0")
	if len(outages) == 0 {
		t.Skip("seed produced no rsu outages")
	}
	inj, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tr := trace.New(nil)
	inj.Instrument(tr, reg)

	w := outages[0]
	mid := w.From + (w.To-w.From)/2
	inj.AdvanceTo(mid)
	if sites[0].Available() {
		t.Fatalf("site up inside outage window %+v at %v", w, mid)
	}
	if reg.Counter("faults.site_down") == 0 || reg.Counter("faults.outage.rsu-0") == 0 {
		t.Fatal("outage counters not emitted")
	}
	// Rewind is a no-op.
	inj.AdvanceTo(0)
	if sites[0].Available() {
		t.Fatal("rewind resurrected the site")
	}
	inj.AdvanceTo(w.To)
	if !sites[0].Available() {
		t.Fatalf("site still down after window end %v", w.To)
	}
	if reg.Counter("faults.site_up") == 0 {
		t.Fatal("recovery counter not emitted")
	}
	if tr.SpanCount() == 0 {
		t.Fatal("no faults spans recorded")
	}
}

// TestSubmitFailsInsideFaultWindows: with the injector attached, a
// submission inside an exec-fault window fails while one in healthy time
// succeeds — and estimates are never affected.
func TestSubmitFailsInsideFaultWindows(t *testing.T) {
	sites := testSites(t)
	cfg := densePlanConfig()
	cfg.MeanTimeToOutage = 0 // isolate exec faults
	plan, err := NewPlan(cfg, sim.NewStream(9, 0), sites)
	if err != nil {
		t.Fatal(err)
	}
	execWins := plan.ExecFaults("rsu-0")
	if len(execWins) == 0 {
		t.Skip("seed produced no exec-fault windows")
	}
	inj, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	inj.Instrument(nil, reg)
	inj.Attach()

	w := execWins[0]
	mid := w.From + (w.To-w.From)/2
	if _, _, err := sites[0].Submit(mid, hardware.DNNInference, 10); err == nil {
		t.Fatalf("submit inside exec-fault window %+v succeeded", w)
	}
	if _, err := sites[0].EstimateExec(mid, hardware.DNNInference, 10); err != nil {
		t.Fatalf("estimate affected by exec fault: %v", err)
	}
	if _, _, err := sites[0].Submit(w.To, hardware.DNNInference, 10); err != nil {
		t.Fatalf("submit after window: %v", err)
	}
	if reg.Counter("faults.exec_faults") == 0 {
		t.Fatal("exec-fault counter not emitted")
	}
}

// TestAdjustPathDegradesInsideWindow: inside a degradation window the
// path loses bandwidth and gains loss; outside it is untouched; the
// input path is never mutated.
func TestAdjustPathDegradesInsideWindow(t *testing.T) {
	sites := testSites(t)
	plan, err := NewPlan(densePlanConfig(), sim.NewStream(13, 0), sites)
	if err != nil {
		t.Fatal(err)
	}
	wins := plan.Degrades("rsu-0")
	if len(wins) == 0 {
		t.Skip("seed produced no degradation windows")
	}
	inj, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	p := sites[0].Access()
	origUp := p.Links[0].UpMbps
	w := wins[0]
	mid := w.From + (w.To-w.From)/2
	adj := inj.AdjustPath("rsu-0", p, mid)
	if adj.Links[0].UpMbps >= origUp {
		t.Fatalf("bandwidth not reduced: %v -> %v", origUp, adj.Links[0].UpMbps)
	}
	if adj.Links[0].BaseLoss <= p.Links[0].BaseLoss {
		t.Fatal("loss not raised")
	}
	if p.Links[0].UpMbps != origUp {
		t.Fatal("input path mutated")
	}
	clean := inj.AdjustPath("rsu-0", p, 0)
	if clean.Links[0].UpMbps != origUp {
		t.Fatal("healthy-time path degraded")
	}
	if unknown := inj.AdjustPath("ghost", p, mid); unknown.Links[0].UpMbps != origUp {
		t.Fatal("unknown destination degraded")
	}
}

// TestScheduleDrivesSimClock: registered kernel events toggle
// availability as the engine's virtual clock crosses outage boundaries.
func TestScheduleDrivesSimClock(t *testing.T) {
	sites := testSites(t)
	plan, err := NewPlan(densePlanConfig(), sim.NewStream(3, 0), sites)
	if err != nil {
		t.Fatal(err)
	}
	outages := plan.Outages("rsu-0")
	if len(outages) == 0 {
		t.Skip("seed produced no rsu outages")
	}
	inj, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Schedule(nil); err == nil {
		t.Fatal("nil engine accepted")
	}
	eng := sim.NewEngine(1)
	if err := inj.Schedule(eng); err != nil {
		t.Fatal(err)
	}
	w := outages[0]
	if err := eng.RunUntil(w.From + time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if sites[0].Available() {
		t.Fatalf("site up after clock crossed outage start %v", w.From)
	}
	if err := eng.RunUntil(w.To + time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !sites[0].Available() {
		t.Fatalf("site down after clock crossed outage end %v", w.To)
	}
}

// TestEpochCursorEquivalence: the per-family window cursors advanced by
// AdvanceTo are a pure optimization — faultAt and AdjustPath answer
// exactly like a never-advanced (full-scan) injector at every probe
// time, including probes behind the epoch cursor, which fall back to the
// full scan.
func TestEpochCursorEquivalence(t *testing.T) {
	sitesA := testSites(t)
	sitesB := testSites(t)
	planA, err := NewPlan(densePlanConfig(), sim.NewStream(29, 0), sitesA)
	if err != nil {
		t.Fatal(err)
	}
	planB, err := NewPlan(densePlanConfig(), sim.NewStream(29, 0), sitesB)
	if err != nil {
		t.Fatal(err)
	}
	cursored, err := NewInjector(planA)
	if err != nil {
		t.Fatal(err)
	}
	fullScan, err := NewInjector(planB)
	if err != nil {
		t.Fatal(err)
	}
	if planA.Describe() != planB.Describe() {
		t.Fatal("twin plans diverged")
	}
	horizon := planA.Config().Horizon
	access := sitesA[0].Access()
	step := 50 * time.Millisecond
	for epoch := time.Duration(0); epoch <= horizon; epoch += 200 * time.Millisecond {
		cursored.AdvanceTo(epoch) // fullScan never advances: cursors stay at 0
		for _, probe := range []time.Duration{epoch, epoch + step, epoch + 3*step, epoch - step} {
			if probe < 0 {
				continue
			}
			for _, site := range []string{"rsu-0", "cloud"} {
				gotErr := cursored.faultAt(site, probe)
				wantErr := fullScan.faultAt(site, probe)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("faultAt(%s, %v) diverged after AdvanceTo(%v): cursored=%v fullscan=%v",
						site, probe, epoch, gotErr, wantErr)
				}
				got := cursored.AdjustPath(site, access, probe)
				want := fullScan.AdjustPath(site, access, probe)
				if got.Links[0].UpMbps != want.Links[0].UpMbps || got.Links[0].BaseLoss != want.Links[0].BaseLoss {
					t.Fatalf("AdjustPath(%s, %v) diverged after AdvanceTo(%v)", site, probe, epoch)
				}
			}
		}
	}
}

package faults

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// NetChaosConfig parameterizes a compiled network-chaos plan: one fault
// recipe per TCP connection, drawn from a seeded RNG substream keyed by
// connection index. Like PlanConfig schedules, the compiled plan is a pure
// function of (config, seed): two compilations with the same inputs are
// byte-identical, so a paired resilience-on/off benchmark can subject both
// runs to exactly the same network weather.
type NetChaosConfig struct {
	// Seed keys every connection's RNG substream (sim.NewStream(Seed, conn)).
	Seed int64
	// Conns is how many per-connection plans to compile; accepted
	// connections past the end wrap around (conn % Conns).
	Conns int

	// LatencyProb is the chance a connection carries head-of-line latency:
	// the proxy holds the first response bytes for a uniform draw in
	// [LatencyMin, LatencyMax).
	LatencyProb float64
	LatencyMin  time.Duration
	LatencyMax  time.Duration

	// ResetProb is the chance the connection is torn down with a TCP RST
	// after forwarding a uniform draw in [ResetMinBytes, ResetMaxBytes) of
	// response bytes — the mid-frame connection loss of a vehicular link.
	ResetProb     float64
	ResetMinBytes int64
	ResetMaxBytes int64

	// TruncateProb is the chance the response stream is cut with a clean
	// FIN after a uniform draw in [TruncateMinBytes, TruncateMaxBytes) of
	// response bytes, truncating whatever frame is in flight.
	TruncateProb     float64
	TruncateMinBytes int64
	TruncateMaxBytes int64

	// AcceptStallProb is the chance the proxy sits on a freshly accepted
	// connection for a uniform draw in (0, AcceptStallMax) before relaying
	// any bytes — the dead-zone dial that only a client timeout escapes.
	AcceptStallProb float64
	AcceptStallMax  time.Duration
}

// DefaultNetChaos is the E19 chaos recipe: nearly every connection has a
// finite byte budget before it dies (reset or truncation), so a client
// without retries loses a steady fraction of requests, while latency and
// accept stalls exercise hedging and per-request timeouts.
func DefaultNetChaos(seed int64, conns int) NetChaosConfig {
	return NetChaosConfig{
		Seed:             seed,
		Conns:            conns,
		LatencyProb:      0.20,
		LatencyMin:       10 * time.Millisecond,
		LatencyMax:       120 * time.Millisecond,
		ResetProb:        0.45,
		ResetMinBytes:    2 << 10,
		ResetMaxBytes:    48 << 10,
		TruncateProb:     0.45,
		TruncateMinBytes: 1 << 10,
		TruncateMaxBytes: 32 << 10,
		AcceptStallProb:  0.08,
		AcceptStallMax:   time.Second,
	}
}

func (c NetChaosConfig) withDefaults() NetChaosConfig {
	if c.Conns <= 0 {
		c.Conns = 256
	}
	if c.LatencyMax <= c.LatencyMin {
		c.LatencyMax = c.LatencyMin + time.Millisecond
	}
	if c.ResetMaxBytes <= c.ResetMinBytes {
		c.ResetMaxBytes = c.ResetMinBytes + 1
	}
	if c.TruncateMaxBytes <= c.TruncateMinBytes {
		c.TruncateMaxBytes = c.TruncateMinBytes + 1
	}
	if c.AcceptStallMax <= 0 {
		c.AcceptStallMax = time.Second
	}
	return c
}

// ConnPlan is one connection's compiled fault recipe. Zero byte budgets and
// durations mean the fault family is absent on this connection.
type ConnPlan struct {
	Conn          int           `json:"conn"`
	Latency       time.Duration `json:"latency"`       // head-of-line delay before first response bytes
	ResetAfter    int64         `json:"resetAfter"`    // response bytes before a RST; 0 = never
	TruncateAfter int64         `json:"truncateAfter"` // response bytes before a FIN; 0 = never
	AcceptStall   time.Duration `json:"acceptStall"`   // relay delay after accept; 0 = none
}

// compileConnPlan draws one connection's recipe. The draw order (latency,
// reset, truncation, stall — a Bernoulli gate then the magnitude, always
// consumed) is part of the plan format: changing it changes every digest.
func compileConnPlan(cfg NetChaosConfig, conn int) ConnPlan {
	rng := sim.NewStream(cfg.Seed, uint64(conn))
	p := ConnPlan{Conn: conn}
	if rng.Bernoulli(cfg.LatencyProb) {
		p.Latency = time.Duration(rng.Uniform(float64(cfg.LatencyMin), float64(cfg.LatencyMax)))
	} else {
		rng.Float64()
	}
	if rng.Bernoulli(cfg.ResetProb) {
		p.ResetAfter = int64(rng.Uniform(float64(cfg.ResetMinBytes), float64(cfg.ResetMaxBytes)))
	} else {
		rng.Float64()
	}
	if rng.Bernoulli(cfg.TruncateProb) {
		p.TruncateAfter = int64(rng.Uniform(float64(cfg.TruncateMinBytes), float64(cfg.TruncateMaxBytes)))
	} else {
		rng.Float64()
	}
	if rng.Bernoulli(cfg.AcceptStallProb) {
		p.AcceptStall = time.Duration(rng.Uniform(0, float64(cfg.AcceptStallMax)))
	} else {
		rng.Float64()
	}
	return p
}

// NetPlan is a compiled connection-chaos schedule.
type NetPlan struct {
	cfg   NetChaosConfig
	conns []ConnPlan
}

// CompileNetPlan compiles cfg.Conns per-connection recipes across a pool of
// `parallel` workers (<=0 means 1). Each connection's plan comes from its
// own sim.NewStream substream and lands at its own index, so the compiled
// plan — and therefore Digest — is byte-identical at any parallelism.
func CompileNetPlan(cfg NetChaosConfig, parallel int) (*NetPlan, error) {
	for name, p := range map[string]float64{
		"latency": cfg.LatencyProb, "reset": cfg.ResetProb,
		"truncate": cfg.TruncateProb, "accept-stall": cfg.AcceptStallProb,
	} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("faults: netchaos %s probability %v outside [0,1]", name, p)
		}
	}
	cfg = cfg.withDefaults()
	if parallel <= 0 {
		parallel = 1
	}
	plan := &NetPlan{cfg: cfg, conns: make([]ConnPlan, cfg.Conns)}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Conns {
					return
				}
				plan.conns[i] = compileConnPlan(cfg, i)
			}
		}()
	}
	wg.Wait()
	return plan, nil
}

// Config returns the compiled configuration (defaults resolved).
func (p *NetPlan) Config() NetChaosConfig { return p.cfg }

// Conns returns how many per-connection recipes were compiled.
func (p *NetPlan) Conns() int { return len(p.conns) }

// Conn returns the recipe for the i-th accepted connection (wrapping past
// the compiled count).
func (p *NetPlan) Conn(i int) ConnPlan {
	if len(p.conns) == 0 {
		return ConnPlan{Conn: i}
	}
	return p.conns[i%len(p.conns)]
}

// Describe renders the plan canonically, one line per connection — the
// digest input and the human-readable netchaos plan format.
func (p *NetPlan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "netchaos seed=%d conns=%d\n", p.cfg.Seed, len(p.conns))
	for _, c := range p.conns {
		fmt.Fprintf(&b, "conn %5d latency=%v reset=%dB truncate=%dB stall=%v\n",
			c.Conn, c.Latency, c.ResetAfter, c.TruncateAfter, c.AcceptStall)
	}
	return b.String()
}

// Digest returns the SHA-256 of the canonical plan rendering. Equal digests
// mean byte-identical chaos plans — the pairing check for E19's on/off runs
// and the `make determinism` netchaos step.
func (p *NetPlan) Digest() string {
	sum := sha256.Sum256([]byte(p.Describe()))
	return hex.EncodeToString(sum[:])
}

// CountFaults tallies the plan's fault recipes by family.
func (p *NetPlan) CountFaults() (latency, resets, truncates, stalls int) {
	for _, c := range p.conns {
		if c.Latency > 0 {
			latency++
		}
		if c.ResetAfter > 0 {
			resets++
		}
		if c.TruncateAfter > 0 {
			truncates++
		}
		if c.AcceptStall > 0 {
			stalls++
		}
	}
	return
}

// ChaosProxyStats counts what a proxy actually did to live traffic. The
// counts are wall-clock-dependent (which recipes fire depends on accept
// order and response sizes); only the plan itself is deterministic.
type ChaosProxyStats struct {
	Conns     int64 `json:"conns"`
	Resets    int64 `json:"resets"`
	Truncates int64 `json:"truncates"`
	Stalls    int64 `json:"stalls"`
	Delayed   int64 `json:"delayed"`
	BytesUp   int64 `json:"bytesUp"`
	BytesDown int64 `json:"bytesDown"`
}

// ChaosProxy is an in-process TCP proxy that subjects every connection
// between a client fleet and a backend to its compiled ConnPlan: accept
// stalls, head-of-line latency, byte-budgeted RSTs and truncations. It
// never inspects bytes — HTTP requests, chunked streams, and gzip bodies
// all break the same way a real flaky link breaks them.
type ChaosProxy struct {
	ln      net.Listener
	backend string
	plan    *NetPlan

	next    atomic.Int64
	closed  atomic.Bool
	connsMu sync.Mutex
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup

	stats struct {
		conns, resets, truncates, stalls, delayed atomic.Int64
		bytesUp, bytesDown                        atomic.Int64
	}
}

// NewChaosProxy starts a proxy on a loopback port in front of backend
// (host:port). Close releases the listener and every live connection.
func NewChaosProxy(backend string, plan *NetPlan) (*ChaosProxy, error) {
	if backend == "" {
		return nil, fmt.Errorf("faults: empty backend address")
	}
	if plan == nil {
		return nil, fmt.Errorf("faults: nil net plan")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faults: listen: %w", err)
	}
	p := &ChaosProxy{ln: ln, backend: backend, plan: plan, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's base URL for HTTP clients.
func (p *ChaosProxy) URL() string { return "http://" + p.Addr() }

// Stats snapshots the proxy's live counters.
func (p *ChaosProxy) Stats() ChaosProxyStats {
	return ChaosProxyStats{
		Conns:     p.stats.conns.Load(),
		Resets:    p.stats.resets.Load(),
		Truncates: p.stats.truncates.Load(),
		Stalls:    p.stats.stalls.Load(),
		Delayed:   p.stats.delayed.Load(),
		BytesUp:   p.stats.bytesUp.Load(),
		BytesDown: p.stats.bytesDown.Load(),
	}
}

// Close stops accepting, severs every live connection, and waits for the
// relay goroutines to drain.
func (p *ChaosProxy) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	err := p.ln.Close()
	p.connsMu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.connsMu.Unlock()
	p.wg.Wait()
	return err
}

func (p *ChaosProxy) track(c net.Conn) {
	p.connsMu.Lock()
	p.conns[c] = struct{}{}
	p.connsMu.Unlock()
}

func (p *ChaosProxy) untrack(c net.Conn) {
	p.connsMu.Lock()
	delete(p.conns, c)
	p.connsMu.Unlock()
}

func (p *ChaosProxy) serve() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		idx := int(p.next.Add(1)) - 1
		p.stats.conns.Add(1)
		p.wg.Add(1)
		go p.relay(c, p.plan.Conn(idx))
	}
}

// sleepUnlessClosed waits d, returning early (false) when the proxy shuts
// down mid-sleep.
func (p *ChaosProxy) sleepUnlessClosed(d time.Duration) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if p.closed.Load() {
			return false
		}
		step := time.Until(deadline)
		if step > 25*time.Millisecond {
			step = 25 * time.Millisecond
		}
		time.Sleep(step)
	}
	return !p.closed.Load()
}

// relay pumps one client connection through its fault recipe.
func (p *ChaosProxy) relay(client net.Conn, plan ConnPlan) {
	defer p.wg.Done()
	p.track(client)
	defer p.untrack(client)
	defer client.Close()

	if plan.AcceptStall > 0 {
		p.stats.stalls.Add(1)
		if !p.sleepUnlessClosed(plan.AcceptStall) {
			return
		}
	}
	backend, err := net.DialTimeout("tcp", p.backend, 5*time.Second)
	if err != nil {
		return
	}
	p.track(backend)
	defer p.untrack(backend)
	defer backend.Close()

	done := make(chan struct{}, 2)
	// Upstream pump: client -> backend, unmolested.
	go func() {
		n, _ := io.Copy(backend, client)
		p.stats.bytesUp.Add(n)
		// Half-close toward the backend so a finished client drains cleanly.
		if tc, ok := backend.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	// Downstream pump: backend -> client, through the fault recipe.
	go func() {
		p.pumpDown(client, backend, plan)
		done <- struct{}{}
	}()
	<-done
	// Closing both ends (via the defers) unblocks the other pump.
}

// pumpDown forwards response bytes with the plan's latency and byte
// budgets applied. Reaching a reset budget tears the client connection
// down with an RST; reaching a truncation budget closes it mid-stream.
func (p *ChaosProxy) pumpDown(client, backend net.Conn, plan ConnPlan) {
	budget := int64(-1)
	reset := false
	if plan.ResetAfter > 0 {
		budget, reset = plan.ResetAfter, true
	}
	if plan.TruncateAfter > 0 && (budget < 0 || plan.TruncateAfter < budget) {
		budget, reset = plan.TruncateAfter, false
	}
	buf := make([]byte, 16<<10)
	delayed := plan.Latency > 0
	var sent int64
	for {
		if budget >= 0 && sent >= budget {
			if reset {
				p.stats.resets.Add(1)
				if tc, ok := client.(*net.TCPConn); ok {
					tc.SetLinger(0) // force RST instead of FIN
				}
			} else {
				p.stats.truncates.Add(1)
			}
			client.Close()
			backend.Close()
			return
		}
		chunk := int64(len(buf))
		if budget >= 0 && budget-sent < chunk {
			chunk = budget - sent
		}
		n, err := backend.Read(buf[:chunk])
		if n > 0 {
			if delayed {
				delayed = false
				p.stats.delayed.Add(1)
				if !p.sleepUnlessClosed(plan.Latency) {
					return
				}
			}
			if _, werr := client.Write(buf[:n]); werr != nil {
				return
			}
			sent += int64(n)
			p.stats.bytesDown.Add(int64(n))
		}
		if err != nil {
			return
		}
	}
}

// DescribeNetPlanSummary renders a one-line deterministic summary of the
// plan (fault recipe counts by family, sorted) for experiment tables.
func DescribeNetPlanSummary(p *NetPlan) string {
	latency, resets, truncates, stalls := p.CountFaults()
	parts := []string{
		fmt.Sprintf("latency=%d", latency),
		fmt.Sprintf("reset=%d", resets),
		fmt.Sprintf("stall=%d", stalls),
		fmt.Sprintf("truncate=%d", truncates),
	}
	sort.Strings(parts)
	return fmt.Sprintf("conns=%d %s", p.Conns(), strings.Join(parts, " "))
}

package edgeos

import (
	"fmt"

	"repro/internal/network"
)

// Firewall is the basic network protection the paper calls for (§III-D:
// "the firewall as a basic can be used to protect some attacks"): a
// default-deny policy over inbound traffic classified by interface and
// protocol, with ordered allow/deny rules and per-rule hit counting.

// Verdict is a firewall decision.
type Verdict int

const (
	// Deny drops the traffic.
	Deny Verdict = iota + 1
	// Allow admits it.
	Allow
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Deny:
		return "deny"
	case Allow:
		return "allow"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Flow classifies one inbound connection attempt.
type Flow struct {
	// Iface is the arrival interface.
	Iface network.Tech
	// Protocol is the application protocol ("bsm", "vdap-api", "ssh", ...).
	Protocol string
	// Source labels the peer ("pseudonym:..", "internet:..", ...).
	Source string
}

// Rule matches flows. Zero-valued fields are wildcards.
type Rule struct {
	// Name labels the rule in reports.
	Name string
	// Iface matches the arrival interface (0 = any).
	Iface network.Tech
	// Protocol matches exactly ("" = any).
	Protocol string
	// Verdict is applied on match.
	Verdict Verdict

	hits int
}

// matches reports whether the rule covers the flow.
func (r *Rule) matches(f Flow) bool {
	if r.Iface != 0 && r.Iface != f.Iface {
		return false
	}
	if r.Protocol != "" && r.Protocol != f.Protocol {
		return false
	}
	return true
}

// Firewall evaluates ordered rules with a default-deny tail.
type Firewall struct {
	rules   []*Rule
	denied  int
	allowed int
}

// NewFirewall returns an empty default-deny firewall.
func NewFirewall() *Firewall { return &Firewall{} }

// DefaultVehicleFirewall returns the paper-shaped baseline policy: DSRC
// safety beacons and the libvdap API over WiFi/BLE (paired passenger
// devices) are allowed; everything else — in particular anything arriving
// over the cellular interfaces, the remote-attack path §III-D worries
// about — is denied by default.
func DefaultVehicleFirewall() *Firewall {
	fw := NewFirewall()
	fw.Append(Rule{Name: "allow-dsrc-bsm", Iface: network.DSRC, Protocol: "bsm", Verdict: Allow})
	fw.Append(Rule{Name: "allow-dsrc-collab", Iface: network.DSRC, Protocol: "collab", Verdict: Allow})
	fw.Append(Rule{Name: "allow-wifi-api", Iface: network.WiFi, Protocol: "vdap-api", Verdict: Allow})
	fw.Append(Rule{Name: "allow-ble-api", Iface: network.BLE, Protocol: "vdap-api", Verdict: Allow})
	return fw
}

// Append adds a rule at the end of the chain.
func (fw *Firewall) Append(r Rule) {
	if r.Verdict == 0 {
		r.Verdict = Deny
	}
	cp := r
	fw.rules = append(fw.rules, &cp)
}

// Evaluate returns the verdict for a flow and the matching rule name
// ("default-deny" when no rule matched).
func (fw *Firewall) Evaluate(f Flow) (Verdict, string) {
	for _, r := range fw.rules {
		if r.matches(f) {
			r.hits++
			if r.Verdict == Allow {
				fw.allowed++
			} else {
				fw.denied++
			}
			return r.Verdict, r.Name
		}
	}
	fw.denied++
	return Deny, "default-deny"
}

// Stats returns total allowed and denied flows.
func (fw *Firewall) Stats() (allowed, denied int) { return fw.allowed, fw.denied }

// RuleHits returns per-rule hit counts sorted by rule name.
func (fw *Firewall) RuleHits() map[string]int {
	out := make(map[string]int, len(fw.rules))
	for _, r := range fw.rules {
		out[r.Name] = r.hits
	}
	return out
}

// Rules lists rule names in evaluation order.
func (fw *Firewall) Rules() []string {
	out := make([]string, 0, len(fw.rules))
	for _, r := range fw.rules {
		out = append(out, r.Name)
	}
	return out
}

package edgeos

import (
	"fmt"
	"sort"
)

// IsolationKind is how a service is sandboxed.
type IsolationKind int

const (
	// ContainerIsolation is lightweight containerization — the default
	// for ordinary services (paper: "a good candidate for isolation and
	// migration due to the light weight of a container").
	ContainerIsolation IsolationKind = iota + 1
	// TEEIsolation runs the service inside a trusted execution
	// environment with sealed memory — for key/safety-critical services.
	TEEIsolation
)

// String returns the isolation name.
func (k IsolationKind) String() string {
	switch k {
	case ContainerIsolation:
		return "container"
	case TEEIsolation:
		return "tee"
	default:
		return fmt.Sprintf("isolation(%d)", int(k))
	}
}

// Container is one service sandbox with resource limits enforced by the
// runtime (CPU shares steer DSF placement weight; the memory limit is a
// hard admission bound).
type Container struct {
	Service   string
	Isolation IsolationKind
	// CPUShares is the relative CPU weight (like cgroup cpu.shares).
	CPUShares int
	// MemoryLimitMB caps the service's peak task working set.
	MemoryLimitMB float64
	// Measurement is the attestation fingerprint of the installed image.
	Measurement string
	// Generation counts reinstalls (Security-module reliability actions).
	Generation int

	running bool
	usedMB  float64
}

// ContainerRuntime manages all sandboxes on the vehicle.
type ContainerRuntime struct {
	containers map[string]*Container
	// totalShares tracks the denominator for relative CPU weights.
	totalShares int
}

// NewContainerRuntime returns an empty runtime.
func NewContainerRuntime() *ContainerRuntime {
	return &ContainerRuntime{containers: make(map[string]*Container)}
}

// Launch creates and starts a sandbox for a service.
func (r *ContainerRuntime) Launch(service string, isolation IsolationKind, cpuShares int, memoryLimitMB float64, measurement string) (*Container, error) {
	if service == "" {
		return nil, fmt.Errorf("edgeos: container needs a service name")
	}
	if cpuShares <= 0 {
		return nil, fmt.Errorf("edgeos: container %s needs positive CPU shares", service)
	}
	if memoryLimitMB <= 0 {
		return nil, fmt.Errorf("edgeos: container %s needs a positive memory limit", service)
	}
	if _, dup := r.containers[service]; dup {
		return nil, fmt.Errorf("edgeos: container for %q already exists", service)
	}
	c := &Container{
		Service:       service,
		Isolation:     isolation,
		CPUShares:     cpuShares,
		MemoryLimitMB: memoryLimitMB,
		Measurement:   measurement,
		running:       true,
	}
	r.containers[service] = c
	r.totalShares += cpuShares
	return c, nil
}

// Get returns a service's container.
func (r *ContainerRuntime) Get(service string) (*Container, error) {
	c, ok := r.containers[service]
	if !ok {
		return nil, fmt.Errorf("edgeos: no container for %q", service)
	}
	return c, nil
}

// Containers lists sandboxes sorted by service name.
func (r *ContainerRuntime) Containers() []*Container {
	out := make([]*Container, 0, len(r.containers))
	for _, c := range r.containers {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Service < out[j].Service })
	return out
}

// Remove destroys a sandbox (releases its shares).
func (r *ContainerRuntime) Remove(service string) error {
	c, ok := r.containers[service]
	if !ok {
		return fmt.Errorf("edgeos: no container for %q", service)
	}
	r.totalShares -= c.CPUShares
	delete(r.containers, service)
	return nil
}

// CPUFraction returns the container's relative CPU entitlement in (0, 1].
func (r *ContainerRuntime) CPUFraction(service string) (float64, error) {
	c, err := r.Get(service)
	if err != nil {
		return 0, err
	}
	if r.totalShares == 0 {
		return 0, fmt.Errorf("edgeos: no shares allocated")
	}
	return float64(c.CPUShares) / float64(r.totalShares), nil
}

// Running reports whether the sandbox is live.
func (c *Container) Running() bool { return c.running }

// UsedMB returns currently charged memory.
func (c *Container) UsedMB() float64 { return c.usedMB }

// ChargeMemory admits a working set against the limit; it fails when the
// limit would be exceeded (the isolation guarantee: one service cannot
// starve others of memory).
func (c *Container) ChargeMemory(mb float64) error {
	if mb < 0 {
		return fmt.Errorf("edgeos: negative memory charge %v", mb)
	}
	if !c.running {
		return fmt.Errorf("edgeos: container %s is not running", c.Service)
	}
	if c.usedMB+mb > c.MemoryLimitMB {
		return fmt.Errorf("edgeos: container %s memory limit %v MB exceeded (used %v, requested %v)",
			c.Service, c.MemoryLimitMB, c.usedMB, mb)
	}
	c.usedMB += mb
	return nil
}

// ReleaseMemory returns a working set to the pool.
func (c *Container) ReleaseMemory(mb float64) {
	c.usedMB -= mb
	if c.usedMB < 0 {
		c.usedMB = 0
	}
}

// Stop halts the sandbox (memory is released).
func (c *Container) Stop() {
	c.running = false
	c.usedMB = 0
}

package edgeos

import (
	"testing"

	"repro/internal/network"
)

func TestDefaultFirewallPolicy(t *testing.T) {
	fw := DefaultVehicleFirewall()
	cases := []struct {
		flow Flow
		want Verdict
	}{
		{Flow{Iface: network.DSRC, Protocol: "bsm", Source: "pseudonym:abc"}, Allow},
		{Flow{Iface: network.DSRC, Protocol: "collab", Source: "pseudonym:abc"}, Allow},
		{Flow{Iface: network.WiFi, Protocol: "vdap-api", Source: "phone:1"}, Allow},
		{Flow{Iface: network.BLE, Protocol: "vdap-api", Source: "phone:1"}, Allow},
		// The remote-attack paths the paper worries about:
		{Flow{Iface: network.LTE, Protocol: "ssh", Source: "internet:evil"}, Deny},
		{Flow{Iface: network.LTE, Protocol: "vdap-api", Source: "internet:evil"}, Deny},
		{Flow{Iface: network.FiveG, Protocol: "bsm", Source: "internet:spoof"}, Deny},
		{Flow{Iface: network.WiFi, Protocol: "telnet", Source: "parking-lot"}, Deny},
	}
	for _, tc := range cases {
		got, rule := fw.Evaluate(tc.flow)
		if got != tc.want {
			t.Errorf("%+v -> %v (rule %s), want %v", tc.flow, got, rule, tc.want)
		}
	}
	allowed, denied := fw.Stats()
	if allowed != 4 || denied != 4 {
		t.Fatalf("stats = %d/%d", allowed, denied)
	}
}

func TestFirewallDefaultDeny(t *testing.T) {
	fw := NewFirewall()
	v, rule := fw.Evaluate(Flow{Iface: network.DSRC, Protocol: "bsm"})
	if v != Deny || rule != "default-deny" {
		t.Fatalf("empty firewall = %v via %s", v, rule)
	}
}

func TestFirewallRuleOrdering(t *testing.T) {
	fw := NewFirewall()
	// A specific deny ahead of a broad allow must win.
	fw.Append(Rule{Name: "block-bad-proto", Protocol: "ssh", Verdict: Deny})
	fw.Append(Rule{Name: "allow-all-dsrc", Iface: network.DSRC, Verdict: Allow})
	if v, rule := fw.Evaluate(Flow{Iface: network.DSRC, Protocol: "ssh"}); v != Deny || rule != "block-bad-proto" {
		t.Fatalf("ordering broken: %v via %s", v, rule)
	}
	if v, _ := fw.Evaluate(Flow{Iface: network.DSRC, Protocol: "bsm"}); v != Allow {
		t.Fatalf("broad allow broken: %v", v)
	}
}

func TestFirewallWildcardsAndHits(t *testing.T) {
	fw := NewFirewall()
	fw.Append(Rule{Name: "any", Verdict: Allow}) // full wildcard
	for i := 0; i < 3; i++ {
		fw.Evaluate(Flow{Iface: network.LTE, Protocol: "x"})
	}
	if fw.RuleHits()["any"] != 3 {
		t.Fatalf("hits = %v", fw.RuleHits())
	}
	if len(fw.Rules()) != 1 || fw.Rules()[0] != "any" {
		t.Fatalf("rules = %v", fw.Rules())
	}
}

func TestFirewallZeroVerdictDefaultsToDeny(t *testing.T) {
	fw := NewFirewall()
	fw.Append(Rule{Name: "implicit"})
	if v, _ := fw.Evaluate(Flow{}); v != Deny {
		t.Fatalf("zero-verdict rule = %v", v)
	}
}

func TestVerdictString(t *testing.T) {
	if Allow.String() != "allow" || Deny.String() != "deny" || Verdict(9).String() != "verdict(9)" {
		t.Fatal("verdict names wrong")
	}
}

package edgeos

import (
	"fmt"
	"time"

	"repro/internal/network"
	"repro/internal/vdapcrypto"
)

// This file implements container-based service migration between vehicles
// (paper §IV-C: containerization is "a good candidate for isolation and
// migration", and "the service might be migrated from a neighbor vehicle
// which may not be trustworthy" — hence attestation against a trusted
// measurement list before an inbound service runs).

// MigrationOffer is the unit a vehicle sends when handing a service over
// DSRC to a peer.
type MigrationOffer struct {
	// Service carries the full definition including the image.
	Service *Service
	// ClaimedMeasurement is the sender's attestation claim for the image.
	ClaimedMeasurement string
	// FromPseudonym identifies the sender unlinkably.
	FromPseudonym string
}

// TransferBytes is the payload size moved during migration: the image
// plus a fixed container-state snapshot.
func (o MigrationOffer) TransferBytes() float64 {
	const snapshotBytes = 256 * 1024
	if o.Service == nil {
		return snapshotBytes
	}
	return float64(len(o.Service.Image)) + snapshotBytes
}

// PrepareMigration packages an installed service for handover and stops
// its local sandbox. TEE services cannot be migrated: sealed state is
// bound to this vehicle's hardware.
func (sm *SecurityModule) PrepareMigration(service, fromPseudonym string) (MigrationOffer, error) {
	s, err := sm.manager.Service(service)
	if err != nil {
		return MigrationOffer{}, err
	}
	if s.TEE {
		return MigrationOffer{}, fmt.Errorf("edgeos: TEE service %s cannot migrate (sealed state is hardware-bound)", service)
	}
	if err := sm.Attest(service); err != nil {
		return MigrationOffer{}, fmt.Errorf("pre-migration attestation: %w", err)
	}
	c, err := sm.runtime.Get(service)
	if err != nil {
		return MigrationOffer{}, err
	}
	c.Stop()
	s.state = Stopped
	return MigrationOffer{
		Service:            s,
		ClaimedMeasurement: sm.expected[service],
		FromPseudonym:      fromPseudonym,
	}, nil
}

// TrustMeasurement whitelists an image measurement for inbound migration
// (e.g. distributed by the service vendor through the cloud).
func (sm *SecurityModule) TrustMeasurement(measurement string) {
	if sm.trusted == nil {
		sm.trusted = make(map[string]bool)
	}
	sm.trusted[measurement] = true
}

// ReceiveMigration verifies and installs a service arriving from another
// vehicle. The image must hash to the claimed measurement AND the
// measurement must be on the local trust list; inbound services never get
// TEE privileges (they run under plain container isolation until the
// owner re-installs them locally).
func (sm *SecurityModule) ReceiveMigration(offer MigrationOffer, cpuShares int, memoryLimitMB float64) error {
	if offer.Service == nil {
		return fmt.Errorf("edgeos: migration offer has no service")
	}
	got := vdapcrypto.Fingerprint(offer.Service.Image)
	if got != offer.ClaimedMeasurement {
		return fmt.Errorf("edgeos: migrated image of %s does not match claimed measurement (have %s, claimed %s)",
			offer.Service.Name, got, offer.ClaimedMeasurement)
	}
	if !sm.trusted[offer.ClaimedMeasurement] {
		return fmt.Errorf("edgeos: measurement %s of migrated service %s is not trusted",
			offer.ClaimedMeasurement, offer.Service.Name)
	}
	// Rebuild the service locally; strip TEE demands.
	inbound := &Service{
		Name:      offer.Service.Name,
		Priority:  offer.Service.Priority,
		Deadline:  offer.Service.Deadline,
		DAG:       offer.Service.DAG.Clone(),
		Pipelines: append([]Pipeline(nil), offer.Service.Pipelines...),
		TEE:       false,
		Image:     append([]byte(nil), offer.Service.Image...),
	}
	return sm.Install(inbound, cpuShares, memoryLimitMB)
}

// MigrationCost returns the DSRC handover time for an offer.
func MigrationCost(offer MigrationOffer, link network.LinkSpec) (time.Duration, error) {
	return link.TransferTime(offer.TransferBytes(), network.Uplink)
}

package edgeos

import (
	"testing"
	"time"
)

func BenchmarkChoosePipeline(b *testing.B) {
	mgr, err := buildManager(35, MinLatency)
	if err != nil {
		b.Fatal(err)
	}
	if err := mgr.Register(kidnapperService()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := mgr.Choose("kidnapper-search", time.Duration(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDataSharingPublishFetch(b *testing.B) {
	d, err := NewDataSharing(sharingSecret, 16)
	if err != nil {
		b.Fatal(err)
	}
	tok, err := d.Enroll("svc")
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Grant("frames", "svc", "pubsub"); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := time.Duration(i) * time.Millisecond
		if err := d.Publish("svc", tok, "frames", at, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Fetch("svc", tok, "frames", at-time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

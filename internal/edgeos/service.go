// Package edgeos implements EdgeOSv, OpenVDAP's vehicle operating system
// (paper §IV-C): polymorphic services with multiple execution pipelines,
// the Elastic Management module that picks a pipeline per invocation (or
// hangs the service up when none meets its deadline), container/TEE-based
// isolation, a compromise-monitoring Security module that reinstalls bad
// services, an authenticated Data Sharing module, and a pseudonym-based
// Privacy module. Together these realize the DEIR properties
// (Differentiation, Extensibility, Isolation, Reliability).
package edgeos

import (
	"fmt"
	"time"

	"repro/internal/tasks"
)

// ServiceState tracks a service's lifecycle.
type ServiceState int

const (
	// Running means the service accepts invocations.
	Running ServiceState = iota + 1
	// HungUp means Elastic Management suspended the service because no
	// pipeline met its deadline (paper: "the service will be hung up
	// until meeting requirements again").
	HungUp
	// Compromised means the Security module flagged the service.
	Compromised
	// Stopped means the service was shut down administratively.
	Stopped
)

var serviceStateNames = map[ServiceState]string{
	Running: "running", HungUp: "hung-up", Compromised: "compromised", Stopped: "stopped",
}

// String returns the lower-case state name.
func (s ServiceState) String() string {
	if n, ok := serviceStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Priority orders services: safety-critical ADAS outranks infotainment.
type Priority int

const (
	// PriorityBackground is best-effort (data migration, prefetch).
	PriorityBackground Priority = iota + 1
	// PriorityInteractive is user-facing but not safety relevant.
	PriorityInteractive
	// PrioritySafety is safety-critical (pedestrian alert, ADAS).
	PrioritySafety
)

// Pipeline is one way to execute a polymorphic service: how many leading
// tasks stay on-board before the rest offloads. The paper's kidnapper-
// search example has three: all on-board, all remote, and motion-detection
// local with recognition remote.
type Pipeline struct {
	// Name labels the pipeline in reports.
	Name string
	// SplitAfter is the count of leading topo-order tasks run on-board.
	// len(DAG.Tasks) means fully on-board; 0 means fully offloaded.
	SplitAfter int
}

// Service is a polymorphic service managed by EdgeOSv.
type Service struct {
	// Name is unique within the OS.
	Name string
	// Priority ranks the service for admission and preemption decisions.
	Priority Priority
	// Deadline is the per-invocation response-time requirement. Zero
	// means best-effort (never hung up).
	Deadline time.Duration
	// DAG is the service's computation, pre-partitioned by DSF.
	DAG *tasks.DAG
	// Pipelines are the allowed execution shapes. Empty means
	// DefaultPipelines(DAG).
	Pipelines []Pipeline
	// TEE requests trusted-execution isolation (Security module).
	TEE bool
	// Image is the service binary content, used for attestation
	// measurements and reinstallation.
	Image []byte

	state ServiceState
}

// Validate reports configuration errors.
func (s *Service) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("edgeos: service has no name")
	}
	if s.DAG == nil {
		return fmt.Errorf("edgeos: service %s has no DAG", s.Name)
	}
	if err := s.DAG.Validate(); err != nil {
		return fmt.Errorf("service %s: %w", s.Name, err)
	}
	if s.Deadline < 0 {
		return fmt.Errorf("edgeos: service %s has negative deadline", s.Name)
	}
	n := len(s.DAG.Tasks)
	for _, p := range s.Pipelines {
		if p.SplitAfter < 0 || p.SplitAfter > n {
			return fmt.Errorf("edgeos: service %s pipeline %s split %d outside [0, %d]",
				s.Name, p.Name, p.SplitAfter, n)
		}
	}
	if s.Priority < PriorityBackground || s.Priority > PrioritySafety {
		return fmt.Errorf("edgeos: service %s has invalid priority %d", s.Name, s.Priority)
	}
	return nil
}

// State returns the lifecycle state.
func (s *Service) State() ServiceState { return s.state }

// EffectivePipelines returns the service's pipelines, defaulting to every
// split point when none are declared.
func (s *Service) EffectivePipelines() []Pipeline {
	if len(s.Pipelines) > 0 {
		return s.Pipelines
	}
	return DefaultPipelines(s.DAG)
}

// DefaultPipelines enumerates fully-on-board, fully-offloaded, and every
// intermediate split of a DAG.
func DefaultPipelines(dag *tasks.DAG) []Pipeline {
	if dag == nil {
		return nil
	}
	n := len(dag.Tasks)
	out := make([]Pipeline, 0, n+1)
	out = append(out, Pipeline{Name: "onboard", SplitAfter: n})
	out = append(out, Pipeline{Name: "offload-all", SplitAfter: 0})
	for k := 1; k < n; k++ {
		out = append(out, Pipeline{Name: fmt.Sprintf("split-%d", k), SplitAfter: k})
	}
	return out
}

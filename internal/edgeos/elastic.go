package edgeos

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/offload"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Objective selects what Elastic Management optimizes.
type Objective int

const (
	// MinLatency picks the pipeline with the smallest end-to-end latency.
	MinLatency Objective = iota + 1
	// MinEnergy picks the least vehicle-energy pipeline that still meets
	// the deadline.
	MinEnergy
)

// String returns the objective name.
func (o Objective) String() string {
	switch o {
	case MinLatency:
		return "min-latency"
	case MinEnergy:
		return "min-energy"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

// Choice is one evaluated pipeline option.
type Choice struct {
	Pipeline Pipeline
	Estimate offload.Estimate
	// MeetsDeadline is true when the estimate fits the service deadline.
	MeetsDeadline bool
}

// InvocationResult records one service invocation.
type InvocationResult struct {
	Service   string
	Pipeline  string
	Dest      string
	Latency   time.Duration
	EnergyJ   float64
	HungUp    bool
	Completed time.Duration

	// Resilience outcome (zero values when no policy is installed on the
	// engine): total execution attempts, the destination actually used when
	// the chosen one failed, whether the compressed model variant ran, and
	// whether the service deadline was met.
	Attempts    int
	FellBackTo  string
	Degraded    bool
	DeadlineMet bool
}

// ElasticStats aggregates a service's invocation history.
type ElasticStats struct {
	Invocations  int
	HangUps      int
	TotalLatency time.Duration
	TotalEnergyJ float64
	// PipelineUse counts invocations per pipeline name.
	PipelineUse map[string]int
}

// ElasticManager is EdgeOSv's Elastic Management module: it evaluates each
// registered service's pipelines against current conditions and runs the
// best, hanging services up when nothing meets their deadline.
type ElasticManager struct {
	engine    *offload.Engine
	objective Objective
	services  map[string]*Service
	stats     map[string]*ElasticStats

	tracer  *trace.Tracer
	metrics *telemetry.Registry

	// prep is the manager's single in-flight invocation, reused across
	// rounds so the steady-state invoke path allocates nothing for the
	// decision/commit split (see PrepareInvoke).
	prep PreparedInvocation
}

// Instrument attaches a tracer and metrics registry (either may be nil).
// Invocations then emit `edgeos` spans wrapping the offload engine's own
// spans, plus `edgeos.*` metrics.
func (m *ElasticManager) Instrument(tr *trace.Tracer, reg *telemetry.Registry) {
	m.tracer = tr
	m.metrics = reg
}

// NewElasticManager builds the module over an offload engine.
func NewElasticManager(engine *offload.Engine, objective Objective) (*ElasticManager, error) {
	if engine == nil {
		return nil, fmt.Errorf("edgeos: nil offload engine")
	}
	if objective != MinLatency && objective != MinEnergy {
		return nil, fmt.Errorf("edgeos: unknown objective %d", objective)
	}
	return &ElasticManager{
		engine:    engine,
		objective: objective,
		services:  make(map[string]*Service),
		stats:     make(map[string]*ElasticStats),
	}, nil
}

// SetObjective switches the optimization goal at runtime.
func (m *ElasticManager) SetObjective(o Objective) error {
	if o != MinLatency && o != MinEnergy {
		return fmt.Errorf("edgeos: unknown objective %d", o)
	}
	m.objective = o
	return nil
}

// Register adds a service. Names must be unique.
func (m *ElasticManager) Register(s *Service) error {
	if s == nil {
		return fmt.Errorf("edgeos: nil service")
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if _, dup := m.services[s.Name]; dup {
		return fmt.Errorf("edgeos: service %q already registered", s.Name)
	}
	s.state = Running
	m.services[s.Name] = s
	m.stats[s.Name] = &ElasticStats{PipelineUse: make(map[string]int)}
	return nil
}

// Service returns a registered service.
func (m *ElasticManager) Service(name string) (*Service, error) {
	s, ok := m.services[name]
	if !ok {
		return nil, fmt.Errorf("edgeos: unknown service %q", name)
	}
	return s, nil
}

// Services lists registered services sorted by descending priority, then
// name (the Differentiation ordering).
func (m *ElasticManager) Services() []*Service {
	out := make([]*Service, 0, len(m.services))
	for _, s := range m.services {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Stats returns a copy of a service's aggregate statistics.
func (m *ElasticManager) Stats(name string) (ElasticStats, error) {
	st, ok := m.stats[name]
	if !ok {
		return ElasticStats{}, fmt.Errorf("edgeos: unknown service %q", name)
	}
	cp := *st
	cp.PipelineUse = make(map[string]int, len(st.PipelineUse))
	for k, v := range st.PipelineUse {
		cp.PipelineUse[k] = v
	}
	return cp, nil
}

// evaluate scores one pipeline of a service at virtual time now.
func (m *ElasticManager) evaluate(s *Service, p Pipeline, now time.Duration) Choice {
	var est offload.Estimate
	n := len(s.DAG.Tasks)
	if p.SplitAfter >= n {
		est = m.engine.EstimateOnboard(s.DAG, now)
	} else {
		// Best remote destination for this split.
		best := offload.Estimate{Feasible: false, Reason: "no sites"}
		for _, site := range m.engine.Sites() {
			cand := m.engine.EstimateSite(s.DAG, site, p.SplitAfter, now)
			if !cand.Feasible {
				if !best.Feasible && best.Reason == "no sites" {
					best = cand
				}
				continue
			}
			if !best.Feasible || cand.Total < best.Total {
				best = cand
			}
		}
		est = best
	}
	c := Choice{Pipeline: p, Estimate: est}
	if est.Feasible {
		c.MeetsDeadline = s.Deadline == 0 || est.Total <= s.Deadline
	}
	return c
}

// Choose evaluates all pipelines of a service and returns them sorted best
// first under the current objective, considering only deadline-meeting,
// feasible options as candidates. The boolean reports whether any
// candidate exists.
func (m *ElasticManager) Choose(name string, now time.Duration) (Choice, []Choice, bool, error) {
	span := m.tracer.StartSpanAt("edgeos", "edgeos.choose", now,
		trace.String("service", name))
	defer span.FinishAt(now)
	s, err := m.Service(name)
	if err != nil {
		span.SetAttr(trace.String("error", err.Error()))
		return Choice{}, nil, false, err
	}
	if s.state == Stopped || s.state == Compromised {
		return Choice{}, nil, false, fmt.Errorf("edgeos: service %s is %v", name, s.state)
	}
	pipelines := s.EffectivePipelines()
	choices := make([]Choice, 0, len(pipelines))
	for _, p := range pipelines {
		choices = append(choices, m.evaluate(s, p, now))
	}
	sort.SliceStable(choices, func(i, j int) bool {
		ci, cj := choices[i], choices[j]
		if ci.MeetsDeadline != cj.MeetsDeadline {
			return ci.MeetsDeadline
		}
		if ci.Estimate.Feasible != cj.Estimate.Feasible {
			return ci.Estimate.Feasible
		}
		if m.objective == MinEnergy && ci.MeetsDeadline && cj.MeetsDeadline {
			if ci.Estimate.VehicleEnergyJ != cj.Estimate.VehicleEnergyJ {
				return ci.Estimate.VehicleEnergyJ < cj.Estimate.VehicleEnergyJ
			}
		}
		return ci.Estimate.Total < cj.Estimate.Total
	})
	best := choices[0]
	span.SetAttr(trace.Int("pipelines", len(pipelines)))
	if !best.Estimate.Feasible || !best.MeetsDeadline {
		span.SetAttr(trace.Bool("viable", false))
		return best, choices, false, nil
	}
	span.SetAttr(trace.Bool("viable", true),
		trace.String("pipeline", best.Pipeline.Name),
		trace.String("dest", best.Estimate.Dest))
	return best, choices, true, nil
}

// PreparedInvocation is the product of the decision step of an
// invocation: the chosen pipeline and estimate, plus the open `edgeos`
// span that CommitInvoke later closes. Between PrepareInvoke and
// CommitInvoke nothing shared is reserved — shared sites were only read —
// so a fleet can prepare many vehicles' invocations concurrently and
// commit them in canonical order afterwards (the epoch-barrier model, see
// fleet.ShardedInvokeAll). A prepared invocation is single-use.
type PreparedInvocation struct {
	m    *ElasticManager
	name string
	svc  *Service
	best Choice
	now  time.Duration
	span *trace.Span

	// done marks invocations that finished during Prepare (hang-ups and
	// errors); CommitInvoke then just replays the stored outcome.
	done bool
	res  InvocationResult
	err  error
}

// Local reports whether committing this invocation touches only
// vehicle-local state (the on-board VCU). Hang-ups and errors are local
// by definition; chosen on-board pipelines stay local even under a
// resilience policy, whose degradation ladder only ever walks *toward*
// the vehicle. Local commits may therefore run inside the parallel
// decision phase; non-local ones mutate shared sites and belong to the
// single-threaded commit phase.
func (p *PreparedInvocation) Local() bool {
	return p.done || p.best.Estimate.Dest == offload.OnboardName
}

// Dest returns the chosen destination site name for an invocation still
// awaiting commit, "" for invocations that already finished during
// Prepare (hang-ups and decision errors). The fleet's commit scheduler
// keys interaction-domain assignment off it: every non-resilient commit
// touches exactly this one shared site.
func (p *PreparedInvocation) Dest() string {
	if p.done {
		return ""
	}
	return p.best.Estimate.Dest
}

// HungUp reports whether the decision step hung the service up (no viable
// pipeline); the commit step will not execute anything.
func (p *PreparedInvocation) HungUp() bool { return p.done && p.err == nil && p.res.HungUp }

// Err returns the decision-step error, if any (unknown/stopped service).
func (p *PreparedInvocation) Err() error { return p.err }

// PrepareInvoke runs the decision step of one invocation: choose the best
// pipeline for current conditions, or hang the service up when nothing
// meets its deadline. Shared sites are only read (estimates); all
// mutation is confined to this manager's own state, so concurrent
// PrepareInvoke calls on *different* managers sharing sites are safe.
// Pair with CommitInvoke; Invoke is exactly the two run back to back.
//
// The returned value is the manager's reusable scratch — valid until this
// manager's next PrepareInvoke. A manager runs one invocation at a time
// (single-goroutine ownership), and the epoch-barrier fleet holds at most
// one prepared invocation per vehicle across the barrier, so the reuse is
// safe and keeps the split allocation-free.
func (m *ElasticManager) PrepareInvoke(name string, now time.Duration) *PreparedInvocation {
	p := &m.prep
	*p = PreparedInvocation{m: m, name: name, now: now}
	p.span = m.tracer.StartSpanAt("edgeos", "edgeos.invoke", now,
		trace.String("service", name))
	s, err := m.Service(name)
	if err != nil {
		p.failPrepare(err)
		return p
	}
	p.svc = s
	best, _, viable, err := m.Choose(name, now)
	if err != nil {
		p.failPrepare(err)
		return p
	}
	st := m.stats[name]
	if !viable {
		s.state = HungUp
		st.Invocations++
		st.HangUps++
		p.res = InvocationResult{Service: name, HungUp: true}
		p.done = true
		p.span.SetAttr(trace.Bool("hungup", true))
		p.span.FinishAt(now)
		m.emitInvocationMetrics(p.res)
		return p
	}
	if s.state == HungUp {
		s.state = Running // conditions recovered
	}
	p.best = best
	return p
}

// failPrepare records a decision-step error and closes the span the way
// Invoke always has.
func (p *PreparedInvocation) failPrepare(err error) {
	p.err = err
	p.done = true
	p.span.SetAttr(trace.String("error", err.Error()))
	p.span.FinishAt(p.now)
}

// CommitInvoke runs the commit step of a prepared invocation: execute the
// chosen pipeline (reserving device/site capacity), record stats, close
// the span, and emit metrics. Remote destinations mutate shared sites, so
// non-Local commits must run in the single-threaded commit phase, in
// canonical vehicle order.
func (m *ElasticManager) CommitInvoke(p *PreparedInvocation) (InvocationResult, error) {
	if p == nil || p.m != m {
		return InvocationResult{}, fmt.Errorf("edgeos: prepared invocation does not belong to this manager")
	}
	if p.done {
		return p.res, p.err
	}
	p.done = true
	s, name, now, best := p.svc, p.name, p.now, p.best
	var (
		done    time.Duration
		outcome offload.Outcome
		err     error
	)
	if m.engine.Resilience() != nil {
		var deadline time.Duration
		if s.Deadline > 0 {
			deadline = now + s.Deadline
		}
		done, outcome, err = m.engine.ExecuteResilient(s.DAG, best.Estimate, now, deadline)
	} else {
		done, err = m.engine.Execute(s.DAG, best.Estimate, now)
		outcome = offload.Outcome{Dest: best.Estimate.Dest, Attempts: 1}
	}
	if err != nil {
		p.err = fmt.Errorf("invoke %s: %w", name, err)
		p.span.SetAttr(trace.String("error", p.err.Error()))
		p.span.FinishAt(now)
		return InvocationResult{}, p.err
	}
	res := InvocationResult{
		Service:     name,
		Pipeline:    best.Pipeline.Name,
		Dest:        outcome.Dest,
		Latency:     done - now,
		EnergyJ:     best.Estimate.VehicleEnergyJ,
		Completed:   done,
		Attempts:    outcome.Attempts,
		FellBackTo:  outcome.FellBackTo,
		Degraded:    outcome.Degraded,
		DeadlineMet: s.Deadline == 0 || done-now <= s.Deadline,
	}
	st := m.stats[name]
	st.Invocations++
	st.TotalLatency += res.Latency
	st.TotalEnergyJ += res.EnergyJ
	st.PipelineUse[best.Pipeline.Name]++
	p.res = res
	p.span.SetAttr(trace.String("pipeline", res.Pipeline),
		trace.String("dest", res.Dest))
	p.span.FinishAt(res.Completed)
	m.emitInvocationMetrics(res)
	return res, nil
}

// emitInvocationMetrics records the per-invocation metric set (shared by
// the hang-up and completed paths; errors emit nothing, as ever).
func (m *ElasticManager) emitInvocationMetrics(res InvocationResult) {
	if m.metrics == nil {
		return
	}
	m.metrics.Add("edgeos.invocations", 1)
	m.metrics.Add("edgeos.service."+res.Service+".invocations", 1)
	if res.HungUp {
		m.metrics.Add("edgeos.hangups", 1)
		return
	}
	m.metrics.ObserveDuration("edgeos.invoke_ms", res.Latency)
	m.metrics.Add("edgeos.pipeline."+res.Pipeline, 1)
	m.metrics.Observe("edgeos.energy_j", res.EnergyJ)
	if res.FellBackTo != "" {
		m.metrics.Add("edgeos.fallbacks", 1)
	}
	if res.Degraded {
		m.metrics.Add("edgeos.degraded", 1)
	}
	if res.DeadlineMet {
		m.metrics.Add("edgeos.deadline_hits", 1)
	}
}

// Invoke runs one service invocation end to end: choose a pipeline,
// execute it (committing device/site reservations), and record stats. A
// service with no viable pipeline is hung up and the invocation reports
// HungUp without executing; a later successful Choose resumes it. Invoke
// is exactly PrepareInvoke followed by CommitInvoke — the epoch-barrier
// fleet executor calls the two steps separately.
func (m *ElasticManager) Invoke(name string, now time.Duration) (InvocationResult, error) {
	return m.CommitInvoke(m.PrepareInvoke(name, now))
}

// Engine exposes the underlying offload engine (used by tests and the
// platform facade to update mobility).
func (m *ElasticManager) Engine() *offload.Engine { return m.engine }

// InvokeRound runs one invocation of every Running service in strict
// priority order — the Differentiation property: safety-critical services
// reserve devices first, so under contention lower-priority services queue
// behind them rather than the reverse. Stopped/compromised services are
// skipped; hang-ups are recorded per service as usual.
func (m *ElasticManager) InvokeRound(now time.Duration) ([]InvocationResult, error) {
	var out []InvocationResult
	for _, s := range m.Services() {
		if s.state == Stopped || s.state == Compromised {
			continue
		}
		res, err := m.Invoke(s.Name, now)
		if err != nil {
			return out, fmt.Errorf("round invoke %s: %w", s.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

package edgeos

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/vdapcrypto"
)

// Message is one shared datum (e.g. a camera frame reference or a
// detection result) flowing between services.
type Message struct {
	Topic   string
	From    string
	At      time.Duration
	Payload []byte
}

// DataSharing is EdgeOSv's Data Sharing module: authenticated,
// ACL-controlled topic-based exchange between services (paper §IV-C:
// "authenticate the service and perform fine grain access control").
// Payloads are sealed in transit so a service that bypasses the API cannot
// read foreign data.
type DataSharing struct {
	sealer *vdapcrypto.Sealer
	// tokens authenticate services: service -> secret token.
	tokens map[string]string
	// acl[topic][service] grants: "pub", "sub", or "pubsub".
	acl map[string]map[string]string
	// retained holds the latest N messages per topic (sealed).
	retained map[string][]sealedMessage
	// retain bounds per-topic history.
	retain int
	// delivered counts messages handed to each service.
	delivered map[string]int
}

type sealedMessage struct {
	from    string
	at      time.Duration
	sealed  []byte
	rawSize int
}

// NewDataSharing builds the module. retain bounds per-topic history
// (minimum 1).
func NewDataSharing(secret []byte, retain int) (*DataSharing, error) {
	sealer, err := vdapcrypto.NewSealer(secret)
	if err != nil {
		return nil, err
	}
	if retain < 1 {
		retain = 1
	}
	return &DataSharing{
		sealer:    sealer,
		tokens:    make(map[string]string),
		acl:       make(map[string]map[string]string),
		retained:  make(map[string][]sealedMessage),
		retain:    retain,
		delivered: make(map[string]int),
	}, nil
}

// Enroll registers a service and returns its authentication token.
func (d *DataSharing) Enroll(service string) (string, error) {
	if service == "" {
		return "", fmt.Errorf("edgeos: empty service name")
	}
	if _, dup := d.tokens[service]; dup {
		return "", fmt.Errorf("edgeos: service %q already enrolled", service)
	}
	token := vdapcrypto.Fingerprint([]byte("token:" + service))
	d.tokens[service] = token
	return token, nil
}

// Grant gives a service rights on a topic. mode is "pub", "sub", or
// "pubsub".
func (d *DataSharing) Grant(topic, service, mode string) error {
	switch mode {
	case "pub", "sub", "pubsub":
	default:
		return fmt.Errorf("edgeos: unknown grant mode %q", mode)
	}
	if _, ok := d.tokens[service]; !ok {
		return fmt.Errorf("edgeos: service %q not enrolled", service)
	}
	if d.acl[topic] == nil {
		d.acl[topic] = make(map[string]string)
	}
	d.acl[topic][service] = mode
	return nil
}

// Revoke removes a service's rights on a topic.
func (d *DataSharing) Revoke(topic, service string) {
	if m, ok := d.acl[topic]; ok {
		delete(m, service)
	}
}

// authenticate verifies the (service, token) pair.
func (d *DataSharing) authenticate(service, token string) error {
	want, ok := d.tokens[service]
	if !ok || want != token {
		return fmt.Errorf("edgeos: authentication failed for %q", service)
	}
	return nil
}

func (d *DataSharing) allowed(topic, service, need string) bool {
	mode, ok := d.acl[topic][service]
	if !ok {
		return false
	}
	return mode == "pubsub" || mode == need
}

// Publish shares a payload on a topic.
func (d *DataSharing) Publish(service, token, topic string, at time.Duration, payload []byte) error {
	if err := d.authenticate(service, token); err != nil {
		return err
	}
	if !d.allowed(topic, service, "pub") {
		return fmt.Errorf("edgeos: service %s lacks publish rights on %q", service, topic)
	}
	sealed, err := d.sealer.Seal(payload, []byte("topic:"+topic))
	if err != nil {
		return err
	}
	msgs := append(d.retained[topic], sealedMessage{from: service, at: at, sealed: sealed, rawSize: len(payload)})
	if len(msgs) > d.retain {
		msgs = msgs[len(msgs)-d.retain:]
	}
	d.retained[topic] = msgs
	return nil
}

// Fetch returns a topic's retained messages newer than since for an
// authorized subscriber.
func (d *DataSharing) Fetch(service, token, topic string, since time.Duration) ([]Message, error) {
	if err := d.authenticate(service, token); err != nil {
		return nil, err
	}
	if !d.allowed(topic, service, "sub") {
		return nil, fmt.Errorf("edgeos: service %s lacks subscribe rights on %q", service, topic)
	}
	var out []Message
	for _, sm := range d.retained[topic] {
		if sm.at <= since {
			continue
		}
		payload, err := d.sealer.Open(sm.sealed, []byte("topic:"+topic))
		if err != nil {
			return nil, fmt.Errorf("unseal topic %q: %w", topic, err)
		}
		out = append(out, Message{Topic: topic, From: sm.from, At: sm.at, Payload: payload})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	d.delivered[service] += len(out)
	return out, nil
}

// Delivered returns how many messages a service has fetched.
func (d *DataSharing) Delivered(service string) int { return d.delivered[service] }

// Topics lists topics with any retained data, sorted.
func (d *DataSharing) Topics() []string {
	out := make([]string, 0, len(d.retained))
	for t := range d.retained {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

package edgeos

import (
	"math"
	"testing"
)

func TestLaunchValidation(t *testing.T) {
	r := NewContainerRuntime()
	if _, err := r.Launch("", ContainerIsolation, 100, 256, "m"); err == nil {
		t.Fatal("empty service accepted")
	}
	if _, err := r.Launch("x", ContainerIsolation, 0, 256, "m"); err == nil {
		t.Fatal("zero shares accepted")
	}
	if _, err := r.Launch("x", ContainerIsolation, 100, 0, "m"); err == nil {
		t.Fatal("zero memory accepted")
	}
	if _, err := r.Launch("x", ContainerIsolation, 100, 256, "m"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Launch("x", ContainerIsolation, 100, 256, "m"); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestCPUFraction(t *testing.T) {
	r := NewContainerRuntime()
	mustLaunch(t, r, "a", 300)
	mustLaunch(t, r, "b", 100)
	fa, err := r.CPUFraction("a")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fa-0.75) > 1e-9 {
		t.Fatalf("fraction a = %v, want 0.75", fa)
	}
	if err := r.Remove("a"); err != nil {
		t.Fatal(err)
	}
	fb, _ := r.CPUFraction("b")
	if fb != 1 {
		t.Fatalf("fraction b after removal = %v, want 1", fb)
	}
	if _, err := r.CPUFraction("ghost"); err == nil {
		t.Fatal("unknown service accepted")
	}
	if err := r.Remove("ghost"); err == nil {
		t.Fatal("removing unknown service succeeded")
	}
}

func mustLaunch(t *testing.T, r *ContainerRuntime, name string, shares int) *Container {
	t.Helper()
	c, err := r.Launch(name, ContainerIsolation, shares, 512, "m-"+name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMemoryIsolation(t *testing.T) {
	r := NewContainerRuntime()
	c := mustLaunch(t, r, "svc", 100)
	if err := c.ChargeMemory(400); err != nil {
		t.Fatal(err)
	}
	if err := c.ChargeMemory(200); err == nil {
		t.Fatal("over-limit charge accepted")
	}
	c.ReleaseMemory(300)
	if err := c.ChargeMemory(200); err != nil {
		t.Fatalf("charge after release failed: %v", err)
	}
	if c.UsedMB() != 300 {
		t.Fatalf("UsedMB = %v, want 300", c.UsedMB())
	}
	if err := c.ChargeMemory(-1); err == nil {
		t.Fatal("negative charge accepted")
	}
	c.ReleaseMemory(1e9)
	if c.UsedMB() != 0 {
		t.Fatal("over-release went negative")
	}
}

func TestStoppedContainerRefusesCharges(t *testing.T) {
	r := NewContainerRuntime()
	c := mustLaunch(t, r, "svc", 100)
	c.Stop()
	if c.Running() {
		t.Fatal("stopped container still running")
	}
	if c.UsedMB() != 0 {
		t.Fatal("stop did not release memory")
	}
	if err := c.ChargeMemory(1); err == nil {
		t.Fatal("stopped container accepted charge")
	}
}

func TestContainersSorted(t *testing.T) {
	r := NewContainerRuntime()
	mustLaunch(t, r, "zeta", 100)
	mustLaunch(t, r, "alpha", 100)
	got := r.Containers()
	if len(got) != 2 || got[0].Service != "alpha" || got[1].Service != "zeta" {
		t.Fatalf("containers = %v", got)
	}
}

func TestIsolationKindString(t *testing.T) {
	if ContainerIsolation.String() != "container" || TEEIsolation.String() != "tee" {
		t.Fatal("isolation names wrong")
	}
	if IsolationKind(9).String() != "isolation(9)" {
		t.Fatal("unknown isolation name wrong")
	}
}

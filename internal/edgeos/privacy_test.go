package edgeos

import (
	"testing"
	"time"
)

var privacySecret = []byte("vehicle-long-term-privacy-secret")

func TestNewPrivacyModuleValidation(t *testing.T) {
	if _, err := NewPrivacyModule([]byte("short"), time.Minute, 100); err == nil {
		t.Fatal("short secret accepted")
	}
	if _, err := NewPrivacyModule(privacySecret, 0, 100); err == nil {
		t.Fatal("zero rotation accepted")
	}
	if _, err := NewPrivacyModule(privacySecret, time.Minute, 5); err == nil {
		t.Fatal("too-fine grid accepted")
	}
}

func TestPseudonymRotatesAndRecognized(t *testing.T) {
	p, err := NewPrivacyModule(privacySecret, 10*time.Minute, 100)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Pseudonym(0)
	b := p.Pseudonym(5 * time.Minute)
	c := p.Pseudonym(15 * time.Minute)
	if a != b {
		t.Fatal("pseudonym rotated within epoch")
	}
	if a == c {
		t.Fatal("pseudonym did not rotate")
	}
	if !p.IsMine(a, 15*time.Minute, 20*time.Minute) {
		t.Fatal("own old pseudonym not recognized")
	}
	if p.IsMine("deadbeefdeadbeefdeadbeefdeadbeef", 0, time.Hour) {
		t.Fatal("foreign pseudonym recognized")
	}
}

func TestGeneralizeLocation(t *testing.T) {
	p, _ := NewPrivacyModule(privacySecret, time.Minute, 100)
	gx, gy := p.GeneralizeLocation(123, 456)
	if gx != 150 || gy != 450 {
		t.Fatalf("generalized = (%v, %v), want (150, 450)", gx, gy)
	}
	// Points in the same cell collapse to the same center.
	gx2, gy2 := p.GeneralizeLocation(199, 401)
	if gx2 != gx || gy2 != gy {
		t.Fatal("same-cell points did not collapse")
	}
	// Negative coordinates snap consistently.
	gx3, _ := p.GeneralizeLocation(-10, 0)
	if gx3 != -50 {
		t.Fatalf("negative snap = %v, want -50", gx3)
	}
}

func TestScrub(t *testing.T) {
	p, _ := NewPrivacyModule(privacySecret, time.Minute, 100)
	rec := p.Scrub(90*time.Second, 123, 456, "obd", []byte("rpm=2000"))
	if rec.Pseudonym != p.Pseudonym(90*time.Second) {
		t.Fatal("scrubbed record uses wrong pseudonym")
	}
	if rec.X != 150 || rec.Y != 450 {
		t.Fatalf("location not generalized: (%v, %v)", rec.X, rec.Y)
	}
	if rec.Kind != "obd" || string(rec.Payload) != "rpm=2000" {
		t.Fatal("payload mangled")
	}
	// The pseudonym must not leak across epochs.
	rec2 := p.Scrub(10*time.Minute, 123, 456, "obd", nil)
	if rec2.Pseudonym == rec.Pseudonym {
		t.Fatal("pseudonym identical across epochs")
	}
}

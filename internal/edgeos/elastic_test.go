package edgeos

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/offload"
	"repro/internal/tasks"
	"repro/internal/vcu"
	"repro/internal/xedge"
)

// buildManager assembles an elastic manager with an on-board VCU, one
// huge-coverage RSU, and the cloud, at the given vehicle speed. Shared by
// tests and benchmarks.
func buildManager(speedMS float64, objective Objective) (*ElasticManager, error) {
	m, err := vcu.DefaultVCU()
	if err != nil {
		return nil, err
	}
	dsf, err := vcu.NewDSF(m, vcu.GreedyEFT{})
	if err != nil {
		return nil, err
	}
	road, err := geo.NewRoad(10000)
	if err != nil {
		return nil, err
	}
	road.PlaceStations(10, geo.BaseStation, 800, 0, "bs")
	rsu, err := xedge.NewRSU(geo.Station{ID: "rsu-0", Kind: geo.RSU, Pos: geo.Point{X: 0}, Radius: 1e9})
	if err != nil {
		return nil, err
	}
	cl, err := xedge.NewCloud()
	if err != nil {
		return nil, err
	}
	eng, err := offload.NewEngine(dsf, geo.Mobility{Road: road, SpeedMS: speedMS}, []*xedge.Site{rsu, cl})
	if err != nil {
		return nil, err
	}
	return NewElasticManager(eng, objective)
}

// newManager is the test-side wrapper around buildManager.
func newManager(t *testing.T, speedMS float64, objective Objective) *ElasticManager {
	t.Helper()
	mgr, err := buildManager(speedMS, objective)
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

func kidnapperService() *Service {
	return &Service{
		Name:     "kidnapper-search",
		Priority: PriorityInteractive,
		Deadline: 2 * time.Second,
		DAG:      tasks.ALPR(),
		Image:    []byte("kidnapper-search-v1"),
	}
}

func TestNewElasticManagerValidation(t *testing.T) {
	if _, err := NewElasticManager(nil, MinLatency); err == nil {
		t.Fatal("nil engine accepted")
	}
	mgr := newManager(t, 0, MinLatency)
	if err := mgr.SetObjective(Objective(99)); err == nil {
		t.Fatal("bad objective accepted")
	}
	if err := mgr.SetObjective(MinEnergy); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterValidation(t *testing.T) {
	mgr := newManager(t, 0, MinLatency)
	if err := mgr.Register(nil); err == nil {
		t.Fatal("nil service accepted")
	}
	if err := mgr.Register(&Service{Name: "x"}); err == nil {
		t.Fatal("DAG-less service accepted")
	}
	svc := kidnapperService()
	if err := mgr.Register(svc); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register(kidnapperService()); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if svc.State() != Running {
		t.Fatalf("state after register = %v", svc.State())
	}
}

func TestServiceValidate(t *testing.T) {
	bad := []*Service{
		{},
		{Name: "x"},
		{Name: "x", DAG: tasks.ALPR(), Deadline: -1, Priority: PriorityInteractive},
		{Name: "x", DAG: tasks.ALPR(), Priority: 0},
		{Name: "x", DAG: tasks.ALPR(), Priority: PriorityInteractive,
			Pipelines: []Pipeline{{Name: "p", SplitAfter: 99}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate passed", i)
		}
	}
}

func TestDefaultPipelines(t *testing.T) {
	ps := DefaultPipelines(tasks.ALPR())
	if len(ps) != 4 { // onboard, offload-all, split-1, split-2
		t.Fatalf("pipelines = %d, want 4", len(ps))
	}
	if DefaultPipelines(nil) != nil {
		t.Fatal("nil DAG produced pipelines")
	}
}

func TestChooseEvaluatesAllPipelines(t *testing.T) {
	mgr := newManager(t, 0, MinLatency)
	if err := mgr.Register(kidnapperService()); err != nil {
		t.Fatal(err)
	}
	best, all, viable, err := mgr.Choose("kidnapper-search", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !viable {
		t.Fatal("no viable pipeline with good network and idle platform")
	}
	if len(all) != 4 {
		t.Fatalf("choices = %d, want 4", len(all))
	}
	if !best.MeetsDeadline {
		t.Fatal("best choice misses deadline")
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].MeetsDeadline == all[i].MeetsDeadline &&
			all[i-1].Estimate.Feasible && all[i].Estimate.Feasible &&
			all[i-1].Estimate.Total > all[i].Estimate.Total {
			t.Fatal("choices not sorted by latency within deadline class")
		}
	}
}

func TestInvokeRecordsStats(t *testing.T) {
	mgr := newManager(t, 0, MinLatency)
	if err := mgr.Register(kidnapperService()); err != nil {
		t.Fatal(err)
	}
	res, err := mgr.Invoke("kidnapper-search", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.HungUp {
		t.Fatal("invocation hung up unexpectedly")
	}
	if res.Latency <= 0 {
		t.Fatal("non-positive latency")
	}
	st, err := mgr.Stats("kidnapper-search")
	if err != nil {
		t.Fatal(err)
	}
	if st.Invocations != 1 || st.HangUps != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PipelineUse[res.Pipeline] != 1 {
		t.Fatalf("pipeline use not recorded: %+v", st.PipelineUse)
	}
}

// TestHangUpWhenDeadlineImpossible: a deadline below any pipeline's
// latency hangs the service; loosening conditions resumes it.
func TestHangUpAndResume(t *testing.T) {
	mgr := newManager(t, 0, MinLatency)
	svc := kidnapperService()
	svc.Deadline = time.Nanosecond // impossible
	if err := mgr.Register(svc); err != nil {
		t.Fatal(err)
	}
	res, err := mgr.Invoke("kidnapper-search", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HungUp {
		t.Fatal("impossible deadline not hung up")
	}
	if svc.State() != HungUp {
		t.Fatalf("state = %v, want hung-up", svc.State())
	}
	st, _ := mgr.Stats("kidnapper-search")
	if st.HangUps != 1 {
		t.Fatalf("hangups = %d", st.HangUps)
	}
	// Requirements relax: deadline becomes achievable, service resumes.
	svc.Deadline = 10 * time.Second
	res2, err := mgr.Invoke("kidnapper-search", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.HungUp {
		t.Fatal("service did not resume after conditions recovered")
	}
	if svc.State() != Running {
		t.Fatalf("state = %v after recovery", svc.State())
	}
}

// TestPipelineAdaptsToSpeed reproduces the paper's elastic-management
// story: with a parked vehicle and a good network, offloading wins for the
// DNN-heavy pipeline; at 70 MPH the cellular paths degrade, but the
// DSRC-linked RSU remains attractive — so force cellular-only by removing
// the RSU and watch the choice move on-board.
func TestPipelineAdaptsToSpeed(t *testing.T) {
	heavy := &Service{
		Name:     "heavy-detect",
		Priority: PrioritySafety,
		DAG:      &tasks.DAG{Name: "heavy", Tasks: []*tasks.Task{tasks.VehicleDetectionDNN()}},
		Image:    []byte("heavy-v1"),
	}

	parked := newManager(t, 0, MinLatency)
	if err := parked.Register(heavy); err != nil {
		t.Fatal(err)
	}
	bestParked, _, _, err := parked.Choose("heavy-detect", 0)
	if err != nil {
		t.Fatal(err)
	}
	if bestParked.Estimate.Dest == offload.OnboardName {
		t.Fatal("parked vehicle kept heavy DNN on board")
	}

	// Cellular-only world at 70 MPH: build a manager whose only remote
	// site is the cloud.
	m, _ := vcu.DefaultVCU()
	dsf, _ := vcu.NewDSF(m, vcu.GreedyEFT{})
	road, _ := geo.NewRoad(10000)
	road.PlaceStations(10, geo.BaseStation, 800, 0, "bs")
	cl, _ := xedge.NewCloud()
	eng, _ := offload.NewEngine(dsf, geo.Mobility{Road: road, SpeedMS: geo.MPH(70)}, []*xedge.Site{cl})
	fast, err := NewElasticManager(eng, MinLatency)
	if err != nil {
		t.Fatal(err)
	}
	heavy2 := &Service{
		Name:     "heavy-detect",
		Priority: PrioritySafety,
		DAG:      heavy.DAG.Clone(),
		Image:    []byte("heavy-v1"),
	}
	if err := fast.Register(heavy2); err != nil {
		t.Fatal(err)
	}
	bestFast, _, _, err := fast.Choose("heavy-detect", 0)
	if err != nil {
		t.Fatal(err)
	}
	if bestFast.Estimate.Total <= bestParked.Estimate.Total {
		t.Fatalf("degraded network not slower: %v <= %v", bestFast.Estimate.Total, bestParked.Estimate.Total)
	}
}

func TestMinEnergyObjective(t *testing.T) {
	lat := newManager(t, 0, MinLatency)
	eng := newManager(t, 0, MinEnergy)
	for _, mgr := range []*ElasticManager{lat, eng} {
		svc := kidnapperService()
		svc.Deadline = 30 * time.Second // loose, so energy mode has room
		if err := mgr.Register(svc); err != nil {
			t.Fatal(err)
		}
	}
	bl, _, _, err := lat.Choose("kidnapper-search", 0)
	if err != nil {
		t.Fatal(err)
	}
	be, _, _, err := eng.Choose("kidnapper-search", 0)
	if err != nil {
		t.Fatal(err)
	}
	if be.Estimate.VehicleEnergyJ > bl.Estimate.VehicleEnergyJ {
		t.Fatalf("energy objective picked costlier pipeline: %v J vs %v J",
			be.Estimate.VehicleEnergyJ, bl.Estimate.VehicleEnergyJ)
	}
}

func TestServicesSortedByPriority(t *testing.T) {
	mgr := newManager(t, 0, MinLatency)
	svcs := []*Service{
		{Name: "b-infotainment", Priority: PriorityBackground, DAG: tasks.InfotainmentDecode(), Image: []byte("i")},
		{Name: "a-pedestrian", Priority: PrioritySafety, DAG: tasks.PedestrianAlert(), Image: []byte("p")},
		{Name: "c-diag", Priority: PriorityInteractive, DAG: tasks.Diagnostics(), Image: []byte("d")},
	}
	for _, s := range svcs {
		if err := mgr.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	got := mgr.Services()
	want := []string{"a-pedestrian", "c-diag", "b-infotainment"}
	for i, s := range got {
		if s.Name != want[i] {
			t.Fatalf("order[%d] = %s, want %s", i, s.Name, want[i])
		}
	}
}

func TestChooseUnknownAndStoppedService(t *testing.T) {
	mgr := newManager(t, 0, MinLatency)
	if _, _, _, err := mgr.Choose("ghost", 0); err == nil {
		t.Fatal("unknown service accepted")
	}
	svc := kidnapperService()
	if err := mgr.Register(svc); err != nil {
		t.Fatal(err)
	}
	svc.state = Stopped
	if _, _, _, err := mgr.Choose("kidnapper-search", 0); err == nil {
		t.Fatal("stopped service chose a pipeline")
	}
	if _, err := mgr.Stats("ghost"); err == nil {
		t.Fatal("stats for unknown service")
	}
}

func TestObjectiveString(t *testing.T) {
	if MinLatency.String() != "min-latency" || MinEnergy.String() != "min-energy" {
		t.Fatal("objective names wrong")
	}
	if Objective(9).String() != "objective(9)" {
		t.Fatal("unknown objective name wrong")
	}
	if Running.String() != "running" || HungUp.String() != "hung-up" || ServiceState(9).String() != "state(9)" {
		t.Fatal("state names wrong")
	}
}

// TestInvokeRoundDifferentiation: under contention, the safety service is
// scheduled first each round and therefore never waits behind background
// work on the same devices.
func TestInvokeRoundDifferentiation(t *testing.T) {
	mgr := newManager(t, 0, MinLatency)
	// Force everything on-board so the services contend for the VCU.
	// Identical workloads so latency is directly comparable: the only
	// difference is priority, hence scheduling order.
	safety := &Service{
		Name: "a-safety", Priority: PrioritySafety,
		DAG: tasks.PedestrianAlert(), Image: []byte("s"),
		Pipelines: []Pipeline{{Name: "onboard", SplitAfter: 2}},
	}
	background := &Service{
		Name: "z-background", Priority: PriorityBackground,
		DAG: tasks.PedestrianAlert(), Image: []byte("b"),
		Pipelines: []Pipeline{{Name: "onboard", SplitAfter: 2}},
	}
	if err := mgr.Register(background); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register(safety); err != nil {
		t.Fatal(err)
	}
	var safetyTotal, backgroundTotal time.Duration
	for round := 0; round < 6; round++ {
		results, err := mgr.InvokeRound(0) // same instant: maximal contention
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 2 {
			t.Fatalf("round returned %d results", len(results))
		}
		if results[0].Service != "a-safety" {
			t.Fatalf("round order = %v, safety must go first", results[0].Service)
		}
		safetyTotal += results[0].Latency
		backgroundTotal += results[1].Latency
	}
	if safetyTotal >= backgroundTotal {
		t.Fatalf("safety total latency %v not below background %v under contention",
			safetyTotal, backgroundTotal)
	}
}

func TestInvokeRoundSkipsStopped(t *testing.T) {
	mgr := newManager(t, 0, MinLatency)
	svc := kidnapperService()
	if err := mgr.Register(svc); err != nil {
		t.Fatal(err)
	}
	svc.state = Stopped
	results, err := mgr.InvokeRound(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("stopped service invoked in round: %v", results)
	}
}

package edgeos

import (
	"fmt"
	"math"
	"time"

	"repro/internal/vdapcrypto"
)

// PrivacyModule provides identity and location protection for data leaving
// the vehicle (paper §IV-C): rotating pseudonyms for vehicle identity, and
// location generalization so GPS traces shared externally cannot pinpoint
// sensitive places (home, hospital).
type PrivacyModule struct {
	scheme *vdapcrypto.PseudonymScheme
	// cellM is the location-generalization grid size in meters.
	cellM float64
}

// NewPrivacyModule builds the module from the vehicle's long-term secret.
// rotation is the pseudonym lifetime; cellM the location grid (min 10 m).
func NewPrivacyModule(secret []byte, rotation time.Duration, cellM float64) (*PrivacyModule, error) {
	scheme, err := vdapcrypto.NewPseudonymScheme(secret, rotation)
	if err != nil {
		return nil, err
	}
	if cellM < 10 {
		return nil, fmt.Errorf("edgeos: location cell %v m too fine (min 10)", cellM)
	}
	return &PrivacyModule{scheme: scheme, cellM: cellM}, nil
}

// Pseudonym returns the identity to present externally at virtual time t.
func (p *PrivacyModule) Pseudonym(t time.Duration) string { return p.scheme.At(t) }

// IsMine reports whether a pseudonym was issued by this vehicle within the
// lookback window — how the vehicle recognizes replies addressed to its
// past identities.
func (p *PrivacyModule) IsMine(pseudonym string, t, lookback time.Duration) bool {
	return p.scheme.Mine(pseudonym, t, lookback)
}

// GeneralizeLocation snaps a coordinate to the privacy grid's cell center.
func (p *PrivacyModule) GeneralizeLocation(x, y float64) (gx, gy float64) {
	gx = (math.Floor(x/p.cellM) + 0.5) * p.cellM
	gy = (math.Floor(y/p.cellM) + 0.5) * p.cellM
	return gx, gy
}

// SharedRecord is a privacy-scrubbed datum ready to leave the vehicle.
type SharedRecord struct {
	Pseudonym string        `json:"pseudonym"`
	At        time.Duration `json:"at"`
	X         float64       `json:"x"`
	Y         float64       `json:"y"`
	Kind      string        `json:"kind"`
	Payload   []byte        `json:"payload"`
}

// Scrub produces the external form of a record: vehicle identity replaced
// by the current pseudonym and location generalized to the grid.
func (p *PrivacyModule) Scrub(t time.Duration, x, y float64, kind string, payload []byte) SharedRecord {
	gx, gy := p.GeneralizeLocation(x, y)
	return SharedRecord{
		Pseudonym: p.Pseudonym(t),
		At:        t,
		X:         gx,
		Y:         gy,
		Kind:      kind,
		Payload:   payload,
	}
}

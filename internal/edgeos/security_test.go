package edgeos

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/tasks"
)

func newSecured(t *testing.T) (*SecurityModule, *ContainerRuntime, *ElasticManager) {
	t.Helper()
	mgr := newManager(t, 0, MinLatency)
	rt := NewContainerRuntime()
	sm, err := NewSecurityModule(rt, mgr)
	if err != nil {
		t.Fatal(err)
	}
	return sm, rt, mgr
}

func teeService() *Service {
	return &Service{
		Name:     "pedestrian-alert",
		Priority: PrioritySafety,
		DAG:      tasks.PedestrianAlert(),
		TEE:      true,
		Image:    []byte("pedestrian-alert-binary-v1"),
	}
}

func TestNewSecurityModuleValidation(t *testing.T) {
	mgr := newManager(t, 0, MinLatency)
	if _, err := NewSecurityModule(nil, mgr); err == nil {
		t.Fatal("nil runtime accepted")
	}
	if _, err := NewSecurityModule(NewContainerRuntime(), nil); err == nil {
		t.Fatal("nil manager accepted")
	}
}

func TestInstallLaunchesAndRegisters(t *testing.T) {
	sm, rt, mgr := newSecured(t)
	if err := sm.Install(teeService(), 200, 1024); err != nil {
		t.Fatal(err)
	}
	c, err := rt.Get("pedestrian-alert")
	if err != nil {
		t.Fatal(err)
	}
	if c.Isolation != TEEIsolation {
		t.Fatalf("isolation = %v, want TEE", c.Isolation)
	}
	if _, err := mgr.Service("pedestrian-alert"); err != nil {
		t.Fatal("service not registered with elastic manager")
	}
	if err := sm.Attest("pedestrian-alert"); err != nil {
		t.Fatalf("fresh install fails attestation: %v", err)
	}
}

func TestInstallValidation(t *testing.T) {
	sm, _, _ := newSecured(t)
	if err := sm.Install(nil, 100, 256); err == nil {
		t.Fatal("nil service accepted")
	}
	noImage := teeService()
	noImage.Image = nil
	if err := sm.Install(noImage, 100, 256); err == nil {
		t.Fatal("image-less service accepted")
	}
}

func TestInstallRollsBackOnDuplicateRegistration(t *testing.T) {
	sm, rt, mgr := newSecured(t)
	if err := mgr.Register(teeService()); err != nil { // occupy the name
		t.Fatal(err)
	}
	if err := sm.Install(teeService(), 100, 256); err == nil {
		t.Fatal("duplicate install succeeded")
	}
	if _, err := rt.Get("pedestrian-alert"); err == nil {
		t.Fatal("container left behind after failed install")
	}
}

func TestTEESealUnseal(t *testing.T) {
	sm, _, _ := newSecured(t)
	if err := sm.Install(teeService(), 100, 512); err != nil {
		t.Fatal(err)
	}
	secret := []byte("model weights checkpoint")
	env, err := sm.Seal("pedestrian-alert", secret)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sm.Unseal("pedestrian-alert", env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("TEE round trip mismatch")
	}
	if _, err := sm.Seal("ghost", secret); err == nil {
		t.Fatal("sealing for unknown TEE succeeded")
	}
	// Non-TEE services have no sealer.
	plain := &Service{Name: "plain", Priority: PriorityBackground, DAG: tasks.Diagnostics(), Image: []byte("p")}
	if err := sm.Install(plain, 100, 256); err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Seal("plain", secret); err == nil {
		t.Fatal("sealing for non-TEE service succeeded")
	}
}

func TestCompromiseAndReinstall(t *testing.T) {
	sm, rt, mgr := newSecured(t)
	svc := teeService()
	if err := sm.Install(svc, 100, 512); err != nil {
		t.Fatal(err)
	}
	if err := sm.MarkCompromised("pedestrian-alert"); err != nil {
		t.Fatal(err)
	}
	if svc.State() != Compromised {
		t.Fatalf("state = %v", svc.State())
	}
	// Compromised services cannot be invoked.
	if _, err := mgr.Invoke("pedestrian-alert", 0); err == nil {
		t.Fatal("compromised service invoked")
	}
	old, _ := rt.Get("pedestrian-alert")
	if old.Running() {
		t.Fatal("compromised container still running")
	}
	if err := sm.Reinstall("pedestrian-alert"); err != nil {
		t.Fatal(err)
	}
	if svc.State() != Running {
		t.Fatalf("state after reinstall = %v", svc.State())
	}
	fresh, _ := rt.Get("pedestrian-alert")
	if !fresh.Running() {
		t.Fatal("reinstalled container not running")
	}
	if fresh.Generation != 1 {
		t.Fatalf("generation = %d, want 1", fresh.Generation)
	}
	if sm.Reinstalls("pedestrian-alert") != 1 {
		t.Fatal("reinstall not counted")
	}
	// And it works again.
	if _, err := mgr.Invoke("pedestrian-alert", time.Second); err != nil {
		t.Fatalf("invoke after reinstall: %v", err)
	}
}

func TestReinstallRefusesTamperedImage(t *testing.T) {
	sm, _, _ := newSecured(t)
	svc := teeService()
	if err := sm.Install(svc, 100, 512); err != nil {
		t.Fatal(err)
	}
	if err := sm.MarkCompromised(svc.Name); err != nil {
		t.Fatal(err)
	}
	svc.Image = []byte("evil replacement")
	if err := sm.Reinstall(svc.Name); err == nil {
		t.Fatal("reinstall from tampered image succeeded")
	}
}

func TestAttestUnknownService(t *testing.T) {
	sm, _, _ := newSecured(t)
	if err := sm.Attest("ghost"); err == nil {
		t.Fatal("attested unknown service")
	}
}

func TestMarkCompromisedUnknown(t *testing.T) {
	sm, _, _ := newSecured(t)
	if err := sm.MarkCompromised("ghost"); err == nil {
		t.Fatal("marked unknown service")
	}
	if err := sm.Reinstall("ghost"); err == nil {
		t.Fatal("reinstalled unknown service")
	}
}

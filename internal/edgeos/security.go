package edgeos

import (
	"fmt"

	"repro/internal/vdapcrypto"
)

// SecurityModule monitors services, attests their images, seals TEE
// memory, and — implementing the Reliability property — removes and
// reinstalls services it finds compromised (paper §IV-C: "this module will
// remove the compromised one and re-install an initialized one").
type SecurityModule struct {
	runtime  *ContainerRuntime
	manager  *ElasticManager
	expected map[string]string // service -> expected measurement
	sealers  map[string]*vdapcrypto.Sealer
	// trusted whitelists image measurements accepted via migration.
	trusted map[string]bool
	// reinstalls tallies reliability actions per service.
	reinstalls map[string]int
}

// NewSecurityModule builds the module over the container runtime and the
// elastic manager (which owns service registrations).
func NewSecurityModule(runtime *ContainerRuntime, manager *ElasticManager) (*SecurityModule, error) {
	if runtime == nil || manager == nil {
		return nil, fmt.Errorf("edgeos: security module needs runtime and manager")
	}
	return &SecurityModule{
		runtime:    runtime,
		manager:    manager,
		expected:   make(map[string]string),
		sealers:    make(map[string]*vdapcrypto.Sealer),
		trusted:    make(map[string]bool),
		reinstalls: make(map[string]int),
	}, nil
}

// Install registers a service with EdgeOSv: validates it, records its
// attestation measurement, launches its sandbox (TEE when requested), and
// registers it with Elastic Management.
func (sm *SecurityModule) Install(s *Service, cpuShares int, memoryLimitMB float64) error {
	if s == nil {
		return fmt.Errorf("edgeos: nil service")
	}
	if len(s.Image) == 0 {
		return fmt.Errorf("edgeos: service %s has no image to measure", s.Name)
	}
	if err := s.Validate(); err != nil {
		return err
	}
	measurement := vdapcrypto.Fingerprint(s.Image)
	isolation := ContainerIsolation
	if s.TEE {
		isolation = TEEIsolation
		sealer, err := vdapcrypto.NewSealer([]byte("tee-seal:" + s.Name + ":" + measurement))
		if err != nil {
			return fmt.Errorf("tee sealer for %s: %w", s.Name, err)
		}
		sm.sealers[s.Name] = sealer
	}
	if _, err := sm.runtime.Launch(s.Name, isolation, cpuShares, memoryLimitMB, measurement); err != nil {
		return err
	}
	if err := sm.manager.Register(s); err != nil {
		rerr := sm.runtime.Remove(s.Name)
		_ = rerr // best-effort rollback; the Register error is primary
		return err
	}
	sm.expected[s.Name] = measurement
	return nil
}

// Attest verifies a service's installed image measurement against the
// expected value recorded at install time.
func (sm *SecurityModule) Attest(service string) error {
	want, ok := sm.expected[service]
	if !ok {
		return fmt.Errorf("edgeos: service %q was never installed", service)
	}
	c, err := sm.runtime.Get(service)
	if err != nil {
		return err
	}
	if c.Measurement != want {
		return fmt.Errorf("edgeos: service %s attestation mismatch: have %s want %s",
			service, c.Measurement, want)
	}
	return nil
}

// Seal encrypts data inside a TEE service's sealed memory.
func (sm *SecurityModule) Seal(service string, plaintext []byte) ([]byte, error) {
	sealer, ok := sm.sealers[service]
	if !ok {
		return nil, fmt.Errorf("edgeos: service %s has no TEE", service)
	}
	return sealer.Seal(plaintext, []byte("tee:"+service))
}

// Unseal decrypts TEE-sealed data for its owning service.
func (sm *SecurityModule) Unseal(service string, envelope []byte) ([]byte, error) {
	sealer, ok := sm.sealers[service]
	if !ok {
		return nil, fmt.Errorf("edgeos: service %s has no TEE", service)
	}
	return sealer.Open(envelope, []byte("tee:"+service))
}

// MarkCompromised is the monitor's verdict: the service is flagged and its
// sandbox stopped.
func (sm *SecurityModule) MarkCompromised(service string) error {
	s, err := sm.manager.Service(service)
	if err != nil {
		return err
	}
	c, err := sm.runtime.Get(service)
	if err != nil {
		return err
	}
	s.state = Compromised
	c.Stop()
	return nil
}

// Reinstall implements the reliability action: the compromised sandbox is
// destroyed and a fresh one launched from the original image; the service
// returns to Running.
func (sm *SecurityModule) Reinstall(service string) error {
	s, err := sm.manager.Service(service)
	if err != nil {
		return err
	}
	old, err := sm.runtime.Get(service)
	if err != nil {
		return err
	}
	want, ok := sm.expected[service]
	if !ok {
		return fmt.Errorf("edgeos: no recorded measurement for %q", service)
	}
	// Verify the pristine image still matches before trusting it.
	if got := vdapcrypto.Fingerprint(s.Image); got != want {
		return fmt.Errorf("edgeos: pristine image of %s no longer matches measurement", service)
	}
	gen := old.Generation
	shares, limit, isolation := old.CPUShares, old.MemoryLimitMB, old.Isolation
	if err := sm.runtime.Remove(service); err != nil {
		return err
	}
	fresh, err := sm.runtime.Launch(service, isolation, shares, limit, want)
	if err != nil {
		return err
	}
	fresh.Generation = gen + 1
	s.state = Running
	sm.reinstalls[service]++
	return nil
}

// Reinstalls returns how many times a service was reinstalled.
func (sm *SecurityModule) Reinstalls(service string) int { return sm.reinstalls[service] }

package edgeos

import (
	"strings"
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/tasks"
	"repro/internal/vdapcrypto"
)

func plainService() *Service {
	return &Service{
		Name:     "kidnapper-search",
		Priority: PriorityInteractive,
		Deadline: 2 * time.Second,
		DAG:      tasks.ALPR(),
		Image:    []byte("mobile-a3-binary-v1"),
	}
}

// twoVehicles returns sender and receiver security modules.
func twoVehicles(t *testing.T) (sender, receiver *SecurityModule) {
	t.Helper()
	sA, _, _ := newSecured(t)
	sB, _, _ := newSecured(t)
	return sA, sB
}

func TestMigrationHappyPath(t *testing.T) {
	sender, receiver := twoVehicles(t)
	svc := plainService()
	if err := sender.Install(svc, 100, 512); err != nil {
		t.Fatal(err)
	}
	offer, err := sender.PrepareMigration(svc.Name, "pseudo-sender")
	if err != nil {
		t.Fatal(err)
	}
	if offer.FromPseudonym != "pseudo-sender" {
		t.Fatalf("offer pseudonym = %q", offer.FromPseudonym)
	}
	// Sender side is stopped after handover.
	if svc.State() != Stopped {
		t.Fatalf("sender state = %v, want stopped", svc.State())
	}
	// Receiver trusts the vendor measurement and accepts.
	receiver.TrustMeasurement(offer.ClaimedMeasurement)
	if err := receiver.ReceiveMigration(offer, 100, 512); err != nil {
		t.Fatal(err)
	}
	if err := receiver.Attest(svc.Name); err != nil {
		t.Fatalf("migrated service fails attestation: %v", err)
	}
	got, err := receiver.manager.Service(svc.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got.State() != Running {
		t.Fatalf("receiver state = %v", got.State())
	}
	if got.TEE {
		t.Fatal("migrated service was granted TEE")
	}
	// It runs on the new vehicle.
	if _, err := receiver.manager.Invoke(svc.Name, 0); err != nil {
		t.Fatalf("invoke migrated service: %v", err)
	}
}

func TestMigrationUntrustedMeasurementRejected(t *testing.T) {
	sender, receiver := twoVehicles(t)
	svc := plainService()
	if err := sender.Install(svc, 100, 512); err != nil {
		t.Fatal(err)
	}
	offer, err := sender.PrepareMigration(svc.Name, "p")
	if err != nil {
		t.Fatal(err)
	}
	// Receiver never trusted this measurement.
	err = receiver.ReceiveMigration(offer, 100, 512)
	if err == nil || !strings.Contains(err.Error(), "not trusted") {
		t.Fatalf("untrusted migration err = %v", err)
	}
}

func TestMigrationTamperedImageRejected(t *testing.T) {
	sender, receiver := twoVehicles(t)
	svc := plainService()
	if err := sender.Install(svc, 100, 512); err != nil {
		t.Fatal(err)
	}
	offer, err := sender.PrepareMigration(svc.Name, "p")
	if err != nil {
		t.Fatal(err)
	}
	receiver.TrustMeasurement(offer.ClaimedMeasurement)
	// A malicious relay swaps the image in flight.
	offer.Service.Image = []byte("evil payload")
	if err := receiver.ReceiveMigration(offer, 100, 512); err == nil {
		t.Fatal("tampered migration accepted")
	}
	// Even if the relay also updates the claim, the trust list saves us.
	offer.ClaimedMeasurement = vdapcrypto.Fingerprint(offer.Service.Image)
	if err := receiver.ReceiveMigration(offer, 100, 512); err == nil {
		t.Fatal("re-claimed tampered migration accepted")
	}
}

func TestMigrationTEERefused(t *testing.T) {
	sender, _ := twoVehicles(t)
	svc := teeService()
	if err := sender.Install(svc, 100, 512); err != nil {
		t.Fatal(err)
	}
	if _, err := sender.PrepareMigration(svc.Name, "p"); err == nil {
		t.Fatal("TEE service migration prepared")
	}
}

func TestMigrationUnknownService(t *testing.T) {
	sender, receiver := twoVehicles(t)
	if _, err := sender.PrepareMigration("ghost", "p"); err == nil {
		t.Fatal("unknown service prepared")
	}
	if err := receiver.ReceiveMigration(MigrationOffer{}, 100, 512); err == nil {
		t.Fatal("empty offer accepted")
	}
}

func TestMigrationCost(t *testing.T) {
	sender, _ := twoVehicles(t)
	svc := plainService()
	if err := sender.Install(svc, 100, 512); err != nil {
		t.Fatal(err)
	}
	offer, err := sender.PrepareMigration(svc.Name, "p")
	if err != nil {
		t.Fatal(err)
	}
	dsrc, err := network.LookupLink("dsrc")
	if err != nil {
		t.Fatal(err)
	}
	cost, err := MigrationCost(offer, dsrc)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= dsrc.RTT {
		t.Fatalf("migration cost %v implausibly small", cost)
	}
	if offer.TransferBytes() <= float64(len(svc.Image)) {
		t.Fatal("transfer bytes missing snapshot overhead")
	}
	if (MigrationOffer{}).TransferBytes() <= 0 {
		t.Fatal("empty offer transfer bytes")
	}
}

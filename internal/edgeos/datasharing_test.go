package edgeos

import (
	"bytes"
	"testing"
	"time"
)

var sharingSecret = []byte("vehicle-data-sharing-master-key!")

func newSharing(t *testing.T) *DataSharing {
	t.Helper()
	d, err := NewDataSharing(sharingSecret, 16)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDataSharingValidation(t *testing.T) {
	if _, err := NewDataSharing([]byte("short"), 4); err == nil {
		t.Fatal("short secret accepted")
	}
	d, err := NewDataSharing(sharingSecret, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.retain != 1 {
		t.Fatalf("retain = %d, want clamp to 1", d.retain)
	}
}

func TestEnroll(t *testing.T) {
	d := newSharing(t)
	tok, err := d.Enroll("camera-svc")
	if err != nil || tok == "" {
		t.Fatalf("Enroll = %q, %v", tok, err)
	}
	if _, err := d.Enroll("camera-svc"); err == nil {
		t.Fatal("double enrollment accepted")
	}
	if _, err := d.Enroll(""); err == nil {
		t.Fatal("empty name accepted")
	}
}

// TestShareCameraBetweenServices reproduces the paper's example: the
// pedestrian detector and mobile-A3 both read camera frames; A3 shares its
// results with the vehicle-recorder service.
func TestShareCameraBetweenServices(t *testing.T) {
	d := newSharing(t)
	camTok, _ := d.Enroll("camera")
	pedTok, _ := d.Enroll("pedestrian-detect")
	a3Tok, _ := d.Enroll("mobile-a3")
	recTok, _ := d.Enroll("vehicle-recorder")

	must(t, d.Grant("frames", "camera", "pub"))
	must(t, d.Grant("frames", "pedestrian-detect", "sub"))
	must(t, d.Grant("frames", "mobile-a3", "sub"))
	must(t, d.Grant("a3-results", "mobile-a3", "pub"))
	must(t, d.Grant("a3-results", "vehicle-recorder", "sub"))

	frame := []byte("frame-001-jpeg-bytes")
	must(t, d.Publish("camera", camTok, "frames", time.Second, frame))

	for svc, tok := range map[string]string{"pedestrian-detect": pedTok, "mobile-a3": a3Tok} {
		msgs, err := d.Fetch(svc, tok, "frames", 0)
		if err != nil {
			t.Fatalf("%s fetch: %v", svc, err)
		}
		if len(msgs) != 1 || !bytes.Equal(msgs[0].Payload, frame) {
			t.Fatalf("%s got %v", svc, msgs)
		}
	}
	must(t, d.Publish("mobile-a3", a3Tok, "a3-results", 2*time.Second, []byte("plate ABC-123 seen")))
	msgs, err := d.Fetch("vehicle-recorder", recTok, "a3-results", 0)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("recorder fetch = %v, %v", msgs, err)
	}
	if d.Delivered("vehicle-recorder") != 1 {
		t.Fatal("delivery not counted")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestACLEnforced(t *testing.T) {
	d := newSharing(t)
	camTok, _ := d.Enroll("camera")
	spyTok, _ := d.Enroll("spy")
	must(t, d.Grant("frames", "camera", "pub"))
	must(t, d.Publish("camera", camTok, "frames", 0, []byte("x")))

	if _, err := d.Fetch("spy", spyTok, "frames", 0); err == nil {
		t.Fatal("ungranted fetch succeeded")
	}
	if err := d.Publish("spy", spyTok, "frames", 0, []byte("fake")); err == nil {
		t.Fatal("ungranted publish succeeded")
	}
	// Publisher cannot read its own topic without sub rights.
	if _, err := d.Fetch("camera", camTok, "frames", 0); err == nil {
		t.Fatal("pub-only service fetched")
	}
	// pubsub grants both.
	must(t, d.Grant("frames", "spy", "pubsub"))
	if _, err := d.Fetch("spy", spyTok, "frames", 0); err != nil {
		t.Fatalf("pubsub fetch failed: %v", err)
	}
	// Revocation takes effect.
	d.Revoke("frames", "spy")
	if _, err := d.Fetch("spy", spyTok, "frames", 0); err == nil {
		t.Fatal("revoked fetch succeeded")
	}
}

func TestAuthenticationEnforced(t *testing.T) {
	d := newSharing(t)
	_, _ = d.Enroll("camera")
	must(t, d.Grant("frames", "camera", "pub"))
	if err := d.Publish("camera", "wrong-token", "frames", 0, []byte("x")); err == nil {
		t.Fatal("wrong token accepted")
	}
	if err := d.Publish("ghost", "any", "frames", 0, []byte("x")); err == nil {
		t.Fatal("unenrolled service accepted")
	}
	if err := d.Grant("frames", "ghost", "pub"); err == nil {
		t.Fatal("grant to unenrolled service accepted")
	}
	if err := d.Grant("frames", "camera", "admin"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRetentionBound(t *testing.T) {
	d, err := NewDataSharing(sharingSecret, 3)
	if err != nil {
		t.Fatal(err)
	}
	tok, _ := d.Enroll("svc")
	must(t, d.Grant("t", "svc", "pubsub"))
	for i := 0; i < 10; i++ {
		must(t, d.Publish("svc", tok, "t", time.Duration(i)*time.Second, []byte{byte(i)}))
	}
	msgs, err := d.Fetch("svc", tok, "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("retained = %d, want 3", len(msgs))
	}
	if msgs[0].Payload[0] != 7 || msgs[2].Payload[0] != 9 {
		t.Fatalf("wrong retained window: %v", msgs)
	}
}

func TestFetchSinceFilter(t *testing.T) {
	d := newSharing(t)
	tok, _ := d.Enroll("svc")
	must(t, d.Grant("t", "svc", "pubsub"))
	must(t, d.Publish("svc", tok, "t", time.Second, []byte("old")))
	must(t, d.Publish("svc", tok, "t", 5*time.Second, []byte("new")))
	msgs, err := d.Fetch("svc", tok, "t", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Payload) != "new" {
		t.Fatalf("since filter broken: %v", msgs)
	}
}

func TestTopicsListing(t *testing.T) {
	d := newSharing(t)
	tok, _ := d.Enroll("svc")
	must(t, d.Grant("zzz", "svc", "pub"))
	must(t, d.Grant("aaa", "svc", "pub"))
	must(t, d.Publish("svc", tok, "zzz", 0, []byte("1")))
	must(t, d.Publish("svc", tok, "aaa", 0, []byte("2")))
	topics := d.Topics()
	if len(topics) != 2 || topics[0] != "aaa" || topics[1] != "zzz" {
		t.Fatalf("topics = %v", topics)
	}
}

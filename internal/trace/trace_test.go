package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable virtual clock.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

func buildSample(clk *fakeClock) *Tracer {
	tr := New(clk.Now)
	root := tr.StartSpan("edgeos", "edgeos.invoke", String("service", "alpr"))
	clk.now = 10 * time.Millisecond
	child := tr.StartSpan("offload", "offload.execute")
	tr.SpanAt("network", "network.uplink", 10*time.Millisecond, 14*time.Millisecond, F64("bytes", 2048))
	tr.SpanAt("xedge", "xedge.exec", 14*time.Millisecond, 30*time.Millisecond)
	child.FinishAt(30 * time.Millisecond)
	root.FinishAt(30 * time.Millisecond)
	return tr
}

func TestSpanTreeStructure(t *testing.T) {
	clk := &fakeClock{}
	tr := buildSample(clk)

	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	root := roots[0]
	if root.Name != "edgeos.invoke" || root.Parent != nil {
		t.Fatalf("bad root: %+v", root)
	}
	if len(root.Children) != 1 {
		t.Fatalf("root children = %d, want 1", len(root.Children))
	}
	exec := root.Children[0]
	if exec.Name != "offload.execute" || exec.Parent != root {
		t.Fatalf("bad child: %+v", exec)
	}
	if len(exec.Children) != 2 {
		t.Fatalf("execute children = %d, want 2", len(exec.Children))
	}
	up, xe := exec.Children[0], exec.Children[1]
	if up.Name != "network.uplink" || xe.Name != "xedge.exec" {
		t.Fatalf("leaf order: %s, %s", up.Name, xe.Name)
	}
	if up.End > xe.Start {
		t.Fatalf("uplink (ends %v) should not overlap exec (starts %v)", up.End, xe.Start)
	}
	if got := tr.SpanCount(); got != 4 {
		t.Fatalf("SpanCount = %d, want 4", got)
	}
	want := []string{"edgeos", "network", "offload", "xedge"}
	got := tr.Components()
	if len(got) != len(want) {
		t.Fatalf("Components = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Components = %v, want %v", got, want)
		}
	}
}

func TestRenderTreeDeterministic(t *testing.T) {
	a := buildSample(&fakeClock{}).RenderTree()
	b := buildSample(&fakeClock{}).RenderTree()
	if a != b {
		t.Fatalf("two identical builds rendered differently:\n%s\n---\n%s", a, b)
	}
	for _, want := range []string{
		"[edgeos] edgeos.invoke 0s..30ms (+30ms) service=alpr",
		"  [offload] offload.execute 10ms..30ms (+20ms)",
		"    [network] network.uplink 10ms..14ms (+4ms) bytes=2048.00",
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("RenderTree missing %q in:\n%s", want, a)
		}
	}
}

func TestChromeTraceValidAndDeterministic(t *testing.T) {
	first, err := buildSample(&fakeClock{}).ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	second, err := buildSample(&fakeClock{}).ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatal("ChromeTrace not byte-identical across identical builds")
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(first, &file); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var complete, meta int
	for _, ev := range file.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event without dur: %v", ev)
			}
		case "M":
			meta++
		}
	}
	if complete != 4 {
		t.Fatalf("complete events = %d, want 4", complete)
	}
	if meta < 5 { // process + 4 component lanes
		t.Fatalf("metadata events = %d, want >= 5", meta)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan("x", "y")
	s.SetAttr(String("k", "v"))
	s.Finish()
	tr.SpanAt("x", "y", 0, 0)
	if tr.RenderTree() != "" || tr.SpanCount() != 0 {
		t.Fatal("nil tracer should be inert")
	}
	if _, err := tr.ChromeTrace(); err == nil {
		t.Fatal("nil tracer ChromeTrace should error")
	}
}

func TestSpanLimitDrops(t *testing.T) {
	tr := New(nil)
	tr.SetSpanLimit(3)
	for i := 0; i < 5; i++ {
		tr.SpanAt("c", "leaf", 0, 0)
	}
	if got := tr.SpanCount(); got != 3 {
		t.Fatalf("SpanCount = %d, want 3", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	if !strings.Contains(tr.RenderTree(), "2 spans dropped") {
		t.Fatal("RenderTree should report drops")
	}
}

func TestOutOfOrderFinishUnwindsStack(t *testing.T) {
	tr := New(nil)
	a := tr.StartSpan("c", "a")
	b := tr.StartSpan("c", "b")
	a.FinishAt(time.Second) // finishes before b: b must not become a's sibling's child
	b.FinishAt(2 * time.Second)
	leaf := tr.SpanAt("c", "later", 0, 0)
	if leaf.Parent != nil {
		t.Fatalf("later span should be a root after stack unwound, got parent %v", leaf.Parent.Name)
	}
}

func TestConcurrentUseIsSafe(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := tr.StartSpan("c", "op")
				tr.SpanAt("c", "leaf", 0, time.Millisecond)
				s.Finish()
				if i%25 == 0 {
					_ = tr.RenderTree()
				}
			}
		}()
	}
	wg.Wait()
	if tr.SpanCount() == 0 {
		t.Fatal("no spans recorded")
	}
}

// TestTracerMerge: merging per-shard tracers in index order deep-copies
// their forests after the destination's roots, renumbering spans, without
// touching the sources.
func TestTracerMerge(t *testing.T) {
	shard := func(label string) *Tracer {
		tr := New(nil)
		root := tr.StartSpanAt("fleet", "replication", 0, String("shard", label))
		tr.SpanAt("offload", "decide", 1, 2)
		root.FinishAt(3)
		return tr
	}
	dst := New(nil)
	dst.SpanAt("runner", "setup", 0, 1)
	a, b := shard("a"), shard("b")
	dst.Merge(a)
	dst.Merge(b)

	if got := dst.SpanCount(); got != 5 {
		t.Fatalf("merged span count = %d, want 5", got)
	}
	roots := dst.Roots()
	if len(roots) != 3 {
		t.Fatalf("merged roots = %d, want 3", len(roots))
	}
	if roots[1].Attrs[0].Value != "a" || roots[2].Attrs[0].Value != "b" {
		t.Fatal("merge did not preserve index order")
	}
	if roots[1].Children[0].Name != "decide" {
		t.Fatal("merge dropped child spans")
	}
	// IDs renumbered in walk order.
	if roots[1].ID() != 2 || roots[2].ID() != 4 {
		t.Fatalf("merged IDs = %d, %d, want 2, 4", roots[1].ID(), roots[2].ID())
	}
	// Sources untouched, self-merge a no-op.
	if a.SpanCount() != 2 {
		t.Fatal("merge mutated the source tracer")
	}
	dst.Merge(dst)
	if dst.SpanCount() != 5 {
		t.Fatal("self-merge duplicated spans")
	}

	// Deterministic render regardless of how many times the same shards
	// are rebuilt.
	again := New(nil)
	again.SpanAt("runner", "setup", 0, 1)
	again.Merge(shard("a"))
	again.Merge(shard("b"))
	if dst.RenderTree() != again.RenderTree() {
		t.Fatal("merged render not deterministic")
	}
}

// TestTracerMergeRespectsCap: subtrees past the destination cap are
// dropped and counted.
func TestTracerMergeRespectsCap(t *testing.T) {
	src := New(nil)
	for i := 0; i < 10; i++ {
		s := src.StartSpanAt("c", "op", 0)
		src.SpanAt("c", "leaf", 0, 1)
		s.FinishAt(1)
	}
	dst := New(nil)
	dst.SetSpanLimit(7)
	dst.Merge(src)
	if got := dst.SpanCount(); got != 7 {
		t.Fatalf("span count = %d, want cap 7", got)
	}
	if got := dst.Dropped(); got != 13 {
		t.Fatalf("dropped = %d, want 13", got)
	}
}

package trace

import (
	"testing"
	"time"
)

// BenchmarkDisabledSpanWithAttrs measures what an instrumented call site
// costs when tracing is off (nil tracer) but attributes are still built.
func BenchmarkDisabledSpanWithAttrs(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.StartSpanAt("offload", "offload.estimate", 0,
			String("dag", "alpr"), Int("split", i%4), F64("bytes", 1024.5))
		s.FinishAt(time.Duration(i))
	}
}

// BenchmarkDisabledSpanGuarded measures the same call site behind the
// Enabled() guard — the pattern the hot paths use, costing ~0.
func BenchmarkDisabledSpanGuarded(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			s := tr.StartSpanAt("offload", "offload.estimate", 0,
				String("dag", "alpr"), Int("split", i%4), F64("bytes", 1024.5))
			s.FinishAt(time.Duration(i))
		}
	}
}

// BenchmarkSpanStartFinish measures an enabled root span's lifecycle. The
// tracer is reset periodically so the span cap never engages.
func BenchmarkSpanStartFinish(b *testing.B) {
	tr := New(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%65536 == 0 {
			tr.Reset()
		}
		s := tr.StartSpanAt("offload", "offload.execute", time.Duration(i))
		s.FinishAt(time.Duration(i + 1))
	}
}

// BenchmarkSpanAtLeaf measures the pre-bounded leaf-span fast path used by
// the offload execute loop.
func BenchmarkSpanAtLeaf(b *testing.B) {
	tr := New(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%65536 == 0 {
			tr.Reset()
		}
		tr.SpanAt("network", "network.uplink", time.Duration(i), time.Duration(i+1))
	}
}

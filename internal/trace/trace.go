// Package trace is a deterministic, virtual-time span tracer for the
// OpenVDAP reproduction. Components open spans stamped from the simulation
// clock; nested calls produce parent/child links automatically (the tracer
// keeps an open-span stack, which is well-defined because the simulation
// kernel is single-threaded). Two exporters render a finished trace: a
// human-readable tree and Chrome trace_event JSON that opens directly in
// chrome://tracing or Perfetto.
//
// Every method is nil-safe on both *Tracer and *Span, so instrumented
// components carry an optional tracer without guarding each call site.
// Because all timestamps come from the virtual clock and span identifiers
// are assigned in creation order, two runs with the same seed export
// byte-identical traces.
package trace

import (
	"strconv"
	"sync"
	"time"
)

// Attr is one key-value annotation on a span. Values are pre-rendered to
// strings so export is allocation-light and deterministic.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Value: strconv.Itoa(v)} }

// F64 builds a float attribute with stable two-decimal rendering.
func F64(key string, v float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(v, 'f', 2, 64)}
}

// Dur builds a duration attribute.
func Dur(key string, d time.Duration) Attr { return Attr{Key: key, Value: d.String()} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, Value: strconv.FormatBool(v)} }

// Span is one timed operation in the trace tree. Start and End are virtual
// times. Fields are read by exporters under the tracer's lock; mutate only
// through Span methods.
type Span struct {
	tracer    *Tracer
	id        int
	Name      string
	Component string
	Start     time.Duration
	End       time.Duration
	Attrs     []Attr
	Parent    *Span
	Children  []*Span
	finished  bool
}

// DefaultSpanLimit bounds span memory for long runs: past it new spans are
// dropped (and counted), keeping fleet-scale experiments O(limit).
const DefaultSpanLimit = 200_000

// Tracer collects spans stamped from a virtual clock.
type Tracer struct {
	mu      sync.Mutex
	clock   func() time.Duration
	roots   []*Span
	stack   []*Span
	nextID  int
	limit   int
	dropped int
	pool    []*Span // reclaimed by Reset, reused by newSpanLocked
}

// Enabled reports whether spans are being recorded. Hot call sites guard
// attribute construction with it so disabled tracing (a nil *Tracer) costs
// zero allocations:
//
//	if tr.Enabled() {
//		tr.SpanAt("network", "network.uplink", a, b, trace.F64("bytes", n))
//	}
func (t *Tracer) Enabled() bool { return t != nil }

// New returns a tracer reading virtual time from clock (typically
// sim.Engine.Now). A nil clock stamps zero times; explicit-time calls still
// work.
func New(clock func() time.Duration) *Tracer {
	if clock == nil {
		clock = func() time.Duration { return 0 }
	}
	return &Tracer{clock: clock, limit: DefaultSpanLimit}
}

// SetSpanLimit changes the span cap. Non-positive restores the default.
func (t *Tracer) SetSpanLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 {
		n = DefaultSpanLimit
	}
	t.limit = n
}

// StartSpan opens a span at the current virtual time and makes it the
// parent of spans started before it finishes.
func (t *Tracer) StartSpan(component, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.StartSpanAt(component, name, t.clock(), attrs...)
}

// StartSpanAt opens a span at an explicit virtual time (schedulers and
// estimators time-stamp spans from computed timelines, not the live clock).
func (t *Tracer) StartSpanAt(component, name string, start time.Duration, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.newSpanLocked(component, name, start, attrs)
	if s != nil {
		t.stack = append(t.stack, s)
	}
	return s
}

// SpanAt records an already-bounded leaf span (start..end) under the
// currently open span without becoming a parent itself.
func (t *Tracer) SpanAt(component, name string, start, end time.Duration, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.newSpanLocked(component, name, start, attrs)
	if s != nil {
		s.End = end
		s.finished = true
	}
	return s
}

// newSpanLocked allocates a span under the cap and links it to the current
// stack top. Callers hold t.mu.
func (t *Tracer) newSpanLocked(component, name string, start time.Duration, attrs []Attr) *Span {
	if t.nextID >= t.limit {
		t.dropped++
		return nil
	}
	t.nextID++
	var s *Span
	if n := len(t.pool); n > 0 {
		s = t.pool[n-1]
		t.pool[n-1] = nil
		t.pool = t.pool[:n-1]
		*s = Span{
			tracer:    t,
			id:        t.nextID,
			Name:      name,
			Component: component,
			Start:     start,
			End:       start,
			Attrs:     attrs,
			Children:  s.Children[:0],
		}
	} else {
		s = &Span{
			tracer:    t,
			id:        t.nextID,
			Name:      name,
			Component: component,
			Start:     start,
			End:       start,
			Attrs:     attrs,
		}
	}
	if n := len(t.stack); n > 0 {
		parent := t.stack[n-1]
		s.Parent = parent
		parent.Children = append(parent.Children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	return s
}

// Finish closes the span at the current virtual time.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.FinishAt(s.tracer.clock())
}

// FinishAt closes the span at an explicit virtual time and pops it from the
// open-span stack (out-of-order finishes unwind through it).
func (s *Span) FinishAt(end time.Duration) {
	if s == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.finished {
		return
	}
	if end < s.Start {
		end = s.Start
	}
	s.End = end
	s.finished = true
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			break
		}
	}
}

// SetAttr appends attributes to an open or finished span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	s.Attrs = append(s.Attrs, attrs...)
}

// ID returns the span's creation-order identifier (1-based).
func (s *Span) ID() int {
	if s == nil {
		return 0
	}
	return s.id
}

// Roots returns the top-level spans in creation order.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.roots))
	copy(out, t.roots)
	return out
}

// SpanCount returns how many spans were recorded (dropped ones excluded).
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nextID
}

// Dropped returns how many spans the cap discarded.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Merge deep-copies src's span forest into t, appending src's roots (in
// their creation order) after t's existing roots. Copied spans are
// renumbered in walk order, so merging per-shard tracers in replication
// index order yields the same trace no matter how many workers recorded
// them. Subtrees past t's span cap are dropped and counted, and src's own
// dropped count carries over. src is never mutated, but it must be
// quiescent (no spans being opened or finished) while Merge reads it —
// replication harnesses merge only after their workers have exited.
// Merging a tracer into itself, or merging nil, is a no-op.
func (t *Tracer) Merge(src *Tracer) {
	if t == nil || src == nil || t == src {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	src.mu.Lock()
	defer src.mu.Unlock()
	var clone func(s *Span, parent *Span)
	clone = func(s *Span, parent *Span) {
		if t.nextID >= t.limit {
			t.dropped += subtreeSize(s)
			return
		}
		t.nextID++
		cp := &Span{
			tracer:    t,
			id:        t.nextID,
			Name:      s.Name,
			Component: s.Component,
			Start:     s.Start,
			End:       s.End,
			Attrs:     append([]Attr(nil), s.Attrs...),
			Parent:    parent,
			finished:  true,
		}
		if parent != nil {
			parent.Children = append(parent.Children, cp)
		} else {
			t.roots = append(t.roots, cp)
		}
		for _, c := range s.Children {
			clone(c, cp)
		}
	}
	for _, r := range src.roots {
		clone(r, nil)
	}
	t.dropped += src.dropped
}

// subtreeSize counts a span and all its descendants.
func subtreeSize(s *Span) int {
	n := 1
	for _, c := range s.Children {
		n += subtreeSize(c)
	}
	return n
}

// Reset discards all recorded spans (the open stack included) but keeps the
// clock and cap. The discarded span structs are reclaimed into a free pool
// and reused by later spans, so repeated record/Reset cycles (replication
// loops, benchmarks) amortize to zero span allocations. Span pointers
// obtained before a Reset — including Roots() slices — must not be used
// afterwards.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var reclaim func(s *Span)
	reclaim = func(s *Span) {
		for _, c := range s.Children {
			reclaim(c)
		}
		s.Parent = nil
		s.Attrs = nil
		s.Children = s.Children[:0]
		t.pool = append(t.pool, s)
	}
	for _, r := range t.roots {
		reclaim(r)
	}
	t.roots, t.stack, t.nextID, t.dropped = t.roots[:0], t.stack[:0], 0, 0
}

// Components returns the sorted set of component names present in the
// trace.
func (t *Tracer) Components() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := map[string]bool{}
	var walk func(s *Span)
	walk = func(s *Span) {
		seen[s.Component] = true
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, r := range t.roots {
		walk(r)
	}
	return sortedKeys(seen)
}

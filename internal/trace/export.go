package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderTree renders the trace as an indented tree, one span per line:
//
//	[component] name start..end (+dur) key=value ...
//
// Output is deterministic: roots and children appear in creation order and
// every timestamp is virtual time.
func (t *Tracer) RenderTree() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "[%s] %s %v..%v (+%v)", s.Component, s.Name, s.Start, s.End, s.End-s.Start)
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.roots {
		walk(r, 0)
	}
	if t.dropped > 0 {
		fmt.Fprintf(&b, "(%d spans dropped at cap)\n", t.dropped)
	}
	return b.String()
}

// chromeEvent is one Chrome trace_event entry. "X" events are complete
// spans with ts/dur in microseconds; "M" events are metadata naming the
// per-component lanes.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTraceFile is the JSON-object flavor of the format, which tolerates
// trailing metadata and displays a title in Perfetto.
type chromeTraceFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	Meta        struct {
		Tool    string `json:"tool"`
		Dropped int    `json:"droppedSpans"`
	} `json:"otherData"`
}

// ChromeTrace exports the trace as Chrome trace_event JSON. Each component
// gets its own thread lane (sorted by name, so lane assignment is stable),
// timestamps are virtual-time microseconds, and span identifiers ride in
// args. Two same-seed runs export byte-identical output.
func (t *Tracer) ChromeTrace() ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("trace: nil tracer")
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	lanes := map[string]int{}
	var collect func(s *Span)
	collect = func(s *Span) {
		lanes[s.Component] = 0
		for _, c := range s.Children {
			collect(c)
		}
	}
	for _, r := range t.roots {
		collect(r)
	}
	for i, name := range sortedKeys(lanes) {
		lanes[name] = i + 1
	}

	var file chromeTraceFile
	file.Meta.Tool = "openvdap-trace"
	file.Meta.Dropped = t.dropped
	file.TraceEvents = append(file.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]string{"name": "openvdap"},
	})
	for _, name := range sortedKeys(lanes) {
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: lanes[name],
			Args: map[string]string{"name": name},
		})
	}

	var emit func(s *Span)
	emit = func(s *Span) {
		dur := micros(s.End - s.Start)
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Component,
			Ph:   "X",
			TS:   micros(s.Start),
			Dur:  &dur,
			PID:  1,
			TID:  lanes[s.Component],
			Args: map[string]string{"span": fmt.Sprintf("%d", s.id)},
		}
		if s.Parent != nil {
			ev.Args["parent"] = fmt.Sprintf("%d", s.Parent.id)
		}
		for _, a := range s.Attrs {
			ev.Args[a.Key] = a.Value
		}
		file.TraceEvents = append(file.TraceEvents, ev)
		for _, c := range s.Children {
			emit(c)
		}
	}
	for _, r := range t.roots {
		emit(r)
	}
	return json.MarshalIndent(file, "", " ")
}

// micros converts a virtual duration to trace_event microseconds.
func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

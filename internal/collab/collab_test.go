package collab

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/geo"
)

func testKeyer(t *testing.T) Keyer {
	t.Helper()
	k, err := NewKeyer(100, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestNewKeyerValidation(t *testing.T) {
	if _, err := NewKeyer(0, time.Second); err == nil {
		t.Fatal("zero segment accepted")
	}
	if _, err := NewKeyer(100, 0); err == nil {
		t.Fatal("zero bucket accepted")
	}
}

func TestKeyerQuantization(t *testing.T) {
	k := testKeyer(t)
	a := k.For("detect", 150, 3*time.Second)
	b := k.For("detect", 199, 3900*time.Millisecond)
	if a != b {
		t.Fatalf("same segment+bucket produced different keys: %v vs %v", a, b)
	}
	c := k.For("detect", 201, 3*time.Second)
	if a == c {
		t.Fatal("different segments share a key")
	}
	d := k.For("detect", 150, 5*time.Second)
	if a == d {
		t.Fatal("different buckets share a key")
	}
	e := k.For("lanes", 150, 3*time.Second)
	if a == e {
		t.Fatal("different kinds share a key")
	}
	neg := k.For("detect", -1, 0)
	if neg.Segment != -1 {
		t.Fatalf("negative position segment = %d, want -1", neg.Segment)
	}
}

func TestCachePutGetStaleness(t *testing.T) {
	cache, err := NewCache(testKeyer(t), 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Kind: "detect", Segment: 1, Bucket: 0}
	cache.Put(Result{Key: key, At: time.Second, Bytes: 100, Value: []byte("x")})
	if _, ok := cache.Get(key, 3*time.Second); !ok {
		t.Fatal("fresh result missed")
	}
	if _, ok := cache.Get(key, 10*time.Second); ok {
		t.Fatal("stale result served")
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
	if _, err := NewCache(testKeyer(t), 0); err == nil {
		t.Fatal("zero staleness accepted")
	}
}

func TestCacheLastWriterWins(t *testing.T) {
	cache, _ := NewCache(testKeyer(t), time.Minute)
	key := Key{Kind: "detect", Segment: 1, Bucket: 0}
	cache.Put(Result{Key: key, At: 2 * time.Second, Value: []byte("new")})
	cache.Put(Result{Key: key, At: time.Second, Value: []byte("old")})
	got, ok := cache.Get(key, 3*time.Second)
	if !ok || string(got.Value) != "new" {
		t.Fatalf("got %q, want newer entry", got.Value)
	}
	if cache.Len() != 1 {
		t.Fatalf("Len = %d", cache.Len())
	}
}

func newConvoy(t *testing.T, n int, spacing float64) (*Convoy, []*Vehicle) {
	t.Helper()
	road, err := geo.NewRoad(10000)
	if err != nil {
		t.Fatal(err)
	}
	convoy, err := NewConvoy(300)
	if err != nil {
		t.Fatal(err)
	}
	keyer := testKeyer(t)
	var vehicles []*Vehicle
	for i := 0; i < n; i++ {
		cache, err := NewCache(keyer, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		v := &Vehicle{
			Name:     fmt.Sprintf("cav-%d", i),
			Mobility: geo.Mobility{Road: road, SpeedMS: 15, StartX: float64(i) * spacing},
			Cache:    cache,
			Pseudonym: func(i int) func(time.Duration) string {
				return func(time.Duration) string { return fmt.Sprintf("pseudo-%d", i) }
			}(i),
		}
		if err := convoy.Add(v); err != nil {
			t.Fatal(err)
		}
		vehicles = append(vehicles, v)
	}
	return convoy, vehicles
}

func TestConvoyValidation(t *testing.T) {
	if _, err := NewConvoy(0); err == nil {
		t.Fatal("zero range accepted")
	}
	convoy, vehicles := newConvoy(t, 1, 10)
	if err := convoy.Add(nil); err == nil {
		t.Fatal("nil vehicle accepted")
	}
	if err := convoy.Add(vehicles[0]); err == nil {
		t.Fatal("duplicate vehicle accepted")
	}
}

func TestObtainComputesOnceSharesToConvoy(t *testing.T) {
	convoy, vehicles := newConvoy(t, 4, 20) // 20 m spacing: all in range
	keyer := vehicles[0].Cache.Keyer()
	now := time.Second
	key := keyer.For("object-detect", vehicles[0].Mobility.PositionAt(now).X, now)
	computes := 0
	compute := func() (Result, time.Duration, error) {
		computes++
		return Result{At: now, Bytes: 2000, Value: []byte("3 cars 1 ped")}, 50 * time.Millisecond, nil
	}
	// First vehicle computes.
	r, cost, err := convoy.Obtain(vehicles[0], key, now, compute)
	if err != nil {
		t.Fatal(err)
	}
	if computes != 1 || cost != 50*time.Millisecond {
		t.Fatalf("first obtain: computes=%d cost=%v", computes, cost)
	}
	if r.Producer != "pseudo-0" {
		t.Fatalf("producer = %q, want pseudonym", r.Producer)
	}
	// The rest pull the result over DSRC instead of recomputing: a small
	// transfer cost, no compute.
	for _, v := range vehicles[1:] {
		_, cost, err := convoy.Obtain(v, key, now+100*time.Millisecond, compute)
		if err != nil {
			t.Fatal(err)
		}
		if cost <= 0 || cost >= 50*time.Millisecond {
			t.Fatalf("%s borrow cost = %v, want small DSRC transfer", v.Name, cost)
		}
		if v.Borrowed() != 1 {
			t.Fatalf("%s borrow not counted", v.Name)
		}
	}
	if computes != 1 {
		t.Fatalf("convoy computed %d times, want 1", computes)
	}
	// A second access by a borrower is now a free local hit.
	_, cost2, err := convoy.Obtain(vehicles[1], key, now+200*time.Millisecond, compute)
	if err != nil {
		t.Fatal(err)
	}
	if cost2 != 0 {
		t.Fatalf("repeat access cost %v, want free local hit", cost2)
	}
}

func TestObtainBorrowsOverDSRCWhenNotPushed(t *testing.T) {
	convoy, vehicles := newConvoy(t, 2, 20)
	keyer := vehicles[0].Cache.Keyer()
	now := time.Second
	key := keyer.For("object-detect", 10, now)
	// Seed only vehicle 0's cache directly (no push).
	vehicles[0].Cache.Put(Result{Key: key, At: now, Bytes: 5000, Value: []byte("x")})
	computes := 0
	_, cost, err := convoy.Obtain(vehicles[1], key, now, func() (Result, time.Duration, error) {
		computes++
		return Result{}, 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if computes != 0 {
		t.Fatal("borrowed result recomputed")
	}
	if cost <= 0 {
		t.Fatal("DSRC borrow was free")
	}
	if vehicles[1].Borrowed() != 1 {
		t.Fatal("borrow not counted")
	}
}

func TestOutOfRangeVehiclesDoNotShare(t *testing.T) {
	convoy, vehicles := newConvoy(t, 2, 5000) // 5 km apart: out of DSRC range
	keyer := vehicles[0].Cache.Keyer()
	now := time.Second
	key := keyer.For("object-detect", 10, now)
	vehicles[0].Cache.Put(Result{Key: key, At: now, Bytes: 100, Value: []byte("x")})
	computes := 0
	_, _, err := convoy.Obtain(vehicles[1], key, now, func() (Result, time.Duration, error) {
		computes++
		return Result{At: now, Bytes: 100}, time.Millisecond, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if computes != 1 {
		t.Fatal("out-of-range vehicle borrowed a result")
	}
}

func TestObtainStaleResultRecomputed(t *testing.T) {
	convoy, vehicles := newConvoy(t, 2, 20)
	keyer := vehicles[0].Cache.Keyer()
	key := keyer.For("object-detect", 10, time.Second)
	vehicles[0].Cache.Put(Result{Key: key, At: time.Second, Bytes: 100})
	computes := 0
	// 30 s later the entry exceeds the 10 s staleness bound everywhere.
	_, _, err := convoy.Obtain(vehicles[1], key, 31*time.Second, func() (Result, time.Duration, error) {
		computes++
		return Result{At: 31 * time.Second, Bytes: 100}, time.Millisecond, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if computes != 1 {
		t.Fatal("stale result served instead of recomputing")
	}
}

func TestObtainValidation(t *testing.T) {
	convoy, vehicles := newConvoy(t, 1, 10)
	if _, _, err := convoy.Obtain(nil, Key{}, 0, func() (Result, time.Duration, error) { return Result{}, 0, nil }); err == nil {
		t.Fatal("nil vehicle accepted")
	}
	if _, _, err := convoy.Obtain(vehicles[0], Key{}, 0, nil); err == nil {
		t.Fatal("nil compute accepted")
	}
	wantErr := fmt.Errorf("sensor fault")
	_, _, err := convoy.Obtain(vehicles[0], Key{Kind: "x"}, 0, func() (Result, time.Duration, error) {
		return Result{}, 0, wantErr
	})
	if err == nil {
		t.Fatal("compute error swallowed")
	}
}

// Package collab implements the vehicle-collaboration mechanism the paper
// identifies as an open challenge (§III-C): nearby CAVs share processed
// results over DSRC so a convoy does not redundantly recompute the same
// perception work for the same stretch of road. Results are keyed by
// (kind, road segment, time bucket); sharing is pseudonymous and entries
// expire under a bounded-staleness rule — the paper's synchronization
// concern made concrete.
package collab

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/network"
)

// Key identifies one shareable result: what was computed, where, and for
// which time bucket.
type Key struct {
	// Kind names the computation ("object-detect", "lane-geometry").
	Kind string
	// Segment indexes the road segment the result describes.
	Segment int
	// Bucket is the time-quantized validity window index.
	Bucket int64
}

// Result is one shared computation output.
type Result struct {
	Key Key
	// Producer is the producing vehicle's pseudonym — never its identity.
	Producer string
	// At is when the result was computed.
	At time.Duration
	// Bytes is the payload size moved when the result is shared.
	Bytes float64
	// Value is the result content.
	Value []byte
}

// Keyer quantizes positions and times into result keys.
type Keyer struct {
	// SegmentM is the road-segment length in meters.
	SegmentM float64
	// BucketD is the validity-window duration.
	BucketD time.Duration
}

// NewKeyer validates the quantization parameters.
func NewKeyer(segmentM float64, bucket time.Duration) (Keyer, error) {
	if segmentM <= 0 {
		return Keyer{}, fmt.Errorf("collab: segment length must be positive, got %v", segmentM)
	}
	if bucket <= 0 {
		return Keyer{}, fmt.Errorf("collab: bucket duration must be positive, got %v", bucket)
	}
	return Keyer{SegmentM: segmentM, BucketD: bucket}, nil
}

// For returns the key covering position x at time t.
func (k Keyer) For(kind string, x float64, t time.Duration) Key {
	seg := int(x / k.SegmentM)
	if x < 0 {
		seg--
	}
	return Key{Kind: kind, Segment: seg, Bucket: int64(t / k.BucketD)}
}

// Cache is one vehicle's store of own and received results.
type Cache struct {
	keyer Keyer
	// staleness bounds how old a result may be and still be served.
	staleness time.Duration
	entries   map[Key]Result
	hits      int
	misses    int
}

// NewCache builds a cache with the given keyer and staleness bound.
func NewCache(keyer Keyer, staleness time.Duration) (*Cache, error) {
	if staleness <= 0 {
		return nil, fmt.Errorf("collab: staleness bound must be positive, got %v", staleness)
	}
	return &Cache{keyer: keyer, staleness: staleness, entries: make(map[Key]Result)}, nil
}

// Keyer returns the cache's quantizer.
func (c *Cache) Keyer() Keyer { return c.keyer }

// Put stores a result, keeping the newer entry on conflict (last-writer-
// wins by computation time; ties keep the incumbent — deterministic).
func (c *Cache) Put(r Result) {
	if cur, ok := c.entries[r.Key]; ok && cur.At >= r.At {
		return
	}
	c.entries[r.Key] = r
}

// Get returns a result that is still fresh at time now.
func (c *Cache) Get(key Key, now time.Duration) (Result, bool) {
	r, ok := c.entries[key]
	if !ok || now-r.At > c.staleness {
		c.misses++
		return Result{}, false
	}
	c.hits++
	return r, true
}

// Stats returns cumulative hits and misses.
func (c *Cache) Stats() (hits, misses int) { return c.hits, c.misses }

// Len returns the number of stored entries (including stale ones not yet
// overwritten).
func (c *Cache) Len() int { return len(c.entries) }

// Vehicle is one convoy member: a mobility trace, a result cache, and a
// pseudonym provider.
type Vehicle struct {
	Name      string
	Mobility  geo.Mobility
	Cache     *Cache
	Pseudonym func(t time.Duration) string

	computed int
	borrowed int
}

// Computed and Borrowed report how many results this vehicle produced
// locally vs received from peers.
func (v *Vehicle) Computed() int { return v.computed }

// Borrowed reports results received from peers.
func (v *Vehicle) Borrowed() int { return v.borrowed }

// Convoy is a set of vehicles in DSRC range of each other that share
// results.
type Convoy struct {
	vehicles []*Vehicle
	dsrc     network.LinkSpec
	rangeM   float64
}

// NewConvoy builds a convoy; rangeM is the DSRC share radius.
func NewConvoy(rangeM float64) (*Convoy, error) {
	if rangeM <= 0 {
		return nil, fmt.Errorf("collab: share range must be positive, got %v", rangeM)
	}
	dsrc, err := network.LookupLink("dsrc")
	if err != nil {
		return nil, err
	}
	return &Convoy{dsrc: dsrc, rangeM: rangeM}, nil
}

// Add registers a vehicle.
func (c *Convoy) Add(v *Vehicle) error {
	if v == nil || v.Name == "" || v.Cache == nil {
		return fmt.Errorf("collab: vehicle needs a name and a cache")
	}
	for _, existing := range c.vehicles {
		if existing.Name == v.Name {
			return fmt.Errorf("collab: vehicle %q already in convoy", v.Name)
		}
	}
	c.vehicles = append(c.vehicles, v)
	return nil
}

// Vehicles returns convoy members sorted by name.
func (c *Convoy) Vehicles() []*Vehicle {
	out := make([]*Vehicle, len(c.vehicles))
	copy(out, c.vehicles)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// neighborsOf returns members within DSRC range of v at time t.
func (c *Convoy) neighborsOf(v *Vehicle, t time.Duration) []*Vehicle {
	pos := v.Mobility.PositionAt(t)
	var out []*Vehicle
	for _, other := range c.Vehicles() {
		if other == v {
			continue
		}
		if other.Mobility.PositionAt(t).Dist(pos) <= c.rangeM {
			out = append(out, other)
		}
	}
	return out
}

// Obtain returns the result for key at time t for vehicle v: from v's own
// cache (free), from a neighbor over DSRC (pull on demand, paying the
// transfer cost — the paper's processed-results sharing), or by computing
// it with the provided compute function (compute cost). The result is
// cached locally either way.
func (c *Convoy) Obtain(v *Vehicle, key Key, t time.Duration, compute func() (Result, time.Duration, error)) (Result, time.Duration, error) {
	if v == nil || compute == nil {
		return Result{}, 0, fmt.Errorf("collab: nil vehicle or compute function")
	}
	if r, ok := v.Cache.Get(key, t); ok {
		return r, 0, nil
	}
	// Ask neighbors: nearest-name-first for determinism.
	for _, n := range c.neighborsOf(v, t) {
		if r, ok := n.Cache.Get(key, t); ok {
			cost, err := c.dsrc.TransferTime(r.Bytes, network.Downlink)
			if err != nil {
				return Result{}, 0, err
			}
			v.Cache.Put(r)
			v.borrowed++
			return r, cost, nil
		}
	}
	// Compute locally and share.
	r, cost, err := compute()
	if err != nil {
		return Result{}, 0, err
	}
	r.Key = key
	if r.At == 0 {
		r.At = t
	}
	if v.Pseudonym != nil {
		r.Producer = v.Pseudonym(t)
	}
	v.Cache.Put(r)
	v.computed++
	return r, cost, nil
}

package collab

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/geo"
)

func BenchmarkObtainWithSharing(b *testing.B) {
	road, err := geo.NewRoad(100000)
	if err != nil {
		b.Fatal(err)
	}
	convoy, err := NewConvoy(300)
	if err != nil {
		b.Fatal(err)
	}
	keyer, err := NewKeyer(100, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	var vehicles []*Vehicle
	for i := 0; i < 4; i++ {
		cache, err := NewCache(keyer, 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		v := &Vehicle{
			Name:     fmt.Sprintf("cav-%d", i),
			Mobility: geo.Mobility{Road: road, SpeedMS: 15, StartX: float64(i) * 25},
			Cache:    cache,
		}
		if err := convoy.Add(v); err != nil {
			b.Fatal(err)
		}
		vehicles = append(vehicles, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := time.Duration(i) * 100 * time.Millisecond
		v := vehicles[i%len(vehicles)]
		key := keyer.For("detect", v.Mobility.PositionAt(now).X, now)
		if _, _, err := convoy.Obtain(v, key, now, func() (Result, time.Duration, error) {
			return Result{At: now, Bytes: 2048}, time.Millisecond, nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Package cloud models the remote tier: the offload destination of last
// resort and the data server DDI migrates vehicle data to (paper §IV-D
// "eventually migrated to a cloud based data server ... open to the
// community").
package cloud

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/network"
	"repro/internal/xedge"
)

// Cloud bundles the compute site with the community data server.
type Cloud struct {
	site *xedge.Site
	data *DataServer
}

// New builds the cloud tier.
func New() (*Cloud, error) {
	site, err := xedge.NewCloud()
	if err != nil {
		return nil, err
	}
	return &Cloud{site: site, data: NewDataServer()}, nil
}

// Site returns the compute site for offloading.
func (c *Cloud) Site() *xedge.Site { return c.site }

// Data returns the community data server.
func (c *Cloud) Data() *DataServer { return c.data }

// Record is one migrated vehicle-data item.
type Record struct {
	Vehicle  string        `json:"vehicle"` // pseudonym, not real identity
	Source   string        `json:"source"`  // obd, gps, weather, ...
	At       time.Duration `json:"at"`
	Payload  []byte        `json:"payload"`
	Uploaded time.Duration `json:"uploaded"`
}

// DataServer is the append-only community archive. It is safe for
// concurrent use (the libvdap HTTP tier reaches it from server goroutines).
type DataServer struct {
	mu      sync.RWMutex
	records []Record
	bytes   int64
}

// NewDataServer returns an empty archive.
func NewDataServer() *DataServer { return &DataServer{} }

// Ingest stores records arriving from a vehicle's DDI migration.
func (d *DataServer) Ingest(recs ...Record) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range recs {
		d.records = append(d.records, r)
		d.bytes += int64(len(r.Payload))
	}
}

// Count returns the number of archived records.
func (d *DataServer) Count() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.records)
}

// Bytes returns total archived payload bytes.
func (d *DataServer) Bytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.bytes
}

// Query returns records from the given source within [from, to], sorted by
// time — the open-data API researchers consume.
func (d *DataServer) Query(source string, from, to time.Duration) []Record {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []Record
	for _, r := range d.records {
		if source != "" && r.Source != source {
			continue
		}
		if r.At < from || r.At > to {
			continue
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// MigrationCost returns the transfer time for migrating sizeBytes from the
// vehicle to the data server over the given uplink path.
func MigrationCost(path network.Path, sizeBytes float64) (time.Duration, error) {
	if sizeBytes < 0 {
		return 0, fmt.Errorf("cloud: negative migration size %v", sizeBytes)
	}
	return path.TransferTime(sizeBytes, network.Uplink)
}

package cloud

import (
	"sync"
	"testing"
	"time"

	"repro/internal/network"
)

func TestNew(t *testing.T) {
	c, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if c.Site() == nil || c.Data() == nil {
		t.Fatal("cloud missing site or data server")
	}
}

func TestDataServerIngestAndQuery(t *testing.T) {
	d := NewDataServer()
	d.Ingest(
		Record{Vehicle: "p1", Source: "obd", At: 10 * time.Second, Payload: []byte("a")},
		Record{Vehicle: "p1", Source: "gps", At: 20 * time.Second, Payload: []byte("bb")},
		Record{Vehicle: "p2", Source: "obd", At: 30 * time.Second, Payload: []byte("ccc")},
	)
	if d.Count() != 3 {
		t.Fatalf("Count = %d", d.Count())
	}
	if d.Bytes() != 6 {
		t.Fatalf("Bytes = %d", d.Bytes())
	}
	obd := d.Query("obd", 0, time.Minute)
	if len(obd) != 2 {
		t.Fatalf("obd query = %d records", len(obd))
	}
	if obd[0].At > obd[1].At {
		t.Fatal("query results not time-sorted")
	}
	window := d.Query("", 15*time.Second, 25*time.Second)
	if len(window) != 1 || window[0].Source != "gps" {
		t.Fatalf("window query = %v", window)
	}
	if got := d.Query("lidar", 0, time.Hour); len(got) != 0 {
		t.Fatalf("unknown source returned %d records", len(got))
	}
}

func TestDataServerConcurrentIngest(t *testing.T) {
	d := NewDataServer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				d.Ingest(Record{Source: "obd", Payload: []byte{1, 2}})
			}
		}()
	}
	wg.Wait()
	if d.Count() != 800 {
		t.Fatalf("Count = %d after concurrent ingest, want 800", d.Count())
	}
	if d.Bytes() != 1600 {
		t.Fatalf("Bytes = %d, want 1600", d.Bytes())
	}
}

func TestMigrationCost(t *testing.T) {
	lte, _ := network.LookupLink("lte")
	wan, _ := network.LookupLink("wan")
	path := network.Path{Name: "up", Links: []network.LinkSpec{lte, wan}}
	d, err := MigrationCost(path, 10e6)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("non-positive migration cost")
	}
	if _, err := MigrationCost(path, -1); err == nil {
		t.Fatal("negative size accepted")
	}
}

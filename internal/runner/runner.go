// Package runner is the platform's parallel replication driver: it executes
// N independent replications (fleet runs, parameter-sweep points,
// calibration trials) across a worker pool and merges their results
// deterministically.
//
// The sharding model is "share nothing, merge after": every replication
// gets its own Shard holding an RNG substream keyed by the replication
// index (sim.NewStream), a private telemetry.Registry, and a private
// trace.Tracer. Jobs must build their whole world (fleet, sites, engines)
// inside the shard and draw all randomness from the shard's RNG. Because
// nothing is shared, jobs run race-free at any -parallel level; because
// every per-shard input is a pure function of (seed, index) and the merge
// happens in index order after all workers exit, the merged output is
// byte-identical no matter how many workers ran.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Shard is one replication's private world: everything a job may mutate.
type Shard struct {
	// Index is the replication number in [0, Replications).
	Index int
	// RNG is the replication's random substream, keyed by (Seed, Index).
	RNG *sim.RNG
	// Metrics is the replication-private registry, merged (in index order)
	// into the report's registry after all workers finish.
	Metrics *telemetry.Registry
	// Tracer is the replication-private tracer, merged likewise.
	Tracer *trace.Tracer
}

// Config parameterizes Run.
type Config struct {
	// Replications is the number of independent shards to execute (>= 1).
	Replications int
	// Parallel is the worker-pool size. Non-positive means GOMAXPROCS;
	// values above Replications are clamped.
	Parallel int
	// Seed keys every shard's RNG substream.
	Seed int64
	// MetricsReservoir, when positive, bounds every shard histogram to k
	// deterministically-sampled values (see telemetry.EnableReservoir).
	MetricsReservoir int
	// SpanLimit caps each shard tracer's retained spans. Non-positive
	// keeps trace.DefaultSpanLimit.
	SpanLimit int
}

// Report is the deterministic merge of all replications.
type Report[T any] struct {
	// Results holds each replication's result, ordered by index.
	Results []T
	// Metrics is every shard registry merged in index order: counters
	// summed, gauges last-index-wins, histograms combined.
	Metrics *telemetry.Registry
	// Trace is every shard trace merged in index order.
	Trace *trace.Tracer
}

// Run executes cfg.Replications independent jobs over a pool of
// cfg.Parallel workers and merges the outcome. The job receives its own
// Shard and must confine all mutation to it. Run returns the first failed
// replication's error (lowest index, deterministically) and no report.
func Run[T any](cfg Config, job func(*Shard) (T, error)) (*Report[T], error) {
	if job == nil {
		return nil, fmt.Errorf("runner: nil job")
	}
	n := cfg.Replications
	if n < 1 {
		return nil, fmt.Errorf("runner: need at least one replication, got %d", n)
	}
	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	results := make([]T, n)
	errs := make([]error, n)
	shards := make([]*Shard, n)

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				sh := newShard(cfg, i)
				shards[i] = sh
				results[i], errs[i] = job(sh)
			}
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runner: replication %d: %w", i, err)
		}
	}

	rep := &Report[T]{
		Results: results,
		Metrics: telemetry.NewRegistry(),
		Trace:   trace.New(nil),
	}
	if cfg.SpanLimit > 0 {
		rep.Trace.SetSpanLimit(cfg.SpanLimit)
	}
	// Merge strictly in index order: this is what makes the report
	// independent of worker count and scheduling.
	for _, sh := range shards {
		rep.Metrics.Merge(sh.Metrics)
		rep.Trace.Merge(sh.Tracer)
	}
	return rep, nil
}

// newShard builds replication i's private world from (cfg.Seed, i).
func newShard(cfg Config, i int) *Shard {
	reg := telemetry.NewRegistry()
	if cfg.MetricsReservoir > 0 {
		reg.EnableReservoir(cfg.MetricsReservoir, cfg.Seed+int64(i))
	}
	tr := trace.New(nil)
	if cfg.SpanLimit > 0 {
		tr.SetSpanLimit(cfg.SpanLimit)
	}
	return &Shard{
		Index:   i,
		RNG:     sim.NewStream(cfg.Seed, uint64(i)),
		Metrics: reg,
		Tracer:  tr,
	}
}

package runner

import (
	"fmt"
	"testing"
)

// BenchmarkRunParallelScaling measures wall-clock scaling of the worker
// pool on a CPU-bound replication job. On an M-core machine the parallel=N
// (N <= M) variant should approach N-times the parallel=1 throughput —
// the ≥2x-at-4-workers acceptance bar for the sharded runner. (On a
// single-core machine all variants necessarily tie.)
func BenchmarkRunParallelScaling(b *testing.B) {
	job := func(sh *Shard) (float64, error) {
		// ~1M RNG draws of pure CPU per replication.
		var sum float64
		for i := 0; i < 1_000_000; i++ {
			sum += sh.RNG.Float64()
		}
		sh.Metrics.Observe("job.sum", sum)
		return sum, nil
	}
	for _, parallel := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", parallel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(Config{Replications: 8, Parallel: parallel, Seed: 42}, job); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

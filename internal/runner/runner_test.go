package runner

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// sweepOnce runs a small synthetic workload — every shard draws from its
// RNG, bumps metrics, and records spans — and returns the merged report.
func sweepOnce(t *testing.T, parallel int) *Report[float64] {
	t.Helper()
	rep, err := Run(Config{Replications: 8, Parallel: parallel, Seed: 42},
		func(sh *Shard) (float64, error) {
			v := sh.RNG.Float64()
			sh.Metrics.Add("job.runs", 1)
			sh.Metrics.Add(fmt.Sprintf("job.shard.%d", sh.Index), 1)
			sh.Metrics.Set("job.last_index", float64(sh.Index))
			sh.Metrics.Observe("job.value", v)
			span := sh.Tracer.StartSpanAt("runner", "job", 0)
			sh.Tracer.SpanAt("runner", "draw", 0, time.Duration(sh.Index))
			span.FinishAt(time.Duration(sh.Index + 1))
			return v, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRunDeterministicAcrossParallelLevels: the core guarantee — results,
// merged metrics, and merged traces are identical at any worker count.
func TestRunDeterministicAcrossParallelLevels(t *testing.T) {
	serial := sweepOnce(t, 1)
	for _, parallel := range []int{2, 4, 8, 16} {
		got := sweepOnce(t, parallel)
		for i := range serial.Results {
			if serial.Results[i] != got.Results[i] {
				t.Fatalf("parallel %d: result[%d] = %v, want %v",
					parallel, i, got.Results[i], serial.Results[i])
			}
		}
		if serial.Metrics.Render() != got.Metrics.Render() {
			t.Fatalf("parallel %d: merged metrics differ", parallel)
		}
		if serial.Trace.RenderTree() != got.Trace.RenderTree() {
			t.Fatalf("parallel %d: merged traces differ", parallel)
		}
	}
}

// TestRunMergesInIndexOrder: gauges are last-index-wins and counters sum.
func TestRunMergesInIndexOrder(t *testing.T) {
	rep := sweepOnce(t, 4)
	if got := rep.Metrics.Counter("job.runs"); got != 8 {
		t.Fatalf("job.runs = %v, want 8", got)
	}
	if got, ok := rep.Metrics.Gauge("job.last_index"); !ok || got != 7 {
		t.Fatalf("job.last_index = %v (%v), want 7 (highest index wins)", got, ok)
	}
	if h := rep.Metrics.Histogram("job.value"); h == nil || h.Count() != 8 {
		t.Fatal("merged histogram missing samples")
	}
	// Shard traces appear in index order: the "job" root spans finish at
	// index+1.
	roots := rep.Trace.Roots()
	if len(roots) != 8 {
		t.Fatalf("merged roots = %d, want 8", len(roots))
	}
	for i, r := range roots {
		if r.End != time.Duration(i+1) {
			t.Fatalf("root %d finishes at %v, want %v (index order)", i, r.End, time.Duration(i+1))
		}
	}
}

// TestRunShardRNGsAreIndependent: distinct replications draw distinct
// streams keyed by index, not by worker or scheduling.
func TestRunShardRNGsAreIndependent(t *testing.T) {
	rep := sweepOnce(t, 3)
	seen := map[float64]bool{}
	for _, v := range rep.Results {
		if seen[v] {
			t.Fatalf("two replications drew the same value %v", v)
		}
		seen[v] = true
	}
}

// TestRunErrorReporting: the lowest failing index is reported, with its
// replication number, no matter the worker count.
func TestRunErrorReporting(t *testing.T) {
	_, err := Run(Config{Replications: 8, Parallel: 4, Seed: 1},
		func(sh *Shard) (int, error) {
			if sh.Index >= 5 {
				return 0, fmt.Errorf("boom at %d", sh.Index)
			}
			return sh.Index, nil
		})
	if err == nil {
		t.Fatal("failing job reported no error")
	}
	if !strings.Contains(err.Error(), "replication 5") {
		t.Fatalf("error %q does not name the lowest failing replication", err)
	}
}

// TestRunValidation: degenerate configs are rejected; parallel levels above
// the replication count are clamped, not an error.
func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Replications: 0}, func(sh *Shard) (int, error) { return 0, nil }); err == nil {
		t.Fatal("zero replications accepted")
	}
	var nilJob func(*Shard) (int, error)
	if _, err := Run(Config{Replications: 1}, nilJob); err == nil {
		t.Fatal("nil job accepted")
	}
	rep, err := Run(Config{Replications: 2, Parallel: 64, Seed: 9},
		func(sh *Shard) (int, error) { return sh.Index, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 || rep.Results[0] != 0 || rep.Results[1] != 1 {
		t.Fatalf("results = %v, want [0 1]", rep.Results)
	}
}

// TestRunReservoirAndSpanLimits: per-shard reservoir and span caps are
// honored and still deterministic across parallel levels.
func TestRunReservoirAndSpanLimits(t *testing.T) {
	at := func(parallel int) string {
		rep, err := Run(Config{
			Replications: 4, Parallel: parallel, Seed: 7,
			MetricsReservoir: 4, SpanLimit: 3,
		}, func(sh *Shard) (int, error) {
			for i := 0; i < 50; i++ {
				sh.Metrics.Observe("v", sh.RNG.Float64())
				sh.Tracer.SpanAt("c", "op", 0, 1)
			}
			return 0, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		h := rep.Metrics.Histogram("v")
		if h.Count() != 200 {
			t.Fatalf("count = %d, want 200", h.Count())
		}
		if h.Retained() != 16 {
			t.Fatalf("retained = %d, want 4 shards x 4 reservoir", h.Retained())
		}
		return rep.Metrics.Render() + rep.Trace.RenderTree()
	}
	if at(1) != at(4) {
		t.Fatal("reservoir/span-capped run not deterministic across parallel levels")
	}
}

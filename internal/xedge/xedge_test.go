package xedge

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/hardware"
	"repro/internal/network"
)

func rsuStation() geo.Station {
	return geo.Station{ID: "rsu-0", Kind: geo.RSU, Pos: geo.Point{X: 500}, Radius: 300}
}

func TestNewValidation(t *testing.T) {
	xeon, _ := hardware.Lookup(hardware.DeviceEdgeXeon)
	dsrc, _ := network.LookupLink("dsrc")
	path := network.Path{Name: "p", Links: []network.LinkSpec{dsrc}}
	if _, err := New("", RSU, geo.Station{}, path, xeon); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := New("x", RSU, geo.Station{}, path); err == nil {
		t.Fatal("no processors accepted")
	}
	if _, err := New("x", RSU, geo.Station{}, network.Path{}, xeon); err == nil {
		t.Fatal("empty path accepted")
	}
	if _, err := New("x", RSU, geo.Station{}, path, &hardware.Processor{}); err == nil {
		t.Fatal("invalid processor accepted")
	}
}

func TestNewRSUConfiguration(t *testing.T) {
	s, err := NewRSU(rsuStation())
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != RSU || s.Name() != "rsu-0" {
		t.Fatalf("site = %s/%s", s.Name(), s.Kind())
	}
	if s.Access().Links[0].Tech != network.DSRC {
		t.Fatal("RSU not reached over DSRC")
	}
}

func TestReachability(t *testing.T) {
	s, _ := NewRSU(rsuStation())
	if !s.Reachable(geo.Point{X: 400}) {
		t.Fatal("in-coverage point unreachable")
	}
	if s.Reachable(geo.Point{X: 900}) {
		t.Fatal("out-of-coverage point reachable")
	}
	c, _ := NewCloud()
	if !c.Reachable(geo.Point{X: 1e9}) {
		t.Fatal("cloud should be position-independent")
	}
	n, _ := NewNeighborVehicle("buddy")
	if !n.Reachable(geo.Point{X: 123}) {
		t.Fatal("neighbor should be reachable in convoy")
	}
}

func TestSubmitAndEstimateAgree(t *testing.T) {
	s, _ := NewRSU(rsuStation())
	est, err := s.EstimateExec(0, hardware.DNNInference, 100)
	if err != nil {
		t.Fatal(err)
	}
	_, finish, err := s.Submit(0, hardware.DNNInference, 100)
	if err != nil {
		t.Fatal(err)
	}
	if est != finish {
		t.Fatalf("estimate %v != submit finish %v", est, finish)
	}
}

func TestSubmitPicksFasterDevice(t *testing.T) {
	s, _ := NewRSU(rsuStation())
	// DNN work should land on the GPU (420 GF) not the Xeon (150 GF):
	// 100 GFLOP -> ~238ms on GPU.
	_, finish, err := s.Submit(0, hardware.DNNInference, 100)
	if err != nil {
		t.Fatal(err)
	}
	if finish > 300*time.Millisecond {
		t.Fatalf("DNN work took %v; expected GPU-speed (<300ms)", finish)
	}
}

func TestSubmitUnsupportedClass(t *testing.T) {
	n, _ := NewNeighborVehicle("buddy")
	// The TX2 has no Crypto entry but has General fallback, so use an
	// impossible class via a site with only an ASIC.
	asic, _ := hardware.Lookup(hardware.DeviceVCUASIC)
	dsrc, _ := network.LookupLink("dsrc")
	s, err := New("asic-site", RSU, geo.Station{}, network.Path{Name: "p", Links: []network.LinkSpec{dsrc}}, asic)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Submit(0, hardware.Crypto, 1); err == nil {
		t.Fatal("unsupported class accepted")
	}
	_ = n
}

func TestPreloadRaisesQueueing(t *testing.T) {
	fresh, _ := NewRSU(rsuStation())
	busy, _ := NewRSU(rsuStation())
	if err := busy.Preload(64, hardware.DNNInference, 500); err != nil {
		t.Fatal(err)
	}
	ef, _ := fresh.EstimateExec(0, hardware.DNNInference, 100)
	eb, _ := busy.EstimateExec(0, hardware.DNNInference, 100)
	if eb <= ef {
		t.Fatalf("preloaded site not slower: %v vs %v", eb, ef)
	}
	if busy.Utilization(time.Second) <= fresh.Utilization(time.Second) {
		t.Fatal("preload did not raise utilization")
	}
}

func TestPlaceAlongRoad(t *testing.T) {
	road, _ := geo.NewRoad(10000)
	road.PlaceStations(4, geo.RSU, 300, 0, "rsu")
	road.PlaceStations(2, geo.BaseStation, 1500, 0, "bs")
	sites, err := PlaceAlongRoad(road)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 4 {
		t.Fatalf("placed %d sites, want 4 (RSUs only)", len(sites))
	}
	if _, err := PlaceAlongRoad(nil); err == nil {
		t.Fatal("nil road accepted")
	}
}

func TestSiteKindString(t *testing.T) {
	if RSU.String() != "rsu" || CloudSite.String() != "cloud" || SiteKind(42).String() != "site-kind(42)" {
		t.Fatal("kind names wrong")
	}
}

func TestCloudPath(t *testing.T) {
	c, err := NewCloud()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Access().Links) != 2 {
		t.Fatalf("cloud path has %d hops, want 2 (LTE + WAN)", len(c.Access().Links))
	}
	if c.Access().RTT() <= 100*time.Millisecond {
		t.Fatalf("cloud RTT = %v, want > 100ms", c.Access().RTT())
	}
}

func TestSiteAvailability(t *testing.T) {
	s, err := NewRSU(rsuStation())
	if err != nil {
		t.Fatal(err)
	}
	if !s.Available() {
		t.Fatal("new site unavailable")
	}
	in := geo.Point{X: 400}
	if !s.Reachable(in) {
		t.Fatal("in-coverage point unreachable")
	}
	s.SetAvailable(false)
	if s.Reachable(in) {
		t.Fatal("down site reachable")
	}
	s.SetAvailable(true)
	if !s.Reachable(in) {
		t.Fatal("restored site unreachable")
	}
}

func TestNewBaseStationEdge(t *testing.T) {
	st := geo.Station{ID: "bs-0", Kind: geo.BaseStation, Pos: geo.Point{X: 1000}, Radius: 900}
	s, err := NewBaseStationEdge(st)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != BaseStationEdge {
		t.Fatalf("kind = %v", s.Kind())
	}
	if s.Access().Links[0].Tech != network.LTE {
		t.Fatal("base-station edge not reached over LTE")
	}
	if s.Station().ID != "bs-0" {
		t.Fatalf("station = %+v", s.Station())
	}
	if !s.Reachable(geo.Point{X: 1500}) || s.Reachable(geo.Point{X: 5000}) {
		t.Fatal("coverage wrong")
	}
}

// TestUnavailableSiteRejectsSubmit is the regression test for the
// available-flag gap: Submit, EstimateExec, and Preload previously
// succeeded against a site marked down via SetAvailable(false), because
// only Reachable consulted the flag.
func TestUnavailableSiteRejectsSubmit(t *testing.T) {
	s, err := NewRSU(rsuStation())
	if err != nil {
		t.Fatal(err)
	}
	s.SetAvailable(false)
	if _, _, err := s.Submit(0, hardware.DNNInference, 10); err == nil {
		t.Fatal("submit to down site succeeded")
	}
	if _, err := s.EstimateExec(0, hardware.DNNInference, 10); err == nil {
		t.Fatal("estimate on down site succeeded")
	}
	if err := s.Preload(1, hardware.DNNInference, 10); err == nil {
		t.Fatal("preload of down site succeeded")
	}
	s.SetAvailable(true)
	start, finish, err := s.Submit(time.Second, hardware.DNNInference, 10)
	if err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	if finish <= start {
		t.Fatalf("bad reservation [%v, %v]", start, finish)
	}
}

// TestFaultInjectorGatesSubmit: an installed FaultFunc fails submissions
// without reserving executor time; removing it restores service.
func TestFaultInjectorGatesSubmit(t *testing.T) {
	s, err := NewRSU(rsuStation())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	s.SetFaultInjector(func(now time.Duration) error {
		calls++
		if now < time.Second {
			return fmt.Errorf("injected fault at %v", now)
		}
		return nil
	})
	if _, _, err := s.Submit(0, hardware.DNNInference, 10); err == nil {
		t.Fatal("submit during fault window succeeded")
	}
	if u := s.Utilization(time.Second); u != 0 {
		t.Fatalf("failed submit reserved executor time (util %v)", u)
	}
	if _, _, err := s.Submit(2*time.Second, hardware.DNNInference, 10); err != nil {
		t.Fatalf("submit past fault window: %v", err)
	}
	if calls != 2 {
		t.Fatalf("fault hook called %d times, want 2", calls)
	}
	s.SetFaultInjector(nil)
	if _, _, err := s.Submit(0, hardware.DNNInference, 10); err != nil {
		t.Fatalf("submit after removing hook: %v", err)
	}
}

// TestRateCacheMatchesExecutorEstimates: the memoized class-rate path in
// bestExec must agree exactly with the executors' own EstimateFinish, on
// first use (cache fill) and on repeat use (cache hit), across classes
// and queue depths.
func TestRateCacheMatchesExecutorEstimates(t *testing.T) {
	s, _ := NewRSU(rsuStation())
	classes := []hardware.Class{hardware.DNNInference, hardware.General, hardware.Codec}
	ref := func(now time.Duration, c hardware.Class, gflop float64) (time.Duration, bool) {
		var best time.Duration
		found := false
		for _, e := range s.execs {
			finish, err := e.EstimateFinish(now, c, gflop)
			if err != nil {
				continue
			}
			if !found || finish < best {
				best, found = finish, true
			}
		}
		return best, found
	}
	for round := 0; round < 3; round++ {
		for i, c := range classes {
			now := time.Duration(round*50+i) * time.Millisecond
			gflop := float64(10 + 37*i + round)
			want, feasible := ref(now, c, gflop)
			got, err := s.EstimateExec(now, c, gflop)
			if !feasible {
				if err == nil {
					t.Fatalf("round %d class %v: cache feasible, reference not", round, c)
				}
				continue
			}
			if err != nil {
				t.Fatalf("round %d class %v: %v", round, c, err)
			}
			if got != want {
				t.Fatalf("round %d class %v: cached estimate %v != reference %v", round, c, got, want)
			}
		}
		// Load the site so queue state changes between rounds.
		if _, _, err := s.Submit(0, hardware.DNNInference, 200); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRateCacheSurvivesAvailabilityFlip: the rate table is warmed at
// construction and immutable; estimates must fail while the site is down
// and return to exact agreement after it comes back.
func TestRateCacheSurvivesAvailabilityFlip(t *testing.T) {
	s, _ := NewRSU(rsuStation())
	before, err := s.EstimateExec(0, hardware.DNNInference, 100)
	if err != nil {
		t.Fatal(err)
	}
	s.SetAvailable(false)
	if _, err := s.EstimateExec(0, hardware.DNNInference, 100); err == nil {
		t.Fatal("estimate succeeded on a down site")
	}
	if len(s.svcRates) != len(hardware.Classes()) {
		t.Fatalf("rate table not warm across availability flip: %d classes", len(s.svcRates))
	}
	s.SetAvailable(true)
	after, err := s.EstimateExec(0, hardware.DNNInference, 100)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("estimate changed across availability flip: %v != %v", after, before)
	}
}

// TestFreezeAssertsCommitPhaseOwnership: a frozen site must reject every
// mutation with a panic (ownership-model violation) while read paths keep
// working, and Unfreeze restores mutability.
func TestFreezeAssertsCommitPhaseOwnership(t *testing.T) {
	s, _ := NewRSU(rsuStation())
	s.Freeze()
	if !s.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}
	// Reads stay legal during the decision phase.
	if _, err := s.EstimateExec(0, hardware.DNNInference, 100); err != nil {
		t.Fatal(err)
	}
	if !s.Reachable(s.Station().Pos) {
		t.Fatal("frozen site unreachable")
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic on a frozen site", name)
			}
		}()
		fn()
	}
	mustPanic("Submit", func() { s.Submit(0, hardware.DNNInference, 100) })
	mustPanic("SetAvailable", func() { s.SetAvailable(false) })
	mustPanic("Preload", func() { s.Preload(1, hardware.DNNInference, 100) })
	mustPanic("SetFaultInjector", func() { s.SetFaultInjector(nil) })
	s.Unfreeze()
	if _, _, err := s.Submit(0, hardware.DNNInference, 100); err != nil {
		t.Fatalf("Submit after Unfreeze: %v", err)
	}
}

// TestCommitPhaseOwnership covers the parallel-commit ownership
// lifecycle: Begin/End bracket the owner id, double-claims and negative
// owners panic, and out-of-band mutations are rejected while owned.
func TestCommitPhaseOwnership(t *testing.T) {
	s, err := NewRSU(geo.Station{ID: "rsu-own", Kind: geo.RSU, Radius: 300})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CommitOwner(); got != -1 {
		t.Fatalf("fresh site owner = %d, want -1", got)
	}
	s.BeginCommitPhase(3)
	if got := s.CommitOwner(); got != 3 {
		t.Fatalf("owner = %d, want 3", got)
	}
	// Submissions remain legal (and guarded) inside the phase.
	if _, _, err := s.Submit(0, hardware.General, 10); err != nil {
		t.Fatalf("owned Submit failed: %v", err)
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s during parallel commit phase did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("SetAvailable", func() { s.SetAvailable(false) })
	mustPanic("SetFaultInjector", func() { s.SetFaultInjector(nil) })
	mustPanic("Preload", func() { _ = s.Preload(1, hardware.General, 1) })
	mustPanic("double BeginCommitPhase", func() { s.BeginCommitPhase(4) })
	s.EndCommitPhase()
	if got := s.CommitOwner(); got != -1 {
		t.Fatalf("owner after End = %d, want -1", got)
	}
	s.SetAvailable(true) // legal again between phases
	mustPanic("negative owner", func() { s.BeginCommitPhase(-1) })
}

// TestCommitPhaseCollisionPanics: concurrent Submit entry on an owned
// site — two commit lanes reaching one site — panics instead of racing.
func TestCommitPhaseCollisionPanics(t *testing.T) {
	s, err := NewRSU(geo.Station{ID: "rsu-col", Kind: geo.RSU, Radius: 300})
	if err != nil {
		t.Fatal(err)
	}
	s.BeginCommitPhase(0)
	// Simulate a lane mid-Submit; the next entry must trip the guard.
	if !s.committing.CompareAndSwap(0, 1) {
		t.Fatal("could not arm the in-flight marker")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("overlapping Submit on an owned site did not panic")
			}
		}()
		_, _, _ = s.Submit(0, hardware.General, 10)
	}()
	s.committing.Store(0)
	s.EndCommitPhase()
}

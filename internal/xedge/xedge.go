// Package xedge models the external computing entities OpenVDAP offloads
// to (paper §IV): XEdge servers running on RSUs, base stations, and traffic
// signals, plus neighboring vehicles reachable over DSRC. Each site owns
// real executors (multi-tenant queueing included) and an access network
// path; reachability follows the vehicle's position.
package xedge

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/hardware"
	"repro/internal/network"
)

// SiteKind classifies offload destinations.
type SiteKind int

const (
	// RSU is a roadside-unit XEdge server (DSRC/5G access, small coverage).
	RSU SiteKind = iota + 1
	// BaseStationEdge is an XEdge server co-located with a cellular tower.
	BaseStationEdge
	// NeighborVehicle is another CAV sharing compute over DSRC.
	NeighborVehicle
	// CloudSite is the remote datacenter behind the WAN.
	CloudSite
)

var siteKindNames = map[SiteKind]string{
	RSU: "rsu", BaseStationEdge: "base-station-edge",
	NeighborVehicle: "neighbor-vehicle", CloudSite: "cloud",
}

// String returns the lower-case kind name.
func (k SiteKind) String() string {
	if s, ok := siteKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("site-kind(%d)", int(k))
}

// Site is one offload destination: compute executors behind a network path.
//
// Concurrency — the epoch-barrier ownership model. A Site's executor
// queues are mutable simulation state. Sites may be shared by every
// vehicle of one fleet (that contention is the point), but never across
// concurrently-running replications — parallel harnesses build a fresh
// set of sites per replication (see internal/runner and fleet.New).
// Within one fleet, intra-run sharding (fleet.ShardedInvokeAll) splits
// every invocation round into two phases:
//
//   - decision phase: vehicle shards run concurrently and may only READ
//     site state (Reachable, EstimateExec, Access, Available). The fleet
//     calls Freeze() on every shared site for the duration; a frozen site
//     panics on any mutation, turning an ownership bug into a loud,
//     deterministic failure instead of a data race.
//   - commit phase: mutations (Submit, SetAvailable, Preload) run after
//     Unfreeze(), in canonical vehicle-index order per site. Serially one
//     goroutine owns every site; under parallel commit lanes
//     (fleet domains.go) each site is claimed by exactly one interaction
//     domain via BeginCommitPhase, which arms a concurrent-entry guard on
//     Submit and forbids out-of-band mutations until EndCommitPhase.
//
// All read paths used during the decision phase are genuinely read-only:
// the per-class service-rate table is warmed eagerly at construction (see
// warmRates), so estimates never fill caches concurrently.
type Site struct {
	name      string
	kind      SiteKind
	station   geo.Station // zero Station (Radius 0) means position-independent
	access    network.Path
	execs     []*hardware.Executor
	available bool
	frozen    bool
	faultFn   FaultFunc

	// commitOwner is the interaction-domain id that owns this site during
	// a parallel commit phase, -1 outside one (see BeginCommitPhase).
	// committing is the Submit entry guard while owned: concurrent entry
	// means two commit lanes reached one site — a domain-partition bug —
	// and panics rather than racing.
	commitOwner int
	committing  atomic.Int32

	// svcRates holds, per task class, each executor's effective
	// throughput (GFLOPS; <= 0 when the executor cannot run the class).
	// Processors are immutable after construction, so the table is warmed
	// once for every known class in New and never invalidated — which is
	// what lets concurrent decision-phase estimates treat it as read-only.
	// bestExec reads these instead of re-resolving the throughput table
	// per executor per estimate.
	svcRates map[hardware.Class][]float64
}

// FaultFunc inspects a submission at virtual time now and returns a
// non-nil error to inject a failure (transient outage windows, chaos
// schedules). Estimates are deliberately not consulted: an injected fault
// is a surprise the offloading layer discovers at execution time.
type FaultFunc func(now time.Duration) error

// New assembles a site from processors and an access path.
func New(name string, kind SiteKind, station geo.Station, access network.Path, procs ...*hardware.Processor) (*Site, error) {
	if name == "" {
		return nil, fmt.Errorf("xedge: site has no name")
	}
	if len(procs) == 0 {
		return nil, fmt.Errorf("xedge: site %s has no processors", name)
	}
	if len(access.Links) == 0 {
		return nil, fmt.Errorf("xedge: site %s has no access path", name)
	}
	s := &Site{name: name, kind: kind, station: station, access: access, available: true, commitOwner: -1}
	for _, p := range procs {
		exec, err := hardware.NewExecutor(p)
		if err != nil {
			return nil, fmt.Errorf("site %s: %w", name, err)
		}
		s.execs = append(s.execs, exec)
	}
	s.warmRates()
	return s, nil
}

// warmRates fills the service-rate table for every known task class so
// decision-phase reads never mutate the site (see the ownership model on
// Site).
func (s *Site) warmRates() {
	s.svcRates = make(map[hardware.Class][]float64, len(hardware.Classes()))
	for _, class := range hardware.Classes() {
		rates := make([]float64, len(s.execs))
		for i, e := range s.execs {
			rates[i] = e.Processor().EffectiveGFLOPS(class)
		}
		s.svcRates[class] = rates
	}
}

// NewRSU builds the standard RSU configuration: a Xeon plus an edge GPU,
// reached over DSRC, covering the given station.
func NewRSU(station geo.Station) (*Site, error) {
	xeon, err := hardware.Lookup(hardware.DeviceEdgeXeon)
	if err != nil {
		return nil, err
	}
	gpu, err := hardware.Lookup(hardware.DeviceEdgeGPU)
	if err != nil {
		return nil, err
	}
	dsrc, err := network.LookupLink("dsrc")
	if err != nil {
		return nil, err
	}
	path := network.Path{Name: "vehicle-rsu", Links: []network.LinkSpec{dsrc}}
	return New(station.ID, RSU, station, path, xeon, gpu)
}

// NewBaseStationEdge builds an XEdge server at a cellular tower, reached
// over LTE.
func NewBaseStationEdge(station geo.Station) (*Site, error) {
	xeon, err := hardware.Lookup(hardware.DeviceEdgeXeon)
	if err != nil {
		return nil, err
	}
	gpu, err := hardware.Lookup(hardware.DeviceEdgeGPU)
	if err != nil {
		return nil, err
	}
	lte, err := network.LookupLink("lte")
	if err != nil {
		return nil, err
	}
	path := network.Path{Name: "vehicle-bs", Links: []network.LinkSpec{lte}}
	return New(station.ID, BaseStationEdge, station, path, xeon, gpu)
}

// NewNeighborVehicle builds a peer CAV's shareable compute (one TX2-class
// GPU) reached over DSRC. The neighbor is modeled as staying in convoy
// range (position-independent reachability).
func NewNeighborVehicle(name string) (*Site, error) {
	gpu, err := hardware.Lookup(hardware.DeviceTX2MaxP)
	if err != nil {
		return nil, err
	}
	dsrc, err := network.LookupLink("dsrc")
	if err != nil {
		return nil, err
	}
	path := network.Path{Name: "vehicle-neighbor", Links: []network.LinkSpec{dsrc}}
	return New(name, NeighborVehicle, geo.Station{}, path, gpu)
}

// NewCloud builds the remote-cloud site: a large node behind LTE + WAN.
func NewCloud() (*Site, error) {
	node, err := hardware.Lookup(hardware.DeviceCloudNode)
	if err != nil {
		return nil, err
	}
	lte, err := network.LookupLink("lte")
	if err != nil {
		return nil, err
	}
	wan, err := network.LookupLink("wan")
	if err != nil {
		return nil, err
	}
	path := network.Path{Name: "vehicle-cloud", Links: []network.LinkSpec{lte, wan}}
	return New("cloud", CloudSite, geo.Station{}, path, node)
}

// Name returns the site name.
func (s *Site) Name() string { return s.name }

// Kind returns the site kind.
func (s *Site) Kind() SiteKind { return s.kind }

// Access returns the network path from the vehicle to this site.
func (s *Site) Access() network.Path { return s.access }

// Station returns the coverage anchor (zero for position-independent sites).
func (s *Site) Station() geo.Station { return s.station }

// SetAvailable marks the site up or down (maintenance, backhaul cut). An
// unavailable site is unreachable from everywhere and rejects direct
// submissions and estimates. The service-rate table is immutable after
// construction (processors never change), so availability flips leave it
// untouched; bestExec consults the availability flag before any rate.
func (s *Site) SetAvailable(up bool) {
	s.assertUnfrozen("SetAvailable")
	s.assertUnowned("SetAvailable")
	s.available = up
}

// Freeze marks the start of a parallel decision phase: until Unfreeze,
// every mutation (Submit, Preload, SetAvailable, SetFaultInjector) panics.
// The fleet's sharded executor freezes all shared sites while vehicle
// shards estimate concurrently, so any code path that would mutate a site
// from the decision phase fails loudly and deterministically instead of
// racing. See the ownership model documented on Site.
func (s *Site) Freeze() { s.frozen = true }

// Unfreeze ends the parallel decision phase; the (single-threaded) commit
// phase may mutate the site again.
func (s *Site) Unfreeze() { s.frozen = false }

// Frozen reports whether the site is in a parallel decision phase.
func (s *Site) Frozen() bool { return s.frozen }

// assertUnfrozen panics when a mutation is attempted during a parallel
// decision phase — an ownership-model violation, not a recoverable error.
func (s *Site) assertUnfrozen(op string) {
	if s.frozen {
		panic(fmt.Sprintf("xedge: %s on frozen site %s during parallel decision phase (mutations belong to the commit phase; see Site ownership model)", op, s.name))
	}
}

// BeginCommitPhase marks the start of a parallel commit phase in which
// this site belongs to the given commit lane (a fleet interaction domain,
// owner >= 0). While owned, Submit carries a concurrent-entry guard — two
// lanes reaching one site is a domain-partition violation and panics —
// and out-of-band mutations (SetAvailable, SetFaultInjector, Preload)
// panic outright: only canonical-order submissions belong inside the
// phase. Pair with EndCommitPhase at the phase barrier.
func (s *Site) BeginCommitPhase(owner int) {
	s.assertUnfrozen("BeginCommitPhase")
	if owner < 0 {
		panic(fmt.Sprintf("xedge: BeginCommitPhase on site %s with negative owner %d", s.name, owner))
	}
	if s.commitOwner >= 0 {
		panic(fmt.Sprintf("xedge: BeginCommitPhase on site %s already owned by commit lane %d", s.name, s.commitOwner))
	}
	s.commitOwner = owner
}

// EndCommitPhase releases commit-lane ownership at the phase barrier.
func (s *Site) EndCommitPhase() {
	if s.committing.Load() != 0 {
		panic(fmt.Sprintf("xedge: EndCommitPhase on site %s with a Submit still in flight", s.name))
	}
	s.commitOwner = -1
}

// CommitOwner returns the owning commit lane during a parallel commit
// phase, -1 outside one.
func (s *Site) CommitOwner() int { return s.commitOwner }

// assertUnowned panics when an out-of-band mutation is attempted during a
// parallel commit phase; such mutations belong between phases.
func (s *Site) assertUnowned(op string) {
	if s.commitOwner >= 0 {
		panic(fmt.Sprintf("xedge: %s on site %s during parallel commit phase (owned by commit lane %d; out-of-band mutations belong between phases)", op, s.name, s.commitOwner))
	}
}

// SetFaultInjector installs fn as the site's submission-time fault hook
// (nil removes it). When fn returns an error, Submit fails without
// reserving an executor.
func (s *Site) SetFaultInjector(fn FaultFunc) {
	s.assertUnfrozen("SetFaultInjector")
	s.assertUnowned("SetFaultInjector")
	s.faultFn = fn
}

// Available reports whether the site is serving.
func (s *Site) Available() bool { return s.available }

// Reachable reports whether a vehicle at p can use this site.
func (s *Site) Reachable(p geo.Point) bool {
	if !s.available {
		return false
	}
	if s.station.Radius <= 0 {
		return true
	}
	return s.station.Covers(p)
}

// ratesFor returns the per-executor throughput for a task class. Every
// class in the hardware enum was warmed at construction; an out-of-enum
// class (possible only through future extension) is computed on the fly
// without touching the table, keeping this a pure read — concurrent
// decision-phase estimates depend on that.
func (s *Site) ratesFor(class hardware.Class) []float64 {
	if rates, ok := s.svcRates[class]; ok {
		return rates
	}
	rates := make([]float64, len(s.execs))
	for i, e := range s.execs {
		rates[i] = e.Processor().EffectiveGFLOPS(class)
	}
	return rates
}

// bestExec picks the executor with the earliest finish for the work. A
// site marked down via SetAvailable rejects work outright: Reachable is
// only consulted on the estimation path, so without this check a direct
// submit to a down site would silently succeed. Service times come from
// the memoized class rates, so the per-task estimate loop does no
// throughput-table lookups and allocates nothing for incompatible
// executors.
func (s *Site) bestExec(now time.Duration, class hardware.Class, gflop float64) (*hardware.Executor, time.Duration, error) {
	if !s.available {
		return nil, 0, fmt.Errorf("xedge: site %s is unavailable", s.name)
	}
	if gflop < 0 {
		// Matches the pre-cache outcome: every executor rejected the work.
		return nil, 0, fmt.Errorf("xedge: site %s cannot run %v work", s.name, class)
	}
	rates := s.ratesFor(class)
	var best *hardware.Executor
	var bestFinish time.Duration
	for i, e := range s.execs {
		rate := rates[i]
		if rate <= 0 {
			continue
		}
		// Same arithmetic as hardware.Processor.ExecTime, so cached and
		// uncached estimates agree to the nanosecond.
		exec := time.Duration(gflop / rate * float64(time.Second))
		finish := e.EarliestStart(now) + exec
		if best == nil || finish < bestFinish {
			best, bestFinish = e, finish
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("xedge: site %s cannot run %v work", s.name, class)
	}
	return best, bestFinish, nil
}

// EstimateExec predicts completion of the compute portion only.
func (s *Site) EstimateExec(now time.Duration, class hardware.Class, gflop float64) (time.Duration, error) {
	_, finish, err := s.bestExec(now, class, gflop)
	return finish, err
}

// Submit reserves the best executor for the work. Injected faults (see
// SetFaultInjector) fail the submission before any reservation is made.
// Submit is a commit-phase mutation: calling it on a frozen site panics.
func (s *Site) Submit(now time.Duration, class hardware.Class, gflop float64) (start, finish time.Duration, err error) {
	s.assertUnfrozen("Submit")
	if s.commitOwner >= 0 {
		// Parallel commit phase: detect two lanes colliding on one site.
		// Watermark-serialized residue commits interleave with the owning
		// lane without overlap, so any concurrent entry is a real
		// domain-partition violation.
		if !s.committing.CompareAndSwap(0, 1) {
			panic(fmt.Sprintf("xedge: concurrent Submit on site %s during parallel commit phase (owned by commit lane %d): interaction domains overlapped", s.name, s.commitOwner))
		}
		defer s.committing.Store(0)
	}
	exec, _, err := s.bestExec(now, class, gflop)
	if err != nil {
		return 0, 0, err
	}
	if s.faultFn != nil {
		if err := s.faultFn(now); err != nil {
			return 0, 0, fmt.Errorf("xedge: site %s: %w", s.name, err)
		}
	}
	return exec.Submit(now, class, gflop)
}

// Preload occupies the site with background tenant work: n tasks of the
// given class and size submitted at time 0, raising queueing delay for
// subsequent vehicles (multi-tenancy).
func (s *Site) Preload(n int, class hardware.Class, gflop float64) error {
	s.assertUnowned("Preload")
	for i := 0; i < n; i++ {
		if _, _, err := s.Submit(0, class, gflop); err != nil {
			return err
		}
	}
	return nil
}

// Utilization aggregates executor utilization over the horizon.
func (s *Site) Utilization(horizon time.Duration) float64 {
	if len(s.execs) == 0 {
		return 0
	}
	var sum float64
	for _, e := range s.execs {
		sum += e.Utilization(horizon)
	}
	return sum / float64(len(s.execs))
}

// PendingWork returns the total committed busy time still ahead of now
// across the site's executors — its queue depth expressed in virtual time.
// Read-only (no freeze assertion), so health gauges may sample it any time.
func (s *Site) PendingWork(now time.Duration) time.Duration {
	var sum time.Duration
	for _, e := range s.execs {
		sum += e.PendingWork(now)
	}
	return sum
}

// PlaceAlongRoad instantiates RSU sites for every RSU station on the road.
func PlaceAlongRoad(road *geo.Road) ([]*Site, error) {
	if road == nil {
		return nil, fmt.Errorf("xedge: nil road")
	}
	var sites []*Site
	for _, st := range road.StationsOfKind(geo.RSU) {
		s, err := NewRSU(st)
		if err != nil {
			return nil, err
		}
		sites = append(sites, s)
	}
	return sites, nil
}

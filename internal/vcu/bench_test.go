package vcu

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/tasks"
)

func BenchmarkGreedyEFTPlanALPR(b *testing.B) {
	m, err := DefaultVCU()
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewDSF(m, GreedyEFT{})
	if err != nil {
		b.Fatal(err)
	}
	dag := tasks.ALPR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Plan(dag, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHEFTPlanRandom24(b *testing.B) {
	rng := sim.NewRNG(1)
	dag, err := tasks.RandomDAG("bench", tasks.RandomDAGConfig{MinTasks: 24, MaxTasks: 24}, rng)
	if err != nil {
		b.Fatal(err)
	}
	m, _ := DefaultVCU()
	s, _ := NewDSF(m, HEFT{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Plan(dag, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunCommitALPR(b *testing.B) {
	m, _ := DefaultVCU()
	s, _ := NewDSF(m, GreedyEFT{})
	dag := tasks.ALPR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(dag, 0); err != nil {
			b.Fatal(err)
		}
	}
}

package vcu

import (
	"testing"

	"repro/internal/tasks"
)

func TestPartitionDataParallelStructure(t *testing.T) {
	task := tasks.VehicleDetectionDNN()
	dag, err := PartitionDataParallel(task, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(dag.Tasks) != 5 { // 4 shards + merge
		t.Fatalf("tasks = %d, want 5", len(dag.Tasks))
	}
	if err := dag.Validate(); err != nil {
		t.Fatal(err)
	}
	// Work is conserved up to the merge overhead.
	total := dag.TotalGFLOP()
	want := task.GFLOP * (1 + mergeGFLOPFraction)
	if total < want*0.999 || total > want*1.001 {
		t.Fatalf("total work = %v, want %v", total, want)
	}
	// Merge depends on every shard.
	merge, ok := dag.Get(task.ID + "-merge")
	if !ok || len(merge.Deps) != 4 {
		t.Fatalf("merge = %+v", merge)
	}
}

func TestPartitionSingleShardIsIdentity(t *testing.T) {
	task := tasks.InceptionV3()
	dag, err := PartitionDataParallel(task, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dag.Tasks) != 1 || dag.Tasks[0].GFLOP != task.GFLOP {
		t.Fatalf("identity partition = %+v", dag.Tasks)
	}
	// The copy must not alias the original.
	dag.Tasks[0].GFLOP = 0
	if task.GFLOP == 0 {
		t.Fatal("partition aliases input task")
	}
}

func TestPartitionValidation(t *testing.T) {
	if _, err := PartitionDataParallel(nil, 2); err == nil {
		t.Fatal("nil task accepted")
	}
	if _, err := PartitionDataParallel(tasks.InceptionV3(), 0); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := PartitionDataParallel(&tasks.Task{}, 2); err == nil {
		t.Fatal("invalid task accepted")
	}
}

// TestAutoPartitionSpeedsUpHeavyDNN is §III-B's claim: splitting a heavy
// task across the VCU's heterogeneous processors beats any single device.
func TestAutoPartitionSpeedsUpHeavyDNN(t *testing.T) {
	s := newDSF(t, GreedyEFT{})
	task := tasks.VehicleDetectionDNN()
	best, dag, choices, err := s.AutoPartition(task, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) == 0 {
		t.Fatal("no choices evaluated")
	}
	var single PartitionChoice
	found := false
	for _, c := range choices {
		if c.Shards == 1 {
			single, found = c, true
		}
	}
	if !found {
		t.Fatal("single-shard baseline missing")
	}
	if best.Makespan >= single.Makespan {
		t.Fatalf("partitioning did not help: best %v vs single %v", best.Makespan, single.Makespan)
	}
	if len(dag.Tasks) < 2 {
		t.Fatalf("best DAG has %d tasks; expected a real split", len(dag.Tasks))
	}
	// At least 1.5x speedup from using multiple accelerators at once.
	if float64(single.Makespan)/float64(best.Makespan) < 1.5 {
		t.Fatalf("speedup only %.2fx", float64(single.Makespan)/float64(best.Makespan))
	}
}

func TestAutoPartitionValidation(t *testing.T) {
	s := newDSF(t, GreedyEFT{})
	if _, _, _, err := s.AutoPartition(tasks.InceptionV3(), 0, 0); err == nil {
		t.Fatal("zero maxShards accepted")
	}
}

// TestAutoPartitionCommittable: the chosen DAG commits cleanly.
func TestAutoPartitionCommittable(t *testing.T) {
	s := newDSF(t, GreedyEFT{})
	_, dag, _, err := s.AutoPartition(tasks.VehicleDetectionDNN(), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	committed, err := s.Run(dag, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(committed.Assignments) != len(dag.Tasks) {
		t.Fatal("commit dropped tasks")
	}
}

package vcu

import (
	"testing"
	"time"

	"repro/internal/hardware"
)

func TestDefaultVCU(t *testing.T) {
	m, err := DefaultVCU()
	if err != nil {
		t.Fatal(err)
	}
	devs := m.Devices()
	if len(devs) != 4 {
		t.Fatalf("default VCU has %d devices, want 4", len(devs))
	}
	for _, d := range devs {
		if d.Tier() != FirstLevel {
			t.Errorf("device %s tier = %v, want 1stHEP", d.Name(), d.Tier())
		}
		if !d.Online() {
			t.Errorf("device %s offline at start", d.Name())
		}
	}
	if m.Storage() == nil {
		t.Fatal("no storage attached")
	}
}

func TestAddRemoveSecondLevel(t *testing.T) {
	m, _ := DefaultVCU()
	phone, _ := hardware.Lookup(hardware.DevicePhone)
	if err := m.AddDevice(phone, SecondLevel, WiFiIO()); err != nil {
		t.Fatal(err)
	}
	if len(m.Devices()) != 5 {
		t.Fatal("phone not added")
	}
	if err := m.AddDevice(phone, SecondLevel, WiFiIO()); err == nil {
		t.Fatal("duplicate device accepted")
	}
	if err := m.RemoveDevice(hardware.DevicePhone); err != nil {
		t.Fatal(err)
	}
	if len(m.Devices()) != 4 {
		t.Fatal("phone not removed")
	}
	if err := m.RemoveDevice("ghost"); err == nil {
		t.Fatal("removing unknown device succeeded")
	}
}

func TestRemoveFirstLevelRefused(t *testing.T) {
	m, _ := DefaultVCU()
	if err := m.RemoveDevice(hardware.DeviceI76700); err == nil {
		t.Fatal("removed installed 1stHEP hardware")
	}
}

func TestAddDeviceValidation(t *testing.T) {
	m := NewMHEP()
	if err := m.AddDevice(nil, FirstLevel, PCIeIO()); err == nil {
		t.Fatal("nil processor accepted")
	}
	p, _ := hardware.Lookup(hardware.DevicePhone)
	if err := m.AddDevice(p, SecondLevel, IO{}); err == nil {
		t.Fatal("zero IO accepted")
	}
}

func TestSetOnline(t *testing.T) {
	m, _ := DefaultVCU()
	if err := m.SetOnline(hardware.DeviceVCUASIC, false); err != nil {
		t.Fatal(err)
	}
	online := m.OnlineDevices()
	if len(online) != 3 {
		t.Fatalf("online = %d, want 3", len(online))
	}
	for _, d := range online {
		if d.Name() == hardware.DeviceVCUASIC {
			t.Fatal("offline device listed online")
		}
	}
	if err := m.SetOnline("ghost", true); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestProfiles(t *testing.T) {
	m, _ := DefaultVCU()
	profs := m.Profiles(0, time.Minute)
	if len(profs) != 4 {
		t.Fatalf("profiles = %d", len(profs))
	}
	for _, p := range profs {
		if p.Name == "" || p.Kind == "" || p.Tier != "1stHEP" {
			t.Fatalf("bad profile %+v", p)
		}
		if len(p.Throughput) == 0 {
			t.Fatalf("profile %s has no throughput", p.Name)
		}
	}
}

func TestTransferTime(t *testing.T) {
	m, _ := DefaultVCU()
	cpu, _ := m.Device(hardware.DeviceI76700)
	gpu, _ := m.Device(hardware.DeviceTX2MaxP)
	if got := TransferTime(cpu, cpu, 1e6); got != 0 {
		t.Fatalf("same-device transfer = %v, want 0", got)
	}
	if got := TransferTime(cpu, gpu, 0); got != 0 {
		t.Fatalf("zero-byte transfer = %v, want 0", got)
	}
	got := TransferTime(cpu, gpu, 8e6) // 8 MB over 8 GB/s = 1ms + 20us
	want := 20*time.Microsecond + time.Millisecond
	if got != want {
		t.Fatalf("transfer = %v, want %v", got, want)
	}
	if TransferTime(nil, gpu, 1) != 0 || TransferTime(cpu, nil, 1) != 0 {
		t.Fatal("nil device transfer != 0")
	}
}

func TestSecondLevelSlowerIO(t *testing.T) {
	m, _ := DefaultVCU()
	phone, _ := hardware.Lookup(hardware.DevicePhone)
	if err := m.AddDevice(phone, SecondLevel, WiFiIO()); err != nil {
		t.Fatal(err)
	}
	cpu, _ := m.Device(hardware.DeviceI76700)
	ph, _ := m.Device(hardware.DevicePhone)
	gpu, _ := m.Device(hardware.DeviceTX2MaxP)
	onboard := TransferTime(cpu, gpu, 1e6)
	wireless := TransferTime(cpu, ph, 1e6)
	if wireless <= onboard {
		t.Fatalf("wireless transfer (%v) not slower than PCIe (%v)", wireless, onboard)
	}
}

func TestTierString(t *testing.T) {
	if FirstLevel.String() != "1stHEP" || SecondLevel.String() != "2ndHEP" {
		t.Fatal("tier names wrong")
	}
	if Tier(9).String() != "tier(9)" {
		t.Fatal("unknown tier name wrong")
	}
}

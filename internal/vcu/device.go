// Package vcu implements OpenVDAP's Heterogeneous Vehicle Computing Unit
// (paper §IV-B): the multi-level heterogeneous computing platform (mHEP)
// that manages on-board and opportunistic processors, and the Dynamic
// Scheduling Framework (DSF) that partitions applications into task DAGs
// and places them on the best-fit devices.
package vcu

import (
	"fmt"
	"time"

	"repro/internal/hardware"
)

// Tier distinguishes the two mHEP levels.
type Tier int

const (
	// FirstLevel (1stHEP) is the permanently installed VCU hardware.
	FirstLevel Tier = iota + 1
	// SecondLevel (2ndHEP) is opportunistic hardware: passenger phones,
	// the legacy on-board controller — devices that join and leave.
	SecondLevel
)

// String returns the paper's tier name.
func (t Tier) String() string {
	switch t {
	case FirstLevel:
		return "1stHEP"
	case SecondLevel:
		return "2ndHEP"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// IO describes how data reaches a device: on-board parts ride the PCIe
// fabric; 2ndHEP devices are behind a wireless hop.
type IO struct {
	// MBps is the transfer bandwidth to/from the device.
	MBps float64
	// Latency is the fixed per-transfer setup cost.
	Latency time.Duration
}

// PCIeIO is the on-board interconnect (PCIe-class).
func PCIeIO() IO { return IO{MBps: 8000, Latency: 10 * time.Microsecond} }

// WiFiIO is the passenger-device hop.
func WiFiIO() IO { return IO{MBps: 15, Latency: 3 * time.Millisecond} }

// Device is one managed processor inside the mHEP.
type Device struct {
	exec   *hardware.Executor
	tier   Tier
	io     IO
	online bool
}

// NewDevice wraps a processor for mHEP management.
func NewDevice(p *hardware.Processor, tier Tier, io IO) (*Device, error) {
	exec, err := hardware.NewExecutor(p)
	if err != nil {
		return nil, err
	}
	if io.MBps <= 0 {
		return nil, fmt.Errorf("vcu: device %s needs positive IO bandwidth", p.Name)
	}
	return &Device{exec: exec, tier: tier, io: io, online: true}, nil
}

// Name returns the device name.
func (d *Device) Name() string { return d.exec.Processor().Name }

// Tier returns the mHEP level.
func (d *Device) Tier() Tier { return d.tier }

// Online reports whether the device is currently usable.
func (d *Device) Online() bool { return d.online }

// Processor exposes the underlying hardware description.
func (d *Device) Processor() *hardware.Processor { return d.exec.Processor() }

// Executor exposes the queueing model (used by DSF commit).
func (d *Device) Executor() *hardware.Executor { return d.exec }

// TransferTime returns the cost of moving sizeBytes between two devices.
// Same-device transfers are free; cross-device transfers pay both sides'
// latency and the slower side's bandwidth.
func TransferTime(from, to *Device, sizeBytes float64) time.Duration {
	if from == nil || to == nil || from == to || sizeBytes <= 0 {
		return 0
	}
	mbps := from.io.MBps
	if to.io.MBps < mbps {
		mbps = to.io.MBps
	}
	return from.io.Latency + to.io.Latency +
		time.Duration(sizeBytes/(mbps*1e6)*float64(time.Second))
}

// ResourceProfile is the periodic status snapshot DSF keeps per device
// (paper §IV-B2 "computing resources collection").
type ResourceProfile struct {
	Name          string             `json:"name"`
	Tier          string             `json:"tier"`
	Kind          string             `json:"kind"`
	Online        bool               `json:"online"`
	Slots         int                `json:"slots"`
	EarliestStart time.Duration      `json:"earliestStart"`
	Utilization   float64            `json:"utilization"`
	Throughput    map[string]float64 `json:"throughputGflops"`
	MaxPowerW     float64            `json:"maxPowerW"`
}

// Profile snapshots the device at virtual time now over the given horizon.
func (d *Device) Profile(now, horizon time.Duration) ResourceProfile {
	p := d.exec.Processor()
	tp := make(map[string]float64, len(p.Throughput))
	for c, v := range p.Throughput {
		tp[c.String()] = v
	}
	return ResourceProfile{
		Name:          p.Name,
		Tier:          d.tier.String(),
		Kind:          p.Kind.String(),
		Online:        d.online,
		Slots:         p.Slots,
		EarliestStart: d.exec.EarliestStart(now),
		Utilization:   d.exec.Utilization(horizon),
		Throughput:    tp,
		MaxPowerW:     p.MaxPowerW,
	}
}

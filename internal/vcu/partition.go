package vcu

import (
	"fmt"
	"time"

	"repro/internal/hardware"
	"repro/internal/tasks"
)

// This file implements DSF's task partitioner (paper §IV-B2: "DSF divides
// the original applications into some sub-tasks by fine-grained and tries
// to match the tasks with the computing resources"; §III-B: "dividing the
// complex task into small sub-tasks that could be simultaneously executed
// on multiple less power-saving processors").

// mergeGFLOPFraction is the reduction step's cost relative to the original
// task (combining shard outputs is cheap but not free).
const mergeGFLOPFraction = 0.02

// PartitionDataParallel splits a single task into `shards` independent
// shards plus a merge step that depends on all of them. Shard inputs and
// work divide evenly; the merge runs as General-class work.
func PartitionDataParallel(t *tasks.Task, shards int) (*tasks.DAG, error) {
	if t == nil {
		return nil, fmt.Errorf("vcu: nil task")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if shards < 1 {
		return nil, fmt.Errorf("vcu: shard count must be >= 1, got %d", shards)
	}
	if shards == 1 {
		cp := *t
		cp.Deps = append([]string(nil), t.Deps...)
		return &tasks.DAG{Name: t.ID, Tasks: []*tasks.Task{&cp}}, nil
	}
	dag := &tasks.DAG{Name: fmt.Sprintf("%s-x%d", t.ID, shards)}
	shardIDs := make([]string, 0, shards)
	for i := 0; i < shards; i++ {
		id := fmt.Sprintf("%s-shard-%d", t.ID, i)
		shardIDs = append(shardIDs, id)
		dag.Tasks = append(dag.Tasks, &tasks.Task{
			ID:          id,
			Name:        fmt.Sprintf("%s (shard %d/%d)", t.Name, i+1, shards),
			Class:       t.Class,
			GFLOP:       t.GFLOP / float64(shards),
			InputBytes:  t.InputBytes / float64(shards),
			OutputBytes: t.OutputBytes, // each shard emits a partial result
			MemoryMB:    t.MemoryMB / float64(shards),
		})
	}
	dag.Tasks = append(dag.Tasks, &tasks.Task{
		ID:          t.ID + "-merge",
		Name:        t.Name + " (merge)",
		Class:       hardware.General,
		GFLOP:       t.GFLOP * mergeGFLOPFraction,
		InputBytes:  t.OutputBytes * float64(shards),
		OutputBytes: t.OutputBytes,
		MemoryMB:    64,
		Deps:        shardIDs,
	})
	if err := dag.Validate(); err != nil {
		return nil, fmt.Errorf("vcu: partitioned DAG invalid: %w", err)
	}
	return dag, nil
}

// PartitionChoice is one evaluated shard count.
type PartitionChoice struct {
	Shards   int
	Makespan time.Duration
	EnergyJ  float64
}

// AutoPartition evaluates shard counts 1..maxShards for a task against the
// scheduler's current state and returns the plan with the smallest
// makespan, its DAG, and the full comparison. Nothing is committed.
func (s *DSF) AutoPartition(t *tasks.Task, maxShards int, now time.Duration) (*Plan, *tasks.DAG, []PartitionChoice, error) {
	if maxShards < 1 {
		return nil, nil, nil, fmt.Errorf("vcu: maxShards must be >= 1, got %d", maxShards)
	}
	var (
		bestPlan *Plan
		bestDAG  *tasks.DAG
		choices  []PartitionChoice
	)
	for shards := 1; shards <= maxShards; shards++ {
		dag, err := PartitionDataParallel(t, shards)
		if err != nil {
			return nil, nil, nil, err
		}
		plan, err := s.Plan(dag, now)
		if err != nil {
			// A shard count that cannot be placed (e.g. memory) is simply
			// not a candidate.
			continue
		}
		choices = append(choices, PartitionChoice{
			Shards:   shards,
			Makespan: plan.Makespan,
			EnergyJ:  plan.EnergyJ,
		})
		if bestPlan == nil || plan.Makespan < bestPlan.Makespan {
			bestPlan, bestDAG = plan, dag
		}
	}
	if bestPlan == nil {
		return nil, nil, nil, &UnplaceableError{DAG: t.ID, Task: t.ID}
	}
	return bestPlan, bestDAG, choices, nil
}

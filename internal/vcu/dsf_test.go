package vcu

import (
	"errors"
	"testing"
	"time"

	"repro/internal/hardware"
	"repro/internal/tasks"
)

func newDSF(t *testing.T, p Policy) *DSF {
	t.Helper()
	m, err := DefaultVCU()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewDSF(m, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewDSFValidation(t *testing.T) {
	m, _ := DefaultVCU()
	if _, err := NewDSF(nil, GreedyEFT{}); err == nil {
		t.Fatal("nil mHEP accepted")
	}
	if _, err := NewDSF(m, nil); err == nil {
		t.Fatal("nil policy accepted")
	}
	s, _ := NewDSF(m, GreedyEFT{})
	if err := s.SetPolicy(nil); err == nil {
		t.Fatal("SetPolicy(nil) accepted")
	}
	if err := s.SetPolicy(HEFT{}); err != nil || s.Policy().Name() != "heft" {
		t.Fatal("SetPolicy failed")
	}
}

func TestAllPoliciesPlanALPR(t *testing.T) {
	for _, policy := range Policies() {
		s := newDSF(t, policy)
		plan, err := s.Plan(tasks.ALPR(), 0)
		if err != nil {
			t.Fatalf("%s: %v", policy.Name(), err)
		}
		if len(plan.Assignments) != 3 {
			t.Fatalf("%s: %d assignments, want 3", policy.Name(), len(plan.Assignments))
		}
		if plan.Makespan <= 0 {
			t.Fatalf("%s: non-positive makespan %v", policy.Name(), plan.Makespan)
		}
		if plan.EnergyJ <= 0 {
			t.Fatalf("%s: non-positive energy %v", policy.Name(), plan.EnergyJ)
		}
		// Dependencies must be respected in time.
		md, _ := plan.Assignment("motion-detect")
		pd, _ := plan.Assignment("plate-detect")
		pr, _ := plan.Assignment("plate-recognize")
		if pd.Start < md.Finish || pr.Start < pd.Finish {
			t.Fatalf("%s: dependency times violated: %+v", policy.Name(), plan.Assignments)
		}
	}
}

func TestPlanDoesNotTouchExecutors(t *testing.T) {
	s := newDSF(t, GreedyEFT{})
	if _, err := s.Plan(tasks.ALPR(), 0); err != nil {
		t.Fatal(err)
	}
	for _, d := range s.MHEP().Devices() {
		if d.Executor().Completed() != 0 {
			t.Fatalf("planning submitted work to %s", d.Name())
		}
	}
}

func TestCommitReservesDeviceTime(t *testing.T) {
	s := newDSF(t, GreedyEFT{})
	committed, err := s.Run(tasks.ALPR(), 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, d := range s.MHEP().Devices() {
		total += d.Executor().Completed()
	}
	if total != 3 {
		t.Fatalf("executors saw %d submissions, want 3", total)
	}
	if len(s.History()) != 1 {
		t.Fatalf("history = %d entries", len(s.History()))
	}
	if committed.Makespan <= 0 {
		t.Fatal("committed makespan not positive")
	}
}

func TestBackToBackRunsQueue(t *testing.T) {
	s := newDSF(t, GreedyEFT{})
	p1, err := s.Run(tasks.PedestrianAlert(), 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Run(tasks.PedestrianAlert(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := p1.Assignment("ped-detect")
	a2, _ := p2.Assignment("ped-detect")
	if a1.Device == a2.Device && a2.Start < a1.Finish {
		t.Fatalf("second run overlapped first on %s", a1.Device)
	}
}

func TestGreedyEFTBeatsRoundRobinOnContention(t *testing.T) {
	// Submit many DNN-heavy DAGs; EFT should spread and finish sooner.
	run := func(p Policy) time.Duration {
		s := newDSF(t, p)
		var last time.Duration
		for i := 0; i < 8; i++ {
			plan, err := s.Run(tasks.PedestrianAlert(), 0)
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			for _, a := range plan.Assignments {
				if a.Finish > last {
					last = a.Finish
				}
			}
		}
		return last
	}
	eft := run(GreedyEFT{})
	rr := run(RoundRobin{})
	if eft > rr {
		t.Fatalf("greedy EFT (%v) slower than round robin (%v)", eft, rr)
	}
}

func TestHEFTAtLeastMatchesGreedyOnALPR(t *testing.T) {
	eft := newDSF(t, GreedyEFT{})
	heft := newDSF(t, HEFT{})
	pe, err := eft.Plan(tasks.ALPR(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := heft.Plan(tasks.ALPR(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Makespan > pe.Makespan*11/10 {
		t.Fatalf("HEFT makespan %v much worse than greedy %v", ph.Makespan, pe.Makespan)
	}
}

func TestPowerAwareSavesEnergy(t *testing.T) {
	eft := newDSF(t, GreedyEFT{})
	power := newDSF(t, PowerAware{Slack: 3})
	pe, err := eft.Plan(tasks.PedestrianAlert(), 0)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := power.Plan(tasks.PedestrianAlert(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if pp.EnergyJ > pe.EnergyJ {
		t.Fatalf("power-aware used more energy (%v J) than EFT (%v J)", pp.EnergyJ, pe.EnergyJ)
	}
	if pp.Makespan > 3*pe.Makespan {
		t.Fatalf("power-aware exceeded its slack: %v vs %v", pp.Makespan, pe.Makespan)
	}
}

func TestPowerAwareInvalidSlack(t *testing.T) {
	s := newDSF(t, PowerAware{Slack: 0.5})
	if _, err := s.Plan(tasks.ALPR(), 0); err == nil {
		t.Fatal("slack < 1 accepted")
	}
}

func TestPinnedTaskHonored(t *testing.T) {
	s := newDSF(t, GreedyEFT{})
	dag := tasks.ALPR()
	dag.Tasks[0].Pinned = hardware.DeviceVCUFPGA
	plan, err := s.Plan(dag, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := plan.Assignment("motion-detect")
	if a.Device != hardware.DeviceVCUFPGA {
		t.Fatalf("pinned task ran on %s", a.Device)
	}
}

func TestUnplaceableTask(t *testing.T) {
	s := newDSF(t, GreedyEFT{})
	dag := &tasks.DAG{Name: "impossible", Tasks: []*tasks.Task{{
		ID: "x", Class: hardware.DNNTraining, GFLOP: 1, MemoryMB: 1 << 30,
	}}}
	_, err := s.Plan(dag, 0)
	var ue *UnplaceableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UnplaceableError", err)
	}
}

func TestOfflineDeviceNotScheduled(t *testing.T) {
	s := newDSF(t, GreedyEFT{})
	// The ASIC is the best DNN device; take it offline and ensure the
	// plan avoids it.
	if err := s.MHEP().SetOnline(hardware.DeviceVCUASIC, false); err != nil {
		t.Fatal(err)
	}
	plan, err := s.Plan(tasks.PedestrianAlert(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plan.Assignments {
		if a.Device == hardware.DeviceVCUASIC {
			t.Fatal("offline device scheduled")
		}
	}
}

func TestRestrictApp(t *testing.T) {
	s := newDSF(t, GreedyEFT{})
	s.RestrictApp("alpr", []string{hardware.DeviceI76700})
	plan, err := s.Plan(tasks.ALPR(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plan.Assignments {
		if a.Device != hardware.DeviceI76700 {
			t.Fatalf("restricted app escaped to %s", a.Device)
		}
	}
	// Unrestricted app unaffected.
	plan2, err := s.Plan(tasks.PedestrianAlert(), 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, a := range plan2.Assignments {
		seen[a.Device] = true
	}
	// Clearing the restriction restores full platform access.
	s.RestrictApp("alpr", nil)
	plan3, err := s.Plan(tasks.ALPR(), 0)
	if err != nil {
		t.Fatal(err)
	}
	free := false
	for _, a := range plan3.Assignments {
		if a.Device != hardware.DeviceI76700 {
			free = true
		}
	}
	if !free {
		t.Log("note: unrestricted plan still chose the CPU for all stages (allowed)")
	}
}

func TestRestrictAppToNothingFails(t *testing.T) {
	s := newDSF(t, GreedyEFT{})
	s.RestrictApp("alpr", []string{"ghost-device"})
	if _, err := s.Plan(tasks.ALPR(), 0); err == nil {
		t.Fatal("plan with empty allowed set succeeded")
	}
}

func TestSecondLevelDeviceRelievesLoad(t *testing.T) {
	// With the GPU/ASIC saturated, adding a phone should absorb some DNN
	// work or at least not slow things down.
	base := newDSF(t, GreedyEFT{})
	with2nd := newDSF(t, GreedyEFT{})
	phone, _ := hardware.Lookup(hardware.DevicePhone)
	if err := with2nd.MHEP().AddDevice(phone, SecondLevel, WiFiIO()); err != nil {
		t.Fatal(err)
	}
	runAll := func(s *DSF) time.Duration {
		var last time.Duration
		for i := 0; i < 12; i++ {
			plan, err := s.Run(tasks.PedestrianAlert(), 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range plan.Assignments {
				if a.Finish > last {
					last = a.Finish
				}
			}
		}
		return last
	}
	tBase := runAll(base)
	tWith := runAll(with2nd)
	if tWith > tBase {
		t.Fatalf("adding a 2ndHEP device slowed completion: %v -> %v", tBase, tWith)
	}
}

func TestCommitValidation(t *testing.T) {
	s := newDSF(t, GreedyEFT{})
	if _, err := s.Commit(tasks.ALPR(), nil); err == nil {
		t.Fatal("nil plan accepted")
	}
	// Plan referencing a task not in the DAG.
	bad := &Plan{DAG: "alpr", Assignments: []Assignment{{TaskID: "ghost", Device: hardware.DeviceI76700}}}
	if _, err := s.Commit(tasks.ALPR(), bad); err == nil {
		t.Fatal("plan with unknown task accepted")
	}
	// Plan referencing an unknown device.
	bad2 := &Plan{DAG: "alpr", Assignments: []Assignment{{TaskID: "motion-detect", Device: "ghost"}}}
	if _, err := s.Commit(tasks.ALPR(), bad2); err == nil {
		t.Fatal("plan with unknown device accepted")
	}
}

func TestPlanNilDAG(t *testing.T) {
	s := newDSF(t, GreedyEFT{})
	if _, err := s.Plan(nil, 0); err == nil {
		t.Fatal("nil DAG accepted")
	}
}

// TestSensorFusionRunsBranchesInParallel: the two perception branches of
// the fusion DAG overlap in time on a heterogeneous platform.
func TestSensorFusionRunsBranchesInParallel(t *testing.T) {
	s := newDSF(t, GreedyEFT{})
	plan, err := s.Plan(tasks.SensorFusion(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cam, _ := plan.Assignment("camera-detect")
	lid, _ := plan.Assignment("lidar-cluster")
	overlap := cam.Start < lid.Finish && lid.Start < cam.Finish
	if !overlap {
		t.Fatalf("branches serialized: camera [%v,%v] lidar [%v,%v]",
			cam.Start, cam.Finish, lid.Start, lid.Finish)
	}
	fuse, _ := plan.Assignment("fuse")
	if fuse.Start < cam.Finish || fuse.Start < lid.Finish {
		t.Fatal("fusion started before both branches finished")
	}
}

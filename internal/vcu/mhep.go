package vcu

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/hardware"
)

// MHEP is the multi-level heterogeneous computing platform: the registry
// of devices DSF schedules onto. 1stHEP devices are installed at build
// time; 2ndHEP devices join and leave dynamically (plug-and-play phones,
// the legacy controller).
type MHEP struct {
	devices map[string]*Device
	storage *hardware.Storage
}

// NewMHEP returns an empty platform with the default VCU SSD attached.
func NewMHEP() *MHEP {
	return &MHEP{devices: make(map[string]*Device), storage: hardware.DefaultSSD()}
}

// DefaultVCU builds the paper's reference on-board configuration: an i7
// CPU, a TX2-class GPU, the FPGA fabric, and the DNN ASIC on the PCIe
// interconnect as 1stHEP.
func DefaultVCU() (*MHEP, error) {
	m := NewMHEP()
	for _, name := range []string{
		hardware.DeviceI76700,
		hardware.DeviceTX2MaxP,
		hardware.DeviceVCUFPGA,
		hardware.DeviceVCUASIC,
	} {
		p, err := hardware.Lookup(name)
		if err != nil {
			return nil, err
		}
		if err := m.AddDevice(p, FirstLevel, PCIeIO()); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Storage returns the VCU's SSD model.
func (m *MHEP) Storage() *hardware.Storage { return m.storage }

// AddDevice registers a processor. Names must be unique.
func (m *MHEP) AddDevice(p *hardware.Processor, tier Tier, io IO) error {
	if p == nil {
		return fmt.Errorf("vcu: nil processor")
	}
	if _, exists := m.devices[p.Name]; exists {
		return fmt.Errorf("vcu: device %q already registered", p.Name)
	}
	d, err := NewDevice(p, tier, io)
	if err != nil {
		return err
	}
	m.devices[p.Name] = d
	return nil
}

// RemoveDevice unplugs a 2ndHEP device. 1stHEP devices are installed
// hardware and cannot be removed.
func (m *MHEP) RemoveDevice(name string) error {
	d, ok := m.devices[name]
	if !ok {
		return fmt.Errorf("vcu: unknown device %q", name)
	}
	if d.tier == FirstLevel {
		return fmt.Errorf("vcu: device %q is 1stHEP hardware and cannot be removed", name)
	}
	delete(m.devices, name)
	return nil
}

// SetOnline marks a device reachable or unreachable (e.g. a phone whose
// owner started a call; a device in a fault state).
func (m *MHEP) SetOnline(name string, online bool) error {
	d, ok := m.devices[name]
	if !ok {
		return fmt.Errorf("vcu: unknown device %q", name)
	}
	d.online = online
	return nil
}

// Device returns the named device.
func (m *MHEP) Device(name string) (*Device, error) {
	d, ok := m.devices[name]
	if !ok {
		return nil, fmt.Errorf("vcu: unknown device %q", name)
	}
	return d, nil
}

// Devices returns all registered devices sorted by name (stable iteration
// keeps scheduling deterministic).
func (m *MHEP) Devices() []*Device {
	out := make([]*Device, 0, len(m.devices))
	for _, d := range m.devices {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// OnlineDevices returns the devices currently available for scheduling.
func (m *MHEP) OnlineDevices() []*Device {
	var out []*Device
	for _, d := range m.Devices() {
		if d.online {
			out = append(out, d)
		}
	}
	return out
}

// Profiles snapshots every device (DSF's periodic resource collection).
func (m *MHEP) Profiles(now, horizon time.Duration) []ResourceProfile {
	devs := m.Devices()
	out := make([]ResourceProfile, 0, len(devs))
	for _, d := range devs {
		out = append(out, d.Profile(now, horizon))
	}
	return out
}

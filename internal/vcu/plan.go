package vcu

import (
	"fmt"
	"time"

	"repro/internal/tasks"
)

// Assignment places one task on one device at a planned time.
type Assignment struct {
	TaskID string
	Device string
	// Start and Finish are absolute virtual times.
	Start  time.Duration
	Finish time.Duration
	// TransferWait is time spent waiting on cross-device input movement.
	TransferWait time.Duration
	// EnergyJ is the active energy this task costs on its device.
	EnergyJ float64
}

// Plan is a complete placement of a DAG.
type Plan struct {
	DAG         string
	Policy      string
	Assignments []Assignment
	// Makespan is finish of the last task minus planning time.
	Makespan time.Duration
	// EnergyJ is the summed active energy across assignments.
	EnergyJ float64
}

// Assignment returns the placement for a task ID.
func (p *Plan) Assignment(taskID string) (Assignment, bool) {
	for _, a := range p.Assignments {
		if a.TaskID == taskID {
			return a, true
		}
	}
	return Assignment{}, false
}

// planner tracks tentative device occupancy while a policy builds a plan,
// leaving the real executors untouched until Commit.
type planner struct {
	now      time.Duration
	devices  []*Device
	byName   map[string]*Device
	slotFree map[string][]time.Duration
	finished map[string]Assignment // taskID -> placed assignment
}

func newPlanner(devices []*Device, now time.Duration) *planner {
	p := &planner{
		now:      now,
		devices:  devices,
		byName:   make(map[string]*Device, len(devices)),
		slotFree: make(map[string][]time.Duration, len(devices)),
		finished: make(map[string]Assignment),
	}
	for _, d := range devices {
		p.byName[d.Name()] = d
		slots := d.Processor().Slots
		free := make([]time.Duration, slots)
		for i := range free {
			free[i] = d.Executor().EarliestStart(now)
		}
		p.slotFree[d.Name()] = free
	}
	return p
}

// capable reports whether dev can run t at all.
func capable(dev *Device, t *tasks.Task) bool {
	if !dev.Online() {
		return false
	}
	if t.Pinned != "" && t.Pinned != dev.Name() {
		return false
	}
	proc := dev.Processor()
	if !proc.CanRun(t.Class) {
		return false
	}
	return proc.MemoryMB >= t.MemoryMB
}

// candidates returns the devices that can run t.
func (p *planner) candidates(t *tasks.Task) []*Device {
	var out []*Device
	for _, d := range p.devices {
		if capable(d, t) {
			out = append(out, d)
		}
	}
	return out
}

// tryPlace computes (without committing) when t would start and finish on
// dev, given already-placed dependencies.
func (p *planner) tryPlace(dag *tasks.DAG, t *tasks.Task, dev *Device) (start, finish, transferWait time.Duration, err error) {
	exec, err := dev.Processor().ExecTime(t.Class, t.GFLOP)
	if err != nil {
		return 0, 0, 0, err
	}
	ready := p.now
	for _, depID := range t.Deps {
		dep, ok := p.finished[depID]
		if !ok {
			return 0, 0, 0, fmt.Errorf("vcu: dependency %s of %s not yet placed", depID, t.ID)
		}
		depTask, _ := dag.Get(depID)
		depDev := p.byName[dep.Device]
		arrive := dep.Finish + TransferTime(depDev, dev, depTask.OutputBytes)
		if arrive > ready {
			ready = arrive
		}
	}
	slot := earliestSlot(p.slotFree[dev.Name()])
	start = p.slotFree[dev.Name()][slot]
	if ready > start {
		transferWait = 0
		start = ready
	}
	if start < p.now {
		start = p.now
	}
	// TransferWait is the portion of waiting attributable to data arrival
	// beyond device availability.
	if avail := p.slotFree[dev.Name()][slot]; ready > avail {
		transferWait = ready - maxDuration(avail, p.now)
		if transferWait < 0 {
			transferWait = 0
		}
	}
	return start, start + exec, transferWait, nil
}

// place commits t to dev inside the tentative plan.
func (p *planner) place(dag *tasks.DAG, t *tasks.Task, dev *Device) (Assignment, error) {
	start, finish, wait, err := p.tryPlace(dag, t, dev)
	if err != nil {
		return Assignment{}, err
	}
	slot := earliestSlot(p.slotFree[dev.Name()])
	p.slotFree[dev.Name()][slot] = finish
	a := Assignment{
		TaskID:       t.ID,
		Device:       dev.Name(),
		Start:        start,
		Finish:       finish,
		TransferWait: wait,
		EnergyJ:      dev.Processor().EnergyJ(finish - start),
	}
	p.finished[t.ID] = a
	return a, nil
}

func earliestSlot(free []time.Duration) int {
	best := 0
	for i := 1; i < len(free); i++ {
		if free[i] < free[best] {
			best = i
		}
	}
	return best
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// finishPlan assembles plan-level statistics.
func finishPlan(dagName, policy string, now time.Duration, assignments []Assignment) *Plan {
	plan := &Plan{DAG: dagName, Policy: policy, Assignments: assignments}
	var last time.Duration
	for _, a := range assignments {
		if a.Finish > last {
			last = a.Finish
		}
		plan.EnergyJ += a.EnergyJ
	}
	if last > now {
		plan.Makespan = last - now
	}
	return plan
}

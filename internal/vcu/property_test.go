package vcu

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/tasks"
)

// Property tests: every policy, on randomized DAGs, must produce plans
// that (a) place every task exactly once on a capable online device,
// (b) respect dependency ordering in time, (c) never overlap two tasks in
// the same device slot beyond its concurrency, and (d) commit to the same
// dependency-safe ordering.

func checkPlanInvariants(t *testing.T, dag *tasks.DAG, plan *Plan, m *MHEP) {
	t.Helper()
	if len(plan.Assignments) != len(dag.Tasks) {
		t.Fatalf("plan has %d assignments for %d tasks", len(plan.Assignments), len(dag.Tasks))
	}
	seen := map[string]Assignment{}
	for _, a := range plan.Assignments {
		if _, dup := seen[a.TaskID]; dup {
			t.Fatalf("task %s placed twice", a.TaskID)
		}
		seen[a.TaskID] = a
		task, ok := dag.Get(a.TaskID)
		if !ok {
			t.Fatalf("assignment for unknown task %s", a.TaskID)
		}
		dev, err := m.Device(a.Device)
		if err != nil {
			t.Fatalf("assignment to unknown device %s", a.Device)
		}
		if !capable(dev, task) {
			t.Fatalf("task %s placed on incapable device %s", a.TaskID, a.Device)
		}
		if a.Finish < a.Start {
			t.Fatalf("task %s finishes before it starts", a.TaskID)
		}
	}
	// Dependencies respected.
	for _, task := range dag.Tasks {
		a := seen[task.ID]
		for _, dep := range task.Deps {
			if seen[dep].Finish > a.Start {
				t.Fatalf("task %s starts at %v before dep %s finishes at %v",
					task.ID, a.Start, dep, seen[dep].Finish)
			}
		}
	}
	// Slot capacity: at any assignment boundary, concurrent tasks on a
	// device never exceed its slots.
	byDevice := map[string][]Assignment{}
	for _, a := range plan.Assignments {
		byDevice[a.Device] = append(byDevice[a.Device], a)
	}
	for devName, asgs := range byDevice {
		dev, _ := m.Device(devName)
		slots := dev.Processor().Slots
		for _, probe := range asgs {
			overlapping := 0
			for _, other := range asgs {
				if other.Start <= probe.Start && probe.Start < other.Finish {
					overlapping++
				}
			}
			if overlapping > slots {
				t.Fatalf("device %s (%d slots) runs %d tasks at %v",
					devName, slots, overlapping, probe.Start)
			}
		}
	}
}

func TestPlanInvariantsOnRandomDAGs(t *testing.T) {
	rng := sim.NewRNG(99)
	for _, policy := range Policies() {
		policy := policy
		t.Run(policy.Name(), func(t *testing.T) {
			for trial := 0; trial < 25; trial++ {
				dag, err := tasks.RandomDAG(fmt.Sprintf("rand-%d", trial), tasks.RandomDAGConfig{}, rng.Fork())
				if err != nil {
					t.Fatal(err)
				}
				m, err := DefaultVCU()
				if err != nil {
					t.Fatal(err)
				}
				s, err := NewDSF(m, policy)
				if err != nil {
					t.Fatal(err)
				}
				plan, err := s.Plan(dag, time.Duration(trial)*time.Millisecond)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				checkPlanInvariants(t, dag, plan, m)
			}
		})
	}
}

func TestCommitRespectsDepsOnRandomDAGs(t *testing.T) {
	rng := sim.NewRNG(123)
	for trial := 0; trial < 20; trial++ {
		dag, err := tasks.RandomDAG(fmt.Sprintf("rand-%d", trial), tasks.RandomDAGConfig{}, rng.Fork())
		if err != nil {
			t.Fatal(err)
		}
		m, _ := DefaultVCU()
		s, _ := NewDSF(m, GreedyEFT{})
		committed, err := s.Run(dag, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		finish := map[string]time.Duration{}
		for _, a := range committed.Assignments {
			finish[a.TaskID] = a.Finish
		}
		for _, task := range dag.Tasks {
			a, ok := committed.Assignment(task.ID)
			if !ok {
				t.Fatalf("trial %d: task %s missing from committed plan", trial, task.ID)
			}
			for _, dep := range task.Deps {
				if finish[dep] > a.Start {
					t.Fatalf("trial %d: committed %s at %v before dep %s at %v",
						trial, task.ID, a.Start, dep, finish[dep])
				}
			}
		}
	}
}

// TestMakespanNeverBelowCriticalPathBound: no schedule can beat the
// critical path executed entirely on the fastest device for each class.
func TestMakespanNeverBelowCriticalPathBound(t *testing.T) {
	rng := sim.NewRNG(321)
	for trial := 0; trial < 15; trial++ {
		dag, err := tasks.RandomDAG(fmt.Sprintf("rand-%d", trial), tasks.RandomDAGConfig{}, rng.Fork())
		if err != nil {
			t.Fatal(err)
		}
		m, _ := DefaultVCU()
		s, _ := NewDSF(m, HEFT{})
		plan, err := s.Plan(dag, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Lower bound: for each task, its fastest exec anywhere; take the
		// max over dependency chains.
		fastest := map[string]time.Duration{}
		for _, task := range dag.Tasks {
			best := time.Duration(-1)
			for _, d := range m.Devices() {
				et, err := d.Processor().ExecTime(task.Class, task.GFLOP)
				if err != nil {
					continue
				}
				if best < 0 || et < best {
					best = et
				}
			}
			fastest[task.ID] = best
		}
		order, _ := dag.TopoOrder()
		chain := map[string]time.Duration{}
		var bound time.Duration
		for _, task := range order {
			var maxDep time.Duration
			for _, dep := range task.Deps {
				if chain[dep] > maxDep {
					maxDep = chain[dep]
				}
			}
			chain[task.ID] = maxDep + fastest[task.ID]
			if chain[task.ID] > bound {
				bound = chain[task.ID]
			}
		}
		if plan.Makespan < bound {
			t.Fatalf("trial %d: makespan %v beats physical lower bound %v", trial, plan.Makespan, bound)
		}
	}
}

func TestRandomDAGGeneratorValidity(t *testing.T) {
	rng := sim.NewRNG(555)
	for i := 0; i < 50; i++ {
		dag, err := tasks.RandomDAG("x", tasks.RandomDAGConfig{}, rng.Fork())
		if err != nil {
			t.Fatal(err)
		}
		if err := dag.Validate(); err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
	}
	if _, err := tasks.RandomDAG("x", tasks.RandomDAGConfig{}, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
	if _, err := tasks.RandomDAG("x", tasks.RandomDAGConfig{MinTasks: 5, MaxTasks: 2}, rng); err == nil {
		t.Fatal("bad bounds accepted")
	}
}

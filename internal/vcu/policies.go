package vcu

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/tasks"
)

// Policy chooses device placements for a DAG. Implementations must not
// mutate executors — they plan against tentative state only.
type Policy interface {
	// Name identifies the policy in reports and benchmarks.
	Name() string
	// Plan places every task of the DAG onto the given devices.
	Plan(dag *tasks.DAG, devices []*Device, now time.Duration) (*Plan, error)
}

// Policies returns every built-in policy, in ablation order.
func Policies() []Policy {
	return []Policy{RoundRobin{}, GreedyEFT{}, HEFT{}, PowerAware{Slack: 2}}
}

// RoundRobin is the naive baseline: capable devices take turns.
type RoundRobin struct{}

// Name implements Policy.
func (RoundRobin) Name() string { return "round-robin" }

// Plan implements Policy.
func (RoundRobin) Plan(dag *tasks.DAG, devices []*Device, now time.Duration) (*Plan, error) {
	order, err := validatePlanInput(dag, devices)
	if err != nil {
		return nil, err
	}
	p := newPlanner(devices, now)
	next := 0
	var assignments []Assignment
	for _, t := range order {
		cands := p.candidates(t)
		if len(cands) == 0 {
			return nil, &UnplaceableError{DAG: dag.Name, Task: t.ID}
		}
		dev := cands[next%len(cands)]
		next++
		a, err := p.place(dag, t, dev)
		if err != nil {
			return nil, err
		}
		assignments = append(assignments, a)
	}
	return finishPlan(dag.Name, RoundRobin{}.Name(), now, assignments), nil
}

// GreedyEFT places each ready task on the device with the earliest finish
// time — the locally optimal heuristic.
type GreedyEFT struct{}

// Name implements Policy.
func (GreedyEFT) Name() string { return "greedy-eft" }

// Plan implements Policy.
func (GreedyEFT) Plan(dag *tasks.DAG, devices []*Device, now time.Duration) (*Plan, error) {
	order, err := validatePlanInput(dag, devices)
	if err != nil {
		return nil, err
	}
	p := newPlanner(devices, now)
	var assignments []Assignment
	for _, t := range order {
		dev, err := bestEFT(p, dag, t)
		if err != nil {
			return nil, err
		}
		a, err := p.place(dag, t, dev)
		if err != nil {
			return nil, err
		}
		assignments = append(assignments, a)
	}
	return finishPlan(dag.Name, GreedyEFT{}.Name(), now, assignments), nil
}

// HEFT is Heterogeneous Earliest Finish Time: tasks ranked by upward rank
// (critical-path distance to the DAG exit using mean costs), then placed
// EFT-greedily in rank order.
type HEFT struct{}

// Name implements Policy.
func (HEFT) Name() string { return "heft" }

// Plan implements Policy.
func (HEFT) Plan(dag *tasks.DAG, devices []*Device, now time.Duration) (*Plan, error) {
	if _, err := validatePlanInput(dag, devices); err != nil {
		return nil, err
	}
	ranks, err := upwardRanks(dag, devices)
	if err != nil {
		return nil, err
	}
	// Order by decreasing rank; ties by declaration order for determinism.
	pos := make(map[string]int, len(dag.Tasks))
	for i, t := range dag.Tasks {
		pos[t.ID] = i
	}
	order := append([]*tasks.Task(nil), dag.Tasks...)
	sort.SliceStable(order, func(i, j int) bool {
		ri, rj := ranks[order[i].ID], ranks[order[j].ID]
		if ri != rj {
			return ri > rj
		}
		return pos[order[i].ID] < pos[order[j].ID]
	})
	p := newPlanner(devices, now)
	var assignments []Assignment
	for _, t := range order {
		dev, err := bestEFT(p, dag, t)
		if err != nil {
			return nil, err
		}
		a, err := p.place(dag, t, dev)
		if err != nil {
			return nil, err
		}
		assignments = append(assignments, a)
	}
	return finishPlan(dag.Name, HEFT{}.Name(), now, assignments), nil
}

// PowerAware minimizes task energy subject to not stretching the task's
// finish beyond Slack times its best achievable finish — the knob the
// paper's energy-vs-latency discussion motivates (§III-B).
type PowerAware struct {
	// Slack >= 1 bounds the acceptable latency stretch. Zero means 2.
	Slack float64
}

// Name implements Policy.
func (PowerAware) Name() string { return "power-aware" }

// Plan implements Policy.
func (pa PowerAware) Plan(dag *tasks.DAG, devices []*Device, now time.Duration) (*Plan, error) {
	slack := pa.Slack
	if slack == 0 {
		slack = 2
	}
	if slack < 1 {
		return nil, fmt.Errorf("vcu: power-aware slack %v must be >= 1", slack)
	}
	order, err := validatePlanInput(dag, devices)
	if err != nil {
		return nil, err
	}
	p := newPlanner(devices, now)
	var assignments []Assignment
	for _, t := range order {
		cands := p.candidates(t)
		if len(cands) == 0 {
			return nil, &UnplaceableError{DAG: dag.Name, Task: t.ID}
		}
		// First find the best achievable finish.
		var bestFinish time.Duration = -1
		for _, dev := range cands {
			_, finish, _, err := p.tryPlace(dag, t, dev)
			if err != nil {
				continue
			}
			if bestFinish < 0 || finish < bestFinish {
				bestFinish = finish
			}
		}
		if bestFinish < 0 {
			return nil, &UnplaceableError{DAG: dag.Name, Task: t.ID}
		}
		deadline := now + time.Duration(float64(bestFinish-now)*slack)
		// Then pick minimum energy among devices meeting the deadline.
		var chosen *Device
		var chosenEnergy float64
		var chosenFinish time.Duration
		for _, dev := range cands {
			start, finish, _, err := p.tryPlace(dag, t, dev)
			if err != nil {
				continue
			}
			if finish > deadline {
				continue
			}
			energy := dev.Processor().EnergyJ(finish - start)
			if chosen == nil || energy < chosenEnergy ||
				(energy == chosenEnergy && finish < chosenFinish) {
				chosen, chosenEnergy, chosenFinish = dev, energy, finish
			}
		}
		if chosen == nil {
			return nil, &UnplaceableError{DAG: dag.Name, Task: t.ID}
		}
		a, err := p.place(dag, t, chosen)
		if err != nil {
			return nil, err
		}
		assignments = append(assignments, a)
	}
	return finishPlan(dag.Name, pa.Name(), now, assignments), nil
}

// UnplaceableError reports a task no online device can run.
type UnplaceableError struct {
	DAG  string
	Task string
}

// Error implements error.
func (e *UnplaceableError) Error() string {
	return fmt.Sprintf("vcu: no capable device for task %s of DAG %s", e.Task, e.DAG)
}

func validatePlanInput(dag *tasks.DAG, devices []*Device) ([]*tasks.Task, error) {
	if dag == nil {
		return nil, fmt.Errorf("vcu: nil DAG")
	}
	if err := dag.Validate(); err != nil {
		return nil, err
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("vcu: no devices to schedule onto")
	}
	return dag.TopoOrder()
}

// bestEFT returns the capable device with the earliest finish for t.
func bestEFT(p *planner, dag *tasks.DAG, t *tasks.Task) (*Device, error) {
	cands := p.candidates(t)
	if len(cands) == 0 {
		return nil, &UnplaceableError{DAG: dag.Name, Task: t.ID}
	}
	var best *Device
	var bestFinish time.Duration
	for _, dev := range cands {
		_, finish, _, err := p.tryPlace(dag, t, dev)
		if err != nil {
			continue
		}
		if best == nil || finish < bestFinish {
			best, bestFinish = dev, finish
		}
	}
	if best == nil {
		return nil, &UnplaceableError{DAG: dag.Name, Task: t.ID}
	}
	return best, nil
}

// upwardRanks computes HEFT ranks with mean execution and transfer costs.
func upwardRanks(dag *tasks.DAG, devices []*Device) (map[string]float64, error) {
	meanExec := func(t *tasks.Task) (float64, error) {
		var sum float64
		n := 0
		for _, d := range devices {
			if !capable(d, t) {
				continue
			}
			et, err := d.Processor().ExecTime(t.Class, t.GFLOP)
			if err != nil {
				continue
			}
			sum += et.Seconds()
			n++
		}
		if n == 0 {
			return 0, &UnplaceableError{DAG: dag.Name, Task: t.ID}
		}
		return sum / float64(n), nil
	}
	meanTransfer := func(t *tasks.Task) float64 {
		if len(devices) < 2 {
			return 0
		}
		// Mean pairwise transfer of t's output across distinct devices.
		var sum float64
		n := 0
		for i, a := range devices {
			for j, b := range devices {
				if i == j {
					continue
				}
				sum += TransferTime(a, b, t.OutputBytes).Seconds()
				n++
			}
		}
		return sum / float64(n)
	}

	order, err := dag.TopoOrder()
	if err != nil {
		return nil, err
	}
	ranks := make(map[string]float64, len(order))
	// Walk in reverse topological order so successors are ranked first.
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		w, err := meanExec(t)
		if err != nil {
			return nil, err
		}
		var maxSucc float64
		for _, succID := range dag.Successors(t.ID) {
			if v := meanTransfer(t) + ranks[succID]; v > maxSucc {
				maxSucc = v
			}
		}
		ranks[t.ID] = w + maxSucc
	}
	return ranks, nil
}

package vcu

import (
	"fmt"
	"time"

	"repro/internal/tasks"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// DSF is the Dynamic Scheduling Framework (paper §IV-B2): it keeps resource
// and application profiles, partitions applications into task DAGs (the
// DAGs arrive pre-partitioned from package tasks), plans placements with a
// pluggable policy, and commits plans onto the real device executors.
type DSF struct {
	mhep   *MHEP
	policy Policy
	// restrict, when non-empty for an app, is the DSF control knob that
	// limits which devices the app may touch (resource isolation).
	restrict map[string]map[string]bool
	history  []*Plan

	tracer  *trace.Tracer
	metrics *telemetry.Registry
	m       dsfMetrics
}

// dsfMetrics holds the DSF's interned metric handles, resolved once in
// Instrument. All handles are nil-safe, so an uninstrumented DSF emits
// through them for free.
type dsfMetrics struct {
	plans          *telemetry.Counter
	planMakespan   *telemetry.HistogramHandle
	tasksCommitted *telemetry.Counter
	queueWait      *telemetry.HistogramHandle
	taskExec       *telemetry.HistogramHandle
	commits        *telemetry.Counter
	makespan       *telemetry.HistogramHandle
	energy         *telemetry.Counter
	deviceTasks    map[string]*telemetry.Counter // per-device, interned lazily
}

// Instrument attaches a tracer and metrics registry (either may be nil).
// Planning and committing then emit `vcu` spans and `vcu.*` metrics.
func (s *DSF) Instrument(tr *trace.Tracer, reg *telemetry.Registry) {
	s.tracer = tr
	s.metrics = reg
	s.m = dsfMetrics{
		plans:          reg.CounterHandle("vcu.plans"),
		planMakespan:   reg.HistogramHandle("vcu.plan_makespan_ms"),
		tasksCommitted: reg.CounterHandle("vcu.tasks_committed"),
		queueWait:      reg.HistogramHandle("vcu.queue_wait_ms"),
		taskExec:       reg.HistogramHandle("vcu.task_exec_ms"),
		commits:        reg.CounterHandle("vcu.commits"),
		makespan:       reg.HistogramHandle("vcu.makespan_ms"),
		energy:         reg.CounterHandle("vcu.energy_j"),
		deviceTasks:    make(map[string]*telemetry.Counter),
	}
}

// deviceTaskCounter interns the per-device commit counter on first use.
func (s *DSF) deviceTaskCounter(name string) *telemetry.Counter {
	if s.metrics == nil {
		return nil
	}
	c, ok := s.m.deviceTasks[name]
	if !ok {
		c = s.metrics.CounterHandle("vcu.device." + name + ".tasks")
		s.m.deviceTasks[name] = c
	}
	return c
}

// NewDSF builds a scheduler over the platform with the given policy.
func NewDSF(m *MHEP, policy Policy) (*DSF, error) {
	if m == nil {
		return nil, fmt.Errorf("vcu: nil mHEP")
	}
	if policy == nil {
		return nil, fmt.Errorf("vcu: nil policy")
	}
	return &DSF{mhep: m, policy: policy, restrict: make(map[string]map[string]bool)}, nil
}

// SetPolicy swaps the scheduling policy at runtime.
func (s *DSF) SetPolicy(p Policy) error {
	if p == nil {
		return fmt.Errorf("vcu: nil policy")
	}
	s.policy = p
	return nil
}

// Policy returns the active policy.
func (s *DSF) Policy() Policy { return s.policy }

// MHEP returns the managed platform.
func (s *DSF) MHEP() *MHEP { return s.mhep }

// RestrictApp limits the named application to the given devices — the
// control-knob isolation the paper describes ("resources accessed by
// applications are tightly controlled by DSF"). An empty device list
// removes the restriction.
func (s *DSF) RestrictApp(app string, deviceNames []string) {
	if len(deviceNames) == 0 {
		delete(s.restrict, app)
		return
	}
	set := make(map[string]bool, len(deviceNames))
	for _, n := range deviceNames {
		set[n] = true
	}
	s.restrict[app] = set
}

// allowedDevices applies the app restriction to the online device set.
func (s *DSF) allowedDevices(app string) []*Device {
	online := s.mhep.OnlineDevices()
	allowed, restricted := s.restrict[app]
	if !restricted {
		return online
	}
	var out []*Device
	for _, d := range online {
		if allowed[d.Name()] {
			out = append(out, d)
		}
	}
	return out
}

// Plan produces a tentative placement for the DAG at virtual time now
// without touching device queues.
func (s *DSF) Plan(dag *tasks.DAG, now time.Duration) (*Plan, error) {
	if dag == nil {
		return nil, fmt.Errorf("vcu: nil DAG")
	}
	devices := s.allowedDevices(dag.Name)
	if len(devices) == 0 {
		return nil, fmt.Errorf("vcu: no online devices available to app %s", dag.Name)
	}
	plan, err := s.policy.Plan(dag, devices, now)
	if err != nil {
		return nil, err
	}
	s.m.plans.Inc()
	s.m.planMakespan.ObserveDuration(plan.Makespan)
	if s.tracer.Enabled() {
		s.tracer.SpanAt("vcu", "vcu.plan", now, now+plan.Makespan,
			trace.String("dag", dag.Name),
			trace.String("policy", s.policy.Name()),
			trace.Int("tasks", len(plan.Assignments)),
			trace.F64("energy_j", plan.EnergyJ))
	}
	return plan, nil
}

// Commit applies a plan to the real executors, reserving device time. The
// returned plan carries the actually committed times, which can be later
// than planned if other work landed on the devices since planning.
func (s *DSF) Commit(dag *tasks.DAG, plan *Plan) (*Plan, error) {
	if plan == nil {
		return nil, fmt.Errorf("vcu: nil plan")
	}
	committed := &Plan{DAG: plan.DAG, Policy: plan.Policy}
	var commitStart time.Duration
	if len(plan.Assignments) > 0 {
		commitStart = plan.Assignments[0].Start
		for _, a := range plan.Assignments {
			if a.Start < commitStart {
				commitStart = a.Start
			}
		}
	}
	span := s.tracer.StartSpanAt("vcu", "vcu.commit", commitStart,
		trace.String("dag", plan.DAG), trace.String("policy", plan.Policy))
	committedOK := false
	defer func() {
		span.SetAttr(trace.Bool("ok", committedOK))
		span.FinishAt(commitStart + committed.Makespan)
	}()
	finishOf := make(map[string]time.Duration, len(plan.Assignments))
	for _, a := range plan.Assignments {
		dev, err := s.mhep.Device(a.Device)
		if err != nil {
			return nil, err
		}
		t, ok := dag.Get(a.TaskID)
		if !ok {
			return nil, fmt.Errorf("vcu: plan task %s not in DAG %s", a.TaskID, dag.Name)
		}
		ready := a.Start
		for _, depID := range t.Deps {
			depFinish, ok := finishOf[depID]
			if !ok {
				return nil, fmt.Errorf("vcu: plan for %s commits %s before its dependency %s", dag.Name, t.ID, depID)
			}
			depAssign, _ := plan.Assignment(depID)
			depDev, err := s.mhep.Device(depAssign.Device)
			if err != nil {
				return nil, err
			}
			depTask, _ := dag.Get(depID)
			if arrive := depFinish + TransferTime(depDev, dev, depTask.OutputBytes); arrive > ready {
				ready = arrive
			}
		}
		start, finish, err := dev.Executor().Submit(ready, t.Class, t.GFLOP)
		if err != nil {
			return nil, fmt.Errorf("commit %s on %s: %w", t.ID, dev.Name(), err)
		}
		finishOf[t.ID] = finish
		if s.tracer.Enabled() {
			s.tracer.SpanAt("vcu", "vcu.task", start, finish,
				trace.String("task", t.ID),
				trace.String("device", dev.Name()),
				trace.Dur("queue_wait", start-ready))
		}
		s.m.tasksCommitted.Inc()
		s.m.queueWait.ObserveDuration(start - ready)
		s.m.taskExec.ObserveDuration(finish - start)
		s.deviceTaskCounter(dev.Name()).Inc()
		committed.Assignments = append(committed.Assignments, Assignment{
			TaskID:  t.ID,
			Device:  dev.Name(),
			Start:   start,
			Finish:  finish,
			EnergyJ: dev.Processor().EnergyJ(finish - start),
		})
	}
	if len(committed.Assignments) > 0 {
		base := committed.Assignments[0].Start
		var last time.Duration
		for _, a := range committed.Assignments {
			if a.Start < base {
				base = a.Start
			}
			if a.Finish > last {
				last = a.Finish
			}
			committed.EnergyJ += a.EnergyJ
		}
		committed.Makespan = last - base
		commitStart = base
	}
	committedOK = true
	s.m.commits.Inc()
	s.m.makespan.ObserveDuration(committed.Makespan)
	s.m.energy.Add(committed.EnergyJ)
	s.history = append(s.history, committed)
	return committed, nil
}

// Run plans and immediately commits a DAG; the common path.
func (s *DSF) Run(dag *tasks.DAG, now time.Duration) (*Plan, error) {
	plan, err := s.Plan(dag, now)
	if err != nil {
		return nil, err
	}
	return s.Commit(dag, plan)
}

// History returns committed plans in commit order.
func (s *DSF) History() []*Plan {
	out := make([]*Plan, len(s.history))
	copy(out, s.history)
	return out
}

package hdmap

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

func newService(t *testing.T, cacheTiles int) *Service {
	t.Helper()
	s, err := New(Config{CacheTiles: cacheTiles}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
	if _, err := New(Config{TileLengthM: -1}, sim.NewRNG(1)); err == nil {
		t.Fatal("negative tile length accepted")
	}
	if _, err := New(Config{TileBytes: -1}, sim.NewRNG(1)); err == nil {
		t.Fatal("negative tile size accepted")
	}
	if _, err := New(Config{CacheTiles: 1}, sim.NewRNG(1)); err == nil {
		t.Fatal("one-tile cache accepted")
	}
}

func TestTileIndex(t *testing.T) {
	s := newService(t, 8)
	if s.TileIndex(0) != 0 || s.TileIndex(499) != 0 || s.TileIndex(500) != 1 {
		t.Fatal("tile index quantization wrong")
	}
	if s.TileIndex(-1) != -1 {
		t.Fatalf("negative index = %d, want -1", s.TileIndex(-1))
	}
}

func TestTileContentDeterministic(t *testing.T) {
	a := newService(t, 8)
	b := newService(t, 8)
	ta, _, err := a.Lookup(1234)
	if err != nil {
		t.Fatal(err)
	}
	tb, _, err := b.Lookup(1234)
	if err != nil {
		t.Fatal(err)
	}
	if ta != tb {
		t.Fatalf("tile content not deterministic: %+v vs %+v", ta, tb)
	}
	if ta.Lanes < 2 || ta.SpeedLimitKPH < 50 || ta.ShoulderM <= 0 || ta.Bytes <= 0 {
		t.Fatalf("implausible tile %+v", ta)
	}
}

func TestLookupMissThenHit(t *testing.T) {
	s := newService(t, 8)
	_, cost1, err := s.Lookup(100)
	if err != nil {
		t.Fatal(err)
	}
	if cost1 <= 0 {
		t.Fatal("cold lookup was free")
	}
	_, cost2, err := s.Lookup(150) // same tile
	if err != nil {
		t.Fatal(err)
	}
	if cost2 != 0 {
		t.Fatalf("warm lookup cost %v", cost2)
	}
	hits, misses, fetches := s.Stats()
	if hits != 1 || misses != 1 || fetches != 1 {
		t.Fatalf("stats = %d/%d/%d", hits, misses, fetches)
	}
	if s.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v", s.MissRate())
	}
}

func TestLRUEviction(t *testing.T) {
	s := newService(t, 2)
	if _, _, err := s.Lookup(0); err != nil { // tile 0
		t.Fatal(err)
	}
	if _, _, err := s.Lookup(600); err != nil { // tile 1
		t.Fatal(err)
	}
	if _, _, err := s.Lookup(100); err != nil { // touch tile 0
		t.Fatal(err)
	}
	if _, _, err := s.Lookup(1200); err != nil { // tile 2 evicts tile 1
		t.Fatal(err)
	}
	_, cost, err := s.Lookup(700) // tile 1 again: must re-fetch
	if err != nil {
		t.Fatal(err)
	}
	if cost == 0 {
		t.Fatal("evicted tile served from cache")
	}
	_, cost0, err := s.Lookup(120) // tile 0 was touched: still cached?
	if err != nil {
		t.Fatal(err)
	}
	// After tile-1 refetch, cache holds {2, 1} or {0, ...} depending on
	// eviction; tile 0 was LRU-touched before tile 2 came in, so the
	// eviction order was 1 then 0.
	_ = cost0
}

// TestPrefetchHidesMisses is the point of the package: with a prefetcher
// sized to the speed, on-path lookups never block.
func TestPrefetchHidesMisses(t *testing.T) {
	road, err := geo.NewRoad(50000)
	if err != nil {
		t.Fatal(err)
	}
	mob := geo.Mobility{Road: road, SpeedMS: geo.MPH(70)}
	s := newService(t, 32)
	horizon := 60 * time.Second
	for now := time.Duration(0); now < 5*time.Minute; now += time.Second {
		if _, _, err := s.Prefetch(mob, now, horizon); err != nil {
			t.Fatal(err)
		}
		if _, cost, err := s.Lookup(mob.PositionAt(now).X); err != nil {
			t.Fatal(err)
		} else if cost > 0 {
			t.Fatalf("blocking map fetch at t=%v despite prefetch", now)
		}
	}
	if s.MissRate() != 0 {
		t.Fatalf("miss rate = %v with adequate prefetch", s.MissRate())
	}
}

// TestNoPrefetchMissesAtSpeed: without prefetching, a fast vehicle blocks
// on every new tile.
func TestNoPrefetchMissesAtSpeed(t *testing.T) {
	road, _ := geo.NewRoad(50000)
	mob := geo.Mobility{Road: road, SpeedMS: geo.MPH(70)}
	s := newService(t, 32)
	for now := time.Duration(0); now < 5*time.Minute; now += time.Second {
		if _, _, err := s.Lookup(mob.PositionAt(now).X); err != nil {
			t.Fatal(err)
		}
	}
	if s.MissRate() == 0 {
		t.Fatal("no misses without prefetching at 70 MPH")
	}
}

func TestPrefetchZeroHorizonNoop(t *testing.T) {
	road, _ := geo.NewRoad(1000)
	s := newService(t, 8)
	n, cost, err := s.Prefetch(geo.Mobility{Road: road, SpeedMS: 10}, 0, 0)
	if err != nil || n != 0 || cost != 0 {
		t.Fatalf("zero-horizon prefetch = %d, %v, %v", n, cost, err)
	}
}

func TestPrefetchCountsAndCosts(t *testing.T) {
	road, _ := geo.NewRoad(50000)
	mob := geo.Mobility{Road: road, SpeedMS: 25} // 25 m/s
	s := newService(t, 32)
	// 60 s horizon covers 1500 m = 3 tiles (plus the current one).
	n, cost, err := s.Prefetch(mob, 0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("prefetched %d tiles, want 4", n)
	}
	if cost <= 0 {
		t.Fatal("prefetch transfer cost missing")
	}
	// Second prefetch from the same spot is a no-op.
	n2, _, err := s.Prefetch(mob, 0, time.Minute)
	if err != nil || n2 != 0 {
		t.Fatalf("repeat prefetch = %d, %v", n2, err)
	}
}

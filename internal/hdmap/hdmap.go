// Package hdmap models the High-Definition map the paper's CAVs depend on
// ("a HD map that provides CAVs with detailed road data, such as the road
// shoulders"): a tiled map whose tiles are fetched from the cloud, cached
// on the VCU's SSD, and prefetched ahead of the vehicle so lookups on the
// driving path never block on the network.
package hdmap

import (
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/sim"
)

// Tile is one map tile covering TileLengthM of road.
type Tile struct {
	// Index is the tile number along the corridor.
	Index int
	// Bytes is the tile payload size (lane geometry, shoulders, signs).
	Bytes float64
	// Lanes and SpeedLimitKPH are representative content fields.
	Lanes         int
	SpeedLimitKPH float64
	// ShoulderM is the drivable shoulder width — the paper's example of
	// HD-map detail.
	ShoulderM float64
}

// Config parameterizes the map service.
type Config struct {
	// TileLengthM is the road length per tile. Zero means 500 m.
	TileLengthM float64
	// TileBytes is the payload per tile. Zero means 12 MB (dense urban
	// HD-map tiles run 5–30 MB/km).
	TileBytes float64
	// CacheTiles bounds the on-vehicle tile cache. Zero means 16.
	CacheTiles int
	// Fetch is the network path to the map provider. Zero-value path
	// means LTE+WAN.
	Fetch network.Path
}

func (c Config) withDefaults() (Config, error) {
	if c.TileLengthM == 0 {
		c.TileLengthM = 500
	}
	if c.TileLengthM <= 0 {
		return c, fmt.Errorf("hdmap: tile length must be positive")
	}
	if c.TileBytes == 0 {
		c.TileBytes = 12e6
	}
	if c.TileBytes <= 0 {
		return c, fmt.Errorf("hdmap: tile size must be positive")
	}
	if c.CacheTiles == 0 {
		c.CacheTiles = 16
	}
	if c.CacheTiles < 2 {
		return c, fmt.Errorf("hdmap: cache must hold at least 2 tiles")
	}
	if len(c.Fetch.Links) == 0 {
		lte, err := network.LookupLink("lte")
		if err != nil {
			return c, err
		}
		wan, err := network.LookupLink("wan")
		if err != nil {
			return c, err
		}
		c.Fetch = network.Path{Name: "map-provider", Links: []network.LinkSpec{lte, wan}}
	}
	return c, nil
}

// Service serves map tiles to the autonomy stack.
type Service struct {
	cfg Config
	rng *sim.RNG

	cache   map[int]Tile
	lru     []int // least-recent first
	hits    int
	misses  int // blocking fetches on the lookup path
	fetches int // all network fetches, incl. prefetch
}

// New builds a map service.
func New(cfg Config, rng *sim.RNG) (*Service, error) {
	if rng == nil {
		return nil, fmt.Errorf("hdmap: nil RNG")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Service{cfg: cfg, rng: rng, cache: make(map[int]Tile, cfg.CacheTiles)}, nil
}

// TileIndex returns the tile covering position x.
func (s *Service) TileIndex(x float64) int {
	idx := int(x / s.cfg.TileLengthM)
	if x < 0 {
		idx--
	}
	return idx
}

// generate synthesizes a tile's content deterministically from its index.
func (s *Service) generate(idx int) Tile {
	// Derive per-tile values from a hash of the index so content is
	// stable regardless of access order.
	h := sim.NewRNG(int64(idx)*2654435761 + 12345)
	return Tile{
		Index:         idx,
		Bytes:         s.cfg.TileBytes * h.Uniform(0.7, 1.3),
		Lanes:         2 + h.Intn(3),
		SpeedLimitKPH: []float64{50, 70, 90, 110}[h.Intn(4)],
		ShoulderM:     h.Uniform(0.5, 3.5),
	}
}

// fetchTime returns the network cost of pulling one tile.
func (s *Service) fetchTime(t Tile) (time.Duration, error) {
	return s.cfg.Fetch.TransferTime(t.Bytes, network.Downlink)
}

// admit inserts a tile, evicting least-recently-used entries.
func (s *Service) admit(t Tile) {
	if _, ok := s.cache[t.Index]; ok {
		s.touch(t.Index)
		return
	}
	for len(s.cache) >= s.cfg.CacheTiles {
		oldest := s.lru[0]
		s.lru = s.lru[1:]
		delete(s.cache, oldest)
	}
	s.cache[t.Index] = t
	s.lru = append(s.lru, t.Index)
}

func (s *Service) touch(idx int) {
	for i, v := range s.lru {
		if v == idx {
			s.lru = append(s.lru[:i], s.lru[i+1:]...)
			s.lru = append(s.lru, idx)
			return
		}
	}
}

// Lookup returns the tile covering x. A cache hit is free; a miss blocks
// for the network fetch (the latency the prefetcher exists to hide).
func (s *Service) Lookup(x float64) (Tile, time.Duration, error) {
	idx := s.TileIndex(x)
	if t, ok := s.cache[idx]; ok {
		s.hits++
		s.touch(idx)
		return t, 0, nil
	}
	s.misses++
	t := s.generate(idx)
	cost, err := s.fetchTime(t)
	if err != nil {
		return Tile{}, 0, err
	}
	s.fetches++
	s.admit(t)
	return t, cost, nil
}

// Prefetch pulls the tiles the vehicle will cross within horizon,
// given its mobility at time now. It returns how many tiles were fetched
// and the total background transfer time (not charged to lookups).
func (s *Service) Prefetch(mob geo.Mobility, now, horizon time.Duration) (int, time.Duration, error) {
	if horizon <= 0 {
		return 0, 0, nil
	}
	start := mob.PositionAt(now).X
	end := start + mob.SpeedMS*horizon.Seconds()
	fetched := 0
	var total time.Duration
	for idx := s.TileIndex(start); idx <= s.TileIndex(end); idx++ {
		if _, ok := s.cache[idx]; ok {
			continue
		}
		t := s.generate(idx)
		cost, err := s.fetchTime(t)
		if err != nil {
			return fetched, total, err
		}
		s.fetches++
		fetched++
		total += cost
		s.admit(t)
	}
	return fetched, total, nil
}

// Stats reports hits, blocking misses, and total fetches.
func (s *Service) Stats() (hits, misses, fetches int) { return s.hits, s.misses, s.fetches }

// MissRate returns blocking misses over lookups.
func (s *Service) MissRate() float64 {
	total := s.hits + s.misses
	if total == 0 {
		return 0
	}
	return float64(s.misses) / float64(total)
}

package hdmap

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

func BenchmarkLookupWarm(b *testing.B) {
	s, err := New(Config{CacheTiles: 64}, sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := s.Lookup(100); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Lookup(100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrefetchDrive(b *testing.B) {
	road, err := geo.NewRoad(1e7)
	if err != nil {
		b.Fatal(err)
	}
	mob := geo.Mobility{Road: road, SpeedMS: 30}
	s, err := New(Config{CacheTiles: 64}, sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := time.Duration(i) * time.Second
		if _, _, err := s.Prefetch(mob, now, 15*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

package offload

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/tasks"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/xedge"
)

// alwaysFail injects a permanent fault and counts hook invocations.
func alwaysFail(calls *int) xedge.FaultFunc {
	return func(now time.Duration) error {
		*calls++
		return fmt.Errorf("injected permanent fault")
	}
}

// failUntil injects a transient fault that clears at virtual time until.
func failUntil(until time.Duration, calls *int) xedge.FaultFunc {
	return func(now time.Duration) error {
		*calls++
		if now < until {
			return fmt.Errorf("injected transient fault at %v", now)
		}
		return nil
	}
}

// TestExecuteFailureCounters is the regression test for the
// success-only metrics gap: the error path of Execute must record
// offload.failures and per-destination offload.failure.<dest> counters,
// mirroring offload.executions / offload.execution.<kind>.
func TestExecuteFailureCounters(t *testing.T) {
	eng, rsu, _ := testWorld(t, 0)
	reg := telemetry.NewRegistry()
	eng.Instrument(trace.New(nil), reg)
	dag := tasks.ALPR()
	est := eng.EstimateSite(dag, rsu, 0, 0)
	if !est.Feasible {
		t.Fatalf("estimate infeasible: %s", est.Reason)
	}
	calls := 0
	rsu.SetFaultInjector(alwaysFail(&calls))
	if _, err := eng.Execute(dag, est, 0); err == nil {
		t.Fatal("faulted execute succeeded")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["offload.failures"]; got != 1 {
		t.Fatalf("offload.failures = %v, want 1", got)
	}
	if got := snap.Counters["offload.failure."+rsu.Name()]; got != 1 {
		t.Fatalf("offload.failure.%s = %v, want 1", rsu.Name(), got)
	}
	if got := snap.Counters["offload.executions"]; got != 0 {
		t.Fatalf("failed execute counted as execution (%v)", got)
	}
	// Success path stays intact and does not touch the failure counters.
	rsu.SetFaultInjector(nil)
	if _, err := eng.Execute(dag, est, 0); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if snap.Counters["offload.failures"] != 1 || snap.Counters["offload.executions"] != 1 {
		t.Fatalf("counters after recovery: %+v", snap.Counters)
	}
}

// TestResilientRetriesPastTransientFault: deterministic backoff walks the
// virtual clock past a transient fault window and the original
// destination completes — no fallback.
func TestResilientRetriesPastTransientFault(t *testing.T) {
	eng, rsu, _ := testWorld(t, 0)
	reg := telemetry.NewRegistry()
	eng.Instrument(trace.New(nil), reg)
	pol := Policy{MaxAttempts: 3, BackoffBase: 60 * time.Millisecond, BackoffFactor: 2}
	eng.SetResilience(&pol)
	calls := 0
	rsu.SetFaultInjector(failUntil(150*time.Millisecond, &calls)) // clears before attempt 3 at t=180ms
	dag := tasks.ALPR()
	est := eng.EstimateSite(dag, rsu, 0, 0)
	if !est.Feasible {
		t.Fatalf("estimate infeasible: %s", est.Reason)
	}
	done, out, err := eng.ExecuteResilient(dag, est, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dest != rsu.Name() || out.FellBackTo != "" {
		t.Fatalf("outcome fell back: %+v", out)
	}
	if out.Attempts != 3 || out.Retries != 2 {
		t.Fatalf("attempts/retries = %d/%d, want 3/2", out.Attempts, out.Retries)
	}
	if done <= 180*time.Millisecond {
		t.Fatalf("completion %v does not include backoff waits", done)
	}
	if got := reg.Counter("offload.retries"); got != 2 {
		t.Fatalf("offload.retries = %v, want 2", got)
	}
	if got := reg.Counter("offload.failures"); got != 2 {
		t.Fatalf("offload.failures = %v, want 2", got)
	}
}

// TestBreakerStopsHammeringFailedSite: once the per-site breaker opens,
// the engine stops submitting to the failed site entirely (the fault hook
// is not called again) and falls back to the next-best destination.
func TestBreakerStopsHammeringFailedSite(t *testing.T) {
	eng, rsu, _ := testWorld(t, 0)
	reg := telemetry.NewRegistry()
	eng.Instrument(trace.New(nil), reg)
	pol := Policy{MaxAttempts: 5, BreakerThreshold: 2, BreakerCooldown: time.Hour,
		BackoffBase: 10 * time.Millisecond}
	eng.SetResilience(&pol)
	calls := 0
	rsu.SetFaultInjector(alwaysFail(&calls))
	dag := tasks.ALPR()
	est := eng.EstimateSite(dag, rsu, 0, 0)
	done, out, err := eng.ExecuteResilient(dag, est, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("site probed %d times, want exactly BreakerThreshold=2 before the breaker opened", calls)
	}
	if st, ok := eng.BreakerState(rsu.Name(), 10*time.Millisecond); !ok || st != BreakerOpen {
		t.Fatalf("breaker state = %v (%v), want open", st, ok)
	}
	if out.FellBackTo == "" || out.Fallbacks == 0 {
		t.Fatalf("no fallback recorded: %+v", out)
	}
	if done <= 0 {
		t.Fatal("fallback produced non-positive completion")
	}
	// A second invocation while the breaker is open must not admit any
	// traffic to the site: zero additional fault-hook calls.
	callsBefore := calls
	_, out2, err := eng.ExecuteResilient(dag, eng.EstimateSite(dag, rsu, 0, time.Second), time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if calls != callsBefore {
		t.Fatalf("open breaker admitted %d executions", calls-callsBefore)
	}
	if out2.BreakerSkips == 0 {
		t.Fatalf("breaker skip not recorded: %+v", out2)
	}
	if reg.Counter("offload.breaker.opened") != 1 {
		t.Fatalf("offload.breaker.opened = %v, want 1", reg.Counter("offload.breaker.opened"))
	}
	if reg.Counter("offload.breaker.skips") == 0 {
		t.Fatal("offload.breaker.skips not recorded")
	}
}

// TestResilientFallsBackOnboard: with every remote destination failing
// permanently, the ladder ends at the on-board DSF and still completes.
func TestResilientFallsBackOnboard(t *testing.T) {
	eng, rsu, cl := testWorld(t, 0)
	reg := telemetry.NewRegistry()
	eng.Instrument(trace.New(nil), reg)
	pol := DefaultPolicy()
	pol.MaxAttempts = 1
	eng.SetResilience(&pol)
	calls := 0
	rsu.SetFaultInjector(alwaysFail(&calls))
	cl.SetFaultInjector(alwaysFail(&calls))
	dag := tasks.ALPR()
	est := eng.EstimateSite(dag, rsu, 0, 0)
	done, out, err := eng.ExecuteResilient(dag, est, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dest != OnboardName || out.FellBackTo != OnboardName {
		t.Fatalf("ladder did not end onboard: %+v", out)
	}
	if done <= 0 || out.Degraded {
		t.Fatalf("unexpected outcome: done=%v %+v", done, out)
	}
	if got := reg.Counter("offload.resilient.success"); got != 1 {
		t.Fatalf("offload.resilient.success = %v", got)
	}
}

// TestDegradedVariantMeetsDeadline: when even on-board execution would
// miss the deadline, the engine runs the compressed model variant and
// completes in time, reporting Degraded.
func TestDegradedVariantMeetsDeadline(t *testing.T) {
	eng, rsu, cl := testWorld(t, 0)
	eng.Instrument(trace.New(nil), telemetry.NewRegistry())
	pol := DefaultPolicy()
	pol.MaxAttempts = 1
	eng.SetResilience(&pol)
	calls := 0
	rsu.SetFaultInjector(alwaysFail(&calls))
	cl.SetFaultInjector(alwaysFail(&calls))
	heavy := &tasks.DAG{Name: "heavy-dnn", Tasks: []*tasks.Task{tasks.VehicleDetectionDNN()}}
	full := eng.EstimateOnboard(heavy, 0)
	if !full.Feasible {
		t.Fatalf("onboard infeasible: %s", full.Reason)
	}
	deadline := full.Total * 3 / 4 // full model cannot make it; half model can
	est, _, err := eng.Decide(heavy, 0)
	if err != nil {
		t.Fatal(err)
	}
	done, out, err := eng.ExecuteResilient(heavy, est, 0, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Fatalf("degraded variant not used: %+v", out)
	}
	if !out.DeadlineMet || done > deadline {
		t.Fatalf("degraded run missed deadline: done=%v deadline=%v %+v", done, deadline, out)
	}
}

// TestResilientWithoutPolicyMatchesExecute: with no policy the resilient
// entry point is a transparent single attempt.
func TestResilientWithoutPolicyMatchesExecute(t *testing.T) {
	eng, rsu, _ := testWorld(t, 0)
	dag := tasks.ALPR()
	est := eng.EstimateSite(dag, rsu, 0, 0)
	done, out, err := eng.ExecuteResilient(dag, est, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Attempts != 1 || out.Fallbacks != 0 || out.Dest != rsu.Name() {
		t.Fatalf("pass-through outcome: %+v", out)
	}
	if done <= 0 {
		t.Fatal("non-positive completion")
	}
	if eng.Resilience() != nil {
		t.Fatal("policy reported while disabled")
	}
}

func TestDegradedDAGScalesWithoutMutating(t *testing.T) {
	dag := tasks.ALPR()
	origGFLOP := dag.Tasks[1].GFLOP
	dd := DegradedDAG(dag, 0.5)
	if err := dd.Validate(); err != nil {
		t.Fatal(err)
	}
	if dag.Tasks[1].GFLOP != origGFLOP {
		t.Fatal("input DAG mutated")
	}
	if dd.Tasks[1].GFLOP != origGFLOP*0.5 {
		t.Fatalf("GFLOP not scaled: %v", dd.Tasks[1].GFLOP)
	}
	if dd.Name == dag.Name {
		t.Fatal("degraded DAG shares the original name")
	}
}

// TestPathAdjusterAppliesToEstimates: an injected loss spike on the RSU
// path must lengthen the estimated uplink.
func TestPathAdjusterAppliesToEstimates(t *testing.T) {
	eng, rsu, _ := testWorld(t, 0)
	dag := tasks.ALPR()
	base := eng.EstimateSite(dag, rsu, 0, 0)
	eng.SetPathAdjuster(func(dest string, p network.Path, now time.Duration) network.Path {
		adj := network.Path{Name: p.Name, Links: append([]network.LinkSpec(nil), p.Links...)}
		for i := range adj.Links {
			adj.Links[i].BaseLoss = 0.9
		}
		return adj
	})
	degraded := eng.EstimateSite(dag, rsu, 0, 0)
	if degraded.Uplink <= base.Uplink {
		t.Fatalf("loss spike did not lengthen uplink: %v -> %v", base.Uplink, degraded.Uplink)
	}
	eng.SetPathAdjuster(nil)
	restored := eng.EstimateSite(dag, rsu, 0, 0)
	if restored.Uplink != base.Uplink {
		t.Fatal("removing adjuster did not restore baseline")
	}
}

package offload

import (
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/hardware"
	"repro/internal/network"
	"repro/internal/tasks"
	"repro/internal/vcu"
	"repro/internal/xedge"
)

// testWorld builds a vehicle DSF, a road with one RSU in range, and the
// cloud.
func testWorld(t *testing.T, speedMS float64) (*Engine, *xedge.Site, *xedge.Site) {
	t.Helper()
	m, err := vcu.DefaultVCU()
	if err != nil {
		t.Fatal(err)
	}
	dsf, err := vcu.NewDSF(m, vcu.GreedyEFT{})
	if err != nil {
		t.Fatal(err)
	}
	road, err := geo.NewRoad(10000)
	if err != nil {
		t.Fatal(err)
	}
	road.PlaceStations(10, geo.BaseStation, 800, 0, "bs")
	rsu, err := xedge.NewRSU(geo.Station{ID: "rsu-0", Kind: geo.RSU, Pos: geo.Point{X: 100}, Radius: 50000})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := xedge.NewCloud()
	if err != nil {
		t.Fatal(err)
	}
	mob := geo.Mobility{Road: road, SpeedMS: speedMS}
	eng, err := NewEngine(dsf, mob, []*xedge.Site{rsu, cl})
	if err != nil {
		t.Fatal(err)
	}
	return eng, rsu, cl
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, geo.Mobility{}, nil); err == nil {
		t.Fatal("nil DSF accepted")
	}
}

func TestEstimatesCoverAllDestinations(t *testing.T) {
	eng, _, _ := testWorld(t, 0)
	ests, err := eng.Estimates(tasks.ALPR(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 3 { // onboard + rsu + cloud
		t.Fatalf("estimates = %d, want 3", len(ests))
	}
	names := map[string]bool{}
	for _, e := range ests {
		names[e.Dest] = true
		if !e.Feasible {
			t.Errorf("destination %s infeasible: %s", e.Dest, e.Reason)
		}
	}
	for _, want := range []string{OnboardName, "rsu-0", "cloud"} {
		if !names[want] {
			t.Errorf("missing destination %s", want)
		}
	}
	// Sorted by total latency.
	for i := 1; i < len(ests); i++ {
		if ests[i-1].Total > ests[i].Total {
			t.Fatal("estimates not sorted by latency")
		}
	}
}

func TestOnboardHasNoTransfer(t *testing.T) {
	eng, _, _ := testWorld(t, 0)
	est := eng.EstimateOnboard(tasks.ALPR(), 0)
	if !est.Feasible {
		t.Fatalf("onboard infeasible: %s", est.Reason)
	}
	if est.Uplink != 0 || est.Downlink != 0 || est.BytesSent != 0 {
		t.Fatalf("onboard estimate has transfer: %+v", est)
	}
}

func TestOffloadEstimateComponents(t *testing.T) {
	eng, rsu, _ := testWorld(t, 0)
	est := eng.EstimateSite(tasks.ALPR(), rsu, 0, 0)
	if !est.Feasible {
		t.Fatalf("rsu infeasible: %s", est.Reason)
	}
	if est.Uplink <= 0 || est.Compute <= 0 || est.Downlink <= 0 {
		t.Fatalf("missing components: %+v", est)
	}
	if est.Total < est.Uplink+est.Compute {
		t.Fatalf("total %v < uplink+compute", est.Total)
	}
	if est.BytesSent <= 0 {
		t.Fatal("no bytes accounted for full offload")
	}
	if est.VehicleEnergyJ <= 0 {
		t.Fatal("no radio energy charged")
	}
}

// TestSplitReducesUplink is the Firework/Neurosurgeon claim the paper
// cites: running the early filtering stage on-board shrinks what crosses
// the network.
func TestSplitReducesUplink(t *testing.T) {
	eng, rsu, _ := testWorld(t, 0)
	full := eng.EstimateSite(tasks.ALPR(), rsu, 0, 0)
	split := eng.EstimateSite(tasks.ALPR(), rsu, 1, 0)
	if !full.Feasible || !split.Feasible {
		t.Fatalf("estimates infeasible: %+v %+v", full, split)
	}
	if split.BytesSent >= full.BytesSent {
		t.Fatalf("split did not reduce bytes: %v -> %v", full.BytesSent, split.BytesSent)
	}
	if split.Uplink >= full.Uplink {
		t.Fatalf("split did not reduce uplink time: %v -> %v", full.Uplink, split.Uplink)
	}
}

func TestSplitBoundsChecked(t *testing.T) {
	eng, rsu, _ := testWorld(t, 0)
	if est := eng.EstimateSite(tasks.ALPR(), rsu, -1, 0); est.Feasible {
		t.Fatal("negative split accepted")
	}
	if est := eng.EstimateSite(tasks.ALPR(), rsu, 3, 0); est.Feasible {
		t.Fatal("split == len(tasks) accepted (that is onboard execution)")
	}
}

func TestCoverageGates(t *testing.T) {
	eng, _, _ := testWorld(t, 0)
	smallRSU, err := xedge.NewRSU(geo.Station{ID: "far-rsu", Kind: geo.RSU, Pos: geo.Point{X: 9000}, Radius: 100})
	if err != nil {
		t.Fatal(err)
	}
	eng.AddSite(smallRSU)
	est := eng.EstimateSite(tasks.ALPR(), smallRSU, 0, 0) // vehicle at x=0
	if est.Feasible {
		t.Fatal("out-of-coverage site feasible")
	}
	if est.Reason != "out of coverage" {
		t.Fatalf("reason = %q", est.Reason)
	}
}

// TestSpeedDegradesCellular: at 70 MPH the LTE paths (cloud) slow down
// while the on-board estimate is untouched.
func TestSpeedDegradesCellular(t *testing.T) {
	still, _, _ := testWorld(t, 0)
	fast, _, _ := testWorld(t, geo.MPH(70))
	dag := tasks.ALPR()
	cloudStill := findEst(t, still, dag, "cloud")
	cloudFast := findEst(t, fast, dag, "cloud")
	if cloudFast.Uplink <= cloudStill.Uplink {
		t.Fatalf("70 MPH uplink (%v) not slower than parked (%v)", cloudFast.Uplink, cloudStill.Uplink)
	}
	onStill := still.EstimateOnboard(dag, 0)
	onFast := fast.EstimateOnboard(dag, 0)
	if onStill.Total != onFast.Total {
		t.Fatal("onboard estimate depends on speed")
	}
}

func findEst(t *testing.T, eng *Engine, dag *tasks.DAG, dest string) Estimate {
	t.Helper()
	ests, err := eng.Estimates(dag, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ests {
		if e.Dest == dest {
			return e
		}
	}
	t.Fatalf("destination %s not found", dest)
	return Estimate{}
}

// TestDecidePrefersEdgeForHeavyDNN: the DNN vehicle detector is ~14s on
// board (Table I class hardware is stronger here, but still slow) while an
// RSU GPU plus a small frame upload is far faster.
func TestDecidePrefersEdgeForHeavyDNN(t *testing.T) {
	eng, _, _ := testWorld(t, 0)
	heavy := &tasks.DAG{Name: "heavy-dnn", Tasks: []*tasks.Task{tasks.VehicleDetectionDNN()}}
	best, _, err := eng.Decide(heavy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best.Dest == OnboardName {
		t.Fatalf("heavy DNN stayed on board (%v)", best.Total)
	}
}

// TestDecidePrefersOnboardForTinyTasks: shipping a frame to the cloud for
// a 13.57 ms lane detection is never worth it.
func TestDecidePrefersOnboardForTinyTasks(t *testing.T) {
	eng, _, _ := testWorld(t, 0)
	tiny := &tasks.DAG{Name: "tiny", Tasks: []*tasks.Task{tasks.LaneDetection()}}
	best, _, err := eng.Decide(tiny, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best.Dest != OnboardName {
		t.Fatalf("lane detection offloaded to %s", best.Dest)
	}
}

func TestExecuteOnboardAndRemote(t *testing.T) {
	eng, rsu, _ := testWorld(t, 0)
	dag := tasks.ALPR()
	onboard := eng.EstimateOnboard(dag, 0)
	done, err := eng.Execute(dag, onboard, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("onboard execute returned non-positive completion")
	}
	remote := eng.EstimateSite(dag, rsu, 1, 0)
	done2, err := eng.Execute(dag, remote, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done2 <= 0 {
		t.Fatal("remote execute returned non-positive completion")
	}
	if rsu.Utilization(time.Second) == 0 {
		t.Fatal("remote execute did not reserve site time")
	}
}

func TestExecuteRejectsInfeasible(t *testing.T) {
	eng, _, _ := testWorld(t, 0)
	if _, err := eng.Execute(tasks.ALPR(), Estimate{Feasible: false}, 0); err == nil {
		t.Fatal("infeasible estimate executed")
	}
	if _, err := eng.Execute(tasks.ALPR(), Estimate{Feasible: true, Dest: "ghost"}, 0); err == nil {
		t.Fatal("unknown destination executed")
	}
}

// TestBusyEdgeShiftsDecision: saturating the RSU should push the decision
// elsewhere.
func TestBusyEdgeShiftsDecision(t *testing.T) {
	eng, rsu, _ := testWorld(t, 0)
	heavy := &tasks.DAG{Name: "heavy-dnn", Tasks: []*tasks.Task{tasks.VehicleDetectionDNN()}}
	best1, _, err := eng.Decide(heavy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best1.Dest != rsu.Name() {
		t.Skipf("baseline best is %s, not the RSU", best1.Dest)
	}
	if err := rsu.Preload(200, hardware.DNNInference, 500); err != nil {
		t.Fatal(err)
	}
	best2, _, err := eng.Decide(heavy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best2.Dest == rsu.Name() {
		t.Fatal("decision stuck to saturated RSU")
	}
}

func TestEstimatesValidation(t *testing.T) {
	eng, _, _ := testWorld(t, 0)
	if _, err := eng.Estimates(nil, 0); err == nil {
		t.Fatal("nil DAG accepted")
	}
	bad := &tasks.DAG{Name: "bad", Tasks: []*tasks.Task{{ID: "a", Deps: []string{"missing"}}}}
	if _, err := eng.Estimates(bad, 0); err == nil {
		t.Fatal("invalid DAG accepted")
	}
}

func TestMobilityAdjustedPathOnlyTouchesCellular(t *testing.T) {
	eng, _, _ := testWorld(t, geo.MPH(70))
	dsrc, _ := network.LookupLink("dsrc")
	lte, _ := network.LookupLink("lte")
	p := network.Path{Name: "mix", Links: []network.LinkSpec{dsrc, lte}}
	adj := eng.mobilityAdjustedPath(p)
	if adj.Links[0].BaseLoss != dsrc.BaseLoss {
		t.Fatal("DSRC loss modified by speed")
	}
	if adj.Links[1].BaseLoss <= lte.BaseLoss {
		t.Fatal("LTE loss not raised at 70 MPH")
	}
	// Original path must be untouched.
	if p.Links[1].BaseLoss != lte.BaseLoss {
		t.Fatal("adjustment mutated the input path")
	}
}

func TestSitesAccessors(t *testing.T) {
	eng, _, _ := testWorld(t, 0)
	if len(eng.Sites()) != 2 {
		t.Fatalf("Sites = %d", len(eng.Sites()))
	}
	eng.AddSite(nil)
	if len(eng.Sites()) != 2 {
		t.Fatal("nil site added")
	}
	eng.SetMobility(geo.Mobility{SpeedMS: 5})
}

// TestBandwidthBudgetForcesOnboard: with an exhausted uplink budget, the
// heavy DNN job that would normally offload must run on board.
func TestBandwidthBudgetForcesOnboard(t *testing.T) {
	eng, _, _ := testWorld(t, 0)
	heavy := &tasks.DAG{Name: "heavy-dnn", Tasks: []*tasks.Task{tasks.VehicleDetectionDNN()}}
	best, _, err := eng.Decide(heavy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best.Dest == OnboardName {
		t.Skip("baseline already onboard")
	}
	// Budget below one frame upload.
	eng.SetBandwidthBudget(1000)
	best2, all, err := eng.Decide(heavy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best2.Dest != OnboardName {
		t.Fatalf("budget-bound decision = %s, want onboard", best2.Dest)
	}
	for _, est := range all {
		if est.Dest != OnboardName && est.Feasible {
			t.Fatalf("remote destination %s feasible with 1 kB budget", est.Dest)
		}
	}
}

// TestBandwidthBudgetAccounting: executing offloads consumes budget; once
// spent, further offloads are rejected.
func TestBandwidthBudgetAccounting(t *testing.T) {
	eng, rsu, _ := testWorld(t, 0)
	dag := tasks.ALPR()
	est := eng.EstimateSite(dag, rsu, 0, 0)
	if !est.Feasible {
		t.Fatalf("estimate infeasible: %s", est.Reason)
	}
	eng.SetBandwidthBudget(est.BytesSent * 1.5)
	if _, err := eng.Execute(dag, est, 0); err != nil {
		t.Fatal(err)
	}
	if eng.BytesSpent() != est.BytesSent {
		t.Fatalf("spent %v, want %v", eng.BytesSpent(), est.BytesSent)
	}
	remaining, ok := eng.BandwidthRemaining()
	if !ok || remaining >= est.BytesSent {
		t.Fatalf("remaining = %v, %v", remaining, ok)
	}
	// Second full offload exceeds the budget.
	if _, err := eng.Execute(dag, est, time.Second); err == nil {
		t.Fatal("over-budget execute succeeded")
	}
	// Clearing the budget restores offloading.
	eng.SetBandwidthBudget(0)
	if _, ok := eng.BandwidthRemaining(); ok {
		t.Fatal("cleared budget still reported")
	}
	if _, err := eng.Execute(dag, est, 2*time.Second); err != nil {
		t.Fatalf("execute after clearing budget: %v", err)
	}
}

// TestFailedExecuteDoesNotBurnBudget: regression for the charge-ordering
// bug where execute spent the bandwidth budget before resolving the
// destination, so a failed execution permanently burned budget.
func TestFailedExecuteDoesNotBurnBudget(t *testing.T) {
	eng, rsu, _ := testWorld(t, 0)
	dag := tasks.ALPR()
	est := eng.EstimateSite(dag, rsu, 0, 0)
	if !est.Feasible {
		t.Fatalf("estimate infeasible: %s", est.Reason)
	}
	eng.SetBandwidthBudget(est.BytesSent * 2)
	bad := est
	bad.Dest = "ghost" // destination resolution fails mid-execute
	if _, err := eng.Execute(dag, bad, 0); err == nil {
		t.Fatal("unknown destination executed")
	}
	if got := eng.BytesSpent(); got != 0 {
		t.Fatalf("failed execute burned %.0f budget bytes", got)
	}
	// The budget is still intact, so the real offload must succeed and
	// charge exactly once.
	if _, err := eng.Execute(dag, est, 0); err != nil {
		t.Fatalf("execute after failed attempt: %v", err)
	}
	if got := eng.BytesSpent(); got != est.BytesSent {
		t.Fatalf("spent %.0f, want %.0f", got, est.BytesSent)
	}
}

// TestLossAdjustmentRespondsToBitrate: regression for the hardcoded
// 3.8 Mbps reference bitrate in the mobility loss adjustment — a heavier
// stream must see more loss (longer cellular uplink), and resetting the
// parameter must restore the default.
func TestLossAdjustmentRespondsToBitrate(t *testing.T) {
	eng, _, _ := testWorld(t, geo.MPH(70))
	if eng.LossBitrate() != DefaultLossBitrateMbps {
		t.Fatalf("default loss bitrate = %v, want %v", eng.LossBitrate(), DefaultLossBitrateMbps)
	}
	lte, _ := network.LookupLink("lte")
	p := network.Path{Name: "lte-only", Links: []network.LinkSpec{lte}}
	baseLoss := network.WorstLoss(eng.mobilityAdjustedPath(p))

	dag := tasks.ALPR()
	base := findEst(t, eng, dag, "cloud")
	eng.SetLossBitrate(5.8)
	if heavierLoss := network.WorstLoss(eng.mobilityAdjustedPath(p)); heavierLoss <= baseLoss {
		t.Fatalf("5.8 Mbps loss %v not above 3.8 Mbps loss %v", heavierLoss, baseLoss)
	}
	heavier := findEst(t, eng, dag, "cloud")
	if heavier.Uplink <= base.Uplink {
		t.Fatalf("5.8 Mbps uplink (%v) not slower than 3.8 Mbps (%v)", heavier.Uplink, base.Uplink)
	}
	eng.SetLossBitrate(0) // restores the default
	reset := findEst(t, eng, dag, "cloud")
	if reset.Uplink != base.Uplink {
		t.Fatalf("resetting bitrate did not restore baseline: %v vs %v", reset.Uplink, base.Uplink)
	}
}

// TestBudgetReasonNeverNegative: the budget-exhausted Reason must clamp
// remaining bytes at zero even if spending somehow overshot the budget.
func TestBudgetReasonNeverNegative(t *testing.T) {
	eng, rsu, _ := testWorld(t, 0)
	eng.SetBandwidthBudget(10)
	eng.spentBytes = 25 // overshoot (what the pre-fix charge bug produced)
	est := eng.EstimateSite(tasks.ALPR(), rsu, 0, 0)
	if est.Feasible {
		t.Fatal("over-budget estimate feasible")
	}
	if !strings.HasSuffix(est.Reason, "0 B left)") {
		t.Fatalf("reason %q does not clamp remaining budget at zero", est.Reason)
	}
	if strings.Contains(est.Reason, "-") {
		t.Fatalf("reason %q prints a negative budget", est.Reason)
	}
}

// TestSiteOutageFallsBack: a down RSU becomes infeasible and the decision
// falls elsewhere; restoring it brings it back.
func TestSiteOutageFallsBack(t *testing.T) {
	eng, rsu, _ := testWorld(t, 0)
	heavy := &tasks.DAG{Name: "heavy-dnn", Tasks: []*tasks.Task{tasks.VehicleDetectionDNN()}}
	best, _, err := eng.Decide(heavy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best.Dest != rsu.Name() {
		t.Skipf("baseline best is %s", best.Dest)
	}
	rsu.SetAvailable(false)
	best2, all, err := eng.Decide(heavy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best2.Dest == rsu.Name() {
		t.Fatal("down site chosen")
	}
	for _, est := range all {
		if est.Dest == rsu.Name() && est.Feasible {
			t.Fatal("down site feasible")
		}
	}
	rsu.SetAvailable(true)
	best3, _, err := eng.Decide(heavy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best3.Dest != rsu.Name() {
		t.Fatalf("restored site not chosen: %s", best3.Dest)
	}
}

// TestPathCacheInvalidatedOnMobilityChange: the memoized base path must
// re-derive after SetMobility / SetLossBitrate — a speed change has to
// degrade cellular estimates exactly as it would on a cold engine.
func TestPathCacheInvalidatedOnMobilityChange(t *testing.T) {
	eng, _, _ := testWorld(t, 0)
	dag := tasks.ALPR()
	parked := findEst(t, eng, dag, "cloud")
	// Warm the cache, then change speed on the same engine.
	mob := eng.mob
	mob.SpeedMS = geo.MPH(70)
	eng.SetMobility(mob)
	fast := findEst(t, eng, dag, "cloud")
	if fast.Uplink <= parked.Uplink {
		t.Fatalf("uplink after SetMobility (%v) not slower than parked cached estimate (%v)", fast.Uplink, parked.Uplink)
	}
	// Must equal a cold engine at the same speed.
	cold, _, _ := testWorld(t, geo.MPH(70))
	want := findEst(t, cold, dag, "cloud")
	if fast.Uplink != want.Uplink || fast.Downlink != want.Downlink {
		t.Fatalf("cached engine estimate %v/%v != cold engine %v/%v",
			fast.Uplink, fast.Downlink, want.Uplink, want.Downlink)
	}
	// Bitrate changes must also invalidate.
	eng.SetLossBitrate(30)
	cold.SetLossBitrate(30)
	if got, want := findEst(t, eng, dag, "cloud").Uplink, findEst(t, cold, dag, "cloud").Uplink; got != want {
		t.Fatalf("uplink after SetLossBitrate: cached %v != cold %v", got, want)
	}
}

// TestPathCacheKeepsFaultWindowsLive: the cached base path must not
// swallow the PathAdjuster — a degradation window starting after the
// cache warmed still has to slow transfers inside the window and stop
// outside it.
func TestPathCacheKeepsFaultWindowsLive(t *testing.T) {
	eng, _, _ := testWorld(t, 0)
	dag := tasks.ALPR()
	before := findEst(t, eng, dag, "cloud") // warms the path cache
	window := Window{From: 10 * time.Second, To: 20 * time.Second}
	eng.SetPathAdjuster(func(dest string, p network.Path, now time.Duration) network.Path {
		if dest != "cloud" || now < window.From || now >= window.To {
			return p
		}
		adj := network.Path{Name: p.Name, Links: append([]network.LinkSpec(nil), p.Links...)}
		for i := range adj.Links {
			adj.Links[i].UpMbps /= 10
			adj.Links[i].DownMbps /= 10
		}
		return adj
	})
	ests, err := eng.Estimates(dag, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var inWindow Estimate
	for _, e := range ests {
		if e.Dest == "cloud" {
			inWindow = e
		}
	}
	if inWindow.Uplink <= before.Uplink {
		t.Fatalf("uplink inside fault window (%v) not slower than healthy (%v)", inWindow.Uplink, before.Uplink)
	}
	after := findEst(t, eng, dag, "cloud") // now=0, outside the window
	if after.Uplink != before.Uplink {
		t.Fatalf("uplink outside window %v != healthy baseline %v", after.Uplink, before.Uplink)
	}
}

// Window is a local [From, To) helper for the adjuster test.
type Window struct{ From, To time.Duration }

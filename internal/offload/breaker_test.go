package offload

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// Table-driven test: scripted event sequences against expected state
// trajectories. Each step either queries Allow or records an outcome at
// a virtual time, then asserts the resulting state.
func TestBreakerStateMachine(t *testing.T) {
	const (
		allow   = "allow"   // expect Allow == true
		reject  = "reject"  // expect Allow == false
		success = "success" // RecordSuccess
		failure = "failure" // RecordFailure
	)
	type step struct {
		at    time.Duration
		op    string
		state BreakerState // expected state after the step, as of `at`
	}
	cases := []struct {
		name      string
		threshold int
		cooldown  time.Duration
		steps     []step
	}{
		{
			name: "threshold failures open the breaker", threshold: 2, cooldown: time.Second,
			steps: []step{
				{0, allow, BreakerClosed},
				{0, failure, BreakerClosed},
				{10 * time.Millisecond, allow, BreakerClosed},
				{10 * time.Millisecond, failure, BreakerOpen},
				{20 * time.Millisecond, reject, BreakerOpen},
				{900 * time.Millisecond, reject, BreakerOpen},
			},
		},
		{
			name: "success resets the consecutive count", threshold: 2, cooldown: time.Second,
			steps: []step{
				{0, failure, BreakerClosed},
				{0, success, BreakerClosed},
				{0, failure, BreakerClosed},
				{0, success, BreakerClosed},
				{0, allow, BreakerClosed},
			},
		},
		{
			name: "cooldown ages open into half-open; probe success closes", threshold: 1, cooldown: time.Second,
			steps: []step{
				{0, failure, BreakerOpen},
				{time.Second, allow, BreakerHalfOpen}, // the single probe
				{time.Second, reject, BreakerHalfOpen},
				{time.Second, success, BreakerClosed},
				{time.Second, allow, BreakerClosed},
			},
		},
		{
			name: "probe failure re-opens and restarts the cooldown", threshold: 1, cooldown: time.Second,
			steps: []step{
				{0, failure, BreakerOpen},
				{time.Second, allow, BreakerHalfOpen},
				{time.Second, failure, BreakerOpen},
				{1900 * time.Millisecond, reject, BreakerOpen}, // new cooldown from t=1s
				{2 * time.Second, allow, BreakerHalfOpen},
				{2 * time.Second, success, BreakerClosed},
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			b := NewBreaker(tc.threshold, tc.cooldown)
			for i, s := range tc.steps {
				switch s.op {
				case allow:
					if !b.Allow(s.at) {
						t.Fatalf("step %d: Allow(%v) = false, want true", i, s.at)
					}
				case reject:
					if b.Allow(s.at) {
						t.Fatalf("step %d: Allow(%v) = true, want false", i, s.at)
					}
				case success:
					b.RecordSuccess(s.at)
				case failure:
					b.RecordFailure(s.at)
				}
				if got := b.State(s.at); got != s.state {
					t.Fatalf("step %d (%s@%v): state = %v, want %v", i, s.op, s.at, got, s.state)
				}
			}
		})
	}
}

func TestBreakerConstructorClamps(t *testing.T) {
	b := NewBreaker(0, 0)
	b.RecordFailure(0) // threshold clamped to 1: one failure opens
	if b.State(0) != BreakerOpen {
		t.Fatal("threshold 0 not clamped to 1")
	}
	if b.State(time.Second) != BreakerHalfOpen {
		t.Fatal("cooldown 0 not clamped to 1s")
	}
}

// breakerTrace replays a deterministic random op sequence and returns the
// decision/state trail while asserting the machine's safety invariants:
// (a) no traffic is ever admitted while open, (b) each half-open episode
// admits exactly one probe before the probe resolves.
func breakerTrace(t *testing.T, rng *sim.RNG, b *Breaker, ops int) []string {
	t.Helper()
	var trail []string
	now := time.Duration(0)
	probesSinceResolve := 0
	for i := 0; i < ops; i++ {
		now += time.Duration(rng.Intn(700)) * time.Millisecond
		pre := b.State(now)
		switch rng.Intn(3) {
		case 0:
			admitted := b.Allow(now)
			if admitted && pre == BreakerOpen {
				t.Fatalf("op %d: traffic admitted through an open breaker at %v", i, now)
			}
			if pre == BreakerHalfOpen && admitted {
				probesSinceResolve++
				if probesSinceResolve > 1 {
					t.Fatalf("op %d: half-open admitted %d probes before resolution", i, probesSinceResolve)
				}
			}
			trail = append(trail, "allow:"+map[bool]string{true: "y", false: "n"}[admitted])
		case 1:
			b.RecordSuccess(now)
			probesSinceResolve = 0
			trail = append(trail, "success")
		default:
			b.RecordFailure(now)
			probesSinceResolve = 0
			trail = append(trail, "failure")
		}
		trail = append(trail, b.State(now).String())
	}
	return trail
}

// Property test (mirrors internal/vcu/property_test.go): randomized
// monotone event sequences never violate the breaker's admission
// invariants, and the machine is deterministic — replaying the identical
// sequence yields an identical decision/state trail.
func TestBreakerPropertiesOnRandomSequences(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		threshold := 1 + trial%4
		cooldown := time.Duration(100+50*trial) * time.Millisecond
		first := breakerTrace(t, sim.NewRNG(int64(trial)), NewBreaker(threshold, cooldown), 200)
		second := breakerTrace(t, sim.NewRNG(int64(trial)), NewBreaker(threshold, cooldown), 200)
		if len(first) != len(second) {
			t.Fatalf("trial %d: replay lengths differ: %d vs %d", trial, len(first), len(second))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("trial %d: replay diverged at %d: %q vs %q", trial, i, first[i], second[i])
			}
		}
	}
}

// TestBreakerOpensCounter: lifetime open-transition accounting feeds the
// offload.breaker.opened metric.
func TestBreakerOpensCounter(t *testing.T) {
	b := NewBreaker(1, time.Second)
	b.RecordFailure(0)
	if !b.Allow(time.Second) {
		t.Fatal("half-open probe rejected")
	}
	b.RecordFailure(time.Second)
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
}

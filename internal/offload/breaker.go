package offload

import (
	"fmt"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed admits all traffic.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects all traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe; its outcome decides
	// whether the breaker closes again or re-opens.
	BreakerHalfOpen
)

// String returns the lower-case state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("breaker-state(%d)", int(s))
	}
}

// Breaker is a per-destination circuit breaker timed on the virtual
// clock: `threshold` consecutive failures open it, the open state rejects
// traffic for `cooldown` of virtual time, then a single half-open probe
// decides between closing (probe succeeded) and re-opening (probe
// failed). All transitions are pure functions of the call sequence and
// the virtual times passed in, so breaker behavior is deterministic and
// replayable.
//
// Concurrency: a Breaker belongs to its engine's goroutine; it is not
// safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration

	state    BreakerState
	fails    int           // consecutive failures while closed
	openedAt time.Duration // virtual time the breaker last opened
	probing  bool          // a half-open probe has been admitted and is unresolved
	opens    int           // lifetime count of closed/half-open -> open transitions
	onChange func(from, to BreakerState, now time.Duration)
}

// OnChange registers a callback fired on every real state transition (the
// flight-recorder hook). It runs synchronously on the breaker's goroutine
// and must not call back into the breaker.
func (b *Breaker) OnChange(fn func(from, to BreakerState, now time.Duration)) {
	b.onChange = fn
}

// transition moves the breaker to state to, notifying only when the state
// actually changes.
func (b *Breaker) transition(to BreakerState, now time.Duration) {
	from := b.state
	b.state = to
	if from != to && b.onChange != nil {
		b.onChange(from, to, now)
	}
}

// NewBreaker builds a breaker. Thresholds below 1 are clamped to 1;
// non-positive cooldowns default to one virtual second.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// materialize ages an expired open state into half-open as of now.
func (b *Breaker) materialize(now time.Duration) {
	if b.state == BreakerOpen && now >= b.openedAt+b.cooldown {
		b.transition(BreakerHalfOpen, now)
		b.probing = false
	}
}

// State reports the breaker's state as of virtual time now.
func (b *Breaker) State(now time.Duration) BreakerState {
	b.materialize(now)
	return b.state
}

// Allow reports whether a request may proceed at now. While half-open it
// admits exactly one probe; further requests are rejected until the probe
// resolves through RecordSuccess or RecordFailure.
func (b *Breaker) Allow(now time.Duration) bool {
	b.materialize(now)
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return false
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// RecordSuccess reports a successful request at now: a half-open probe
// success closes the breaker, and any success resets the consecutive
// failure count.
func (b *Breaker) RecordSuccess(now time.Duration) {
	b.materialize(now)
	b.transition(BreakerClosed, now)
	b.fails = 0
	b.probing = false
}

// RecordFailure reports a failed request at now. The threshold-th
// consecutive failure while closed opens the breaker; a half-open probe
// failure re-opens it immediately.
func (b *Breaker) RecordFailure(now time.Duration) {
	b.materialize(now)
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.open(now)
		}
	case BreakerHalfOpen:
		b.open(now)
	case BreakerOpen:
		// A failure reported while open (caller bypassed Allow): extend
		// the cooldown from the new failure.
		b.openedAt = now
	}
}

func (b *Breaker) open(now time.Duration) {
	b.transition(BreakerOpen, now)
	b.openedAt = now
	b.fails = 0
	b.probing = false
	b.opens++
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() int { return b.opens }

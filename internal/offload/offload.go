// Package offload implements OpenVDAP's dynamic offloading and scheduling
// strategy: for each application (task DAG) it enumerates the feasible
// destinations — on-board VCU, neighboring vehicles, XEdge servers, the
// remote cloud — estimates end-to-end latency and vehicle-side energy for
// each (including mobility-degraded network transfer), and picks the
// destination that finishes the service "at the right time with limited
// bandwidth consumption" (paper §I, §IV).
package offload

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/tasks"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vcu"
	"repro/internal/xedge"
)

// RadioPowerW is the vehicle radio's transmit power draw, charged against
// transfer time when estimating vehicle-side energy of offloading.
const RadioPowerW = 2.5

// DefaultLossBitrateMbps is the stream bitrate fed to the Figure-2 loss
// model when adjusting cellular links for mobility: the paper's 3.8 Mbps
// reference stream. Engines can override it per workload with
// SetLossBitrate.
const DefaultLossBitrateMbps = 3.8

// OnboardName is the destination name for local execution.
const OnboardName = "onboard"

// Estimate is the predicted cost of running a DAG at one destination.
type Estimate struct {
	Dest string `json:"dest"`
	Kind string `json:"kind"`
	// SplitAfter is the number of leading topo-order tasks run on-board
	// before shipping intermediate data (0 = full offload; len(tasks) =
	// fully on-board).
	SplitAfter int `json:"splitAfter"`
	// Uplink, Compute, Downlink, Total are the latency components.
	Uplink   time.Duration `json:"uplink"`
	Compute  time.Duration `json:"compute"`
	Downlink time.Duration `json:"downlink"`
	Total    time.Duration `json:"total"`
	// VehicleEnergyJ is energy spent on the vehicle (local compute plus
	// radio transmit time).
	VehicleEnergyJ float64 `json:"vehicleEnergyJ"`
	// BytesSent is uplink payload (the bandwidth-consumption metric).
	BytesSent float64 `json:"bytesSent"`
	// Feasible is false when the destination cannot run the DAG now.
	Feasible bool `json:"feasible"`
	// Reason explains infeasibility.
	Reason string `json:"reason,omitempty"`
}

// Local reports whether committing this estimate touches only
// vehicle-local state: on-board DSF execution, no Site.Submit, no
// bandwidth-budget charge. Local estimates may execute inside the
// parallel decision phase of an epoch-barrier fleet round; remote ones
// must wait for the single-threaded commit phase (see
// fleet.ShardedInvokeAll and the phase contract on ExecuteResilient).
func (est Estimate) Local() bool { return est.Dest == OnboardName }

// Engine evaluates destinations for one vehicle.
//
// Concurrency: an Engine (with its DSF, sites, tracer, and registry) is
// owned by a single goroutine. Replication harnesses that run many
// engines concurrently must give each worker its own engine and world
// (see internal/runner) and merge telemetry afterwards.
//
// Phase contract (epoch-barrier fleet execution): engines of different
// vehicles that share xedge sites may run their *decision step* —
// Decide/Estimates/EstimateOnboard/EstimateSite — concurrently, because
// estimation only reads frozen site state. The *commit step* — Execute
// toward a remote destination, or the remote ladder of ExecuteResilient —
// mutates shared sites (Site.Submit, queueing state) and charges the
// engine's bandwidth budget, so it must run in the single-threaded commit
// phase in canonical vehicle order. Estimates with Local() == true commit
// entirely on vehicle-local state and are exempt; fleet.ShardedInvokeAll
// is built on exactly this split.
type Engine struct {
	dsf   *vcu.DSF
	sites []*xedge.Site
	mob   geo.Mobility

	// lossBitrateMbps is the stream bitrate assumed by the mobility loss
	// adjustment (DefaultLossBitrateMbps unless overridden).
	lossBitrateMbps float64

	// Bandwidth budget (the paper's "limited bandwidth consumption"):
	// when budgetBytes > 0, offloads whose uplink payload exceeds the
	// remaining budget are infeasible, forcing on-board execution.
	budgetBytes float64
	spentBytes  float64

	tracer   *trace.Tracer
	metrics  *telemetry.Registry
	meter    *network.Meter
	m        engineMetrics
	recorder *obs.Recorder

	// pathAdjust, when set, layers externally-injected link conditions
	// (fault windows, chaos schedules) onto every access path after the
	// mobility adjustment. See SetPathAdjuster.
	pathAdjust PathAdjuster

	// pathCache memoizes the mobility-adjusted base path per site. The
	// base depends only on (site access path, vehicle speed, loss
	// bitrate): site access paths are immutable, and SetMobility /
	// SetLossBitrate / SetPathAdjuster drop the cache. The time-varying
	// fault adjuster is layered on top per call, never cached, so
	// injected fault windows always see live conditions.
	pathCache map[string]network.Path

	// policy, when non-nil, enables the resilient execution path:
	// per-site circuit breakers, retry with backoff, and fallback. See
	// SetResilience and ExecuteResilient in resilience.go.
	policy   *Policy
	breakers map[string]*Breaker
}

// PathAdjuster rewrites the access path toward a destination as of
// virtual time now (e.g. a fault injector degrading a link during a
// scheduled window). Implementations must not mutate the input path.
type PathAdjuster func(dest string, p network.Path, now time.Duration) network.Path

// SetPathAdjuster installs adj as the engine's link-condition hook (nil
// removes it). The adjuster runs on both the estimation and execution
// paths, after the mobility loss adjustment. Cached base paths are
// dropped so the new conditions take effect immediately.
func (e *Engine) SetPathAdjuster(adj PathAdjuster) {
	e.pathAdjust = adj
	e.pathCache = nil
}

// engineMetrics holds the engine's interned metric handles, resolved once
// in Instrument. Handles are nil-safe, so an uninstrumented engine emits
// through them for free. Per-kind and per-destination counters are
// interned lazily on first use.
type engineMetrics struct {
	decisions          *telemetry.Counter
	candidates         *telemetry.HistogramHandle
	decisionNone       *telemetry.Counter
	failures           *telemetry.Counter
	executions         *telemetry.Counter
	totalMS            *telemetry.HistogramHandle
	bytesSent          *telemetry.Counter
	uplinkMS           *telemetry.HistogramHandle
	downlinkMS         *telemetry.HistogramHandle
	retries            *telemetry.Counter
	backoffMS          *telemetry.HistogramHandle
	breakerSkips       *telemetry.Counter
	breakerOpened      *telemetry.Counter
	resilientSuccess   *telemetry.Counter
	resilientExhausted *telemetry.Counter
	fallbacks          *telemetry.Counter
	degraded           *telemetry.Counter

	xedgeLane siteLane
	cloudLane siteLane

	dynamic map[string]*telemetry.Counter // full-name → handle, interned lazily
}

// siteLane is the per-trace-component (xedge / cloud) execution metric set.
type siteLane struct {
	submits     *telemetry.Counter
	execMS      *telemetry.HistogramHandle
	queueWaitMS *telemetry.HistogramHandle
}

// Instrument attaches a tracer and metrics registry (either may be nil).
// Estimation, decisions, and executions then emit `offload`, `network`,
// `xedge`, and `cloud` spans plus matching metrics. The fixed-name metrics
// resolve to interned handles here, once, so the execute loop never takes
// the registry lock.
func (e *Engine) Instrument(tr *trace.Tracer, reg *telemetry.Registry) {
	e.tracer = tr
	e.metrics = reg
	e.meter = network.NewMeter(reg)
	lane := func(comp string) siteLane {
		return siteLane{
			submits:     reg.CounterHandle(comp + ".submits"),
			execMS:      reg.HistogramHandle(comp + ".exec_ms"),
			queueWaitMS: reg.HistogramHandle(comp + ".queue_wait_ms"),
		}
	}
	e.m = engineMetrics{
		decisions:          reg.CounterHandle("offload.decisions"),
		candidates:         reg.HistogramHandle("offload.candidates"),
		decisionNone:       reg.CounterHandle("offload.decision.none"),
		failures:           reg.CounterHandle("offload.failures"),
		executions:         reg.CounterHandle("offload.executions"),
		totalMS:            reg.HistogramHandle("offload.total_ms"),
		bytesSent:          reg.CounterHandle("offload.bytes_sent"),
		uplinkMS:           reg.HistogramHandle("offload.uplink_ms"),
		downlinkMS:         reg.HistogramHandle("offload.downlink_ms"),
		retries:            reg.CounterHandle("offload.retries"),
		backoffMS:          reg.HistogramHandle("offload.backoff_ms"),
		breakerSkips:       reg.CounterHandle("offload.breaker.skips"),
		breakerOpened:      reg.CounterHandle("offload.breaker.opened"),
		resilientSuccess:   reg.CounterHandle("offload.resilient.success"),
		resilientExhausted: reg.CounterHandle("offload.resilient.exhausted"),
		fallbacks:          reg.CounterHandle("offload.fallbacks"),
		degraded:           reg.CounterHandle("offload.degraded"),
		xedgeLane:          lane("xedge"),
		cloudLane:          lane("cloud"),
		dynamic:            make(map[string]*telemetry.Counter),
	}
}

// SetRecorder attaches a flight recorder: circuit-breaker transitions and
// resilience-ladder rungs emit structured events stamped at the virtual
// time they happen. Install before traffic so lazily-created breakers pick
// up their hook; nil detaches (breakers already hooked keep emitting to the
// old recorder until resilience is reset).
func (e *Engine) SetRecorder(rec *obs.Recorder) { e.recorder = rec }

// Recorder returns the attached flight recorder (nil when detached).
func (e *Engine) Recorder() *obs.Recorder { return e.recorder }

// dynCounter interns a dynamically-named counter (prefix + key) on first
// use; subsequent bumps reuse the handle without rebuilding the name.
func (e *Engine) dynCounter(prefix, key string) *telemetry.Counter {
	if e.metrics == nil {
		return nil
	}
	name := prefix + key
	c, ok := e.m.dynamic[name]
	if !ok {
		c = e.metrics.CounterHandle(name)
		e.m.dynamic[name] = c
	}
	return c
}

// lane returns the interned metric set for a site kind's trace component.
func (e *Engine) lane(kind xedge.SiteKind) *siteLane {
	if kind == xedge.CloudSite {
		return &e.m.cloudLane
	}
	return &e.m.xedgeLane
}

// siteComponent maps a destination kind to its trace component lane:
// `cloud` for the remote tier, `xedge` for every edge-side site.
func siteComponent(kind xedge.SiteKind) string {
	if kind == xedge.CloudSite {
		return "cloud"
	}
	return "xedge"
}

// SetBandwidthBudget caps total uplink bytes Execute may spend. Zero or
// negative removes the cap. Spending resets.
func (e *Engine) SetBandwidthBudget(bytes float64) {
	if bytes <= 0 {
		e.budgetBytes, e.spentBytes = 0, 0
		return
	}
	e.budgetBytes = bytes
	e.spentBytes = 0
}

// BandwidthRemaining returns the unspent budget (Inf semantics: second
// return is false when no budget is set).
func (e *Engine) BandwidthRemaining() (float64, bool) {
	if e.budgetBytes <= 0 {
		return 0, false
	}
	remaining := e.budgetBytes - e.spentBytes
	if remaining < 0 {
		remaining = 0
	}
	return remaining, true
}

// BytesSpent returns uplink bytes consumed by executed offloads.
func (e *Engine) BytesSpent() float64 { return e.spentBytes }

// withinBudget reports whether an estimate's uplink fits the budget.
func (e *Engine) withinBudget(bytes float64) bool {
	if e.budgetBytes <= 0 {
		return true
	}
	return e.spentBytes+bytes <= e.budgetBytes
}

// NewEngine builds an engine over the vehicle's DSF, its mobility, and the
// candidate remote sites.
func NewEngine(dsf *vcu.DSF, mob geo.Mobility, sites []*xedge.Site) (*Engine, error) {
	if dsf == nil {
		return nil, fmt.Errorf("offload: nil DSF")
	}
	return &Engine{dsf: dsf, sites: sites, mob: mob, lossBitrateMbps: DefaultLossBitrateMbps}, nil
}

// SetLossBitrate overrides the stream bitrate (Mbps) assumed by the
// mobility loss adjustment. Non-positive restores the default. Cached
// base paths are dropped: the loss model re-evaluates at the new bitrate.
func (e *Engine) SetLossBitrate(mbps float64) {
	if mbps <= 0 {
		mbps = DefaultLossBitrateMbps
	}
	e.lossBitrateMbps = mbps
	e.pathCache = nil
}

// LossBitrate returns the bitrate the mobility loss adjustment assumes.
func (e *Engine) LossBitrate() float64 { return e.lossBitrateMbps }

// AddSite registers another candidate destination.
func (e *Engine) AddSite(s *xedge.Site) {
	if s != nil {
		e.sites = append(e.sites, s)
	}
}

// Sites returns the registered destinations.
func (e *Engine) Sites() []*xedge.Site {
	out := make([]*xedge.Site, len(e.sites))
	copy(out, e.sites)
	return out
}

// SetMobility updates the vehicle's mobility (speed changes degrade
// cellular transfer estimates). Cached base paths are dropped: the loss
// model re-evaluates at the new speed.
func (e *Engine) SetMobility(mob geo.Mobility) {
	e.mob = mob
	e.pathCache = nil
}

// mobilityAdjustedPath raises cellular-link loss to the Figure-2 model's
// expectation at the vehicle's current speed, shrinking effective goodput.
func (e *Engine) mobilityAdjustedPath(p network.Path) network.Path {
	bitrate := e.lossBitrateMbps
	if bitrate <= 0 {
		bitrate = DefaultLossBitrateMbps
	}
	adj := network.Path{Name: p.Name, Links: make([]network.LinkSpec, len(p.Links))}
	copy(adj.Links, p.Links)
	for i, l := range adj.Links {
		if l.Tech == network.LTE || l.Tech == network.FiveG {
			loss := network.ExpectedPacketLoss(e.mob.SpeedMS, bitrate)
			if loss > l.BaseLoss {
				l.BaseLoss = loss
				if l.BaseLoss > 0.95 {
					l.BaseLoss = 0.95
				}
				adj.Links[i] = l
			}
		}
	}
	return adj
}

// adjustedPath is the access path toward site as the vehicle experiences
// it at virtual time now: mobility-degraded cellular loss plus any
// externally-injected link conditions. The mobility-adjusted base is
// memoized per site (see pathCache); only the fault adjuster runs per
// call. Callers treat the returned path as read-only, as PathAdjuster
// implementations already must.
func (e *Engine) adjustedPath(site *xedge.Site, now time.Duration) network.Path {
	name := site.Name()
	p, ok := e.pathCache[name]
	if !ok {
		p = e.mobilityAdjustedPath(site.Access())
		if e.pathCache == nil {
			e.pathCache = make(map[string]network.Path)
		}
		e.pathCache[name] = p
	}
	if e.pathAdjust != nil {
		p = e.pathAdjust(name, p, now)
	}
	return p
}

// EstimateOnboard predicts full local execution via the DSF plan.
func (e *Engine) EstimateOnboard(dag *tasks.DAG, now time.Duration) Estimate {
	var span *trace.Span
	if e.tracer.Enabled() {
		span = e.tracer.StartSpanAt("offload", "offload.estimate", now,
			trace.String("dag", dag.Name), trace.String("dest", OnboardName))
	}
	plan, err := e.dsf.Plan(dag, now)
	if err != nil {
		if span != nil {
			span.SetAttr(trace.Bool("feasible", false), trace.String("reason", err.Error()))
		}
		span.FinishAt(now)
		return Estimate{Dest: OnboardName, Kind: OnboardName, SplitAfter: len(dag.Tasks),
			Feasible: false, Reason: err.Error()}
	}
	if span != nil {
		span.SetAttr(trace.Bool("feasible", true), trace.Dur("total", plan.Makespan))
		span.FinishAt(now + plan.Makespan)
	}
	return Estimate{
		Dest: OnboardName, Kind: OnboardName, SplitAfter: len(dag.Tasks),
		Compute:        plan.Makespan,
		Total:          plan.Makespan,
		VehicleEnergyJ: plan.EnergyJ,
		Feasible:       true,
	}
}

// EstimateSite predicts running the trailing portion of the DAG at a site,
// with the first splitAfter topo-order tasks executed on-board first.
// splitAfter 0 offloads everything.
func (e *Engine) EstimateSite(dag *tasks.DAG, site *xedge.Site, splitAfter int, now time.Duration) Estimate {
	est := Estimate{Dest: site.Name(), Kind: site.Kind().String(), SplitAfter: splitAfter}
	var span *trace.Span
	if e.tracer.Enabled() {
		span = e.tracer.StartSpanAt("offload", "offload.estimate", now,
			trace.String("dag", dag.Name), trace.String("dest", site.Name()),
			trace.String("kind", est.Kind), trace.Int("split", splitAfter))
		defer func() {
			span.SetAttr(trace.Bool("feasible", est.Feasible))
			if est.Reason != "" {
				span.SetAttr(trace.String("reason", est.Reason))
			}
			span.FinishAt(now + est.Total)
		}()
	}
	order, err := dag.TopoOrder()
	if err != nil {
		est.Reason = err.Error()
		return est
	}
	if splitAfter < 0 || splitAfter >= len(order) {
		est.Reason = fmt.Sprintf("split %d outside [0, %d)", splitAfter, len(order))
		return est
	}
	if !site.Reachable(e.mob.PositionAt(now)) {
		est.Reason = "out of coverage"
		return est
	}

	local := order[:splitAfter]
	remote := order[splitAfter:]
	cursor := now

	// Local prefix runs through the DSF.
	if len(local) > 0 {
		prefix := &tasks.DAG{Name: dag.Name + "-prefix", Tasks: cloneTasks(local)}
		plan, err := e.dsf.Plan(prefix, now)
		if err != nil {
			est.Reason = err.Error()
			return est
		}
		cursor = now + plan.Makespan
		est.VehicleEnergyJ += plan.EnergyJ
		est.Compute += plan.Makespan
	}

	// Uplink: ship the remote portion's external input — root inputs of
	// remote tasks plus intermediate outputs crossing the cut.
	upBytes := crossingBytes(dag, local, remote)
	path := e.adjustedPath(site, now)
	up, err := path.TransferTime(upBytes, network.Uplink)
	if err != nil {
		est.Reason = err.Error()
		return est
	}
	est.Uplink = up
	est.BytesSent = upBytes
	est.VehicleEnergyJ += RadioPowerW * up.Seconds()
	if e.tracer.Enabled() {
		e.tracer.SpanAt("network", "network.uplink", cursor, cursor+up,
			trace.String("path", path.Name), trace.F64("bytes", upBytes),
			trace.F64("loss", network.WorstLoss(path)))
	}
	cursor += up

	// Remote compute: topo-order submission estimate on site executors.
	computeStart := cursor
	finishOf := make(map[string]time.Duration, len(remote))
	for _, t := range remote {
		ready := cursor
		for _, dep := range t.Deps {
			if f, ok := finishOf[dep]; ok && f > ready {
				ready = f
			}
		}
		finish, err := site.EstimateExec(ready, t.Class, t.GFLOP)
		if err != nil {
			est.Reason = err.Error()
			return est
		}
		finishOf[t.ID] = finish
	}
	var remoteDone time.Duration
	for _, f := range finishOf {
		if f > remoteDone {
			remoteDone = f
		}
	}
	est.Compute += remoteDone - computeStart
	if e.tracer.Enabled() {
		comp := siteComponent(site.Kind())
		e.tracer.SpanAt(comp, comp+".exec", computeStart, remoteDone,
			trace.String("site", site.Name()), trace.Int("tasks", len(remote)))
	}

	// Downlink: results of sink tasks return to the vehicle.
	var downBytes float64
	for _, t := range remote {
		if len(dag.Successors(t.ID)) == 0 {
			downBytes += t.OutputBytes
		}
	}
	down, err := path.TransferTime(downBytes, network.Downlink)
	if err != nil {
		est.Reason = err.Error()
		return est
	}
	est.Downlink = down
	est.Total = (remoteDone - now) + down
	if e.tracer.Enabled() {
		e.tracer.SpanAt("network", "network.downlink", remoteDone, remoteDone+down,
			trace.String("path", path.Name), trace.F64("bytes", downBytes))
	}
	if !e.withinBudget(est.BytesSent) {
		remaining, _ := e.BandwidthRemaining()
		est.Reason = fmt.Sprintf("bandwidth budget exhausted (%.0f B needed, %.0f B left)",
			est.BytesSent, remaining)
		return est
	}
	est.Feasible = true
	return est
}

// crossingBytes sums the data that must move from vehicle to site: inputs
// of remote root tasks that come from outside the DAG, plus outputs of
// local tasks consumed by remote tasks.
func crossingBytes(dag *tasks.DAG, local, remote []*tasks.Task) float64 {
	localSet := make(map[string]bool, len(local))
	for _, t := range local {
		localSet[t.ID] = true
	}
	var total float64
	for _, t := range remote {
		if len(t.Deps) == 0 {
			total += t.InputBytes
			continue
		}
		for _, dep := range t.Deps {
			if localSet[dep] {
				depTask, _ := dag.Get(dep)
				total += depTask.OutputBytes
			}
		}
	}
	return total
}

func cloneTasks(ts []*tasks.Task) []*tasks.Task {
	ids := make(map[string]bool, len(ts))
	for _, t := range ts {
		ids[t.ID] = true
	}
	out := make([]*tasks.Task, 0, len(ts))
	for _, t := range ts {
		cp := *t
		// Drop dependencies outside the slice (they are satisfied inputs).
		var deps []string
		for _, d := range t.Deps {
			if ids[d] {
				deps = append(deps, d)
			}
		}
		cp.Deps = deps
		out = append(out, &cp)
	}
	return out
}

// Estimates evaluates on-board execution plus a full offload to every
// registered site, sorted by total latency (infeasible entries last).
func (e *Engine) Estimates(dag *tasks.DAG, now time.Duration) ([]Estimate, error) {
	if dag == nil {
		return nil, fmt.Errorf("offload: nil DAG")
	}
	if err := dag.Validate(); err != nil {
		return nil, err
	}
	out := []Estimate{e.EstimateOnboard(dag, now)}
	for _, s := range e.sites {
		out = append(out, e.EstimateSite(dag, s, 0, now))
	}
	sortEstimates(out)
	return out, nil
}

// Decide returns the best feasible estimate and the full comparison.
func (e *Engine) Decide(dag *tasks.DAG, now time.Duration) (Estimate, []Estimate, error) {
	span := e.tracer.StartSpanAt("offload", "offload.decide", now)
	if dag != nil {
		span.SetAttr(trace.String("dag", dag.Name))
	}
	defer span.FinishAt(now)
	all, err := e.Estimates(dag, now)
	if err != nil {
		span.SetAttr(trace.String("error", err.Error()))
		return Estimate{}, nil, err
	}
	span.SetAttr(trace.Int("candidates", len(all)))
	e.m.decisions.Inc()
	e.m.candidates.Observe(float64(len(all)))
	for _, est := range all {
		if est.Feasible {
			span.SetAttr(trace.String("chosen", est.Dest), trace.Dur("predicted", est.Total))
			e.dynCounter("offload.decision.", est.Kind).Inc()
			return est, all, nil
		}
	}
	span.SetAttr(trace.String("chosen", "none"))
	e.m.decisionNone.Inc()
	return Estimate{}, all, fmt.Errorf("offload: no feasible destination for %s", dag.Name)
}

// Execute commits the chosen estimate: on-board plans run through the DSF;
// remote destinations reserve site executors. It returns the realized
// completion time.
func (e *Engine) Execute(dag *tasks.DAG, est Estimate, now time.Duration) (time.Duration, error) {
	span := e.tracer.StartSpanAt("offload", "offload.execute", now,
		trace.String("dest", est.Dest), trace.String("kind", est.Kind))
	if dag != nil {
		span.SetAttr(trace.String("dag", dag.Name))
	}
	done, err := e.execute(dag, est, now)
	if err != nil {
		span.SetAttr(trace.String("error", err.Error()))
		span.FinishAt(now)
		// The failure mirror of offload.executions / offload.execution.<kind>:
		// per-destination failure counters feed the resilience policy's
		// evaluation and the chaos experiments.
		e.m.failures.Inc()
		if est.Dest != "" {
			e.dynCounter("offload.failure.", est.Dest).Inc()
		}
		return done, err
	}
	span.FinishAt(done)
	e.m.executions.Inc()
	e.dynCounter("offload.execution.", est.Kind).Inc()
	e.m.totalMS.ObserveDuration(done - now)
	if est.Dest != OnboardName {
		e.m.bytesSent.Add(est.BytesSent)
		e.m.uplinkMS.ObserveDuration(est.Uplink)
		e.m.downlinkMS.ObserveDuration(est.Downlink)
	}
	return done, nil
}

// execute is the uninstrumented body of Execute.
func (e *Engine) execute(dag *tasks.DAG, est Estimate, now time.Duration) (time.Duration, error) {
	if !est.Feasible {
		return 0, fmt.Errorf("offload: cannot execute infeasible estimate for %s", est.Dest)
	}
	if est.Dest == OnboardName {
		plan, err := e.dsf.Run(dag, now)
		if err != nil {
			return 0, err
		}
		return now + plan.Makespan, nil
	}
	if !e.withinBudget(est.BytesSent) {
		return 0, fmt.Errorf("offload: bandwidth budget exhausted for %s", est.Dest)
	}
	var site *xedge.Site
	for _, s := range e.sites {
		if s.Name() == est.Dest {
			site = s
			break
		}
	}
	if site == nil {
		return 0, fmt.Errorf("offload: unknown destination %q", est.Dest)
	}
	order, err := dag.TopoOrder()
	if err != nil {
		return 0, err
	}
	if est.SplitAfter > 0 {
		prefix := &tasks.DAG{Name: dag.Name + "-prefix", Tasks: cloneTasks(order[:est.SplitAfter])}
		plan, err := e.dsf.Run(prefix, now)
		if err != nil {
			return 0, err
		}
		now += plan.Makespan
	}
	path := e.adjustedPath(site, now)
	if e.tracer.Enabled() {
		e.tracer.SpanAt("network", "network.uplink", now, now+est.Uplink,
			trace.String("path", path.Name), trace.F64("bytes", est.BytesSent),
			trace.F64("loss", network.WorstLoss(path)))
	}
	e.meter.RecordTransfer(path, est.BytesSent, network.Uplink, est.Uplink)
	now += est.Uplink
	comp := siteComponent(site.Kind())
	ln := e.lane(site.Kind())
	finishOf := make(map[string]time.Duration)
	var last time.Duration = now
	var downBytes float64
	for _, t := range order[est.SplitAfter:] {
		ready := now
		for _, dep := range t.Deps {
			if f, ok := finishOf[dep]; ok && f > ready {
				ready = f
			}
		}
		start, finish, err := site.Submit(ready, t.Class, t.GFLOP)
		if err != nil {
			return 0, err
		}
		finishOf[t.ID] = finish
		if finish > last {
			last = finish
		}
		if len(dag.Successors(t.ID)) == 0 {
			downBytes += t.OutputBytes
		}
		if e.tracer.Enabled() {
			e.tracer.SpanAt(comp, comp+".task", start, finish,
				trace.String("task", t.ID), trace.String("site", site.Name()),
				trace.Dur("queue_wait", start-ready))
		}
		ln.submits.Inc()
		ln.execMS.ObserveDuration(finish - start)
		ln.queueWaitMS.ObserveDuration(start - ready)
	}
	if e.tracer.Enabled() {
		e.tracer.SpanAt("network", "network.downlink", last, last+est.Downlink,
			trace.String("path", path.Name), trace.F64("bytes", downBytes))
	}
	e.meter.RecordTransfer(path, downBytes, network.Downlink, est.Downlink)
	// Charge the budget only once the execution has fully succeeded: a
	// failed prefix plan or site submission must not burn bandwidth.
	e.spentBytes += est.BytesSent
	return last + est.Downlink, nil
}

func sortEstimates(ests []Estimate) {
	sort.SliceStable(ests, func(i, j int) bool {
		if ests[i].Feasible != ests[j].Feasible {
			return ests[i].Feasible
		}
		return ests[i].Total < ests[j].Total
	})
}

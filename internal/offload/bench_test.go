package offload

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/tasks"
	"repro/internal/telemetry"
	"repro/internal/vcu"
	"repro/internal/xedge"
)

// benchWorld mirrors testWorld for benchmarks: a vehicle DSF, an in-range
// RSU, and the cloud.
func benchWorld(b *testing.B, speedMS float64) *Engine {
	b.Helper()
	m, err := vcu.DefaultVCU()
	if err != nil {
		b.Fatal(err)
	}
	dsf, err := vcu.NewDSF(m, vcu.GreedyEFT{})
	if err != nil {
		b.Fatal(err)
	}
	road, err := geo.NewRoad(10000)
	if err != nil {
		b.Fatal(err)
	}
	rsu, err := xedge.NewRSU(geo.Station{ID: "rsu-0", Kind: geo.RSU, Pos: geo.Point{X: 100}, Radius: 50000})
	if err != nil {
		b.Fatal(err)
	}
	cl, err := xedge.NewCloud()
	if err != nil {
		b.Fatal(err)
	}
	eng, err := NewEngine(dsf, geo.Mobility{Road: road, SpeedMS: speedMS}, []*xedge.Site{rsu, cl})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkDecide measures one full destination comparison (onboard + RSU +
// cloud estimates, sorted) — the per-invocation planning cost.
func BenchmarkDecide(b *testing.B) {
	eng := benchWorld(b, 15)
	dag := tasks.ALPR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Decide(dag, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecideExecute measures the instrumented decide+execute loop with
// live telemetry — the macro hot path of every fleet experiment.
func BenchmarkDecideExecute(b *testing.B) {
	eng := benchWorld(b, 15)
	eng.Instrument(nil, telemetry.NewRegistry())
	dag := tasks.ALPR()
	now := time.Duration(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, _, err := eng.Decide(dag, now)
		if err != nil {
			b.Fatal(err)
		}
		done, err := eng.Execute(dag, est, now)
		if err != nil {
			b.Fatal(err)
		}
		if done > now {
			now = done
		}
		now += 50 * time.Millisecond
	}
}

package offload

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/tasks"
	"repro/internal/trace"
	"repro/internal/xedge"
)

// Policy configures the engine's resilient execution path (paper §III,
// §IV-C: services must keep meeting deadlines when RSUs vanish behind the
// vehicle, links degrade at speed, and edge servers fail). Zero fields
// take the defaults documented per knob; DefaultPolicy returns the tuned
// baseline used by the E14 chaos sweep.
type Policy struct {
	// MaxAttempts bounds tries per destination, first attempt included
	// (default 3).
	MaxAttempts int
	// BackoffBase is the wait before the first retry (default 50ms). The
	// wait grows by BackoffFactor per retry (default 2.0), capped at
	// BackoffMax (default 800ms). Backoff is deterministic — no jitter —
	// and is charged against the caller's deadline in virtual time.
	BackoffBase   time.Duration
	BackoffFactor float64
	BackoffMax    time.Duration
	// BreakerThreshold consecutive failures open a destination's circuit
	// breaker (default 3); BreakerCooldown is the open interval before a
	// half-open probe (default 2s). Breakers are timed on the virtual
	// clock.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// DegradeFactor, in (0, 1), enables the last rung of the graceful
	// degradation ladder: when even on-board execution would miss the
	// deadline, run a compressed model variant with GFLOP and I/O bytes
	// scaled by this factor (0 disables; DefaultPolicy uses 0.5).
	DegradeFactor float64
}

// DefaultPolicy returns the baseline resilience configuration.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:      3,
		BackoffBase:      50 * time.Millisecond,
		BackoffFactor:    2,
		BackoffMax:       800 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  2 * time.Second,
		DegradeFactor:    0.5,
	}
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 50 * time.Millisecond
	}
	if p.BackoffFactor < 1 {
		p.BackoffFactor = 2
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 800 * time.Millisecond
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 3
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 2 * time.Second
	}
	return p
}

// backoff returns the deterministic wait after the attempt-th failed try.
func (p Policy) backoff(attempt int) time.Duration {
	d := float64(p.BackoffBase)
	for i := 1; i < attempt; i++ {
		d *= p.BackoffFactor
		if d >= float64(p.BackoffMax) {
			return p.BackoffMax
		}
	}
	if d > float64(p.BackoffMax) {
		d = float64(p.BackoffMax)
	}
	return time.Duration(d)
}

// Outcome records how a resilient execution concluded.
type Outcome struct {
	// Dest is the destination that ultimately completed the DAG ("" when
	// execution was exhausted without success).
	Dest string `json:"dest"`
	// Attempts counts Execute calls made, across all destinations.
	Attempts int `json:"attempts"`
	// Retries counts backoff waits taken (attempts beyond the first per
	// destination).
	Retries int `json:"retries"`
	// Fallbacks counts destination switches; FellBackTo names the final
	// destination when it differs from the chosen one.
	Fallbacks  int    `json:"fallbacks"`
	FellBackTo string `json:"fellBackTo,omitempty"`
	// Degraded reports that the compressed model variant ran.
	Degraded bool `json:"degraded"`
	// BreakerSkips counts destinations skipped because their circuit
	// breaker rejected traffic.
	BreakerSkips int `json:"breakerSkips"`
	// DeadlineMet is true when the work completed by the caller's
	// absolute deadline (always true when no deadline was given).
	DeadlineMet bool `json:"deadlineMet"`
}

// SetResilience enables the resilient execution path with a copy of pol
// (see ExecuteResilient); nil disables it and discards breaker state.
func (e *Engine) SetResilience(pol *Policy) {
	if pol == nil {
		e.policy = nil
		e.breakers = nil
		return
	}
	p := pol.withDefaults()
	e.policy = &p
	e.breakers = make(map[string]*Breaker)
}

// Resilience returns the active policy (nil when disabled).
func (e *Engine) Resilience() *Policy { return e.policy }

// BreakerState reports the circuit breaker state for a destination as of
// virtual time now. The boolean is false when no breaker exists yet (no
// traffic, or resilience disabled).
func (e *Engine) BreakerState(dest string, now time.Duration) (BreakerState, bool) {
	b, ok := e.breakers[dest]
	if !ok {
		return BreakerClosed, false
	}
	return b.State(now), true
}

// breakerFor returns (creating if needed) the breaker guarding dest. New
// breakers are hooked to the flight recorder so every open/half-open/close
// transition leaves a structured event.
func (e *Engine) breakerFor(dest string) *Breaker {
	b, ok := e.breakers[dest]
	if !ok {
		b = NewBreaker(e.policy.BreakerThreshold, e.policy.BreakerCooldown)
		if e.recorder.Enabled() {
			rec, dest := e.recorder, dest
			b.OnChange(func(from, to BreakerState, now time.Duration) {
				sev := obs.SevInfo
				if to == BreakerOpen {
					sev = obs.SevWarn
				}
				rec.Emit(now, "offload", sev, "breaker."+to.String(),
					obs.String("dest", dest), obs.String("from", from.String()))
			})
		}
		e.breakers[dest] = b
	}
	return b
}

// DegradedDAG returns a compressed-model variant of dag: every task's
// GFLOP and I/O bytes scaled by factor (the pruning/quantization latency
// model of §IV-E). The input DAG is not mutated.
func DegradedDAG(dag *tasks.DAG, factor float64) *tasks.DAG {
	out := &tasks.DAG{Name: dag.Name + "-degraded", Tasks: make([]*tasks.Task, 0, len(dag.Tasks))}
	for _, t := range dag.Tasks {
		cp := *t
		cp.GFLOP *= factor
		cp.InputBytes *= factor
		cp.OutputBytes *= factor
		cp.Deps = append([]string(nil), t.Deps...)
		out.Tasks = append(out.Tasks, &cp)
	}
	return out
}

// siteByName resolves a destination to its registered site.
func (e *Engine) siteByName(name string) *xedge.Site {
	for _, s := range e.sites {
		if s.Name() == name {
			return s
		}
	}
	return nil
}

// ExecuteResilient commits the chosen estimate under the engine's
// resilience policy: failed remote executions are retried with
// deterministic exponential backoff (charged against the absolute
// virtual-time deadline; 0 means none), destinations whose breaker is
// open are skipped, and when a destination is exhausted the engine walks
// the graceful-degradation ladder — next-best feasible estimate, then
// on-board DSF execution, optionally on a compressed model variant. It
// returns the realized completion time plus an Outcome record. With no
// policy installed it behaves exactly like Execute (one attempt, no
// fallback).
//
// Phase contract: ExecuteResilient is a commit-step API — the remote
// ladder (remoteLadder) calls Site.Submit and charges the bandwidth
// budget, so it belongs to the single-threaded commit phase of an
// epoch-barrier fleet round. The one exception is a decision that chose
// the vehicle itself: when est.Local() is true the remote ladder never
// runs — the graceful-degradation ladder only ever walks *toward* the
// vehicle (onboardRung) — so the whole call touches vehicle-local state
// only and may run inside the parallel decision phase. The decision step
// itself (Decide/Estimates) never mutates shared sites.
func (e *Engine) ExecuteResilient(dag *tasks.DAG, est Estimate, now, deadline time.Duration) (time.Duration, Outcome, error) {
	if e.policy == nil {
		done, err := e.Execute(dag, est, now)
		out := Outcome{Attempts: 1}
		if err == nil {
			out.Dest = est.Dest
			out.DeadlineMet = deadline <= 0 || done <= deadline
		}
		return done, out, err
	}
	pol := *e.policy
	span := e.tracer.StartSpanAt("offload", "offload.resilient", now,
		trace.String("chosen", est.Dest))
	if dag != nil {
		span.SetAttr(trace.String("dag", dag.Name))
	}
	if deadline > 0 {
		span.SetAttr(trace.Dur("deadline", deadline-now))
	}
	out := Outcome{}
	finishSpan := func(end time.Duration, err error) {
		span.SetAttr(trace.Int("attempts", out.Attempts),
			trace.Int("fallbacks", out.Fallbacks),
			trace.Int("breaker_skips", out.BreakerSkips),
			trace.Bool("degraded", out.Degraded),
			trace.String("dest", out.Dest))
		if err != nil {
			span.SetAttr(trace.String("error", err.Error()))
		}
		span.FinishAt(end)
	}

	t := now
	if done, dest, ok := e.remoteLadder(dag, est, &t, deadline, &out, pol); ok {
		out.Dest = dest
		if dest != est.Dest {
			out.FellBackTo = dest
			if e.recorder.Enabled() {
				e.recorder.Emit(t, "offload", obs.SevInfo, "resilient.fallback",
					obs.String("dag", dag.Name), obs.String("from", est.Dest),
					obs.String("to", dest))
			}
		}
		out.DeadlineMet = deadline <= 0 || done <= deadline
		e.recordResilient(out, true)
		finishSpan(done, nil)
		return done, out, nil
	}
	if done, ok := e.onboardRung(dag, t, deadline, pol, &out); ok {
		out.Dest = OnboardName
		if est.Dest != OnboardName {
			out.FellBackTo = OnboardName
			out.Fallbacks++
			if e.recorder.Enabled() {
				e.recorder.Emit(t, "offload", obs.SevWarn, "resilient.onboard",
					obs.String("dag", dag.Name), obs.String("from", est.Dest),
					obs.Bool("degraded", out.Degraded))
			}
		}
		out.DeadlineMet = deadline <= 0 || done <= deadline
		e.recordResilient(out, true)
		finishSpan(done, nil)
		return done, out, nil
	}
	err := fmt.Errorf("offload: resilient execution exhausted for %s after %d attempts",
		dag.Name, out.Attempts)
	if e.recorder.Enabled() {
		e.recorder.Emit(t, "offload", obs.SevError, "resilient.exhausted",
			obs.String("dag", dag.Name), obs.Int("attempts", out.Attempts))
	}
	e.recordResilient(out, false)
	finishSpan(t, err)
	return 0, out, err
}

// remoteLadder walks the remote rungs of the degradation ladder — the
// chosen site, then next-best feasible re-estimates, each under the
// bounded retry loop — advancing *t by backoff waits. It mutates shared
// sites (Submit, budget charges) and therefore belongs to the commit
// phase. A decision that chose on-board execution skips it entirely.
func (e *Engine) remoteLadder(dag *tasks.DAG, est Estimate, t *time.Duration, deadline time.Duration, out *Outcome, pol Policy) (time.Duration, string, bool) {
	tried := map[string]bool{}
	cand := est
	for hop := 0; hop <= len(e.sites) && cand.Dest != OnboardName; hop++ {
		tried[cand.Dest] = true
		done, ok := e.tryRemote(dag, cand, t, deadline, out, pol)
		if ok {
			return done, cand.Dest, true
		}
		next, found := e.nextRemote(dag, *t, tried)
		if !found {
			break
		}
		out.Fallbacks++
		cand = next
	}
	return 0, "", false
}

// onboardRung is the final, vehicle-local rung of the ladder: on-board
// DSF execution, on a compressed model variant when the deadline demands
// it. It never touches shared sites — the property that lets an
// epoch-barrier fleet complete on-board-chosen invocations inside the
// parallel decision phase.
func (e *Engine) onboardRung(dag *tasks.DAG, t, deadline time.Duration, pol Policy, out *Outcome) (time.Duration, bool) {
	runDag := dag
	ob := e.EstimateOnboard(dag, t)
	if ob.Feasible && deadline > 0 && t+ob.Total > deadline &&
		pol.DegradeFactor > 0 && pol.DegradeFactor < 1 {
		dd := DegradedDAG(dag, pol.DegradeFactor)
		if alt := e.EstimateOnboard(dd, t); alt.Feasible {
			runDag, ob = dd, alt
			out.Degraded = true
			e.m.degraded.Inc()
			if e.recorder.Enabled() {
				e.recorder.Emit(t, "offload", obs.SevWarn, "resilient.degraded",
					obs.String("dag", dag.Name), obs.F64("factor", pol.DegradeFactor))
			}
		}
	}
	if !ob.Feasible {
		return 0, false
	}
	out.Attempts++
	done, err := e.Execute(runDag, ob, t)
	if err != nil {
		return 0, false
	}
	return done, true
}

// tryRemote runs the bounded retry loop for one remote candidate,
// advancing *t by each backoff. It reports success with the completion
// time; on false the candidate is exhausted (failures, breaker, deadline,
// or lost feasibility).
func (e *Engine) tryRemote(dag *tasks.DAG, cand Estimate, t *time.Duration, deadline time.Duration, out *Outcome, pol Policy) (time.Duration, bool) {
	site := e.siteByName(cand.Dest)
	if site == nil {
		return 0, false
	}
	br := e.breakerFor(cand.Dest)
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		if !br.Allow(*t) {
			out.BreakerSkips++
			e.m.breakerSkips.Inc()
			e.dynCounter("offload.breaker.skip.", cand.Dest).Inc()
			return 0, false
		}
		out.Attempts++
		opensBefore := br.Opens()
		done, err := e.Execute(dag, cand, *t)
		if err == nil {
			br.RecordSuccess(*t)
			return done, true
		}
		br.RecordFailure(*t)
		if br.Opens() > opensBefore {
			e.m.breakerOpened.Inc()
			e.dynCounter("offload.breaker.open.", cand.Dest).Inc()
		}
		if attempt == pol.MaxAttempts {
			return 0, false
		}
		wait := pol.backoff(attempt)
		*t += wait
		out.Retries++
		e.m.retries.Inc()
		e.m.backoffMS.ObserveDuration(wait)
		if deadline > 0 && *t >= deadline {
			return 0, false
		}
		// Conditions moved during the backoff (coverage, queues, faults):
		// refresh the estimate; an infeasible refresh ends this rung.
		fresh := e.EstimateSite(dag, site, cand.SplitAfter, *t)
		if !fresh.Feasible {
			return 0, false
		}
		cand = fresh
	}
	return 0, false
}

// nextRemote picks the best feasible remote destination not yet tried.
func (e *Engine) nextRemote(dag *tasks.DAG, t time.Duration, tried map[string]bool) (Estimate, bool) {
	ests, err := e.Estimates(dag, t)
	if err != nil {
		return Estimate{}, false
	}
	for _, cand := range ests {
		if !cand.Feasible || cand.Dest == OnboardName || tried[cand.Dest] {
			continue
		}
		return cand, true
	}
	return Estimate{}, false
}

// recordResilient emits the outcome-level resilience metrics.
func (e *Engine) recordResilient(out Outcome, ok bool) {
	if ok {
		e.m.resilientSuccess.Inc()
	} else {
		e.m.resilientExhausted.Inc()
	}
	if out.Fallbacks > 0 {
		e.m.fallbacks.Add(float64(out.Fallbacks))
	}
}

// Package geo models the physical world OpenVDAP vehicles move through: a
// road corridor, vehicle mobility along it, and the placement/coverage of
// cellular base stations and roadside units (RSUs).
//
// Distances are in meters, speeds in meters per second. Helper conversions
// for the paper's MPH figures are provided.
package geo

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// MetersPerMile converts statute miles to meters.
const MetersPerMile = 1609.344

// MPH converts miles-per-hour to meters-per-second, the unit used by the
// mobility model. The paper's drive tests were at 35 and 70 MPH.
func MPH(v float64) float64 { return v * MetersPerMile / 3600 }

// Point is a 2-D position in meters.
type Point struct {
	X float64
	Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// StationKind distinguishes infrastructure node types.
type StationKind int

const (
	// BaseStation is a cellular tower (LTE/5G backhaul to the cloud).
	BaseStation StationKind = iota + 1
	// RSU is a roadside unit reachable over DSRC/5G; an XEdge host.
	RSU
	// TrafficSignal is a signal-mounted XEdge host with a small radius.
	TrafficSignal
)

// String returns a short human-readable name for the station kind.
func (k StationKind) String() string {
	switch k {
	case BaseStation:
		return "base-station"
	case RSU:
		return "rsu"
	case TrafficSignal:
		return "traffic-signal"
	default:
		return fmt.Sprintf("station-kind(%d)", int(k))
	}
}

// Station is an infrastructure node with a coverage radius.
type Station struct {
	ID     string
	Kind   StationKind
	Pos    Point
	Radius float64 // coverage radius in meters
}

// Covers reports whether p falls within the station's coverage disk.
func (s Station) Covers(p Point) bool { return s.Pos.Dist(p) <= s.Radius }

// Road is a straight corridor of the given length with stations placed
// along it. The paper's Detroit drive test is modeled as such a corridor.
type Road struct {
	Length   float64 // meters
	stations []Station
}

// NewRoad returns a road of the given length. Length must be positive.
func NewRoad(length float64) (*Road, error) {
	if length <= 0 {
		return nil, fmt.Errorf("geo: road length must be positive, got %v", length)
	}
	return &Road{Length: length}, nil
}

// AddStation places a station on the road. Stations are kept sorted by X
// so coverage queries are cheap.
func (r *Road) AddStation(s Station) {
	r.stations = append(r.stations, s)
	sort.Slice(r.stations, func(i, j int) bool { return r.stations[i].Pos.X < r.stations[j].Pos.X })
}

// PlaceStations uniformly places n stations of the given kind and radius
// along the road, offset laterally by offY. IDs are prefix-0..prefix-(n-1).
// It returns the stations placed.
func (r *Road) PlaceStations(n int, kind StationKind, radius, offY float64, prefix string) []Station {
	if n <= 0 {
		return nil
	}
	placed := make([]Station, 0, n)
	spacing := r.Length / float64(n)
	for i := 0; i < n; i++ {
		s := Station{
			ID:     fmt.Sprintf("%s-%d", prefix, i),
			Kind:   kind,
			Pos:    Point{X: spacing/2 + float64(i)*spacing, Y: offY},
			Radius: radius,
		}
		r.AddStation(s)
		placed = append(placed, s)
	}
	return placed
}

// Stations returns a copy of all stations on the road.
func (r *Road) Stations() []Station {
	out := make([]Station, len(r.stations))
	copy(out, r.stations)
	return out
}

// StationsOfKind returns the stations of one kind, in X order.
func (r *Road) StationsOfKind(kind StationKind) []Station {
	var out []Station
	for _, s := range r.stations {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// CoveringStations returns all stations whose coverage includes p.
func (r *Road) CoveringStations(p Point) []Station {
	return r.CoveringStationsInto(p, nil)
}

// CoveringStationsInto appends every station whose coverage includes p to
// buf and returns the extended slice. Callers on per-round hot paths pass
// a reused buffer (typically buf[:0]) so coverage queries allocate nothing
// in steady state; CoveringStations is the allocating convenience form.
func (r *Road) CoveringStationsInto(p Point, buf []Station) []Station {
	for _, s := range r.stations {
		if s.Covers(p) {
			buf = append(buf, s)
		}
	}
	return buf
}

// CoverageCells partitions stations into connected components of
// overlapping coverage disks: two stations share a cell when their disks
// intersect (center distance <= sum of radii), directly or transitively.
// Zero-radius stations cover nothing and are each their own cell. The
// returned groups hold indices into the input slice; groups are ordered by
// smallest member index and members ascend within a group, so the
// partition is deterministic for a deterministic input order. Fleet
// executors use these cells as interaction domains: offload commits to
// sites in different cells cannot contend for the same coverage area.
func CoverageCells(stations []Station) [][]int {
	n := len(stations)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for i := 0; i < n; i++ {
		if stations[i].Radius <= 0 {
			continue
		}
		for j := i + 1; j < n; j++ {
			if stations[j].Radius <= 0 {
				continue
			}
			if stations[i].Pos.Dist(stations[j].Pos) <= stations[i].Radius+stations[j].Radius {
				ri, rj := find(i), find(j)
				if ri != rj {
					if rj < ri {
						ri, rj = rj, ri
					}
					parent[rj] = ri
				}
			}
		}
	}
	groupOf := make(map[int]int, n)
	var cells [][]int
	for i := 0; i < n; i++ {
		root := find(i)
		g, ok := groupOf[root]
		if !ok {
			g = len(cells)
			groupOf[root] = g
			cells = append(cells, nil)
		}
		cells[g] = append(cells[g], i)
	}
	return cells
}

// NearestStation returns the closest station of the given kind and whether
// one exists.
func (r *Road) NearestStation(p Point, kind StationKind) (Station, bool) {
	best := -1
	bestD := math.Inf(1)
	for i, s := range r.stations {
		if s.Kind != kind {
			continue
		}
		if d := s.Pos.Dist(p); d < bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return Station{}, false
	}
	return r.stations[best], true
}

// Mobility describes a vehicle moving along the road at constant speed,
// wrapping at the end of the corridor (so arbitrarily long experiments work
// on a finite road).
type Mobility struct {
	Road    *Road
	SpeedMS float64 // meters per second; 0 means parked
	StartX  float64 // position at t=0
	LaneY   float64 // lateral offset
}

// PositionAt returns the vehicle position at virtual time t.
func (m Mobility) PositionAt(t time.Duration) Point {
	if m.Road == nil || m.Road.Length <= 0 {
		return Point{X: m.StartX, Y: m.LaneY}
	}
	x := m.StartX + m.SpeedMS*t.Seconds()
	x = math.Mod(x, m.Road.Length)
	if x < 0 {
		x += m.Road.Length
	}
	return Point{X: x, Y: m.LaneY}
}

// DwellTime returns how long the vehicle remains inside one station's
// coverage chord at its current speed. For a parked vehicle it returns a
// very large duration. The chord is computed through the vehicle's lane.
func (m Mobility) DwellTime(s Station) time.Duration {
	dy := math.Abs(s.Pos.Y - m.LaneY)
	if dy >= s.Radius {
		return 0
	}
	chord := 2 * math.Sqrt(s.Radius*s.Radius-dy*dy)
	if m.SpeedMS <= 0 {
		return time.Duration(math.MaxInt64 / 2)
	}
	return time.Duration(chord / m.SpeedMS * float64(time.Second))
}

// HandoffRate returns the expected number of coverage handoffs per second
// given the station spacing of the provided kind. Parked vehicles hand off
// at rate 0.
func (m Mobility) HandoffRate(kind StationKind) float64 {
	if m.Road == nil || m.SpeedMS <= 0 {
		return 0
	}
	stations := m.Road.StationsOfKind(kind)
	if len(stations) == 0 {
		return 0
	}
	spacing := m.Road.Length / float64(len(stations))
	if spacing <= 0 {
		return 0
	}
	return m.SpeedMS / spacing
}

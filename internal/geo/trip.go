package geo

import (
	"fmt"
	"time"
)

// Leg is one constant-speed stretch of a trip.
type Leg struct {
	// SpeedMS is the cruise speed (0 = stopped at a light / parked).
	SpeedMS float64
	// Duration is how long the leg lasts.
	Duration time.Duration
}

// Trip is a piecewise-constant speed profile along a road — the drive
// pattern real scenarios need (urban stop-and-go, highway cruise) instead
// of a single fixed speed. Past the last leg the vehicle continues at the
// final leg's speed.
type Trip struct {
	Road   *Road
	StartX float64
	LaneY  float64
	Legs   []Leg
}

// Validate reports configuration errors.
func (t *Trip) Validate() error {
	if t.Road == nil {
		return fmt.Errorf("geo: trip has no road")
	}
	if len(t.Legs) == 0 {
		return fmt.Errorf("geo: trip has no legs")
	}
	for i, leg := range t.Legs {
		if leg.SpeedMS < 0 {
			return fmt.Errorf("geo: leg %d has negative speed", i)
		}
		if leg.Duration <= 0 {
			return fmt.Errorf("geo: leg %d has non-positive duration", i)
		}
	}
	return nil
}

// Duration returns the total planned trip time.
func (t *Trip) Duration() time.Duration {
	var total time.Duration
	for _, leg := range t.Legs {
		total += leg.Duration
	}
	return total
}

// legAt returns the active leg and the time already spent in it.
func (t *Trip) legAt(at time.Duration) (Leg, time.Duration) {
	var elapsed time.Duration
	for _, leg := range t.Legs {
		if at < elapsed+leg.Duration {
			return leg, at - elapsed
		}
		elapsed += leg.Duration
	}
	last := t.Legs[len(t.Legs)-1]
	return last, last.Duration // fully consumed; caller adds overshoot
}

// SpeedAt returns the vehicle speed at trip time `at`.
func (t *Trip) SpeedAt(at time.Duration) float64 {
	if at < 0 {
		at = 0
	}
	leg, _ := t.legAt(at)
	return leg.SpeedMS
}

// DistanceAt returns meters traveled by trip time `at`.
func (t *Trip) DistanceAt(at time.Duration) float64 {
	if at < 0 {
		return 0
	}
	var dist float64
	var elapsed time.Duration
	for _, leg := range t.Legs {
		if at <= elapsed {
			break
		}
		span := leg.Duration
		if at-elapsed < span {
			span = at - elapsed
		}
		dist += leg.SpeedMS * span.Seconds()
		elapsed += leg.Duration
	}
	if at > elapsed {
		// Past the plan: continue at the final speed.
		dist += t.Legs[len(t.Legs)-1].SpeedMS * (at - elapsed).Seconds()
	}
	return dist
}

// PositionAt returns the vehicle position at trip time `at`, wrapping at
// the road end like Mobility.
func (t *Trip) PositionAt(at time.Duration) Point {
	if t.Road == nil || t.Road.Length <= 0 {
		return Point{X: t.StartX, Y: t.LaneY}
	}
	x := t.StartX + t.DistanceAt(at)
	wrapped := x - float64(int(x/t.Road.Length))*t.Road.Length
	if wrapped < 0 {
		wrapped += t.Road.Length
	}
	return Point{X: wrapped, Y: t.LaneY}
}

// MobilityAt returns the constant-speed Mobility equivalent to the trip's
// state at time `at` — the bridge into APIs that take a Mobility (the
// offload engine, DDI, HD-map prefetch).
func (t *Trip) MobilityAt(at time.Duration) Mobility {
	pos := t.PositionAt(at)
	return Mobility{
		Road:    t.Road,
		SpeedMS: t.SpeedAt(at),
		StartX:  pos.X - t.SpeedAt(at)*at.Seconds(), // so PositionAt(at) matches
		LaneY:   t.LaneY,
	}
}

// CommuteTrip returns a representative urban-to-highway profile: stopped,
// urban crawl, arterial, highway, then arterial again.
func CommuteTrip(road *Road) *Trip {
	return &Trip{
		Road: road,
		Legs: []Leg{
			{SpeedMS: 0, Duration: 30 * time.Second},
			{SpeedMS: MPH(15), Duration: 2 * time.Minute},
			{SpeedMS: MPH(35), Duration: 3 * time.Minute},
			{SpeedMS: MPH(70), Duration: 5 * time.Minute},
			{SpeedMS: MPH(35), Duration: 2 * time.Minute},
		},
	}
}

package geo

import (
	"math"
	"testing"
	"time"
)

func testTrip(t *testing.T) *Trip {
	t.Helper()
	road, err := NewRoad(100000)
	if err != nil {
		t.Fatal(err)
	}
	return &Trip{
		Road: road,
		Legs: []Leg{
			{SpeedMS: 0, Duration: 10 * time.Second},
			{SpeedMS: 10, Duration: 20 * time.Second},
			{SpeedMS: 30, Duration: 10 * time.Second},
		},
	}
}

func TestTripValidate(t *testing.T) {
	road, _ := NewRoad(1000)
	bad := []*Trip{
		{Legs: []Leg{{SpeedMS: 1, Duration: time.Second}}},
		{Road: road},
		{Road: road, Legs: []Leg{{SpeedMS: -1, Duration: time.Second}}},
		{Road: road, Legs: []Leg{{SpeedMS: 1, Duration: 0}}},
	}
	for i, trip := range bad {
		if err := trip.Validate(); err == nil {
			t.Errorf("case %d: Validate passed", i)
		}
	}
	if err := testTrip(t).Validate(); err != nil {
		t.Fatalf("valid trip rejected: %v", err)
	}
}

func TestTripDuration(t *testing.T) {
	if got := testTrip(t).Duration(); got != 40*time.Second {
		t.Fatalf("Duration = %v", got)
	}
}

func TestTripSpeedAt(t *testing.T) {
	trip := testTrip(t)
	cases := map[time.Duration]float64{
		0:                0,
		5 * time.Second:  0,
		10 * time.Second: 10, // leg boundary belongs to the next leg
		15 * time.Second: 10,
		30 * time.Second: 30,
		39 * time.Second: 30,
		99 * time.Second: 30, // past the plan: final speed continues
	}
	for at, want := range cases {
		if got := trip.SpeedAt(at); got != want {
			t.Errorf("SpeedAt(%v) = %v, want %v", at, got, want)
		}
	}
	if trip.SpeedAt(-time.Second) != 0 {
		t.Fatal("negative time speed")
	}
}

func TestTripDistanceAt(t *testing.T) {
	trip := testTrip(t)
	cases := map[time.Duration]float64{
		0:                0,
		10 * time.Second: 0,   // stopped leg
		20 * time.Second: 100, // 10 s at 10 m/s
		30 * time.Second: 200, // full second leg
		40 * time.Second: 500, // + 10 s at 30
		50 * time.Second: 800, // overshoot continues at 30
	}
	for at, want := range cases {
		if got := trip.DistanceAt(at); math.Abs(got-want) > 1e-9 {
			t.Errorf("DistanceAt(%v) = %v, want %v", at, got, want)
		}
	}
	if trip.DistanceAt(-time.Second) != 0 {
		t.Fatal("negative time distance")
	}
}

func TestTripDistanceMonotone(t *testing.T) {
	trip := testTrip(t)
	prev := -1.0
	for at := time.Duration(0); at <= time.Minute; at += time.Second {
		d := trip.DistanceAt(at)
		if d < prev {
			t.Fatalf("distance decreased at %v: %v -> %v", at, prev, d)
		}
		prev = d
	}
}

func TestTripPositionWraps(t *testing.T) {
	road, _ := NewRoad(300)
	trip := &Trip{Road: road, Legs: []Leg{{SpeedMS: 10, Duration: time.Hour}}}
	p := trip.PositionAt(35 * time.Second) // 350 m -> wraps to 50
	if math.Abs(p.X-50) > 1e-9 {
		t.Fatalf("wrapped position = %v", p.X)
	}
}

func TestTripMobilityBridge(t *testing.T) {
	trip := testTrip(t)
	at := 25 * time.Second
	mob := trip.MobilityAt(at)
	if mob.SpeedMS != trip.SpeedAt(at) {
		t.Fatalf("bridge speed = %v", mob.SpeedMS)
	}
	tripPos := trip.PositionAt(at)
	mobPos := mob.PositionAt(at)
	if math.Abs(tripPos.X-mobPos.X) > 1e-6 {
		t.Fatalf("bridge position %v != trip position %v", mobPos.X, tripPos.X)
	}
}

func TestCommuteTripShape(t *testing.T) {
	road, _ := NewRoad(100000)
	trip := CommuteTrip(road)
	if err := trip.Validate(); err != nil {
		t.Fatal(err)
	}
	if trip.SpeedAt(0) != 0 {
		t.Fatal("commute does not start stopped")
	}
	if trip.SpeedAt(7*time.Minute) != MPH(70) {
		t.Fatalf("highway leg speed = %v", trip.SpeedAt(7*time.Minute))
	}
	if trip.Duration() != 12*time.Minute+30*time.Second {
		t.Fatalf("commute duration = %v", trip.Duration())
	}
}

package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMPHConversion(t *testing.T) {
	// 70 MPH ≈ 31.29 m/s
	got := MPH(70)
	if math.Abs(got-31.2928) > 0.01 {
		t.Fatalf("MPH(70) = %v, want ~31.29", got)
	}
	if MPH(0) != 0 {
		t.Fatal("MPH(0) != 0")
	}
}

func TestPointDist(t *testing.T) {
	a, b := Point{0, 0}, Point{3, 4}
	if d := a.Dist(b); d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d := a.Dist(a); d != 0 {
		t.Fatalf("self Dist = %v, want 0", d)
	}
}

func TestNewRoadValidation(t *testing.T) {
	if _, err := NewRoad(0); err == nil {
		t.Fatal("NewRoad(0) succeeded")
	}
	if _, err := NewRoad(-5); err == nil {
		t.Fatal("NewRoad(-5) succeeded")
	}
	r, err := NewRoad(1000)
	if err != nil || r.Length != 1000 {
		t.Fatalf("NewRoad(1000) = %v, %v", r, err)
	}
}

func TestPlaceStationsUniform(t *testing.T) {
	r, _ := NewRoad(10000)
	placed := r.PlaceStations(5, BaseStation, 1200, 30, "bs")
	if len(placed) != 5 {
		t.Fatalf("placed %d, want 5", len(placed))
	}
	// Spacing 2000m, first at 1000m.
	for i, s := range placed {
		want := 1000 + 2000*float64(i)
		if math.Abs(s.Pos.X-want) > 1e-9 {
			t.Fatalf("station %d at %v, want %v", i, s.Pos.X, want)
		}
		if s.Kind != BaseStation || s.Radius != 1200 || s.Pos.Y != 30 {
			t.Fatalf("station %d misconfigured: %+v", i, s)
		}
	}
	if got := len(r.StationsOfKind(BaseStation)); got != 5 {
		t.Fatalf("StationsOfKind = %d, want 5", got)
	}
	if got := r.PlaceStations(0, RSU, 100, 0, "r"); got != nil {
		t.Fatalf("PlaceStations(0) = %v, want nil", got)
	}
}

func TestCoveringStations(t *testing.T) {
	r, _ := NewRoad(10000)
	r.PlaceStations(5, BaseStation, 1500, 0, "bs")
	// At x=1000 (station 0 center), covered by station 0 and maybe 1 (at 3000, dist 2000 > 1500).
	cov := r.CoveringStations(Point{X: 1000})
	if len(cov) != 1 || cov[0].ID != "bs-0" {
		t.Fatalf("coverage at 1000 = %v, want [bs-0]", cov)
	}
	// At x=2000 midpoint, dist to both neighbors = 1000 < 1500: two covers.
	cov = r.CoveringStations(Point{X: 2000})
	if len(cov) != 2 {
		t.Fatalf("coverage at midpoint = %d stations, want 2", len(cov))
	}
}

func TestNearestStation(t *testing.T) {
	r, _ := NewRoad(10000)
	r.PlaceStations(5, BaseStation, 1500, 0, "bs")
	r.PlaceStations(2, RSU, 300, 0, "rsu")
	s, ok := r.NearestStation(Point{X: 900}, BaseStation)
	if !ok || s.ID != "bs-0" {
		t.Fatalf("nearest = %v, %v; want bs-0", s, ok)
	}
	if _, ok := r.NearestStation(Point{X: 0}, TrafficSignal); ok {
		t.Fatal("found traffic signal on road without any")
	}
}

func TestMobilityPositionWraps(t *testing.T) {
	r, _ := NewRoad(1000)
	m := Mobility{Road: r, SpeedMS: 10, StartX: 0}
	p := m.PositionAt(50 * time.Second) // 500m
	if math.Abs(p.X-500) > 1e-9 {
		t.Fatalf("pos at 50s = %v, want 500", p.X)
	}
	p = m.PositionAt(150 * time.Second) // 1500m wraps to 500
	if math.Abs(p.X-500) > 1e-9 {
		t.Fatalf("pos at 150s = %v, want 500 (wrapped)", p.X)
	}
}

func TestMobilityParked(t *testing.T) {
	r, _ := NewRoad(1000)
	m := Mobility{Road: r, SpeedMS: 0, StartX: 123, LaneY: 4}
	for _, d := range []time.Duration{0, time.Minute, time.Hour} {
		p := m.PositionAt(d)
		if p.X != 123 || p.Y != 4 {
			t.Fatalf("parked vehicle moved: %v", p)
		}
	}
}

func TestDwellTimeScalesInverselyWithSpeed(t *testing.T) {
	r, _ := NewRoad(10000)
	s := Station{ID: "bs", Kind: BaseStation, Pos: Point{X: 500, Y: 0}, Radius: 1000}
	slow := Mobility{Road: r, SpeedMS: MPH(35)}
	fast := Mobility{Road: r, SpeedMS: MPH(70)}
	ds, df := slow.DwellTime(s), fast.DwellTime(s)
	if ds <= df {
		t.Fatalf("dwell slow (%v) <= dwell fast (%v)", ds, df)
	}
	ratio := float64(ds) / float64(df)
	if math.Abs(ratio-2) > 0.01 {
		t.Fatalf("dwell ratio = %v, want ~2 (speed doubled)", ratio)
	}
}

func TestDwellTimeOutOfLane(t *testing.T) {
	s := Station{Pos: Point{X: 0, Y: 0}, Radius: 100}
	m := Mobility{SpeedMS: 10, LaneY: 150}
	if d := m.DwellTime(s); d != 0 {
		t.Fatalf("dwell for out-of-range lane = %v, want 0", d)
	}
}

func TestDwellTimeParkedIsHuge(t *testing.T) {
	s := Station{Pos: Point{X: 0, Y: 0}, Radius: 100}
	m := Mobility{SpeedMS: 0, LaneY: 0}
	if d := m.DwellTime(s); d < 24*time.Hour {
		t.Fatalf("parked dwell = %v, want effectively infinite", d)
	}
}

func TestHandoffRateProportionalToSpeed(t *testing.T) {
	r, _ := NewRoad(10000)
	r.PlaceStations(10, BaseStation, 800, 0, "bs") // spacing 1000m
	slow := Mobility{Road: r, SpeedMS: 10}
	fast := Mobility{Road: r, SpeedMS: 20}
	hs, hf := slow.HandoffRate(BaseStation), fast.HandoffRate(BaseStation)
	if math.Abs(hs-0.01) > 1e-9 {
		t.Fatalf("handoff rate = %v, want 0.01/s", hs)
	}
	if math.Abs(hf/hs-2) > 1e-9 {
		t.Fatalf("handoff rate did not double with speed: %v vs %v", hf, hs)
	}
	parked := Mobility{Road: r, SpeedMS: 0}
	if parked.HandoffRate(BaseStation) != 0 {
		t.Fatal("parked handoff rate != 0")
	}
}

func TestStationKindString(t *testing.T) {
	cases := map[StationKind]string{
		BaseStation:     "base-station",
		RSU:             "rsu",
		TrafficSignal:   "traffic-signal",
		StationKind(99): "station-kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", int(k), got, want)
		}
	}
}

func TestMobilityPositionNonNegativeProperty(t *testing.T) {
	r, _ := NewRoad(5000)
	if err := quick.Check(func(speed float64, secs uint16) bool {
		speed = math.Mod(math.Abs(speed), 50)
		m := Mobility{Road: r, SpeedMS: speed}
		p := m.PositionAt(time.Duration(secs) * time.Second)
		return p.X >= 0 && p.X < r.Length
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoveringStationsIntoMatchesAllocatingForm(t *testing.T) {
	r, _ := NewRoad(10000)
	r.PlaceStations(5, RSU, 800, 0, "rsu")
	r.PlaceStations(3, BaseStation, 2000, 0, "bs")
	buf := make([]Station, 0, 8)
	for x := 0.0; x <= 10000; x += 137 {
		p := Point{X: x}
		buf = r.CoveringStationsInto(p, buf[:0])
		alloc := r.CoveringStations(p)
		if len(buf) != len(alloc) {
			t.Fatalf("x=%v: into=%d alloc=%d", x, len(buf), len(alloc))
		}
		for i := range buf {
			if buf[i] != alloc[i] {
				t.Fatalf("x=%v station %d: %+v != %+v", x, i, buf[i], alloc[i])
			}
		}
	}
}

func TestCoveringStationsIntoAppends(t *testing.T) {
	r, _ := NewRoad(1000)
	r.PlaceStations(1, RSU, 1000, 0, "rsu")
	seed := []Station{{ID: "sentinel"}}
	out := r.CoveringStationsInto(Point{X: 500}, seed)
	if len(out) != 2 || out[0].ID != "sentinel" || out[1].ID != "rsu-0" {
		t.Fatalf("append semantics broken: %+v", out)
	}
}

// TestCoveringStationsIntoAllocFree pins the hot-path fix: with a
// pre-grown reused buffer, per-round coverage queries allocate nothing.
func TestCoveringStationsIntoAllocFree(t *testing.T) {
	r, _ := NewRoad(20000)
	r.PlaceStations(16, RSU, 600, 0, "rsu")
	r.PlaceStations(20, BaseStation, 900, 0, "bs")
	buf := make([]Station, 0, 64)
	p := Point{X: 9990}
	if n := testing.AllocsPerRun(100, func() {
		buf = r.CoveringStationsInto(p, buf[:0])
	}); n != 0 {
		t.Fatalf("CoveringStationsInto allocated %.1f per run with a reused buffer", n)
	}
}

func TestCoverageCells(t *testing.T) {
	stations := []Station{
		{ID: "a", Pos: Point{X: 0}, Radius: 100},    // overlaps b
		{ID: "b", Pos: Point{X: 150}, Radius: 100},  // overlaps a and c
		{ID: "c", Pos: Point{X: 340}, Radius: 100},  // overlaps b (transitively a)
		{ID: "d", Pos: Point{X: 1000}, Radius: 100}, // isolated
		{ID: "e", Pos: Point{X: 1050}, Radius: 0},   // zero radius: own cell even inside d's disk
	}
	cells := CoverageCells(stations)
	want := [][]int{{0, 1, 2}, {3}, {4}}
	if len(cells) != len(want) {
		t.Fatalf("cells = %v, want %v", cells, want)
	}
	for i := range want {
		if len(cells[i]) != len(want[i]) {
			t.Fatalf("cell %d = %v, want %v", i, cells[i], want[i])
		}
		for j := range want[i] {
			if cells[i][j] != want[i][j] {
				t.Fatalf("cell %d = %v, want %v", i, cells[i], want[i])
			}
		}
	}
}

// TestCoverageCellsDisjointPlacement: stations placed with disks smaller
// than half their spacing never merge — the layout the fleet scaling
// sweep relies on for one interaction domain per RSU.
func TestCoverageCellsDisjointPlacement(t *testing.T) {
	r, _ := NewRoad(20000)
	placed := r.PlaceStations(16, RSU, 300, 0, "rsu")
	cells := CoverageCells(placed)
	if len(cells) != 16 {
		t.Fatalf("disjoint disks merged: %d cells from 16 stations", len(cells))
	}
	merged := CoverageCells(r.PlaceStations(4, RSU, 20000, 0, "wide"))
	if len(merged) != 1 {
		t.Fatalf("corridor-wide disks split: %d cells from 4 stations", len(merged))
	}
}

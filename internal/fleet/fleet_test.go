package fleet

import (
	"testing"
	"time"

	"repro/internal/edgeos"
	"repro/internal/tasks"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Vehicles: 0}); err == nil {
		t.Fatal("zero vehicles accepted")
	}
}

func TestFleetSharedInfrastructure(t *testing.T) {
	f, err := New(Config{Vehicles: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Vehicles()) != 3 {
		t.Fatalf("vehicles = %d", len(f.Vehicles()))
	}
	// Every vehicle's engine references the same site objects.
	base := f.Vehicles()[0].Engine.Sites()
	for _, v := range f.Vehicles()[1:] {
		sites := v.Engine.Sites()
		if len(sites) != len(base) {
			t.Fatal("site lists differ")
		}
		for i := range sites {
			if sites[i] != base[i] {
				t.Fatal("sites are not shared objects")
			}
		}
	}
}

func TestInvokeAllRunsEveryVehicle(t *testing.T) {
	f, err := New(Config{Vehicles: 4})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := f.InvokeAll("kidnapper-search", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Invocations != 4 || rr.HangUps != 0 {
		t.Fatalf("round = %+v", rr)
	}
	if rr.Mean() <= 0 || rr.Max < rr.Mean() {
		t.Fatalf("latency stats = mean %v max %v", rr.Mean(), rr.Max)
	}
}

func TestInvokeAllUnknownService(t *testing.T) {
	f, _ := New(Config{Vehicles: 1})
	if _, err := f.InvokeAll("ghost", 0); err == nil {
		t.Fatal("unknown service invoked")
	}
}

// TestContentionRaisesLatency: a big fleet hammering a heavy DNN service
// must see worse shared-edge latency than a lone vehicle.
func TestContentionRaisesLatency(t *testing.T) {
	heavy := func() *edgeos.Service {
		return &edgeos.Service{
			Name:     "heavy-detect",
			Priority: edgeos.PrioritySafety,
			DAG:      &tasks.DAG{Name: "h", Tasks: []*tasks.Task{tasks.VehicleDetectionDNN()}},
			Image:    []byte("h"),
			// Offload-only so contention cannot hide on board.
			Pipelines: []edgeos.Pipeline{{Name: "offload-all", SplitAfter: 0}},
		}
	}
	run := func(n int) time.Duration {
		f, err := New(Config{Vehicles: n, RSUs: 1, Service: heavy})
		if err != nil {
			t.Fatal(err)
		}
		var last time.Duration
		for round := 0; round < 4; round++ {
			rr, err := f.InvokeAll("heavy-detect", 0)
			if err != nil {
				t.Fatal(err)
			}
			last = rr.Max
		}
		return last
	}
	solo := run(1)
	crowded := run(12)
	if crowded <= solo {
		t.Fatalf("12-vehicle max latency %v not above solo %v", crowded, solo)
	}
}

// TestElasticRoutesAroundContention: with free pipeline choice, a crowded
// fleet shifts work back on board instead of queueing at the edge.
func TestElasticRoutesAroundContention(t *testing.T) {
	f, err := New(Config{Vehicles: 12, RSUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	first, err := f.InvokeAll("kidnapper-search", 0)
	if err != nil {
		t.Fatal(err)
	}
	var last RoundResult
	for round := 1; round < 6; round++ {
		last, err = f.InvokeAll("kidnapper-search", 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.HangUps > 0 {
		t.Fatalf("hang-ups despite onboard fallback: %+v", last)
	}
	// Offload share must not grow as the edge saturates.
	if last.OffloadShare > first.OffloadShare+0.01 {
		t.Fatalf("offload share grew under contention: %.2f -> %.2f",
			first.OffloadShare, last.OffloadShare)
	}
	// And mean latency stays bounded by the onboard path (~54 ms) plus
	// slack.
	if last.Mean() > 150*time.Millisecond {
		t.Fatalf("mean latency %v despite elastic fallback", last.Mean())
	}
}

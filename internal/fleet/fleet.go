// Package fleet co-simulates multiple OpenVDAP vehicles sharing the same
// XEdge and cloud infrastructure. Each vehicle has its own VCU, DSF, and
// offloading engine, but the remote sites are shared objects, so one
// vehicle's offloads raise queueing delay for everyone — the multi-tenant
// contention the paper's edge architecture must survive.
//
// Concurrency: a Fleet and everything it owns (vehicles, engines, shared
// sites, road) belong to a single goroutine. Replication harnesses run
// one whole fleet per worker (see internal/runner) and merge telemetry
// afterwards; two goroutines must never invoke the same fleet. The one
// sanctioned form of intra-fleet parallelism is the epoch-barrier sharded
// executor (ShardedInvokeAll in sharded.go), which partitions vehicles
// into shard lanes for the read-only decision phase and returns to the
// fleet's single goroutine for the commit phase.
package fleet

import (
	"fmt"
	"time"

	"repro/internal/edgeos"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/offload"
	"repro/internal/sim"
	"repro/internal/tasks"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vcu"
	"repro/internal/xedge"
)

// Vehicle is one fleet member.
type Vehicle struct {
	Name    string
	Engine  *offload.Engine
	Manager *edgeos.ElasticManager
}

// Fleet is a set of vehicles over shared infrastructure.
type Fleet struct {
	road     *geo.Road
	sites    []*xedge.Site
	vehicles []*Vehicle
	injector *faults.Injector

	// shards is the lane count for ShardedInvokeAll (Config.Shards,
	// clamped to [1, vehicles]); shardSet is built lazily and reused
	// across rounds.
	shards   int
	shardSet []*Shard

	// lanes is the commit-phase worker count (Config.CommitLanes, >= 1);
	// partition and commit are the interaction-domain partition and the
	// commit scheduler's reusable state (domains.go), both built lazily.
	lanes     int
	partition *DomainPartition
	commit    commitState
	lastStats CommitStats

	// tele holds the per-vehicle telemetry lanes installed by
	// InstrumentSharded (nil when uninstrumented or instrumented with the
	// legacy shared-registry Instrument).
	tele *telemetryLanes

	// flight holds the per-vehicle flight-recorder lanes installed by
	// EnableFlightRecorder (nil when disabled).
	flight *flightLanes

	// Per-round working buffers, preallocated at vehicle count and reused
	// by every invokeAll / shardedInvokeAll round so the steady-state
	// invocation loop allocates nothing per round.
	prepBuf []*edgeos.PreparedInvocation
	resBuf  []edgeos.InvocationResult
	errBuf  []error
}

// Config parameterizes New.
type Config struct {
	// Vehicles is the fleet size (>= 1).
	Vehicles int
	// RoadLengthM and infrastructure layout.
	RoadLengthM  float64
	BaseStations int
	RSUs         int
	// SpeedMPH applies to every vehicle.
	SpeedMPH float64
	// SpeedJitterMPH, when positive, perturbs each vehicle's speed by a
	// uniform draw in [-jitter, +jitter] MPH from the fleet's RNG, so
	// replications with different seeds explore different traffic mixes.
	SpeedJitterMPH float64
	// RNG drives the fleet's random draws (speed jitter). Nil falls back
	// to a fixed-seed stream, keeping construction deterministic.
	RNG *sim.RNG
	// Policy is each vehicle's DSF policy. Nil means GreedyEFT.
	Policy vcu.Policy
	// Service is installed on every vehicle. Nil means the ALPR
	// kidnapper-search service with a 2 s deadline.
	Service func() *edgeos.Service
	// Resilience, when non-nil, installs the offload resilience policy
	// (retry + circuit breaker + degradation ladder) on every vehicle's
	// engine.
	Resilience *offload.Policy
	// Faults, when non-nil, compiles a deterministic fault plan over the
	// shared sites from the fleet RNG and attaches its injector: site
	// outages, link degradation, and transient execution faults. Drive it
	// with Fleet.Faults().AdvanceTo(now) between rounds.
	Faults *faults.PlanConfig
	// Shards is the lane count used by ShardedInvokeAll: vehicles are
	// partitioned into this many contiguous index ranges, each with its
	// own sim.Engine lane and RNG stream. Values outside [1, Vehicles]
	// are clamped. Shard count never changes results — sharded rounds are
	// byte-identical for any Shards value with the same seed — only how
	// many cores the decision phase can use. Zero means 1.
	Shards int
	// CommitLanes is the worker count for the commit phase's parallel
	// domain lanes (see domains.go): offload commits to disjoint
	// interaction domains run concurrently, byte-identical to the serial
	// commit for any value. Like Shards it only changes how many cores
	// the phase can use. Zero or one means the serial commit.
	CommitLanes int
	// RSURadiusM sets the RSU coverage radius. Zero keeps the historical
	// default — RSUs cover the whole corridor, making contention (not
	// coverage) the variable under study, at the cost of every RSU
	// landing in one interaction domain. Scaling experiments set a radius
	// below half the RSU spacing so each RSU anchors its own domain.
	RSURadiusM float64
}

func (c Config) withDefaults() Config {
	if c.RoadLengthM == 0 {
		c.RoadLengthM = 20000
	}
	if c.BaseStations == 0 {
		c.BaseStations = 20
	}
	if c.RSUs == 0 {
		c.RSUs = 4
	}
	if c.SpeedMPH == 0 {
		c.SpeedMPH = 35
	}
	if c.Policy == nil {
		c.Policy = vcu.GreedyEFT{}
	}
	if c.Service == nil {
		c.Service = func() *edgeos.Service {
			return &edgeos.Service{
				Name:     "kidnapper-search",
				Priority: edgeos.PriorityInteractive,
				Deadline: 2 * time.Second,
				DAG:      tasks.ALPR(),
				Image:    []byte("a3"),
			}
		}
	}
	return c
}

// New assembles the fleet: shared road, shared RSU/cloud sites, and one
// full vehicle stack per member, spaced evenly along the corridor.
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.Vehicles < 1 {
		return nil, fmt.Errorf("fleet: need at least one vehicle, got %d", cfg.Vehicles)
	}
	road, err := geo.NewRoad(cfg.RoadLengthM)
	if err != nil {
		return nil, err
	}
	road.PlaceStations(cfg.BaseStations, geo.BaseStation, 900, 0, "bs")
	// By default RSUs cover the whole corridor so contention, not
	// coverage, is the variable under study; RSURadiusM narrows the disks
	// (one interaction domain per coverage cell, see domains.go).
	rsuRadius := cfg.RoadLengthM
	if cfg.RSURadiusM > 0 {
		rsuRadius = cfg.RSURadiusM
	}
	road.PlaceStations(cfg.RSUs, geo.RSU, rsuRadius, 0, "rsu")
	sites, err := xedge.PlaceAlongRoad(road)
	if err != nil {
		return nil, err
	}
	cl, err := xedge.NewCloud()
	if err != nil {
		return nil, err
	}
	sites = append(sites, cl)

	f := &Fleet{road: road, sites: sites}
	rng := cfg.RNG
	if rng == nil {
		rng = sim.NewStream(1, 0)
	}
	spacing := cfg.RoadLengthM / float64(cfg.Vehicles)
	for i := 0; i < cfg.Vehicles; i++ {
		m, err := vcu.DefaultVCU()
		if err != nil {
			return nil, err
		}
		dsf, err := vcu.NewDSF(m, cfg.Policy)
		if err != nil {
			return nil, err
		}
		speed := cfg.SpeedMPH
		if cfg.SpeedJitterMPH > 0 {
			speed += rng.Uniform(-cfg.SpeedJitterMPH, cfg.SpeedJitterMPH)
			if speed < 5 {
				speed = 5
			}
		}
		mob := geo.Mobility{Road: road, SpeedMS: geo.MPH(speed), StartX: float64(i) * spacing}
		eng, err := offload.NewEngine(dsf, mob, sites)
		if err != nil {
			return nil, err
		}
		mgr, err := edgeos.NewElasticManager(eng, edgeos.MinLatency)
		if err != nil {
			return nil, err
		}
		if err := mgr.Register(cfg.Service()); err != nil {
			return nil, err
		}
		if cfg.Resilience != nil {
			pol := *cfg.Resilience
			eng.SetResilience(&pol)
		}
		f.vehicles = append(f.vehicles, &Vehicle{
			Name:    fmt.Sprintf("cav-%d", i),
			Engine:  eng,
			Manager: mgr,
		})
	}
	if cfg.Faults != nil {
		// The plan is compiled after all vehicle draws so the fault stream
		// forks from a fixed point of the fleet RNG — policy on/off fleets
		// built from equal seeds see identical worlds and identical faults.
		plan, err := faults.NewPlan(*cfg.Faults, rng.Fork(), f.sites)
		if err != nil {
			return nil, err
		}
		inj, err := faults.NewInjector(plan)
		if err != nil {
			return nil, err
		}
		inj.Attach()
		for _, v := range f.vehicles {
			v.Engine.SetPathAdjuster(inj.AdjustPath)
		}
		f.injector = inj
	}
	f.shards = cfg.Shards
	if f.shards < 1 {
		f.shards = 1
	}
	if f.shards > len(f.vehicles) {
		f.shards = len(f.vehicles)
	}
	f.lanes = cfg.CommitLanes
	if f.lanes < 1 {
		f.lanes = 1
	}
	f.prepBuf = make([]*edgeos.PreparedInvocation, len(f.vehicles))
	f.resBuf = make([]edgeos.InvocationResult, len(f.vehicles))
	f.errBuf = make([]error, len(f.vehicles))
	return f, nil
}

// Faults returns the fleet's fault injector, nil when no fault plan was
// configured.
func (f *Fleet) Faults() *faults.Injector { return f.injector }

// Vehicles returns fleet members in order.
func (f *Fleet) Vehicles() []*Vehicle {
	out := make([]*Vehicle, len(f.vehicles))
	copy(out, f.vehicles)
	return out
}

// Sites returns the shared infrastructure.
func (f *Fleet) Sites() []*xedge.Site { return f.sites }

// Instrument attaches a tracer and metrics registry to every vehicle's
// offload engine and elastic manager (either may be nil). The instruments
// share the fleet's single-goroutine ownership: replication harnesses give
// each worker its own fleet, registry, and tracer, then merge.
func (f *Fleet) Instrument(tr *trace.Tracer, reg *telemetry.Registry) {
	for _, v := range f.vehicles {
		v.Engine.Instrument(tr, reg)
		v.Manager.Instrument(tr, reg)
	}
	if f.injector != nil {
		f.injector.Instrument(tr, reg)
	}
}

// RoundResult aggregates one invocation round across the fleet.
type RoundResult struct {
	Invocations int
	HangUps     int
	Total       time.Duration
	Max         time.Duration
	// OffloadShare is the fraction of completed invocations that left the
	// vehicle.
	OffloadShare float64
	// Failures counts vehicles whose invocation errored outright (only
	// possible under fault injection; InvokeAllTolerant records these
	// instead of aborting the round).
	Failures int
	// DeadlineHits counts completed invocations that met the service
	// deadline; Fallbacks and Degraded count resilience-ladder outcomes.
	DeadlineHits int
	Fallbacks    int
	Degraded     int
}

// InvokeAll runs one invocation of the named service on every vehicle at
// virtual time now. All vehicles contend for the same shared sites. The
// round aborts on the first invocation error; under fault injection use
// InvokeAllTolerant instead.
func (f *Fleet) InvokeAll(service string, now time.Duration) (RoundResult, error) {
	return f.invokeAll(service, now, false)
}

// InvokeAllTolerant is InvokeAll for faulted worlds: a vehicle whose
// invocation errors (e.g. its chosen site dropped mid-submit and no
// resilience policy is installed) is counted in Failures and the round
// continues, so policy-on and policy-off runs stay comparable.
func (f *Fleet) InvokeAllTolerant(service string, now time.Duration) (RoundResult, error) {
	return f.invokeAll(service, now, true)
}

func (f *Fleet) invokeAll(service string, now time.Duration, tolerant bool) (RoundResult, error) {
	if f.injector != nil {
		f.injector.AdvanceTo(now)
	}
	for i, v := range f.vehicles {
		res, err := v.Manager.Invoke(service, now)
		if err != nil && !tolerant {
			// The erroring vehicle contributes nothing to the aborted
			// round; vehicles after it never invoke.
			return f.aggregate(i), fmt.Errorf("%s: %w", v.Name, err)
		}
		f.resBuf[i], f.errBuf[i] = res, err
	}
	return f.aggregate(len(f.vehicles)), nil
}

// aggregate folds the first n per-vehicle outcomes in the round buffers
// into a RoundResult, in vehicle-index order. Both executors share it, so
// a round's aggregation is a pure function of the (result, error) vector
// regardless of how the vector was produced.
func (f *Fleet) aggregate(n int) RoundResult {
	var rr RoundResult
	offloaded := 0
	for i := 0; i < n; i++ {
		rr.Invocations++
		if f.errBuf[i] != nil {
			rr.Failures++
			continue
		}
		res := f.resBuf[i]
		if res.HungUp {
			rr.HangUps++
			continue
		}
		rr.Total += res.Latency
		if res.Latency > rr.Max {
			rr.Max = res.Latency
		}
		if res.Dest != offload.OnboardName {
			offloaded++
		}
		if res.DeadlineMet {
			rr.DeadlineHits++
		}
		if res.FellBackTo != "" {
			rr.Fallbacks++
		}
		if res.Degraded {
			rr.Degraded++
		}
	}
	if done := rr.Invocations - rr.HangUps - rr.Failures; done > 0 {
		rr.OffloadShare = float64(offloaded) / float64(done)
	}
	return rr
}

// Mean returns the average completed-invocation latency of a round.
func (r RoundResult) Mean() time.Duration {
	done := r.Invocations - r.HangUps - r.Failures
	if done <= 0 {
		return 0
	}
	return r.Total / time.Duration(done)
}

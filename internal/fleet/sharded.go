// Sharded fleet execution: epoch-barrier parallel invocation rounds.
//
// ShardedInvokeAll partitions the fleet's vehicles into S contiguous
// shards and runs each round as two phases:
//
//   - Decision phase (parallel): every shard's goroutine walks its
//     vehicles through PrepareInvoke on the shard's own sim.Engine lane.
//     Shared sites are frozen (xedge.Site.Freeze) so the phase is
//     read-only with respect to shared state; invocations whose decision
//     stayed on the vehicle (PreparedInvocation.Local) commit right here,
//     touching only vehicle-local state.
//   - Commit phase: after the barrier, the remaining prepared invocations
//     — the ones that offload — commit with Site.Submit reservations,
//     queueing delays, and bandwidth-budget charges exactly as a
//     sequential canonical-vehicle-order walk would. With CommitLanes > 1
//     the phase runs as domain-partitioned parallel lanes plus a serial
//     residue lane (see domains.go); results stay byte-identical to the
//     serial commit. The phase always completes every prepared commit
//     (complete-all), then non-tolerant rounds report the first error in
//     canonical order.
//
// Determinism contract: results are byte-identical for any shard count.
// Three properties make that hold. (1) Decisions read only epoch-start
// shared state (frozen sites, fault cursors advanced once per epoch), so
// a vehicle's choice cannot depend on which shard a neighbor landed in.
// (2) Per-vehicle state (DSF, path caches, breakers, service stats)
// evolves identically because each vehicle's work happens exactly once
// per round, on whichever lane owns it. (3) Everything order-sensitive —
// site commits, telemetry lane merges, trace exports, aggregation — runs
// in vehicle-index order, never shard order. The shard-order float
// accumulation you would get from merging per-shard registries is why
// telemetry lanes are per-vehicle, not per-shard.
//
// Note the sharded executor's epoch semantics differ from the sequential
// InvokeAll within a round: sequentially, vehicle i's decision sees
// vehicles 0..i-1's commits; under epoch barriers every decision sees
// epoch-start state. Both are valid contention models; experiments pick
// one and stay with it. Sharded runs compare only against sharded runs
// (any S against any S, same seed).
package fleet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// shardStreamSeed roots the per-shard RNG streams. Shard streams exist
// for shard-local perturbation (e.g. jittered lane polling in future
// drivers); round logic must never let a draw from them influence
// simulation results, or shard count would stop being a free parameter —
// the differential tests pin exactly that.
const shardStreamSeed = 0x51A4D

// Shard is one lane of the sharded executor: a contiguous range of
// vehicle indices with its own virtual-time engine and RNG stream.
type Shard struct {
	// Index is the shard's position in [0, S).
	Index int
	// RNG is the shard's private stream (see shardStreamSeed).
	RNG *sim.RNG
	// Engine is the shard's virtual-time lane; decision-phase work for
	// the shard's vehicles is scheduled and drained on it.
	Engine *sim.Engine
	// Lo and Hi bound the shard's vehicle index range [Lo, Hi).
	Lo, Hi int
}

// Shards returns the fleet's shard lanes, building them on first use.
// Vehicles are partitioned into contiguous ranges as equal as possible
// (the first vehicles%S shards take one extra).
func (f *Fleet) Shards() []*Shard {
	if f.shardSet != nil {
		return f.shardSet
	}
	n, s := len(f.vehicles), f.shards
	base, rem := n/s, n%s
	lo := 0
	f.shardSet = make([]*Shard, 0, s)
	for i := 0; i < s; i++ {
		size := base
		if i < rem {
			size++
		}
		f.shardSet = append(f.shardSet, &Shard{
			Index:  i,
			RNG:    sim.NewStream(shardStreamSeed, uint64(i)),
			Engine: sim.NewEngine(shardStreamSeed + int64(i)),
			Lo:     lo,
			Hi:     lo + size,
		})
		lo += size
	}
	return f.shardSet
}

// telemetryLanes is the per-vehicle instrumentation behind sharded runs.
// Lanes are per vehicle — not per shard — because merge order must be a
// property of the fleet, not of the partition: merging in vehicle-index
// order gives the same float accumulation order and the same trace root
// order for every shard count.
type telemetryLanes struct {
	vehicleRegs []*telemetry.Registry
	vehicleTrcs []*trace.Tracer // all nil when tracing is off
	injReg      *telemetry.Registry
	injTrc      *trace.Tracer
}

// InstrumentSharded installs one telemetry registry (and, when withTrace
// is set, one tracer) per vehicle, plus a dedicated lane for the fault
// injector. Use this instead of Instrument for sharded execution: a
// single shared registry would interleave concurrent decision-phase
// emissions in scheduler order, which is race-safe but not
// shard-count-deterministic. Read the merged view with MergedTelemetry.
func (f *Fleet) InstrumentSharded(withTrace bool) {
	lanes := &telemetryLanes{
		vehicleRegs: make([]*telemetry.Registry, len(f.vehicles)),
		vehicleTrcs: make([]*trace.Tracer, len(f.vehicles)),
		injReg:      telemetry.NewRegistry(),
	}
	if withTrace {
		lanes.injTrc = trace.New(nil)
	}
	for i, v := range f.vehicles {
		lanes.vehicleRegs[i] = telemetry.NewRegistry()
		if withTrace {
			lanes.vehicleTrcs[i] = trace.New(nil)
		}
		v.Engine.Instrument(lanes.vehicleTrcs[i], lanes.vehicleRegs[i])
		v.Manager.Instrument(lanes.vehicleTrcs[i], lanes.vehicleRegs[i])
	}
	if f.injector != nil {
		f.injector.Instrument(lanes.injTrc, lanes.injReg)
	}
	f.tele = lanes
}

// MergedTelemetry merges the per-vehicle lanes into one registry and one
// tracer, in canonical order: the injector lane first, then vehicles by
// index. The merge order is independent of shard count, so the rendered
// registry and exported trace bytes are too. Without InstrumentSharded it
// returns empty instruments.
func (f *Fleet) MergedTelemetry() (*telemetry.Registry, *trace.Tracer) {
	reg := telemetry.NewRegistry()
	trc := trace.New(nil)
	if f.tele == nil {
		return reg, trc
	}
	reg.Merge(f.tele.injReg)
	trc.Merge(f.tele.injTrc)
	for i := range f.tele.vehicleRegs {
		reg.Merge(f.tele.vehicleRegs[i])
		trc.Merge(f.tele.vehicleTrcs[i])
	}
	return reg, trc
}

// flightLanes is the per-vehicle flight-recorder set, laned exactly like
// telemetryLanes and for the same reason: events emitted during the
// parallel decision phase must land on per-vehicle rings so the canonical
// merge (fleet lane, injector lane, vehicles by index) breaks
// same-timestamp ties identically for every shard count.
type flightLanes struct {
	capacity int
	fleet    *obs.Recorder // epoch-barrier phase markers
	inj      *obs.Recorder // fault outage windows
	vehicles []*obs.Recorder
}

// EnableFlightRecorder installs bounded per-vehicle event rings of the
// given capacity (obs.DefaultEventCapacity when non-positive) plus a fleet
// lane for commit-phase markers and an injector lane for outage windows.
// Call after New (so resilience breakers created by traffic pick up their
// transition hook) and read the merged log with MergedFlightRecorder.
func (f *Fleet) EnableFlightRecorder(capacity int) {
	lanes := &flightLanes{
		capacity: capacity,
		fleet:    obs.NewRecorder(capacity),
		inj:      obs.NewRecorder(capacity),
		vehicles: make([]*obs.Recorder, len(f.vehicles)),
	}
	for i, v := range f.vehicles {
		lanes.vehicles[i] = obs.NewRecorder(capacity)
		v.Engine.SetRecorder(lanes.vehicles[i])
	}
	if f.injector != nil {
		f.injector.SetRecorder(lanes.inj)
	}
	f.flight = lanes
}

// MergedFlightRecorder merges the flight-recorder lanes into one ring in
// canonical order — the fleet lane, the injector lane, then vehicles by
// index — sized to hold every retained event, so the merged log is
// identical for every shard count. Nil when EnableFlightRecorder was not
// called.
func (f *Fleet) MergedFlightRecorder() *obs.Recorder {
	if f.flight == nil {
		return nil
	}
	total := f.flight.fleet.Len() + f.flight.inj.Len()
	for _, r := range f.flight.vehicles {
		total += r.Len()
	}
	if total == 0 {
		total = 1
	}
	merged := obs.NewRecorder(total)
	merged.Merge(f.flight.fleet)
	merged.Merge(f.flight.inj)
	for _, r := range f.flight.vehicles {
		merged.Merge(r)
	}
	return merged
}

// WatchTelemetry registers the fleet's telemetry lanes with a sampler in
// canonical merge order (injector lane first, then vehicles by index), so
// sampled series accumulate cross-lane sums in a shard-count-independent
// order. Requires InstrumentSharded.
func (f *Fleet) WatchTelemetry(sp *obs.Sampler) error {
	if f.tele == nil {
		return fmt.Errorf("fleet: WatchTelemetry requires InstrumentSharded")
	}
	sp.Watch(f.tele.injReg)
	for _, reg := range f.tele.vehicleRegs {
		sp.Watch(reg)
	}
	return nil
}

// ShardedInvokeAll runs one epoch-barrier invocation round of the named
// service across the fleet at virtual time now (see the package-section
// comment at the top of this file for the phase structure and the
// determinism contract). Like InvokeAll it reports the first vehicle
// error in canonical order — but the whole round has already run by then
// (the commit phase completes every prepared commit so the round is
// reproducible for any lane count); only the returned aggregate stops at
// the erroring vehicle. Under fault injection use
// ShardedInvokeAllTolerant.
func (f *Fleet) ShardedInvokeAll(service string, now time.Duration) (RoundResult, error) {
	return f.shardedInvokeAll(service, now, false)
}

// ShardedInvokeAllTolerant is ShardedInvokeAll for faulted worlds:
// erroring vehicles are counted in Failures and the round continues.
func (f *Fleet) ShardedInvokeAllTolerant(service string, now time.Duration) (RoundResult, error) {
	return f.shardedInvokeAll(service, now, true)
}

func (f *Fleet) shardedInvokeAll(service string, now time.Duration, tolerant bool) (RoundResult, error) {
	shards := f.Shards()
	// Epoch boundary: the only injector mutation of the round (outage
	// transitions, availability flips, window-cursor advance).
	if f.injector != nil {
		f.injector.AdvanceTo(now)
	}
	for i := range f.prepBuf {
		f.prepBuf[i] = nil
		f.errBuf[i] = nil
	}

	// Decision phase: freeze shared sites, fan shards out, barrier.
	decisionStart := time.Now()
	for _, s := range f.sites {
		s.Freeze()
	}
	var wg sync.WaitGroup
	laneErrs := make([]error, len(shards))
	for si, sh := range shards {
		wg.Add(1)
		go func(si int, sh *Shard) {
			defer wg.Done()
			for i := sh.Lo; i < sh.Hi; i++ {
				i := i
				v := f.vehicles[i]
				sh.Engine.At(now, func() {
					p := v.Manager.PrepareInvoke(service, now)
					if p.Local() {
						// On-board decisions (and hang-ups and decision
						// errors) touch only vehicle-local state: finish
						// them here, inside the parallel phase.
						f.resBuf[i], f.errBuf[i] = v.Manager.CommitInvoke(p)
						return
					}
					f.prepBuf[i] = p
				})
			}
			laneErrs[si] = sh.Engine.RunUntil(now)
		}(si, sh)
	}
	wg.Wait()
	for _, s := range f.sites {
		s.Unfreeze()
	}
	for _, err := range laneErrs {
		if err != nil {
			return RoundResult{}, fmt.Errorf("fleet: shard lane failed to drain: %w", err)
		}
	}

	decisionWall := time.Since(decisionStart)

	// Commit phase: apply shared-site interactions — in canonical order
	// per site, across domain lanes plus the serial residue lane (see
	// domains.go). Completes every prepared commit before any error
	// reporting, so the round's side effects are identical for any
	// (shards, lanes) combination even when a vehicle errors.
	commitStart := time.Now()
	f.commitPrepared(now)
	f.lastStats.DecisionWall = decisionWall
	f.lastStats.CommitWall = time.Since(commitStart)

	if !tolerant {
		for i, v := range f.vehicles {
			if f.errBuf[i] != nil {
				return f.aggregate(i), fmt.Errorf("%s: %w", v.Name, f.errBuf[i])
			}
		}
	}
	return f.aggregate(len(f.vehicles)), nil
}

package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/offload"
	"repro/internal/sim"
)

// laneConfig builds a clean-world fleet whose RSU disks are disjoint —
// one interaction domain per RSU plus the cloud singleton — so the
// commit phase actually fans out across domain lanes.
func laneConfig(vehicles, shards, lanes int, seed int64) Config {
	return Config{
		Vehicles:       vehicles,
		RSUs:           8,
		RSURadiusM:     1000, // spacing 2500 > 2*1000: disjoint disks
		SpeedJitterMPH: 10,
		RNG:            sim.NewStream(seed, 0),
		Shards:         shards,
		CommitLanes:    lanes,
	}
}

// laneObsRun drives rounds epochs with full instrumentation (telemetry,
// traces, flight recorder) and returns every determinism-relevant
// artifact.
func laneObsRun(t *testing.T, cfg Config, rounds int) ([]RoundResult, string, []byte, string) {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.InstrumentSharded(true)
	f.EnableFlightRecorder(4096)
	out := make([]RoundResult, 0, rounds)
	for r := 0; r < rounds; r++ {
		rr, err := f.ShardedInvokeAllTolerant("kidnapper-search", time.Duration(r)*400*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rr)
	}
	reg, trc := f.MergedTelemetry()
	chrome, err := trc.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	return out, reg.Render(), chrome, f.MergedFlightRecorder().RenderTable()
}

// TestLaneDifferentialAcrossLanesAndShards is the tentpole's contract:
// RoundResults, telemetry renders, trace bytes, and the flight-recorder
// export are byte-identical across commit lanes 1/2/4/7 at shards 1 and
// 4. 7 deliberately exceeds neither vehicle count nor domain count
// evenly.
func TestLaneDifferentialAcrossLanesAndShards(t *testing.T) {
	const vehicles, rounds, seed = 24, 5, 42
	baseRR, baseReg, baseChrome, baseFlight := laneObsRun(t, laneConfig(vehicles, 1, 1, seed), rounds)
	if !strings.Contains(baseFlight, "commit.lane.begin") {
		t.Fatalf("no per-lane commit markers recorded:\n%s", baseFlight)
	}
	var sawOffload bool
	for _, rr := range baseRR {
		if rr.OffloadShare > 0 {
			sawOffload = true
		}
	}
	if !sawOffload {
		t.Fatal("no round offloaded: the commit lanes were never exercised")
	}
	for _, shards := range []int{1, 4} {
		for _, lanes := range []int{1, 2, 4, 7} {
			if shards == 1 && lanes == 1 {
				continue
			}
			rr, reg, chrome, flight := laneObsRun(t, laneConfig(vehicles, shards, lanes, seed), rounds)
			if !reflect.DeepEqual(rr, baseRR) {
				t.Fatalf("shards=%d lanes=%d RoundResults diverged:\n got %+v\nwant %+v", shards, lanes, rr, baseRR)
			}
			if reg != baseReg {
				t.Fatalf("shards=%d lanes=%d merged telemetry diverged", shards, lanes)
			}
			if !bytes.Equal(chrome, baseChrome) {
				t.Fatalf("shards=%d lanes=%d Chrome trace bytes diverged", shards, lanes)
			}
			if flight != baseFlight {
				t.Fatalf("shards=%d lanes=%d flight-recorder table diverged:\n%s\nvs\n%s", shards, lanes, flight, baseFlight)
			}
		}
	}
}

// TestLaneDifferentialChaosWorld extends the contract to faulted,
// resilient fleets: every offload routes through the serial residue lane
// (the ladder may escape its destination), and output stays
// byte-identical for any lane count.
func TestLaneDifferentialChaosWorld(t *testing.T) {
	const vehicles, rounds, seed = 18, 5, 42
	run := func(lanes int) ([]RoundResult, string, string, CommitStats) {
		cfg := chaosConfig(vehicles, 3, seed)
		cfg.CommitLanes = lanes
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f.InstrumentSharded(true)
		f.EnableFlightRecorder(4096)
		var out []RoundResult
		for r := 0; r < rounds; r++ {
			rr, err := f.ShardedInvokeAllTolerant("kidnapper-search", time.Duration(r)*400*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, rr)
		}
		reg, _ := f.MergedTelemetry()
		return out, reg.Render(), f.MergedFlightRecorder().RenderTable(), f.LastCommitStats()
	}
	baseRR, baseReg, baseFlight, baseStats := run(1)
	if baseStats.Offloads == 0 {
		t.Fatal("chaos world never offloaded")
	}
	if baseStats.ResidueCommits != baseStats.Offloads || baseStats.DomainCommits != 0 {
		t.Fatalf("resilient vehicles must route through the residue lane: %+v", baseStats)
	}
	for _, lanes := range []int{2, 4, 7} {
		rr, reg, flight, stats := run(lanes)
		if !reflect.DeepEqual(rr, baseRR) {
			t.Fatalf("lanes=%d chaos RoundResults diverged", lanes)
		}
		if reg != baseReg {
			t.Fatalf("lanes=%d chaos telemetry diverged", lanes)
		}
		if flight != baseFlight {
			t.Fatalf("lanes=%d chaos flight log diverged:\n%s\nvs\n%s", lanes, flight, baseFlight)
		}
		if stats.ResidueCommits != stats.Offloads {
			t.Fatalf("lanes=%d: resilient commits escaped the residue lane: %+v", lanes, stats)
		}
	}
}

// TestLaneCommitStats pins the scheduler's routing in a clean world:
// non-resilient offloads ride domain lanes (no residue), multiple
// domains activate, and the worker count clamps to the active domains.
func TestLaneCommitStats(t *testing.T) {
	f, err := New(laneConfig(24, 2, 4, 7))
	if err != nil {
		t.Fatal(err)
	}
	f.InstrumentSharded(false)
	if _, err := f.ShardedInvokeAll("kidnapper-search", 0); err != nil {
		t.Fatal(err)
	}
	st := f.LastCommitStats()
	if st.Offloads == 0 {
		t.Fatal("no offloads")
	}
	if st.ResidueCommits != 0 {
		t.Fatalf("clean-world commits routed to residue: %+v", st)
	}
	if st.DomainCommits != st.Offloads {
		t.Fatalf("domain commits %d != offloads %d", st.DomainCommits, st.Offloads)
	}
	if st.ActiveDomains < 2 {
		t.Fatalf("expected multiple active domains, got %+v", st)
	}
	if st.Lanes < 2 || st.Lanes > 4 || st.Lanes > st.ActiveDomains {
		t.Fatalf("worker clamp wrong: %+v", st)
	}
	if st.Lookahead <= 0 {
		t.Fatalf("lookahead must be positive for real topologies: %+v", st)
	}
	if st.CommitWall <= 0 || st.DecisionWall <= 0 {
		t.Fatalf("phase walls not measured: %+v", st)
	}
}

// TestDomainPartition checks the geometry → domain mapping: disjoint RSU
// disks each get a domain, the cloud is a singleton, every site is owned
// exactly once, and the lookahead equals the minimum one-way access
// latency (DSRC RTT/2 here).
func TestDomainPartition(t *testing.T) {
	f, err := New(laneConfig(4, 1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	part := f.Domains()
	if got, want := len(part.Domains), 8+1; got != want {
		t.Fatalf("domains = %d, want %d (8 disjoint RSUs + cloud)", got, want)
	}
	owned := map[string]int{}
	for _, d := range part.Domains {
		if len(d.Sites) == 0 {
			t.Fatalf("empty domain %d (%s)", d.ID, d.Label)
		}
		for _, s := range d.Sites {
			owned[s.Name()]++
			if part.DomainOf(s.Name()) != d.ID {
				t.Fatalf("site %s maps to domain %d, listed under %d", s.Name(), part.DomainOf(s.Name()), d.ID)
			}
		}
	}
	for _, s := range f.Sites() {
		if owned[s.Name()] != 1 {
			t.Fatalf("site %s owned %d times", s.Name(), owned[s.Name()])
		}
	}
	cloud := part.DomainOf("cloud")
	if cloud < 0 || part.Domains[cloud].Label != "site:cloud" {
		t.Fatalf("cloud not a singleton domain: %+v", part.Domains)
	}
	var minOneWay time.Duration
	for i, s := range f.Sites() {
		if l := s.Access().RTT() / 2; i == 0 || l < minOneWay {
			minOneWay = l
		}
	}
	if part.Lookahead != minOneWay || part.Lookahead <= 0 {
		t.Fatalf("lookahead = %v, want min one-way latency %v", part.Lookahead, minOneWay)
	}
	if part.DomainOf("no-such-site") != -1 {
		t.Fatal("unknown site did not map to -1")
	}
}

// TestDomainPartitionOverlappingDisksMerge: the historical whole-corridor
// RSU radius collapses every RSU into one coverage-cell domain.
func TestDomainPartitionOverlappingDisksMerge(t *testing.T) {
	f, err := New(Config{Vehicles: 2, RSUs: 4}) // default radius = road length
	if err != nil {
		t.Fatal(err)
	}
	part := f.Domains()
	if got := len(part.Domains); got != 2 { // one merged cell + cloud
		t.Fatalf("domains = %d, want 2 (merged RSU cell + cloud)", got)
	}
	if len(part.Domains[0].Sites) != 4 {
		t.Fatalf("merged cell holds %d sites, want 4", len(part.Domains[0].Sites))
	}
}

// TestLaneRaceParallelCommit drives lanes > 1 fleets under `go test
// -race` (the make verify gate): domain lanes committing concurrently
// with the residue lane must be free of data races.
func TestLaneRaceParallelCommit(t *testing.T) {
	f, err := New(laneConfig(40, 4, 4, 11))
	if err != nil {
		t.Fatal(err)
	}
	f.InstrumentSharded(true)
	f.EnableFlightRecorder(2048)
	for r := 0; r < 6; r++ {
		if _, err := f.ShardedInvokeAll("kidnapper-search", time.Duration(r)*250*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if st := f.LastCommitStats(); st.Lanes < 2 {
		t.Fatalf("parallel path never engaged: %+v", st)
	}
}

// TestLaneResidueInterleavingWithForcedResidue mixes resilient vehicles
// (residue lane) with plain ones (domain lanes) in one fleet and checks
// the watermark interleave reproduces the serial commit exactly. The
// overlap is deliberate: residue vehicles' ladders may touch every site,
// so domain lanes must serialize around them.
func TestLaneResidueInterleavingWithForcedResidue(t *testing.T) {
	build := func(lanes int) *Fleet {
		f, err := New(laneConfig(30, 3, lanes, 5))
		if err != nil {
			t.Fatal(err)
		}
		// Every third vehicle gets a resilience policy → residue lane;
		// the rest commit on domain lanes. Same assignment for every lane
		// count, so worlds stay comparable.
		pol := offload.DefaultPolicy()
		for i, v := range f.Vehicles() {
			if i%3 == 0 {
				p := pol
				v.Engine.SetResilience(&p)
			}
		}
		f.InstrumentSharded(false)
		return f
	}
	run := func(lanes int) ([]RoundResult, string, CommitStats) {
		f := build(lanes)
		var out []RoundResult
		for r := 0; r < 5; r++ {
			rr, err := f.ShardedInvokeAll("kidnapper-search", time.Duration(r)*300*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, rr)
		}
		reg, _ := f.MergedTelemetry()
		return out, reg.Render(), f.LastCommitStats()
	}
	baseRR, baseReg, baseStats := run(1)
	if baseStats.ResidueCommits == 0 || baseStats.DomainCommits == 0 {
		t.Fatalf("want a genuine mix of residue and domain commits, got %+v", baseStats)
	}
	for _, lanes := range []int{2, 4, 7} {
		rr, reg, stats := run(lanes)
		if !reflect.DeepEqual(rr, baseRR) {
			t.Fatalf("lanes=%d mixed-lane RoundResults diverged", lanes)
		}
		if reg != baseReg {
			t.Fatalf("lanes=%d mixed-lane telemetry diverged", lanes)
		}
		if stats.ResidueCommits != baseStats.ResidueCommits {
			t.Fatalf("lanes=%d residue routing changed: %+v vs %+v", lanes, stats, baseStats)
		}
	}
}

// TestLaneOwnershipReleased: sites carry no commit-lane owner outside the
// parallel phase.
func TestLaneOwnershipReleased(t *testing.T) {
	f, err := New(laneConfig(16, 2, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	f.InstrumentSharded(false)
	if _, err := f.ShardedInvokeAll("kidnapper-search", 0); err != nil {
		t.Fatal(err)
	}
	if f.LastCommitStats().Lanes < 2 {
		t.Fatal("parallel path never engaged")
	}
	for _, s := range f.Sites() {
		if s.CommitOwner() != -1 {
			t.Fatalf("site %s still owned by lane %d after the round", s.Name(), s.CommitOwner())
		}
	}
}

// TestLanesClampAndSerialEquivalence: CommitLanes <= 1 and lane counts
// beyond the domain count both run and agree with the serial commit.
func TestLanesClampAndSerialEquivalence(t *testing.T) {
	run := func(lanes int) RoundResult {
		f, err := New(laneConfig(12, 2, lanes, 9))
		if err != nil {
			t.Fatal(err)
		}
		f.InstrumentSharded(false)
		rr, err := f.ShardedInvokeAll("kidnapper-search", 0)
		if err != nil {
			t.Fatal(err)
		}
		return rr
	}
	base := run(0)
	for _, lanes := range []int{1, 64} {
		if got := run(lanes); !reflect.DeepEqual(got, base) {
			t.Fatalf("lanes=%d diverged from serial: %+v vs %+v", lanes, got, base)
		}
	}
}

// Parallel commit lanes: domain-partitioned conservative commit.
//
// The epoch-barrier executor (sharded.go) historically serialised every
// shared-site interaction into one commit thread. This file breaks that
// bottleneck with a conservative (null-message style) parallel commit:
//
//   - Sites are partitioned once into interaction domains by geo coverage
//     cell: RSU-anchored sites whose coverage disks overlap (directly or
//     transitively) share a domain; position-independent sites (cloud,
//     neighbor vehicles) are singleton domains. Two sites in different
//     domains can never serve the same coverage area, so commits against
//     them touch disjoint shared state.
//   - Each epoch's prepared invocations are assigned to the domain of
//     their chosen destination site. A vehicle holds at most one prepared
//     invocation per epoch, so per-epoch vehicle sets across domains never
//     overlap, and per-site submission order within a domain remains
//     canonical vehicle-index order — exactly the serial schedule.
//   - Vehicles whose commit may escape its destination (a resilience
//     policy's retry/fallback ladder re-estimates across ALL sites and may
//     land anywhere) are routed to a canonical serial residue lane.
//     Domain lanes and the residue lane interleave through index
//     watermarks: a domain lane may commit vehicle i only when every
//     residue vehicle with index < i has committed, and vice versa. The
//     watermark order equals the serial order, so results are
//     byte-identical to the sequential commit for any lane count.
//   - The safe-window rule (sim.SafeWindow) gates lane advances on the
//     minimum inter-domain network latency: influence between domains
//     cannot propagate faster than the shortest one-way access path, so
//     lanes at a common epoch time may always advance when that lookahead
//     is positive. A non-positive lookahead (degenerate topology) forces
//     the serial path.
//
// Determinism: commit results, per-site submission order, telemetry,
// traces, and flight-recorder bytes are identical for every
// (shards, lanes) combination. Commit markers are emitted only by the
// coordinating goroutine, keyed by logical lane (= domain id, with -1
// for the residue lane), never by worker goroutine — worker count, like
// shard count, is invisible in output.
package fleet

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/xedge"
)

// Domain is one interaction domain: the sites of one geo coverage cell,
// or a singleton for a position-independent site.
type Domain struct {
	ID    int
	Label string
	Sites []*xedge.Site
}

// DomainPartition maps every shared site to exactly one interaction
// domain, plus the conservative lookahead bound between domains.
type DomainPartition struct {
	Domains []Domain
	// Lookahead is the minimum one-way access-path latency across all
	// sites: no commit in one domain can influence another domain's state
	// sooner than this. It feeds the sim.SafeWindow advance rule.
	Lookahead time.Duration
	byName    map[string]int
}

// DomainOf returns the domain id owning the named site, -1 when unknown.
func (dp *DomainPartition) DomainOf(site string) int {
	if id, ok := dp.byName[site]; ok {
		return id
	}
	return -1
}

// Domains returns the fleet's interaction-domain partition, built on
// first use from the shared sites' coverage geometry and reused across
// rounds (sites never move).
func (f *Fleet) Domains() *DomainPartition {
	if f.partition == nil {
		f.partition = partitionSites(f.road, f.sites)
	}
	return f.partition
}

// partitionSites builds the interaction-domain partition: coverage cells
// (geo.CoverageCells) over the anchored sites, singletons for
// position-independent ones, and the minimum one-way path latency as the
// safe-window lookahead.
func partitionSites(road *geo.Road, sites []*xedge.Site) *DomainPartition {
	dp := &DomainPartition{byName: make(map[string]int, len(sites))}
	var anchored []int
	var stations []geo.Station
	for i, s := range sites {
		if s.Station().Radius > 0 {
			anchored = append(anchored, i)
			stations = append(stations, s.Station())
		}
	}
	for _, cell := range geo.CoverageCells(stations) {
		d := Domain{ID: len(dp.Domains)}
		for _, k := range cell {
			site := sites[anchored[k]]
			d.Sites = append(d.Sites, site)
			dp.byName[site.Name()] = d.ID
		}
		d.Label = "cell:" + d.Sites[0].Name()
		if len(d.Sites) > 1 {
			d.Label += fmt.Sprintf("+%d", len(d.Sites)-1)
		}
		dp.Domains = append(dp.Domains, d)
	}
	for _, s := range sites {
		if s.Station().Radius > 0 {
			continue
		}
		dp.byName[s.Name()] = len(dp.Domains)
		dp.Domains = append(dp.Domains, Domain{
			ID:    len(dp.Domains),
			Label: "site:" + s.Name(),
			Sites: []*xedge.Site{s},
		})
	}
	for i, s := range sites {
		l := s.Access().RTT() / 2
		if i == 0 || l < dp.Lookahead {
			dp.Lookahead = l
		}
	}
	if road != nil {
		// Partition sanity, using the allocation-free coverage query: any
		// site-hosting station that covers another site's anchor point must
		// share its domain (coverage containment implies disk overlap, so
		// union-find must have merged them).
		buf := make([]geo.Station, 0, 8)
		for _, s := range sites {
			if s.Station().Radius <= 0 {
				continue
			}
			buf = road.CoveringStationsInto(s.Station().Pos, buf[:0])
			for _, st := range buf {
				if id, ok := dp.byName[st.ID]; ok && id != dp.byName[s.Name()] {
					panic(fmt.Sprintf("fleet: domain partition split overlapping coverage: %s (domain %d) covers %s's anchor (domain %d)",
						st.ID, id, s.Name(), dp.byName[s.Name()]))
				}
			}
		}
	}
	return dp
}

// CommitStats describes the last round's commit phase — scheduling
// reporting only; nothing here feeds back into simulation state.
type CommitStats struct {
	// Offloads counts prepared non-local invocations this round.
	Offloads int
	// DomainCommits and ResidueCommits split Offloads by lane kind.
	DomainCommits  int
	ResidueCommits int
	// ActiveDomains counts domains with pending commits this round.
	ActiveDomains int
	// Lanes is the worker count the commit phase actually used (1 =
	// serial path).
	Lanes int
	// Lookahead is the partition's safe-window bound.
	Lookahead time.Duration
	// DecisionWall and CommitWall are the wall-clock spans of the round's
	// two phases.
	DecisionWall time.Duration
	CommitWall   time.Duration
}

// LastCommitStats returns the scheduling report of the most recent
// sharded round.
func (f *Fleet) LastCommitStats() CommitStats { return f.lastStats }

// commitState holds the commit scheduler's reusable per-round buffers —
// lazily sized once, so steady-state rounds allocate nothing.
type commitState struct {
	domLists  [][]int // per-domain pending vehicle indices, ascending
	residue   []int   // residue-lane vehicle indices, ascending
	laneOf    []int   // per-vehicle routing: domain id, -1 residue, -2 none
	domWorker []int   // per-domain worker assignment (parallel rounds)
	order     []domainLoad
	workers   [][]int // per-worker merged vehicle indices, ascending
	coord     *commitCoord
	window    *sim.SafeWindow
}

type domainLoad struct{ domain, pending int }

// commitPrepared runs the commit phase over f.prepBuf at virtual time
// now: route prepared invocations to domain lanes or the serial residue
// lane, emit lane markers, and execute — in parallel when more than one
// worker lane is usable, serially otherwise. Every prepared invocation
// commits (complete-all semantics); error handling is the caller's
// canonical scan over errBuf afterwards. Returns the number committed.
func (f *Fleet) commitPrepared(now time.Duration) int {
	part := f.Domains()
	st := &f.commit
	nd := len(part.Domains)
	if st.laneOf == nil {
		st.domLists = make([][]int, nd)
		st.laneOf = make([]int, len(f.vehicles))
		st.domWorker = make([]int, nd)
	}
	for d := range st.domLists {
		st.domLists[d] = st.domLists[d][:0]
	}
	st.residue = st.residue[:0]

	offloads := 0
	for i, p := range f.prepBuf {
		if p == nil {
			st.laneOf[i] = -2
			continue
		}
		offloads++
		d := -1
		if f.vehicles[i].Engine.Resilience() == nil {
			// Non-resilient commits touch exactly their destination site.
			// The resilience ladder may retry elsewhere and reads every
			// site's queue when picking a fallback, so resilient vehicles
			// take the serial residue lane (the pre-lane behavior).
			d = part.DomainOf(p.Dest())
		}
		st.laneOf[i] = d
		if d < 0 {
			st.residue = append(st.residue, i)
		} else {
			st.domLists[d] = append(st.domLists[d], i)
		}
	}
	active := 0
	for d := range st.domLists {
		if len(st.domLists[d]) > 0 {
			active++
		}
	}
	workers := f.lanes
	if workers > active {
		workers = active
	}
	if workers < 1 || part.Lookahead <= 0 {
		workers = 1
	}

	// Markers: coordinator-only, logical-lane keyed (lane = domain id,
	// residue = -1), so the flight log is identical for any worker count.
	if f.flight != nil {
		f.flight.fleet.Emit(now, "fleet", obs.SevDebug, "commit.begin",
			obs.Int("offloads", offloads))
		for d := range st.domLists {
			if len(st.domLists[d]) == 0 {
				continue
			}
			f.flight.fleet.Emit(now, "fleet", obs.SevDebug, "commit.lane.begin",
				obs.Int("lane", d), obs.String("domain", part.Domains[d].Label),
				obs.Int("pending", len(st.domLists[d])))
		}
		if len(st.residue) > 0 {
			f.flight.fleet.Emit(now, "fleet", obs.SevDebug, "commit.lane.begin",
				obs.Int("lane", -1), obs.String("domain", "residue"),
				obs.Int("pending", len(st.residue)))
		}
	}

	if workers <= 1 {
		for i, p := range f.prepBuf {
			if p == nil {
				continue
			}
			f.prepBuf[i] = nil
			f.resBuf[i], f.errBuf[i] = f.vehicles[i].Manager.CommitInvoke(p)
		}
	} else {
		f.commitParallel(now, workers)
	}

	if f.flight != nil {
		for d := range st.domLists {
			if len(st.domLists[d]) == 0 {
				continue
			}
			f.flight.fleet.Emit(now, "fleet", obs.SevDebug, "commit.lane.end",
				obs.Int("lane", d), obs.String("domain", part.Domains[d].Label),
				obs.Int("committed", len(st.domLists[d])))
		}
		if len(st.residue) > 0 {
			f.flight.fleet.Emit(now, "fleet", obs.SevDebug, "commit.lane.end",
				obs.Int("lane", -1), obs.String("domain", "residue"),
				obs.Int("committed", len(st.residue)))
		}
		f.flight.fleet.Emit(now, "fleet", obs.SevDebug, "commit.end",
			obs.Int("committed", offloads))
	}
	f.lastStats = CommitStats{
		Offloads:       offloads,
		DomainCommits:  offloads - len(st.residue),
		ResidueCommits: len(st.residue),
		ActiveDomains:  active,
		Lanes:          workers,
		Lookahead:      part.Lookahead,
	}
	return offloads
}

// commitParallel executes one epoch's non-residue commits across worker
// lanes while the caller's goroutine walks the residue lane, coordinated
// by index watermarks (see the file comment). Workers own disjoint
// domain sets, each domain's sites are claimed via
// xedge.Site.BeginCommitPhase, and the safe window asserts the
// conservative advance rule before any lane commits.
func (f *Fleet) commitParallel(now time.Duration, workers int) {
	part := f.Domains()
	st := &f.commit

	// Deterministic load balance: heaviest domain first onto the least
	// loaded worker (ties: lower domain id, lower worker index).
	st.order = st.order[:0]
	for d, l := range st.domLists {
		if len(l) > 0 {
			st.order = append(st.order, domainLoad{domain: d, pending: len(l)})
		}
	}
	sort.Slice(st.order, func(i, j int) bool {
		if st.order[i].pending != st.order[j].pending {
			return st.order[i].pending > st.order[j].pending
		}
		return st.order[i].domain < st.order[j].domain
	})
	if cap(st.workers) < workers {
		st.workers = make([][]int, workers)
	}
	st.workers = st.workers[:workers]
	for w := range st.workers {
		st.workers[w] = st.workers[w][:0]
	}
	load := make([]int, workers)
	for _, dl := range st.order {
		w := 0
		for k := 1; k < workers; k++ {
			if load[k] < load[w] {
				w = k
			}
		}
		load[w] += dl.pending
		st.domWorker[dl.domain] = w
	}
	// Merged per-worker lists in ascending vehicle-index order: a worker
	// processing its domains interleaved by index keeps per-lane progress
	// monotone, which the watermark protocol's liveness argument needs.
	for i := range f.vehicles {
		if d := st.laneOf[i]; d >= 0 {
			w := st.domWorker[d]
			st.workers[w] = append(st.workers[w], i)
		}
	}

	// Claim site ownership per domain (collision asserts live in
	// xedge.Site.Submit) and reset the safe window: every lane starts the
	// phase at the epoch time, and the positive lookahead (checked by the
	// caller) keeps every horizon open.
	for _, dl := range st.order {
		for _, s := range part.Domains[dl.domain].Sites {
			s.BeginCommitPhase(dl.domain)
		}
	}
	const residueLane = 0 // lane 0 of the window; workers are 1..workers
	if st.window == nil || st.window.Lanes() != workers+1 {
		w, err := sim.NewSafeWindow(workers+1, part.Lookahead)
		if err != nil {
			panic(err) // workers+1 >= 2; unreachable
		}
		st.window = w
	}
	st.window.Reset(now)

	if st.coord == nil {
		st.coord = newCommitCoord()
	}
	st.coord.reset(workers, st.workers, st.residue)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, list []int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					st.coord.laneFail(w, r)
				}
			}()
			for k, i := range list {
				if !st.window.CanAdvance(residueLane+1+w, now) {
					panic(fmt.Sprintf("fleet: commit lane %d blocked by safe window at %v (lookahead %v)", w, now, st.window.Lookahead()))
				}
				st.coord.awaitResidueAbove(i)
				p := f.prepBuf[i]
				f.prepBuf[i] = nil
				f.resBuf[i], f.errBuf[i] = f.vehicles[i].Manager.CommitInvoke(p)
				next := int64(math.MaxInt64)
				if k+1 < len(list) {
					next = int64(list[k+1])
				}
				st.coord.laneAdvance(w, next)
			}
			st.window.Advance(residueLane+1+w, now)
			st.coord.laneAdvance(w, math.MaxInt64)
		}(w, st.workers[w])
	}

	// The residue lane runs here, on the fleet's own goroutine — it IS the
	// canonical serial lane. A panic is stashed and re-raised after the
	// barrier so worker lanes are never abandoned mid-phase.
	residuePanic := func() (pv any) {
		defer func() { pv = recover() }()
		for k, r := range st.residue {
			st.coord.awaitLanesAbove(r)
			p := f.prepBuf[r]
			f.prepBuf[r] = nil
			f.resBuf[r], f.errBuf[r] = f.vehicles[r].Manager.CommitInvoke(p)
			next := int64(math.MaxInt64)
			if k+1 < len(st.residue) {
				next = int64(st.residue[k+1])
			}
			st.coord.residueAdvance(next)
		}
		return nil
	}()
	st.window.Advance(residueLane, now)
	st.coord.residueAdvance(math.MaxInt64)
	wg.Wait()
	for _, dl := range st.order {
		for _, s := range part.Domains[dl.domain].Sites {
			s.EndCommitPhase()
		}
	}
	if pv := st.coord.failed(); pv != nil {
		panic(pv)
	}
	if residuePanic != nil {
		panic(residuePanic)
	}
}

// commitCoord synchronizes domain worker lanes with the serial residue
// lane through per-lane index watermarks:
//
//   - a worker may commit vehicle i once the residue lane's next pending
//     index exceeds i;
//   - the residue lane may commit vehicle r once every worker's next
//     pending index exceeds r.
//
// All lists ascend, so watermarks only grow, and the lane holding the
// globally smallest pending index can always proceed — the protocol is
// deadlock-free. The fast path is a single atomic load; the slow path
// parks on a condition variable that advancing lanes broadcast only when
// a waiter is registered, so rounds with an empty residue lane (the
// common case for non-resilient fleets) never touch the mutex.
type commitCoord struct {
	mu      sync.Mutex
	cond    *sync.Cond
	waiters atomic.Int32
	residue atomic.Int64
	lanes   []atomic.Int64
	fail    any // first worker panic, guarded by mu
}

func newCommitCoord() *commitCoord {
	c := &commitCoord{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// reset arms the coordinator for one commit phase: initial watermarks are
// each lane's first pending index (or +inf when it has none).
func (c *commitCoord) reset(workers int, lists [][]int, residue []int) {
	if len(c.lanes) != workers {
		c.lanes = make([]atomic.Int64, workers)
	}
	for w := 0; w < workers; w++ {
		first := int64(math.MaxInt64)
		if len(lists[w]) > 0 {
			first = int64(lists[w][0])
		}
		c.lanes[w].Store(first)
	}
	first := int64(math.MaxInt64)
	if len(residue) > 0 {
		first = int64(residue[0])
	}
	c.residue.Store(first)
	c.mu.Lock()
	c.fail = nil
	c.mu.Unlock()
}

// awaitResidueAbove blocks until the residue watermark exceeds i.
func (c *commitCoord) awaitResidueAbove(i int) {
	if c.residue.Load() > int64(i) {
		return
	}
	c.mu.Lock()
	c.waiters.Add(1)
	for c.residue.Load() <= int64(i) {
		c.cond.Wait()
	}
	c.waiters.Add(-1)
	c.mu.Unlock()
}

// awaitLanesAbove blocks until every worker watermark exceeds r.
func (c *commitCoord) awaitLanesAbove(r int) {
	if c.minLane() > int64(r) {
		return
	}
	c.mu.Lock()
	c.waiters.Add(1)
	for c.minLane() <= int64(r) {
		c.cond.Wait()
	}
	c.waiters.Add(-1)
	c.mu.Unlock()
}

func (c *commitCoord) minLane() int64 {
	min := int64(math.MaxInt64)
	for w := range c.lanes {
		if v := c.lanes[w].Load(); v < min {
			min = v
		}
	}
	return min
}

// laneAdvance publishes worker w's next pending index and wakes waiters
// if any are parked. The store-then-check order pairs with the waiters'
// lock-add-recheck sequence to rule out lost wakeups.
func (c *commitCoord) laneAdvance(w int, next int64) {
	c.lanes[w].Store(next)
	c.wake()
}

// residueAdvance publishes the residue lane's next pending index.
func (c *commitCoord) residueAdvance(next int64) {
	c.residue.Store(next)
	c.wake()
}

func (c *commitCoord) wake() {
	if c.waiters.Load() > 0 {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// laneFail records a worker panic (first wins), releases the lane's
// watermark so no peer deadlocks waiting on it, and lets the coordinator
// re-raise after the phase barrier.
func (c *commitCoord) laneFail(w int, r any) {
	c.mu.Lock()
	if c.fail == nil {
		c.fail = r
	}
	c.mu.Unlock()
	c.laneAdvance(w, math.MaxInt64)
}

// failed returns the first recorded worker panic, nil when the phase
// completed cleanly. Call after the phase barrier.
func (c *commitCoord) failed() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fail
}

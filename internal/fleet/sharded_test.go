package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/offload"
	"repro/internal/runner"
	"repro/internal/sim"
)

// chaosConfig builds a fleet config that exercises every sharded-round
// path: speed jitter (RNG draws at construction), fault injection
// (outages, degraded links, exec faults), and the resilience ladder
// (retries, fallbacks, degradation).
func chaosConfig(vehicles, shards int, seed int64) Config {
	pol := offload.DefaultPolicy()
	return Config{
		Vehicles:       vehicles,
		RSUs:           2,
		SpeedJitterMPH: 10,
		RNG:            sim.NewStream(seed, 0),
		Resilience:     &pol,
		Faults: &faults.PlanConfig{
			Horizon:             20 * time.Second,
			MeanTimeToOutage:    2 * time.Second,
			MeanOutage:          800 * time.Millisecond,
			MeanTimeToDegrade:   2 * time.Second,
			MeanDegrade:         time.Second,
			MeanTimeToExecFault: time.Second,
			MeanExecFault:       400 * time.Millisecond,
		},
		Shards: shards,
	}
}

// shardedRun drives rounds epochs of the sharded executor and returns the
// per-round results plus the merged telemetry artifacts.
func shardedRun(t *testing.T, cfg Config, rounds int) ([]RoundResult, string, string, []byte) {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.InstrumentSharded(true)
	out := make([]RoundResult, 0, rounds)
	for r := 0; r < rounds; r++ {
		rr, err := f.ShardedInvokeAllTolerant("kidnapper-search", time.Duration(r)*400*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rr)
	}
	reg, trc := f.MergedTelemetry()
	chrome, err := trc.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	return out, reg.Render(), trc.RenderTree(), chrome
}

// TestShardedDifferentialAcrossShardCounts is the tentpole's determinism
// contract: the same seeded fleet run at shards 1, 2, 4, and 7 produces
// identical RoundResults, identical merged telemetry renders, and
// byte-identical trace exports. 7 deliberately does not divide the
// vehicle count.
func TestShardedDifferentialAcrossShardCounts(t *testing.T) {
	const vehicles, rounds, seed = 21, 6, 42
	baseRR, baseReg, baseTree, baseChrome := shardedRun(t, chaosConfig(vehicles, 1, seed), rounds)
	if !strings.Contains(baseReg, "edgeos.invocations") {
		t.Fatalf("baseline registry missing invocation metrics:\n%s", baseReg)
	}
	var sawOffload bool
	for _, rr := range baseRR {
		if rr.OffloadShare > 0 {
			sawOffload = true
		}
	}
	if !sawOffload {
		t.Fatal("no round offloaded: the commit phase was never exercised")
	}
	for _, shards := range []int{2, 4, 7} {
		rr, reg, tree, chrome := shardedRun(t, chaosConfig(vehicles, shards, seed), rounds)
		if !reflect.DeepEqual(rr, baseRR) {
			t.Fatalf("shards=%d RoundResults diverged:\n got %+v\nwant %+v", shards, rr, baseRR)
		}
		if reg != baseReg {
			t.Fatalf("shards=%d merged telemetry render diverged from shards=1", shards)
		}
		if tree != baseTree {
			t.Fatalf("shards=%d trace tree diverged from shards=1", shards)
		}
		if !bytes.Equal(chrome, baseChrome) {
			t.Fatalf("shards=%d Chrome trace bytes diverged from shards=1", shards)
		}
	}
}

// TestShardedDifferentialCleanWorld covers the non-tolerant entry point
// in a fault-free world (errors abort, nothing to tolerate).
func TestShardedDifferentialCleanWorld(t *testing.T) {
	run := func(shards int) ([]RoundResult, string) {
		f, err := New(Config{Vehicles: 12, RSUs: 1, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		f.InstrumentSharded(false)
		var out []RoundResult
		for r := 0; r < 5; r++ {
			rr, err := f.ShardedInvokeAll("kidnapper-search", time.Duration(r)*300*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, rr)
		}
		reg, _ := f.MergedTelemetry()
		return out, reg.Render()
	}
	baseRR, baseReg := run(1)
	for _, shards := range []int{2, 4, 7} {
		rr, reg := run(shards)
		if !reflect.DeepEqual(rr, baseRR) {
			t.Fatalf("shards=%d clean-world RoundResults diverged", shards)
		}
		if reg != baseReg {
			t.Fatalf("shards=%d clean-world telemetry diverged", shards)
		}
	}
}

// TestShardPartition: lanes cover every vehicle exactly once, in
// contiguous index order, and shard counts clamp to the vehicle count.
func TestShardPartition(t *testing.T) {
	f, err := New(Config{Vehicles: 10, Shards: 7})
	if err != nil {
		t.Fatal(err)
	}
	shards := f.Shards()
	if len(shards) != 7 {
		t.Fatalf("shard count = %d", len(shards))
	}
	next := 0
	for i, sh := range shards {
		if sh.Index != i {
			t.Fatalf("shard %d has Index %d", i, sh.Index)
		}
		if sh.Lo != next || sh.Hi <= sh.Lo {
			t.Fatalf("shard %d range [%d,%d) not contiguous from %d", i, sh.Lo, sh.Hi, next)
		}
		if sh.Engine == nil || sh.RNG == nil {
			t.Fatalf("shard %d missing lane engine or RNG", i)
		}
		next = sh.Hi
	}
	if next != 10 {
		t.Fatalf("shards cover %d of 10 vehicles", next)
	}
	clamped, err := New(Config{Vehicles: 3, Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(clamped.Shards()); got != 3 {
		t.Fatalf("64 shards over 3 vehicles not clamped: %d lanes", got)
	}
}

// TestShardedUnknownService: decision-step errors surface through the
// canonical-order error path, naming the lowest-index vehicle.
func TestShardedUnknownService(t *testing.T) {
	f, err := New(Config{Vehicles: 6, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ShardedInvokeAll("ghost", 0); err == nil {
		t.Fatal("unknown service invoked")
	} else if !strings.Contains(err.Error(), "cav-0") {
		t.Fatalf("error does not name the first vehicle deterministically: %v", err)
	}
}

// TestShardedFrozenSitesUnfrozen: the executor must leave sites unfrozen
// for the commit phase and after the round.
func TestShardedFrozenSitesUnfrozen(t *testing.T) {
	f, err := New(Config{Vehicles: 4, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ShardedInvokeAll("kidnapper-search", 0); err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Sites() {
		if s.Frozen() {
			t.Fatalf("site %s still frozen after round", s.Name())
		}
	}
}

// TestShardedRaceUnderRunner drives sharded fleets inside the parallel
// replication runner — nested parallelism: replications across workers,
// shards within each fleet — so `go test -race` (the make verify gate)
// checks the decision/commit split end to end.
func TestShardedRaceUnderRunner(t *testing.T) {
	type summary struct {
		Rounds      int
		Invocations int
	}
	rep, err := runner.Run(runner.Config{Replications: 3, Parallel: 3, Seed: 9}, func(sh *runner.Shard) (summary, error) {
		cfg := chaosConfig(9, 4, 100+int64(sh.Index))
		cfg.RNG = sh.RNG
		f, err := New(cfg)
		if err != nil {
			return summary{}, err
		}
		f.InstrumentSharded(true)
		var s summary
		for r := 0; r < 4; r++ {
			rr, err := f.ShardedInvokeAllTolerant("kidnapper-search", time.Duration(r)*500*time.Millisecond)
			if err != nil {
				return summary{}, err
			}
			s.Rounds++
			s.Invocations += rr.Invocations
		}
		reg, _ := f.MergedTelemetry()
		sh.Metrics.Merge(reg)
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range rep.Results {
		if s.Rounds != 4 || s.Invocations != 36 {
			t.Fatalf("replication %d summary = %+v", i, s)
		}
	}
}

// benchFleet builds the benchmark fleet once per benchmark.
func benchFleet(b *testing.B, vehicles, shards int) *Fleet {
	b.Helper()
	f, err := New(Config{Vehicles: vehicles, Shards: shards, RNG: sim.NewStream(1, 0)})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkInvokeAllRound pins the sequential round's steady-state
// allocation profile: the per-round result buffers live on the Fleet, so
// rounds allocate only what the invocation path itself needs.
func BenchmarkInvokeAllRound(b *testing.B) {
	f := benchFleet(b, 50, 1)
	if _, err := f.InvokeAll("kidnapper-search", 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.InvokeAll("kidnapper-search", time.Duration(i)*time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedInvokeAllRound measures the epoch-barrier executor at 4
// shards (decision fan-out + barrier + canonical commit).
func BenchmarkShardedInvokeAllRound(b *testing.B) {
	f := benchFleet(b, 50, 4)
	if _, err := f.ShardedInvokeAll("kidnapper-search", 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ShardedInvokeAll("kidnapper-search", time.Duration(i)*time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

// obsRun drives rounds epochs with the flight recorder and a telemetry
// sampler enabled, returning the merged event table and series render.
func obsRun(t *testing.T, cfg Config, rounds int) (string, string) {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.InstrumentSharded(false)
	f.EnableFlightRecorder(4096)
	store := obs.NewSeriesStore(256)
	sp := obs.NewSampler(store, 100*time.Millisecond)
	if err := f.WatchTelemetry(sp); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(0)
	stop, err := sp.Start(eng)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		now := time.Duration(r) * 400 * time.Millisecond
		if _, err := f.ShardedInvokeAllTolerant("kidnapper-search", now); err != nil {
			t.Fatal(err)
		}
		if err := eng.RunUntil(now + 400*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	stop()
	return f.MergedFlightRecorder().RenderTable(), store.Render()
}

// TestFlightRecorderAndSeriesShardCountInvariant extends the differential
// contract to the observability layer: merged flight-recorder tables and
// sampled series renders are byte-identical for any shard count.
func TestFlightRecorderAndSeriesShardCountInvariant(t *testing.T) {
	const vehicles, rounds, seed = 12, 6, 42
	baseEvents, baseSeries := obsRun(t, chaosConfig(vehicles, 1, seed), rounds)
	if !strings.Contains(baseEvents, "commit.begin") {
		t.Fatalf("no commit-phase events recorded:\n%s", baseEvents)
	}
	if !strings.Contains(baseEvents, "outage.begin") {
		t.Fatalf("no outage events recorded:\n%s", baseEvents)
	}
	if !strings.Contains(baseSeries, "edgeos.invocations") {
		t.Fatalf("sampled series missing invocation counters:\n%s", baseSeries)
	}
	for _, shards := range []int{2, 5} {
		events, series := obsRun(t, chaosConfig(vehicles, shards, seed), rounds)
		if events != baseEvents {
			t.Fatalf("shards=%d flight-recorder table diverged from shards=1:\n%s\nvs\n%s", shards, events, baseEvents)
		}
		if series != baseSeries {
			t.Fatalf("shards=%d series render diverged from shards=1:\n%s\nvs\n%s", shards, series, baseSeries)
		}
	}
}

// TestMergedFlightRecorderNilWithoutEnable: reading the merged log without
// EnableFlightRecorder is nil (and nil-safe to render).
func TestMergedFlightRecorderNilWithoutEnable(t *testing.T) {
	f, err := New(chaosConfig(3, 1, 7))
	if err != nil {
		t.Fatal(err)
	}
	if rec := f.MergedFlightRecorder(); rec != nil {
		t.Fatal("merged recorder without enable should be nil")
	}
	sp := obs.NewSampler(obs.NewSeriesStore(8), time.Second)
	if err := f.WatchTelemetry(sp); err == nil {
		t.Fatal("WatchTelemetry without InstrumentSharded should fail")
	}
}

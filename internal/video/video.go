// Package video models the H.264-style live streams OpenVDAP vehicles
// upload: a GOP structure with one key frame every KeyInterval, RTP-style
// packetization, and the paper's frame-loss accounting rule (a frame counts
// as lost when the key frame opening its GOP is lost, regardless of the
// frame's own delivery — §III-A).
package video

import (
	"fmt"
	"time"
)

// Profile describes an encoded stream.
type Profile struct {
	// Name labels the profile ("720p", "1080p").
	Name string
	// Width and Height are the frame dimensions in pixels.
	Width, Height int
	// FPS is frames per second.
	FPS int
	// BitrateMbps is the encoded stream rate in megabits per second.
	BitrateMbps float64
	// KeyInterval is the time between key frames (one GOP).
	KeyInterval time.Duration
}

// Validate reports configuration errors.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("video: profile has no name")
	}
	if p.Width <= 0 || p.Height <= 0 {
		return fmt.Errorf("video: profile %s has non-positive dimensions", p.Name)
	}
	if p.FPS <= 0 {
		return fmt.Errorf("video: profile %s has non-positive FPS", p.Name)
	}
	if p.BitrateMbps <= 0 {
		return fmt.Errorf("video: profile %s has non-positive bitrate", p.Name)
	}
	if p.KeyInterval <= 0 {
		return fmt.Errorf("video: profile %s has non-positive key interval", p.Name)
	}
	return nil
}

// Profile720p returns the paper's 1280x720, 30 fps, 3.8 Mbps test stream
// (key frame every two seconds).
func Profile720p() Profile {
	return Profile{Name: "720p", Width: 1280, Height: 720, FPS: 30, BitrateMbps: 3.8, KeyInterval: 2 * time.Second}
}

// Profile1080p returns the paper's 1920x1080, 30 fps, 5.8 Mbps test stream.
func Profile1080p() Profile {
	return Profile{Name: "1080p", Width: 1920, Height: 1080, FPS: 30, BitrateMbps: 5.8, KeyInterval: 2 * time.Second}
}

// PayloadBytes is the RTP payload per packet (typical H.264-over-RTP MTU
// budget: 1500 MTU minus IP/UDP/RTP headers, rounded as in the drive test).
const PayloadBytes = 1316

// HeaderCriticalPackets is the number of leading key-frame packets whose
// loss makes the whole GOP undecodable (SPS/PPS and first slice rows).
// Later key-frame packets degrade quality but are concealable. The value
// reproduces the amplification between Figure 2's packet- and frame-loss
// series for both resolutions.
const HeaderCriticalPackets = 20

// keyFrameShare is the fraction of one GOP's bits carried by its key frame.
const keyFrameShare = 0.25

// Frame is one encoded frame ready for packetization.
type Frame struct {
	// Index is the frame sequence number within the stream.
	Index int
	// PTS is the presentation timestamp relative to stream start.
	PTS time.Duration
	// Key marks IDR frames.
	Key bool
	// GOP is the index of the group-of-pictures this frame belongs to.
	GOP int
	// Bytes is the encoded frame size.
	Bytes int
}

// Packets returns how many RTP packets carry this frame.
func (f Frame) Packets() int {
	n := (f.Bytes + PayloadBytes - 1) / PayloadBytes
	if n < 1 {
		n = 1
	}
	return n
}

// Stream deterministically generates the frame sequence for a profile.
type Stream struct {
	profile       Profile
	framesPerGOP  int
	keyBytes      int
	deltaBytes    int
	totalDuration time.Duration
}

// NewStream builds a generator for duration worth of the profile.
func NewStream(p Profile, duration time.Duration) (*Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if duration <= 0 {
		return nil, fmt.Errorf("video: stream duration must be positive, got %v", duration)
	}
	framesPerGOP := int(p.KeyInterval.Seconds() * float64(p.FPS))
	if framesPerGOP < 1 {
		framesPerGOP = 1
	}
	gopBits := p.BitrateMbps * 1e6 * p.KeyInterval.Seconds()
	keyBytes := int(gopBits * keyFrameShare / 8)
	deltaBytes := 0
	if framesPerGOP > 1 {
		deltaBytes = int(gopBits * (1 - keyFrameShare) / 8 / float64(framesPerGOP-1))
	}
	return &Stream{
		profile:       p,
		framesPerGOP:  framesPerGOP,
		keyBytes:      keyBytes,
		deltaBytes:    deltaBytes,
		totalDuration: duration,
	}, nil
}

// Profile returns the stream's encoding profile.
func (s *Stream) Profile() Profile { return s.profile }

// FrameCount returns the total number of frames in the stream.
func (s *Stream) FrameCount() int {
	return int(s.totalDuration.Seconds() * float64(s.profile.FPS))
}

// FramesPerGOP returns the GOP length in frames.
func (s *Stream) FramesPerGOP() int { return s.framesPerGOP }

// Frame returns the i-th frame of the stream.
func (s *Stream) Frame(i int) (Frame, error) {
	if i < 0 || i >= s.FrameCount() {
		return Frame{}, fmt.Errorf("video: frame %d outside stream of %d frames", i, s.FrameCount())
	}
	key := i%s.framesPerGOP == 0
	bytes := s.deltaBytes
	if key {
		bytes = s.keyBytes
	}
	return Frame{
		Index: i,
		PTS:   time.Duration(float64(i) / float64(s.profile.FPS) * float64(time.Second)),
		Key:   key,
		GOP:   i / s.framesPerGOP,
		Bytes: bytes,
	}, nil
}

// Channel delivers packets at a virtual time; it abstracts
// network.CellularChannel so this package has no network dependency.
type Channel interface {
	// SendPacket attempts delivery at virtual time t; calls have
	// non-decreasing t. It reports whether the packet arrived.
	SendPacket(t time.Duration) bool
}

// UploadReport summarizes a simulated live upload.
type UploadReport struct {
	Profile        string
	FramesSent     int
	FramesLost     int
	PacketsSent    int
	PacketsLost    int
	GOPsSent       int
	GOPsDead       int
	PacketLossRate float64
	FrameLossRate  float64
}

// Upload streams every frame through ch in real (virtual) time, applying
// the drive test's counting rules:
//
//   - packet loss: lost packets / sent packets;
//   - a GOP is dead when any of the first HeaderCriticalPackets packets of
//     its key frame is lost;
//   - a frame is lost when its GOP is dead, or its own first packet is
//     lost (slice header gone, frame unconcealable).
func Upload(s *Stream, ch Channel) (UploadReport, error) {
	if s == nil || ch == nil {
		return UploadReport{}, fmt.Errorf("video: nil stream or channel")
	}
	rpt := UploadReport{Profile: s.profile.Name}
	gopDead := false
	frameInterval := time.Duration(float64(time.Second) / float64(s.profile.FPS))
	n := s.FrameCount()
	for i := 0; i < n; i++ {
		f, err := s.Frame(i)
		if err != nil {
			return UploadReport{}, err
		}
		if f.Key {
			rpt.GOPsSent++
			gopDead = false
		}
		pkts := f.Packets()
		// Packets of one frame leave back-to-back within the frame slot.
		perPacket := frameInterval / time.Duration(pkts+1)
		firstLost := false
		criticalLost := false
		for p := 0; p < pkts; p++ {
			at := f.PTS + time.Duration(p)*perPacket
			ok := ch.SendPacket(at)
			rpt.PacketsSent++
			if !ok {
				rpt.PacketsLost++
				if p == 0 {
					firstLost = true
				}
				if f.Key && p < HeaderCriticalPackets {
					criticalLost = true
				}
			}
		}
		if f.Key && criticalLost {
			gopDead = true
			rpt.GOPsDead++
		}
		rpt.FramesSent++
		if gopDead || firstLost {
			rpt.FramesLost++
		}
	}
	if rpt.PacketsSent > 0 {
		rpt.PacketLossRate = float64(rpt.PacketsLost) / float64(rpt.PacketsSent)
	}
	if rpt.FramesSent > 0 {
		rpt.FrameLossRate = float64(rpt.FramesLost) / float64(rpt.FramesSent)
	}
	return rpt, nil
}

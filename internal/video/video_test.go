package video

import (
	"math"
	"testing"
	"time"
)

func TestProfilesValid(t *testing.T) {
	for _, p := range []Profile{Profile720p(), Profile1080p()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
	}
	if Profile720p().BitrateMbps != 3.8 || Profile1080p().BitrateMbps != 5.8 {
		t.Fatal("paper bitrates wrong")
	}
}

func TestProfileValidate(t *testing.T) {
	bad := []Profile{
		{},
		{Name: "x", Width: 0, Height: 10, FPS: 30, BitrateMbps: 1, KeyInterval: time.Second},
		{Name: "x", Width: 10, Height: 10, FPS: 0, BitrateMbps: 1, KeyInterval: time.Second},
		{Name: "x", Width: 10, Height: 10, FPS: 30, BitrateMbps: 0, KeyInterval: time.Second},
		{Name: "x", Width: 10, Height: 10, FPS: 30, BitrateMbps: 1, KeyInterval: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate passed", i)
		}
	}
}

func TestNewStreamValidation(t *testing.T) {
	if _, err := NewStream(Profile{}, time.Minute); err == nil {
		t.Fatal("invalid profile accepted")
	}
	if _, err := NewStream(Profile720p(), 0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestStreamStructure(t *testing.T) {
	s, err := NewStream(Profile720p(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.FrameCount(); got != 300 {
		t.Fatalf("FrameCount = %d, want 300", got)
	}
	if got := s.FramesPerGOP(); got != 60 {
		t.Fatalf("FramesPerGOP = %d, want 60", got)
	}
	f0, err := s.Frame(0)
	if err != nil || !f0.Key || f0.GOP != 0 || f0.PTS != 0 {
		t.Fatalf("frame 0 = %+v, %v; want key frame of GOP 0", f0, err)
	}
	f60, _ := s.Frame(60)
	if !f60.Key || f60.GOP != 1 || f60.PTS != 2*time.Second {
		t.Fatalf("frame 60 = %+v; want key frame of GOP 1 at 2s", f60)
	}
	f1, _ := s.Frame(1)
	if f1.Key {
		t.Fatal("frame 1 is a key frame")
	}
	if f0.Bytes <= f1.Bytes {
		t.Fatalf("key frame (%d B) not larger than delta frame (%d B)", f0.Bytes, f1.Bytes)
	}
	if _, err := s.Frame(-1); err == nil {
		t.Fatal("negative frame index accepted")
	}
	if _, err := s.Frame(300); err == nil {
		t.Fatal("out-of-range frame index accepted")
	}
}

func TestStreamBitrateConservation(t *testing.T) {
	for _, p := range []Profile{Profile720p(), Profile1080p()} {
		s, _ := NewStream(p, time.Minute)
		var total int
		for i := 0; i < s.FrameCount(); i++ {
			f, _ := s.Frame(i)
			total += f.Bytes
		}
		wantBits := p.BitrateMbps * 1e6 * 60
		gotBits := float64(total) * 8
		if math.Abs(gotBits-wantBits)/wantBits > 0.02 {
			t.Errorf("%s: stream carries %.0f bits, want ~%.0f (±2%%)", p.Name, gotBits, wantBits)
		}
	}
}

func TestFramePackets(t *testing.T) {
	f := Frame{Bytes: PayloadBytes}
	if f.Packets() != 1 {
		t.Fatalf("one-payload frame = %d packets", f.Packets())
	}
	f.Bytes = PayloadBytes + 1
	if f.Packets() != 2 {
		t.Fatalf("payload+1 frame = %d packets, want 2", f.Packets())
	}
	f.Bytes = 0
	if f.Packets() != 1 {
		t.Fatalf("empty frame = %d packets, want 1 (header still sent)", f.Packets())
	}
}

// scriptedChannel loses packets per a predicate over the packet sequence.
type scriptedChannel struct {
	n    int
	lose func(i int) bool
}

func (c *scriptedChannel) SendPacket(time.Duration) bool {
	i := c.n
	c.n++
	return !c.lose(i)
}

func TestUploadLosslessChannel(t *testing.T) {
	s, _ := NewStream(Profile720p(), 10*time.Second)
	rpt, err := Upload(s, &scriptedChannel{lose: func(int) bool { return false }})
	if err != nil {
		t.Fatal(err)
	}
	if rpt.PacketsLost != 0 || rpt.FramesLost != 0 || rpt.GOPsDead != 0 {
		t.Fatalf("lossless upload reported loss: %+v", rpt)
	}
	if rpt.FramesSent != 300 || rpt.GOPsSent != 5 {
		t.Fatalf("sent %d frames / %d GOPs, want 300/5", rpt.FramesSent, rpt.GOPsSent)
	}
}

func TestUploadKeyFrameLossKillsGOP(t *testing.T) {
	s, _ := NewStream(Profile720p(), 4*time.Second) // 2 GOPs
	// Lose exactly the first packet of the stream (first key frame header).
	rpt, err := Upload(s, &scriptedChannel{lose: func(i int) bool { return i == 0 }})
	if err != nil {
		t.Fatal(err)
	}
	if rpt.PacketsLost != 1 {
		t.Fatalf("PacketsLost = %d, want 1", rpt.PacketsLost)
	}
	if rpt.GOPsDead != 1 {
		t.Fatalf("GOPsDead = %d, want 1", rpt.GOPsDead)
	}
	// All 60 frames of GOP 0 lost; GOP 1 intact.
	if rpt.FramesLost != 60 {
		t.Fatalf("FramesLost = %d, want 60 (whole first GOP)", rpt.FramesLost)
	}
}

func TestUploadTailKeyPacketLossIsConcealable(t *testing.T) {
	s, _ := NewStream(Profile720p(), 2*time.Second)
	f0, _ := s.Frame(0)
	if f0.Packets() <= HeaderCriticalPackets {
		t.Skip("key frame too small for tail-loss test")
	}
	// Lose one key-frame packet beyond the critical header region.
	target := HeaderCriticalPackets + 5
	rpt, err := Upload(s, &scriptedChannel{lose: func(i int) bool { return i == target }})
	if err != nil {
		t.Fatal(err)
	}
	if rpt.GOPsDead != 0 {
		t.Fatalf("tail key packet loss killed the GOP: %+v", rpt)
	}
	if rpt.FramesLost != 0 {
		t.Fatalf("FramesLost = %d, want 0 (concealable)", rpt.FramesLost)
	}
}

func TestUploadDeltaFrameFirstPacketLoss(t *testing.T) {
	s, _ := NewStream(Profile720p(), 2*time.Second)
	f0, _ := s.Frame(0)
	keyPkts := f0.Packets()
	// Lose the first packet of frame 1 (the first delta frame).
	rpt, err := Upload(s, &scriptedChannel{lose: func(i int) bool { return i == keyPkts }})
	if err != nil {
		t.Fatal(err)
	}
	if rpt.FramesLost != 1 {
		t.Fatalf("FramesLost = %d, want exactly the one delta frame", rpt.FramesLost)
	}
	if rpt.GOPsDead != 0 {
		t.Fatal("delta frame loss killed GOP")
	}
}

// TestUploadAmplification reproduces Figure 2's headline property: frame
// loss exceeds packet loss under uniform random loss.
func TestUploadAmplification(t *testing.T) {
	s, _ := NewStream(Profile1080p(), 5*time.Minute)
	// Deterministic pseudo-random 7% loss pattern.
	rpt, err := Upload(s, &scriptedChannel{lose: func(i int) bool { return i*2654435761%100 < 7 }})
	if err != nil {
		t.Fatal(err)
	}
	if rpt.FrameLossRate <= rpt.PacketLossRate {
		t.Fatalf("frame loss %.3f not amplified over packet loss %.3f",
			rpt.FrameLossRate, rpt.PacketLossRate)
	}
	if rpt.FrameLossRate < 3*rpt.PacketLossRate {
		t.Fatalf("amplification too weak: frame %.3f vs packet %.3f",
			rpt.FrameLossRate, rpt.PacketLossRate)
	}
}

func TestUploadNilArgs(t *testing.T) {
	s, _ := NewStream(Profile720p(), time.Second)
	if _, err := Upload(nil, &scriptedChannel{lose: func(int) bool { return false }}); err == nil {
		t.Fatal("nil stream accepted")
	}
	if _, err := Upload(s, nil); err == nil {
		t.Fatal("nil channel accepted")
	}
}

func TestUploadPacketTimesMonotonic(t *testing.T) {
	s, _ := NewStream(Profile720p(), 4*time.Second)
	var last time.Duration = -1
	mono := true
	ch := &monotonicChannel{check: func(at time.Duration) {
		if at < last {
			mono = false
		}
		last = at
	}}
	if _, err := Upload(s, ch); err != nil {
		t.Fatal(err)
	}
	if !mono {
		t.Fatal("packet send times went backwards")
	}
}

type monotonicChannel struct{ check func(time.Duration) }

func (c *monotonicChannel) SendPacket(at time.Duration) bool { c.check(at); return true }

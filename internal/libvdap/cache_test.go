package libvdap

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// newCachedServer builds a server with telemetry + observability attached
// and an externally-driven atomic clock, the shape of a live platform.
func newCachedServer(t *testing.T) (*httptest.Server, *Server, *telemetry.Registry, *atomic.Int64) {
	t.Helper()
	now := new(atomic.Int64)
	now.Store(int64(time.Second))
	srv, err := NewServer(nil, nil, nil, nil, func() time.Duration { return time.Duration(now.Load()) })
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	reg.Add("vcu.executions", 7)
	srv.AttachTelemetry(reg)
	store := obs.NewSeriesStore(64)
	store.RecordGauge("fleet.queue_depth", 100*time.Millisecond, 3)
	rec := obs.NewRecorder(64)
	rec.Emit(100*time.Millisecond, "fleet", obs.SevInfo, "boot")
	srv.AttachSeries(store)
	srv.AttachEvents(rec)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv, reg, now
}

func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestCacheInvalidatesOncePerWatermark is the core cache contract: N
// requests at one watermark cost exactly one marshal, and a watermark
// advance invalidates exactly once.
func TestCacheInvalidatesOncePerWatermark(t *testing.T) {
	ts, srv, reg, now := newCachedServer(t)
	for i := 0; i < 10; i++ {
		if code, _, _ := get(t, ts.URL+"/api/v1/status"); code != http.StatusOK {
			t.Fatalf("status = %d", code)
		}
	}
	st := srv.CacheStats()["status"]
	if st.Misses != 1 || st.Hits != 9 {
		t.Fatalf("after 10 requests at one watermark: %+v", st)
	}

	now.Store(int64(2 * time.Second))
	for i := 0; i < 5; i++ {
		get(t, ts.URL+"/api/v1/status")
	}
	st = srv.CacheStats()["status"]
	if st.Misses != 2 || st.Hits != 13 {
		t.Fatalf("after watermark advance: %+v", st)
	}

	// The hit/miss counters are mirrored into libvdap.* telemetry.
	counters := reg.Snapshot().Counters
	if counters["libvdap.cache.hits"] < 13 || counters["libvdap.cache.misses"] < 2 {
		t.Fatalf("telemetry mirror = hits %v misses %v", counters["libvdap.cache.hits"], counters["libvdap.cache.misses"])
	}
}

// TestCachedMatchesUncachedBytes is the differential acceptance test: at
// every watermark, the cached payload must be byte-identical to the
// uncached path (a query string, even an empty-valued one, bypasses the
// cache but yields the same value).
func TestCachedMatchesUncachedBytes(t *testing.T) {
	ts, srv, _, now := newCachedServer(t)
	paths := map[string]string{
		"/v1/events":         "/v1/events?since=",
		"/v1/metrics/series": "/v1/metrics/series?since=",
		"/api/v1/status":     "/api/v1/status?nocache=1",
	}
	for wm := 1; wm <= 4; wm++ {
		now.Store(int64(time.Duration(wm) * time.Second))
		for cachedPath, uncachedPath := range paths {
			_, _, cold := get(t, ts.URL+cachedPath)  // builds the cache entry
			_, _, warm := get(t, ts.URL+cachedPath)  // served from cache
			_, _, raw := get(t, ts.URL+uncachedPath) // bypasses the cache
			if !bytes.Equal(cold, warm) {
				t.Fatalf("%s wm=%d: cold and warm cache bodies differ:\n%s\n%s", cachedPath, wm, cold, warm)
			}
			if !bytes.Equal(warm, raw) {
				t.Fatalf("%s wm=%d: cached body differs from uncached path %s:\n%s\n%s",
					cachedPath, wm, uncachedPath, warm, raw)
			}
		}
		// The metrics snapshot embeds the libvdap.cache.* counters
		// themselves, so an uncached re-marshal legitimately differs; its
		// cached body must still be byte-stable within a watermark.
		_, _, cold := get(t, ts.URL+"/v1/metrics")
		_, _, warm := get(t, ts.URL+"/v1/metrics")
		if !bytes.Equal(cold, warm) {
			t.Fatalf("/v1/metrics wm=%d: cached body not byte-stable:\n%s\n%s", wm, cold, warm)
		}
	}
	// Query-string requests must not have populated the caches beyond the
	// one build per watermark per endpoint.
	for _, name := range []string{"events", "series", "status", "metrics"} {
		if st := srv.CacheStats()[name]; st.Misses != 4 {
			t.Fatalf("cache %s misses = %d, want 4 (one per watermark)", name, st.Misses)
		}
	}
}

// TestCacheNoTornReads hammers a cached endpoint from many goroutines
// while the watermark advances: every response must be a complete, valid
// payload for some published watermark — old or new, never a mix.
func TestCacheNoTornReads(t *testing.T) {
	ts, _, _, now := newCachedServer(t)
	valid := map[float64]bool{}
	for wm := 1; wm <= 8; wm++ {
		valid[(time.Duration(wm) * time.Second).Seconds()] = true
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for wm := 2; wm <= 8; wm++ {
			time.Sleep(2 * time.Millisecond)
			now.Store(int64(time.Duration(wm) * time.Second))
		}
		close(stop)
	}()
	var readers sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, _, body := get(t, ts.URL+"/api/v1/status")
				if code != http.StatusOK {
					continue // shed under backlog is legal
				}
				var doc struct {
					VirtualTime float64 `json:"virtualTime"`
				}
				if err := json.Unmarshal(body, &doc); err != nil {
					errs <- fmt.Errorf("torn body %q: %v", body, err)
					return
				}
				if !valid[doc.VirtualTime] {
					errs <- fmt.Errorf("impossible virtualTime %v", doc.VirtualTime)
					return
				}
			}
		}()
	}
	readers.Wait()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCacheBusySheds pins the bounded-backlog contract at the wmCache
// level: with maxPending=1 and a build in flight, the next miss is shed
// with errBusy without invoking the builder.
func TestCacheBusySheds(t *testing.T) {
	c := newWMCache(1)
	enter := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := c.get(time.Second, func() ([]byte, error) {
			close(enter)
			<-release
			return []byte("{}\n"), nil
		})
		done <- err
	}()
	<-enter
	if _, _, err := c.get(time.Second, func() ([]byte, error) {
		t.Error("builder invoked past the pending bound")
		return nil, nil
	}); err != errBusy {
		t.Fatalf("overflow get = %v, want errBusy", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := c.stat()
	if st.Misses != 1 || st.Shed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The published entry serves hits normally after the shed.
	if body, hit, err := c.get(time.Second, nil); err != nil || !hit || string(body) != "{}\n" {
		t.Fatalf("post-shed get = %q, %v, %v", body, hit, err)
	}
}

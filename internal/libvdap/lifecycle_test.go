package libvdap

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// newLifecycleServer builds a Server with observability attached and
// direct access to the Server value (unlike newObsServer) so tests can
// drive Shutdown and register panic routes.
func newLifecycleServer(t *testing.T) (*Server, *httptest.Server, *obs.Recorder, *atomic.Int64) {
	t.Helper()
	now := new(atomic.Int64)
	now.Store(int64(time.Second))
	srv, err := NewServer(nil, nil, nil, nil, func() time.Duration { return time.Duration(now.Load()) })
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(64)
	srv.AttachSeries(obs.NewSeriesStore(64))
	srv.AttachEvents(rec)
	srv.AttachTelemetry(telemetry.NewRegistry())
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, rec, now
}

func TestHealthEndpoints(t *testing.T) {
	srv, ts, _, _ := newLifecycleServer(t)
	for _, path := range []string{"/v1/healthz", "/api/v1/healthz", "/v1/readyz", "/api/v1/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d before drain, want 200", path, resp.StatusCode)
		}
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Liveness stays green through a drain; readiness goes red.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d while draining, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d while draining, want 503", resp.StatusCode)
	}
}

func TestShutdownShedsNewRequests(t *testing.T) {
	srv, ts, _, _ := newLifecycleServer(t)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if !srv.Draining() {
		t.Fatal("Draining() false after Shutdown")
	}
	resp, err := http.Get(ts.URL + "/api/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d during drain, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain shed missing Retry-After")
	}
	if !resp.Close && !strings.EqualFold(resp.Header.Get("Connection"), "close") {
		t.Error("drain shed missing Connection: close")
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func TestShutdownSendsFinalStreamFrame(t *testing.T) {
	srv, ts, rec, _ := newLifecycleServer(t)
	rec.Emit(500*time.Millisecond, "test", obs.SevInfo, "pre-drain event")

	// An unbounded stream (frames=0) only ends when the server drains.
	resp, err := http.Get(ts.URL + "/v1/stream?poll=0.005")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var first obs.Frame
	if err := dec.Decode(&first); err != nil {
		t.Fatalf("first frame: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	var last obs.Frame
	sawFinal := false
	for {
		var f obs.Frame
		if err := dec.Decode(&f); err != nil {
			if err != io.EOF {
				t.Fatalf("stream did not end cleanly: %v", err)
			}
			break
		}
		last = f
		sawFinal = f.Final
	}
	if !sawFinal {
		t.Fatalf("stream ended without a final frame (last=%+v)", last)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown returned %v with the stream drained", err)
	}
}

func TestShutdownTimesOutOnStuckHandler(t *testing.T) {
	srv, ts, _, _ := newLifecycleServer(t)
	release := make(chan struct{})
	entered := make(chan struct{})
	srv.mux.HandleFunc("GET /api/v1/stuck", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	go http.Get(ts.URL + "/api/v1/stuck")
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned nil with a handler still in flight")
	}
	close(release)
	// The straggler finishes; a second drain now succeeds.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(ctx2); err != nil {
		t.Fatalf("drain after release: %v", err)
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	srv, ts, rec, _ := newLifecycleServer(t)
	srv.mux.HandleFunc("GET /api/v1/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	resp, err := http.Get(ts.URL + "/api/v1/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic handler returned %d, want 500", resp.StatusCode)
	}
	var apiErr apiError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatalf("panic response is not JSON: %v", err)
	}
	if !strings.Contains(apiErr.Error, "kaboom") {
		t.Fatalf("panic response %q does not name the panic", apiErr.Error)
	}
	if srv.Panics() != 1 {
		t.Fatalf("Panics() = %d, want 1", srv.Panics())
	}
	events := rec.EventsSince(-1, "libvdap", obs.SevError)
	found := false
	for _, ev := range events {
		if ev.Name == "handler panic" {
			found = true
			for _, f := range ev.Fields {
				if f.Key == "stack" && f.Value == "" {
					t.Error("panic event has an empty stack field")
				}
			}
		}
	}
	if !found {
		t.Fatal("panic not filed into the flight recorder")
	}
	// The server keeps serving after a panic.
	resp2, err := http.Get(ts.URL + "/api/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d after a panic, want 200", resp2.StatusCode)
	}
}

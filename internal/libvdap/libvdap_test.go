package libvdap

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ddi"
	"repro/internal/edgeos"
	"repro/internal/geo"
	"repro/internal/models"
	"repro/internal/offload"
	"repro/internal/sim"
	"repro/internal/tasks"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vcu"
	"repro/internal/xedge"
)

func trainedBehaviorModel(t *testing.T) *models.MLP {
	t.Helper()
	rng := sim.NewRNG(1)
	ds, err := models.GenerateDataset(800, models.PopulationDriver(), rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	m, err := models.NewMLP([]int{models.FeatureDim, 16, models.NumStyles}, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(ds, models.TrainOptions{Epochs: 10, LearningRate: 0.01}, rng.Fork()); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegistryRegisterAndList(t *testing.T) {
	r := NewRegistry()
	if err := DefaultCommonLibrary(r); err != nil {
		t.Fatal(err)
	}
	m := trainedBehaviorModel(t)
	if err := r.RegisterMLP("cbeam", KindDrivingBehavior, m, false, false, 0.05); err != nil {
		t.Fatal(err)
	}
	list := r.List()
	if len(list) != 4 {
		t.Fatalf("list = %d entries, want 4", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].Name > list[i].Name {
			t.Fatal("list not sorted")
		}
	}
	info, err := r.Info("cbeam")
	if err != nil || info.Version != 1 || info.SizeBytes == 0 {
		t.Fatalf("info = %+v, %v", info, err)
	}
	// Re-registering bumps the version.
	if err := r.RegisterMLP("cbeam", KindDrivingBehavior, m, true, false, 0.05); err != nil {
		t.Fatal(err)
	}
	info2, _ := r.Info("cbeam")
	if info2.Version != 2 {
		t.Fatalf("version = %d, want 2", info2.Version)
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	m := trainedBehaviorModel(t)
	if err := r.RegisterMLP("", KindNLP, m, false, false, 1); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.RegisterMLP("x", KindNLP, nil, false, false, 1); err == nil {
		t.Fatal("nil model accepted")
	}
	if err := r.RegisterMLP("x", KindNLP, m, false, false, 0); err == nil {
		t.Fatal("zero cost accepted")
	}
	if err := r.RegisterCostModel(ModelInfo{Name: "x"}); err == nil {
		t.Fatal("cost model without cost accepted")
	}
	if _, err := r.Info("ghost"); err == nil {
		t.Fatal("unknown model info")
	}
}

func TestRegistryPredict(t *testing.T) {
	r := NewRegistry()
	m := trainedBehaviorModel(t)
	if err := r.RegisterMLP("cbeam", KindDrivingBehavior, m, false, false, 0.05); err != nil {
		t.Fatal(err)
	}
	features := make([]float64, models.FeatureDim)
	probs, class, err := r.Predict("cbeam", features)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != models.NumStyles || class < 0 || class >= models.NumStyles {
		t.Fatalf("predict = %v, %d", probs, class)
	}
	if _, _, err := r.Predict("ghost", features); err == nil {
		t.Fatal("unknown model predicted")
	}
	if err := DefaultCommonLibrary(r); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Predict("nlp-voice-command", features); err == nil {
		t.Fatal("cost-only model predicted")
	}
}

// newTestServer assembles a full server with every resource group backed.
func newTestServer(t *testing.T) (*httptest.Server, *Client, *edgeos.DataSharing) {
	t.Helper()
	reg := NewRegistry()
	if err := DefaultCommonLibrary(reg); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterMLP("cbeam", KindDrivingBehavior, trainedBehaviorModel(t), false, false, 0.05); err != nil {
		t.Fatal(err)
	}
	mhep, err := vcu.DefaultVCU()
	if err != nil {
		t.Fatal(err)
	}
	road, _ := geo.NewRoad(10000)
	store, err := ddi.New(ddi.Options{Dir: t.TempDir(), Mobility: geo.Mobility{Road: road, SpeedMS: 10}}, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	sharing, err := edgeos.NewDataSharing([]byte("sharing-master-key-0123456789ab!"), 16)
	if err != nil {
		t.Fatal(err)
	}
	var now time.Duration = 42 * time.Second
	srv, err := NewServer(reg, mhep, store, sharing, func() time.Duration { return now })
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ts, client, sharing
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, nil, nil, nil, nil); err == nil {
		t.Fatal("nil clock accepted")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient("", nil); err == nil {
		t.Fatal("empty base accepted")
	}
}

func TestStatusEndpoint(t *testing.T) {
	_, client, _ := newTestServer(t)
	st, err := client.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st["platform"] != "openvdap" {
		t.Fatalf("status = %v", st)
	}
	if st["virtualTime"].(float64) != 42 {
		t.Fatalf("virtualTime = %v", st["virtualTime"])
	}
}

func TestModelEndpoints(t *testing.T) {
	_, client, _ := newTestServer(t)
	list, err := client.Models()
	if err != nil || len(list) != 4 {
		t.Fatalf("models = %v, %v", list, err)
	}
	info, err := client.Model("cbeam")
	if err != nil || info.Name != "cbeam" {
		t.Fatalf("model = %+v, %v", info, err)
	}
	if _, err := client.Model("ghost"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("ghost model err = %v", err)
	}
	resp, err := client.Predict("cbeam", make([]float64, models.FeatureDim))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Probabilities) != models.NumStyles {
		t.Fatalf("predict = %+v", resp)
	}
	if _, err := client.Predict("cbeam", []float64{1}); err == nil {
		t.Fatal("bad feature length accepted")
	}
}

func TestResourcesEndpoint(t *testing.T) {
	_, client, _ := newTestServer(t)
	profs, err := client.Resources()
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 4 {
		t.Fatalf("resources = %d devices", len(profs))
	}
	for _, p := range profs {
		if p.Name == "" || !p.Online {
			t.Fatalf("bad profile %+v", p)
		}
	}
}

func TestDataEndpoints(t *testing.T) {
	_, client, _ := newTestServer(t)
	id, err := client.Upload("user", 12, 34, []byte(`{"hello":"world"}`))
	if err != nil || id == 0 {
		t.Fatalf("upload = %d, %v", id, err)
	}
	recs, latencyMS, err := client.QueryData("user", 0, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != id {
		t.Fatalf("query = %v", recs)
	}
	if latencyMS <= 0 {
		t.Fatal("no simulated latency reported")
	}
	// Bad query parameters rejected.
	if _, _, err := client.QueryData("user", -5, 10, 0); err == nil {
		t.Fatal("negative time accepted")
	}

	// Windowed aggregate over the same record.
	win, err := client.QueryWindow("user", "x", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if win.Column != "x" || win.Aggregate.Count != 1 || win.Aggregate.Mean != 12 {
		t.Fatalf("window = %+v", win)
	}
	// Empty window aggregates to zero, not an error.
	win, err = client.QueryWindow("", "at", 5000, 6000)
	if err != nil || win.Aggregate.Count != 0 {
		t.Fatalf("empty window = %+v, %v", win, err)
	}
	// Bad column rejected.
	if _, err := client.QueryWindow("user", "bogus", 0, 100); err == nil {
		t.Fatal("bogus column accepted")
	}
}

func TestSharingEndpoints(t *testing.T) {
	_, client, sharing := newTestServer(t)
	tok, err := sharing.Enroll("app")
	if err != nil {
		t.Fatal(err)
	}
	if err := sharing.Grant("alerts", "app", "pubsub"); err != nil {
		t.Fatal(err)
	}
	// Without a token, publish must fail.
	if err := client.Publish("app", "alerts", []byte("boom")); err == nil {
		t.Fatal("unauthenticated publish succeeded")
	}
	client.SetToken(tok)
	if err := client.Publish("app", "alerts", []byte("pedestrian ahead")); err != nil {
		t.Fatal(err)
	}
	topics, err := client.Topics()
	if err != nil || len(topics) != 1 || topics[0] != "alerts" {
		t.Fatalf("topics = %v, %v", topics, err)
	}
	msgs, err := client.FetchMessages("app", "alerts", 0)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("fetch = %v, %v", msgs, err)
	}
	if string(msgs[0].Payload) != "pedestrian ahead" {
		t.Fatalf("payload = %q", msgs[0].Payload)
	}
}

func TestDetachedGroupsReturn503(t *testing.T) {
	srv, err := NewServer(nil, nil, nil, nil, func() time.Duration { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client, _ := NewClient(ts.URL, nil)
	if _, err := client.Models(); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("models err = %v", err)
	}
	if _, err := client.Resources(); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("resources err = %v", err)
	}
	if _, err := client.Upload("x", 0, 0, []byte("y")); err == nil {
		t.Fatal("upload succeeded without DDI")
	}
	if _, err := client.Topics(); err == nil {
		t.Fatal("topics succeeded without sharing")
	}
	// Status still works.
	if _, err := client.Status(); err != nil {
		t.Fatal(err)
	}
}

func TestServiceEndpoints(t *testing.T) {
	reg := NewRegistry()
	mhep, err := vcu.DefaultVCU()
	if err != nil {
		t.Fatal(err)
	}
	dsf, err := vcu.NewDSF(mhep, vcu.GreedyEFT{})
	if err != nil {
		t.Fatal(err)
	}
	road, _ := geo.NewRoad(10000)
	cl, err := xedge.NewCloud()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := offload.NewEngine(dsf, geo.Mobility{Road: road}, []*xedge.Site{cl})
	if err != nil {
		t.Fatal(err)
	}
	elastic, err := edgeos.NewElasticManager(eng, edgeos.MinLatency)
	if err != nil {
		t.Fatal(err)
	}
	if err := elastic.Register(&edgeos.Service{
		Name: "kidnapper-search", Priority: edgeos.PriorityInteractive,
		DAG: tasks.ALPR(), Image: []byte("a3"),
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(reg, mhep, nil, nil, func() time.Duration { return 0 })
	if err != nil {
		t.Fatal(err)
	}

	// Before attaching: 503.
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client, _ := NewClient(ts.URL, nil)
	if _, err := client.Services(); err == nil {
		t.Fatal("services endpoint without EdgeOSv succeeded")
	}

	srv.AttachElastic(elastic)
	res, err := client.Invoke("kidnapper-search")
	if err != nil {
		t.Fatal(err)
	}
	if res.HungUp || res.LatencyMS <= 0 {
		t.Fatalf("invoke = %+v", res)
	}
	list, err := client.Services()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "kidnapper-search" {
		t.Fatalf("services = %+v", list)
	}
	if list[0].Invocations != 1 || list[0].AvgMS <= 0 {
		t.Fatalf("stats = %+v", list[0])
	}
	if _, err := client.Invoke("ghost"); err == nil {
		t.Fatal("unknown service invoked")
	}
}

func TestMetricsAndTraceEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Add("vcu.plans", 2)
	reg.Observe("offload.total_ms", 120)
	tr := trace.New(func() time.Duration { return time.Second })
	sp := tr.StartSpan("offload", "offload.decide")
	tr.SpanAt("network", "network.uplink", time.Second, 2*time.Second)
	sp.Finish()

	srv, err := NewServer(nil, nil, nil, nil, func() time.Duration { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	srv.AttachTelemetry(reg)
	srv.AttachTracer(tr)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	for _, path := range []string{"/api/v1/metrics", "/v1/metrics"} {
		code, body, ctype := get(path)
		if code != http.StatusOK {
			t.Fatalf("GET %s = %d", path, code)
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Fatalf("GET %s content-type = %q", path, ctype)
		}
		var snap telemetry.Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("GET %s not a Snapshot: %v", path, err)
		}
		if snap.Counters["vcu.plans"] != 2 || snap.Histograms["offload.total_ms"].Count != 1 {
			t.Fatalf("GET %s snapshot = %s", path, body)
		}
	}
	if code, body, _ := get("/v1/metrics?format=text"); code != http.StatusOK || !strings.Contains(body, "vcu.plans") {
		t.Fatalf("text metrics = %d:\n%s", code, body)
	}

	for _, path := range []string{"/api/v1/trace", "/v1/trace"} {
		code, body, ctype := get(path)
		if code != http.StatusOK {
			t.Fatalf("GET %s = %d", path, code)
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Fatalf("GET %s content-type = %q", path, ctype)
		}
		var doc map[string]any
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("GET %s not JSON: %v", path, err)
		}
		if _, ok := doc["traceEvents"]; !ok {
			t.Fatalf("GET %s missing traceEvents: %s", path, body)
		}
	}
	if code, body, _ := get("/v1/trace?format=tree"); code != http.StatusOK || !strings.Contains(body, "offload.decide") {
		t.Fatalf("tree trace = %d:\n%s", code, body)
	}
}

func TestMetricsAndTraceDetachedReturn503(t *testing.T) {
	srv, err := NewServer(nil, nil, nil, nil, func() time.Duration { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	for _, path := range []string{"/v1/metrics", "/v1/trace"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("GET %s = %d, want 503", path, resp.StatusCode)
		}
	}
}

package libvdap

import (
	"context"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"

	"repro/internal/obs"
)

// lifecycle is the server's drain state: a draining flag guarded by an
// RWMutex plus an in-flight WaitGroup. Requests take the read lock to
// check the flag and join the WaitGroup atomically; Shutdown takes the
// write lock to flip the flag, which makes flag-flip and WaitGroup.Wait
// race-free (no Add can land after Wait starts).
type lifecycle struct {
	mu       sync.RWMutex
	draining bool
	inflight sync.WaitGroup
	drainCh  chan struct{}
}

// begin admits one request: false means the server is draining and the
// caller must shed. On true the caller owes a call to done().
func (l *lifecycle) begin() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.draining {
		return false
	}
	l.inflight.Add(1)
	return true
}

func (l *lifecycle) done() { l.inflight.Done() }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.life.mu.RLock()
	defer s.life.mu.RUnlock()
	return s.life.draining
}

// Shutdown drains the server gracefully: new requests are shed with 503 +
// Connection: close, in-flight handlers (including /v1/stream consumers,
// which receive a Final-marked frame) run to completion, then Shutdown
// returns nil. If ctx expires first the error reports how the drain timed
// out; handlers keep draining in the background either way. Shutdown is
// idempotent and safe to call concurrently.
func (s *Server) Shutdown(ctx context.Context) error {
	s.life.mu.Lock()
	first := !s.life.draining
	s.life.draining = true
	s.life.mu.Unlock()
	if first {
		close(s.life.drainCh)
	}
	done := make(chan struct{})
	go func() {
		s.life.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("libvdap: drain incomplete: %w", ctx.Err())
	}
}

// shedDraining rejects a request that arrived after Shutdown began. The
// Connection: close tells keep-alive clients to re-dial elsewhere.
func (s *Server) shedDraining(w http.ResponseWriter) {
	s.shedTotal.Add(1)
	s.rejected.Inc()
	w.Header().Set("Connection", "close")
	w.Header().Set("Retry-After", "1")
	s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("server draining"))
}

// handleHealthz is liveness: 200 whenever the process can serve at all,
// draining included — a draining server is alive, just not ready.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"virtualTime": s.clock().Seconds(),
	})
}

// handleReadyz is readiness: 503 once draining so load balancers stop
// routing here before the hard cutoff.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready":  false,
			"reason": "draining",
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// Panics reports how many handler panics the recovery middleware caught.
func (s *Server) Panics() int64 { return s.panicsTotal.Load() }

// recoverPanic converts a handler panic into a JSON 500, counts it in
// libvdap.panics, and files the stack into the flight recorder so a crash
// loop is diagnosable from /v1/events. http.ErrAbortHandler passes
// through: it is the sanctioned way to abort a response, not a bug.
func (s *Server) recoverPanic(w http.ResponseWriter, r *http.Request) {
	rec := recover()
	if rec == nil {
		return
	}
	if rec == http.ErrAbortHandler {
		panic(rec)
	}
	s.panicsTotal.Add(1)
	s.panicsCtr.Inc()
	if s.events != nil {
		s.events.Emit(s.clock(), "libvdap", obs.SevError, "handler panic",
			obs.String("method", r.Method),
			obs.String("path", r.URL.Path),
			obs.String("panic", fmt.Sprint(rec)),
			obs.String("stack", string(debug.Stack())),
		)
	}
	// Best effort: if the handler already wrote headers this writes into
	// the body, but the common case (panic before any write) gets a clean
	// JSON 500.
	s.writeErrRes(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
}

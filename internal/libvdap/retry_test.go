package libvdap

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// fastPolicy keeps retry tests quick: millisecond backoffs, generous
// breaker so unrelated tests never trip it.
func fastPolicy() *RetryPolicy {
	return &RetryPolicy{
		MaxAttempts:      5,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       5 * time.Millisecond,
		BreakerThreshold: 100,
		BreakerCooldown:  time.Minute,
		Seed:             1,
	}
}

func newRetryClient(t *testing.T, srv *httptest.Server, p *RetryPolicy) *Client {
	t.Helper()
	c, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(p)
	return c
}

func TestClientRetries503UntilSuccess(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0.001")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(apiError{Error: "overloaded"})
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"ok": "yes"})
	}))
	defer srv.Close()

	c := newRetryClient(t, srv, fastPolicy())
	cs, err := c.GetPath("/api/v1/status")
	if err != nil {
		t.Fatalf("retried GET failed: %v", err)
	}
	if cs.Attempts != 3 || cs.Sheds != 2 {
		t.Fatalf("CallStats = %+v, want 3 attempts / 2 sheds", cs)
	}
	st := c.Stats()
	if st.Retries != 2 || st.Sheds != 2 || st.RetriedOK != 1 {
		t.Fatalf("ClientStats = %+v", st)
	}
}

func TestClientDoesNotRetryNonIdempotent(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(apiError{Error: "overloaded"})
	}))
	defer srv.Close()

	c := newRetryClient(t, srv, fastPolicy())
	if err := c.Publish("svc", "topic", []byte("x")); err == nil {
		t.Fatal("want error from 503")
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("POST was attempted %d times, want 1", n)
	}
}

func TestClientRetriesPOSTWhenOptedIn(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(apiError{Error: "overloaded"})
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	}))
	defer srv.Close()

	p := fastPolicy()
	p.RetryNonIdempotent = true
	c := newRetryClient(t, srv, p)
	if err := c.Publish("svc", "topic", []byte("x")); err != nil {
		t.Fatalf("opted-in POST retry failed: %v", err)
	}
	if n := hits.Load(); n != 2 {
		t.Fatalf("POST attempted %d times, want 2", n)
	}
}

func TestClientPreserves4xxErrorFormat(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(apiError{Error: "no such model"})
	}))
	defer srv.Close()

	c := newRetryClient(t, srv, fastPolicy())
	_, err := c.Model("ghost")
	if err == nil {
		t.Fatal("want 404 error")
	}
	want := `GET /api/v1/models/ghost: no such model (HTTP 404)`
	if err.Error() != want {
		t.Fatalf("error format changed:\n got: %s\nwant: %s", err, want)
	}
}

func TestClientBreakerFastFails(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(apiError{Error: "boom"})
	}))
	defer srv.Close()

	c := newRetryClient(t, srv, &RetryPolicy{
		MaxAttempts:      1,
		BaseBackoff:      time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		Seed:             1,
	})
	for i := 0; i < 2; i++ {
		if _, err := c.GetPath("/api/v1/status"); err == nil {
			t.Fatal("want 500 error")
		}
	}
	wire := hits.Load()
	cs, err := c.GetPath("/api/v1/status")
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen, got %v", err)
	}
	if !cs.BreakerOpen {
		t.Fatalf("CallStats = %+v, want BreakerOpen", cs)
	}
	if hits.Load() != wire {
		t.Fatal("fast-fail still touched the network")
	}
	if st := c.Stats(); st.BreakerFastFails != 1 {
		t.Fatalf("ClientStats = %+v, want 1 breaker fast-fail", st)
	}
}

func TestClientHedgedReadWins(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			time.Sleep(300 * time.Millisecond) // slow primary
		}
		json.NewEncoder(w).Encode(map[string]string{"ok": "yes"})
	}))
	defer srv.Close()

	p := fastPolicy()
	p.HedgeDelay = 10 * time.Millisecond
	c := newRetryClient(t, srv, p)
	start := time.Now()
	cs, err := c.GetPath("/api/v1/status")
	if err != nil {
		t.Fatalf("hedged GET failed: %v", err)
	}
	if !cs.Hedged || !cs.HedgeWon {
		t.Fatalf("CallStats = %+v, want hedge launched and won", cs)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("hedge did not shortcut the slow primary (%v)", elapsed)
	}
	if st := c.Stats(); st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("ClientStats = %+v", st)
	}
}

func TestClientHedgeOnlySnapshotPaths(t *testing.T) {
	for path, want := range map[string]bool{
		"/api/v1/status":            true,
		"/v1/metrics":               true,
		"/v1/metrics/series":        true,
		"/v1/events?since=3":        true,
		"/api/v1/data/query?from=0": false,
		"/api/v1/models":            false,
		"/api/v1/stream":            false,
	} {
		if got := hedgeEligible(path); got != want {
			t.Errorf("hedgeEligible(%q) = %v, want %v", path, got, want)
		}
	}
}

// streamHandler serves exactly one frame per connection then closes,
// forcing a resilient client to reconnect with an advanced watermark.
func oneFramePerConnStream(t *testing.T) http.HandlerFunc {
	t.Helper()
	return func(w http.ResponseWriter, r *http.Request) {
		since := -time.Second
		if ss := r.URL.Query().Get("since"); ss != "" {
			sec, err := strconv.ParseFloat(ss, 64)
			if err != nil {
				t.Errorf("bad since %q", ss)
			}
			since = time.Duration(sec * float64(time.Second))
		}
		next := since + time.Second
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		json.NewEncoder(w).Encode(obs.Frame{WatermarkNs: int64(next)})
	}
}

func TestStreamFramesReconnectsFromWatermark(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/stream", oneFramePerConnStream(t))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := newRetryClient(t, srv, fastPolicy())
	frames, err := c.StreamFrames(0, 3)
	if err != nil {
		t.Fatalf("stream failed: %v", err)
	}
	if len(frames) != 3 {
		t.Fatalf("got %d frames, want 3", len(frames))
	}
	for i, f := range frames {
		if want := int64((i + 1)) * int64(time.Second); f.WatermarkNs != want {
			t.Fatalf("frame %d watermark %d, want %d (resume lost the cursor)", i, f.WatermarkNs, want)
		}
	}
	if st := c.Stats(); st.Reconnects != 2 {
		t.Fatalf("ClientStats = %+v, want 2 reconnects", st)
	}
}

func TestStreamFramesStopsOnFinalFrame(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/stream", func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		enc.Encode(obs.Frame{WatermarkNs: 1})
		enc.Encode(obs.Frame{WatermarkNs: 2, Final: true})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := newRetryClient(t, srv, fastPolicy())
	frames, err := c.StreamFrames(-1, 10)
	if err != nil {
		t.Fatalf("stream failed: %v", err)
	}
	if len(frames) != 2 || !frames[1].Final {
		t.Fatalf("got %d frames (final=%v), want 2 ending in a final frame", len(frames), frames[len(frames)-1].Final)
	}
	if st := c.Stats(); st.Reconnects != 0 {
		t.Fatalf("reconnected %d times past a final frame", st.Reconnects)
	}
}

func TestStreamFramesBoundedWithoutProgress(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/stream", func(w http.ResponseWriter, r *http.Request) {
		// Close immediately: zero frames, ever.
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	p := fastPolicy()
	p.MaxAttempts = 3
	c := newRetryClient(t, srv, p)
	frames, err := c.StreamFrames(-1, 5)
	if err == nil {
		t.Fatal("want error after exhausting no-progress reconnects")
	}
	if len(frames) != 0 {
		t.Fatalf("got %d frames from an empty stream", len(frames))
	}
	if st := c.Stats(); st.Reconnects != 2 {
		t.Fatalf("ClientStats = %+v, want exactly MaxAttempts-1 reconnects", st)
	}
}

func TestBackoffDecorrelatedJitterBounds(t *testing.T) {
	c := &Client{}
	c.SetRetryPolicy(&RetryPolicy{
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  80 * time.Millisecond,
		Seed:        7,
	})
	rs := c.retry
	prev := rs.policy.BaseBackoff
	for i := 0; i < 200; i++ {
		d := rs.backoff(prev, 0)
		if d < rs.policy.BaseBackoff || d > rs.policy.MaxBackoff {
			t.Fatalf("backoff %v outside [%v, %v]", d, rs.policy.BaseBackoff, rs.policy.MaxBackoff)
		}
		prev = d
	}
	// Retry-After dominates when larger than the drawn jitter.
	if d := rs.backoff(prev, 500*time.Millisecond); d != 500*time.Millisecond {
		t.Fatalf("backoff %v ignored Retry-After", d)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		c := &Client{}
		c.SetRetryPolicy(&RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: time.Second, Seed: seed})
		out := make([]time.Duration, 8)
		prev := c.retry.policy.BaseBackoff
		for i := range out {
			out[i] = c.retry.backoff(prev, 0)
			prev = out[i]
		}
		return out
	}
	a, b := draw(3), draw(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	if other := draw(4); fmt.Sprint(other) == fmt.Sprint(a) {
		t.Fatal("different seeds drew identical backoff sequences")
	}
}

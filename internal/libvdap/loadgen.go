package libvdap

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
)

// MixEntry weights one endpoint in the load mix.
type MixEntry struct {
	Endpoint string // status | metrics | series | events | stream
	Weight   int
}

// loadEndpoints maps mix endpoint names to request paths. Stream requests
// ask for a single frame so each request has a bounded lifetime.
var loadEndpoints = map[string]string{
	"status":  "/api/v1/status",
	"metrics": "/v1/metrics",
	"series":  "/v1/metrics/series",
	"events":  "/v1/events",
	"stream":  "/v1/stream?frames=1",
}

// DefaultMix is the serve benchmark's default endpoint mix: snapshot reads
// dominate, with a steady trickle of stream frames.
func DefaultMix() []MixEntry {
	return []MixEntry{
		{"status", 30},
		{"metrics", 25},
		{"series", 25},
		{"events", 15},
		{"stream", 5},
	}
}

// ParseMix parses "status=30,metrics=25,stream=5" into a mix.
func ParseMix(s string) ([]MixEntry, error) {
	if s == "" {
		return DefaultMix(), nil
	}
	var mix []MixEntry
	for _, part := range strings.Split(s, ",") {
		name, weight, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("libvdap: bad mix entry %q (want name=weight)", part)
		}
		if _, known := loadEndpoints[name]; !known {
			return nil, fmt.Errorf("libvdap: unknown mix endpoint %q", name)
		}
		var w int
		if _, err := fmt.Sscanf(weight, "%d", &w); err != nil || w <= 0 {
			return nil, fmt.Errorf("libvdap: bad mix weight %q", part)
		}
		mix = append(mix, MixEntry{Endpoint: name, Weight: w})
	}
	return mix, nil
}

// LoadGenConfig parameterizes one load-generation run against a live
// server.
type LoadGenConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8947".
	BaseURL string
	// Client issues the requests; its transport should allow at least
	// Clients idle connections per host.
	Client *http.Client
	// Clients is the number of concurrent client goroutines.
	Clients int
	// Duration is the wall-clock run length.
	Duration time.Duration
	// Mix weights the endpoints; nil means DefaultMix.
	Mix []MixEntry
	// Seed keys each client's private RNG stream.
	Seed int64
	// Retry, when set, routes every request through a resilient
	// libvdap.Client (one per load goroutine, seeded from Seed and the
	// goroutine id) instead of raw single-attempt GETs. Sheds and errors
	// then count only TERMINAL outcomes; recovered requests land in the
	// latency samples with their retries itemized separately.
	Retry *RetryPolicy
}

// EndpointStats aggregates one endpoint's samples from a load run.
// Errors and Rejected are terminal outcomes: a request that recovered via
// retry counts as a success, with its journey broken out in Sheds /
// Retries / RetriedOK.
type EndpointStats struct {
	Endpoint  string  `json:"endpoint"`
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`    // terminal transport failures + non-503 5xx
	Rejected  int64   `json:"rejected"`  // terminal 503 sheds (admission / backlog / drain)
	Sheds     int64   `json:"sheds"`     // every 503 observed, including ones later retried away
	Retries   int64   `json:"retries"`   // attempts beyond each request's first
	RetriedOK int64   `json:"retriedOk"` // requests that succeeded only after >=1 retry
	P50MS     float64 `json:"p50Ms"`
	P99MS     float64 `json:"p99Ms"`
	P999MS    float64 `json:"p999Ms"`
	MaxMS     float64 `json:"maxMs"`
}

// ErrorRate is errors over requests (0 when the endpoint saw no traffic).
func (e EndpointStats) ErrorRate() float64 {
	if e.Requests == 0 {
		return 0
	}
	return float64(e.Errors) / float64(e.Requests)
}

// LoadResult is one load run's aggregate outcome.
type LoadResult struct {
	Clients   int             `json:"clients"`
	WallMS    float64         `json:"wallMs"`
	Requests  int64           `json:"requests"`
	RPS       float64         `json:"rps"`
	Errors    int64           `json:"errors"`
	Rejected  int64           `json:"rejected"`
	Sheds     int64           `json:"sheds"`
	Retries   int64           `json:"retries"`
	RetriedOK int64           `json:"retriedOk"`
	Hedges    int64           `json:"hedges"`
	HedgeWins int64           `json:"hedgeWins"`
	Endpoints []EndpointStats `json:"endpoints"`
}

// SuccessRate is the client-observed fraction of requests that ended in a
// usable response (after any retries).
func (r LoadResult) SuccessRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return 1 - float64(r.Errors+r.Rejected)/float64(r.Requests)
}

type clientTally struct {
	requests, errors, rejected int64
	sheds, retries, retriedOK  int64
	hedges, hedgeWins          int64
	samples                    []float64 // latency ms, successful requests only
}

// RunLoad drives cfg.Clients concurrent clients against the server until
// cfg.Duration of wall time elapses, then folds every client's samples
// into per-endpoint latency percentiles and error rates. Each client picks
// endpoints from its own seeded RNG stream, so the offered mix is stable
// across runs of the same seed.
func RunLoad(cfg LoadGenConfig) (LoadResult, error) {
	if cfg.Clients <= 0 {
		return LoadResult{}, fmt.Errorf("libvdap: loadgen needs at least 1 client")
	}
	if cfg.Duration <= 0 {
		return LoadResult{}, fmt.Errorf("libvdap: loadgen needs a positive duration")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = DefaultMix()
	}
	// Expand the weighted mix into a pick table once.
	var picks []string
	for _, m := range mix {
		if _, ok := loadEndpoints[m.Endpoint]; !ok {
			return LoadResult{}, fmt.Errorf("libvdap: unknown mix endpoint %q", m.Endpoint)
		}
		for i := 0; i < m.Weight; i++ {
			picks = append(picks, m.Endpoint)
		}
	}
	if len(picks) == 0 {
		return LoadResult{}, fmt.Errorf("libvdap: empty endpoint mix")
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	tallies := make([]map[string]*clientTally, cfg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := sim.NewStream(cfg.Seed, uint64(id))
			var resilient *Client
			if cfg.Retry != nil {
				// One resilient client per goroutine: the breaker and
				// jitter RNG are per-client state, and per-goroutine seeds
				// keep backoff draws deterministic for a given (Seed, id).
				pol := *cfg.Retry
				pol.Seed = cfg.Seed ^ (int64(id)+1)<<20
				cl, err := NewClient(cfg.BaseURL, cfg.Client)
				if err == nil {
					cl.SetRetryPolicy(&pol)
					resilient = cl
				}
			}
			tally := make(map[string]*clientTally, len(loadEndpoints))
			tallies[id] = tally
			for time.Now().Before(deadline) {
				name := picks[rng.Intn(len(picks))]
				t := tally[name]
				if t == nil {
					t = &clientTally{}
					tally[name] = t
				}
				t.requests++
				reqStart := time.Now()
				if resilient != nil {
					cs, err := resilient.GetPath(loadEndpoints[name])
					elapsed := time.Since(reqStart)
					t.sheds += int64(cs.Sheds)
					if cs.Attempts > 1 {
						t.retries += int64(cs.Attempts - 1)
					}
					if cs.Hedged {
						t.hedges++
					}
					if cs.HedgeWon {
						t.hedgeWins++
					}
					switch {
					case err == nil:
						if cs.Attempts > 1 {
							t.retriedOK++
						}
						t.samples = append(t.samples, float64(elapsed)/float64(time.Millisecond))
					case cs.FinalStatus == http.StatusServiceUnavailable:
						t.rejected++
					default:
						t.errors++
					}
					continue
				}
				resp, err := cfg.Client.Get(cfg.BaseURL + loadEndpoints[name])
				if err != nil {
					t.errors++
					continue
				}
				_, cErr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				elapsed := time.Since(reqStart)
				switch {
				case cErr != nil || resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable:
					t.errors++
				case resp.StatusCode == http.StatusServiceUnavailable:
					t.sheds++
					t.rejected++
				default:
					t.samples = append(t.samples, float64(elapsed)/float64(time.Millisecond))
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	merged := make(map[string]*clientTally, len(loadEndpoints))
	for _, tally := range tallies {
		for name, t := range tally {
			m := merged[name]
			if m == nil {
				m = &clientTally{}
				merged[name] = m
			}
			m.requests += t.requests
			m.errors += t.errors
			m.rejected += t.rejected
			m.sheds += t.sheds
			m.retries += t.retries
			m.retriedOK += t.retriedOK
			m.hedges += t.hedges
			m.hedgeWins += t.hedgeWins
			m.samples = append(m.samples, t.samples...)
		}
	}

	res := LoadResult{
		Clients: cfg.Clients,
		WallMS:  float64(wall) / float64(time.Millisecond),
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := merged[name]
		sort.Float64s(t.samples)
		st := EndpointStats{
			Endpoint:  name,
			Requests:  t.requests,
			Errors:    t.errors,
			Rejected:  t.rejected,
			Sheds:     t.sheds,
			Retries:   t.retries,
			RetriedOK: t.retriedOK,
			P50MS:     percentile(t.samples, 0.50),
			P99MS:     percentile(t.samples, 0.99),
			P999MS:    percentile(t.samples, 0.999),
		}
		if n := len(t.samples); n > 0 {
			st.MaxMS = t.samples[n-1]
		}
		res.Endpoints = append(res.Endpoints, st)
		res.Requests += t.requests
		res.Errors += t.errors
		res.Rejected += t.rejected
		res.Sheds += t.sheds
		res.Retries += t.retries
		res.RetriedOK += t.retriedOK
		res.Hedges += t.hedges
		res.HedgeWins += t.hedgeWins
	}
	if wall > 0 {
		res.RPS = float64(res.Requests) / wall.Seconds()
	}
	return res, nil
}

// percentile reads the p-quantile from ascending-sorted samples via the
// nearest-rank method.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

package libvdap

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// TestGzipWriterForwardsFlush pins the streaming contract of the gzip
// wrapper: the wrapped writer must satisfy http.Flusher, push compressed
// bytes through on Flush, and drop any stale Content-Length.
func TestGzipWriterForwardsFlush(t *testing.T) {
	rec := httptest.NewRecorder()
	h := gzipped(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("gzipped writer does not forward http.Flusher")
		}
		w.Header().Set("Content-Length", "5") // stale: compressed length differs
		fmt.Fprint(w, "first")
		f.Flush()
		fmt.Fprint(w, " second")
	})
	req := httptest.NewRequest("GET", "/v1/metrics", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	h(rec, req)

	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
	if cl := rec.Header().Get("Content-Length"); cl != "" {
		t.Fatalf("stale Content-Length %q survived", cl)
	}
	gz, err := gzip.NewReader(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := io.Copy(&out, gz); err != nil {
		t.Fatal(err)
	}
	if out.String() != "first second" {
		t.Fatalf("body = %q", out.String())
	}
}

// TestGzipFlushMidStream reads a gzipped streaming response over a real
// connection frame by frame: the first flushed chunk must arrive before
// the handler finishes.
func TestGzipFlushMidStream(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(gzipped(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"frame":1}`)
		w.(http.Flusher).Flush()
		<-release
		fmt.Fprintln(w, `{"frame":2}`)
	}))
	defer ts.Close()
	defer close(release)

	req, _ := http.NewRequest("GET", ts.URL, nil)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	line := make(chan string, 1)
	go func() {
		l, _ := bufio.NewReader(gz).ReadString('\n')
		line <- l
	}()
	select {
	case l := <-line:
		if !strings.Contains(l, `"frame":1`) {
			t.Fatalf("first flushed line = %q", l)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flushed gzip frame never arrived while the handler was still running")
	}
}

// failingWriter fails every write after the first n bytes, standing in for
// a client that hung up mid-body.
type failingWriter struct {
	header http.Header
	code   int
}

func (f *failingWriter) Header() http.Header {
	if f.header == nil {
		f.header = http.Header{}
	}
	return f.header
}
func (f *failingWriter) WriteHeader(code int)      { f.code = code }
func (f *failingWriter) Write([]byte) (int, error) { return 0, errors.New("broken pipe") }

// TestWriteJSONCountsWriteErrors pins satellite bug 4: a mid-body write
// failure must land in libvdap.write_errors instead of vanishing.
func TestWriteJSONCountsWriteErrors(t *testing.T) {
	srv, err := NewServer(nil, nil, nil, nil, func() time.Duration { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	srv.AttachTelemetry(reg)

	srv.writeJSON(&failingWriter{}, http.StatusOK, map[string]string{"k": "v"})
	if got := srv.Stats().WriteErrors; got != 1 {
		t.Fatalf("WriteErrors = %d, want 1", got)
	}
	if got := reg.Snapshot().Counters["libvdap.write_errors"]; got != 1 {
		t.Fatalf("libvdap.write_errors = %v, want 1", got)
	}

	// Unmarshalable values count too (and produce a clean 500).
	fw := &failingWriter{}
	srv.writeJSON(fw, http.StatusOK, map[string]any{"bad": func() {}})
	if got := srv.Stats().WriteErrors; got != 2 {
		t.Fatalf("WriteErrors after marshal failure = %d, want 2", got)
	}
}

// TestWriteErrorsWithoutTelemetry: the counter path must be nil-safe
// before AttachTelemetry.
func TestWriteErrorsWithoutTelemetry(t *testing.T) {
	srv, err := NewServer(nil, nil, nil, nil, func() time.Duration { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	srv.writeJSON(&failingWriter{}, http.StatusOK, "x")
	if got := srv.Stats().WriteErrors; got != 1 {
		t.Fatalf("WriteErrors = %d, want 1", got)
	}
}

// TestStreamSlowClientDisconnect pins satellite bug 3: a client that goes
// away mid-stream must be observed and the handler must exit instead of
// polling forever.
func TestStreamSlowClientDisconnect(t *testing.T) {
	now := time.Second
	srv, err := NewServer(nil, nil, nil, nil, func() time.Duration { return now })
	if err != nil {
		t.Fatal(err)
	}
	store := obs.NewSeriesStore(16)
	store.RecordGauge("g", 100*time.Millisecond, 1)
	srv.AttachSeries(store)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Raw TCP client: read the first frame, then vanish without a clean
	// shutdown. frames=0 would otherwise stream forever.
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "GET /v1/stream?frames=0&poll=0.005 HTTP/1.1\r\nHost: x\r\n\r\n")
	br := bufio.NewReader(conn)
	sawFrame := false
	for i := 0; i < 64; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading response: %v", err)
		}
		if strings.Contains(line, "watermarkNs") {
			sawFrame = true
			break
		}
	}
	if !sawFrame {
		t.Fatal("never saw a stream frame")
	}
	if got := srv.ActiveStreams(); got != 1 {
		t.Fatalf("ActiveStreams = %d, want 1", got)
	}
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveStreams() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stream handler still running %v after client disconnect", 5*time.Second)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAdmissionControlSheds pins the overload contract: when the run-lock
// backlog is full, simulation-touching endpoints shed with 503 +
// Retry-After JSON instead of queueing without bound.
func TestAdmissionControlSheds(t *testing.T) {
	ts, _, _ := newTestServer(t)
	srv := fetchServer(t, ts)
	srv.SetMaxSimInflight(1)

	// Hold the run lock as a tick loop would mid-step.
	holding := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- srv.Advance(func() error {
			close(holding)
			<-release
			return nil
		})
	}()
	<-holding

	// First request takes the only admission slot and parks on the lock.
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		resp, err := http.Get(ts.URL + "/api/v1/resources")
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Wait until the slot is actually taken before probing, otherwise the
	// probe itself could grab it and park on the held lock.
	gateDeadline := time.Now().Add(5 * time.Second)
	for len(srv.simGate) == 0 {
		if time.Now().After(gateDeadline) {
			t.Fatal("parked request never took the admission slot")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/api/v1/resources")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("probe status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 missing Retry-After")
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("503 Content-Type = %q, want JSON", ct)
	}
	if srv.Stats().Rejected == 0 {
		t.Fatal("shed requests not counted")
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	<-parked
}

// fetchServer digs the *Server back out of a test fixture; newTestServer
// returns only the httptest wrapper.
func fetchServer(t *testing.T, ts *httptest.Server) *Server {
	t.Helper()
	srv, ok := ts.Config.Handler.(*Server)
	if !ok {
		t.Fatalf("handler is %T, want *Server", ts.Config.Handler)
	}
	return srv
}

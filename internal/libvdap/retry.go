package libvdap

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/offload"
	"repro/internal/sim"
)

// RetryPolicy makes a Client survive the network chaos an edge deployment
// lives on: bounded exponential backoff with decorrelated jitter, honoring
// the server's Retry-After on 503 sheds, retrying only idempotent GETs by
// default, per-request timeouts, a client-side circuit breaker (the same
// state machine the offload tier uses, clocked on wall time), and hedged
// reads for the snapshot endpoints. The zero value of every field picks a
// sensible default; install with Client.SetRetryPolicy.
type RetryPolicy struct {
	// MaxAttempts bounds total tries per request, first attempt included
	// (default 4). It also bounds consecutive no-progress stream
	// reconnects.
	MaxAttempts int
	// BaseBackoff seeds the decorrelated-jitter backoff (default 25ms);
	// MaxBackoff caps it (default 1s). Each retry sleeps
	// min(MaxBackoff, uniform(BaseBackoff, 3*previous)), and never less
	// than a 503's Retry-After.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// PerRequestTimeout bounds each attempt's full round trip (default 5s;
	// negative disables).
	PerRequestTimeout time.Duration
	// RetryNonIdempotent also retries POSTs. Default off: only idempotent
	// GETs are safely repeatable.
	RetryNonIdempotent bool
	// HedgeDelay, when positive, launches a second identical request for
	// the snapshot endpoints (status, metrics, series, events) if the
	// first has not resolved in time; the first usable response wins.
	HedgeDelay time.Duration
	// BreakerThreshold consecutive failures open the client breaker
	// (default 8); while open, calls fast-fail for BreakerCooldown of wall
	// time (default 500ms), then a single probe decides.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Seed keys the jitter RNG so paired benchmark runs draw identical
	// backoff sequences.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.PerRequestTimeout == 0 {
		p.PerRequestTimeout = 5 * time.Second
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 8
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 500 * time.Millisecond
	}
	return p
}

// retryState is the mutable half of an installed policy: the jitter RNG
// and the breaker, both shared by every goroutine using the Client and so
// guarded by one mutex (the critical sections are a few loads and adds).
// The breaker reuses offload.Breaker — the closed/open/half-open machine
// proven on the offload path — clocked on wall time since installation.
type retryState struct {
	policy RetryPolicy

	mu      sync.Mutex
	rng     *sim.RNG
	breaker *offload.Breaker
	epoch   time.Time
}

func (rs *retryState) now() time.Duration { return time.Since(rs.epoch) }

// allow asks the breaker for admission at the current wall time.
func (rs *retryState) allow() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.breaker.Allow(rs.now())
}

func (rs *retryState) recordSuccess() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.breaker.RecordSuccess(rs.now())
}

func (rs *retryState) recordFailure() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.breaker.RecordFailure(rs.now())
}

// backoff draws the next decorrelated-jitter sleep from prev, floored at
// the server's Retry-After hint when one arrived.
func (rs *retryState) backoff(prev, retryAfter time.Duration) time.Duration {
	p := rs.policy
	rs.mu.Lock()
	d := time.Duration(rs.rng.Uniform(float64(p.BaseBackoff), float64(3*prev)))
	rs.mu.Unlock()
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if d < p.BaseBackoff {
		d = p.BaseBackoff
	}
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// SetRetryPolicy installs (or, with nil, removes) the client's resilience
// policy. Install before sharing the client across goroutines.
func (c *Client) SetRetryPolicy(p *RetryPolicy) {
	if p == nil {
		c.retry = nil
		return
	}
	pol := p.withDefaults()
	c.retry = &retryState{
		policy:  pol,
		rng:     sim.NewStream(pol.Seed, 0x7e747279), // "retry"
		breaker: offload.NewBreaker(pol.BreakerThreshold, pol.BreakerCooldown),
		epoch:   time.Now(),
	}
}

// RetryPolicyInstalled reports whether a resilience policy is active.
func (c *Client) RetryPolicyInstalled() bool { return c.retry != nil }

// ClientStats aggregates the client's lifetime resilience counters.
type ClientStats struct {
	Retries          int64 `json:"retries"`          // attempts beyond each request's first
	Sheds            int64 `json:"sheds"`            // 503 responses observed (including retried ones)
	RetriedOK        int64 `json:"retriedOk"`        // requests that succeeded after >=1 retry
	Hedges           int64 `json:"hedges"`           // hedge requests launched
	HedgeWins        int64 `json:"hedgeWins"`        // hedges that beat the primary
	Reconnects       int64 `json:"reconnects"`       // stream re-dials resuming from a watermark
	BreakerFastFails int64 `json:"breakerFastFails"` // calls rejected by the open breaker
}

// clientCounters is the atomic backing store for ClientStats.
type clientCounters struct {
	retries, sheds, retriedOK    atomic.Int64
	hedges, hedgeWins            atomic.Int64
	reconnects, breakerFastFails atomic.Int64
}

// Stats snapshots the client's resilience counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Retries:          c.counters.retries.Load(),
		Sheds:            c.counters.sheds.Load(),
		RetriedOK:        c.counters.retriedOK.Load(),
		Hedges:           c.counters.hedges.Load(),
		HedgeWins:        c.counters.hedgeWins.Load(),
		Reconnects:       c.counters.reconnects.Load(),
		BreakerFastFails: c.counters.breakerFastFails.Load(),
	}
}

// CallStats itemizes one call's resilience activity — what the load
// generator folds into its per-endpoint shed/retry columns.
type CallStats struct {
	Attempts    int  // round trips issued (>=1 unless the breaker fast-failed)
	Sheds       int  // 503 responses observed across attempts
	FinalStatus int  // HTTP status of the winning/terminal attempt (0 on transport error or fast-fail)
	Hedged      bool // a hedge request was launched
	HedgeWon    bool // ...and it beat the primary
	Reconnects  int  // stream re-dials
	BreakerOpen bool // the call fast-failed on the open breaker
}

// ErrBreakerOpen is returned (wrapped) when the client breaker fast-fails
// a call without touching the network.
var ErrBreakerOpen = fmt.Errorf("libvdap: client circuit breaker open")

// snapshotPaths are the four cached snapshot endpoints eligible for hedged
// reads: cheap, idempotent, watermark-cached server-side, so a duplicate
// costs one cache hit.
var snapshotPaths = map[string]bool{
	"/api/v1/status":         true,
	"/v1/metrics":            true,
	"/api/v1/metrics":        true,
	"/v1/metrics/series":     true,
	"/api/v1/metrics/series": true,
	"/v1/events":             true,
	"/api/v1/events":         true,
}

// hedgeEligible reports whether a request path (query string ignored) may
// be hedged under the installed policy.
func hedgeEligible(path string) bool {
	if i := indexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	return snapshotPaths[path]
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// attemptResult is one HTTP round trip, body fully read.
type attemptResult struct {
	status     int
	body       []byte
	retryAfter time.Duration
	err        error
	hedge      bool // this result came from the hedge leg
}

// retryable classifies an attempt outcome: transport errors, 503 sheds,
// and other 5xx responses are worth retrying; everything else is terminal
// (2xx/3xx success, 4xx caller error).
func (r attemptResult) retryable() bool {
	return r.err != nil || r.status == http.StatusServiceUnavailable || r.status >= 500
}

// attempt runs one HTTP round trip and reads the full body.
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte, hedge bool) attemptResult {
	var reader io.Reader
	if payload != nil {
		reader = newByteReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, reader)
	if err != nil {
		return attemptResult{err: fmt.Errorf("build request: %w", err), hedge: hedge}
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("X-VDAP-Token", c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return attemptResult{err: fmt.Errorf("%s %s: %w", method, path, err), hedge: hedge}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return attemptResult{err: fmt.Errorf("%s %s: read body: %w", method, path, err), hedge: hedge}
	}
	res := attemptResult{status: resp.StatusCode, body: body, hedge: hedge}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.ParseFloat(ra, 64); err == nil && secs > 0 {
			res.retryAfter = time.Duration(secs * float64(time.Second))
		}
	}
	return res
}

// attemptCtx wraps the per-request timeout around one attempt.
func (c *Client) attemptCtx(method, path string, payload []byte, hedge bool) (attemptResult, context.CancelFunc) {
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if rs := c.retry; rs != nil && rs.policy.PerRequestTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, rs.policy.PerRequestTimeout)
	}
	return c.attempt(ctx, method, path, payload, hedge), cancel
}

// hedgedAttempt races a primary against a delayed hedge and returns the
// first usable (non-retryable) result, or the primary's failure when both
// legs fail. The losing leg is cancelled.
func (c *Client) hedgedAttempt(method, path string, payload []byte, cs *CallStats) attemptResult {
	rs := c.retry
	results := make(chan attemptResult, 2)
	launch := func(hedge bool) context.CancelFunc {
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if rs.policy.PerRequestTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, rs.policy.PerRequestTimeout)
		}
		go func() { results <- c.attempt(ctx, method, path, payload, hedge) }()
		return cancel
	}
	cancelPrimary := launch(false)
	defer cancelPrimary()
	timer := time.NewTimer(rs.policy.HedgeDelay)
	defer timer.Stop()

	var first attemptResult
	select {
	case first = <-results:
		return first // primary resolved before the hedge trigger
	case <-timer.C:
	}
	c.counters.hedges.Add(1)
	if cs != nil {
		cs.Hedged = true
	}
	cancelHedge := launch(true)
	defer cancelHedge()

	first = <-results
	if !first.retryable() {
		if first.hedge {
			c.counters.hedgeWins.Add(1)
			if cs != nil {
				cs.HedgeWon = true
			}
		}
		return first
	}
	// First leg failed; the slower leg may still save the call.
	second := <-results
	if !second.retryable() {
		if second.hedge {
			c.counters.hedgeWins.Add(1)
			if cs != nil {
				cs.HedgeWon = true
			}
		}
		return second
	}
	if !first.hedge {
		return first
	}
	return second
}

// call is the resilient request core behind every Client method: marshal
// once, attempt with retry/backoff/hedging per the installed policy, then
// decode the winning body into out.
func (c *Client) call(method, path string, body, out any, cs *CallStats) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = marshalBody(body); err != nil {
			return fmt.Errorf("marshal request: %w", err)
		}
	}
	rs := c.retry
	if rs == nil {
		res, cancel := c.attemptCtx(method, path, payload, false)
		cancel()
		if cs != nil {
			cs.Attempts = 1
			cs.FinalStatus = res.status
			if res.status == http.StatusServiceUnavailable {
				cs.Sheds++
			}
		}
		return finishCall(method, path, res, out)
	}

	if !rs.allow() {
		c.counters.breakerFastFails.Add(1)
		if cs != nil {
			cs.BreakerOpen = true
		}
		return fmt.Errorf("%s %s: %w", method, path, ErrBreakerOpen)
	}
	idempotent := method == http.MethodGet || rs.policy.RetryNonIdempotent
	hedging := rs.policy.HedgeDelay > 0 && method == http.MethodGet && hedgeEligible(path)
	prevSleep := rs.policy.BaseBackoff
	var res attemptResult
	for attempt := 1; ; attempt++ {
		if hedging {
			res = c.hedgedAttempt(method, path, payload, cs)
		} else {
			var cancel context.CancelFunc
			res, cancel = c.attemptCtx(method, path, payload, false)
			cancel()
		}
		if cs != nil {
			cs.Attempts++
			cs.FinalStatus = res.status
			if res.status == http.StatusServiceUnavailable {
				cs.Sheds++
			}
		}
		if res.status == http.StatusServiceUnavailable {
			c.counters.sheds.Add(1)
		}
		if !res.retryable() {
			rs.recordSuccess()
			if attempt > 1 {
				c.counters.retriedOK.Add(1)
			}
			return finishCall(method, path, res, out)
		}
		rs.recordFailure()
		if !idempotent || attempt >= rs.policy.MaxAttempts {
			return finishCall(method, path, res, out)
		}
		if !rs.allow() {
			// The breaker opened mid-sequence; stop hammering.
			c.counters.breakerFastFails.Add(1)
			if cs != nil {
				cs.BreakerOpen = true
			}
			return fmt.Errorf("%s %s: %w", method, path, ErrBreakerOpen)
		}
		c.counters.retries.Add(1)
		sleep := rs.backoff(prevSleep, res.retryAfter)
		prevSleep = sleep
		time.Sleep(sleep)
	}
}

// GetPath issues a resilient GET for an arbitrary API path, discarding the
// body — the load generator's per-request entry point.
func (c *Client) GetPath(path string) (CallStats, error) {
	var cs CallStats
	err := c.call(http.MethodGet, path, nil, nil, &cs)
	return cs, err
}

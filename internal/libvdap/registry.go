// Package libvdap is OpenVDAP's edge-aware application library (paper
// §IV-E): a registry of compressed AI models (the common model library and
// pBEAM), and a uniform RESTful API over the VCU system resources, the
// Data Sharing module, and DDI — the four resource groups of Figure 8 —
// plus a Go client for application developers.
package libvdap

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/hardware"
	"repro/internal/models"
)

// ModelKind labels a registry entry's domain.
type ModelKind string

// Common model-library domains (paper Figure 8) plus the personalized
// driving-behavior model.
const (
	KindDrivingBehavior ModelKind = "driving-behavior"
	KindNLP             ModelKind = "nlp"
	KindVideo           ModelKind = "video"
	KindAudio           ModelKind = "audio"
)

// ModelInfo is registry metadata served over the API.
type ModelInfo struct {
	Name         string    `json:"name"`
	Kind         ModelKind `json:"kind"`
	Version      int       `json:"version"`
	SizeBytes    int       `json:"sizeBytes"`
	Compressed   bool      `json:"compressed"`
	Personalized bool      `json:"personalized"`
	// InferenceGFLOP is the cost-model weight for scheduling its runs.
	InferenceGFLOP float64 `json:"inferenceGflop"`
	// Class is the hardware task class of inference.
	Class string `json:"class"`
}

// entry binds metadata to an executable model (may be nil for cost-model-
// only entries like the video/audio processors).
type entry struct {
	info ModelInfo
	mlp  *models.MLP
}

// Registry is the thread-safe model store behind the API.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// RegisterMLP stores an executable model with metadata derived from it.
func (r *Registry) RegisterMLP(name string, kind ModelKind, m *models.MLP, compressed, personalized bool, gflop float64) error {
	if name == "" {
		return fmt.Errorf("libvdap: model needs a name")
	}
	if m == nil {
		return fmt.Errorf("libvdap: nil model for %q", name)
	}
	if gflop <= 0 {
		return fmt.Errorf("libvdap: model %q needs a positive inference cost", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	version := 1
	if old, ok := r.entries[name]; ok {
		version = old.info.Version + 1
	}
	r.entries[name] = &entry{
		info: ModelInfo{
			Name: name, Kind: kind, Version: version,
			SizeBytes: m.SizeBytes(), Compressed: compressed,
			Personalized:   personalized,
			InferenceGFLOP: gflop,
			Class:          hardware.DNNInference.String(),
		},
		mlp: m,
	}
	return nil
}

// RegisterCostModel stores a metadata-only entry (e.g. the compressed
// video-processing model whose execution is represented by its cost).
func (r *Registry) RegisterCostModel(info ModelInfo) error {
	if info.Name == "" {
		return fmt.Errorf("libvdap: model needs a name")
	}
	if info.InferenceGFLOP <= 0 {
		return fmt.Errorf("libvdap: model %q needs a positive inference cost", info.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.entries[info.Name]; ok {
		info.Version = old.info.Version + 1
	} else if info.Version == 0 {
		info.Version = 1
	}
	r.entries[info.Name] = &entry{info: info}
	return nil
}

// List returns all model metadata sorted by name.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Info returns one model's metadata.
func (r *Registry) Info(name string) (ModelInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return ModelInfo{}, fmt.Errorf("libvdap: unknown model %q", name)
	}
	return e.info, nil
}

// Predict runs an executable model on a feature vector.
func (r *Registry) Predict(name string, features []float64) (probs []float64, class int, err error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("libvdap: unknown model %q", name)
	}
	if e.mlp == nil {
		return nil, 0, fmt.Errorf("libvdap: model %q is not executable", name)
	}
	probs, err = e.mlp.Predict(features)
	if err != nil {
		return nil, 0, err
	}
	class = 0
	for c, p := range probs {
		if p > probs[class] {
			class = c
		}
	}
	return probs, class, nil
}

// DefaultCommonLibrary registers the paper's common-model-library entries:
// compressed NLP, video, and audio models represented by their scheduling
// cost (their execution paths are the tasks-package workloads).
func DefaultCommonLibrary(r *Registry) error {
	common := []ModelInfo{
		{Name: "nlp-voice-command", Kind: KindNLP, SizeBytes: 18 << 20, Compressed: true, InferenceGFLOP: 1.8, Class: hardware.DNNInference.String()},
		{Name: "video-object-detect", Kind: KindVideo, SizeBytes: 44 << 20, Compressed: true, InferenceGFLOP: hardware.InceptionV3GFLOP, Class: hardware.DNNInference.String()},
		{Name: "audio-event-detect", Kind: KindAudio, SizeBytes: 9 << 20, Compressed: true, InferenceGFLOP: 0.9, Class: hardware.DNNInference.String()},
	}
	for _, info := range common {
		if err := r.RegisterCostModel(info); err != nil {
			return err
		}
	}
	return nil
}

package libvdap

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/ddi"
	"repro/internal/edgeos"
	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vcu"
)

// Clock supplies virtual time to API handlers so HTTP access participates
// in the simulation's timeline.
type Clock func() time.Duration

// Server is the uniform RESTful API of Figure 8. Every handler fronts one
// of the four resource groups: model library, VCU system resources, data
// sharing, and DDI.
type Server struct {
	registry *Registry
	mhep     *vcu.MHEP
	store    *ddi.DDI
	sharing  *edgeos.DataSharing
	elastic  *edgeos.ElasticManager
	metrics  *telemetry.Registry
	tracer   *trace.Tracer
	series   *obs.SeriesStore
	events   *obs.Recorder
	clock    Clock
	mux      *http.ServeMux
}

// NewServer wires the API. Any resource group may be nil; its endpoints
// then return 503.
func NewServer(registry *Registry, mhep *vcu.MHEP, store *ddi.DDI, sharing *edgeos.DataSharing, clock Clock) (*Server, error) {
	if clock == nil {
		return nil, fmt.Errorf("libvdap: nil clock")
	}
	s := &Server{
		registry: registry,
		mhep:     mhep,
		store:    store,
		sharing:  sharing,
		clock:    clock,
		mux:      http.NewServeMux(),
	}
	s.routes()
	return s, nil
}

// AttachElastic adds the EdgeOSv service endpoints (list, invoke) backed
// by the given elastic manager.
func (s *Server) AttachElastic(m *edgeos.ElasticManager) { s.elastic = m }

// AttachTelemetry backs GET /api/v1/metrics (alias /v1/metrics) with the
// given registry.
func (s *Server) AttachTelemetry(reg *telemetry.Registry) { s.metrics = reg }

// AttachTracer backs GET /api/v1/trace (alias /v1/trace) with the given
// tracer.
func (s *Server) AttachTracer(tr *trace.Tracer) { s.tracer = tr }

// AttachSeries backs GET /v1/metrics/series (and the series half of
// /v1/stream) with the given store.
func (s *Server) AttachSeries(store *obs.SeriesStore) { s.series = store }

// AttachEvents backs GET /v1/events (and the event half of /v1/stream)
// with the given flight recorder.
func (s *Server) AttachEvents(rec *obs.Recorder) { s.events = rec }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

var _ http.Handler = (*Server)(nil)

func (s *Server) routes() {
	s.mux.HandleFunc("GET /api/v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /api/v1/models", s.handleListModels)
	s.mux.HandleFunc("GET /api/v1/models/{name}", s.handleModelInfo)
	s.mux.HandleFunc("POST /api/v1/models/{name}/predict", s.handlePredict)
	s.mux.HandleFunc("GET /api/v1/resources", s.handleResources)
	s.mux.HandleFunc("POST /api/v1/data/upload", s.handleUpload)
	s.mux.HandleFunc("GET /api/v1/data/query", s.handleQuery)
	s.mux.HandleFunc("GET /api/v1/sharing/topics", s.handleTopics)
	s.mux.HandleFunc("POST /api/v1/sharing/publish", s.handlePublish)
	s.mux.HandleFunc("GET /api/v1/sharing/fetch", s.handleFetch)
	s.mux.HandleFunc("GET /api/v1/services", s.handleListServices)
	s.mux.HandleFunc("POST /api/v1/services/{name}/invoke", s.handleInvokeService)
	s.mux.HandleFunc("GET /api/v1/metrics", gzipped(s.handleMetrics))
	s.mux.HandleFunc("GET /v1/metrics", gzipped(s.handleMetrics))
	s.mux.HandleFunc("GET /api/v1/trace", gzipped(s.handleTrace))
	s.mux.HandleFunc("GET /v1/trace", gzipped(s.handleTrace))
	s.mux.HandleFunc("GET /api/v1/metrics/series", gzipped(s.handleSeries))
	s.mux.HandleFunc("GET /v1/metrics/series", gzipped(s.handleSeries))
	s.mux.HandleFunc("GET /api/v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /api/v1/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/stream", s.handleStream)
}

// gzipWriter forwards writes through a gzip stream while keeping the
// underlying ResponseWriter's headers.
type gzipWriter struct {
	http.ResponseWriter
	gz *gzip.Writer
}

func (g *gzipWriter) Write(b []byte) (int, error) { return g.gz.Write(b) }

// gzipped wraps a handler with Accept-Encoding-negotiated gzip response
// compression — the bulk endpoints (metrics, trace, series) serve the
// largest bodies of the API.
func gzipped(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			h(w, r)
			return
		}
		w.Header().Set("Content-Encoding", "gzip")
		w.Header().Add("Vary", "Accept-Encoding")
		gz := gzip.NewWriter(w)
		defer gz.Close()
		h(&gzipWriter{ResponseWriter: w, gz: gz}, r)
	}
}

// handleMetrics serves the telemetry snapshot. The default is the JSON
// Snapshot shape; ?format=text renders the sorted human-readable table.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.metrics == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("telemetry not attached"))
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, s.metrics.Render())
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

// handleTrace serves the recorded span forest. The default is Chrome
// trace_event JSON (load in chrome://tracing or Perfetto); ?format=tree
// renders the indented text tree.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("tracer not attached"))
		return
	}
	if r.URL.Query().Get("format") == "tree" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, s.tracer.RenderTree())
		return
	}
	out, err := s.tracer.ChromeTrace()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(out)
}

// parseSince reads an optional virtual-time watermark in seconds; an empty
// value means "everything" (a negative watermark).
func parseSince(s string) (time.Duration, error) {
	if s == "" {
		return -1, nil
	}
	return parseSeconds(s)
}

// handleSeries serves the sampled metric time-series: delta-encoded
// timestamps, values, and windowed rates per metric, optionally restricted
// to points after ?since=<seconds of virtual time>.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	if s.series == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("series store not attached"))
		return
	}
	since, err := parseSince(r.URL.Query().Get("since"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.series.Payload(since))
}

// EventsResponse is the `/v1/events` payload.
type EventsResponse struct {
	Events  []obs.Event `json:"events"`
	Dropped int         `json:"dropped,omitempty"`
}

// handleEvents serves the flight-recorder log with ?since=<seconds>,
// ?component= and ?severity=<minimum> filters; ?format=table renders the
// text table instead.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.events == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("flight recorder not attached"))
		return
	}
	if r.URL.Query().Get("format") == "table" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, s.events.RenderTable())
		return
	}
	since, err := parseSince(r.URL.Query().Get("since"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	minSev := obs.SevDebug
	if sev := r.URL.Query().Get("severity"); sev != "" {
		if minSev, err = obs.ParseSeverity(sev); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	component := r.URL.Query().Get("component")
	writeJSON(w, http.StatusOK, EventsResponse{
		Events:  s.events.EventsSince(since, component, minSev),
		Dropped: s.events.Dropped(),
	})
}

// handleStream serves chunked newline-delimited JSON frames keyed on
// virtual-time watermarks: each frame carries only the series points and
// events past the previous frame's watermark, so a long-lived client never
// re-reads a full snapshot. ?since=<seconds> seeds the first watermark,
// ?frames=<n> bounds the frame count (0 streams until the client
// disconnects), and ?poll=<seconds> sets the wall-clock re-check interval.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if s.series == nil && s.events == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("observability not attached"))
		return
	}
	watermark, err := parseSince(r.URL.Query().Get("since"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	frames := 0
	if fs := r.URL.Query().Get("frames"); fs != "" {
		if frames, err = strconv.Atoi(fs); err != nil || frames < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad frames %q", fs))
			return
		}
	}
	poll := 100 * time.Millisecond
	if ps := r.URL.Query().Get("poll"); ps != "" {
		if poll, err = parseSeconds(ps); err != nil || poll <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad poll %q", ps))
			return
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		now := s.clock()
		// The first frame ships the backlog immediately; later frames wait
		// for the watermark to advance.
		if sent == 0 || now > watermark {
			frame := obs.Frame{WatermarkNs: int64(now)}
			if s.series != nil {
				p := s.series.Payload(watermark)
				frame.Series = &p
			}
			if s.events != nil {
				frame.Events = s.events.EventsSince(watermark, "", obs.SevDebug)
			}
			if err := enc.Encode(frame); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			watermark = now
			sent++
		}
		if frames > 0 && sent >= frames {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(poll):
		}
	}
}

// ServiceInfo summarizes one EdgeOSv service over the API.
type ServiceInfo struct {
	Name        string         `json:"name"`
	Priority    int            `json:"priority"`
	State       string         `json:"state"`
	Invocations int            `json:"invocations"`
	HangUps     int            `json:"hangUps"`
	AvgMS       float64        `json:"avgLatencyMs"`
	EnergyJ     float64        `json:"energyJ"`
	PipelineUse map[string]int `json:"pipelineUse"`
}

func (s *Server) handleListServices(w http.ResponseWriter, r *http.Request) {
	if s.elastic == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("EdgeOSv not attached"))
		return
	}
	services := s.elastic.Services()
	out := make([]ServiceInfo, 0, len(services))
	for _, svc := range services {
		st, err := s.elastic.Stats(svc.Name)
		if err != nil {
			continue
		}
		info := ServiceInfo{
			Name:        svc.Name,
			Priority:    int(svc.Priority),
			State:       svc.State().String(),
			Invocations: st.Invocations,
			HangUps:     st.HangUps,
			EnergyJ:     st.TotalEnergyJ,
			PipelineUse: st.PipelineUse,
		}
		if n := st.Invocations - st.HangUps; n > 0 {
			info.AvgMS = float64(st.TotalLatency) / float64(n) / float64(time.Millisecond)
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// InvokeResponse reports one API-triggered service invocation.
type InvokeResponse struct {
	Service   string  `json:"service"`
	Pipeline  string  `json:"pipeline"`
	Dest      string  `json:"dest"`
	LatencyMS float64 `json:"latencyMs"`
	HungUp    bool    `json:"hungUp"`
}

func (s *Server) handleInvokeService(w http.ResponseWriter, r *http.Request) {
	if s.elastic == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("EdgeOSv not attached"))
		return
	}
	name := r.PathValue("name")
	res, err := s.elastic.Invoke(name, s.clock())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, InvokeResponse{
		Service:   res.Service,
		Pipeline:  res.Pipeline,
		Dest:      res.Dest,
		LatencyMS: float64(res.Latency) / float64(time.Millisecond),
		HungUp:    res.HungUp,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do.
		return
	}
}

type apiError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"platform":    "openvdap",
		"virtualTime": s.clock().Seconds(),
		"groups": map[string]bool{
			"models":    s.registry != nil,
			"resources": s.mhep != nil,
			"data":      s.store != nil,
			"sharing":   s.sharing != nil,
		},
	})
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	if s.registry == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("model library not attached"))
		return
	}
	writeJSON(w, http.StatusOK, s.registry.List())
}

func (s *Server) handleModelInfo(w http.ResponseWriter, r *http.Request) {
	if s.registry == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("model library not attached"))
		return
	}
	info, err := s.registry.Info(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// PredictRequest is the body of POST /models/{name}/predict.
type PredictRequest struct {
	Features []float64 `json:"features"`
}

// PredictResponse is its result.
type PredictResponse struct {
	Probabilities []float64 `json:"probabilities"`
	Class         int       `json:"class"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if s.registry == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("model library not attached"))
		return
	}
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	probs, class, err := s.registry.Predict(r.PathValue("name"), req.Features)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{Probabilities: probs, Class: class})
}

func (s *Server) handleResources(w http.ResponseWriter, r *http.Request) {
	if s.mhep == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("VCU not attached"))
		return
	}
	now := s.clock()
	horizon := now
	if horizon == 0 {
		horizon = time.Second
	}
	writeJSON(w, http.StatusOK, s.mhep.Profiles(now, horizon))
}

// UploadRequest is the body of POST /data/upload.
type UploadRequest struct {
	Source  string  `json:"source"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Payload []byte  `json:"payload"`
}

// UploadResponse returns the assigned record ID.
type UploadResponse struct {
	ID uint64 `json:"id"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("DDI not attached"))
		return
	}
	var req UploadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	rec, err := s.store.Upload(s.clock(), ddi.Source(req.Source), req.X, req.Y, req.Payload)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, UploadResponse{ID: rec.ID})
}

// QueryResponse carries a DDI range query's results and simulated latency.
type QueryResponse struct {
	Records   []ddi.Record `json:"records"`
	LatencyMS float64      `json:"latencyMs"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("DDI not attached"))
		return
	}
	q := ddi.Query{Source: ddi.Source(r.URL.Query().Get("source"))}
	var err error
	if q.From, err = parseSeconds(r.URL.Query().Get("from")); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if q.To, err = parseSeconds(r.URL.Query().Get("to")); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if limit := r.URL.Query().Get("limit"); limit != "" {
		n, err := strconv.Atoi(limit)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", limit))
			return
		}
		q.Limit = n
	}
	recs, latency, err := s.store.Download(s.clock(), q)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		Records:   recs,
		LatencyMS: float64(latency) / float64(time.Millisecond),
	})
}

func parseSeconds(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad time %q (want non-negative seconds)", s)
	}
	return time.Duration(v * float64(time.Second)), nil
}

func (s *Server) handleTopics(w http.ResponseWriter, r *http.Request) {
	if s.sharing == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("data sharing not attached"))
		return
	}
	writeJSON(w, http.StatusOK, s.sharing.Topics())
}

// PublishRequest is the body of POST /sharing/publish. The service token
// travels in the X-VDAP-Token header.
type PublishRequest struct {
	Service string `json:"service"`
	Topic   string `json:"topic"`
	Payload []byte `json:"payload"`
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	if s.sharing == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("data sharing not attached"))
		return
	}
	var req PublishRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	token := r.Header.Get("X-VDAP-Token")
	if err := s.sharing.Publish(req.Service, token, req.Topic, s.clock(), req.Payload); err != nil {
		writeErr(w, http.StatusForbidden, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleFetch(w http.ResponseWriter, r *http.Request) {
	if s.sharing == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("data sharing not attached"))
		return
	}
	service := r.URL.Query().Get("service")
	topic := r.URL.Query().Get("topic")
	since, err := parseSeconds(r.URL.Query().Get("since"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	token := r.Header.Get("X-VDAP-Token")
	msgs, err := s.sharing.Fetch(service, token, topic, since)
	if err != nil {
		writeErr(w, http.StatusForbidden, err)
		return
	}
	writeJSON(w, http.StatusOK, msgs)
}

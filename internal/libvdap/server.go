package libvdap

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ddi"
	"repro/internal/edgeos"
	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vcu"
)

// Clock supplies virtual time to API handlers so HTTP access participates
// in the simulation's timeline. It must be safe for concurrent use (the
// kernel's clock is atomic; see sim.Clock).
type Clock func() time.Duration

// DefaultMaxSimInflight bounds how many requests may hold or wait on the
// simulation lock at once before further ones are shed with 503.
const DefaultMaxSimInflight = 64

// DefaultStreamWriteDeadline is how long one /v1/stream frame write may
// stall on a slow client before the connection is abandoned.
const DefaultStreamWriteDeadline = 10 * time.Second

// Server is the uniform RESTful API of Figure 8. Every handler fronts one
// of the four resource groups: model library, VCU system resources, data
// sharing, and DDI.
//
// # Concurrency contract
//
// The simulation state behind the API (kernel, VCU, DDI, EdgeOSv modules)
// is owned by a single run loop, but the server is hammered by arbitrary
// client goroutines. Three tiers keep that safe:
//
//  1. The run loop advances the simulation ONLY through Advance, which
//     holds the server's run lock exclusively for the duration of the
//     step. Callers that bypass Advance (running the engine directly
//     while serving) void the contract.
//  2. Handlers that touch simulation-owned state take the run lock:
//     exclusively when they mutate (data upload/query, sharing
//     publish/fetch, service invoke), shared when they only read
//     (resources, services, topics, model registry). Lock admission is
//     bounded (SetMaxSimInflight): when the simulation lags and the
//     backlog exceeds the bound, requests are shed with 503 +
//     Retry-After instead of queueing without limit.
//  3. The hot observability endpoints (status, metrics, series, events,
//     stream) never take the run lock. They read only internally
//     synchronized stores (telemetry.Registry, obs.SeriesStore,
//     obs.Recorder, trace.Tracer) plus the atomic virtual clock, and the
//     snapshot-shaped ones are served from a response cache keyed on the
//     virtual-time watermark: the payload is marshaled once per watermark
//     advance, concurrent misses single-flight behind one builder, and
//     every reader gets an immutable byte slice (old or new, never torn).
//     Requests carrying query parameters bypass the cache.
type Server struct {
	registry *Registry
	mhep     *vcu.MHEP
	store    *ddi.DDI
	sharing  *edgeos.DataSharing
	elastic  *edgeos.ElasticManager
	metrics  *telemetry.Registry
	tracer   *trace.Tracer
	series   *obs.SeriesStore
	events   *obs.Recorder
	clock    Clock
	mux      *http.ServeMux

	// simMu is the run lock of the concurrency contract above.
	simMu   sync.RWMutex
	simGate chan struct{}

	statusCache  *wmCache
	metricsCache *wmCache
	seriesCache  *wmCache
	eventsCache  *wmCache

	streamDeadline time.Duration
	streams        atomic.Int64

	// life is the graceful-drain state (see Shutdown); panicsTotal counts
	// handler panics caught by the recovery middleware.
	life        lifecycle
	panicsTotal atomic.Int64

	// Telemetry mirrors of the internal stats (nil-safe before
	// AttachTelemetry).
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	rejected    *telemetry.Counter
	writeErrs   *telemetry.Counter
	panicsCtr   *telemetry.Counter

	writeErrors atomic.Int64
	shedTotal   atomic.Int64
}

// NewServer wires the API. Any resource group may be nil; its endpoints
// then return 503.
func NewServer(registry *Registry, mhep *vcu.MHEP, store *ddi.DDI, sharing *edgeos.DataSharing, clock Clock) (*Server, error) {
	if clock == nil {
		return nil, fmt.Errorf("libvdap: nil clock")
	}
	s := &Server{
		registry:       registry,
		mhep:           mhep,
		store:          store,
		sharing:        sharing,
		clock:          clock,
		mux:            http.NewServeMux(),
		simGate:        make(chan struct{}, DefaultMaxSimInflight),
		statusCache:    newWMCache(0),
		metricsCache:   newWMCache(0),
		seriesCache:    newWMCache(0),
		eventsCache:    newWMCache(0),
		streamDeadline: DefaultStreamWriteDeadline,
	}
	s.life.drainCh = make(chan struct{})
	s.routes()
	return s, nil
}

// AttachElastic adds the EdgeOSv service endpoints (list, invoke) backed
// by the given elastic manager.
func (s *Server) AttachElastic(m *edgeos.ElasticManager) { s.elastic = m }

// AttachTelemetry backs GET /api/v1/metrics (alias /v1/metrics) with the
// given registry and mirrors the server's own counters (libvdap.cache.*,
// libvdap.rejected, libvdap.write_errors) into it.
func (s *Server) AttachTelemetry(reg *telemetry.Registry) {
	s.metrics = reg
	if reg != nil {
		s.cacheHits = reg.CounterHandle("libvdap.cache.hits")
		s.cacheMisses = reg.CounterHandle("libvdap.cache.misses")
		s.rejected = reg.CounterHandle("libvdap.rejected")
		s.writeErrs = reg.CounterHandle("libvdap.write_errors")
		s.panicsCtr = reg.CounterHandle("libvdap.panics")
	}
}

// AttachTracer backs GET /api/v1/trace (alias /v1/trace) with the given
// tracer.
func (s *Server) AttachTracer(tr *trace.Tracer) { s.tracer = tr }

// AttachSeries backs GET /v1/metrics/series (and the series half of
// /v1/stream) with the given store.
func (s *Server) AttachSeries(store *obs.SeriesStore) { s.series = store }

// AttachEvents backs GET /v1/events (and the event half of /v1/stream)
// with the given flight recorder.
func (s *Server) AttachEvents(rec *obs.Recorder) { s.events = rec }

// SetMaxSimInflight bounds how many requests may hold or wait on the run
// lock at once (DefaultMaxSimInflight when non-positive). Configure before
// serving traffic.
func (s *Server) SetMaxSimInflight(n int) {
	if n <= 0 {
		n = DefaultMaxSimInflight
	}
	s.simGate = make(chan struct{}, n)
}

// SetMaxPendingBuilds bounds the snapshot-rebuild backlog per cached
// endpoint (DefaultMaxPendingBuilds when non-positive). Configure before
// serving traffic.
func (s *Server) SetMaxPendingBuilds(n int) {
	s.statusCache = newWMCache(int32(n))
	s.metricsCache = newWMCache(int32(n))
	s.seriesCache = newWMCache(int32(n))
	s.eventsCache = newWMCache(int32(n))
}

// SetStreamWriteDeadline bounds how long one /v1/stream frame write may
// stall on a slow client (non-positive disables the deadline).
func (s *Server) SetStreamWriteDeadline(d time.Duration) { s.streamDeadline = d }

// Advance runs one simulation step under the exclusive run lock. This is
// the ONLY safe way to advance the platform while the server is handling
// traffic; see the Server concurrency contract.
func (s *Server) Advance(step func() error) error {
	s.simMu.Lock()
	defer s.simMu.Unlock()
	return step()
}

// ActiveStreams reports how many /v1/stream handlers are currently live.
func (s *Server) ActiveStreams() int64 { return s.streams.Load() }

// ServerStats aggregates the server's self-counters.
type ServerStats struct {
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	Rejected    int64 `json:"rejected"`
	WriteErrors int64 `json:"writeErrors"`
}

// Stats returns the aggregate self-counters (cache hits/misses across all
// cached endpoints, shed requests, response write failures).
func (s *Server) Stats() ServerStats {
	var st ServerStats
	for _, c := range s.caches() {
		cs := c.cache.stat()
		st.CacheHits += cs.Hits
		st.CacheMisses += cs.Misses
	}
	st.Rejected = s.shedTotal.Load()
	st.WriteErrors = s.writeErrors.Load()
	return st
}

type namedCache struct {
	name  string
	cache *wmCache
}

func (s *Server) caches() []namedCache {
	return []namedCache{
		{"status", s.statusCache},
		{"metrics", s.metricsCache},
		{"series", s.seriesCache},
		{"events", s.eventsCache},
	}
}

// CacheStats returns per-endpoint response-cache counters, keyed by
// endpoint ("status", "metrics", "series", "events").
func (s *Server) CacheStats() map[string]CacheStat {
	out := make(map[string]CacheStat, 4)
	for _, c := range s.caches() {
		out[c.name] = c.cache.stat()
	}
	return out
}

// ServeHTTP implements http.Handler. Every request passes the lifecycle
// gate (shed with 503 + Connection: close once draining) and the panic
// recovery middleware; the health endpoints bypass the gate so probes keep
// working through a drain.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/healthz", "/api/v1/healthz":
		s.handleHealthz(w, r)
		return
	case "/v1/readyz", "/api/v1/readyz":
		s.handleReadyz(w, r)
		return
	}
	if !s.life.begin() {
		s.shedDraining(w)
		return
	}
	defer s.life.done()
	defer s.recoverPanic(w, r)
	s.mux.ServeHTTP(w, r)
}

var _ http.Handler = (*Server)(nil)

func (s *Server) routes() {
	s.mux.HandleFunc("GET /api/v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /api/v1/models", s.lockedRead(s.handleListModels))
	s.mux.HandleFunc("GET /api/v1/models/{name}", s.lockedRead(s.handleModelInfo))
	s.mux.HandleFunc("POST /api/v1/models/{name}/predict", s.lockedRead(s.handlePredict))
	s.mux.HandleFunc("GET /api/v1/resources", s.lockedRead(s.handleResources))
	s.mux.HandleFunc("POST /api/v1/data/upload", s.locked(s.handleUpload))
	s.mux.HandleFunc("GET /api/v1/data/query", s.locked(s.handleQuery))
	s.mux.HandleFunc("GET /api/v1/data/window", s.lockedRead(s.handleWindow))
	s.mux.HandleFunc("GET /api/v1/sharing/topics", s.lockedRead(s.handleTopics))
	s.mux.HandleFunc("POST /api/v1/sharing/publish", s.locked(s.handlePublish))
	s.mux.HandleFunc("GET /api/v1/sharing/fetch", s.locked(s.handleFetch))
	s.mux.HandleFunc("GET /api/v1/services", s.lockedRead(s.handleListServices))
	s.mux.HandleFunc("POST /api/v1/services/{name}/invoke", s.locked(s.handleInvokeService))
	s.mux.HandleFunc("GET /api/v1/metrics", gzipped(s.handleMetrics))
	s.mux.HandleFunc("GET /v1/metrics", gzipped(s.handleMetrics))
	s.mux.HandleFunc("GET /api/v1/trace", gzipped(s.handleTrace))
	s.mux.HandleFunc("GET /v1/trace", gzipped(s.handleTrace))
	s.mux.HandleFunc("GET /api/v1/metrics/series", gzipped(s.handleSeries))
	s.mux.HandleFunc("GET /v1/metrics/series", gzipped(s.handleSeries))
	s.mux.HandleFunc("GET /api/v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /api/v1/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/stream", s.handleStream)
}

// admit takes one admission slot, or sheds the request with 503 +
// Retry-After when the run-lock backlog is full (the simulation is lagging
// behind offered load). The caller must release() on true.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	select {
	case s.simGate <- struct{}{}:
		return func() { <-s.simGate }, true
	default:
		s.shed(w)
		return nil, false
	}
}

// shed rejects a request the serving tier cannot absorb right now.
func (s *Server) shed(w http.ResponseWriter) {
	s.shedTotal.Add(1)
	s.rejected.Inc()
	w.Header().Set("Retry-After", "1")
	s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("server overloaded, retry"))
}

// locked wraps a handler that mutates simulation-owned state: bounded
// admission, then the exclusive run lock.
func (s *Server) locked(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, ok := s.admit(w)
		if !ok {
			return
		}
		defer release()
		s.simMu.Lock()
		defer s.simMu.Unlock()
		h(w, r)
	}
}

// lockedRead wraps a handler that only reads simulation-owned state:
// bounded admission, then the shared run lock (concurrent with other
// readers, exclusive against Advance and mutating handlers).
func (s *Server) lockedRead(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, ok := s.admit(w)
		if !ok {
			return
		}
		defer release()
		s.simMu.RLock()
		defer s.simMu.RUnlock()
		h(w, r)
	}
}

// gzipWriter forwards writes through a gzip stream while keeping the
// underlying ResponseWriter's headers. It forwards Flush so streaming
// handlers keep streaming when gzipped, and strips any stale
// Content-Length before the first write (the compressed length differs).
type gzipWriter struct {
	http.ResponseWriter
	gz          *gzip.Writer
	wroteHeader bool
}

func (g *gzipWriter) WriteHeader(code int) {
	if g.wroteHeader {
		return
	}
	g.wroteHeader = true
	g.Header().Del("Content-Length")
	g.ResponseWriter.WriteHeader(code)
}

func (g *gzipWriter) Write(b []byte) (int, error) {
	if !g.wroteHeader {
		g.WriteHeader(http.StatusOK)
	}
	return g.gz.Write(b)
}

// Flush implements http.Flusher: it pushes buffered compressed bytes to
// the client so gzipped streaming responses make progress frame by frame.
func (g *gzipWriter) Flush() {
	g.gz.Flush()
	if f, ok := g.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

var _ http.Flusher = (*gzipWriter)(nil)

// gzipped wraps a handler with Accept-Encoding-negotiated gzip response
// compression — the bulk endpoints (metrics, trace, series) serve the
// largest bodies of the API.
func gzipped(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			h(w, r)
			return
		}
		w.Header().Set("Content-Encoding", "gzip")
		w.Header().Add("Vary", "Accept-Encoding")
		gz := gzip.NewWriter(w)
		defer gz.Close()
		h(&gzipWriter{ResponseWriter: w, gz: gz}, r)
	}
}

// jsonBody marshals v exactly as json.Encoder.Encode would (compact JSON
// plus a trailing newline), so cached bodies and per-request encodes are
// byte-identical.
func jsonBody(v any) ([]byte, error) {
	out, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// cached serves one watermark-keyed cacheable endpoint: requests without
// query parameters hit the response cache; the rest marshal per request.
func (s *Server) cached(w http.ResponseWriter, r *http.Request, c *wmCache, build func() (any, error)) {
	if r.URL.RawQuery != "" {
		v, err := build()
		if err != nil {
			s.writeErrRes(w, http.StatusInternalServerError, err)
			return
		}
		s.writeJSON(w, http.StatusOK, v)
		return
	}
	body, hit, err := c.get(s.clock(), func() ([]byte, error) {
		v, err := build()
		if err != nil {
			return nil, err
		}
		return jsonBody(v)
	})
	if err == errBusy {
		s.shed(w)
		return
	}
	if err != nil {
		s.writeErrRes(w, http.StatusInternalServerError, err)
		return
	}
	if hit {
		s.cacheHits.Inc()
	} else {
		s.cacheMisses.Inc()
	}
	s.writeBody(w, http.StatusOK, "application/json; charset=utf-8", body)
}

// handleMetrics serves the telemetry snapshot. The default is the JSON
// Snapshot shape; ?format=text renders the sorted human-readable table.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.metrics == nil {
		s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("telemetry not attached"))
		return
	}
	if r.URL.Query().Get("format") == "text" {
		s.writeBody(w, http.StatusOK, "text/plain; charset=utf-8", []byte(s.metrics.Render()))
		return
	}
	s.cached(w, r, s.metricsCache, func() (any, error) { return s.metrics.Snapshot(), nil })
}

// handleTrace serves the recorded span forest. The default is Chrome
// trace_event JSON (load in chrome://tracing or Perfetto); ?format=tree
// renders the indented text tree.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("tracer not attached"))
		return
	}
	if r.URL.Query().Get("format") == "tree" {
		s.writeBody(w, http.StatusOK, "text/plain; charset=utf-8", []byte(s.tracer.RenderTree()))
		return
	}
	out, err := s.tracer.ChromeTrace()
	if err != nil {
		s.writeErrRes(w, http.StatusInternalServerError, err)
		return
	}
	s.writeBody(w, http.StatusOK, "application/json; charset=utf-8", out)
}

// parseSince reads an optional virtual-time watermark in seconds; an empty
// value means "everything" (a negative watermark).
func parseSince(s string) (time.Duration, error) {
	if s == "" {
		return -1, nil
	}
	return parseSeconds(s)
}

// handleSeries serves the sampled metric time-series: delta-encoded
// timestamps, values, and windowed rates per metric, optionally restricted
// to points after ?since=<seconds of virtual time>.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	if s.series == nil {
		s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("series store not attached"))
		return
	}
	since, err := parseSince(r.URL.Query().Get("since"))
	if err != nil {
		s.writeErrRes(w, http.StatusBadRequest, err)
		return
	}
	s.cached(w, r, s.seriesCache, func() (any, error) { return s.series.Payload(since), nil })
}

// EventsResponse is the `/v1/events` payload.
type EventsResponse struct {
	Events  []obs.Event `json:"events"`
	Dropped int         `json:"dropped,omitempty"`
}

// handleEvents serves the flight-recorder log with ?since=<seconds>,
// ?component= and ?severity=<minimum> filters; ?format=table renders the
// text table instead.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.events == nil {
		s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("flight recorder not attached"))
		return
	}
	if r.URL.Query().Get("format") == "table" {
		s.writeBody(w, http.StatusOK, "text/plain; charset=utf-8", []byte(s.events.RenderTable()))
		return
	}
	since, err := parseSince(r.URL.Query().Get("since"))
	if err != nil {
		s.writeErrRes(w, http.StatusBadRequest, err)
		return
	}
	minSev := obs.SevDebug
	if sev := r.URL.Query().Get("severity"); sev != "" {
		if minSev, err = obs.ParseSeverity(sev); err != nil {
			s.writeErrRes(w, http.StatusBadRequest, err)
			return
		}
	}
	component := r.URL.Query().Get("component")
	s.cached(w, r, s.eventsCache, func() (any, error) {
		return EventsResponse{
			Events:  s.events.EventsSince(since, component, minSev),
			Dropped: s.events.Dropped(),
		}, nil
	})
}

// handleStream serves chunked newline-delimited JSON frames keyed on
// virtual-time watermarks: each frame carries only the series points and
// events past the previous frame's watermark, so a long-lived client never
// re-reads a full snapshot. ?since=<seconds> seeds the first watermark,
// ?frames=<n> bounds the frame count (0 streams until the client
// disconnects), and ?poll=<seconds> sets the wall-clock re-check interval.
//
// A single reused timer paces the polling (no per-iteration allocation),
// client disconnect is observed both in the poll wait and between encode
// and flush, and each frame write runs under SetStreamWriteDeadline so a
// stalled client cannot pin the handler forever.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if s.series == nil && s.events == nil {
		s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("observability not attached"))
		return
	}
	watermark, err := parseSince(r.URL.Query().Get("since"))
	if err != nil {
		s.writeErrRes(w, http.StatusBadRequest, err)
		return
	}
	frames := 0
	if fs := r.URL.Query().Get("frames"); fs != "" {
		if frames, err = strconv.Atoi(fs); err != nil || frames < 0 {
			s.writeErrRes(w, http.StatusBadRequest, fmt.Errorf("bad frames %q", fs))
			return
		}
	}
	poll := 100 * time.Millisecond
	if ps := r.URL.Query().Get("poll"); ps != "" {
		if poll, err = parseSeconds(ps); err != nil || poll <= 0 {
			s.writeErrRes(w, http.StatusBadRequest, fmt.Errorf("bad poll %q", ps))
			return
		}
	}
	s.streams.Add(1)
	defer s.streams.Add(-1)
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	ctx := r.Context()
	sent := 0
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	// writeFrame ships everything past the current watermark. A final
	// frame additionally carries the drain marker so resilient clients
	// stop reconnecting.
	writeFrame := func(now time.Duration, final bool) bool {
		frame := obs.Frame{WatermarkNs: int64(now), Final: final}
		if s.series != nil {
			p := s.series.Payload(watermark)
			frame.Series = &p
		}
		if s.events != nil {
			frame.Events = s.events.EventsSince(watermark, "", obs.SevDebug)
		}
		if s.streamDeadline > 0 {
			rc.SetWriteDeadline(time.Now().Add(s.streamDeadline))
		}
		if err := enc.Encode(frame); err != nil {
			return false
		}
		// The client may have vanished while the frame was encoded;
		// don't keep flushing into a dead connection.
		if ctx.Err() != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	drained := s.life.drainCh
	for {
		if ctx.Err() != nil {
			return
		}
		select {
		case <-drained:
			// The server is draining: flush the remaining backlog as one
			// final frame and end the stream cleanly.
			writeFrame(s.clock(), true)
			return
		default:
		}
		now := s.clock()
		// The first frame ships the backlog immediately; later frames wait
		// for the watermark to advance.
		if sent == 0 || now > watermark {
			if !writeFrame(now, false) {
				return
			}
			watermark = now
			sent++
		}
		if frames > 0 && sent >= frames {
			return
		}
		timer.Reset(poll)
		select {
		case <-ctx.Done():
			if !timer.Stop() {
				<-timer.C
			}
			return
		case <-drained:
			if !timer.Stop() {
				<-timer.C
			}
			writeFrame(s.clock(), true)
			return
		case <-timer.C:
		}
	}
}

// ServiceInfo summarizes one EdgeOSv service over the API.
type ServiceInfo struct {
	Name        string         `json:"name"`
	Priority    int            `json:"priority"`
	State       string         `json:"state"`
	Invocations int            `json:"invocations"`
	HangUps     int            `json:"hangUps"`
	AvgMS       float64        `json:"avgLatencyMs"`
	EnergyJ     float64        `json:"energyJ"`
	PipelineUse map[string]int `json:"pipelineUse"`
}

func (s *Server) handleListServices(w http.ResponseWriter, r *http.Request) {
	if s.elastic == nil {
		s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("EdgeOSv not attached"))
		return
	}
	services := s.elastic.Services()
	out := make([]ServiceInfo, 0, len(services))
	for _, svc := range services {
		st, err := s.elastic.Stats(svc.Name)
		if err != nil {
			continue
		}
		info := ServiceInfo{
			Name:        svc.Name,
			Priority:    int(svc.Priority),
			State:       svc.State().String(),
			Invocations: st.Invocations,
			HangUps:     st.HangUps,
			EnergyJ:     st.TotalEnergyJ,
			PipelineUse: st.PipelineUse,
		}
		if n := st.Invocations - st.HangUps; n > 0 {
			info.AvgMS = float64(st.TotalLatency) / float64(n) / float64(time.Millisecond)
		}
		out = append(out, info)
	}
	s.writeJSON(w, http.StatusOK, out)
}

// InvokeResponse reports one API-triggered service invocation.
type InvokeResponse struct {
	Service   string  `json:"service"`
	Pipeline  string  `json:"pipeline"`
	Dest      string  `json:"dest"`
	LatencyMS float64 `json:"latencyMs"`
	HungUp    bool    `json:"hungUp"`
}

func (s *Server) handleInvokeService(w http.ResponseWriter, r *http.Request) {
	if s.elastic == nil {
		s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("EdgeOSv not attached"))
		return
	}
	name := r.PathValue("name")
	res, err := s.elastic.Invoke(name, s.clock())
	if err != nil {
		s.writeErrRes(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, InvokeResponse{
		Service:   res.Service,
		Pipeline:  res.Pipeline,
		Dest:      res.Dest,
		LatencyMS: float64(res.Latency) / float64(time.Millisecond),
		HungUp:    res.HungUp,
	})
}

// writeBody writes a fully-materialized response, counting write failures
// (client hangups mid-body) in libvdap.write_errors so the serve sweep can
// report them instead of hiding them.
func (s *Server) writeBody(w http.ResponseWriter, status int, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		s.writeErrors.Add(1)
		s.writeErrs.Inc()
	}
}

// writeJSON marshals v up front — a marshal failure is reported as a clean
// 500 instead of a torn body — and counts mid-body write failures.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := jsonBody(v)
	if err != nil {
		s.writeErrors.Add(1)
		s.writeErrs.Inc()
		http.Error(w, `{"error":"encode response"}`, http.StatusInternalServerError)
		return
	}
	s.writeBody(w, status, "application/json; charset=utf-8", body)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) writeErrRes(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, apiError{Error: err.Error()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.cached(w, r, s.statusCache, func() (any, error) {
		return map[string]any{
			"platform":    "openvdap",
			"virtualTime": s.clock().Seconds(),
			"groups": map[string]bool{
				"models":    s.registry != nil,
				"resources": s.mhep != nil,
				"data":      s.store != nil,
				"sharing":   s.sharing != nil,
			},
		}, nil
	})
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	if s.registry == nil {
		s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("model library not attached"))
		return
	}
	s.writeJSON(w, http.StatusOK, s.registry.List())
}

func (s *Server) handleModelInfo(w http.ResponseWriter, r *http.Request) {
	if s.registry == nil {
		s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("model library not attached"))
		return
	}
	info, err := s.registry.Info(r.PathValue("name"))
	if err != nil {
		s.writeErrRes(w, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

// PredictRequest is the body of POST /models/{name}/predict.
type PredictRequest struct {
	Features []float64 `json:"features"`
}

// PredictResponse is its result.
type PredictResponse struct {
	Probabilities []float64 `json:"probabilities"`
	Class         int       `json:"class"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if s.registry == nil {
		s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("model library not attached"))
		return
	}
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErrRes(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	probs, class, err := s.registry.Predict(r.PathValue("name"), req.Features)
	if err != nil {
		s.writeErrRes(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, PredictResponse{Probabilities: probs, Class: class})
}

func (s *Server) handleResources(w http.ResponseWriter, r *http.Request) {
	if s.mhep == nil {
		s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("VCU not attached"))
		return
	}
	now := s.clock()
	horizon := now
	if horizon == 0 {
		horizon = time.Second
	}
	s.writeJSON(w, http.StatusOK, s.mhep.Profiles(now, horizon))
}

// UploadRequest is the body of POST /data/upload.
type UploadRequest struct {
	Source  string  `json:"source"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Payload []byte  `json:"payload"`
}

// UploadResponse returns the assigned record ID.
type UploadResponse struct {
	ID uint64 `json:"id"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("DDI not attached"))
		return
	}
	var req UploadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErrRes(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	rec, err := s.store.Upload(s.clock(), ddi.Source(req.Source), req.X, req.Y, req.Payload)
	if err != nil {
		s.writeErrRes(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, UploadResponse{ID: rec.ID})
}

// QueryResponse carries a DDI range query's results and simulated latency.
type QueryResponse struct {
	Records   []ddi.Record `json:"records"`
	LatencyMS float64      `json:"latencyMs"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("DDI not attached"))
		return
	}
	q := ddi.Query{Source: ddi.Source(r.URL.Query().Get("source"))}
	var err error
	if q.From, err = parseSeconds(r.URL.Query().Get("from")); err != nil {
		s.writeErrRes(w, http.StatusBadRequest, err)
		return
	}
	if q.To, err = parseSeconds(r.URL.Query().Get("to")); err != nil {
		s.writeErrRes(w, http.StatusBadRequest, err)
		return
	}
	if limit := r.URL.Query().Get("limit"); limit != "" {
		n, err := strconv.Atoi(limit)
		if err != nil || n < 0 {
			s.writeErrRes(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", limit))
			return
		}
		q.Limit = n
	}
	recs, latency, err := s.store.Download(s.clock(), q)
	if err != nil {
		s.writeErrRes(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, QueryResponse{
		Records:   recs,
		LatencyMS: float64(latency) / float64(time.Millisecond),
	})
}

// WindowResponse carries a windowed aggregate, the plan that produced it
// (how many segments the zone maps pruned, rows scanned), and the
// simulated latency.
type WindowResponse struct {
	Column    string        `json:"column"`
	Aggregate ddi.Agg       `json:"aggregate"`
	Plan      ddi.PlanStats `json:"plan"`
	LatencyMS float64       `json:"latencyMs"`
}

// handleWindow serves GET /api/v1/data/window: a windowed aggregate
// (count/min/max/mean) over one column, answered by the DDI query
// planner without materialising records — which is why it runs under the
// read tier, unlike /data/query whose cache promotion mutates.
func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("DDI not attached"))
		return
	}
	q := ddi.Query{Source: ddi.Source(r.URL.Query().Get("source"))}
	var err error
	if q.From, err = parseSeconds(r.URL.Query().Get("from")); err != nil {
		s.writeErrRes(w, http.StatusBadRequest, err)
		return
	}
	if q.To, err = parseSeconds(r.URL.Query().Get("to")); err != nil {
		s.writeErrRes(w, http.StatusBadRequest, err)
		return
	}
	colName := r.URL.Query().Get("column")
	if colName == "" {
		colName = "at"
	}
	col, ok := ddi.ParseColumn(colName)
	if !ok {
		s.writeErrRes(w, http.StatusBadRequest, fmt.Errorf("bad column %q", colName))
		return
	}
	agg, stats, latency, err := s.store.Aggregate(s.clock(), q, col)
	if err != nil {
		s.writeErrRes(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, WindowResponse{
		Column:    col.String(),
		Aggregate: agg,
		Plan:      stats,
		LatencyMS: float64(latency) / float64(time.Millisecond),
	})
}

func parseSeconds(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad time %q (want non-negative seconds)", s)
	}
	return time.Duration(v * float64(time.Second)), nil
}

func (s *Server) handleTopics(w http.ResponseWriter, r *http.Request) {
	if s.sharing == nil {
		s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("data sharing not attached"))
		return
	}
	s.writeJSON(w, http.StatusOK, s.sharing.Topics())
}

// PublishRequest is the body of POST /sharing/publish. The service token
// travels in the X-VDAP-Token header.
type PublishRequest struct {
	Service string `json:"service"`
	Topic   string `json:"topic"`
	Payload []byte `json:"payload"`
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	if s.sharing == nil {
		s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("data sharing not attached"))
		return
	}
	var req PublishRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErrRes(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	token := r.Header.Get("X-VDAP-Token")
	if err := s.sharing.Publish(req.Service, token, req.Topic, s.clock(), req.Payload); err != nil {
		s.writeErrRes(w, http.StatusForbidden, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleFetch(w http.ResponseWriter, r *http.Request) {
	if s.sharing == nil {
		s.writeErrRes(w, http.StatusServiceUnavailable, fmt.Errorf("data sharing not attached"))
		return
	}
	service := r.URL.Query().Get("service")
	topic := r.URL.Query().Get("topic")
	since, err := parseSeconds(r.URL.Query().Get("since"))
	if err != nil {
		s.writeErrRes(w, http.StatusBadRequest, err)
		return
	}
	token := r.Header.Get("X-VDAP-Token")
	msgs, err := s.sharing.Fetch(service, token, topic, since)
	if err != nil {
		s.writeErrRes(w, http.StatusForbidden, err)
		return
	}
	s.writeJSON(w, http.StatusOK, msgs)
}

package libvdap

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// errBusy is returned by a cache get when the rebuild backlog exceeds the
// configured bound; handlers translate it into 503 + Retry-After.
var errBusy = errors.New("libvdap: snapshot rebuild backlog full")

// DefaultMaxPendingBuilds bounds how many requests may queue behind one
// in-flight snapshot build before further misses are shed with 503. The
// bound tracks simulation lag: the only way the backlog grows is the
// watermark advancing faster than payloads can be marshaled.
const DefaultMaxPendingBuilds = 64

// cacheEntry is one immutable published payload. Readers get the pointer
// atomically and never see partial bytes: the body is fully built before
// the pointer is swapped in.
type cacheEntry struct {
	watermark time.Duration
	body      []byte
}

// wmCache memoizes one endpoint's marshaled response, keyed on the
// virtual-time watermark. The body is rebuilt at most once per watermark
// advance — concurrent misses single-flight behind a mutex and every
// waiter reuses the first builder's bytes — so a thousand concurrent
// clients cost one marshal per tick, not one per request.
type wmCache struct {
	val        atomic.Pointer[cacheEntry]
	mu         sync.Mutex // serializes rebuilds
	pending    atomic.Int32
	maxPending int32

	hits   atomic.Int64
	misses atomic.Int64
	shed   atomic.Int64
}

func newWMCache(maxPending int32) *wmCache {
	if maxPending <= 0 {
		maxPending = DefaultMaxPendingBuilds
	}
	return &wmCache{maxPending: maxPending}
}

// get returns the cached body for watermark now, rebuilding via build on
// the first miss at each watermark, and reports whether the lookup was a
// hit. Returns errBusy without calling build when more than maxPending
// requests are already queued on the builder.
func (c *wmCache) get(now time.Duration, build func() ([]byte, error)) (body []byte, hit bool, err error) {
	if e := c.val.Load(); e != nil && e.watermark == now {
		c.hits.Add(1)
		return e.body, true, nil
	}
	if c.pending.Add(1) > c.maxPending {
		c.pending.Add(-1)
		c.shed.Add(1)
		return nil, false, errBusy
	}
	defer c.pending.Add(-1)
	c.mu.Lock()
	defer c.mu.Unlock()
	// Another waiter may have published this watermark while we queued.
	if e := c.val.Load(); e != nil && e.watermark == now {
		c.hits.Add(1)
		return e.body, true, nil
	}
	c.misses.Add(1)
	body, err = build()
	if err != nil {
		return nil, false, err
	}
	c.val.Store(&cacheEntry{watermark: now, body: body})
	return body, false, nil
}

// CacheStat is one endpoint cache's counters, exported for the serve
// benchmark and /v1/status.
type CacheStat struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Shed   int64 `json:"shed"`
}

// HitRatio is hits over lookups (0 when the cache was never consulted).
func (s CacheStat) HitRatio() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

func (c *wmCache) stat() CacheStat {
	return CacheStat{Hits: c.hits.Load(), Misses: c.misses.Load(), Shed: c.shed.Load()}
}

package libvdap

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/ddi"
	"repro/internal/edgeos"
	"repro/internal/obs"
	"repro/internal/vcu"
)

// Client is the Go binding for the RESTful API — what third-party
// developers link against (paper: "developers can access all software and
// hardware resources by calling the API"). By default every call is a
// single attempt; SetRetryPolicy turns on retries, hedging, per-request
// timeouts, a circuit breaker, and stream auto-reconnect.
type Client struct {
	base  string
	http  *http.Client
	token string

	retry    *retryState
	counters clientCounters
}

// NewClient targets an API server at base (e.g. "http://127.0.0.1:8947").
func NewClient(base string, hc *http.Client) (*Client, error) {
	if base == "" {
		return nil, fmt.Errorf("libvdap: empty base URL")
	}
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: base, http: hc}, nil
}

// SetToken attaches a Data Sharing authentication token to future calls.
func (c *Client) SetToken(token string) { c.token = token }

func (c *Client) do(method, path string, body, out any) error {
	return c.call(method, path, body, out, nil)
}

func marshalBody(body any) ([]byte, error) { return json.Marshal(body) }

func newByteReader(b []byte) io.Reader { return bytes.NewReader(b) }

// finishCall turns the winning attempt of a call into the caller-visible
// result, preserving the single-attempt client's error formats.
func finishCall(method, path string, res attemptResult, out any) error {
	if res.err != nil {
		return res.err
	}
	if res.status >= 400 {
		var apiErr apiError
		if decodeErr := json.Unmarshal(res.body, &apiErr); decodeErr == nil && apiErr.Error != "" {
			return fmt.Errorf("%s %s: %s (HTTP %d)", method, path, apiErr.Error, res.status)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, res.status)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(res.body, out); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	return nil
}

// Status returns the platform status document.
func (c *Client) Status() (map[string]any, error) {
	var out map[string]any
	if err := c.do(http.MethodGet, "/api/v1/status", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Models lists the model library.
func (c *Client) Models() ([]ModelInfo, error) {
	var out []ModelInfo
	if err := c.do(http.MethodGet, "/api/v1/models", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Model returns one model's metadata.
func (c *Client) Model(name string) (ModelInfo, error) {
	var out ModelInfo
	if err := c.do(http.MethodGet, "/api/v1/models/"+url.PathEscape(name), nil, &out); err != nil {
		return ModelInfo{}, err
	}
	return out, nil
}

// Predict runs a registry model remotely.
func (c *Client) Predict(name string, features []float64) (PredictResponse, error) {
	var out PredictResponse
	err := c.do(http.MethodPost, "/api/v1/models/"+url.PathEscape(name)+"/predict",
		PredictRequest{Features: features}, &out)
	return out, err
}

// Resources returns the VCU device profiles.
func (c *Client) Resources() ([]vcu.ResourceProfile, error) {
	var out []vcu.ResourceProfile
	if err := c.do(http.MethodGet, "/api/v1/resources", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Upload pushes a record into DDI.
func (c *Client) Upload(source string, x, y float64, payload []byte) (uint64, error) {
	var out UploadResponse
	err := c.do(http.MethodPost, "/api/v1/data/upload",
		UploadRequest{Source: source, X: x, Y: y, Payload: payload}, &out)
	return out.ID, err
}

// QueryData runs a DDI range query. from/to are virtual seconds.
func (c *Client) QueryData(source string, fromSec, toSec float64, limit int) ([]ddi.Record, float64, error) {
	v := url.Values{}
	if source != "" {
		v.Set("source", source)
	}
	v.Set("from", strconv.FormatFloat(fromSec, 'f', -1, 64))
	v.Set("to", strconv.FormatFloat(toSec, 'f', -1, 64))
	if limit > 0 {
		v.Set("limit", strconv.Itoa(limit))
	}
	var out QueryResponse
	if err := c.do(http.MethodGet, "/api/v1/data/query?"+v.Encode(), nil, &out); err != nil {
		return nil, 0, err
	}
	return out.Records, out.LatencyMS, nil
}

// QueryWindow runs a DDI windowed aggregate over one column ("at", "x",
// "y", "payload_bytes"). from/to are virtual seconds.
func (c *Client) QueryWindow(source, column string, fromSec, toSec float64) (WindowResponse, error) {
	v := url.Values{}
	if source != "" {
		v.Set("source", source)
	}
	if column != "" {
		v.Set("column", column)
	}
	v.Set("from", strconv.FormatFloat(fromSec, 'f', -1, 64))
	v.Set("to", strconv.FormatFloat(toSec, 'f', -1, 64))
	var out WindowResponse
	err := c.do(http.MethodGet, "/api/v1/data/window?"+v.Encode(), nil, &out)
	return out, err
}

// Topics lists data-sharing topics.
func (c *Client) Topics() ([]string, error) {
	var out []string
	if err := c.do(http.MethodGet, "/api/v1/sharing/topics", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Publish shares a payload on a topic as the given service.
func (c *Client) Publish(service, topic string, payload []byte) error {
	return c.do(http.MethodPost, "/api/v1/sharing/publish",
		PublishRequest{Service: service, Topic: topic, Payload: payload}, nil)
}

// Services lists EdgeOSv services and their statistics.
func (c *Client) Services() ([]ServiceInfo, error) {
	var out []ServiceInfo
	if err := c.do(http.MethodGet, "/api/v1/services", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Invoke triggers one invocation of an EdgeOSv service.
func (c *Client) Invoke(service string) (InvokeResponse, error) {
	var out InvokeResponse
	err := c.do(http.MethodPost, "/api/v1/services/"+url.PathEscape(service)+"/invoke", nil, &out)
	return out, err
}

// MetricsSeries fetches the sampled metric time-series after the given
// virtual-time watermark (pass a negative duration for everything).
func (c *Client) MetricsSeries(since time.Duration) (obs.Payload, error) {
	var out obs.Payload
	path := "/api/v1/metrics/series"
	if since >= 0 {
		path += "?since=" + strconv.FormatFloat(since.Seconds(), 'f', -1, 64)
	}
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// Events fetches flight-recorder events after the given watermark, filtered
// by component (empty = all) and minimum severity.
func (c *Client) Events(since time.Duration, component string, minSev obs.Severity) ([]obs.Event, error) {
	v := url.Values{}
	if since >= 0 {
		v.Set("since", strconv.FormatFloat(since.Seconds(), 'f', -1, 64))
	}
	if component != "" {
		v.Set("component", component)
	}
	v.Set("severity", minSev.String())
	var out EventsResponse
	if err := c.do(http.MethodGet, "/api/v1/events?"+v.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return out.Events, nil
}

// StreamFrames reads up to n incremental frames from /v1/stream starting at
// the given watermark. With a RetryPolicy installed, a dropped stream is
// re-dialed automatically, resuming from the last seen watermark so no
// frame is re-read; it stops early on a drain-marked final frame.
func (c *Client) StreamFrames(since time.Duration, n int) ([]obs.Frame, error) {
	return c.streamFrames(since, n, nil)
}

// streamOnce is one stream connection: dial, decode frames until the
// requested count, EOF, a transport/decode error, or a Final drain frame.
func (c *Client) streamOnce(since time.Duration, n int) (frames []obs.Frame, final bool, err error) {
	v := url.Values{}
	if since >= 0 {
		v.Set("since", strconv.FormatFloat(since.Seconds(), 'f', -1, 64))
	}
	v.Set("frames", strconv.Itoa(n))
	v.Set("poll", "0.01")
	req, err := http.NewRequest(http.MethodGet, c.base+"/api/v1/stream?"+v.Encode(), nil)
	if err != nil {
		return nil, false, fmt.Errorf("build request: %w", err)
	}
	if c.token != "" {
		req.Header.Set("X-VDAP-Token", c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("GET /api/v1/stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var apiErr apiError
		if decodeErr := json.NewDecoder(resp.Body).Decode(&apiErr); decodeErr == nil && apiErr.Error != "" {
			return nil, false, fmt.Errorf("GET /api/v1/stream: %s (HTTP %d)", apiErr.Error, resp.StatusCode)
		}
		return nil, false, fmt.Errorf("GET /api/v1/stream: HTTP %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var f obs.Frame
		if err := dec.Decode(&f); err != nil {
			if err == io.EOF {
				return frames, false, nil
			}
			return frames, false, fmt.Errorf("decode frame: %w", err)
		}
		frames = append(frames, f)
		if f.Final {
			return frames, true, nil
		}
	}
}

func (c *Client) streamFrames(since time.Duration, n int, cs *CallStats) ([]obs.Frame, error) {
	rs := c.retry
	if rs == nil {
		frames, _, err := c.streamOnce(since, n)
		if cs != nil {
			cs.Attempts = 1
		}
		return frames, err
	}
	var frames []obs.Frame
	cursor := since
	// budget bounds CONSECUTIVE no-progress reconnects; any frame received
	// refreshes it, so a long-lived stream survives any number of drops as
	// long as the server keeps making progress between them.
	budget := rs.policy.MaxAttempts
	prevSleep := rs.policy.BaseBackoff
	for dial := 0; ; dial++ {
		if dial > 0 {
			c.counters.reconnects.Add(1)
			if cs != nil {
				cs.Reconnects++
			}
			sleep := rs.backoff(prevSleep, 0)
			prevSleep = sleep
			time.Sleep(sleep)
		}
		if cs != nil {
			cs.Attempts++
		}
		got, final, err := c.streamOnce(cursor, n-len(frames))
		if len(got) > 0 {
			frames = append(frames, got...)
			cursor = time.Duration(frames[len(frames)-1].WatermarkNs)
			budget = rs.policy.MaxAttempts
			prevSleep = rs.policy.BaseBackoff
		}
		if final || len(frames) >= n {
			return frames, nil
		}
		budget--
		if budget <= 0 {
			if err == nil {
				err = fmt.Errorf("GET /api/v1/stream: stream closed after %d/%d frames", len(frames), n)
			}
			return frames, err
		}
	}
}

// FetchMessages reads a topic as the given service.
func (c *Client) FetchMessages(service, topic string, sinceSec float64) ([]edgeos.Message, error) {
	v := url.Values{}
	v.Set("service", service)
	v.Set("topic", topic)
	v.Set("since", strconv.FormatFloat(sinceSec, 'f', -1, 64))
	var out []edgeos.Message
	if err := c.do(http.MethodGet, "/api/v1/sharing/fetch?"+v.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

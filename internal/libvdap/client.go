package libvdap

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/ddi"
	"repro/internal/edgeos"
	"repro/internal/obs"
	"repro/internal/vcu"
)

// Client is the Go binding for the RESTful API — what third-party
// developers link against (paper: "developers can access all software and
// hardware resources by calling the API").
type Client struct {
	base  string
	http  *http.Client
	token string
}

// NewClient targets an API server at base (e.g. "http://127.0.0.1:8947").
func NewClient(base string, hc *http.Client) (*Client, error) {
	if base == "" {
		return nil, fmt.Errorf("libvdap: empty base URL")
	}
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: base, http: hc}, nil
}

// SetToken attaches a Data Sharing authentication token to future calls.
func (c *Client) SetToken(token string) { c.token = token }

func (c *Client) do(method, path string, body, out any) error {
	var reader io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("marshal request: %w", err)
		}
		reader = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, reader)
	if err != nil {
		return fmt.Errorf("build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("X-VDAP-Token", c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("%s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var apiErr apiError
		if decodeErr := json.NewDecoder(resp.Body).Decode(&apiErr); decodeErr == nil && apiErr.Error != "" {
			return fmt.Errorf("%s %s: %s (HTTP %d)", method, path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	return nil
}

// Status returns the platform status document.
func (c *Client) Status() (map[string]any, error) {
	var out map[string]any
	if err := c.do(http.MethodGet, "/api/v1/status", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Models lists the model library.
func (c *Client) Models() ([]ModelInfo, error) {
	var out []ModelInfo
	if err := c.do(http.MethodGet, "/api/v1/models", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Model returns one model's metadata.
func (c *Client) Model(name string) (ModelInfo, error) {
	var out ModelInfo
	if err := c.do(http.MethodGet, "/api/v1/models/"+url.PathEscape(name), nil, &out); err != nil {
		return ModelInfo{}, err
	}
	return out, nil
}

// Predict runs a registry model remotely.
func (c *Client) Predict(name string, features []float64) (PredictResponse, error) {
	var out PredictResponse
	err := c.do(http.MethodPost, "/api/v1/models/"+url.PathEscape(name)+"/predict",
		PredictRequest{Features: features}, &out)
	return out, err
}

// Resources returns the VCU device profiles.
func (c *Client) Resources() ([]vcu.ResourceProfile, error) {
	var out []vcu.ResourceProfile
	if err := c.do(http.MethodGet, "/api/v1/resources", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Upload pushes a record into DDI.
func (c *Client) Upload(source string, x, y float64, payload []byte) (uint64, error) {
	var out UploadResponse
	err := c.do(http.MethodPost, "/api/v1/data/upload",
		UploadRequest{Source: source, X: x, Y: y, Payload: payload}, &out)
	return out.ID, err
}

// QueryData runs a DDI range query. from/to are virtual seconds.
func (c *Client) QueryData(source string, fromSec, toSec float64, limit int) ([]ddi.Record, float64, error) {
	v := url.Values{}
	if source != "" {
		v.Set("source", source)
	}
	v.Set("from", strconv.FormatFloat(fromSec, 'f', -1, 64))
	v.Set("to", strconv.FormatFloat(toSec, 'f', -1, 64))
	if limit > 0 {
		v.Set("limit", strconv.Itoa(limit))
	}
	var out QueryResponse
	if err := c.do(http.MethodGet, "/api/v1/data/query?"+v.Encode(), nil, &out); err != nil {
		return nil, 0, err
	}
	return out.Records, out.LatencyMS, nil
}

// Topics lists data-sharing topics.
func (c *Client) Topics() ([]string, error) {
	var out []string
	if err := c.do(http.MethodGet, "/api/v1/sharing/topics", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Publish shares a payload on a topic as the given service.
func (c *Client) Publish(service, topic string, payload []byte) error {
	return c.do(http.MethodPost, "/api/v1/sharing/publish",
		PublishRequest{Service: service, Topic: topic, Payload: payload}, nil)
}

// Services lists EdgeOSv services and their statistics.
func (c *Client) Services() ([]ServiceInfo, error) {
	var out []ServiceInfo
	if err := c.do(http.MethodGet, "/api/v1/services", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Invoke triggers one invocation of an EdgeOSv service.
func (c *Client) Invoke(service string) (InvokeResponse, error) {
	var out InvokeResponse
	err := c.do(http.MethodPost, "/api/v1/services/"+url.PathEscape(service)+"/invoke", nil, &out)
	return out, err
}

// MetricsSeries fetches the sampled metric time-series after the given
// virtual-time watermark (pass a negative duration for everything).
func (c *Client) MetricsSeries(since time.Duration) (obs.Payload, error) {
	var out obs.Payload
	path := "/api/v1/metrics/series"
	if since >= 0 {
		path += "?since=" + strconv.FormatFloat(since.Seconds(), 'f', -1, 64)
	}
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// Events fetches flight-recorder events after the given watermark, filtered
// by component (empty = all) and minimum severity.
func (c *Client) Events(since time.Duration, component string, minSev obs.Severity) ([]obs.Event, error) {
	v := url.Values{}
	if since >= 0 {
		v.Set("since", strconv.FormatFloat(since.Seconds(), 'f', -1, 64))
	}
	if component != "" {
		v.Set("component", component)
	}
	v.Set("severity", minSev.String())
	var out EventsResponse
	if err := c.do(http.MethodGet, "/api/v1/events?"+v.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return out.Events, nil
}

// StreamFrames reads up to n incremental frames from /v1/stream starting at
// the given watermark.
func (c *Client) StreamFrames(since time.Duration, n int) ([]obs.Frame, error) {
	v := url.Values{}
	if since >= 0 {
		v.Set("since", strconv.FormatFloat(since.Seconds(), 'f', -1, 64))
	}
	v.Set("frames", strconv.Itoa(n))
	v.Set("poll", "0.01")
	req, err := http.NewRequest(http.MethodGet, c.base+"/api/v1/stream?"+v.Encode(), nil)
	if err != nil {
		return nil, fmt.Errorf("build request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("GET /api/v1/stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var apiErr apiError
		if decodeErr := json.NewDecoder(resp.Body).Decode(&apiErr); decodeErr == nil && apiErr.Error != "" {
			return nil, fmt.Errorf("GET /api/v1/stream: %s (HTTP %d)", apiErr.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("GET /api/v1/stream: HTTP %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var frames []obs.Frame
	for {
		var f obs.Frame
		if err := dec.Decode(&f); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("decode frame: %w", err)
		}
		frames = append(frames, f)
	}
	return frames, nil
}

// FetchMessages reads a topic as the given service.
func (c *Client) FetchMessages(service, topic string, sinceSec float64) ([]edgeos.Message, error) {
	v := url.Values{}
	v.Set("service", service)
	v.Set("topic", topic)
	v.Set("since", strconv.FormatFloat(sinceSec, 'f', -1, 64))
	var out []edgeos.Message
	if err := c.do(http.MethodGet, "/api/v1/sharing/fetch?"+v.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

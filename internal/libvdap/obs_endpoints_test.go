package libvdap

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// newObsServer assembles a minimal server with observability stores attached
// and a controllable virtual clock (atomic: the stream test advances it
// from another goroutine while the handler reads it).
func newObsServer(t *testing.T) (*httptest.Server, *Client, *obs.SeriesStore, *obs.Recorder, *atomic.Int64) {
	t.Helper()
	now := new(atomic.Int64)
	now.Store(int64(1 * time.Second))
	srv, err := NewServer(nil, nil, nil, nil, func() time.Duration { return time.Duration(now.Load()) })
	if err != nil {
		t.Fatal(err)
	}
	store := obs.NewSeriesStore(64)
	rec := obs.NewRecorder(64)
	srv.AttachSeries(store)
	srv.AttachEvents(rec)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ts, client, store, rec, now
}

func TestSeriesEndpoint(t *testing.T) {
	_, client, store, _, _ := newObsServer(t)
	store.RecordGauge("fleet.queue_depth", 100*time.Millisecond, 3)
	store.RecordGauge("fleet.queue_depth", 200*time.Millisecond, 5)

	p, err := client.MetricsSeries(-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series) != 1 || p.Series[0].Name != "fleet.queue_depth" || p.Series[0].Points != 2 {
		t.Fatalf("payload = %+v", p)
	}
	if p.WatermarkNs != int64(200*time.Millisecond) {
		t.Fatalf("watermark = %d", p.WatermarkNs)
	}

	// ?since filters strictly after the watermark.
	p, err = client.MetricsSeries(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series) != 1 || p.Series[0].Points != 1 || p.Series[0].V[0] != 5 {
		t.Fatalf("filtered payload = %+v", p)
	}
}

func TestEventsEndpointFilters(t *testing.T) {
	_, client, _, rec, _ := newObsServer(t)
	rec.Emit(10*time.Millisecond, "offload", obs.SevInfo, "breaker.closed")
	rec.Emit(20*time.Millisecond, "faults", obs.SevWarn, "outage.begin", obs.String("site", "edge-0"))
	rec.Emit(30*time.Millisecond, "offload", obs.SevError, "resilient.exhausted")

	all, err := client.Events(-1, "", obs.SevDebug)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("events = %+v", all)
	}

	warn, err := client.Events(-1, "", obs.SevWarn)
	if err != nil {
		t.Fatal(err)
	}
	if len(warn) != 2 || warn[0].Name != "outage.begin" {
		t.Fatalf("warn events = %+v", warn)
	}

	offload, err := client.Events(15*time.Millisecond, "offload", obs.SevDebug)
	if err != nil {
		t.Fatal(err)
	}
	if len(offload) != 1 || offload[0].Name != "resilient.exhausted" {
		t.Fatalf("offload events = %+v", offload)
	}

	if _, err := client.Events(-1, "", obs.Severity(99)); err == nil {
		t.Fatal("bad severity accepted")
	}
}

func TestEventsTableFormat(t *testing.T) {
	ts, _, _, rec, _ := newObsServer(t)
	rec.Emit(10*time.Millisecond, "fleet", obs.SevDebug, "commit.begin", obs.Int("offloads", 2))
	resp, err := http.Get(ts.URL + "/v1/events?format=table")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "commit.begin") || !strings.Contains(string(body), "COMPONENT") {
		t.Fatalf("table = %q", body)
	}
}

func TestStreamIncrementalFrames(t *testing.T) {
	_, client, store, rec, now := newObsServer(t)
	store.RecordGauge("g", 100*time.Millisecond, 1)
	rec.Emit(100*time.Millisecond, "fleet", obs.SevInfo, "first")

	// Feed a second batch past the server's clock so a second frame fires
	// once the watermark advances.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(50 * time.Millisecond)
		store.RecordGauge("g", 2*time.Second, 2)
		rec.Emit(2*time.Second, "fleet", obs.SevInfo, "second")
		now.Store(int64(3 * time.Second))
	}()

	frames, err := client.StreamFrames(-1, 2)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("frames = %d", len(frames))
	}
	if len(frames[0].Events) != 1 || frames[0].Events[0].Name != "first" {
		t.Fatalf("frame 0 events = %+v", frames[0].Events)
	}
	if frames[0].Series == nil || len(frames[0].Series.Series) != 1 || frames[0].Series.Series[0].Points != 1 {
		t.Fatalf("frame 0 series = %+v", frames[0].Series)
	}
	// Frame 1 is incremental: only the post-watermark point and event.
	if len(frames[1].Events) != 1 || frames[1].Events[0].Name != "second" {
		t.Fatalf("frame 1 events = %+v", frames[1].Events)
	}
	if frames[1].Series.Series[0].Points != 1 || frames[1].Series.Series[0].V[0] != 2 {
		t.Fatalf("frame 1 series = %+v", frames[1].Series.Series[0])
	}
	if frames[1].WatermarkNs != int64(3*time.Second) {
		t.Fatalf("frame 1 watermark = %d", frames[1].WatermarkNs)
	}
}

// TestObsEndpointsUnavailable pins the 503 + JSON error contract when no
// store or recorder is attached.
func TestObsEndpointsUnavailable(t *testing.T) {
	srv, err := NewServer(nil, nil, nil, nil, func() time.Duration { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	for _, path := range []string{
		"/v1/metrics", "/api/v1/metrics",
		"/v1/trace", "/api/v1/trace",
		"/v1/metrics/series", "/api/v1/metrics/series",
		"/v1/events", "/api/v1/events",
		"/v1/stream", "/api/v1/stream",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s status = %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Fatalf("%s content type = %q", path, ct)
		}
		var apiErr apiError
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Error == "" {
			t.Fatalf("%s error body: %v / %+v", path, err, apiErr)
		}
		resp.Body.Close()
	}
}

// TestJSONContentTypeCharset verifies every JSON response declares its
// charset, success and error alike.
func TestJSONContentTypeCharset(t *testing.T) {
	ts, _, _, _, _ := newObsServer(t)
	for _, path := range []string{"/api/v1/status", "/v1/metrics/series", "/v1/events", "/api/v1/models/ghost"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Fatalf("%s content type = %q", path, ct)
		}
	}
}

// TestGzipResponses round-trips the bulk endpoints through gzip when the
// client advertises support, and pins identity encoding otherwise.
func TestGzipResponses(t *testing.T) {
	ts, _, store, _, _ := newObsServer(t)
	reg := telemetry.NewRegistry()
	reg.CounterHandle("hits").Add(7)
	tr := trace.New(nil)
	srv := ts.Config.Handler.(*Server)
	srv.AttachTelemetry(reg)
	srv.AttachTracer(tr)
	store.RecordGauge("g", time.Millisecond, 1)

	for _, path := range []string{"/v1/metrics", "/v1/trace", "/v1/metrics/series"} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		req.Header.Set("Accept-Encoding", "gzip")
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.Get("Content-Encoding") != "gzip" {
			t.Fatalf("%s not gzipped: %q", path, resp.Header.Get("Content-Encoding"))
		}
		gz, err := gzip.NewReader(resp.Body)
		if err != nil {
			t.Fatalf("%s gzip reader: %v", path, err)
		}
		var decoded map[string]any
		if err := json.NewDecoder(gz).Decode(&decoded); err != nil {
			t.Fatalf("%s decode: %v", path, err)
		}
		gz.Close()
		resp.Body.Close()

		// Without Accept-Encoding the body must be identity-coded JSON.
		plainReq, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		plain, err := http.DefaultTransport.RoundTrip(plainReq)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Header.Get("Content-Encoding") == "gzip" {
			t.Fatalf("%s gzipped without Accept-Encoding", path)
		}
		if err := json.NewDecoder(plain.Body).Decode(&decoded); err != nil {
			t.Fatalf("%s plain decode: %v", path, err)
		}
		plain.Body.Close()
	}
}

package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/libvdap"
)

// ServeSchema versions the BENCH_SERVE.json layout. Bump on any field
// change so trajectory tooling can refuse mixed files.
const ServeSchema = "openvdap.bench_serve/v1"

// ServeConfig parameterizes the E18 serving-tier load test: a live
// platform advancing on a wall-clock tick loop behind a real TCP
// libvdap.Server, hammered by concurrent HTTP clients.
type ServeConfig struct {
	// Clients is the number of concurrent load clients.
	Clients int
	// Duration is the wall-clock length of the load phase.
	Duration time.Duration
	// Mix weights the endpoints; nil means libvdap.DefaultMix.
	Mix []libvdap.MixEntry
	// Seed keys the platform and every client's RNG stream.
	Seed int64
	// TickWall is the wall-clock interval between simulation steps.
	TickWall time.Duration
	// TickStep is the virtual time advanced per step.
	TickStep time.Duration
	// DataDir holds the DDI disk tier (temp dir when empty).
	DataDir string
}

// DefaultServeConfig is the E18 shape: 1000 clients for 5 wall seconds
// against a platform advancing 100 ms of virtual time every 50 ms of wall
// time — 2x real time, the cadence of a vdapd tick loop, leaving the bulk
// of the machine to the serving tier the way a real deployment would.
func DefaultServeConfig() ServeConfig {
	return ServeConfig{
		Clients:  1000,
		Duration: 5 * time.Second,
		Seed:     1,
		TickWall: 50 * time.Millisecond,
		TickStep: 100 * time.Millisecond,
	}
}

// ServeCacheRow is one endpoint cache's steady-state outcome.
type ServeCacheRow struct {
	Endpoint string  `json:"endpoint"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	Shed     int64   `json:"shed"`
	HitRatio float64 `json:"hitRatio"`
}

// ServeReport is the schema-versioned payload written to BENCH_SERVE.json.
type ServeReport struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Seed      int64  `json:"seed"`

	TickWallMS   float64 `json:"tickWallMs"`
	TickStepMS   float64 `json:"tickStepMs"`
	VirtualEndMS float64 `json:"virtualEndMs"`
	Ticks        int64   `json:"ticks"`

	Load   libvdap.LoadResult  `json:"load"`
	Caches []ServeCacheRow     `json:"caches"`
	Server libvdap.ServerStats `json:"server"`
}

// serveFaults sizes a fault plan to the run's virtual horizon so the
// events and stream endpoints carry real traffic during the load test.
func serveFaults(horizon time.Duration) *faults.PlanConfig {
	return &faults.PlanConfig{
		Horizon:             horizon,
		MeanTimeToOutage:    2500 * time.Millisecond,
		MeanOutage:          600 * time.Millisecond,
		MeanTimeToDegrade:   2 * time.Second,
		MeanDegrade:         800 * time.Millisecond,
		MeanTimeToExecFault: 1500 * time.Millisecond,
		MeanExecFault:       400 * time.Millisecond,
	}
}

// RunServe runs E18: it builds a platform with data collection, metric
// sampling, and fault injection live, serves its API over real TCP,
// advances virtual time on a wall-clock tick loop through the server's
// run lock, and drives the configured client fleet against it.
func RunServe(cfg ServeConfig) (*ServeReport, error) {
	if cfg.Clients <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("serve: clients and duration must be positive")
	}
	if cfg.TickWall <= 0 {
		cfg.TickWall = 5 * time.Millisecond
	}
	if cfg.TickStep <= 0 {
		cfg.TickStep = 100 * time.Millisecond
	}
	dataDir := cfg.DataDir
	if dataDir == "" {
		tmp, err := os.MkdirTemp("", "vdap-serve-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	}

	// Virtual horizon: every wall tick advances TickStep, plus slack for
	// scheduling jitter.
	ticksExpected := int64(cfg.Duration/cfg.TickWall) + 1
	horizon := time.Duration(2*ticksExpected) * cfg.TickStep

	pcfg := core.DefaultConfig(dataDir)
	pcfg.Seed = cfg.Seed
	pcfg.Faults = serveFaults(horizon)
	p, err := core.New(pcfg)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	if err := p.StartCollection(time.Second); err != nil {
		return nil, err
	}
	if err := p.StartSampling(0); err != nil {
		return nil, err
	}

	ts := httptest.NewServer(p.API())
	defer ts.Close()

	// The tick loop is the platform's single writer: it advances the
	// kernel only through AdvanceTo, which holds the API run lock.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ticks int64
	var tickErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(cfg.TickWall)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if err := p.AdvanceTo(p.Engine().Now() + cfg.TickStep); err != nil {
					tickErr = err
					return
				}
				ticks++
			}
		}
	}()

	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Clients,
			MaxIdleConnsPerHost: cfg.Clients,
		},
		Timeout: 30 * time.Second,
	}
	load, loadErr := libvdap.RunLoad(libvdap.LoadGenConfig{
		BaseURL:  ts.URL,
		Client:   client,
		Clients:  cfg.Clients,
		Duration: cfg.Duration,
		Mix:      cfg.Mix,
		Seed:     cfg.Seed,
	})
	close(stop)
	wg.Wait()
	if loadErr != nil {
		return nil, loadErr
	}
	if tickErr != nil {
		return nil, fmt.Errorf("serve: tick loop: %w", tickErr)
	}

	rep := &ServeReport{
		Schema:       ServeSchema,
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		Seed:         cfg.Seed,
		TickWallMS:   float64(cfg.TickWall) / float64(time.Millisecond),
		TickStepMS:   float64(cfg.TickStep) / float64(time.Millisecond),
		VirtualEndMS: float64(p.Engine().Now()) / float64(time.Millisecond),
		Ticks:        ticks,
		Load:         load,
		Server:       p.Server().Stats(),
	}
	stats := p.Server().CacheStats()
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := stats[name]
		rep.Caches = append(rep.Caches, ServeCacheRow{
			Endpoint: name,
			Hits:     st.Hits,
			Misses:   st.Misses,
			Shed:     st.Shed,
			HitRatio: st.HitRatio(),
		})
	}
	return rep, nil
}

// Marshal renders the report as indented JSON ready for BENCH_SERVE.json.
func (r *ServeReport) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ServeTable renders the E18 report: per-endpoint latency and error rows
// followed by the response-cache rows.
func ServeTable(r *ServeReport) string {
	t := &Table{
		Title: fmt.Sprintf("E18: serving tier under load (%d clients, %.0f rps, %d ticks)",
			r.Load.Clients, r.Load.RPS, r.Ticks),
		Columns: []string{"endpoint", "requests", "p50 ms", "p99 ms", "p999 ms", "max ms", "errors", "rejected", "sheds", "retries", "retried-ok", "err-rate"},
	}
	for _, e := range r.Load.Endpoints {
		t.Rows = append(t.Rows, []string{
			e.Endpoint,
			fmt.Sprintf("%d", e.Requests),
			f2(e.P50MS), f2(e.P99MS), f2(e.P999MS), f2(e.MaxMS),
			fmt.Sprintf("%d", e.Errors),
			fmt.Sprintf("%d", e.Rejected),
			fmt.Sprintf("%d", e.Sheds),
			fmt.Sprintf("%d", e.Retries),
			fmt.Sprintf("%d", e.RetriedOK),
			fmt.Sprintf("%.4f", e.ErrorRate()),
		})
	}
	c := &Table{
		Title:   "E18: watermark response caches",
		Columns: []string{"cache", "hits", "misses", "shed", "hit-ratio"},
	}
	for _, row := range r.Caches {
		c.Rows = append(c.Rows, []string{
			row.Endpoint,
			fmt.Sprintf("%d", row.Hits),
			fmt.Sprintf("%d", row.Misses),
			fmt.Sprintf("%d", row.Shed),
			fmt.Sprintf("%.4f", row.HitRatio),
		})
	}
	return t.String() + "\n" + c.String()
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/fleet"
	"repro/internal/hardware"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/xedge"
)

// SweepConfig parameterizes RunFleetSweep (E13).
type SweepConfig struct {
	// Replications is how many independent fleet worlds to run (default 8).
	Replications int
	// Parallel is the worker-pool size (non-positive: GOMAXPROCS).
	Parallel int
	// Seed keys every replication's random substream.
	Seed int64
	// Vehicles per fleet (default 8) contending for RSUs shared edge sites
	// (default 1).
	Vehicles int
	RSUs     int
	// Rounds of fleet-wide invocations per replication (default 5).
	Rounds int
	// SpeedJitterMPH perturbs per-vehicle speeds around 35 MPH so each
	// replication sees a different traffic mix (default 10).
	SpeedJitterMPH float64
	// MaxBackgroundTasks bounds the replication-random background tenant
	// load preloaded onto each edge site (default 8, enough to push some
	// replications past an RSU's free executor capacity): the multi-tenant
	// occupancy each replication's fleet contends against.
	MaxBackgroundTasks int
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.Replications == 0 {
		c.Replications = 8
	}
	if c.Vehicles == 0 {
		c.Vehicles = 8
	}
	if c.RSUs == 0 {
		c.RSUs = 1
	}
	if c.Rounds == 0 {
		c.Rounds = 5
	}
	if c.SpeedJitterMPH == 0 {
		c.SpeedJitterMPH = 10
	}
	if c.MaxBackgroundTasks == 0 {
		c.MaxBackgroundTasks = 8
	}
	return c
}

// SweepRow is one replication's steady-round measurement.
type SweepRow struct {
	Replication  int
	MeanMS       float64
	MaxMS        float64
	OffloadShare float64
	HangUps      int
}

// SweepResult is the deterministic merge of a whole sweep: per-replication
// rows ordered by index, plus the merged telemetry and trace.
type SweepResult struct {
	Rows    []SweepRow
	Metrics *telemetry.Registry
	Trace   *trace.Tracer
}

// RunFleetSweep runs N independent fleet-contention replications over the
// parallel runner (E13). Each replication builds its own world — road,
// RSU/cloud sites, vehicles — with per-vehicle speeds jittered from its
// replication-indexed RNG stream, warms the system for cfg.Rounds
// invocation rounds, and reports the steady round. Output (rows, merged
// metrics, merged trace) is byte-identical for a given seed at any
// Parallel level.
func RunFleetSweep(cfg SweepConfig) (*SweepResult, error) {
	cfg = cfg.withDefaults()
	rep, err := runner.Run(runner.Config{
		Replications: cfg.Replications,
		Parallel:     cfg.Parallel,
		Seed:         cfg.Seed,
	}, func(sh *runner.Shard) (SweepRow, error) {
		f, err := fleet.New(fleet.Config{
			Vehicles:       cfg.Vehicles,
			RSUs:           cfg.RSUs,
			SpeedJitterMPH: cfg.SpeedJitterMPH,
			RNG:            sh.RNG,
		})
		if err != nil {
			return SweepRow{}, err
		}
		f.Instrument(sh.Tracer, sh.Metrics)
		// Replication-random multi-tenant occupancy: each edge site starts
		// with a different background queue, drawn from the shard's stream.
		for _, s := range f.Sites() {
			if s.Kind() != xedge.RSU {
				continue
			}
			n := 1 + sh.RNG.Intn(cfg.MaxBackgroundTasks)
			if err := s.Preload(n, hardware.DNNInference, 300); err != nil {
				return SweepRow{}, err
			}
			sh.Metrics.Add("sweep.background_tasks", float64(n))
		}
		// Aggregate across every round: the replication's occupancy
		// trajectory (background load draining while fleet rounds land on
		// top) is what distinguishes one world from another.
		var total, max time.Duration
		var shareSum float64
		done, hangups := 0, 0
		for round := 0; round < cfg.Rounds; round++ {
			now := time.Duration(round) * 250 * time.Millisecond
			rr, err := f.InvokeAll("kidnapper-search", now)
			if err != nil {
				return SweepRow{}, err
			}
			total += rr.Total
			if rr.Max > max {
				max = rr.Max
			}
			shareSum += rr.OffloadShare
			done += rr.Invocations - rr.HangUps
			hangups += rr.HangUps
		}
		row := SweepRow{
			Replication:  sh.Index,
			MaxMS:        float64(max) / float64(time.Millisecond),
			OffloadShare: shareSum / float64(cfg.Rounds),
			HangUps:      hangups,
		}
		if done > 0 {
			row.MeanMS = float64(total) / float64(done) / float64(time.Millisecond)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &SweepResult{Rows: rep.Results, Metrics: rep.Metrics, Trace: rep.Trace}, nil
}

// FleetSweepTable renders E13: one row per replication plus an aggregate
// line averaging the replication means.
func FleetSweepTable(res *SweepResult) *Table {
	t := &Table{
		Title:   "E13: parallel fleet sweep (per-replication aggregate over all rounds)",
		Columns: []string{"Replication", "Mean (ms)", "Max (ms)", "Offload share", "Hang-ups"},
	}
	var meanSum, maxSum, shareSum float64
	hangups := 0
	for _, r := range res.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Replication), f2(r.MeanMS), f2(r.MaxMS),
			f2(r.OffloadShare), fmt.Sprintf("%d", r.HangUps),
		})
		meanSum += r.MeanMS
		maxSum += r.MaxMS
		shareSum += r.OffloadShare
		hangups += r.HangUps
	}
	if n := float64(len(res.Rows)); n > 0 {
		t.Rows = append(t.Rows, []string{
			"mean", f2(meanSum / n), f2(maxSum / n), f2(shareSum / n),
			fmt.Sprintf("%d", hangups),
		})
	}
	return t
}

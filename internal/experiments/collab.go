package experiments

import (
	"fmt"
	"time"

	"repro/internal/collab"
	"repro/internal/geo"
	"repro/internal/hardware"
)

// CollabRow is one convoy size's outcome in E9.
type CollabRow struct {
	Convoy        int
	Collaborative bool
	Computations  int
	Borrows       int
	TotalCostMS   float64
	SavingsX      float64 // compute reduction vs. no collaboration
}

// RunCollaboration drives convoys of increasing size down the same road
// for two minutes; each vehicle needs an object-detection result for its
// current 100 m segment every second (E9, the paper's §III-C
// collaboration challenge). With sharing on, one member computes each
// segment and the rest borrow over DSRC.
func RunCollaboration() ([]CollabRow, error) {
	tx2, err := hardware.Lookup(hardware.DeviceTX2MaxP)
	if err != nil {
		return nil, err
	}
	detectCost, err := tx2.ExecTime(hardware.DNNInference, hardware.InceptionV3GFLOP)
	if err != nil {
		return nil, err
	}
	const (
		duration = 2 * time.Minute
		spacing  = 25.0 // meters between convoy members
	)
	var rows []CollabRow
	for _, n := range []int{1, 2, 4, 8} {
		for _, collaborative := range []bool{false, true} {
			road, err := geo.NewRoad(20000)
			if err != nil {
				return nil, err
			}
			shareRange := 300.0
			if !collaborative {
				shareRange = 0.001 // effectively disables sharing
			}
			convoy, err := collab.NewConvoy(shareRange)
			if err != nil {
				return nil, err
			}
			keyer, err := collab.NewKeyer(100, 2*time.Second)
			if err != nil {
				return nil, err
			}
			vehicles := make([]*collab.Vehicle, 0, n)
			for i := 0; i < n; i++ {
				cache, err := collab.NewCache(keyer, 10*time.Second)
				if err != nil {
					return nil, err
				}
				v := &collab.Vehicle{
					Name:     fmt.Sprintf("cav-%d", i),
					Mobility: geo.Mobility{Road: road, SpeedMS: geo.MPH(35), StartX: float64(i) * spacing},
					Cache:    cache,
				}
				if err := convoy.Add(v); err != nil {
					return nil, err
				}
				vehicles = append(vehicles, v)
			}
			var total time.Duration
			computations, borrows := 0, 0
			for sec := time.Duration(0); sec < duration; sec += time.Second {
				for _, v := range vehicles {
					x := v.Mobility.PositionAt(sec).X
					key := keyer.For("object-detect", x, sec)
					_, cost, err := convoy.Obtain(v, key, sec, func() (collab.Result, time.Duration, error) {
						return collab.Result{At: sec, Bytes: 2048}, detectCost, nil
					})
					if err != nil {
						return nil, err
					}
					total += cost
				}
			}
			for _, v := range vehicles {
				computations += v.Computed()
				borrows += v.Borrowed()
			}
			rows = append(rows, CollabRow{
				Convoy:        n,
				Collaborative: collaborative,
				Computations:  computations,
				Borrows:       borrows,
				TotalCostMS:   float64(total) / float64(time.Millisecond),
			})
		}
	}
	// Fill the savings column from the paired baseline.
	baseline := map[int]int{}
	for _, r := range rows {
		if !r.Collaborative {
			baseline[r.Convoy] = r.Computations
		}
	}
	for i := range rows {
		if rows[i].Collaborative && rows[i].Computations > 0 {
			rows[i].SavingsX = float64(baseline[rows[i].Convoy]) / float64(rows[i].Computations)
		} else if !rows[i].Collaborative {
			rows[i].SavingsX = 1
		}
	}
	return rows, nil
}

// CollabTable renders E9.
func CollabTable(rows []CollabRow) *Table {
	t := &Table{
		Title:   "E9: convoy collaboration (2 min drive, per-segment object detection)",
		Columns: []string{"Convoy", "Sharing", "Computations", "Borrows", "Total cost (ms)", "Compute savings"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Convoy), fmt.Sprintf("%v", r.Collaborative),
			fmt.Sprintf("%d", r.Computations), fmt.Sprintf("%d", r.Borrows),
			f2(r.TotalCostMS), f2(r.SavingsX) + "x",
		})
	}
	return t
}

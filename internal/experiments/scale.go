package experiments

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/fleet"
	"repro/internal/sim"
)

// E16: fleet scaling sweep. The epoch-barrier sharded executor
// (fleet.ShardedInvokeAll) promises two things at once: simulation output
// that is byte-identical for any shard count, and a decision phase that
// spreads across cores. This experiment measures both — a deterministic
// per-fleet-size results table (the half `make determinism` diffs between
// -shards 1 and -shards 4 runs), and a wall-clock throughput table whose
// rounds/sec and speedup-vs-single-shard land in BENCH_PERF.json as
// fleet.scale.* rows. Speedup scales with available cores: a single-core
// runner can only demonstrate ~1.0x while proving determinism; the
// decision phase's parallel share is what multi-core runners harvest.
//
// The sweep also exercises the commit phase's parallel lanes
// (fleet.Config.CommitLanes, see fleet/domains.go): each fleet size runs
// a lane sweep whose simulation digest must match the shard sweep's
// exactly, with per-lane commit-phase wall clock reported as
// fleet.lanes.* rows. The cell topology pins RSURadiusM below half the
// RSU spacing so every RSU anchors its own interaction domain and the
// lanes have real work to split.

// ScaleConfig parameterizes RunScale.
type ScaleConfig struct {
	// Vehicles lists the fleet sizes to sweep (default 100, 1000, 10000).
	Vehicles []int
	// Shards lists the shard counts per fleet size (default 1, 2, 4, 8).
	// The first entry is the speedup baseline; include 1 first for the
	// canonical single-shard reference.
	Shards []int
	// Lanes lists the commit-lane counts per fleet size (default
	// 1, 2, 4, 8). The lane sweep runs at the last configured shard count;
	// the first entry is the commit-speedup baseline. The shard sweep
	// itself runs at Lanes[0].
	Lanes []int
	// Rounds is the number of epoch-barrier rounds per cell (default 4).
	Rounds int
	// Epoch spaces the rounds in virtual time (default 250ms).
	Epoch time.Duration
	// Seed keys every fleet's RNG stream.
	Seed int64
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if len(c.Vehicles) == 0 {
		c.Vehicles = []int{100, 1000, 10000}
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 2, 4, 8}
	}
	if len(c.Lanes) == 0 {
		c.Lanes = []int{1, 2, 4, 8}
	}
	if c.Rounds <= 0 {
		c.Rounds = 4
	}
	if c.Epoch <= 0 {
		c.Epoch = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// ScaleSimRow is the deterministic half of one fleet-size cell: pure
// simulation results plus a digest over every round and the merged
// telemetry. RunScale verifies the row is identical for every shard
// count before reporting it once.
type ScaleSimRow struct {
	Vehicles     int
	Invocations  int
	HangUps      int
	MeanMS       float64
	MaxMS        float64
	OffloadShare float64
	Digest       string
}

// ScaleTimingRow is the wall-clock half of one (vehicles, shards) cell.
// Nothing here feeds back into simulation state; it is reporting only.
type ScaleTimingRow struct {
	Vehicles     int
	Shards       int
	Rounds       int
	Elapsed      time.Duration
	RoundsPerSec float64
	InvocPerSec  float64
	// Speedup is rounds/sec over the baseline (first configured shard
	// count, canonically 1) at the same fleet size.
	Speedup float64
}

// ScaleLaneRow is the commit-phase half of one (vehicles, lanes) cell:
// wall clock spent inside the commit phase (summed over rounds), the
// offload invocations those commits carried, and the speedup over the
// first configured lane count. Reporting only; simulation output is
// asserted identical to the shard sweep's digest.
type ScaleLaneRow struct {
	Vehicles int
	Lanes    int
	Shards   int
	Rounds   int
	// CommitWall sums the commit-phase wall clock across all rounds.
	CommitWall time.Duration
	// Offloads counts the offload invocations the commit phase applied
	// (domain lanes + residue) across all rounds.
	Offloads int
	// Speedup is baseline commit wall over this cell's commit wall, where
	// the baseline is the first configured lane count at the same fleet
	// size (canonically 1).
	Speedup float64
}

// ScaleResult is the E16 report.
type ScaleResult struct {
	Config ScaleConfig
	Sim    []ScaleSimRow
	Timing []ScaleTimingRow
	Lanes  []ScaleLaneRow
}

// scaleFleetConfig builds one sweep cell's fleet: jittered speeds
// (consuming the seeded stream) and the default kidnapper-search service
// over a 16-RSU corridor with disjoint coverage disks (1250 m spacing,
// 600 m radius), so the partition yields one interaction domain per RSU
// plus the cloud singleton and the commit lanes have work to split.
func scaleFleetConfig(vehicles, shards, lanes int, seed int64) fleet.Config {
	return fleet.Config{
		Vehicles:       vehicles,
		RSUs:           16,
		RSURadiusM:     600,
		SpeedJitterMPH: 10,
		RNG:            sim.NewStream(seed, 0),
		Shards:         shards,
		CommitLanes:    lanes,
	}
}

// scaleCellTiming is the machine-dependent half of one cell run.
type scaleCellTiming struct {
	elapsed    time.Duration
	commitWall time.Duration
	offloads   int
}

// runScaleCell runs one (vehicles, shards, lanes) cell and returns its
// sim row (digest included) and wall-clock measurements.
func runScaleCell(cfg ScaleConfig, vehicles, shards, lanes int) (ScaleSimRow, scaleCellTiming, error) {
	f, err := fleet.New(scaleFleetConfig(vehicles, shards, lanes, cfg.Seed))
	if err != nil {
		return ScaleSimRow{}, scaleCellTiming{}, err
	}
	f.InstrumentSharded(false)
	h := fnv.New64a()
	row := ScaleSimRow{Vehicles: vehicles}
	var tm scaleCellTiming
	var total, max time.Duration
	var offload float64
	start := time.Now()
	for r := 0; r < cfg.Rounds; r++ {
		rr, err := f.ShardedInvokeAll("kidnapper-search", time.Duration(r)*cfg.Epoch)
		if err != nil {
			return ScaleSimRow{}, scaleCellTiming{}, fmt.Errorf("scale: v=%d s=%d l=%d round %d: %w", vehicles, shards, lanes, r, err)
		}
		fmt.Fprintf(h, "%d|%d|%d|%d|%d|%.9f|%d|%d|%d\n",
			r, rr.Invocations, rr.HangUps, rr.Total, rr.Max, rr.OffloadShare,
			rr.DeadlineHits, rr.Fallbacks, rr.Degraded)
		row.Invocations += rr.Invocations
		row.HangUps += rr.HangUps
		total += rr.Total
		if rr.Max > max {
			max = rr.Max
		}
		offload = rr.OffloadShare
		st := f.LastCommitStats()
		tm.commitWall += st.CommitWall
		tm.offloads += st.Offloads
	}
	tm.elapsed = time.Since(start)
	reg, _ := f.MergedTelemetry()
	fmt.Fprint(h, reg.Render())
	if done := row.Invocations - row.HangUps; done > 0 {
		row.MeanMS = float64(total.Microseconds()) / float64(done) / 1000
	}
	row.MaxMS = float64(max.Microseconds()) / 1000
	row.OffloadShare = offload
	row.Digest = fmt.Sprintf("%016x", h.Sum64())
	return row, tm, nil
}

// RunScale executes the E16 sweep: every fleet size at every shard count,
// then at every commit-lane count. It fails loudly if any shard or lane
// count changes the simulation digest — the determinism contract is
// asserted in-process on top of the external report diff in
// `make determinism`.
func RunScale(cfg ScaleConfig) (*ScaleResult, error) {
	cfg = cfg.withDefaults()
	res := &ScaleResult{Config: cfg}
	laneShards := cfg.Shards[len(cfg.Shards)-1]
	for _, v := range cfg.Vehicles {
		if v < 1 {
			return nil, fmt.Errorf("scale: fleet size %d", v)
		}
		var baseRPS float64
		for si, s := range cfg.Shards {
			row, tm, err := runScaleCell(cfg, v, s, cfg.Lanes[0])
			if err != nil {
				return nil, err
			}
			if si == 0 {
				res.Sim = append(res.Sim, row)
			} else if prev := res.Sim[len(res.Sim)-1]; row != prev {
				return nil, fmt.Errorf(
					"scale: determinism violation at %d vehicles: shards=%d digest %s != shards=%d digest %s",
					v, s, row.Digest, cfg.Shards[0], prev.Digest)
			}
			rps := float64(cfg.Rounds) / tm.elapsed.Seconds()
			if si == 0 {
				baseRPS = rps
			}
			res.Timing = append(res.Timing, ScaleTimingRow{
				Vehicles:     v,
				Shards:       s,
				Rounds:       cfg.Rounds,
				Elapsed:      tm.elapsed,
				RoundsPerSec: rps,
				InvocPerSec:  float64(row.Invocations) / tm.elapsed.Seconds(),
				Speedup:      rps / baseRPS,
			})
		}
		var baseCommit time.Duration
		for li, l := range cfg.Lanes {
			row, tm, err := runScaleCell(cfg, v, laneShards, l)
			if err != nil {
				return nil, err
			}
			if prev := res.Sim[len(res.Sim)-1]; row != prev {
				return nil, fmt.Errorf(
					"scale: determinism violation at %d vehicles: lanes=%d digest %s != shard-sweep digest %s",
					v, l, row.Digest, prev.Digest)
			}
			if li == 0 {
				baseCommit = tm.commitWall
			}
			lr := ScaleLaneRow{
				Vehicles:   v,
				Lanes:      l,
				Shards:     laneShards,
				Rounds:     cfg.Rounds,
				CommitWall: tm.commitWall,
				Offloads:   tm.offloads,
			}
			if tm.commitWall > 0 {
				lr.Speedup = float64(baseCommit) / float64(tm.commitWall)
			}
			res.Lanes = append(res.Lanes, lr)
		}
	}
	return res, nil
}

// ScaleTable renders the deterministic half of the report: identical for
// every shard count and every worker layout, so CI diffs it across
// -shards values.
func ScaleTable(res *ScaleResult) string {
	t := &Table{
		Title:   "E16: sharded fleet scaling (deterministic simulation results; identical for every shard count)",
		Columns: []string{"vehicles", "invocations", "hangups", "mean ms", "max ms", "offload", "digest"},
	}
	for _, r := range res.Sim {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Vehicles),
			fmt.Sprintf("%d", r.Invocations),
			fmt.Sprintf("%d", r.HangUps),
			f2(r.MeanMS),
			f2(r.MaxMS),
			f2(r.OffloadShare),
			r.Digest,
		})
	}
	return t.String()
}

// ScaleTimingTable renders the wall-clock half (machine-dependent; keep
// it out of determinism diffs).
func ScaleTimingTable(res *ScaleResult) string {
	t := &Table{
		Title:   "E16: sharded fleet throughput (wall clock; speedup vs first shard count, scales with cores)",
		Columns: []string{"vehicles", "shards", "rounds", "elapsed", "rounds/s", "invoc/s", "speedup"},
	}
	for _, r := range res.Timing {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Vehicles),
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Rounds),
			r.Elapsed.Round(time.Millisecond).String(),
			f2(r.RoundsPerSec),
			f2(r.InvocPerSec),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	return t.String()
}

// ScaleLaneTable renders the commit-lane half (machine-dependent; keep
// it out of determinism diffs).
func ScaleLaneTable(res *ScaleResult) string {
	t := &Table{
		Title:   "E16: parallel commit lanes (commit-phase wall clock; speedup vs first lane count, scales with cores)",
		Columns: []string{"vehicles", "lanes", "shards", "rounds", "commit wall", "ns/round", "offloads", "speedup"},
	}
	for _, r := range res.Lanes {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Vehicles),
			fmt.Sprintf("%d", r.Lanes),
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Rounds),
			r.CommitWall.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(r.CommitWall.Nanoseconds())/float64(r.Rounds)),
			fmt.Sprintf("%d", r.Offloads),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	return t.String()
}

// ScalePerfRows converts the timing half into E15-schema rows for
// BENCH_PERF.json: one fleet.scale.v<vehicles>.s<shards> row per shard
// cell (ns/op = wall nanoseconds per round, baseline = the same-size
// first-shard-count measurement) plus one fleet.lanes.v<vehicles>.l<lanes>
// row per lane cell (ns/op = commit-phase nanoseconds per round,
// events/sec = offload commits per commit-phase second, baseline = the
// same-size first-lane-count measurement).
func ScalePerfRows(res *ScaleResult) []PerfRow {
	baseNs := make(map[int]float64, len(res.Config.Vehicles))
	for _, r := range res.Timing {
		if r.Shards == res.Config.Shards[0] {
			baseNs[r.Vehicles] = float64(r.Elapsed.Nanoseconds()) / float64(r.Rounds)
		}
	}
	rows := make([]PerfRow, 0, len(res.Timing))
	for _, r := range res.Timing {
		ns := float64(r.Elapsed.Nanoseconds()) / float64(r.Rounds)
		row := PerfRow{
			Name:         fmt.Sprintf("fleet.scale.v%d.s%d", r.Vehicles, r.Shards),
			NsPerOp:      ns,
			EventsPerSec: r.InvocPerSec,
			Baseline:     PerfBaseline{NsPerOp: baseNs[r.Vehicles]},
		}
		if ns > 0 {
			row.Speedup = baseNs[r.Vehicles] / ns
		}
		rows = append(rows, row)
	}
	laneBaseNs := make(map[int]float64, len(res.Config.Vehicles))
	for _, r := range res.Lanes {
		if r.Lanes == res.Config.Lanes[0] {
			laneBaseNs[r.Vehicles] = float64(r.CommitWall.Nanoseconds()) / float64(r.Rounds)
		}
	}
	for _, r := range res.Lanes {
		ns := float64(r.CommitWall.Nanoseconds()) / float64(r.Rounds)
		row := PerfRow{
			Name:     fmt.Sprintf("fleet.lanes.v%d.l%d", r.Vehicles, r.Lanes),
			NsPerOp:  ns,
			Baseline: PerfBaseline{NsPerOp: laneBaseNs[r.Vehicles]},
		}
		if secs := r.CommitWall.Seconds(); secs > 0 {
			row.EventsPerSec = float64(r.Offloads) / secs
		}
		if ns > 0 {
			row.Speedup = laneBaseNs[r.Vehicles] / ns
		}
		rows = append(rows, row)
	}
	return rows
}

// MergeScaleIntoPerfReport upserts the E16 rows (fleet.scale.* and
// fleet.lanes.*) into the BENCH_PERF.json at path, preserving every
// other row (see MergePerfRows).
func MergeScaleIntoPerfReport(path string, res *ScaleResult) error {
	return MergePerfRows(path, ScalePerfRows(res))
}

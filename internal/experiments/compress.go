package experiments

import (
	"fmt"

	"repro/internal/models"
	"repro/internal/sim"
)

// CompressRow is one sweep point in E7.
type CompressRow struct {
	PruneFraction float64
	CodebookBits  int
	Ratio         float64
	AccBefore     float64
	AccAfter      float64
}

// RunCompressionSweep trains a cBEAM-sized model and sweeps Deep
// Compression's two knobs (E7): size ratio vs accuracy cost.
func RunCompressionSweep(seed int64) ([]CompressRow, error) {
	rng := sim.NewRNG(seed)
	train, err := models.GenerateDataset(2400, models.PopulationDriver(), rng.Fork())
	if err != nil {
		return nil, err
	}
	test, err := models.GenerateDataset(600, models.PopulationDriver(), rng.Fork())
	if err != nil {
		return nil, err
	}
	m, err := models.NewMLP([]int{models.FeatureDim, 32, 16, models.NumStyles}, rng.Fork())
	if err != nil {
		return nil, err
	}
	if _, err := m.Train(train, models.TrainOptions{Epochs: 25, LearningRate: 0.01}, rng.Fork()); err != nil {
		return nil, err
	}
	accBefore, err := m.Accuracy(test)
	if err != nil {
		return nil, err
	}
	sweep := []models.CompressOptions{
		{PruneFraction: 0.3, CodebookBits: 6},
		{PruneFraction: 0.5, CodebookBits: 5},
		{PruneFraction: 0.6, CodebookBits: 5},
		{PruneFraction: 0.8, CodebookBits: 4},
		{PruneFraction: 0.9, CodebookBits: 3},
		{PruneFraction: 0.95, CodebookBits: 2},
	}
	var rows []CompressRow
	for _, opts := range sweep {
		c, err := models.Compress(m, opts)
		if err != nil {
			return nil, fmt.Errorf("compress %.2f/%d: %w", opts.PruneFraction, opts.CodebookBits, err)
		}
		restored, err := c.Decompress()
		if err != nil {
			return nil, err
		}
		accAfter, err := restored.Accuracy(test)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CompressRow{
			PruneFraction: opts.PruneFraction,
			CodebookBits:  opts.CodebookBits,
			Ratio:         c.Stats.Ratio,
			AccBefore:     accBefore,
			AccAfter:      accAfter,
		})
	}
	return rows, nil
}

// CompressTable renders E7's sweep.
func CompressTable(rows []CompressRow) *Table {
	t := &Table{
		Title:   "E7: Deep Compression sweep on cBEAM (size ratio vs accuracy)",
		Columns: []string{"Prune", "Bits", "Ratio (x)", "Acc before", "Acc after"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			f2(r.PruneFraction), fmt.Sprintf("%d", r.CodebookBits),
			f2(r.Ratio), f3(r.AccBefore), f3(r.AccAfter),
		})
	}
	return t
}

// RetrainRow is one pruning level's comparison in E7c.
type RetrainRow struct {
	PruneFraction float64
	AccPlain      float64
	AccRetrained  float64
	Ratio         float64
}

// RunCompressionRetrain contrasts plain prune-and-quantize with Deep
// Compression's prune-retrain-quantize recipe at aggressive pruning levels
// (E7c): retraining should recover most of the accuracy cliff of E7.
func RunCompressionRetrain(seed int64) ([]RetrainRow, error) {
	rng := sim.NewRNG(seed)
	data, err := models.GenerateDataset(3000, models.PopulationDriver(), rng.Fork())
	if err != nil {
		return nil, err
	}
	train, test, err := data.Split(0.8)
	if err != nil {
		return nil, err
	}
	m, err := models.NewMLP([]int{models.FeatureDim, 32, 16, models.NumStyles}, rng.Fork())
	if err != nil {
		return nil, err
	}
	if _, err := m.Train(train, models.TrainOptions{Epochs: 25, LearningRate: 0.01}, rng.Fork()); err != nil {
		return nil, err
	}
	var rows []RetrainRow
	for _, prune := range []float64{0.6, 0.8, 0.9, 0.95} {
		opts := models.CompressOptions{PruneFraction: prune, CodebookBits: 4}
		plain, err := models.Compress(m, opts)
		if err != nil {
			return nil, err
		}
		retrained, err := models.CompressRetrained(m, opts,
			models.TrainOptions{Epochs: 10, LearningRate: 0.01}, train, rng.Fork())
		if err != nil {
			return nil, err
		}
		pm, err := plain.Decompress()
		if err != nil {
			return nil, err
		}
		rm, err := retrained.Decompress()
		if err != nil {
			return nil, err
		}
		accPlain, err := pm.Accuracy(test)
		if err != nil {
			return nil, err
		}
		accRetrained, err := rm.Accuracy(test)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RetrainRow{
			PruneFraction: prune,
			AccPlain:      accPlain,
			AccRetrained:  accRetrained,
			Ratio:         retrained.Stats.Ratio,
		})
	}
	return rows, nil
}

// RetrainTable renders E7c.
func RetrainTable(rows []RetrainRow) *Table {
	t := &Table{
		Title:   "E7c: pruning with vs. without retraining (4-bit codebooks)",
		Columns: []string{"Prune", "Acc (no retrain)", "Acc (retrained)", "Ratio (x)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{f2(r.PruneFraction), f3(r.AccPlain), f3(r.AccRetrained), f2(r.Ratio)})
	}
	return t
}

// PBEAMRow is one driver's pipeline outcome in E7b.
type PBEAMRow struct {
	Driver        string
	Ratio         float64
	CBEAMAcc      float64
	CompressedAcc float64
	PBEAMAcc      float64
}

// RunPBEAMPipeline runs the full cloud→edge pipeline for several synthetic
// drivers (E7b): personalization must recover what compression and driver
// mismatch cost.
func RunPBEAMPipeline(seed int64, drivers int) ([]PBEAMRow, error) {
	if drivers <= 0 {
		drivers = 3
	}
	var rows []PBEAMRow
	for i := 0; i < drivers; i++ {
		driver := models.SyntheticDriver(fmt.Sprintf("driver-%d", i), seed+int64(i)*17)
		res, err := models.BuildPBEAM(models.PBEAMConfig{}, driver, sim.NewRNG(seed+int64(i)*101))
		if err != nil {
			return nil, fmt.Errorf("driver %d: %w", i, err)
		}
		rows = append(rows, PBEAMRow{
			Driver:        driver.Name,
			Ratio:         res.CompressStats.Ratio,
			CBEAMAcc:      res.CBEAMDriverAccuracy,
			CompressedAcc: res.CompressedDriverAccuracy,
			PBEAMAcc:      res.PBEAMDriverAccuracy,
		})
	}
	return rows, nil
}

// PBEAMTable renders E7b.
func PBEAMTable(rows []PBEAMRow) *Table {
	t := &Table{
		Title:   "E7b: pBEAM pipeline (accuracy on each driver's own held-out data)",
		Columns: []string{"Driver", "Compression (x)", "cBEAM", "Compressed", "pBEAM"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Driver, f2(r.Ratio), f3(r.CBEAMAcc), f3(r.CompressedAcc), f3(r.PBEAMAcc),
		})
	}
	return t
}

package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/offload"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// RunReportSchema versions the RUN_REPORT.json layout written by E17.
const RunReportSchema = "openvdap.run_report/v1"

// ObsConfig parameterizes RunObs (E17).
type ObsConfig struct {
	// Replications is how many independent faulted fleet worlds (default 4).
	Replications int
	// Parallel is the worker-pool size (non-positive: GOMAXPROCS). Output
	// is byte-identical at any level.
	Parallel int
	// Seed keys every replication's random substream.
	Seed int64
	// Vehicles per fleet (default 8) over RSUs shared edge sites (default 2).
	Vehicles int
	RSUs     int
	// Shards is the epoch-barrier lane count inside each fleet (default 2).
	// Output is byte-identical for any value.
	Shards int
	// Rounds of fleet-wide invocations per replication (default 8), spaced
	// Epoch apart (default 400 ms).
	Rounds int
	Epoch  time.Duration
	// SampleInterval is the sampler's virtual-time tick (non-positive:
	// obs.DefaultSampleInterval).
	SampleInterval time.Duration
	// SpeedJitterMPH perturbs per-vehicle speeds (default 10).
	SpeedJitterMPH float64
	// BandwidthBudgetBytes caps each vehicle's uplink spend so the
	// budget-remaining gauge is meaningful (default 48 MB).
	BandwidthBudgetBytes float64
	// EventCapacity bounds each flight-recorder lane (default 4096).
	EventCapacity int
}

func (c ObsConfig) withDefaults() ObsConfig {
	if c.Replications == 0 {
		c.Replications = 4
	}
	if c.Vehicles == 0 {
		c.Vehicles = 8
	}
	if c.RSUs == 0 {
		c.RSUs = 2
	}
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.Rounds == 0 {
		c.Rounds = 8
	}
	if c.Epoch == 0 {
		c.Epoch = 400 * time.Millisecond
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = obs.DefaultSampleInterval
	}
	if c.SpeedJitterMPH == 0 {
		c.SpeedJitterMPH = 10
	}
	if c.BandwidthBudgetBytes == 0 {
		c.BandwidthBudgetBytes = 48e6
	}
	if c.EventCapacity == 0 {
		c.EventCapacity = 4096
	}
	return c
}

// ObsRoundHealth is one round's fleet health gauges, aggregated over all
// replications.
type ObsRoundHealth struct {
	Round        int     `json:"round"`
	Invocations  int     `json:"invocations"`
	DeadlineHits int     `json:"deadlineHits"`
	HitRate      float64 `json:"hitRate"`
	Failures     int     `json:"failures"`
	Fallbacks    int     `json:"fallbacks"`
	Degraded     int     `json:"degraded"`
	// QueueDepthSec is the committed-but-unfinished site work at round end,
	// in seconds of virtual execution time, averaged over replications.
	QueueDepthSec float64 `json:"queueDepthSec"`
	// BudgetRemaining is the mean fraction of each vehicle's uplink
	// bandwidth budget still unspent at round end.
	BudgetRemaining float64 `json:"budgetRemaining"`
}

// ObsResult is the deterministic merge of the whole experiment.
type ObsResult struct {
	Config  ObsConfig
	Rounds  []ObsRoundHealth
	Series  *obs.SeriesStore
	Events  *obs.Recorder
	Metrics *telemetry.Registry
	// FaultEvents is the total planned fault transitions across worlds.
	FaultEvents int
}

// obsRep is one replication's contribution.
type obsRep struct {
	Rounds      []ObsRoundHealth
	Series      *obs.SeriesStore
	Events      *obs.Recorder
	FaultEvents int
}

// RunObs is E17: a faulted, resilience-enabled fleet run with the full
// observability stack on — per-lane metric sampling into time-series,
// flight-recorder events from breakers, the resilience ladder, outage
// windows and commit phases, and per-round health gauges. The merged
// series and event log are byte-identical for any Shards or Parallel
// value, which `make determinism` exploits.
func RunObs(cfg ObsConfig) (*ObsResult, error) {
	cfg = cfg.withDefaults()
	rep, err := runner.Run(runner.Config{
		Replications: cfg.Replications,
		Parallel:     cfg.Parallel,
		Seed:         cfg.Seed,
	}, func(sh *runner.Shard) (obsRep, error) {
		pol := offload.DefaultPolicy()
		f, err := fleet.New(fleet.Config{
			Vehicles:       cfg.Vehicles,
			RSUs:           cfg.RSUs,
			Shards:         cfg.Shards,
			SpeedJitterMPH: cfg.SpeedJitterMPH,
			RNG:            sh.RNG,
			Faults:         obsFaults(cfg),
			Resilience:     &pol,
		})
		if err != nil {
			return obsRep{}, err
		}
		f.InstrumentSharded(false)
		f.EnableFlightRecorder(cfg.EventCapacity)
		for _, v := range f.Vehicles() {
			v.Engine.SetBandwidthBudget(cfg.BandwidthBudgetBytes)
		}
		store := obs.NewSeriesStore(0)
		sp := obs.NewSampler(store, cfg.SampleInterval)
		if err := f.WatchTelemetry(sp); err != nil {
			return obsRep{}, err
		}
		// The sampler ticks on a dedicated kernel: fleets schedule fault
		// transitions on their own engine, and the sampler only needs a
		// deterministic virtual clock to ride.
		eng := sim.NewEngine(0)
		if _, err := sp.Start(eng); err != nil {
			return obsRep{}, err
		}

		out := obsRep{FaultEvents: f.Faults().Plan().EventCount()}
		for round := 0; round < cfg.Rounds; round++ {
			now := time.Duration(round) * cfg.Epoch
			rr, err := f.ShardedInvokeAllTolerant("kidnapper-search", now)
			if err != nil {
				return obsRep{}, err
			}
			end := now + cfg.Epoch
			if err := eng.RunUntil(end); err != nil {
				return obsRep{}, err
			}
			h := ObsRoundHealth{
				Round:        round,
				Invocations:  rr.Invocations,
				DeadlineHits: rr.DeadlineHits,
				Failures:     rr.Failures,
				Fallbacks:    rr.Fallbacks,
				Degraded:     rr.Degraded,
			}
			// Queue depth reads right after the commit phase (at the round's
			// invocation time), when this round's work is still queued.
			for _, s := range f.Sites() {
				h.QueueDepthSec += s.PendingWork(now).Seconds()
			}
			var frac float64
			for _, v := range f.Vehicles() {
				remaining, _ := v.Engine.BandwidthRemaining()
				frac += remaining / cfg.BandwidthBudgetBytes
			}
			h.BudgetRemaining = frac / float64(cfg.Vehicles)
			out.Rounds = append(out.Rounds, h)
		}
		mreg, _ := f.MergedTelemetry()
		sh.Metrics.Merge(mreg)
		out.Series = store
		out.Events = f.MergedFlightRecorder()
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	res := &ObsResult{
		Config:  cfg,
		Rounds:  make([]ObsRoundHealth, cfg.Rounds),
		Series:  obs.NewSeriesStore(0),
		Events:  obs.NewRecorder(cfg.EventCapacity * cfg.Replications),
		Metrics: rep.Metrics,
	}
	// Merge replications in index order: counter series sum pointwise
	// (every world ticks the same schedule), events concatenate in the
	// canonical order.
	for _, r := range rep.Results {
		res.Series.Merge(r.Series)
		res.Events.Merge(r.Events)
		res.FaultEvents += r.FaultEvents
		for i, h := range r.Rounds {
			agg := &res.Rounds[i]
			agg.Round = i
			agg.Invocations += h.Invocations
			agg.DeadlineHits += h.DeadlineHits
			agg.Failures += h.Failures
			agg.Fallbacks += h.Fallbacks
			agg.Degraded += h.Degraded
			agg.QueueDepthSec += h.QueueDepthSec / float64(cfg.Replications)
			agg.BudgetRemaining += h.BudgetRemaining / float64(cfg.Replications)
		}
	}
	for i := range res.Rounds {
		if res.Rounds[i].Invocations > 0 {
			res.Rounds[i].HitRate = float64(res.Rounds[i].DeadlineHits) / float64(res.Rounds[i].Invocations)
		}
	}
	// Health gauges land in the merged store after the replication merge,
	// so their values aggregate over worlds instead of src-wins per world.
	for i := range res.Rounds {
		at := time.Duration(i+1) * cfg.Epoch
		res.Series.RecordGauge("fleet.deadline_hit_rate", at, res.Rounds[i].HitRate)
		res.Series.RecordGauge("fleet.queue_depth_s", at, res.Rounds[i].QueueDepthSec)
		res.Series.RecordGauge("fleet.budget_remaining", at, res.Rounds[i].BudgetRemaining)
	}
	return res, nil
}

// obsFaults is the experiment's fault plan: one healthy-to-outage cycle
// every few rounds plus link degradation and transient execution faults,
// sized to the run's horizon.
func obsFaults(cfg ObsConfig) *faults.PlanConfig {
	horizon := time.Duration(cfg.Rounds)*cfg.Epoch + 2*time.Second
	return &faults.PlanConfig{
		Horizon:             horizon,
		MeanTimeToOutage:    2500 * time.Millisecond,
		MeanOutage:          600 * time.Millisecond,
		MeanTimeToDegrade:   2 * time.Second,
		MeanDegrade:         800 * time.Millisecond,
		MeanTimeToExecFault: 1500 * time.Millisecond,
		MeanExecFault:       400 * time.Millisecond,
	}
}

// ObsTable renders the per-round health gauges.
func ObsTable(res *ObsResult) *Table {
	t := &Table{
		Title: "E17: flight-recorder run (per-round fleet health)",
		Columns: []string{"Round", "Invocations", "Hit-rate", "Failures",
			"Fallbacks", "Degraded", "Queue depth (s)", "Budget left"},
	}
	for _, h := range res.Rounds {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", h.Round), fmt.Sprintf("%d", h.Invocations),
			f2(h.HitRate), fmt.Sprintf("%d", h.Failures),
			fmt.Sprintf("%d", h.Fallbacks), fmt.Sprintf("%d", h.Degraded),
			f2(h.QueueDepthSec), f2(h.BudgetRemaining),
		})
	}
	return t
}

// RunReport is the schema-versioned payload written to RUN_REPORT.json:
// the experiment configuration that shapes the world (but nothing that
// only shapes execution — shard count, parallelism, wall-clock), the
// per-round health gauges, the merged metric series, and the merged
// flight-recorder log.
type RunReport struct {
	Schema       string           `json:"schema"`
	Experiment   string           `json:"experiment"`
	Seed         int64            `json:"seed"`
	Vehicles     int              `json:"vehicles"`
	RSUs         int              `json:"rsus"`
	Rounds       int              `json:"rounds"`
	Replications int              `json:"replications"`
	EpochNs      int64            `json:"epochNs"`
	FaultEvents  int              `json:"faultEvents"`
	RoundHealth  []ObsRoundHealth `json:"roundHealth"`
	Series       obs.Payload      `json:"series"`
	Events       []obs.Event      `json:"events"`
	Dropped      int              `json:"droppedEvents,omitempty"`
}

// BuildRunReport assembles the E17 run report. Everything in it is
// deterministic for a given seed, so the marshalled bytes diff clean
// across shard counts and parallelism levels.
func BuildRunReport(res *ObsResult) *RunReport {
	return &RunReport{
		Schema:       RunReportSchema,
		Experiment:   "obs",
		Seed:         res.Config.Seed,
		Vehicles:     res.Config.Vehicles,
		RSUs:         res.Config.RSUs,
		Rounds:       res.Config.Rounds,
		Replications: res.Config.Replications,
		EpochNs:      int64(res.Config.Epoch),
		FaultEvents:  res.FaultEvents,
		RoundHealth:  res.Rounds,
		Series:       res.Series.Payload(-1),
		Events:       res.Events.Events(),
		Dropped:      res.Events.Dropped(),
	}
}

// Marshal renders the report as indented JSON ready for RUN_REPORT.json.
func (r *RunReport) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

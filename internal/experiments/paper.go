package experiments

import (
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/hardware"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/tasks"
	"repro/internal/video"
)

// Table1Row is one measurement of E1 (paper Table I).
type Table1Row struct {
	Name      string
	LatencyMS float64
	PaperMS   float64
}

// RunTable1 measures the three Table-I workloads on the calibrated
// 2.4 GHz AWS vCPU model.
func RunTable1() ([]Table1Row, error) {
	host, err := hardware.Lookup(hardware.DeviceAWSVCPU)
	if err != nil {
		return nil, err
	}
	paper := map[string]float64{
		"lane-detect":         13.57,
		"vehicle-detect-haar": 269.46,
		"vehicle-detect-dnn":  13971.98,
	}
	var rows []Table1Row
	for _, w := range tasks.Table1Workloads() {
		d, err := host.ExecTime(w.Class, w.GFLOP)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.ID, err)
		}
		rows = append(rows, Table1Row{
			Name:      w.Name,
			LatencyMS: float64(d) / float64(time.Millisecond),
			PaperMS:   paper[w.ID],
		})
	}
	return rows, nil
}

// Table1Table renders E1.
func Table1Table(rows []Table1Row) *Table {
	t := &Table{
		Title:   "Table I: latency of autonomous-driving algorithms (2.4 GHz vCPU)",
		Columns: []string{"Algorithm", "Latency (ms)", "Paper (ms)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Name, f2(r.LatencyMS), f2(r.PaperMS)})
	}
	return t
}

// Figure2Row is one point of E2 (paper Figure 2).
type Figure2Row struct {
	Scenario        string
	Profile         string
	PacketLoss      float64
	FrameLoss       float64
	PaperPacketLoss float64
	PaperFrameLoss  float64
}

// paperFig2 holds the published loss rates.
var paperFig2 = map[string][2]float64{ // scenario/profile -> packet, frame
	"static/720p":  {0.002, 0.012},
	"static/1080p": {0.006, 0.027},
	"35mph/720p":   {0.021, 0.390},
	"35mph/1080p":  {0.070, 0.763},
	"70mph/720p":   {0.535, 0.911},
	"70mph/1080p":  {0.617, 0.980},
}

// RunFigure2 replays the drive test: a five-minute live H.264 upload over
// LTE at each speed and resolution, with the paper's counting rules.
// Duration is clipped to at least one GOP.
func RunFigure2(seed int64, duration time.Duration) ([]Figure2Row, error) {
	if duration < 2*time.Second {
		duration = 5 * time.Minute
	}
	road, err := geo.NewRoad(80000)
	if err != nil {
		return nil, err
	}
	road.PlaceStations(80, geo.BaseStation, 800, 0, "bs") // 1 km cells
	speeds := []struct {
		name string
		v    float64
	}{
		{"static", 0},
		{"35mph", geo.MPH(35)},
		{"70mph", geo.MPH(70)},
	}
	profiles := []video.Profile{video.Profile720p(), video.Profile1080p()}
	lte, err := network.LookupLink("lte")
	if err != nil {
		return nil, err
	}
	var rows []Figure2Row
	for _, sp := range speeds {
		for _, prof := range profiles {
			mob := geo.Mobility{Road: road, SpeedMS: sp.v}
			ch, err := network.NewCellularChannel(lte, mob, prof.BitrateMbps, sim.NewRNG(seed))
			if err != nil {
				return nil, err
			}
			stream, err := video.NewStream(prof, duration)
			if err != nil {
				return nil, err
			}
			rpt, err := video.Upload(stream, ch)
			if err != nil {
				return nil, err
			}
			key := sp.name + "/" + prof.Name
			paper := paperFig2[key]
			rows = append(rows, Figure2Row{
				Scenario:        sp.name,
				Profile:         prof.Name,
				PacketLoss:      rpt.PacketLossRate,
				FrameLoss:       rpt.FrameLossRate,
				PaperPacketLoss: paper[0],
				PaperFrameLoss:  paper[1],
			})
		}
	}
	return rows, nil
}

// Figure2Table renders E2.
func Figure2Table(rows []Figure2Row) *Table {
	t := &Table{
		Title:   "Figure 2: packet and frame loss of live video upload over LTE",
		Columns: []string{"Scenario", "Profile", "Packet loss", "Frame loss", "Paper packet", "Paper frame"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Scenario, r.Profile, f3(r.PacketLoss), f3(r.FrameLoss),
			f3(r.PaperPacketLoss), f3(r.PaperFrameLoss),
		})
	}
	return t
}

// Figure3Row is one point of E3 (paper Figure 3).
type Figure3Row struct {
	Device       string
	Label        string
	TimeMS       float64
	MaxPowerW    float64
	PaperTimeMS  float64
	PaperPowerW  float64
	EnergyPerImg float64 // joules per inference — the perf/W story
}

// RunFigure3 measures Inception-v3 on the five paper processors.
func RunFigure3() ([]Figure3Row, error) {
	labels := map[string]string{
		hardware.DeviceMNCS:    "DSP-based",
		hardware.DeviceTX2MaxQ: "GPU#1",
		hardware.DeviceTX2MaxP: "GPU#2",
		hardware.DeviceI76700:  "CPU-based",
		hardware.DeviceV100:    "GPU#3",
	}
	paperMS := map[string]float64{
		hardware.DeviceMNCS:    334.5,
		hardware.DeviceTX2MaxQ: 242.8,
		hardware.DeviceTX2MaxP: 114.3,
		hardware.DeviceI76700:  153.9,
		hardware.DeviceV100:    26.8,
	}
	var rows []Figure3Row
	for _, name := range hardware.Figure3Devices() {
		p, err := hardware.Lookup(name)
		if err != nil {
			return nil, err
		}
		d, err := p.ExecTime(hardware.DNNInference, hardware.InceptionV3GFLOP)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, Figure3Row{
			Device:       name,
			Label:        labels[name],
			TimeMS:       float64(d) / float64(time.Millisecond),
			MaxPowerW:    p.MaxPowerW,
			PaperTimeMS:  paperMS[name],
			PaperPowerW:  p.MaxPowerW, // calibrated identically by design
			EnergyPerImg: p.EnergyJ(d),
		})
	}
	return rows, nil
}

// Figure3Table renders E3.
func Figure3Table(rows []Figure3Row) *Table {
	t := &Table{
		Title:   "Figure 3: Inception-v3 on heterogeneous processors",
		Columns: []string{"Processor", "Label", "Time (ms)", "Max power (W)", "Paper (ms)", "J/inference"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Device, r.Label, f2(r.TimeMS), f2(r.MaxPowerW), f2(r.PaperTimeMS), f3(r.EnergyPerImg),
		})
	}
	return t
}

package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"repro/internal/ddi"
	"repro/internal/runner"
	"repro/internal/sim"
)

// E20 — the columnar DDI store ingest/query sweep. It builds a large
// virtual-time-partitioned corpus once (single-threaded, so the store
// layout is a pure function of the seed), then fans a fixed set of query
// shapes over the read-only store through the parallel runner. Everything
// printed on stdout is deterministic — counts, zone-map prune statistics,
// and record checksums — so `make determinism` can diff the digest across
// -parallel levels; wall-clock throughput goes to stderr and into
// BENCH_PERF.json as the ddi.* rows.

// DDIStoreConfig parameterizes E20.
type DDIStoreConfig struct {
	// Records is the corpus size (vdapbench default: 10M).
	Records int
	// Seed keys the corpus stream.
	Seed int64
	// Parallel is the query-sweep worker-pool size; the digest is
	// byte-identical at any level.
	Parallel int
	// Dir is the store scratch directory.
	Dir string
}

// DDIQueryCell is one query shape's deterministic measurement.
type DDIQueryCell struct {
	Name string
	// Count is the full matching-record count (zone-map fast path).
	Count int
	// Segments / Candidates / Pruned / SkipRatio come from the planner.
	Segments   int
	Candidates int
	Pruned     int
	SkipRatio  float64
	// Checksum is an FNV-1a digest over the first records the iterator
	// streams (ID, At, coordinates, payload) — pins byte-level results,
	// not just counts, across worker pools and engine changes.
	Checksum string
}

// DDIStoreResult is the full E20 outcome: the deterministic digest plus
// machine-dependent wall-clock throughput.
type DDIStoreResult struct {
	Records     int
	SpanVirtual time.Duration
	// Segment counts before and after compaction, plus how many segment
	// files compaction merged away.
	SegmentsBefore int
	SegmentsAfter  int
	MergedAway     int
	StoreBytes     int64
	// Cells is the query digest, pre-compaction; CellsAfter re-runs the
	// same shapes post-compaction (counts and checksums must agree).
	Cells      []DDIQueryCell
	CellsAfter []DDIQueryCell

	// Wall-clock measurements (stderr + BENCH_PERF.json only).
	IngestNsPerRec   float64
	BaselineNsPerRec float64
	ScanNsPerOp      float64
	NaiveNsPerOp     float64
	NarrowSkipRatio  float64
	CompactNs        float64
}

// ddiCorpusSpacing is the virtual-time gap between consecutive records:
// 1 ms of stream time per record spreads 10M records over ~2.8 h, i.e.
// ~33 five-minute partitions.
const ddiCorpusSpacing = time.Millisecond

var ddiCorpusSources = []ddi.Source{
	ddi.SourceOBD, ddi.SourceGPS, ddi.SourceWeather, ddi.SourceTraffic, ddi.SourceUser,
}

// ddiCorpusRecord derives record i of the corpus from the stream RNG.
// Payloads are small JSON-ish blobs so huffman block compression has
// realistic symbol skew. payload must be an empty slice with enough
// capacity for the longest blob (ddiPayloadCap); the record aliases it.
func ddiCorpusRecord(rng *sim.RNG, i int, payload []byte) ddi.Record {
	return ddi.Record{
		Source:  ddiCorpusSources[rng.Intn(len(ddiCorpusSources))],
		At:      time.Duration(i) * ddiCorpusSpacing,
		X:       rng.Uniform(-1000, 1000),
		Y:       rng.Uniform(-1000, 1000),
		Payload: fmt.Appendf(payload[:0], `{"v":%d,"s":%d}`, rng.Intn(10000), rng.Intn(100)),
	}
}

// ddiPayloadCap bounds one corpus payload: `{"v":9999,"s":99}` is 17
// bytes; 24 leaves slack.
const ddiPayloadCap = 24

// ddiBatchSize is how many corpus records are pre-generated per ingest
// batch, so record synthesis (RNG draws, payload formatting) stays out of
// the timed store path.
const ddiBatchSize = 1 << 16

// ddiCorpusBatches streams the corpus in pre-generated batches: fill
// synthesizes records outside any timing window, and the caller times
// only its own consumption of each batch. Batch buffers are reused, so
// consume must not retain records across calls.
func ddiCorpusBatches(seed int64, records int, consume func([]ddi.Record) error) error {
	rng := sim.NewStream(seed, 20)
	recs := make([]ddi.Record, 0, ddiBatchSize)
	slab := make([]byte, ddiBatchSize*ddiPayloadCap)
	for i := 0; i < records; {
		recs = recs[:0]
		for j := 0; j < ddiBatchSize && i < records; j, i = j+1, i+1 {
			buf := slab[j*ddiPayloadCap : j*ddiPayloadCap : (j+1)*ddiPayloadCap]
			recs = append(recs, ddiCorpusRecord(rng, i, buf))
		}
		if err := consume(recs); err != nil {
			return err
		}
	}
	return nil
}

// ddiQueryShapes builds the digest's query cells for a corpus spanning
// [0, span). Windows are fractions of the span so the shapes scale with
// -records.
func ddiQueryShapes(span time.Duration) []struct {
	Name  string
	Query ddi.Query
} {
	mid := span / 2
	return []struct {
		Name  string
		Query ddi.Query
	}{
		{"everything", ddi.Query{}},
		{"narrow-window", ddi.Query{From: mid, To: mid + span/100}},
		{"wide-window", ddi.Query{From: span / 4, To: 3 * span / 4}},
		{"open-tail", ddi.Query{From: span - span/20}},
		{"head-window", ddi.Query{To: span / 20}},
		{"obd-narrow", ddi.Query{Source: ddi.SourceOBD, From: mid, To: mid + span/50}},
		{"gps-everything", ddi.Query{Source: ddi.SourceGPS}},
		{"absent-source", ddi.Query{Source: ddi.SourceSocial}},
		{"spatial-circle", ddi.Query{X: 0, Y: 0, Radius: 200}},
		{"spatial-far", ddi.Query{X: 1e7, Y: 1e7, Radius: 1}},
		{"spatial-source-window", ddi.Query{Source: ddi.SourceWeather, From: span / 3, To: 2 * span / 3, X: 100, Y: -100, Radius: 500}},
		{"limited", ddi.Query{From: span / 10, Limit: 100}},
	}
}

// ddiQueryCell measures one shape: full count and prune statistics via
// the aggregate planner (zone-map fast path), plus a checksum over the
// first streamed records to pin exact results.
func ddiQueryCell(s *ddi.DiskStore, name string, q ddi.Query) (DDIQueryCell, error) {
	agg, stats, err := s.Aggregate(q, ddi.ColAt)
	if err != nil {
		return DDIQueryCell{}, err
	}
	h := fnv.New64a()
	var buf [8]byte
	qh := q
	if qh.Limit == 0 || qh.Limit > 256 {
		qh.Limit = 256
	}
	it := s.Scan(qh)
	for it.Next() {
		r := it.Record()
		put64 := func(v uint64) {
			for b := 0; b < 8; b++ {
				buf[b] = byte(v >> (8 * b))
			}
			h.Write(buf[:])
		}
		put64(r.ID)
		put64(uint64(r.At))
		put64(uint64(int64(r.X * 1e6)))
		put64(uint64(int64(r.Y * 1e6)))
		h.Write([]byte(r.Source))
		h.Write(r.Payload)
	}
	if err := it.Err(); err != nil {
		return DDIQueryCell{}, err
	}
	return DDIQueryCell{
		Name:       name,
		Count:      agg.Count,
		Segments:   stats.Segments,
		Candidates: stats.Candidates,
		Pruned:     stats.Pruned,
		SkipRatio:  stats.SkipRatio(),
		Checksum:   fmt.Sprintf("%016x", h.Sum64()),
	}, nil
}

// ddiQuerySweep runs every shape through the parallel runner. Each cell
// is an independent read-only job, and the merge is index-ordered, so the
// digest is byte-identical at any -parallel level.
func ddiQuerySweep(s *ddi.DiskStore, span time.Duration, seed int64, parallel int) ([]DDIQueryCell, error) {
	shapes := ddiQueryShapes(span)
	rep, err := runner.Run(runner.Config{
		Replications: len(shapes),
		Parallel:     parallel,
		Seed:         seed,
	}, func(sh *runner.Shard) (DDIQueryCell, error) {
		return ddiQueryCell(s, shapes[sh.Index].Name, shapes[sh.Index].Query)
	})
	if err != nil {
		return nil, err
	}
	return rep.Results, nil
}

// RunDDIStore executes E20: ingest, query sweep, compaction, re-sweep.
func RunDDIStore(cfg DDIStoreConfig) (*DDIStoreResult, error) {
	if cfg.Records < 1 {
		return nil, fmt.Errorf("ddistore: need at least one record, got %d", cfg.Records)
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("ddistore: need a scratch directory")
	}
	s, err := ddi.OpenDiskStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	res := &DDIStoreResult{
		Records:     cfg.Records,
		SpanVirtual: time.Duration(cfg.Records) * ddiCorpusSpacing,
	}

	// Phase 1 — ingest through the memtable + seal path. Single-threaded,
	// so the segment layout is a pure function of the seed; records are
	// pre-generated per batch so only Put and the seals it triggers are
	// timed (the baseline below likewise times only its write path).
	var ingest time.Duration
	err = ddiCorpusBatches(cfg.Seed, cfg.Records, func(recs []ddi.Record) error {
		start := time.Now()
		for i := range recs {
			if _, err := s.Put(recs[i]); err != nil {
				return err
			}
		}
		ingest += time.Since(start)
		return nil
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := s.Seal(); err != nil {
		return nil, err
	}
	ingest += time.Since(start)
	res.IngestNsPerRec = float64(ingest) / float64(cfg.Records)

	// Baseline: the seed store's append path — one JSON line per record,
	// no columns, no zone maps — measured live over the same stream.
	base, err := ddiBaselineIngest(cfg)
	if err != nil {
		return nil, err
	}
	res.BaselineNsPerRec = base

	res.SegmentsBefore = len(s.Segments())
	res.StoreBytes = dirBytes(cfg.Dir)

	// Phase 2 — deterministic query sweep over the sealed store.
	if res.Cells, err = ddiQuerySweep(s, res.SpanVirtual, cfg.Seed, cfg.Parallel); err != nil {
		return nil, err
	}

	// Phase 3 — wall-clock scan timings on the canonical narrow window:
	// the planned scan against a full-scan reference that touches every
	// record (the seed Select's O(n) shape).
	narrow := ddi.Query{From: res.SpanVirtual / 2, To: res.SpanVirtual/2 + res.SpanVirtual/100}
	if res.ScanNsPerOp, res.NarrowSkipRatio, err = ddiTimePlannedScan(s, narrow); err != nil {
		return nil, err
	}
	if res.NaiveNsPerOp, err = ddiTimeNaiveScan(s, narrow); err != nil {
		return nil, err
	}

	// Phase 4 — compaction, then the same digest again: merging segments
	// must not change any count or checksum.
	start = time.Now()
	merged, err := s.Compact()
	if err != nil {
		return nil, err
	}
	res.CompactNs = float64(time.Since(start))
	res.MergedAway = merged
	res.SegmentsAfter = len(s.Segments())
	if res.CellsAfter, err = ddiQuerySweep(s, res.SpanVirtual, cfg.Seed, cfg.Parallel); err != nil {
		return nil, err
	}
	for i := range res.Cells {
		if res.Cells[i].Count != res.CellsAfter[i].Count || res.Cells[i].Checksum != res.CellsAfter[i].Checksum {
			return nil, fmt.Errorf("ddistore: compaction changed %q: count %d->%d checksum %s->%s",
				res.Cells[i].Name, res.Cells[i].Count, res.CellsAfter[i].Count,
				res.Cells[i].Checksum, res.CellsAfter[i].Checksum)
		}
	}
	return res, nil
}

// ddiBaselineIngest measures the pre-columnar append path: marshal each
// record to JSON and write it as one line, exactly the seed DiskStore's
// hot loop. Records come pre-generated from the same stream as the live
// measurement, and only the marshal+write path is timed, so the
// comparison is payload-for-payload.
func ddiBaselineIngest(cfg DDIStoreConfig) (float64, error) {
	n := cfg.Records
	if n > 1_000_000 {
		n = 1_000_000 // the per-record cost is flat; no need to write 10M lines
	}
	path := filepath.Join(cfg.Dir, "baseline.jsonl")
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer os.Remove(path)
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	var total time.Duration
	id := uint64(0)
	err = ddiCorpusBatches(cfg.Seed, n, func(recs []ddi.Record) error {
		start := time.Now()
		for i := range recs {
			id++
			recs[i].ID = id
			line, err := json.Marshal(recs[i])
			if err != nil {
				return err
			}
			if _, err := w.Write(line); err != nil {
				return err
			}
			if err := w.WriteByte('\n'); err != nil {
				return err
			}
		}
		total += time.Since(start)
		return nil
	})
	if err != nil {
		return 0, err
	}
	if err := w.Flush(); err != nil {
		return 0, err
	}
	return float64(total) / float64(n), nil
}

// ddiTimePlannedScan streams the window through the planner repeatedly
// and returns ns per scan plus the window's segment-skip ratio.
func ddiTimePlannedScan(s *ddi.DiskStore, q ddi.Query) (nsPerOp, skip float64, err error) {
	stats, err := s.Explain(q)
	if err != nil {
		return 0, 0, err
	}
	const reps = 5
	start := time.Now()
	for r := 0; r < reps; r++ {
		it := s.Scan(q)
		for it.Next() {
		}
		if err := it.Err(); err != nil {
			return 0, 0, err
		}
	}
	return float64(time.Since(start)) / reps, stats.SkipRatio(), nil
}

// ddiTimeNaiveScan is the reference: stream every record in the store
// and filter by hand — what a windowed Select cost before zone maps.
func ddiTimeNaiveScan(s *ddi.DiskStore, q ddi.Query) (float64, error) {
	start := time.Now()
	it := s.Scan(ddi.Query{})
	n := 0
	for it.Next() {
		r := it.Record()
		if q.Matches(r) {
			n++
		}
	}
	if err := it.Err(); err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("ddistore: naive reference matched nothing")
	}
	return float64(time.Since(start)), nil
}

// dirBytes sums the sizes of the regular files directly inside dir.
func dirBytes(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil && info.Mode().IsRegular() {
			total += info.Size()
		}
	}
	return total
}

// DDIStorePerfRows renders the E20 wall-clock measurements as
// BENCH_PERF.json rows.
func DDIStorePerfRows(res *DDIStoreResult) []PerfRow {
	rows := []PerfRow{
		{
			Name:         "ddi.ingest",
			NsPerOp:      res.IngestNsPerRec,
			EventsPerSec: 1e9 / res.IngestNsPerRec,
			Baseline:     PerfBaseline{NsPerOp: res.BaselineNsPerRec},
		},
		{
			Name:     "ddi.scan_window",
			NsPerOp:  res.ScanNsPerOp,
			Baseline: PerfBaseline{NsPerOp: res.NaiveNsPerOp},
		},
		{
			Name:    "ddi.segment_skip_ratio",
			NsPerOp: res.ScanNsPerOp,
			Ratio:   res.NarrowSkipRatio,
		},
		{
			Name:         "ddi.compaction",
			NsPerOp:      res.CompactNs / float64(res.Records),
			EventsPerSec: 1e9 * float64(res.Records) / res.CompactNs,
			Ratio:        float64(res.MergedAway) / float64(res.SegmentsBefore),
		},
	}
	for i := range rows {
		if rows[i].Baseline.NsPerOp > 0 && rows[i].NsPerOp > 0 {
			rows[i].Speedup = rows[i].Baseline.NsPerOp / rows[i].NsPerOp
		}
	}
	return rows
}

// MergeDDIStoreIntoPerfReport upserts the ddi.* rows into the
// BENCH_PERF.json at path, preserving every other row.
func MergeDDIStoreIntoPerfReport(path string, res *DDIStoreResult) error {
	return MergePerfRows(path, DDIStorePerfRows(res))
}

// DDIStoreTable renders the deterministic E20 digest: corpus shape, zone
// maps, and the per-query sweep. Everything here is a pure function of
// (seed, records) — `make determinism` diffs it across -parallel levels.
func DDIStoreTable(res *DDIStoreResult) string {
	t := &Table{
		Title: fmt.Sprintf("E20: columnar DDI store, %d records over %v (%d -> %d segments, %d merged away)",
			res.Records, res.SpanVirtual, res.SegmentsBefore, res.SegmentsAfter, res.MergedAway),
		Columns: []string{"query", "count", "segments", "pruned", "skip", "skip (compacted)", "checksum"},
	}
	for i, c := range res.Cells {
		t.Rows = append(t.Rows, []string{
			c.Name,
			fmt.Sprintf("%d", c.Count),
			fmt.Sprintf("%d", c.Segments),
			fmt.Sprintf("%d", c.Pruned),
			f3(c.SkipRatio),
			f3(res.CellsAfter[i].SkipRatio),
			c.Checksum,
		})
	}
	return t.String()
}

// DDIStoreTimingTable renders the machine-dependent half of E20 —
// wall-clock throughput — for stderr, next to the BENCH_PERF rows.
func DDIStoreTimingTable(res *DDIStoreResult) string {
	t := &Table{
		Title:   "E20: wall-clock throughput (machine-dependent)",
		Columns: []string{"path", "ns/op", "baseline ns/op", "speedup", "throughput"},
	}
	speedup := func(base, live float64) string {
		if base <= 0 || live <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", base/live)
	}
	t.Rows = append(t.Rows,
		[]string{"ingest (per record)", f2(res.IngestNsPerRec), f2(res.BaselineNsPerRec),
			speedup(res.BaselineNsPerRec, res.IngestNsPerRec),
			fmt.Sprintf("%.2fM rec/s", 1e3/res.IngestNsPerRec)},
		[]string{"narrow-window scan", f2(res.ScanNsPerOp), f2(res.NaiveNsPerOp),
			speedup(res.NaiveNsPerOp, res.ScanNsPerOp),
			fmt.Sprintf("skip %.3f", res.NarrowSkipRatio)},
		[]string{"compaction (per record)", f2(res.CompactNs / float64(res.Records)), "-", "-",
			fmt.Sprintf("%.2fM rec/s", 1e3*float64(res.Records)/res.CompactNs)},
		[]string{"store size", "-", "-", "-",
			fmt.Sprintf("%.1f B/rec (%.1f MB)", float64(res.StoreBytes)/float64(res.Records), float64(res.StoreBytes)/1e6)},
	)
	return t.String()
}

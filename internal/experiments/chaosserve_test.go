package experiments

import (
	"encoding/json"
	"testing"
	"time"
)

// TestRunChaosServeSmoke runs a small E19 shape end to end: both modes of
// the paired run through the chaos proxy, checking the invariants the full
// benchmark relies on — matching plan digests, populated load results, and
// a well-formed report.
func TestRunChaosServeSmoke(t *testing.T) {
	cfg := DefaultChaosServeConfig()
	cfg.Clients = 12
	cfg.Duration = 400 * time.Millisecond
	cfg.TickWall = 5 * time.Millisecond
	cfg.TickStep = 50 * time.Millisecond
	cfg.DataDir = t.TempDir()
	cfg.StreamFrames = 3
	rep, err := RunChaosServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ChaosServeSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Plan.Digest == "" || rep.Plan.Conns == 0 {
		t.Fatalf("empty plan info: %+v", rep.Plan)
	}
	if rep.Baseline.PlanDigest != rep.Resilient.PlanDigest {
		t.Fatalf("plan digests diverged: %s vs %s", rep.Baseline.PlanDigest, rep.Resilient.PlanDigest)
	}
	if rep.Baseline.PlanDigest != rep.Plan.Digest {
		t.Fatalf("mode digest %s != reference digest %s", rep.Baseline.PlanDigest, rep.Plan.Digest)
	}
	for _, m := range []ChaosModeResult{rep.Baseline, rep.Resilient} {
		if m.Load.Requests == 0 {
			t.Fatalf("mode %s recorded no load", m.Mode)
		}
		if m.Ticks == 0 {
			t.Fatalf("mode %s: platform never advanced", m.Mode)
		}
		if m.Proxy.Conns == 0 {
			t.Fatalf("mode %s: no traffic crossed the proxy", m.Mode)
		}
	}
	if rep.Baseline.Stream != nil {
		t.Fatal("baseline must not run the stream consumer")
	}
	if s := rep.Resilient.Stream; s == nil {
		t.Fatal("resilient mode missing stream consumer result")
	} else if s.FramesWanted != 3 {
		t.Fatalf("stream frames wanted = %d", s.FramesWanted)
	}
	// The resilient mode retries sheds and broken reads; under chaos it
	// must not do worse than the raw baseline.
	if rep.Resilient.SuccessRate < rep.Baseline.SuccessRate {
		t.Fatalf("resilience hurt success: on=%.4f off=%.4f",
			rep.Resilient.SuccessRate, rep.Baseline.SuccessRate)
	}
	out, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if table := ChaosServeTable(rep); table == "" {
		t.Fatal("empty table")
	}
}

// TestCompileChaosPlanDeterministic pins the `make determinism` contract:
// the compiled plan must be byte-identical at any -parallel level.
func TestCompileChaosPlanDeterministic(t *testing.T) {
	cfg := DefaultChaosServeConfig()
	cfg.Seed = 7
	cfg.Parallel = 1
	p1, err := CompileChaosPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	p4, err := CompileChaosPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Describe() != p4.Describe() {
		t.Fatal("chaos plan text diverged across -parallel levels")
	}
	if p1.Digest() != p4.Digest() {
		t.Fatalf("chaos plan digest diverged: %s vs %s", p1.Digest(), p4.Digest())
	}
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/hdmap"
	"repro/internal/sim"
)

// HDMapRow is one (speed, horizon) point in E10.
type HDMapRow struct {
	SpeedMPH   float64
	HorizonSec float64
	MissRate   float64
	Fetches    int
	BlockedMS  float64 // total lookup-path blocking time
}

// RunHDMapPrefetch sweeps prefetch horizons at two speeds over a
// ten-minute drive with per-second map lookups (E10): the horizon needed
// to hide all blocking fetches grows with speed, and over-prefetching only
// costs background bandwidth.
func RunHDMapPrefetch() ([]HDMapRow, error) {
	road, err := geo.NewRoad(200000)
	if err != nil {
		return nil, err
	}
	var rows []HDMapRow
	for _, mph := range []float64{35, 70} {
		for _, horizon := range []time.Duration{0, 5 * time.Second, 15 * time.Second, 60 * time.Second} {
			svc, err := hdmap.New(hdmap.Config{CacheTiles: 64}, sim.NewRNG(3))
			if err != nil {
				return nil, err
			}
			mob := geo.Mobility{Road: road, SpeedMS: geo.MPH(mph)}
			var blocked time.Duration
			for now := time.Duration(0); now < 10*time.Minute; now += time.Second {
				if horizon > 0 {
					if _, _, err := svc.Prefetch(mob, now, horizon); err != nil {
						return nil, err
					}
				}
				_, cost, err := svc.Lookup(mob.PositionAt(now).X)
				if err != nil {
					return nil, err
				}
				blocked += cost
			}
			_, _, fetches := svc.Stats()
			rows = append(rows, HDMapRow{
				SpeedMPH:   mph,
				HorizonSec: horizon.Seconds(),
				MissRate:   svc.MissRate(),
				Fetches:    fetches,
				BlockedMS:  float64(blocked) / float64(time.Millisecond),
			})
		}
	}
	return rows, nil
}

// HDMapTable renders E10.
func HDMapTable(rows []HDMapRow) *Table {
	t := &Table{
		Title:   "E10: HD-map prefetch horizon vs blocking fetches (10 min drive)",
		Columns: []string{"Speed (MPH)", "Horizon (s)", "Miss rate", "Fetches", "Blocked (ms)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			f2(r.SpeedMPH), f2(r.HorizonSec), f3(r.MissRate),
			fmt.Sprintf("%d", r.Fetches), f2(r.BlockedMS),
		})
	}
	return t
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/ddi"
	"repro/internal/edgeos"
	"repro/internal/geo"
	"repro/internal/hardware"
	"repro/internal/offload"
	"repro/internal/sim"
	"repro/internal/tasks"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vcu"
	"repro/internal/xedge"
)

// DSFRow is one policy's result in E4.
type DSFRow struct {
	Policy     string
	Workload   string
	MakespanMS float64
	EnergyJ    float64
}

// RunDSFAblation schedules n back-to-back instances of each library DAG
// under each built-in policy on a fresh default VCU and reports the total
// makespan and energy (E4).
func RunDSFAblation(n int) ([]DSFRow, error) {
	if n <= 0 {
		n = 8
	}
	workloads := []func() *tasks.DAG{tasks.ALPR, tasks.PedestrianAlert, tasks.InfotainmentDecode}
	var rows []DSFRow
	for _, policy := range vcu.Policies() {
		for _, mk := range workloads {
			m, err := vcu.DefaultVCU()
			if err != nil {
				return nil, err
			}
			dsf, err := vcu.NewDSF(m, policy)
			if err != nil {
				return nil, err
			}
			var last time.Duration
			var energy float64
			for i := 0; i < n; i++ {
				plan, err := dsf.Run(mk(), 0)
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", policy.Name(), mk().Name, err)
				}
				energy += plan.EnergyJ
				for _, a := range plan.Assignments {
					if a.Finish > last {
						last = a.Finish
					}
				}
			}
			rows = append(rows, DSFRow{
				Policy:     policy.Name(),
				Workload:   mk().Name,
				MakespanMS: float64(last) / float64(time.Millisecond),
				EnergyJ:    energy,
			})
		}
	}
	return rows, nil
}

// DSFTable renders E4.
func DSFTable(rows []DSFRow) *Table {
	t := &Table{
		Title:   "E4: DSF scheduler ablation (total makespan of 8 back-to-back DAGs)",
		Columns: []string{"Policy", "Workload", "Makespan (ms)", "Energy (J)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Policy, r.Workload, f2(r.MakespanMS), f2(r.EnergyJ)})
	}
	return t
}

// ElasticRow is one operating point in E5.
type ElasticRow struct {
	SpeedMPH   float64
	EdgeBusy   bool
	Pipeline   string
	Dest       string
	LatencyMS  float64
	MeetsSLA   bool
	DeadlineMS float64
}

// RunElastic evaluates the kidnapper-search service's pipeline choice
// across vehicle speeds and edge-server load (E5): the elastic manager
// should move the split point and destination as conditions change.
func RunElastic() ([]ElasticRow, error) {
	const deadline = 2 * time.Second
	speeds := []float64{0, 35, 70}
	var rows []ElasticRow
	for _, busy := range []bool{false, true} {
		for _, mph := range speeds {
			m, err := vcu.DefaultVCU()
			if err != nil {
				return nil, err
			}
			dsf, err := vcu.NewDSF(m, vcu.GreedyEFT{})
			if err != nil {
				return nil, err
			}
			road, err := geo.NewRoad(20000)
			if err != nil {
				return nil, err
			}
			road.PlaceStations(20, geo.BaseStation, 900, 0, "bs")
			rsu, err := xedge.NewRSU(geo.Station{ID: "rsu-0", Kind: geo.RSU, Pos: geo.Point{X: 0}, Radius: 1e9})
			if err != nil {
				return nil, err
			}
			if busy {
				if err := rsu.Preload(96, hardware.DNNInference, 400); err != nil {
					return nil, err
				}
			}
			cl, err := xedge.NewCloud()
			if err != nil {
				return nil, err
			}
			eng, err := offload.NewEngine(dsf, geo.Mobility{Road: road, SpeedMS: geo.MPH(mph)}, []*xedge.Site{rsu, cl})
			if err != nil {
				return nil, err
			}
			mgr, err := edgeos.NewElasticManager(eng, edgeos.MinLatency)
			if err != nil {
				return nil, err
			}
			svc := &edgeos.Service{
				Name:     "kidnapper-search",
				Priority: edgeos.PriorityInteractive,
				Deadline: deadline,
				DAG:      tasks.ALPR(),
				Image:    []byte("a3"),
			}
			if err := mgr.Register(svc); err != nil {
				return nil, err
			}
			best, _, viable, err := mgr.Choose("kidnapper-search", 0)
			if err != nil {
				return nil, err
			}
			row := ElasticRow{
				SpeedMPH:   mph,
				EdgeBusy:   busy,
				DeadlineMS: float64(deadline) / float64(time.Millisecond),
				MeetsSLA:   viable,
			}
			if viable || best.Estimate.Feasible {
				row.Pipeline = best.Pipeline.Name
				row.Dest = best.Estimate.Dest
				row.LatencyMS = float64(best.Estimate.Total) / float64(time.Millisecond)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ElasticTable renders E5.
func ElasticTable(rows []ElasticRow) *Table {
	t := &Table{
		Title:   "E5: elastic management pipeline selection (kidnapper search, 2 s deadline)",
		Columns: []string{"Speed (MPH)", "Edge busy", "Pipeline", "Destination", "Latency (ms)", "Meets SLA"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			f2(r.SpeedMPH), fmt.Sprintf("%v", r.EdgeBusy), r.Pipeline, r.Dest,
			f2(r.LatencyMS), fmt.Sprintf("%v", r.MeetsSLA),
		})
	}
	return t
}

// ArchRow is one workload's comparison in E6.
type ArchRow struct {
	Workload  string
	SpeedMPH  float64
	OnboardMS float64
	EdgeMS    float64
	CloudMS   float64
	Winner    string
}

// RunArchComparison contrasts the paper's three computing architectures
// (§III): in-vehicle only, edge-based, cloud-based, per workload and speed.
func RunArchComparison() ([]ArchRow, error) {
	return runArchComparison(nil, nil, "")
}

// RunArchComparisonTraced is RunArchComparison with every subsystem
// reporting into the given tracer and registry. The numbers are identical
// to the untraced run; the trace additionally includes a DDI stage (one
// collection round plus hot/cold reads in ddiDir) so all five component
// lanes — vcu, offload, network, xedge/cloud, ddi — appear.
func RunArchComparisonTraced(tr *trace.Tracer, reg *telemetry.Registry, ddiDir string) ([]ArchRow, error) {
	return runArchComparison(tr, reg, ddiDir)
}

func runArchComparison(tr *trace.Tracer, reg *telemetry.Registry, ddiDir string) ([]ArchRow, error) {
	if ddiDir != "" {
		if err := runArchDDIStage(tr, reg, ddiDir); err != nil {
			return nil, err
		}
	}
	workloads := []*tasks.DAG{
		{Name: "lane-detection", Tasks: []*tasks.Task{tasks.LaneDetection()}},
		{Name: "vehicle-detect-haar", Tasks: []*tasks.Task{tasks.VehicleDetectionHaar()}},
		{Name: "vehicle-detect-dnn", Tasks: []*tasks.Task{tasks.VehicleDetectionDNN()}},
		tasks.ALPR(),
	}
	var rows []ArchRow
	for _, mph := range []float64{0, 35, 70} {
		for _, dag := range workloads {
			m, err := vcu.DefaultVCU()
			if err != nil {
				return nil, err
			}
			dsf, err := vcu.NewDSF(m, vcu.GreedyEFT{})
			if err != nil {
				return nil, err
			}
			road, err := geo.NewRoad(20000)
			if err != nil {
				return nil, err
			}
			road.PlaceStations(20, geo.BaseStation, 900, 0, "bs")
			rsu, err := xedge.NewRSU(geo.Station{ID: "rsu", Kind: geo.RSU, Pos: geo.Point{X: 0}, Radius: 1e9})
			if err != nil {
				return nil, err
			}
			cl, err := xedge.NewCloud()
			if err != nil {
				return nil, err
			}
			eng, err := offload.NewEngine(dsf, geo.Mobility{Road: road, SpeedMS: geo.MPH(mph)}, []*xedge.Site{rsu, cl})
			if err != nil {
				return nil, err
			}
			dsf.Instrument(tr, reg)
			eng.Instrument(tr, reg)
			onboard := eng.EstimateOnboard(dag.Clone(), 0)
			edge := eng.EstimateSite(dag.Clone(), rsu, 0, 0)
			cloudEst := eng.EstimateSite(dag.Clone(), cl, 0, 0)
			row := ArchRow{
				Workload:  dag.Name,
				SpeedMPH:  mph,
				OnboardMS: float64(onboard.Total) / float64(time.Millisecond),
				EdgeMS:    float64(edge.Total) / float64(time.Millisecond),
				CloudMS:   float64(cloudEst.Total) / float64(time.Millisecond),
			}
			row.Winner = "onboard"
			best := onboard.Total
			if edge.Feasible && edge.Total < best {
				row.Winner, best = "edge", edge.Total
			}
			if cloudEst.Feasible && cloudEst.Total < best {
				row.Winner = "cloud"
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// runArchDDIStage exercises the data tier for the traced arch run: one
// collection round, a cache-hit read, and a TTL-expired disk read.
func runArchDDIStage(tr *trace.Tracer, reg *telemetry.Registry, dir string) error {
	road, err := geo.NewRoad(20000)
	if err != nil {
		return err
	}
	d, err := ddi.New(ddi.Options{Dir: dir, Mobility: geo.Mobility{Road: road, SpeedMS: 15}}, sim.NewRNG(1))
	if err != nil {
		return err
	}
	defer d.Close()
	d.Instrument(tr, reg)
	recs, err := d.Collect(time.Second)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("experiments: DDI stage collected nothing")
	}
	// Hot read inside the TTL, then the same record after expiry (disk
	// path with promotion).
	if _, _, err := d.DownloadByID(2*time.Second, recs[0].ID); err != nil {
		return err
	}
	if _, _, err := d.DownloadByID(10*time.Minute, recs[0].ID); err != nil {
		return err
	}
	return nil
}

// ArchTable renders E6.
func ArchTable(rows []ArchRow) *Table {
	t := &Table{
		Title:   "E6: three computing architectures, end-to-end latency",
		Columns: []string{"Workload", "Speed (MPH)", "Onboard (ms)", "Edge (ms)", "Cloud (ms)", "Winner"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, f2(r.SpeedMPH), f2(r.OnboardMS), f2(r.EdgeMS), f2(r.CloudMS), r.Winner,
		})
	}
	return t
}

// DDIRow is one operation's measurement in E8.
type DDIRow struct {
	Operation string
	AvgMS     float64
	HitRate   float64
}

// RunDDIBench loads a DDI with an hour of telemetry and measures the
// two-tier access paths (E8).
func RunDDIBench(dir string, seed int64) ([]DDIRow, error) {
	road, err := geo.NewRoad(20000)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(seed)
	d, err := ddi.New(ddi.Options{Dir: dir, Mobility: geo.Mobility{Road: road, SpeedMS: 15}}, rng.Fork())
	if err != nil {
		return nil, err
	}
	defer d.Close()
	var ids []uint64
	for s := 1; s <= 3600; s += 2 {
		recs, err := d.Collect(time.Duration(s) * time.Second)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			ids = append(ids, r.ID)
		}
	}
	now := time.Hour + time.Minute
	// Hot reads: recent records still inside the 5-minute TTL.
	var hot time.Duration
	hotN := 0
	for _, id := range ids[len(ids)-200:] {
		_, lat, err := d.DownloadByID(now, id)
		if err != nil {
			return nil, err
		}
		hot += lat
		hotN++
	}
	// Cold reads: old records that expired from cache.
	var cold time.Duration
	coldN := 0
	for _, id := range ids[:200] {
		_, lat, err := d.DownloadByID(now, id)
		if err != nil {
			return nil, err
		}
		cold += lat
		coldN++
	}
	// Range query: one 10-minute OBD window.
	_, rangeLat, err := d.Download(now, ddi.Query{Source: ddi.SourceOBD, From: 10 * time.Minute, To: 20 * time.Minute})
	if err != nil {
		return nil, err
	}
	_, _, hitRate := d.Stats()
	ms := func(total time.Duration, n int) float64 {
		if n == 0 {
			return 0
		}
		return float64(total) / float64(n) / float64(time.Millisecond)
	}
	return []DDIRow{
		{Operation: "point-read (cache hit)", AvgMS: ms(hot, hotN), HitRate: hitRate},
		{Operation: "point-read (disk path)", AvgMS: ms(cold, coldN), HitRate: hitRate},
		{Operation: "range-query 10 min OBD", AvgMS: float64(rangeLat) / float64(time.Millisecond), HitRate: hitRate},
	}, nil
}

// DDITable renders E8.
func DDITable(rows []DDIRow) *Table {
	t := &Table{
		Title:   "E8: DDI two-tier store access latency (1 h of telemetry)",
		Columns: []string{"Operation", "Avg latency (ms)", "Cache hit rate"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Operation, fmt.Sprintf("%.4f", r.AvgMS), f3(r.HitRate)})
	}
	return t
}

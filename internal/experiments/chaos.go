package experiments

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/offload"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ChaosConfig parameterizes RunChaosSweep (E14).
type ChaosConfig struct {
	// Replications is how many independent fleet worlds per cell (default 6).
	Replications int
	// Parallel is the worker-pool size (non-positive: GOMAXPROCS).
	Parallel int
	// Seed keys every replication's random substream. All cells share the
	// seed, so a given replication index sees the identical world and fault
	// plan with the policy on and off — the comparison is paired.
	Seed int64
	// Vehicles per fleet (default 6) over RSUs shared edge sites (default 2).
	Vehicles int
	RSUs     int
	// Rounds of fleet-wide invocations per replication at 250 ms spacing
	// (default 8).
	Rounds int
	// SpeedJitterMPH perturbs per-vehicle speeds (default 10).
	SpeedJitterMPH float64
	// Intensities are outage-rate multipliers; each yields a policy-off and
	// a policy-on cell (default 0.5, 1, 2).
	Intensities []float64
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Replications == 0 {
		c.Replications = 6
	}
	if c.Vehicles == 0 {
		c.Vehicles = 6
	}
	if c.RSUs == 0 {
		c.RSUs = 2
	}
	if c.Rounds == 0 {
		c.Rounds = 8
	}
	if c.SpeedJitterMPH == 0 {
		c.SpeedJitterMPH = 10
	}
	if len(c.Intensities) == 0 {
		c.Intensities = []float64{0.5, 1, 2}
	}
	return c
}

// chaosFaults scales the base fault rates by the cell's intensity: higher
// intensity shortens the healthy gaps between outages, degradation windows,
// and transient execution faults.
func chaosFaults(cfg ChaosConfig, intensity float64) *faults.PlanConfig {
	horizon := time.Duration(cfg.Rounds)*250*time.Millisecond + 2*time.Second
	return &faults.PlanConfig{
		Horizon:             horizon,
		MeanTimeToOutage:    time.Duration(float64(2500*time.Millisecond) / intensity),
		MeanOutage:          600 * time.Millisecond,
		MeanTimeToDegrade:   time.Duration(float64(2*time.Second) / intensity),
		MeanDegrade:         800 * time.Millisecond,
		MeanTimeToExecFault: time.Duration(float64(1500*time.Millisecond) / intensity),
		MeanExecFault:       400 * time.Millisecond,
	}
}

// ChaosRow aggregates one cell (intensity x policy) over all replications.
type ChaosRow struct {
	Intensity   float64
	Resilience  bool
	Invocations int
	// DeadlineHits counts completed invocations inside the service deadline;
	// HitRate is their share of all invocations (hang-ups and outright
	// failures count against it).
	DeadlineHits int
	HitRate      float64
	Failures     int
	HangUps      int
	Fallbacks    int
	Degraded     int
	FaultEvents  int
}

// ChaosResult is the deterministic merge of the whole sweep.
type ChaosResult struct {
	Rows    []ChaosRow
	Metrics *telemetry.Registry
	Trace   *trace.Tracer
}

// chaosRep is one replication's contribution to a cell.
type chaosRep struct {
	Invocations  int
	DeadlineHits int
	Failures     int
	HangUps      int
	Fallbacks    int
	Degraded     int
	FaultEvents  int
}

// RunChaosSweep is E14: fleets under injected chaos — site outages, link
// degradation, transient execution faults — with the offload resilience
// policy (circuit breakers + bounded retry + degradation ladder) off vs. on.
// Cells share the seed, so each replication index runs the identical world
// and fault plan under both policies; the hit-rate gap is attributable to
// the policy alone. Output is byte-identical for a given seed at any
// Parallel level.
func RunChaosSweep(cfg ChaosConfig) (*ChaosResult, error) {
	cfg = cfg.withDefaults()
	res := &ChaosResult{Metrics: telemetry.NewRegistry(), Trace: trace.New(nil)}
	for _, intensity := range cfg.Intensities {
		for _, resilient := range []bool{false, true} {
			intensity, resilient := intensity, resilient
			rep, err := runner.Run(runner.Config{
				Replications: cfg.Replications,
				Parallel:     cfg.Parallel,
				Seed:         cfg.Seed,
			}, func(sh *runner.Shard) (chaosRep, error) {
				fcfg := fleet.Config{
					Vehicles:       cfg.Vehicles,
					RSUs:           cfg.RSUs,
					SpeedJitterMPH: cfg.SpeedJitterMPH,
					RNG:            sh.RNG,
					Faults:         chaosFaults(cfg, intensity),
				}
				if resilient {
					pol := offload.DefaultPolicy()
					fcfg.Resilience = &pol
				}
				f, err := fleet.New(fcfg)
				if err != nil {
					return chaosRep{}, err
				}
				f.Instrument(sh.Tracer, sh.Metrics)
				var out chaosRep
				out.FaultEvents = f.Faults().Plan().EventCount()
				for round := 0; round < cfg.Rounds; round++ {
					now := time.Duration(round) * 250 * time.Millisecond
					rr, err := f.InvokeAllTolerant("kidnapper-search", now)
					if err != nil {
						return chaosRep{}, err
					}
					out.Invocations += rr.Invocations
					out.DeadlineHits += rr.DeadlineHits
					out.Failures += rr.Failures
					out.HangUps += rr.HangUps
					out.Fallbacks += rr.Fallbacks
					out.Degraded += rr.Degraded
				}
				return out, nil
			})
			if err != nil {
				return nil, err
			}
			row := ChaosRow{Intensity: intensity, Resilience: resilient}
			for _, r := range rep.Results {
				row.Invocations += r.Invocations
				row.DeadlineHits += r.DeadlineHits
				row.Failures += r.Failures
				row.HangUps += r.HangUps
				row.Fallbacks += r.Fallbacks
				row.Degraded += r.Degraded
				row.FaultEvents += r.FaultEvents
			}
			if row.Invocations > 0 {
				row.HitRate = float64(row.DeadlineHits) / float64(row.Invocations)
			}
			res.Rows = append(res.Rows, row)
			res.Metrics.Merge(rep.Metrics)
			res.Trace.Merge(rep.Trace)
		}
	}
	return res, nil
}

// ChaosTable renders E14: per cell, the deadline hit-rate with the
// resilience policy off vs. on.
func ChaosTable(res *ChaosResult) *Table {
	t := &Table{
		Title: "E14: chaos sweep (deadline hit-rate, resilience policy off vs. on)",
		Columns: []string{"Intensity", "Policy", "Invocations", "Hit-rate",
			"Failures", "Hang-ups", "Fallbacks", "Degraded", "Fault events"},
	}
	for _, r := range res.Rows {
		policy := "off"
		if r.Resilience {
			policy = "on"
		}
		t.Rows = append(t.Rows, []string{
			f2(r.Intensity), policy, fmt.Sprintf("%d", r.Invocations),
			f2(r.HitRate), fmt.Sprintf("%d", r.Failures),
			fmt.Sprintf("%d", r.HangUps), fmt.Sprintf("%d", r.Fallbacks),
			fmt.Sprintf("%d", r.Degraded), fmt.Sprintf("%d", r.FaultEvents),
		})
	}
	return t
}

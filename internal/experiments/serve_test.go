package experiments

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/libvdap"
)

// TestRunServeSmoke runs a small E18 shape end to end: live platform, tick
// loop, real TCP, a handful of clients — and checks the report invariants
// the full benchmark relies on.
func TestRunServeSmoke(t *testing.T) {
	cfg := DefaultServeConfig()
	cfg.Clients = 16
	cfg.Duration = 400 * time.Millisecond
	cfg.TickWall = 5 * time.Millisecond
	cfg.TickStep = 50 * time.Millisecond
	cfg.DataDir = t.TempDir()
	rep, err := RunServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ServeSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Load.Requests == 0 || len(rep.Load.Endpoints) == 0 {
		t.Fatalf("no load recorded: %+v", rep.Load)
	}
	if rep.Ticks == 0 || rep.VirtualEndMS == 0 {
		t.Fatalf("platform never advanced: ticks=%d virtual=%vms", rep.Ticks, rep.VirtualEndMS)
	}
	for _, e := range rep.Load.Endpoints {
		if e.Requests > 0 && e.P50MS == 0 && e.Errors == 0 && e.Rejected == 0 {
			t.Fatalf("endpoint %s recorded requests but no latency samples: %+v", e.Endpoint, e)
		}
	}
	if len(rep.Caches) != 4 {
		t.Fatalf("cache rows = %d, want 4", len(rep.Caches))
	}
	out, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if table := ServeTable(rep); table == "" {
		t.Fatal("empty table")
	}
}

func TestParseMix(t *testing.T) {
	mix, err := libvdap.ParseMix("status=3,stream=1")
	if err != nil || len(mix) != 2 || mix[0].Weight != 3 {
		t.Fatalf("ParseMix = %+v, %v", mix, err)
	}
	if def, err := libvdap.ParseMix(""); err != nil || len(def) == 0 {
		t.Fatalf("default mix = %+v, %v", def, err)
	}
	for _, bad := range []string{"status", "warp=1", "status=0", "status=x"} {
		if _, err := libvdap.ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
}

package experiments

import (
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"a", "bbbb"},
		Rows:    [][]string{{"xxxxx", "y"}},
	}
	out := tbl.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "xxxxx") {
		t.Fatalf("render = %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, separator, row
		t.Fatalf("render lines = %d", len(lines))
	}
}

// TestTable1MatchesPaper: E1 must reproduce Table I nearly exactly (it is
// a calibration anchor).
func TestTable1MatchesPaper(t *testing.T) {
	rows, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.LatencyMS-r.PaperMS) > 0.01 {
			t.Errorf("%s: %.2f ms vs paper %.2f", r.Name, r.LatencyMS, r.PaperMS)
		}
	}
	out := Table1Table(rows).String()
	if !strings.Contains(out, "Lane Detection") {
		t.Fatal("table missing workload")
	}
}

// TestFigure2Shape: E2 must preserve the paper's orderings, not its exact
// numbers — loss grows with speed and resolution, frame loss amplifies
// packet loss.
func TestFigure2Shape(t *testing.T) {
	rows, err := RunFigure2(42, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]Figure2Row{}
	for _, r := range rows {
		byKey[r.Scenario+"/"+r.Profile] = r
		if r.FrameLoss+1e-9 < r.PacketLoss {
			t.Errorf("%s/%s: frame loss %.3f below packet loss %.3f",
				r.Scenario, r.Profile, r.FrameLoss, r.PacketLoss)
		}
	}
	// Packet loss grows with speed for both profiles.
	for _, prof := range []string{"720p", "1080p"} {
		s, m, f := byKey["static/"+prof], byKey["35mph/"+prof], byKey["70mph/"+prof]
		if !(s.PacketLoss <= m.PacketLoss && m.PacketLoss < f.PacketLoss) {
			t.Errorf("%s: packet loss not increasing with speed: %.3f %.3f %.3f",
				prof, s.PacketLoss, m.PacketLoss, f.PacketLoss)
		}
	}
	// 1080p never beats 720p.
	for _, sc := range []string{"static", "35mph", "70mph"} {
		if byKey[sc+"/1080p"].PacketLoss+0.01 < byKey[sc+"/720p"].PacketLoss {
			t.Errorf("%s: 1080p packet loss below 720p", sc)
		}
	}
	// The headline cliff: at 70 MPH packet loss is catastrophic (>0.4)
	// while at 35 MPH it stays under 0.12.
	if byKey["70mph/720p"].PacketLoss < 0.4 {
		t.Errorf("70mph/720p loss = %.3f, want > 0.4", byKey["70mph/720p"].PacketLoss)
	}
	if byKey["35mph/1080p"].PacketLoss > 0.12 {
		t.Errorf("35mph/1080p loss = %.3f, want < 0.12", byKey["35mph/1080p"].PacketLoss)
	}
}

// TestFigure3MatchesPaper: E3 is the other calibration anchor.
func TestFigure3MatchesPaper(t *testing.T) {
	rows, err := RunFigure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.TimeMS-r.PaperTimeMS) > 0.1 {
			t.Errorf("%s: %.1f ms vs paper %.1f", r.Device, r.TimeMS, r.PaperTimeMS)
		}
	}
	// V100 fastest; DSP most frugal per watt but slowest.
	if rows[4].TimeMS >= rows[0].TimeMS {
		t.Error("GPU#3 not faster than DSP")
	}
	if rows[0].MaxPowerW >= rows[4].MaxPowerW {
		t.Error("DSP not more frugal than GPU#3")
	}
	// Perf/W: the DSP's energy per inference must beat the CPU's.
	if rows[0].EnergyPerImg >= rows[3].EnergyPerImg {
		t.Error("DSP J/inference not below CPU")
	}
}

// TestDSFAblation: E4 — smarter policies never lose badly to round-robin,
// and greedy-EFT strictly beats it on at least one workload.
func TestDSFAblation(t *testing.T) {
	rows, err := RunDSFAblation(8)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]map[string]DSFRow{}
	for _, r := range rows {
		if byPolicy[r.Policy] == nil {
			byPolicy[r.Policy] = map[string]DSFRow{}
		}
		byPolicy[r.Policy][r.Workload] = r
	}
	strictWin := false
	for wl := range byPolicy["round-robin"] {
		rr := byPolicy["round-robin"][wl].MakespanMS
		eft := byPolicy["greedy-eft"][wl].MakespanMS
		if eft > rr*1.05 {
			t.Errorf("%s: greedy-eft (%.1f) much worse than round-robin (%.1f)", wl, eft, rr)
		}
		if eft < rr*0.95 {
			strictWin = true
		}
	}
	if !strictWin {
		t.Error("greedy-eft never strictly beat round-robin")
	}
	// Power-aware targets energy; with diverging queue states across the
	// 8 runs a strict per-task guarantee does not compose, but it must
	// stay within 10% of greedy-EFT's energy and win somewhere.
	energyWin := false
	for wl := range byPolicy["power-aware"] {
		pa := byPolicy["power-aware"][wl].EnergyJ
		eft := byPolicy["greedy-eft"][wl].EnergyJ
		if pa > eft*1.10 {
			t.Errorf("%s: power-aware energy %.1f J far above greedy-eft %.1f J", wl, pa, eft)
		}
		if pa < eft*0.98 {
			energyWin = true
		}
	}
	if !energyWin {
		t.Error("power-aware never saved energy over greedy-eft")
	}
}

// TestElastic: E5 — with an idle edge and parked vehicle, offloading is
// chosen and the SLA holds; the busy-edge 70 MPH corner is the hardest.
func TestElastic(t *testing.T) {
	rows, err := RunElastic()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	find := func(mph float64, busy bool) ElasticRow {
		for _, r := range rows {
			if r.SpeedMPH == mph && r.EdgeBusy == busy {
				return r
			}
		}
		t.Fatalf("row %v/%v missing", mph, busy)
		return ElasticRow{}
	}
	idle0 := find(0, false)
	if !idle0.MeetsSLA {
		t.Error("parked + idle edge misses SLA")
	}
	if idle0.Dest == "onboard" {
		t.Error("parked + idle edge stayed fully onboard for ALPR")
	}
	busy70 := find(70, true)
	if busy70.MeetsSLA && busy70.LatencyMS < idle0.LatencyMS {
		t.Error("hardest corner beat easiest corner")
	}
}

// TestArchComparison: E6 — tiny tasks stay on board, the heavy DNN
// detector wins by offloading, and the cloud never beats the edge for the
// heavy task at speed (extra WAN hop + degraded LTE).
func TestArchComparison(t *testing.T) {
	rows, err := RunArchComparison()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.Workload {
		case "lane-detection":
			if r.Winner != "onboard" {
				t.Errorf("lane detection at %.0f MPH won by %s", r.SpeedMPH, r.Winner)
			}
		case "vehicle-detect-dnn":
			if r.SpeedMPH == 0 && r.Winner == "onboard" {
				t.Error("parked heavy DNN stayed onboard")
			}
			if r.EdgeMS > r.CloudMS {
				t.Errorf("heavy DNN at %.0f MPH: edge (%.0f ms) worse than cloud (%.0f ms)",
					r.SpeedMPH, r.EdgeMS, r.CloudMS)
			}
		}
	}
}

// TestCompressionSweep: E7 — ratio grows monotonically along the sweep
// while accuracy degrades gracefully until the brutal end.
func TestCompressionSweep(t *testing.T) {
	rows, err := RunCompressionSweep(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Ratio < rows[i-1].Ratio {
			t.Errorf("ratio not monotone at step %d: %.2f -> %.2f", i, rows[i-1].Ratio, rows[i].Ratio)
		}
	}
	if rows[0].AccAfter < rows[0].AccBefore-0.05 {
		t.Errorf("gentle compression lost too much: %.3f -> %.3f", rows[0].AccBefore, rows[0].AccAfter)
	}
	last := rows[len(rows)-1]
	if last.Ratio < 8 {
		t.Errorf("max compression ratio = %.1f, want >= 8", last.Ratio)
	}
}

// TestPBEAMPipeline: E7b — personalization helps every driver.
func TestPBEAMPipeline(t *testing.T) {
	rows, err := RunPBEAMPipeline(11, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PBEAMAcc <= r.CompressedAcc {
			t.Errorf("%s: pBEAM %.3f did not beat compressed %.3f", r.Driver, r.PBEAMAcc, r.CompressedAcc)
		}
		if r.Ratio < 2 {
			t.Errorf("%s: compression ratio %.2f < 2", r.Driver, r.Ratio)
		}
	}
}

// TestDDIBench: E8 — cache path beats disk path.
func TestDDIBench(t *testing.T) {
	rows, err := RunDDIBench(t.TempDir(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].AvgMS >= rows[1].AvgMS {
		t.Errorf("cache hit (%.4f ms) not faster than disk (%.4f ms)", rows[0].AvgMS, rows[1].AvgMS)
	}
}

// TestDDIStore: E20 — the columnar store sweep at a small corpus. Narrow
// windows must prune most segments, the naive reference must lose to the
// planned scan, and compaction must leave every digest cell intact (the
// runner itself fails loudly if a count or checksum shifts).
func TestDDIStore(t *testing.T) {
	res, err := RunDDIStore(DDIStoreConfig{Records: 300_000, Seed: 5, Parallel: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentsBefore < 2 {
		t.Fatalf("corpus sealed into %d segment(s); want several", res.SegmentsBefore)
	}
	if res.SegmentsAfter >= res.SegmentsBefore {
		t.Errorf("compaction did not shrink the segment set: %d -> %d", res.SegmentsBefore, res.SegmentsAfter)
	}
	if res.NarrowSkipRatio < 0.5 {
		t.Errorf("narrow-window skip ratio %.3f too low for a multi-segment corpus", res.NarrowSkipRatio)
	}
	if res.NaiveNsPerOp <= res.ScanNsPerOp {
		t.Errorf("planned scan (%.0f ns) not faster than naive reference (%.0f ns)", res.ScanNsPerOp, res.NaiveNsPerOp)
	}
	rows := DDIStorePerfRows(res)
	if len(rows) != 4 {
		t.Fatalf("perf rows = %d", len(rows))
	}
	for _, s := range []string{DDIStoreTable(res), DDIStoreTimingTable(res)} {
		if len(s) == 0 {
			t.Fatal("empty E20 table render")
		}
	}
}

// TestMergePerfRows: the shared BENCH_PERF upsert — replace by name,
// append new names, leave everything else untouched.
func TestMergePerfRows(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	if err := MergePerfRows(path, []PerfRow{{Name: "a", NsPerOp: 1}, {Name: "b", NsPerOp: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := MergePerfRows(path, []PerfRow{{Name: "b", NsPerOp: 20}, {Name: "c", Ratio: 0.9}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rep.Rows))
	}
	if rep.Rows[0].Name != "a" || rep.Rows[1].Name != "b" || rep.Rows[2].Name != "c" {
		t.Fatalf("row order %v", []string{rep.Rows[0].Name, rep.Rows[1].Name, rep.Rows[2].Name})
	}
	if rep.Rows[1].NsPerOp != 20 {
		t.Errorf("row b not replaced: ns/op = %v", rep.Rows[1].NsPerOp)
	}
	if rep.Rows[2].Ratio != 0.9 {
		t.Errorf("ratio field lost: %v", rep.Rows[2].Ratio)
	}
}

func TestAllTablesRender(t *testing.T) {
	t1, _ := RunTable1()
	f3rows, _ := RunFigure3()
	for _, s := range []string{
		Table1Table(t1).String(),
		Figure3Table(f3rows).String(),
	} {
		if len(s) == 0 {
			t.Fatal("empty table render")
		}
	}
}

// TestCollaboration: E9 — sharing never computes more than the baseline,
// and an 8-vehicle convoy saves at least 2x compute.
func TestCollaboration(t *testing.T) {
	rows, err := RunCollaboration()
	if err != nil {
		t.Fatal(err)
	}
	baseline := map[int]CollabRow{}
	shared := map[int]CollabRow{}
	for _, r := range rows {
		if r.Collaborative {
			shared[r.Convoy] = r
		} else {
			baseline[r.Convoy] = r
		}
	}
	for n, b := range baseline {
		s := shared[n]
		if s.Computations > b.Computations {
			t.Errorf("convoy %d: sharing computed more (%d) than baseline (%d)", n, s.Computations, b.Computations)
		}
		if s.TotalCostMS > b.TotalCostMS {
			t.Errorf("convoy %d: sharing cost more (%v) than baseline (%v)", n, s.TotalCostMS, b.TotalCostMS)
		}
	}
	if shared[1].SavingsX > 1.01 {
		t.Errorf("lone vehicle saved %vx; there is nobody to share with", shared[1].SavingsX)
	}
	if shared[8].SavingsX < 2 {
		t.Errorf("8-vehicle convoy savings = %.2fx, want >= 2x", shared[8].SavingsX)
	}
	if shared[8].Borrows == 0 {
		t.Error("no borrows in an 8-vehicle convoy")
	}
}

// TestCompressionRetrain: E7c — retraining recovers accuracy at every
// aggressive pruning level, dramatically at 90%+.
func TestCompressionRetrain(t *testing.T) {
	rows, err := RunCompressionRetrain(13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AccRetrained < r.AccPlain-0.02 {
			t.Errorf("prune %.2f: retrained %.3f below plain %.3f", r.PruneFraction, r.AccRetrained, r.AccPlain)
		}
	}
	// At 90% pruning retraining must restore near-full accuracy; at 95%
	// the absolute level is seed-sensitive, so only the 90% row carries
	// hard bounds.
	for _, r := range rows {
		if r.PruneFraction == 0.9 {
			if r.AccRetrained < 0.85 {
				t.Errorf("retrained accuracy at 90%% pruning = %.3f, want >= 0.85", r.AccRetrained)
			}
			if r.AccRetrained < r.AccPlain+0.10 {
				t.Errorf("at 90%% pruning retraining gained only %.3f -> %.3f",
					r.AccPlain, r.AccRetrained)
			}
		}
	}
}

// TestHDMapPrefetch: E10 — blocking misses vanish once the horizon covers
// the fetch latency at speed, and faster vehicles need longer horizons.
func TestHDMapPrefetch(t *testing.T) {
	rows, err := RunHDMapPrefetch()
	if err != nil {
		t.Fatal(err)
	}
	find := func(mph, horizon float64) HDMapRow {
		for _, r := range rows {
			if r.SpeedMPH == mph && r.HorizonSec == horizon {
				return r
			}
		}
		t.Fatalf("row %v/%v missing", mph, horizon)
		return HDMapRow{}
	}
	for _, mph := range []float64{35, 70} {
		noPrefetch := find(mph, 0)
		long := find(mph, 60)
		if noPrefetch.MissRate == 0 {
			t.Errorf("%v MPH: no misses without prefetch", mph)
		}
		if long.MissRate != 0 {
			t.Errorf("%v MPH: 60 s horizon still missed %.3f", mph, long.MissRate)
		}
		if long.BlockedMS > 0 {
			t.Errorf("%v MPH: blocking time with 60 s horizon", mph)
		}
		// Miss rate must be non-increasing in horizon.
		prev := noPrefetch.MissRate
		for _, h := range []float64{5, 15, 60} {
			cur := find(mph, h).MissRate
			if cur > prev+1e-9 {
				t.Errorf("%v MPH: miss rate rose with horizon %v", mph, h)
			}
			prev = cur
		}
	}
	// Faster vehicle misses more at equal short horizon (or equal zero).
	if find(70, 0).MissRate < find(35, 0).MissRate {
		t.Error("70 MPH missed less than 35 MPH without prefetch")
	}
}

// TestCommute: E11 — the choice adapts along the trip and the service
// always finds some destination (the 2 s deadline is generous).
func TestCommute(t *testing.T) {
	rows, err := RunCommute()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	destsSeen := map[string]bool{}
	for _, r := range rows {
		if r.Checks == 0 {
			t.Fatalf("leg %s had no checks", r.Leg)
		}
		if r.DestUse["hung-up"] > 0 {
			t.Errorf("leg %s hung up %d times", r.Leg, r.DestUse["hung-up"])
		}
		for d := range r.DestUse {
			destsSeen[d] = true
		}
	}
	// With sparse RSUs the commute must use more than one destination
	// class overall (onboard or RSU or base-station-free cloud mix).
	if len(destsSeen) < 2 {
		t.Errorf("only destinations %v used across the whole commute", destsSeen)
	}
}

// TestFleetContention: E12 — no hang-ups at any scale (onboard fallback),
// bounded mean latency, and offload share non-increasing with fleet size.
func TestFleetContention(t *testing.T) {
	rows, err := RunFleetContention()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.HangUps > 0 {
			t.Errorf("%d vehicles: %d hang-ups", r.Vehicles, r.HangUps)
		}
		if r.MeanMS > 150 {
			t.Errorf("%d vehicles: mean %.1f ms despite fallback", r.Vehicles, r.MeanMS)
		}
		if i > 0 && r.OffloadShare > rows[i-1].OffloadShare+0.05 {
			t.Errorf("offload share grew with fleet size: %.2f -> %.2f",
				rows[i-1].OffloadShare, r.OffloadShare)
		}
	}
}

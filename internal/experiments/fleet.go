package experiments

import (
	"fmt"
	"time"

	"repro/internal/fleet"
)

// FleetRow is one fleet size's measurement in E12.
type FleetRow struct {
	Vehicles     int
	MeanMS       float64
	MaxMS        float64
	OffloadShare float64
	HangUps      int
}

// RunFleetContention grows a fleet over one shared RSU and measures
// per-vehicle service latency and offload share (E12): elastic management
// must route around the saturating edge instead of queueing on it.
func RunFleetContention() ([]FleetRow, error) {
	var rows []FleetRow
	for _, n := range []int{1, 2, 4, 8, 16} {
		f, err := fleet.New(fleet.Config{Vehicles: n, RSUs: 1})
		if err != nil {
			return nil, err
		}
		// Warm the system with a few rounds, then measure the steady
		// round (all rounds at t=0: maximal simultaneous contention).
		var last fleet.RoundResult
		for round := 0; round < 5; round++ {
			last, err = f.InvokeAll("kidnapper-search", 0)
			if err != nil {
				return nil, err
			}
		}
		rows = append(rows, FleetRow{
			Vehicles:     n,
			MeanMS:       float64(last.Mean()) / float64(time.Millisecond),
			MaxMS:        float64(last.Max) / float64(time.Millisecond),
			OffloadShare: last.OffloadShare,
			HangUps:      last.HangUps,
		})
	}
	return rows, nil
}

// FleetTable renders E12.
func FleetTable(rows []FleetRow) *Table {
	t := &Table{
		Title:   "E12: fleet contention on one shared RSU (steady round)",
		Columns: []string{"Vehicles", "Mean (ms)", "Max (ms)", "Offload share", "Hang-ups"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Vehicles), f2(r.MeanMS), f2(r.MaxMS),
			f2(r.OffloadShare), fmt.Sprintf("%d", r.HangUps),
		})
	}
	return t
}

package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/ddi"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/offload"
	"repro/internal/sim"
	"repro/internal/tasks"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vcu"
	"repro/internal/xedge"
)

// PerfSchema versions the BENCH_PERF.json layout. Bump on any field
// change so trajectory tooling can refuse mixed files.
const PerfSchema = "openvdap.bench_perf/v1"

// PerfBaseline is the pre-optimization measurement of a scenario,
// recorded once at the commit before the hot-path overhaul (E15) on the
// reference runner. Keeping it inline gives every BENCH_PERF.json point
// a fixed "before" to compare against.
type PerfBaseline struct {
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
}

// PerfRow is one scenario's live measurement next to its baseline.
type PerfRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	// EventsPerSec is derived throughput (kernel scenarios only).
	EventsPerSec float64      `json:"eventsPerSec,omitempty"`
	Baseline     PerfBaseline `json:"baseline"`
	// Speedup is baseline ns/op over live ns/op (>1 means faster now).
	Speedup float64 `json:"speedup"`
	// Ratio carries a dimensionless datum for rows that measure a
	// fraction rather than a latency (e.g. ddi.segment_skip_ratio).
	Ratio float64 `json:"ratio,omitempty"`
}

// PerfReport is the schema-versioned payload written to BENCH_PERF.json —
// one point in the repo's performance trajectory.
type PerfReport struct {
	Schema    string    `json:"schema"`
	GoVersion string    `json:"goVersion"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	Rows      []PerfRow `json:"results"`
}

// perfScenario pairs a benchmark body with its recorded baseline.
type perfScenario struct {
	name     string
	baseline PerfBaseline
	// baselineFrom, when set, replaces the static baseline with the live
	// measurement of the named earlier scenario — a paired comparison
	// measured in the same run (e.g. the sampled event loop against the
	// unsampled one).
	baselineFrom string
	// events scales ops to kernel events for the derived throughput
	// column (0 = not a kernel scenario).
	events float64
	run    func(b *testing.B)
}

// RunPerf measures the tracked hot-path scenarios (E15) with
// testing.Benchmark and pairs each with its pre-optimization baseline.
// Scenario bodies mirror the package benchmarks of the same name so `go
// test -bench` and `vdapbench -exp perf` agree.
func RunPerf() (*PerfReport, error) {
	scenarios := []perfScenario{
		{
			// Mirrors sim.BenchmarkEngineEventLoop: scattered schedules
			// drained in batches — the DES kernel's steady state.
			name:     "sim.engine_event_loop",
			baseline: PerfBaseline{NsPerOp: 274.1, BytesPerOp: 32, AllocsPerOp: 1},
			events:   1,
			run: func(b *testing.B) {
				e := sim.NewEngine(1)
				fn := func() {}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.After(time.Duration((i*2654435761)%4096)*time.Microsecond, fn)
					if i%256 == 255 {
						if err := e.Drain(); err != nil {
							b.Fatal(err)
						}
					}
				}
			},
		},
		{
			// Mirrors sim.BenchmarkEngineTimerChurn: timeout guards that
			// almost never fire.
			name:     "sim.timer_churn",
			baseline: PerfBaseline{NsPerOp: 75.1, BytesPerOp: 32, AllocsPerOp: 1},
			events:   1,
			run: func(b *testing.B) {
				e := sim.NewEngine(1)
				fn := func() {}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					h := e.After(time.Duration(i%128)*time.Millisecond, fn)
					e.Cancel(h)
				}
			},
		},
		{
			// Hot counter emission. Baseline is the pre-handle style
			// (Registry.Add by name); live is the interned handle.
			name:     "telemetry.counter_hot",
			baseline: PerfBaseline{NsPerOp: 31.1},
			run: func(b *testing.B) {
				reg := telemetry.NewRegistry()
				c := reg.CounterHandle("offload.executions")
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Inc()
				}
			},
		},
		{
			// Hot histogram emission: Registry.Observe before, handle now.
			name:     "telemetry.histogram_hot",
			baseline: PerfBaseline{NsPerOp: 35.5},
			run: func(b *testing.B) {
				reg := telemetry.NewRegistry()
				reg.EnableReservoir(512, 1)
				h := reg.HistogramHandle("offload.total_ms")
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					h.Observe(float64(i % 512))
				}
			},
		},
		{
			// An instrumented call site with tracing off. Baseline built
			// the attributes unconditionally; live guards on Enabled().
			name:     "trace.disabled_span",
			baseline: PerfBaseline{NsPerOp: 478.7, BytesPerOp: 112, AllocsPerOp: 3},
			run: func(b *testing.B) {
				var tr *trace.Tracer
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if tr.Enabled() {
						s := tr.StartSpanAt("offload", "offload.estimate", 0,
							trace.String("dag", "alpr"), trace.Int("split", i%4))
						s.FinishAt(time.Duration(i))
					}
				}
			},
		},
		{
			// Mirrors trace.BenchmarkSpanAtLeaf: enabled leaf spans with
			// the Reset free-pool engaged.
			name:     "trace.span_leaf",
			baseline: PerfBaseline{NsPerOp: 218.3, BytesPerOp: 170, AllocsPerOp: 1},
			run: func(b *testing.B) {
				tr := trace.New(nil)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i%65536 == 0 {
						tr.Reset()
					}
					tr.SpanAt("network", "network.uplink", time.Duration(i), time.Duration(i+1))
				}
			},
		},
		{
			// Mirrors ddi.BenchmarkStoreSelectWindow: a 601-record window
			// query over a 10k-record store. Baseline is the full O(n)
			// index scan; live binary-searches the window bounds.
			name:     "ddi.store_select",
			baseline: PerfBaseline{NsPerOp: 288809, BytesPerOp: 92288, AllocsPerOp: 10},
			run: func(b *testing.B) {
				// os.MkdirTemp, not b.TempDir: testing.Benchmark runs the
				// body outside the test framework's cleanup machinery.
				dir, err := os.MkdirTemp("", "ddi-perf-*")
				if err != nil {
					b.Fatal(err)
				}
				defer os.RemoveAll(dir)
				s, err := ddi.OpenDiskStore(dir)
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				for i := 0; i < 10000; i++ {
					rec := ddi.Record{Source: ddi.SourceOBD, At: time.Duration(i) * time.Second, Payload: []byte(`{"v":1}`)}
					if _, err := s.Put(rec); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					got := s.Select(ddi.Query{Source: ddi.SourceOBD, From: 1000 * time.Second, To: 1600 * time.Second})
					if len(got) != 601 {
						b.Fatalf("got %d", len(got))
					}
				}
			},
		},
		{
			// One sampler tick over 64 counters + 8 reservoir histograms.
			// Baseline is the naive approach — a full Registry.Snapshot per
			// tick fed through RecordGauge; live is the interned-handle
			// staged sampler (zero allocations in steady state).
			name:     "telemetry.sample_tick",
			baseline: PerfBaseline{NsPerOp: 9212, BytesPerOp: 6588, AllocsPerOp: 15},
			run: func(b *testing.B) {
				reg := telemetry.NewRegistry()
				reg.EnableReservoir(64, 1)
				for i := 0; i < 64; i++ {
					reg.CounterHandle(fmt.Sprintf("counter.%02d", i)).Add(float64(i))
				}
				for i := 0; i < 8; i++ {
					h := reg.HistogramHandle(fmt.Sprintf("hist.%d", i))
					for j := 0; j < 32; j++ {
						h.Observe(float64(j))
					}
				}
				store := obs.NewSeriesStore(1024)
				sp := obs.NewSampler(store, time.Millisecond)
				sp.Watch(reg)
				sp.SampleAt(0)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sp.SampleAt(time.Duration(i+1) * time.Millisecond)
				}
			},
		},
		{
			// The DES event loop with metric emission but no sampler — the
			// "off" half of the sampler-overhead pair. RunUntil batches (not
			// Drain) so the sampled variant's periodic ticks are legal.
			name:     "sim.event_loop_unsampled",
			baseline: PerfBaseline{NsPerOp: 82.4},
			events:   1,
			run:      func(b *testing.B) { eventLoopScenario(b, false) },
		},
		{
			// The same loop with a sampler ticking at the default 100 ms
			// virtual interval — the "on" half. Its baseline is the live
			// unsampled measurement from this run, so the speedup column
			// reads directly as sampling overhead (0.98x = 2%).
			name:         "sim.event_loop_sampled",
			baselineFrom: "sim.event_loop_unsampled",
			events:       1,
			run:          func(b *testing.B) { eventLoopScenario(b, true) },
		},
		{
			// Mirrors offload.BenchmarkDecide: a full destination
			// comparison over onboard + RSU + cloud for the ALPR DAG.
			name:     "offload.decide",
			baseline: PerfBaseline{NsPerOp: 18996, BytesPerOp: 5608, AllocsPerOp: 128},
			run: func(b *testing.B) {
				eng, err := perfWorld()
				if err != nil {
					b.Fatal(err)
				}
				dag := tasks.ALPR()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := eng.Decide(dag, 0); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	}

	rep := &PerfReport{
		Schema:    PerfSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	live := make(map[string]PerfBaseline)
	for _, sc := range scenarios {
		res := testing.Benchmark(sc.run)
		if res.N == 0 {
			return nil, fmt.Errorf("perf: scenario %s did not run", sc.name)
		}
		if sc.baselineFrom != "" {
			base, ok := live[sc.baselineFrom]
			if !ok {
				return nil, fmt.Errorf("perf: scenario %s pairs with %s, which has not run", sc.name, sc.baselineFrom)
			}
			sc.baseline = base
		}
		row := PerfRow{
			Name:        sc.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			Baseline:    sc.baseline,
		}
		live[sc.name] = PerfBaseline{NsPerOp: row.NsPerOp, BytesPerOp: row.BytesPerOp, AllocsPerOp: row.AllocsPerOp}
		if row.NsPerOp > 0 {
			if sc.events > 0 {
				row.EventsPerSec = sc.events * 1e9 / row.NsPerOp
			}
			row.Speedup = sc.baseline.NsPerOp / row.NsPerOp
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// eventLoopScenario is the shared body of the sampler-overhead pair: a
// scattered-schedule event loop emitting one counter per event, advanced in
// RunUntil batches, with the series sampler on or off.
func eventLoopScenario(b *testing.B, sampled bool) {
	e := sim.NewEngine(1)
	reg := telemetry.NewRegistry()
	c := reg.CounterHandle("loop.events")
	if sampled {
		store := obs.NewSeriesStore(1024)
		sp := obs.NewSampler(store, obs.DefaultSampleInterval)
		sp.Watch(reg)
		if _, err := sp.Start(e); err != nil {
			b.Fatal(err)
		}
	}
	fn := func() { c.Inc() }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration((i*2654435761)%4096)*time.Microsecond, fn)
		if i%256 == 255 {
			if err := e.RunUntil(e.Now() + 4096*time.Microsecond); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// perfWorld builds the Decide scenario's world: default VCU, one in-range
// RSU, and the cloud — the same shape as the offload package benchmark.
func perfWorld() (*offload.Engine, error) {
	m, err := vcu.DefaultVCU()
	if err != nil {
		return nil, err
	}
	dsf, err := vcu.NewDSF(m, vcu.GreedyEFT{})
	if err != nil {
		return nil, err
	}
	road, err := geo.NewRoad(10000)
	if err != nil {
		return nil, err
	}
	rsu, err := xedge.NewRSU(geo.Station{ID: "rsu-0", Kind: geo.RSU, Pos: geo.Point{X: 100}, Radius: 50000})
	if err != nil {
		return nil, err
	}
	cl, err := xedge.NewCloud()
	if err != nil {
		return nil, err
	}
	return offload.NewEngine(dsf, geo.Mobility{Road: road}, []*xedge.Site{rsu, cl})
}

// Marshal renders the report as indented JSON ready for BENCH_PERF.json.
func (r *PerfReport) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// MergePerfRows folds rows into the BENCH_PERF.json at path (E15
// schema) by upserting on exact row name: an existing row with the same
// name is replaced in place, new names append, every other row is
// preserved untouched. A missing file yields a fresh report holding only
// the given rows. Upserting (rather than dropping prefixed rows
// wholesale) keeps rows from sweeps with other parameter grids intact.
func MergePerfRows(path string, rows []PerfRow) error {
	rep := &PerfReport{
		Schema:    PerfSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, rep); err != nil {
			return fmt.Errorf("perf: parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	index := make(map[string]int, len(rep.Rows))
	for i, r := range rep.Rows {
		index[r.Name] = i
	}
	for _, row := range rows {
		if i, ok := index[row.Name]; ok {
			rep.Rows[i] = row
		} else {
			index[row.Name] = len(rep.Rows)
			rep.Rows = append(rep.Rows, row)
		}
	}
	out, err := rep.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// PerfTable renders the E15 report with before/after columns.
func PerfTable(r *PerfReport) string {
	t := &Table{
		Title:   "E15: hot-path benchmarks (before -> after)",
		Columns: []string{"scenario", "ns/op", "was ns/op", "speedup", "allocs/op", "was allocs", "B/op", "events/s"},
	}
	for _, row := range r.Rows {
		events := "-"
		if row.EventsPerSec > 0 {
			events = fmt.Sprintf("%.2fM", row.EventsPerSec/1e6)
		}
		t.Rows = append(t.Rows, []string{
			row.Name,
			f2(row.NsPerOp),
			f2(row.Baseline.NsPerOp),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%d", row.AllocsPerOp),
			fmt.Sprintf("%d", row.Baseline.AllocsPerOp),
			fmt.Sprintf("%d", row.BytesPerOp),
			events,
		})
	}
	return t.String()
}

package experiments

import (
	"fmt"
	"testing"
)

// TestFleetSweepDeterministicAcrossParallel: the acceptance criterion for
// E13 — same seed, any parallel level, byte-identical rendered table,
// merged telemetry, and merged trace.
func TestFleetSweepDeterministicAcrossParallel(t *testing.T) {
	at := func(parallel int) (string, string, string) {
		res, err := RunFleetSweep(SweepConfig{Replications: 8, Parallel: parallel, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return FleetSweepTable(res).String(), res.Metrics.Render(), res.Trace.RenderTree()
	}
	table1, metrics1, trace1 := at(1)
	for _, parallel := range []int{2, 8} {
		tableN, metricsN, traceN := at(parallel)
		if tableN != table1 {
			t.Fatalf("parallel %d table differs:\n%s\nvs\n%s", parallel, table1, tableN)
		}
		if metricsN != metrics1 {
			t.Fatalf("parallel %d merged telemetry differs", parallel)
		}
		if traceN != trace1 {
			t.Fatalf("parallel %d merged trace differs", parallel)
		}
	}
}

// TestFleetSweepShardsDiffer: replications must not be clones — the
// per-replication RNG streams give each fleet a different traffic mix.
func TestFleetSweepShardsDiffer(t *testing.T) {
	res, err := RunFleetSweep(SweepConfig{Replications: 4, Parallel: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	distinct := map[float64]bool{}
	for i, r := range res.Rows {
		if r.Replication != i {
			t.Fatalf("row %d has replication %d (ordering broken)", i, r.Replication)
		}
		distinct[r.MeanMS] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all %d replications produced the same mean latency; shards are not independent", len(res.Rows))
	}
	// The merged registry aggregates every shard's executions.
	if got := res.Metrics.Counter("offload.executions"); got != 4*8*5 {
		t.Fatalf("merged offload.executions = %v, want 160 (4 reps x 8 vehicles x 5 rounds)", got)
	}
	if res.Trace.SpanCount() == 0 {
		t.Fatal("merged trace is empty")
	}
}

// BenchmarkFleetSweepParallel measures the end-to-end sweep at increasing
// worker counts (the vdapbench -parallel levels). Multi-core machines
// should see ≥2x wall-clock speedup at parallel=4 versus parallel=1.
func BenchmarkFleetSweepParallel(b *testing.B) {
	for _, parallel := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", parallel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunFleetSweep(SweepConfig{
					Replications: 8, Parallel: parallel, Seed: 42,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

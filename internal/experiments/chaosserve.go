package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/libvdap"
)

// ChaosServeSchema versions the BENCH_CHAOS.json layout. Bump on any
// field change so trajectory tooling can refuse mixed files.
const ChaosServeSchema = "openvdap.bench_chaos/v1"

// ChaosServeConfig parameterizes E19: the E18 serving stack with a seeded
// chaos proxy wedged between the clients and the server, run twice on the
// SAME compiled fault plan — once with raw single-attempt clients, once
// with the full client resilience policy.
type ChaosServeConfig struct {
	// Clients is the number of concurrent load clients per mode.
	Clients int
	// Duration is the wall-clock length of each mode's load phase.
	Duration time.Duration
	// Mix weights the endpoints; nil means libvdap.DefaultMix.
	Mix []libvdap.MixEntry
	// Seed keys the platform, the chaos plan, and every client stream.
	Seed int64
	// TickWall / TickStep drive the simulation tick loop (E18 semantics).
	TickWall time.Duration
	TickStep time.Duration
	// DataDir holds the DDI disk tier (temp dir when empty).
	DataDir string
	// Chaos is the network fault recipe; zero means DefaultChaosServePlan.
	Chaos faults.NetChaosConfig
	// Retry is the resilience policy for the "on" mode; nil means
	// DefaultChaosRetryPolicy.
	Retry *libvdap.RetryPolicy
	// Parallel is the plan-compilation worker count (the compiled plan is
	// byte-identical at any value — `make determinism` diffs it).
	Parallel int
	// StreamFrames is how many /v1/stream frames the side consumer reads
	// in the resilient mode to exercise auto-reconnect (0 disables).
	StreamFrames int
}

// DefaultChaosServeConfig is the E19 shape: 200 clients for 4 wall
// seconds per mode behind an aggressive chaos plan — nearly every
// connection carries a byte budget, so the no-resilience baseline visibly
// fails while the resilient mode retries its way to ~100% success.
func DefaultChaosServeConfig() ChaosServeConfig {
	return ChaosServeConfig{
		Clients:      200,
		Duration:     4 * time.Second,
		Seed:         1,
		TickWall:     50 * time.Millisecond,
		TickStep:     100 * time.Millisecond,
		Parallel:     1,
		StreamFrames: 20,
	}
}

// DefaultChaosServePlan is the E19 fault recipe: byte budgets on ~90% of
// connections (45% RST + 45% clean truncation, small budgets so every
// connection dies within a handful of responses), latency on a fifth,
// and occasional accept stalls.
func DefaultChaosServePlan(seed int64) faults.NetChaosConfig {
	cfg := faults.DefaultNetChaos(seed, 4096)
	cfg.ResetMinBytes = 1 << 9
	cfg.ResetMaxBytes = 8 << 10
	cfg.TruncateMinBytes = 1 << 9
	cfg.TruncateMaxBytes = 6 << 10
	return cfg
}

// DefaultChaosRetryPolicy is the E19 "resilience on" client shape.
func DefaultChaosRetryPolicy() *libvdap.RetryPolicy {
	return &libvdap.RetryPolicy{
		MaxAttempts:       8,
		BaseBackoff:       5 * time.Millisecond,
		MaxBackoff:        250 * time.Millisecond,
		PerRequestTimeout: 2 * time.Second,
		HedgeDelay:        250 * time.Millisecond,
		BreakerThreshold:  20,
		BreakerCooldown:   200 * time.Millisecond,
	}
}

// ChaosPlanInfo summarizes the compiled fault plan both modes ran under.
type ChaosPlanInfo struct {
	Digest    string `json:"digest"`
	Conns     int    `json:"conns"`
	Latency   int    `json:"latencyFaults"`
	Resets    int    `json:"resetFaults"`
	Truncates int    `json:"truncateFaults"`
	Stalls    int    `json:"stallFaults"`
}

// ChaosStreamResult is the resilient-mode stream consumer's outcome.
type ChaosStreamResult struct {
	FramesWanted int   `json:"framesWanted"`
	FramesGot    int   `json:"framesGot"`
	Reconnects   int64 `json:"reconnects"`
	Completed    bool  `json:"completed"`
}

// ChaosModeResult is one half of the paired run.
type ChaosModeResult struct {
	Mode        string                 `json:"mode"` // "resilience-off" | "resilience-on"
	PlanDigest  string                 `json:"planDigest"`
	SuccessRate float64                `json:"successRate"`
	Load        libvdap.LoadResult     `json:"load"`
	Proxy       faults.ChaosProxyStats `json:"proxy"`
	Server      libvdap.ServerStats    `json:"server"`
	Ticks       int64                  `json:"ticks"`
	Stream      *ChaosStreamResult     `json:"stream,omitempty"`
}

// ChaosServeReport is the schema-versioned BENCH_CHAOS.json payload.
type ChaosServeReport struct {
	Schema    string  `json:"schema"`
	GoVersion string  `json:"goVersion"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Seed      int64   `json:"seed"`
	Clients   int     `json:"clients"`
	WallMS    float64 `json:"wallMsPerMode"`

	Plan      ChaosPlanInfo   `json:"plan"`
	Baseline  ChaosModeResult `json:"baseline"`
	Resilient ChaosModeResult `json:"resilient"`
}

// CompileChaosPlan compiles the run's network fault plan; exposed so
// `make determinism` can diff the canonical plan text across -parallel
// levels without running any traffic.
func CompileChaosPlan(cfg ChaosServeConfig) (*faults.NetPlan, error) {
	chaos := cfg.Chaos
	if chaos.Conns == 0 {
		chaos = DefaultChaosServePlan(cfg.Seed)
		chaos.Seed = cfg.Seed
	}
	parallel := cfg.Parallel
	if parallel <= 0 {
		parallel = 1
	}
	return faults.CompileNetPlan(chaos, parallel)
}

// runChaosMode runs one half of the pair: fresh platform, fresh proxy on
// a freshly compiled (byte-identical) plan, one load phase.
func runChaosMode(cfg ChaosServeConfig, retry *libvdap.RetryPolicy, mode string) (ChaosModeResult, error) {
	var res ChaosModeResult
	res.Mode = mode

	dataDir := cfg.DataDir
	if dataDir == "" {
		tmp, err := os.MkdirTemp("", "vdap-chaos-*")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	}

	ticksExpected := int64(cfg.Duration/cfg.TickWall) + 1
	horizon := time.Duration(2*ticksExpected) * cfg.TickStep

	pcfg := core.DefaultConfig(dataDir)
	pcfg.Seed = cfg.Seed
	pcfg.Faults = serveFaults(horizon)
	p, err := core.New(pcfg)
	if err != nil {
		return res, err
	}
	defer p.Close()
	if err := p.StartCollection(time.Second); err != nil {
		return res, err
	}
	if err := p.StartSampling(0); err != nil {
		return res, err
	}

	ts := httptest.NewServer(p.API())
	defer ts.Close()

	plan, err := CompileChaosPlan(cfg)
	if err != nil {
		return res, err
	}
	res.PlanDigest = plan.Digest()
	proxy, err := faults.NewChaosProxy(ts.Listener.Addr().String(), plan)
	if err != nil {
		return res, err
	}
	defer proxy.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ticks int64
	var tickErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(cfg.TickWall)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if err := p.AdvanceTo(p.Engine().Now() + cfg.TickStep); err != nil {
					tickErr = err
					return
				}
				ticks++
			}
		}
	}()

	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Clients,
			MaxIdleConnsPerHost: cfg.Clients,
		},
		Timeout: 5 * time.Second,
	}

	// The resilient mode also parks a stream consumer on the proxy so the
	// auto-reconnect path runs under the same chaos as the load fleet.
	var stream *ChaosStreamResult
	var streamWG sync.WaitGroup
	if retry != nil && cfg.StreamFrames > 0 {
		stream = &ChaosStreamResult{FramesWanted: cfg.StreamFrames}
		streamWG.Add(1)
		go func() {
			defer streamWG.Done()
			cl, err := libvdap.NewClient(proxy.URL(), client)
			if err != nil {
				return
			}
			pol := *retry
			pol.Seed = cfg.Seed ^ 0x73747265616d // "stream"
			// A generous reconnect budget: chaos kills most connections,
			// and surviving drops is exactly what this consumer measures.
			pol.MaxAttempts = 4 * cfg.StreamFrames
			pol.PerRequestTimeout = -1 // streams outlive per-request budgets
			cl.SetRetryPolicy(&pol)
			frames, err := cl.StreamFrames(0, cfg.StreamFrames)
			stream.FramesGot = len(frames)
			stream.Reconnects = cl.Stats().Reconnects
			stream.Completed = err == nil && len(frames) >= cfg.StreamFrames
		}()
	}

	load, loadErr := libvdap.RunLoad(libvdap.LoadGenConfig{
		BaseURL:  proxy.URL(),
		Client:   client,
		Clients:  cfg.Clients,
		Duration: cfg.Duration,
		Mix:      cfg.Mix,
		Seed:     cfg.Seed,
		Retry:    retry,
	})
	streamWG.Wait()
	close(stop)
	wg.Wait()
	if loadErr != nil {
		return res, loadErr
	}
	if tickErr != nil {
		return res, fmt.Errorf("chaosserve: tick loop: %w", tickErr)
	}

	res.SuccessRate = load.SuccessRate()
	res.Load = load
	res.Proxy = proxy.Stats()
	res.Server = p.Server().Stats()
	res.Ticks = ticks
	res.Stream = stream
	return res, nil
}

// RunChaosServe runs E19: the same seeded chaos plan twice — resilience
// off, then on — and reports the paired client-observed outcomes. The two
// modes compile their plans independently; a digest mismatch is a
// determinism bug and fails the run.
func RunChaosServe(cfg ChaosServeConfig) (*ChaosServeReport, error) {
	if cfg.Clients <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("chaosserve: clients and duration must be positive")
	}
	if cfg.TickWall <= 0 {
		cfg.TickWall = 50 * time.Millisecond
	}
	if cfg.TickStep <= 0 {
		cfg.TickStep = 100 * time.Millisecond
	}
	retry := cfg.Retry
	if retry == nil {
		retry = DefaultChaosRetryPolicy()
	}

	plan, err := CompileChaosPlan(cfg)
	if err != nil {
		return nil, err
	}
	latency, resets, truncates, stalls := plan.CountFaults()

	baseline, err := runChaosMode(cfg, nil, "resilience-off")
	if err != nil {
		return nil, fmt.Errorf("chaosserve baseline: %w", err)
	}
	resilient, err := runChaosMode(cfg, retry, "resilience-on")
	if err != nil {
		return nil, fmt.Errorf("chaosserve resilient: %w", err)
	}
	if baseline.PlanDigest != resilient.PlanDigest || baseline.PlanDigest != plan.Digest() {
		return nil, fmt.Errorf("chaosserve: chaos plans diverged across the pair (%s vs %s)",
			baseline.PlanDigest, resilient.PlanDigest)
	}

	return &ChaosServeReport{
		Schema:    ChaosServeSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Seed:      cfg.Seed,
		Clients:   cfg.Clients,
		WallMS:    float64(cfg.Duration) / float64(time.Millisecond),
		Plan: ChaosPlanInfo{
			Digest:    plan.Digest(),
			Conns:     plan.Conns(),
			Latency:   latency,
			Resets:    resets,
			Truncates: truncates,
			Stalls:    stalls,
		},
		Baseline:  baseline,
		Resilient: resilient,
	}, nil
}

// Marshal renders the report as indented JSON ready for BENCH_CHAOS.json.
func (r *ChaosServeReport) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ChaosServeTable renders the E19 paired table.
func ChaosServeTable(r *ChaosServeReport) string {
	t := &Table{
		Title: fmt.Sprintf("E19: serving through chaos (seed %d, %d clients/mode, plan %s: %d resets, %d truncates, %d stalls, %d delays)",
			r.Seed, r.Clients, r.Plan.Digest[:12], r.Plan.Resets, r.Plan.Truncates, r.Plan.Stalls, r.Plan.Latency),
		Columns: []string{"mode", "requests", "success", "errors", "rejected", "sheds", "retries", "retried-ok", "hedges", "hedge-wins", "p50 ms", "p99 ms"},
	}
	for _, m := range []ChaosModeResult{r.Baseline, r.Resilient} {
		p50, p99 := aggregatePercentiles(m.Load)
		t.Rows = append(t.Rows, []string{
			m.Mode,
			fmt.Sprintf("%d", m.Load.Requests),
			fmt.Sprintf("%.4f", m.SuccessRate),
			fmt.Sprintf("%d", m.Load.Errors),
			fmt.Sprintf("%d", m.Load.Rejected),
			fmt.Sprintf("%d", m.Load.Sheds),
			fmt.Sprintf("%d", m.Load.Retries),
			fmt.Sprintf("%d", m.Load.RetriedOK),
			fmt.Sprintf("%d", m.Load.Hedges),
			fmt.Sprintf("%d", m.Load.HedgeWins),
			f2(p50), f2(p99),
		})
	}
	out := t.String()
	if s := r.Resilient.Stream; s != nil {
		out += fmt.Sprintf("\nstream consumer: %d/%d frames, %d reconnects, completed=%v\n",
			s.FramesGot, s.FramesWanted, s.Reconnects, s.Completed)
	}
	return out
}

// aggregatePercentiles folds per-endpoint percentiles into one
// request-weighted p50/p99 pair for the summary row.
func aggregatePercentiles(l libvdap.LoadResult) (p50, p99 float64) {
	var weight int64
	for _, e := range l.Endpoints {
		n := e.Requests - e.Errors - e.Rejected
		if n <= 0 {
			continue
		}
		p50 += e.P50MS * float64(n)
		p99 += e.P99MS * float64(n)
		weight += n
	}
	if weight > 0 {
		p50 /= float64(weight)
		p99 /= float64(weight)
	}
	return p50, p99
}

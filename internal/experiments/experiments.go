// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the design-claim ablations indexed in DESIGN.md. Each
// experiment returns structured rows (consumed by bench_test.go and the
// vdapbench tool) and renders the same table the paper reports.
package experiments

import (
	"fmt"
	"strings"
)

// Table renders rows as an aligned text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

package experiments

import (
	"fmt"
	"time"

	"repro/internal/edgeos"
	"repro/internal/geo"
	"repro/internal/offload"
	"repro/internal/tasks"
	"repro/internal/vcu"
	"repro/internal/xedge"
)

// CommuteRow summarizes one leg of E11.
type CommuteRow struct {
	Leg        string
	SpeedMPH   float64
	Checks     int
	DestUse    map[string]int
	AvgMS      float64
	RSUCovered float64 // fraction of checks inside any RSU's coverage
}

// RunCommute drives the kidnapper-search service through a realistic
// commute (stopped → crawl → arterial → highway → arterial) on a corridor
// with sparse RSUs (E11): the chosen destination should shift between the
// RSU tier (in coverage), cloud/onboard (out of coverage), and degrade
// gracefully at highway speed.
func RunCommute() ([]CommuteRow, error) {
	road, err := geo.NewRoad(40000)
	if err != nil {
		return nil, err
	}
	road.PlaceStations(40, geo.BaseStation, 900, 0, "bs")
	road.PlaceStations(8, geo.RSU, 400, 0, "rsu") // sparse: 5 km apart
	trip := geo.CommuteTrip(road)
	if err := trip.Validate(); err != nil {
		return nil, err
	}

	m, err := vcu.DefaultVCU()
	if err != nil {
		return nil, err
	}
	dsf, err := vcu.NewDSF(m, vcu.GreedyEFT{})
	if err != nil {
		return nil, err
	}
	sites, err := xedge.PlaceAlongRoad(road)
	if err != nil {
		return nil, err
	}
	cl, err := xedge.NewCloud()
	if err != nil {
		return nil, err
	}
	sites = append(sites, cl)
	eng, err := offload.NewEngine(dsf, trip.MobilityAt(0), sites)
	if err != nil {
		return nil, err
	}
	mgr, err := edgeos.NewElasticManager(eng, edgeos.MinLatency)
	if err != nil {
		return nil, err
	}
	svc := &edgeos.Service{
		Name:     "kidnapper-search",
		Priority: edgeos.PriorityInteractive,
		Deadline: 2 * time.Second,
		DAG:      tasks.ALPR(),
		Image:    []byte("a3"),
	}
	if err := mgr.Register(svc); err != nil {
		return nil, err
	}

	legNames := []string{"stopped", "crawl-15", "arterial-35", "highway-70", "arterial-35b"}
	var rows []CommuteRow
	var elapsed time.Duration
	var covBuf []geo.Station
	for i, leg := range trip.Legs {
		row := CommuteRow{
			Leg:      legNames[i],
			SpeedMPH: leg.SpeedMS / geo.MPH(1),
			DestUse:  map[string]int{},
		}
		var total time.Duration
		for at := elapsed; at < elapsed+leg.Duration; at += 10 * time.Second {
			eng.SetMobility(trip.MobilityAt(at))
			pos := trip.PositionAt(at)
			covBuf = road.CoveringStationsInto(pos, covBuf[:0])
			for _, st := range covBuf {
				if st.Kind == geo.RSU {
					row.RSUCovered++
					break
				}
			}
			best, _, viable, err := mgr.Choose("kidnapper-search", at)
			if err != nil {
				return nil, err
			}
			row.Checks++
			if viable {
				row.DestUse[best.Estimate.Dest]++
				total += best.Estimate.Total
			} else {
				row.DestUse["hung-up"]++
			}
		}
		if row.Checks > 0 {
			row.AvgMS = float64(total) / float64(row.Checks) / float64(time.Millisecond)
			row.RSUCovered /= float64(row.Checks)
		}
		rows = append(rows, row)
		elapsed += leg.Duration
	}
	return rows, nil
}

// CommuteTable renders E11.
func CommuteTable(rows []CommuteRow) *Table {
	t := &Table{
		Title:   "E11: destination choice along a commute (kidnapper search, sparse RSUs)",
		Columns: []string{"Leg", "Speed (MPH)", "Checks", "Destinations", "Avg (ms)", "RSU coverage"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Leg, f2(r.SpeedMPH), fmt.Sprintf("%d", r.Checks),
			fmt.Sprintf("%v", r.DestUse), f2(r.AvgMS), f2(r.RSUCovered),
		})
	}
	return t
}

package experiments

import (
	"testing"
)

func smallChaos(parallel int) ChaosConfig {
	return ChaosConfig{
		Replications: 3,
		Parallel:     parallel,
		Seed:         42,
		Vehicles:     4,
		Rounds:       6,
		Intensities:  []float64{1, 2},
	}
}

// TestChaosResilienceBeatsBaseline is E14's headline claim: at every
// outage intensity, the deadline hit-rate with the resilience policy on
// strictly exceeds the policy-off baseline — on the identical worlds and
// fault plans (cells are paired by seed).
func TestChaosResilienceBeatsBaseline(t *testing.T) {
	res, err := RunChaosSweep(smallChaos(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 2 intensities x 2 policies", len(res.Rows))
	}
	for i := 0; i < len(res.Rows); i += 2 {
		off, on := res.Rows[i], res.Rows[i+1]
		if off.Resilience || !on.Resilience {
			t.Fatalf("row order broken: %+v %+v", off, on)
		}
		if off.Intensity != on.Intensity {
			t.Fatalf("unpaired intensities: %v vs %v", off.Intensity, on.Intensity)
		}
		// Paired worlds: both cells must have compiled the same fault plans.
		if off.FaultEvents != on.FaultEvents || off.FaultEvents == 0 {
			t.Fatalf("fault plans differ across policies: %d vs %d", off.FaultEvents, on.FaultEvents)
		}
		if off.Failures == 0 {
			t.Fatalf("intensity %v injected no failures into the baseline", off.Intensity)
		}
		if on.HitRate <= off.HitRate {
			t.Fatalf("intensity %v: resilient hit-rate %.3f not above baseline %.3f",
				on.Intensity, on.HitRate, off.HitRate)
		}
		if on.Fallbacks == 0 {
			t.Fatalf("intensity %v: policy on but no fallbacks recorded", on.Intensity)
		}
	}
	// The resilience machinery shows up in the merged telemetry.
	snap := res.Metrics.Snapshot()
	if snap.Counters["faults.site_down"] == 0 {
		t.Fatal("no outage telemetry in merged metrics")
	}
	if snap.Counters["offload.retries"]+snap.Counters["offload.breaker.skips"]+
		snap.Counters["offload.fallbacks"] == 0 {
		t.Fatal("no resilience telemetry in merged metrics")
	}
}

// TestChaosDeterministicAcrossParallelism: the merged report (rows and
// rendered metrics) is byte-identical at any worker-pool size.
func TestChaosDeterministicAcrossParallelism(t *testing.T) {
	seq, err := RunChaosSweep(smallChaos(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunChaosSweep(smallChaos(4))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ChaosTable(par).String(), ChaosTable(seq).String(); got != want {
		t.Fatalf("tables diverge across parallelism:\n%s\nvs\n%s", got, want)
	}
	if got, want := par.Metrics.Render(), seq.Metrics.Render(); got != want {
		t.Fatal("merged metrics diverge across parallelism")
	}
	if par.Trace.SpanCount() != seq.Trace.SpanCount() {
		t.Fatalf("span counts diverge: %d vs %d", par.Trace.SpanCount(), seq.Trace.SpanCount())
	}
}

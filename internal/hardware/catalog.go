package hardware

import "fmt"

// InceptionV3GFLOP is the forward-pass cost of Inception-v3 (~5.7 GMACs).
// This constant anchors the Figure-3 calibration: each device's
// DNNInference throughput is InceptionV3GFLOP divided by the paper's
// measured latency for that device.
const InceptionV3GFLOP = 11.46

// Figure-3 measured Inception-v3 latencies (seconds) and max power (watts).
// Power values follow the published TDPs of the named parts: Movidius NCS
// ~1 W, Jetson TX2 Max-Q 7.5 W, Max-P 15 W, i7-6700 ~60 W (figure axis),
// Tesla V100 250 W.
const (
	mncsInceptionSec = 0.3345
	tx2qInceptionSec = 0.2428
	tx2pInceptionSec = 0.1143
	i7InceptionSec   = 0.1539
	v100InceptionSec = 0.0268
)

// Catalog device names. These are the identities used throughout the
// platform, the benchmarks, and EXPERIMENTS.md.
const (
	DeviceAWSVCPU   = "aws-vcpu-2.4ghz"    // Table I measurement host
	DeviceMNCS      = "intel-mncs"         // Figure 3 "DSP-based"
	DeviceTX2MaxQ   = "jetson-tx2-maxq"    // Figure 3 "GPU#1"
	DeviceTX2MaxP   = "jetson-tx2-maxp"    // Figure 3 "GPU#2"
	DeviceI76700    = "intel-i7-6700"      // Figure 3 "CPU-based"
	DeviceV100      = "tesla-v100"         // Figure 3 "GPU#3"
	DeviceOBC       = "onboard-controller" // legacy vehicle ECU
	DevicePhone     = "passenger-phone"    // 2ndHEP mobile device
	DeviceVCUFPGA   = "vcu-fpga"           // 1stHEP reconfigurable fabric
	DeviceVCUASIC   = "vcu-asic"           // 1stHEP fixed-function accelerator
	DeviceEdgeXeon  = "xedge-xeon"         // XEdge server CPU
	DeviceEdgeGPU   = "xedge-gpu"          // XEdge server GPU (V100-class)
	DeviceCloudNode = "cloud-node"         // cloud tier aggregate node
)

// Catalog returns the calibrated processor catalog keyed by device name.
// Callers receive fresh copies and may mutate them freely.
func Catalog() map[string]*Processor {
	devices := []*Processor{
		{
			// The Table-I host: one 2.4 GHz EC2 vCPU. Vision and
			// DNN-inference throughputs are chosen so the three Table-I
			// workload constants in package tasks reproduce the paper's
			// latencies exactly.
			Name: DeviceAWSVCPU,
			Kind: CPU,
			Throughput: map[Class]float64{
				General:      8,
				Vision:       10,
				DNNInference: 10,
				DNNTraining:  5,
				Codec:        8,
				Crypto:       6,
			},
			IdlePowerW: 10, MaxPowerW: 45, MemoryMB: 4096, Slots: 1,
		},
		{
			// Figure-3 DSP: Intel Movidius Neural Compute Stick. Superb
			// perf/W on DNN inference, nearly useless for general code.
			Name: DeviceMNCS,
			Kind: DSP,
			Throughput: map[Class]float64{
				General:      0.5,
				Vision:       4,
				DNNInference: InceptionV3GFLOP / mncsInceptionSec, // ≈ 34.3
			},
			IdlePowerW: 0.5, MaxPowerW: 1.0, MemoryMB: 512, Slots: 1,
		},
		{
			Name: DeviceTX2MaxQ,
			Kind: GPU,
			Throughput: map[Class]float64{
				General:      6,
				Vision:       20,
				DNNInference: InceptionV3GFLOP / tx2qInceptionSec, // ≈ 47.2
				DNNTraining:  15,
				Codec:        30,
			},
			IdlePowerW: 2, MaxPowerW: 7.5, MemoryMB: 8192, Slots: 1,
		},
		{
			Name: DeviceTX2MaxP,
			Kind: GPU,
			Throughput: map[Class]float64{
				General:      8,
				Vision:       30,
				DNNInference: InceptionV3GFLOP / tx2pInceptionSec, // ≈ 100.3
				DNNTraining:  32,
				Codec:        45,
			},
			IdlePowerW: 3, MaxPowerW: 15, MemoryMB: 8192, Slots: 1,
		},
		{
			Name: DeviceI76700,
			Kind: CPU,
			Throughput: map[Class]float64{
				General:      25,
				Vision:       35,
				DNNInference: InceptionV3GFLOP / i7InceptionSec, // ≈ 74.5
				DNNTraining:  25,
				Codec:        40,
				Crypto:       30,
			},
			IdlePowerW: 8, MaxPowerW: 60, MemoryMB: 16384, Slots: 4,
		},
		{
			Name: DeviceV100,
			Kind: GPU,
			Throughput: map[Class]float64{
				General:      10,
				Vision:       120,
				DNNInference: InceptionV3GFLOP / v100InceptionSec, // ≈ 427.6
				DNNTraining:  400,
				Codec:        150,
			},
			IdlePowerW: 35, MaxPowerW: 250, MemoryMB: 32768, Slots: 4,
		},
		{
			// Traditional vehicle on-board controller: closed, tiny.
			Name: DeviceOBC,
			Kind: CPU,
			Throughput: map[Class]float64{
				General: 1.5,
				Vision:  1.0,
				Crypto:  0.8,
			},
			IdlePowerW: 2, MaxPowerW: 8, MemoryMB: 512, Slots: 1,
		},
		{
			// Passenger smartphone joining the 2ndHEP opportunistically.
			Name: DevicePhone,
			Kind: CPU,
			Throughput: map[Class]float64{
				General:      6,
				Vision:       10,
				DNNInference: 20,
				Codec:        25,
				Crypto:       8,
			},
			IdlePowerW: 0.5, MaxPowerW: 5, MemoryMB: 6144, Slots: 1,
		},
		{
			// VCU FPGA fabric: strong on streaming transforms (feature
			// extraction, compression, codecs) per the paper's §IV-B.
			Name: DeviceVCUFPGA,
			Kind: FPGA,
			Throughput: map[Class]float64{
				Vision:       60,
				DNNInference: 90,
				Codec:        120,
				Crypto:       80,
			},
			IdlePowerW: 5, MaxPowerW: 25, MemoryMB: 4096, Slots: 2,
		},
		{
			// VCU ASIC: best perf/W but only runs DNN inference.
			Name: DeviceVCUASIC,
			Kind: ASIC,
			Throughput: map[Class]float64{
				DNNInference: 200,
			},
			IdlePowerW: 1, MaxPowerW: 6, MemoryMB: 2048, Slots: 1,
		},
		{
			Name: DeviceEdgeXeon,
			Kind: CPU,
			Throughput: map[Class]float64{
				General:      60,
				Vision:       80,
				DNNInference: 150,
				DNNTraining:  60,
				Codec:        90,
				Crypto:       70,
			},
			IdlePowerW: 60, MaxPowerW: 205, MemoryMB: 65536, Slots: 16,
		},
		{
			Name: DeviceEdgeGPU,
			Kind: GPU,
			Throughput: map[Class]float64{
				General:      10,
				Vision:       120,
				DNNInference: 420,
				DNNTraining:  400,
				Codec:        150,
			},
			IdlePowerW: 35, MaxPowerW: 250, MemoryMB: 32768, Slots: 4,
		},
		{
			// Cloud node: conceptually unconstrained; modeled as a large
			// many-slot server so compute is never the cloud bottleneck.
			Name: DeviceCloudNode,
			Kind: CPU,
			Throughput: map[Class]float64{
				General:      100,
				Vision:       200,
				DNNInference: 800,
				DNNTraining:  800,
				Codec:        200,
				Crypto:       150,
			},
			IdlePowerW: 100, MaxPowerW: 500, MemoryMB: 262144, Slots: 64,
		},
	}
	out := make(map[string]*Processor, len(devices))
	for _, d := range devices {
		out[d.Name] = d
	}
	return out
}

// Lookup returns a copy of the named catalog device.
func Lookup(name string) (*Processor, error) {
	p, ok := Catalog()[name]
	if !ok {
		return nil, fmt.Errorf("hardware: unknown device %q", name)
	}
	return p, nil
}

// Figure3Devices lists the five Figure-3 processors in the paper's order:
// DSP-based, GPU#1, GPU#2, CPU-based, GPU#3.
func Figure3Devices() []string {
	return []string{DeviceMNCS, DeviceTX2MaxQ, DeviceTX2MaxP, DeviceI76700, DeviceV100}
}

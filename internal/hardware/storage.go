package hardware

import (
	"fmt"
	"time"
)

// Storage models the VCU's parallelism-supported SSD (paper §IV-B): a
// device with fixed per-operation latency plus throughput-bound transfer
// time, and a capacity budget.
type Storage struct {
	// Name identifies the device.
	Name string
	// ReadMBps and WriteMBps are sustained sequential rates.
	ReadMBps  float64
	WriteMBps float64
	// OpLatency is the fixed per-operation cost (queueing/flash latency).
	OpLatency time.Duration
	// CapacityMB is the total capacity budget.
	CapacityMB float64

	usedMB float64
}

// DefaultSSD returns the VCU SSD model: NVMe-class rates.
func DefaultSSD() *Storage {
	return &Storage{
		Name:       "vcu-nvme-ssd",
		ReadMBps:   3200,
		WriteMBps:  1800,
		OpLatency:  80 * time.Microsecond,
		CapacityMB: 1 << 20, // 1 TB
	}
}

// ReadTime returns how long reading sizeMB takes.
func (s *Storage) ReadTime(sizeMB float64) (time.Duration, error) {
	if sizeMB < 0 {
		return 0, fmt.Errorf("hardware: negative read size %v", sizeMB)
	}
	if s.ReadMBps <= 0 {
		return 0, fmt.Errorf("hardware: storage %s has no read rate", s.Name)
	}
	return s.OpLatency + time.Duration(sizeMB/s.ReadMBps*float64(time.Second)), nil
}

// WriteTime returns how long writing sizeMB takes and charges capacity.
func (s *Storage) WriteTime(sizeMB float64) (time.Duration, error) {
	if sizeMB < 0 {
		return 0, fmt.Errorf("hardware: negative write size %v", sizeMB)
	}
	if s.WriteMBps <= 0 {
		return 0, fmt.Errorf("hardware: storage %s has no write rate", s.Name)
	}
	if s.usedMB+sizeMB > s.CapacityMB {
		return 0, fmt.Errorf("hardware: storage %s full (%v/%v MB)", s.Name, s.usedMB, s.CapacityMB)
	}
	s.usedMB += sizeMB
	return s.OpLatency + time.Duration(sizeMB/s.WriteMBps*float64(time.Second)), nil
}

// Free releases sizeMB of capacity (e.g. after data migrates to the cloud).
func (s *Storage) Free(sizeMB float64) {
	s.usedMB -= sizeMB
	if s.usedMB < 0 {
		s.usedMB = 0
	}
}

// UsedMB returns the occupied capacity.
func (s *Storage) UsedMB() float64 { return s.usedMB }

package hardware

import (
	"math"
	"testing"
	"time"
)

func TestCatalogAllValid(t *testing.T) {
	cat := Catalog()
	if len(cat) < 10 {
		t.Fatalf("catalog has %d devices, want >= 10", len(cat))
	}
	for name, p := range cat {
		if err := p.Validate(); err != nil {
			t.Errorf("device %s invalid: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("device keyed %q but named %q", name, p.Name)
		}
	}
}

func TestLookup(t *testing.T) {
	p, err := Lookup(DeviceV100)
	if err != nil || p.Kind != GPU {
		t.Fatalf("Lookup(v100) = %v, %v", p, err)
	}
	if _, err := Lookup("no-such-device"); err == nil {
		t.Fatal("Lookup of unknown device succeeded")
	}
}

// TestFigure3Calibration checks that the catalog reproduces the paper's
// Figure-3 Inception-v3 latencies exactly (they are calibration anchors).
func TestFigure3Calibration(t *testing.T) {
	wantMS := map[string]float64{
		DeviceMNCS:    334.5,
		DeviceTX2MaxQ: 242.8,
		DeviceTX2MaxP: 114.3,
		DeviceI76700:  153.9,
		DeviceV100:    26.8,
	}
	wantPowerW := map[string]float64{
		DeviceMNCS:    1.0,
		DeviceTX2MaxQ: 7.5,
		DeviceTX2MaxP: 15,
		DeviceI76700:  60,
		DeviceV100:    250,
	}
	for _, name := range Figure3Devices() {
		p, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		d, err := p.ExecTime(DNNInference, InceptionV3GFLOP)
		if err != nil {
			t.Fatalf("ExecTime(%s): %v", name, err)
		}
		gotMS := float64(d) / float64(time.Millisecond)
		if math.Abs(gotMS-wantMS[name]) > 0.05 {
			t.Errorf("%s inception latency = %.2f ms, want %.2f", name, gotMS, wantMS[name])
		}
		if p.MaxPowerW != wantPowerW[name] {
			t.Errorf("%s max power = %v W, want %v", name, p.MaxPowerW, wantPowerW[name])
		}
	}
}

// TestFigure3Shape verifies the paper's qualitative claims: V100 is fastest
// and most power-hungry; the DSP stick is slowest but most frugal.
func TestFigure3Shape(t *testing.T) {
	cat := Catalog()
	v100, mncs := cat[DeviceV100], cat[DeviceMNCS]
	for _, name := range Figure3Devices() {
		p := cat[name]
		dV, _ := v100.ExecTime(DNNInference, InceptionV3GFLOP)
		dP, _ := p.ExecTime(DNNInference, InceptionV3GFLOP)
		if dP < dV {
			t.Errorf("%s beat V100 on inference", name)
		}
		if p.MaxPowerW > v100.MaxPowerW {
			t.Errorf("%s draws more power than V100", name)
		}
		if name != DeviceMNCS && p.MaxPowerW < mncs.MaxPowerW {
			t.Errorf("%s draws less power than the DSP stick", name)
		}
	}
}

func TestExecTimeErrors(t *testing.T) {
	asic, _ := Lookup(DeviceVCUASIC)
	if _, err := asic.ExecTime(General, 1); err == nil {
		t.Fatal("ASIC ran a General task")
	}
	if !asic.CanRun(DNNInference) {
		t.Fatal("ASIC cannot run DNN inference")
	}
	if asic.CanRun(Codec) {
		t.Fatal("ASIC claims to run Codec")
	}
	cpu, _ := Lookup(DeviceI76700)
	if _, err := cpu.ExecTime(Vision, -1); err == nil {
		t.Fatal("negative work accepted")
	}
	// Unknown classes fall back to General on a CPU.
	if !cpu.CanRun(Class(99)) {
		t.Fatal("CPU refused unknown class despite General fallback")
	}
}

func TestPowerModel(t *testing.T) {
	p := &Processor{Name: "x", Kind: CPU, Throughput: map[Class]float64{General: 1}, IdlePowerW: 10, MaxPowerW: 110, Slots: 1}
	if got := p.PowerAt(0); got != 10 {
		t.Fatalf("PowerAt(0) = %v, want 10", got)
	}
	if got := p.PowerAt(1); got != 110 {
		t.Fatalf("PowerAt(1) = %v, want 110", got)
	}
	if got := p.PowerAt(0.5); got != 60 {
		t.Fatalf("PowerAt(0.5) = %v, want 60", got)
	}
	if got := p.PowerAt(-1); got != 10 {
		t.Fatalf("PowerAt(-1) = %v, want clamp to idle", got)
	}
	if got := p.PowerAt(2); got != 110 {
		t.Fatalf("PowerAt(2) = %v, want clamp to max", got)
	}
	if got := p.EnergyJ(2 * time.Second); got != 220 {
		t.Fatalf("EnergyJ(2s) = %v, want 220", got)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Processor
	}{
		{"no name", Processor{Throughput: map[Class]float64{General: 1}, Slots: 1}},
		{"no throughput", Processor{Name: "x", Slots: 1}},
		{"zero rate", Processor{Name: "x", Throughput: map[Class]float64{General: 0}, Slots: 1}},
		{"power inverted", Processor{Name: "x", Throughput: map[Class]float64{General: 1}, IdlePowerW: 5, MaxPowerW: 1, Slots: 1}},
		{"no slots", Processor{Name: "x", Throughput: map[Class]float64{General: 1}}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); err == nil {
			t.Errorf("%s: Validate passed, want error", tc.name)
		}
	}
}

func TestExecutorSerialQueueing(t *testing.T) {
	p := &Processor{Name: "x", Kind: CPU, Throughput: map[Class]float64{General: 1}, MaxPowerW: 10, Slots: 1}
	e, err := NewExecutor(p)
	if err != nil {
		t.Fatal(err)
	}
	s1, f1, err := e.Submit(0, General, 2) // 2s of work
	if err != nil || s1 != 0 || f1 != 2*time.Second {
		t.Fatalf("first submit = %v,%v,%v", s1, f1, err)
	}
	s2, f2, err := e.Submit(0, General, 3)
	if err != nil || s2 != 2*time.Second || f2 != 5*time.Second {
		t.Fatalf("queued submit = %v,%v,%v; want start 2s finish 5s", s2, f2, err)
	}
	// A submission after the queue drains starts at its own arrival.
	s3, f3, err := e.Submit(10*time.Second, General, 1)
	if err != nil || s3 != 10*time.Second || f3 != 11*time.Second {
		t.Fatalf("late submit = %v,%v,%v", s3, f3, err)
	}
	if e.Completed() != 3 {
		t.Fatalf("Completed = %d, want 3", e.Completed())
	}
	if got := e.ActiveEnergyJ(); got != 60 {
		t.Fatalf("energy = %v J, want 60 (6s at 10W)", got)
	}
}

func TestExecutorParallelSlots(t *testing.T) {
	p := &Processor{Name: "x", Kind: GPU, Throughput: map[Class]float64{General: 1}, MaxPowerW: 1, Slots: 2}
	e, _ := NewExecutor(p)
	_, f1, _ := e.Submit(0, General, 4)
	_, f2, _ := e.Submit(0, General, 4)
	if f1 != 4*time.Second || f2 != 4*time.Second {
		t.Fatalf("two slots should run in parallel: %v, %v", f1, f2)
	}
	s3, _, _ := e.Submit(0, General, 1)
	if s3 != 4*time.Second {
		t.Fatalf("third task start = %v, want 4s", s3)
	}
}

func TestExecutorEstimateMatchesSubmit(t *testing.T) {
	p := &Processor{Name: "x", Kind: CPU, Throughput: map[Class]float64{General: 2}, MaxPowerW: 1, Slots: 1}
	e, _ := NewExecutor(p)
	est, err := e.EstimateFinish(0, General, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, fin, _ := e.Submit(0, General, 4)
	if est != fin {
		t.Fatalf("estimate %v != actual %v", est, fin)
	}
}

func TestExecutorUtilization(t *testing.T) {
	p := &Processor{Name: "x", Kind: CPU, Throughput: map[Class]float64{General: 1}, MaxPowerW: 1, Slots: 1}
	e, _ := NewExecutor(p)
	e.Submit(0, General, 5)
	if u := e.Utilization(10 * time.Second); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if u := e.Utilization(0); u != 0 {
		t.Fatalf("utilization(0) = %v, want 0", u)
	}
	if u := e.Utilization(time.Second); u != 1 {
		t.Fatalf("utilization cap = %v, want 1", u)
	}
}

func TestNewExecutorValidation(t *testing.T) {
	if _, err := NewExecutor(nil); err == nil {
		t.Fatal("NewExecutor(nil) succeeded")
	}
	if _, err := NewExecutor(&Processor{}); err == nil {
		t.Fatal("NewExecutor(invalid) succeeded")
	}
}

func TestStorageTimes(t *testing.T) {
	s := &Storage{Name: "t", ReadMBps: 100, WriteMBps: 50, OpLatency: time.Millisecond, CapacityMB: 1000}
	rt, err := s.ReadTime(100)
	if err != nil || rt != time.Millisecond+time.Second {
		t.Fatalf("ReadTime = %v, %v; want 1.001s", rt, err)
	}
	wt, err := s.WriteTime(100)
	if err != nil || wt != time.Millisecond+2*time.Second {
		t.Fatalf("WriteTime = %v, %v; want 2.001s", wt, err)
	}
	if s.UsedMB() != 100 {
		t.Fatalf("UsedMB = %v, want 100", s.UsedMB())
	}
}

func TestStorageCapacityAndFree(t *testing.T) {
	s := &Storage{Name: "t", ReadMBps: 100, WriteMBps: 100, CapacityMB: 150}
	if _, err := s.WriteTime(100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteTime(100); err == nil {
		t.Fatal("write past capacity succeeded")
	}
	s.Free(60)
	if _, err := s.WriteTime(100); err != nil {
		t.Fatalf("write after Free failed: %v", err)
	}
	s.Free(1e9)
	if s.UsedMB() != 0 {
		t.Fatalf("UsedMB = %v after over-free, want 0", s.UsedMB())
	}
}

func TestStorageErrors(t *testing.T) {
	s := DefaultSSD()
	if _, err := s.ReadTime(-1); err == nil {
		t.Fatal("negative read accepted")
	}
	if _, err := s.WriteTime(-1); err == nil {
		t.Fatal("negative write accepted")
	}
	broken := &Storage{Name: "b"}
	if _, err := broken.ReadTime(1); err == nil {
		t.Fatal("zero-rate read accepted")
	}
	if _, err := broken.WriteTime(0); err == nil {
		t.Fatal("zero-rate write accepted")
	}
}

func TestClassAndKindStrings(t *testing.T) {
	if General.String() != "general" || DNNInference.String() != "dnn-inference" {
		t.Fatal("class names wrong")
	}
	if Class(42).String() != "class(42)" {
		t.Fatal("unknown class name wrong")
	}
	if GPU.String() != "gpu" || ASIC.String() != "asic" {
		t.Fatal("kind names wrong")
	}
	if Kind(42).String() != "kind(42)" {
		t.Fatal("unknown kind name wrong")
	}
}

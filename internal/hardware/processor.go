// Package hardware models the heterogeneous processors, storage, and power
// envelopes that make up OpenVDAP's Vehicle Computing Unit (VCU) as well as
// XEdge and cloud servers.
//
// Each processor has a per-task-class effective throughput in GFLOP/s. The
// catalog in this package is calibrated against the paper's two hardware
// measurements: Table I (algorithm latency on a 2.4 GHz AWS vCPU) and
// Figure 3 (Inception-v3 latency and max power on five processors).
package hardware

import (
	"fmt"
	"time"
)

// Class categorizes computation so heterogeneous processors can have
// different efficiencies on different work (a GPU accelerates DNN inference
// far more than branchy classic vision code).
type Class int

const (
	// General is branchy scalar code: parsing, control, bookkeeping.
	General Class = iota + 1
	// Vision is classic computer vision (Haar cascades, Hough transforms).
	Vision
	// DNNInference is neural-network forward passes.
	DNNInference
	// DNNTraining is neural-network training (forward + backward).
	DNNTraining
	// Codec is media encoding/decoding.
	Codec
	// Crypto is encryption/hashing work.
	Crypto
)

var classNames = map[Class]string{
	General:      "general",
	Vision:       "vision",
	DNNInference: "dnn-inference",
	DNNTraining:  "dnn-training",
	Codec:        "codec",
	Crypto:       "crypto",
}

// String returns the lower-case class name.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Classes returns every defined task class in declaration order. Callers
// that precompute per-class tables (xedge service rates) iterate this so
// their caches cover the whole enum up front.
func Classes() []Class {
	return []Class{General, Vision, DNNInference, DNNTraining, Codec, Crypto}
}

// Kind is the processor technology.
type Kind int

const (
	// CPU is a general-purpose processor.
	CPU Kind = iota + 1
	// GPU is a graphics processor with massive floating-point parallelism.
	GPU
	// DSP is a low-power signal processor (e.g. Movidius neural stick).
	DSP
	// FPGA is a reconfigurable fabric.
	FPGA
	// ASIC is a fixed-function accelerator.
	ASIC
)

var kindNames = map[Kind]string{CPU: "cpu", GPU: "gpu", DSP: "dsp", FPGA: "fpga", ASIC: "asic"}

// String returns the lower-case kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Processor describes one compute device.
type Processor struct {
	// Name identifies the device ("tesla-v100").
	Name string
	// Kind is the processor technology.
	Kind Kind
	// Throughput is the effective GFLOP/s per task class. Classes absent
	// from the map fall back to the General entry.
	Throughput map[Class]float64
	// IdlePowerW and MaxPowerW bound the power envelope in watts.
	IdlePowerW float64
	MaxPowerW  float64
	// MemoryMB is device memory available to tasks.
	MemoryMB float64
	// Slots is how many tasks can execute concurrently at full throughput
	// (distinct execution contexts, not SMT). Minimum 1.
	Slots int
}

// Validate reports configuration errors.
func (p *Processor) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("hardware: processor has no name")
	}
	if len(p.Throughput) == 0 {
		return fmt.Errorf("hardware: processor %s has no throughput entries", p.Name)
	}
	for c, v := range p.Throughput {
		if v <= 0 {
			return fmt.Errorf("hardware: processor %s has non-positive throughput for %v", p.Name, c)
		}
	}
	if p.MaxPowerW < p.IdlePowerW {
		return fmt.Errorf("hardware: processor %s max power %v below idle %v", p.Name, p.MaxPowerW, p.IdlePowerW)
	}
	if p.Slots < 1 {
		return fmt.Errorf("hardware: processor %s has %d slots, need >= 1", p.Name, p.Slots)
	}
	return nil
}

// EffectiveGFLOPS returns the device throughput for a task class, falling
// back to the General rate for unknown classes. A device that cannot run
// the class at all (no entry and no General entry) returns 0.
func (p *Processor) EffectiveGFLOPS(c Class) float64 {
	if v, ok := p.Throughput[c]; ok {
		return v
	}
	return p.Throughput[General]
}

// CanRun reports whether the device supports the task class.
func (p *Processor) CanRun(c Class) bool { return p.EffectiveGFLOPS(c) > 0 }

// ExecTime returns how long gflop units of class-c work take on this device.
// It returns (0, error) if the device cannot run the class.
func (p *Processor) ExecTime(c Class, gflop float64) (time.Duration, error) {
	if gflop < 0 {
		return 0, fmt.Errorf("hardware: negative work %v", gflop)
	}
	rate := p.EffectiveGFLOPS(c)
	if rate <= 0 {
		return 0, fmt.Errorf("hardware: %s cannot run %v tasks", p.Name, c)
	}
	return time.Duration(gflop / rate * float64(time.Second)), nil
}

// PowerAt returns the power draw in watts at a utilization in [0,1]
// (linear interpolation between idle and max, the standard first-order
// server power model).
func (p *Processor) PowerAt(utilization float64) float64 {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	return p.IdlePowerW + (p.MaxPowerW-p.IdlePowerW)*utilization
}

// EnergyJ returns the energy in joules consumed by running flat-out for d.
func (p *Processor) EnergyJ(d time.Duration) float64 {
	return p.MaxPowerW * d.Seconds()
}

package hardware

import (
	"fmt"
	"time"
)

// Executor models queueing on one processor in virtual time. Each slot runs
// one task at a time; submissions pick the earliest-free slot. The same
// model serves VCU devices and multi-tenant XEdge servers.
type Executor struct {
	proc      *Processor
	slotFree  []time.Duration // earliest time each slot becomes free
	busyJ     float64         // accumulated active-energy in joules
	busyTime  time.Duration   // accumulated execution time across slots
	completed int
}

// NewExecutor wraps a validated processor.
func NewExecutor(p *Processor) (*Executor, error) {
	if p == nil {
		return nil, fmt.Errorf("hardware: nil processor")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Executor{proc: p, slotFree: make([]time.Duration, p.Slots)}, nil
}

// Processor returns the underlying device description.
func (e *Executor) Processor() *Processor { return e.proc }

// EarliestStart returns when a task submitted at now could begin executing.
func (e *Executor) EarliestStart(now time.Duration) time.Duration {
	best := e.slotFree[0]
	for _, f := range e.slotFree[1:] {
		if f < best {
			best = f
		}
	}
	if best < now {
		best = now
	}
	return best
}

// EstimateFinish predicts the completion time of class-c work of the given
// size submitted at now, without committing the reservation.
func (e *Executor) EstimateFinish(now time.Duration, c Class, gflop float64) (time.Duration, error) {
	exec, err := e.proc.ExecTime(c, gflop)
	if err != nil {
		return 0, err
	}
	return e.EarliestStart(now) + exec, nil
}

// Submit reserves the earliest-free slot for the work and returns its start
// and finish times. The executor's energy accounting is charged for the
// active interval.
func (e *Executor) Submit(now time.Duration, c Class, gflop float64) (start, finish time.Duration, err error) {
	exec, err := e.proc.ExecTime(c, gflop)
	if err != nil {
		return 0, 0, err
	}
	slot := 0
	for i := 1; i < len(e.slotFree); i++ {
		if e.slotFree[i] < e.slotFree[slot] {
			slot = i
		}
	}
	start = e.slotFree[slot]
	if start < now {
		start = now
	}
	finish = start + exec
	e.slotFree[slot] = finish
	e.busyJ += e.proc.EnergyJ(exec)
	e.busyTime += exec
	e.completed++
	return start, finish, nil
}

// ActiveEnergyJ returns the total joules charged to submitted work.
func (e *Executor) ActiveEnergyJ() float64 { return e.busyJ }

// Completed returns the number of submissions accepted.
func (e *Executor) Completed() int { return e.completed }

// PendingWork returns the total committed busy time still ahead of now
// across all slots — the device's queue depth expressed in virtual time.
// Read-only, so health samplers may call it from the parallel decision
// phase.
func (e *Executor) PendingWork(now time.Duration) time.Duration {
	var sum time.Duration
	for _, f := range e.slotFree {
		if f > now {
			sum += f - now
		}
	}
	return sum
}

// Utilization returns the fraction of [0, horizon] the device's slots were
// executing work, aggregated across slots and capped at 1. Horizon must be
// positive.
func (e *Executor) Utilization(horizon time.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	u := float64(e.busyTime) / float64(horizon) / float64(len(e.slotFree))
	if u > 1 {
		u = 1
	}
	return u
}

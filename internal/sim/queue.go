package sim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback in virtual time.
type Event struct {
	// At is the virtual time at which the event fires.
	At time.Duration
	// Fn is invoked when the event fires. It may schedule further events.
	Fn func()

	seq   uint64 // tie-breaker: FIFO among events at the same instant
	index int    // heap index; -1 once popped or canceled
}

// Canceled reports whether the event has been canceled or already fired.
func (e *Event) Canceled() bool { return e.index < 0 }

// eventHeap orders events by time, then by insertion sequence.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Queue is a priority queue of events keyed by virtual time.
// The zero value is ready to use.
type Queue struct {
	events eventHeap
	seq    uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.events) }

// Schedule enqueues fn to run at virtual time at and returns a handle that
// can be passed to Cancel.
func (q *Queue) Schedule(at time.Duration, fn func()) *Event {
	q.seq++
	ev := &Event{At: at, Fn: fn, seq: q.seq}
	heap.Push(&q.events, ev)
	return ev
}

// Cancel removes ev from the queue. Canceling an event that already fired
// or was already canceled is a no-op.
func (q *Queue) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 || ev.index >= len(q.events) || q.events[ev.index] != ev {
		return
	}
	heap.Remove(&q.events, ev.index)
}

// PeekTime returns the firing time of the earliest event. ok is false when
// the queue is empty.
func (q *Queue) PeekTime() (at time.Duration, ok bool) {
	if len(q.events) == 0 {
		return 0, false
	}
	return q.events[0].At, true
}

// Pop removes and returns the earliest event. ok is false when the queue is
// empty.
func (q *Queue) Pop() (ev *Event, ok bool) {
	if len(q.events) == 0 {
		return nil, false
	}
	popped, ok := heap.Pop(&q.events).(*Event)
	if !ok {
		return nil, false
	}
	return popped, true
}

package sim

import (
	"time"
)

// Event is a scheduled callback in virtual time.
//
// Event structs are pooled: once an event has fired or been canceled the
// queue may hand the same struct to a later Schedule call. Holders must
// therefore keep the Handle returned by Schedule — never a raw *Event —
// when they intend to cancel later; the Handle's generation stamp detects
// reuse. The *Event returned by Pop is valid until passed to Release.
type Event struct {
	// At is the virtual time at which the event fires.
	At time.Duration
	// Fn is invoked when the event fires. It may schedule further events.
	// The queue nils it out once the event is canceled or released, so a
	// dead event never pins its callback's captures.
	Fn func()

	seq   uint64 // tie-breaker: FIFO among events at the same instant
	index int32  // heap index; negative when not queued (see below)
	gen   uint64 // bumped on every cancel/release; Handle validity stamp
	owner *Queue // queue the event belongs to; guards cross-queue Cancel
}

// index sentinels for events not currently in the heap.
const (
	indexPopped = -1 // handed out by Pop, not yet released
	indexPooled = -2 // resting in the free list
)

// Handle identifies one scheduled event. The zero Handle is inert: Cancel
// ignores it and Canceled reports true. Handles stay safe after the event
// fires, is canceled, or its struct is recycled — the generation stamp
// rejects stale handles, and the owner pointer rejects handles from other
// queues.
type Handle struct {
	ev  *Event
	gen uint64
}

// Canceled reports whether the handle no longer refers to a pending event
// (it fired, was canceled, or never existed).
func (h Handle) Canceled() bool {
	return h.ev == nil || h.ev.gen != h.gen || h.ev.index < 0
}

// Queue is a priority queue of events keyed by virtual time, implemented
// as a specialized 4-ary heap over *Event (no interface boxing, inlined
// sifts) with a free list so Schedule/Pop amortize to zero allocations.
// Ordering is (At, seq): earlier time first, FIFO among equal times —
// identical to the previous container/heap implementation, so seeded
// simulations produce byte-identical trajectories.
//
// The zero value is ready to use.
type Queue struct {
	events []*Event
	seq    uint64
	free   []*Event
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.events) }

// less orders the heap by firing time, then insertion sequence.
func eventLess(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

// Schedule enqueues fn to run at virtual time at and returns a handle that
// can be passed to Cancel.
func (q *Queue) Schedule(at time.Duration, fn func()) Handle {
	q.seq++
	var ev *Event
	if n := len(q.free); n > 0 {
		ev = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		ev = &Event{owner: q}
	}
	ev.At = at
	ev.Fn = fn
	ev.seq = q.seq
	ev.index = int32(len(q.events))
	q.events = append(q.events, ev)
	q.siftUp(len(q.events) - 1)
	return Handle{ev: ev, gen: ev.gen}
}

// Cancel removes the handle's event from the queue. Canceling a zero
// handle, an event that already fired or was already canceled, or a handle
// minted by a different queue is a no-op: the owner pointer and generation
// stamp identify exactly one pending event, so a stale handle can never
// remove a recycled struct's new occupant (or another queue's event whose
// index happens to be valid here).
func (q *Queue) Cancel(h Handle) {
	ev := h.ev
	if ev == nil || ev.owner != q || ev.gen != h.gen || ev.index < 0 {
		return
	}
	i := int(ev.index)
	if i >= len(q.events) || q.events[i] != ev {
		return // defensive: a corrupted handle must not evict a stranger
	}
	q.removeAt(i)
	q.release(ev)
}

// PeekTime returns the firing time of the earliest event. ok is false when
// the queue is empty.
func (q *Queue) PeekTime() (at time.Duration, ok bool) {
	if len(q.events) == 0 {
		return 0, false
	}
	return q.events[0].At, true
}

// Pop removes and returns the earliest event. ok is false when the queue
// is empty. The caller reads At/Fn, then hands the struct back with
// Release once the callback has been invoked (or drops it — unreleased
// events are simply garbage-collected instead of pooled).
func (q *Queue) Pop() (ev *Event, ok bool) {
	n := len(q.events)
	if n == 0 {
		return nil, false
	}
	root := q.events[0]
	last := q.events[n-1]
	q.events[n-1] = nil
	q.events = q.events[:n-1]
	if n > 1 {
		q.events[0] = last
		last.index = 0
		q.siftDown(0)
	}
	root.index = indexPopped
	return root, true
}

// Release returns a popped event to the queue's free list, dropping its
// callback so fired events never pin their captures. Only events popped
// from this queue and not yet released are accepted; anything else is a
// no-op, so double releases cannot hand the same struct out twice.
func (q *Queue) Release(ev *Event) {
	if ev == nil || ev.owner != q || ev.index != indexPopped {
		return
	}
	q.release(ev)
}

// release recycles an event that is no longer in the heap.
func (q *Queue) release(ev *Event) {
	ev.Fn = nil
	ev.gen++
	ev.index = indexPooled
	q.free = append(q.free, ev)
}

// removeAt deletes the event at heap position i, preserving heap order.
func (q *Queue) removeAt(i int) {
	n := len(q.events)
	ev := q.events[i]
	last := q.events[n-1]
	q.events[n-1] = nil
	q.events = q.events[:n-1]
	if i < n-1 {
		q.events[i] = last
		last.index = int32(i)
		if !q.siftDown(i) {
			q.siftUp(i)
		}
	}
	ev.index = indexPopped
}

// siftUp restores heap order from position i toward the root.
func (q *Queue) siftUp(i int) {
	ev := q.events[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := q.events[parent]
		if !eventLess(ev, p) {
			break
		}
		q.events[i] = p
		p.index = int32(i)
		i = parent
	}
	q.events[i] = ev
	ev.index = int32(i)
}

// siftDown restores heap order from position i toward the leaves. It
// reports whether the event moved.
func (q *Queue) siftDown(i int) bool {
	ev := q.events[i]
	n := len(q.events)
	start := i
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		bestEv := q.events[first]
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if cev := q.events[c]; eventLess(cev, bestEv) {
				best, bestEv = c, cev
			}
		}
		if !eventLess(bestEv, ev) {
			break
		}
		q.events[i] = bestEv
		bestEv.index = int32(i)
		i = best
	}
	q.events[i] = ev
	ev.index = int32(i)
	return i != start
}

package sim

import (
	"container/heap"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

func TestQueueOrdersByTime(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(3*time.Second, func() { got = append(got, 3) })
	q.Schedule(1*time.Second, func() { got = append(got, 1) })
	q.Schedule(2*time.Second, func() { got = append(got, 2) })

	for q.Len() > 0 {
		ev, ok := q.Pop()
		if !ok {
			t.Fatal("Pop returned !ok with non-empty queue")
		}
		ev.Fn()
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestQueueFIFOAtSameInstant(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(time.Second, func() { got = append(got, i) })
	}
	for q.Len() > 0 {
		ev, _ := q.Pop()
		ev.Fn()
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant order = %v, want FIFO", got)
		}
	}
}

func TestQueueCancel(t *testing.T) {
	var q Queue
	fired := false
	h := q.Schedule(time.Second, func() { fired = true })
	q.Cancel(h)
	if q.Len() != 0 {
		t.Fatalf("Len = %d after cancel, want 0", q.Len())
	}
	if !h.Canceled() {
		t.Fatal("Canceled() = false after cancel")
	}
	// Double-cancel and zero-handle cancel must be no-ops.
	q.Cancel(h)
	q.Cancel(Handle{})
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestQueueCancelMiddle(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(1*time.Second, func() { got = append(got, 1) })
	mid := q.Schedule(2*time.Second, func() { got = append(got, 2) })
	q.Schedule(3*time.Second, func() { got = append(got, 3) })
	q.Cancel(mid)
	for q.Len() > 0 {
		ev, _ := q.Pop()
		ev.Fn()
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestQueuePeekTime(t *testing.T) {
	var q Queue
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime ok on empty queue")
	}
	q.Schedule(5*time.Second, func() {})
	q.Schedule(2*time.Second, func() {})
	at, ok := q.PeekTime()
	if !ok || at != 2*time.Second {
		t.Fatalf("PeekTime = %v, %v; want 2s, true", at, ok)
	}
}

// TestQueueCancelCrossQueue locks in that a handle minted by one queue can
// never remove an event from another, even when the foreign event's heap
// index happens to be a valid slot here.
func TestQueueCancelCrossQueue(t *testing.T) {
	var q1, q2 Queue
	var fired []int
	for i := 0; i < 4; i++ {
		i := i
		q1.Schedule(time.Duration(i)*time.Second, func() { fired = append(fired, i) })
	}
	// h2's event sits at q2 index 0 — a valid index in q1 too.
	h2 := q2.Schedule(time.Second, func() {})
	q1.Cancel(h2)
	if q1.Len() != 4 {
		t.Fatalf("q1.Len = %d after cross-queue cancel, want 4 (nothing removed)", q1.Len())
	}
	if q2.Len() != 1 || h2.Canceled() {
		t.Fatal("cross-queue cancel disturbed the handle's own queue")
	}
	for q1.Len() > 0 {
		ev, _ := q1.Pop()
		ev.Fn()
	}
	for i := 0; i < 4; i++ {
		if fired[i] != i {
			t.Fatalf("q1 fired %v, want [0 1 2 3]", fired)
		}
	}
}

// TestQueueStaleHandleAfterReuse locks in that canceling a handle whose
// event struct has been recycled for a newer schedule is a no-op: the
// generation stamp must reject the stale handle.
func TestQueueStaleHandleAfterReuse(t *testing.T) {
	var q Queue
	stale := q.Schedule(time.Second, func() {})
	q.Cancel(stale) // struct goes to the free list
	fresh := q.Schedule(2*time.Second, func() {})
	if fresh.ev != stale.ev {
		t.Skip("free list did not recycle the struct (allocator change?)")
	}
	q.Cancel(stale) // must NOT remove fresh's event
	if q.Len() != 1 {
		t.Fatalf("stale handle canceled a recycled event: Len = %d, want 1", q.Len())
	}
	if fresh.Canceled() {
		t.Fatal("fresh handle reports canceled after stale cancel")
	}
	if !stale.Canceled() {
		t.Fatal("stale handle reports pending")
	}
}

// TestQueueReleaseRejectsForeignAndDouble locks in Release's guards: only
// events popped from this queue, exactly once.
func TestQueueReleaseRejectsForeignAndDouble(t *testing.T) {
	var q1, q2 Queue
	q1.Schedule(time.Second, func() {})
	ev, _ := q1.Pop()
	q2.Release(ev) // foreign queue: no-op
	if len(q2.free) != 0 {
		t.Fatal("foreign Release pooled the event")
	}
	q1.Release(ev)
	q1.Release(ev) // double release: no-op
	if len(q1.free) != 1 {
		t.Fatalf("free list holds %d events after double release, want 1", len(q1.free))
	}
}

// TestCanceledEventReleasesPayload is the regression test for the Fn
// retention leak: once canceled (or fired), an event must not keep its
// callback — and everything the closure captures — reachable.
func TestCanceledEventReleasesPayload(t *testing.T) {
	var q Queue
	collected := make(chan struct{})
	payload := make([]byte, 1<<20)
	runtime.SetFinalizer(&payload[0], func(*byte) { close(collected) })
	h := q.Schedule(time.Second, func() { _ = payload[0] })
	payload = nil
	q.Cancel(h)
	if h.ev.Fn != nil {
		t.Fatal("canceled event still holds its callback")
	}
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-deadline:
			t.Fatal("canceled event's payload was never collected")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestFiredEventReleasesCallback: the engine's release path must drop Fn
// after firing, so long-lived engines don't pin dead closures.
func TestFiredEventReleasesCallback(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.After(time.Second, func() { ran = true })
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("event did not fire")
	}
	for _, ev := range e.queue.free {
		if ev.Fn != nil {
			t.Fatal("fired event still holds its callback in the free list")
		}
	}
}

// --- differential reference: the old container/heap implementation ---

type refEvent struct {
	at    time.Duration
	seq   uint64
	id    int
	index int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	ev := x.(*refEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// TestQueueDifferentialAgainstContainerHeap drives the specialized 4-ary
// heap and a container/heap reference through 10k random schedule/cancel
// interleavings and requires the exact same pop order — the property that
// keeps every seeded experiment byte-identical across the kernel swap.
func TestQueueDifferentialAgainstContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	var q Queue
	var ref refHeap
	var refSeq uint64

	type pending struct {
		h  Handle
		re *refEvent
	}
	var live []pending
	var gotOrder, wantOrder []int

	popBoth := func() {
		ev, ok := q.Pop()
		if !ok != (ref.Len() == 0) {
			t.Fatalf("emptiness diverged: queue ok=%v, ref len=%d", ok, ref.Len())
		}
		if !ok {
			return
		}
		q.Release(ev)
		re := heap.Pop(&ref).(*refEvent)
		if ev.At != re.at {
			t.Fatalf("pop time diverged: %v vs %v", ev.At, re.at)
		}
	}

	id := 0
	for op := 0; op < 10_000; op++ {
		switch r := rng.Intn(10); {
		case r < 6: // schedule
			// Coarse buckets force plenty of same-instant ties.
			at := time.Duration(rng.Intn(50)) * time.Millisecond
			myID := id
			id++
			h := q.Schedule(at, func() { gotOrder = append(gotOrder, myID) })
			refSeq++
			re := &refEvent{at: at, seq: refSeq, id: myID}
			heap.Push(&ref, re)
			live = append(live, pending{h: h, re: re})
		case r < 8: // cancel a random pending event
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			p := live[i]
			live = append(live[:i], live[i+1:]...)
			q.Cancel(p.h)
			if p.re.index >= 0 {
				heap.Remove(&ref, p.re.index)
			}
		default: // pop one from each, comparing
			if q.Len() == 0 {
				continue
			}
			ev, _ := q.Pop()
			ev.Fn()
			q.Release(ev)
			re := heap.Pop(&ref).(*refEvent)
			wantOrder = append(wantOrder, re.id)
			// Drop from live so cancels don't target fired events.
			for i := range live {
				if live[i].re == re {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		}
	}
	for q.Len() > 0 {
		ev, _ := q.Pop()
		ev.Fn()
		q.Release(ev)
		re := heap.Pop(&ref).(*refEvent)
		wantOrder = append(wantOrder, re.id)
	}
	popBoth() // both must agree they are empty

	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("popped %d events, reference popped %d", len(gotOrder), len(wantOrder))
	}
	for i := range gotOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("pop order diverged at %d: got id %d, reference id %d",
				i, gotOrder[i], wantOrder[i])
		}
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	c.Advance(5 * time.Second)
	c.Advance(-10 * time.Second)
	if c.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s (negative advance ignored)", c.Now())
	}
	c.Set(3 * time.Second) // earlier: ignored
	if c.Now() != 5*time.Second {
		t.Fatalf("Now = %v after backward Set, want 5s", c.Now())
	}
	c.Set(8 * time.Second)
	if c.Now() != 8*time.Second {
		t.Fatalf("Now = %v, want 8s", c.Now())
	}
}

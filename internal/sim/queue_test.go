package sim

import (
	"testing"
	"time"
)

func TestQueueOrdersByTime(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(3*time.Second, func() { got = append(got, 3) })
	q.Schedule(1*time.Second, func() { got = append(got, 1) })
	q.Schedule(2*time.Second, func() { got = append(got, 2) })

	for q.Len() > 0 {
		ev, ok := q.Pop()
		if !ok {
			t.Fatal("Pop returned !ok with non-empty queue")
		}
		ev.Fn()
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestQueueFIFOAtSameInstant(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(time.Second, func() { got = append(got, i) })
	}
	for q.Len() > 0 {
		ev, _ := q.Pop()
		ev.Fn()
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant order = %v, want FIFO", got)
		}
	}
}

func TestQueueCancel(t *testing.T) {
	var q Queue
	fired := false
	ev := q.Schedule(time.Second, func() { fired = true })
	q.Cancel(ev)
	if q.Len() != 0 {
		t.Fatalf("Len = %d after cancel, want 0", q.Len())
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after cancel")
	}
	// Double-cancel must be a no-op.
	q.Cancel(ev)
	q.Cancel(nil)
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestQueueCancelMiddle(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(1*time.Second, func() { got = append(got, 1) })
	mid := q.Schedule(2*time.Second, func() { got = append(got, 2) })
	q.Schedule(3*time.Second, func() { got = append(got, 3) })
	q.Cancel(mid)
	for q.Len() > 0 {
		ev, _ := q.Pop()
		ev.Fn()
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestQueuePeekTime(t *testing.T) {
	var q Queue
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime ok on empty queue")
	}
	q.Schedule(5*time.Second, func() {})
	q.Schedule(2*time.Second, func() {})
	at, ok := q.PeekTime()
	if !ok || at != 2*time.Second {
		t.Fatalf("PeekTime = %v, %v; want 2s, true", at, ok)
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	c.Advance(5 * time.Second)
	c.Advance(-10 * time.Second)
	if c.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s (negative advance ignored)", c.Now())
	}
	c.Set(3 * time.Second) // earlier: ignored
	if c.Now() != 5*time.Second {
		t.Fatalf("Now = %v after backward Set, want 5s", c.Now())
	}
	c.Set(8 * time.Second)
	if c.Now() != 8*time.Second {
		t.Fatalf("Now = %v, want 8s", c.Now())
	}
}

package sim

import (
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Run variants when the engine was stopped
// explicitly before reaching its goal.
var ErrStopped = errors.New("sim: engine stopped")

// Engine drives a discrete-event simulation: it repeatedly pops the earliest
// event, advances the virtual clock to it, and runs its callback.
//
// Engine is single-threaded; callbacks run on the caller's goroutine.
type Engine struct {
	clock   Clock
	queue   Queue
	rng     *RNG
	stopped bool

	// EventBudget caps the number of events processed by a single Run call
	// as a runaway guard. Zero means the default of 50 million.
	EventBudget int
}

// NewEngine returns an engine whose random source is seeded with seed.
// The same seed always yields the same simulation trajectory.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.clock.Now() }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return e.queue.Len() }

// At schedules fn at absolute virtual time t. Times in the past fire
// immediately at the current time (the clock never rewinds).
func (e *Engine) At(t time.Duration, fn func()) Handle {
	if t < e.clock.Now() {
		t = e.clock.Now()
	}
	return e.queue.Schedule(t, fn)
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return e.queue.Schedule(e.clock.Now()+d, fn)
}

// Every schedules fn to run now+d, then every d thereafter, until the
// returned stop function is called. d must be positive.
func (e *Engine) Every(d time.Duration, fn func()) (stop func(), err error) {
	if d <= 0 {
		return nil, fmt.Errorf("sim: Every period must be positive, got %v", d)
	}
	var (
		h       Handle
		halted  bool
		arrange func()
	)
	arrange = func() {
		h = e.After(d, func() {
			if halted {
				return
			}
			fn()
			if !halted {
				arrange()
			}
		})
	}
	arrange()
	return func() {
		halted = true
		e.queue.Cancel(h)
	}, nil
}

// Cancel removes a scheduled event.
func (e *Engine) Cancel(h Handle) { e.queue.Cancel(h) }

// Stop makes the current Run call return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

// RunUntil processes events in time order until the queue is empty or the
// next event would fire after deadline. The clock ends at deadline when the
// queue drains early, so successive RunUntil calls see consistent time.
func (e *Engine) RunUntil(deadline time.Duration) error {
	budget := e.EventBudget
	if budget <= 0 {
		budget = 50_000_000
	}
	e.stopped = false
	for processed := 0; ; processed++ {
		if processed >= budget {
			return fmt.Errorf("sim: event budget %d exhausted at t=%v", budget, e.clock.Now())
		}
		at, ok := e.queue.PeekTime()
		if !ok || at > deadline {
			e.clock.Set(deadline)
			return nil
		}
		ev, ok := e.queue.Pop()
		if !ok {
			e.clock.Set(deadline)
			return nil
		}
		e.clock.Set(ev.At)
		fn := ev.Fn
		e.queue.Release(ev)
		if fn != nil {
			fn()
		}
		if e.stopped {
			return ErrStopped
		}
	}
}

// Drain processes events until the queue is empty. Use with care: periodic
// processes must be stopped first or Drain will hit the event budget.
func (e *Engine) Drain() error {
	budget := e.EventBudget
	if budget <= 0 {
		budget = 50_000_000
	}
	e.stopped = false
	for processed := 0; ; processed++ {
		if processed >= budget {
			return fmt.Errorf("sim: event budget %d exhausted at t=%v", budget, e.clock.Now())
		}
		ev, ok := e.queue.Pop()
		if !ok {
			return nil
		}
		e.clock.Set(ev.At)
		fn := ev.Fn
		e.queue.Release(ev)
		if fn != nil {
			fn()
		}
		if e.stopped {
			return ErrStopped
		}
	}
}

package sim

import (
	"testing"
	"time"
)

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1000 == 999 {
			if err := e.Drain(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEngineEventLoop is the kernel event-loop benchmark tracked by
// BENCH_PERF.json: batches of out-of-order schedules drained through the
// engine, the shape every fleet experiment reduces to.
func BenchmarkEngineEventLoop(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Deterministic scatter: events land out of order within the batch.
		e.After(time.Duration((i*2654435761)%4096)*time.Microsecond, fn)
		if i%256 == 255 {
			if err := e.Drain(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEngineTimerChurn measures schedule-then-cancel churn (timeout
// guards that almost never fire).
func BenchmarkEngineTimerChurn(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := e.After(time.Duration(i%128)*time.Millisecond, fn)
		e.Cancel(h)
	}
}

func BenchmarkRNGNormal(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal(0, 1)
	}
}

package sim

import (
	"testing"
	"time"
)

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	e := NewEngine(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1000 == 999 {
			if err := e.Drain(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRNGNormal(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal(0, 1)
	}
}

package sim

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestSafeWindowHorizon(t *testing.T) {
	w, err := NewSafeWindow(3, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	w.Reset(100 * time.Millisecond)
	for lane := 0; lane < 3; lane++ {
		if got := w.Horizon(lane); got != 102*time.Millisecond {
			t.Fatalf("lane %d horizon = %v, want 102ms", lane, got)
		}
		if !w.CanAdvance(lane, 100*time.Millisecond) {
			t.Fatalf("lane %d cannot process the shared epoch time inside a positive lookahead", lane)
		}
		if w.CanAdvance(lane, 102*time.Millisecond) {
			t.Fatalf("lane %d advanced to its horizon — the window must be strict", lane)
		}
	}
	// One lane ahead raises only the others' horizons.
	w.Advance(1, 200*time.Millisecond)
	if got := w.Horizon(0); got != 102*time.Millisecond {
		t.Fatalf("lane 0 horizon = %v, still bounded by lane 2", got)
	}
	w.Advance(2, 150*time.Millisecond)
	if got := w.Horizon(0); got != 152*time.Millisecond {
		t.Fatalf("lane 0 horizon = %v, want 152ms", got)
	}
}

func TestSafeWindowZeroLookaheadBlocks(t *testing.T) {
	w, err := NewSafeWindow(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Reset(time.Second)
	if w.CanAdvance(0, time.Second) {
		t.Fatal("zero lookahead let a lane process the shared epoch time; the scheduler must fall back to serial")
	}
}

func TestSafeWindowSingleLane(t *testing.T) {
	w, err := NewSafeWindow(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Horizon(0); got != time.Duration(math.MaxInt64) {
		t.Fatalf("single-lane horizon = %v, want unbounded", got)
	}
	if !w.CanAdvance(0, time.Hour) {
		t.Fatal("single lane has no peers and must always advance")
	}
}

func TestSafeWindowRejectsZeroLanes(t *testing.T) {
	if _, err := NewSafeWindow(0, time.Millisecond); err == nil {
		t.Fatal("zero-lane window accepted")
	}
}

func TestSafeWindowBackwardAdvancePanics(t *testing.T) {
	w, err := NewSafeWindow(2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	w.Reset(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("backward advance did not panic")
		}
	}()
	w.Advance(0, 500*time.Millisecond)
}

// TestSafeWindowConcurrentLanes exercises concurrent Advance/Horizon under
// the race detector (the make verify gate): distinct lanes never race.
func TestSafeWindowConcurrentLanes(t *testing.T) {
	const lanes = 4
	w, err := NewSafeWindow(lanes, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for step := 1; step <= 50; step++ {
				at := time.Duration(step) * time.Millisecond
				for !w.CanAdvance(lane, at-time.Millisecond) {
					runtime.Gosched()
				}
				w.Advance(lane, at)
			}
		}(lane)
	}
	wg.Wait()
	for lane := 0; lane < lanes; lane++ {
		if got := w.Local(lane); got != 50*time.Millisecond {
			t.Fatalf("lane %d finished at %v", lane, got)
		}
	}
}

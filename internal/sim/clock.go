// Package sim provides a deterministic discrete-event simulation kernel.
//
// All OpenVDAP latency, energy, and loss measurements are taken against a
// virtual clock so that experiments are reproducible and fast: simulating a
// five-minute drive takes milliseconds of wall time. The kernel offers an
// event queue with stable FIFO ordering for simultaneous events, a seeded
// random source, and a small process abstraction for periodic activities.
package sim

import (
	"sync/atomic"
	"time"
)

// Clock is a virtual clock. The zero value starts at time zero.
//
// Clock has a single-writer contract: only the simulation loop may call
// Advance or Set, but Now is safe to call from any goroutine (the REST
// tier reads virtual time concurrently with a live run). The stored time
// is an atomic cell, so readers never observe a torn value.
type Clock struct {
	now atomic.Int64 // time.Duration bits
}

// Now returns the current virtual time as an offset from simulation start.
// Safe for concurrent use.
func (c *Clock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Advance moves the clock forward by d. Negative d is ignored: virtual time
// is monotonic. Single writer only.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now.Store(c.now.Load() + int64(d))
	}
}

// Set jumps the clock to t if t is later than the current time. Single
// writer only.
func (c *Clock) Set(t time.Duration) {
	if int64(t) > c.now.Load() {
		c.now.Store(int64(t))
	}
}

// Package sim provides a deterministic discrete-event simulation kernel.
//
// All OpenVDAP latency, energy, and loss measurements are taken against a
// virtual clock so that experiments are reproducible and fast: simulating a
// five-minute drive takes milliseconds of wall time. The kernel offers an
// event queue with stable FIFO ordering for simultaneous events, a seeded
// random source, and a small process abstraction for periodic activities.
package sim

import "time"

// Clock is a virtual clock. The zero value starts at time zero.
//
// Clock is not safe for concurrent use; the simulation kernel is
// single-threaded by design (determinism is the point).
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time as an offset from simulation start.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative d is ignored: virtual time
// is monotonic.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// Set jumps the clock to t if t is later than the current time.
func (c *Clock) Set(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

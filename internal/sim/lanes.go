// Conservative parallel-DES support: per-lane virtual clocks and the
// lookahead safe window.
//
// A SafeWindow coordinates lanes that process simulation work
// concurrently under the classic conservative (null-message style) rule:
// lane i may process work at virtual time t only while t is below its
// horizon — the minimum over every other lane's local virtual time plus
// the lookahead. The lookahead is the model's guaranteed propagation
// delay between lanes (for the fleet commit scheduler: the minimum
// one-way network latency between interaction domains), so no lane can
// receive an influence earlier than a peer's clock plus lookahead, and
// advancing inside the window can never violate causality.
//
// In the epoch-barrier executor every lane commits at the same epoch
// timestamp, so with any positive lookahead the window check always
// passes — the structure earns its keep as the guard that makes that
// assumption explicit (a non-positive lookahead forces the serial path)
// and as the bookkeeping cross-epoch lane pipelining would need.
package sim

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// SafeWindow tracks per-lane local virtual time under a fixed lookahead.
// Local, Advance, Horizon, and CanAdvance are safe for concurrent use by
// distinct lanes; Reset requires exclusive access (a phase boundary).
type SafeWindow struct {
	lookahead time.Duration
	lvt       []atomic.Int64
}

// NewSafeWindow returns a window over the given number of lanes (>= 1),
// all starting at local virtual time zero.
func NewSafeWindow(lanes int, lookahead time.Duration) (*SafeWindow, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("sim: safe window needs at least one lane, got %d", lanes)
	}
	return &SafeWindow{lookahead: lookahead, lvt: make([]atomic.Int64, lanes)}, nil
}

// Lanes returns the lane count.
func (w *SafeWindow) Lanes() int { return len(w.lvt) }

// Lookahead returns the inter-lane propagation bound.
func (w *SafeWindow) Lookahead() time.Duration { return w.lookahead }

// Reset sets every lane's local virtual time to t (a phase boundary; not
// concurrent with lane advances).
func (w *SafeWindow) Reset(t time.Duration) {
	for i := range w.lvt {
		w.lvt[i].Store(int64(t))
	}
}

// Local returns lane's local virtual time.
func (w *SafeWindow) Local(lane int) time.Duration {
	return time.Duration(w.lvt[lane].Load())
}

// Advance moves lane's local virtual time forward to t. Moving a clock
// backward is a scheduling bug, not a recoverable condition: it panics.
func (w *SafeWindow) Advance(lane int, t time.Duration) {
	if prev := time.Duration(w.lvt[lane].Load()); t < prev {
		panic(fmt.Sprintf("sim: safe-window lane %d advancing backward (%v -> %v)", lane, prev, t))
	}
	w.lvt[lane].Store(int64(t))
}

// Horizon returns the latest virtual time lane may safely process work
// strictly below: the minimum over every other lane's local virtual time
// plus the lookahead. A single-lane window has no peers and therefore no
// horizon (the maximum duration).
func (w *SafeWindow) Horizon(lane int) time.Duration {
	horizon := time.Duration(math.MaxInt64)
	for i := range w.lvt {
		if i == lane {
			continue
		}
		if h := time.Duration(w.lvt[i].Load()) + w.lookahead; h < horizon {
			horizon = h
		}
	}
	return horizon
}

// CanAdvance reports whether lane may process work stamped t now: t must
// lie strictly inside the lane's horizon. With every lane at the same
// clock this requires a positive lookahead — the conservative rule that
// lets the fleet's epoch-synchronous commit lanes run without exchanging
// null messages.
func (w *SafeWindow) CanAdvance(lane int, t time.Duration) bool {
	return t < w.Horizon(lane)
}

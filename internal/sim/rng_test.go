package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collided on %d/100 draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	if err := quick.Check(func(seed int64, n int) bool {
		if n < 0 {
			n = -n
		}
		n = n%1000 + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
	if NewRNG(1).Intn(0) != 0 || NewRNG(1).Intn(-5) != 0 {
		t.Fatal("Intn(n<=0) != 0")
	}
}

func TestRNGBernoulliExtremes(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestRNGBernoulliMean(t *testing.T) {
	r := NewRNG(11)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	mean := float64(hits) / n
	if math.Abs(mean-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) mean = %v, want ~0.3", mean)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Fatalf("Normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestRNGExponentialMean(t *testing.T) {
	r := NewRNG(9)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(4)
	}
	mean := sum / n
	if math.Abs(mean-4) > 0.15 {
		t.Fatalf("Exponential(4) mean = %v, want ~4", mean)
	}
	if r.Exponential(0) != 0 || r.Exponential(-1) != 0 {
		t.Fatal("Exponential(mean<=0) != 0")
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
	if got := r.Uniform(5, 2); got != 5 {
		t.Fatalf("Uniform with hi<=lo = %v, want lo", got)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := NewRNG(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(21)
	child := parent.Fork()
	// The child stream must differ from the parent's continued stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("fork stream matched parent on %d/100 draws", same)
	}
}

func TestRNGCloneContinuesSameStream(t *testing.T) {
	a := NewRNG(7)
	a.Uint64()
	b := a.Clone()
	for i := 0; i < 50; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("clone diverged at draw %d: %x != %x", i, av, bv)
		}
	}
}

// TestNewStreamKeyedSubstreams: streams are deterministic functions of
// (seed, index) and distinct streams diverge immediately.
func TestNewStreamKeyedSubstreams(t *testing.T) {
	a1, a2 := NewStream(42, 3), NewStream(42, 3)
	for i := 0; i < 100; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatal("same (seed, stream) produced different values")
		}
	}
	b, c := NewStream(42, 0), NewStream(42, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent streams collided on %d of 100 draws", same)
	}
	d, e := NewStream(1, 7), NewStream(2, 7)
	if d.Uint64() == e.Uint64() {
		t.Fatal("different seeds produced the same stream")
	}
}

package sim

import "math"

// RNG is a small, fast, deterministic random source (splitmix64 core).
// It avoids math/rand so that simulation streams are stable across Go
// releases and can be forked into independent substreams.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	r := &RNG{state: uint64(seed)}
	// Warm up so small seeds diverge immediately.
	r.Uint64()
	r.Uint64()
	return r
}

// NewStream returns a generator for the stream-th independent substream of
// seed. Replication harnesses key each worker's stream by its replication
// index, so a replication draws the same values no matter which worker runs
// it or how many workers exist — the basis of the deterministic-merge
// guarantee.
func NewStream(seed int64, stream uint64) *RNG {
	r := &RNG{state: uint64(seed) ^ (stream+1)*0x9e3779b97f4a7c15}
	// Warm up so adjacent (seed, stream) pairs diverge immediately.
	r.Uint64()
	r.Uint64()
	return r
}

// Clone returns a copy that continues the same stream without perturbing
// the original (snapshot semantics for copied consumers).
func (r *RNG) Clone() *RNG {
	cp := *r
	return &cp
}

// Fork returns an independent substream derived from the current state.
// Forked streams do not perturb the parent beyond the single draw used to
// derive them, which keeps experiment components independent.
func (r *RNG) Fork() *RNG {
	child := &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
	child.Uint64()
	return child
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It returns 0 when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box-Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Exponential returns an exponentially distributed value with the given
// mean. It returns 0 when mean <= 0.
func (r *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

package sim

import (
	"errors"
	"testing"
	"time"
)

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []time.Duration
	e.After(time.Second, func() { fired = append(fired, e.Now()) })
	e.After(3*time.Second, func() { fired = append(fired, e.Now()) })
	e.After(10*time.Second, func() { fired = append(fired, e.Now()) })

	if err := e.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events before deadline, want 2", len(fired))
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("clock = %v after RunUntil(5s), want 5s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineClockAdvancesWithEvents(t *testing.T) {
	e := NewEngine(1)
	var at time.Duration
	e.After(7*time.Second, func() { at = e.Now() })
	if err := e.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if at != 7*time.Second {
		t.Fatalf("callback saw t=%v, want 7s", at)
	}
}

func TestEngineEventsScheduleEvents(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var grow func()
	grow = func() {
		depth++
		if depth < 5 {
			e.After(time.Second, grow)
		}
	}
	e.After(time.Second, grow)
	if err := e.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", e.Now())
	}
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine(1)
	ticks := 0
	stop, err := e.Every(time.Second, func() { ticks++ })
	if err != nil {
		t.Fatalf("Every: %v", err)
	}
	if err := e.RunUntil(10 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	stop()
	if err := e.RunUntil(20 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d after stop, want 10", ticks)
	}
}

func TestEngineEveryRejectsNonPositive(t *testing.T) {
	e := NewEngine(1)
	if _, err := e.Every(0, func() {}); err == nil {
		t.Fatal("Every(0) succeeded, want error")
	}
	if _, err := e.Every(-time.Second, func() {}); err == nil {
		t.Fatal("Every(-1s) succeeded, want error")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.After(time.Second, func() { ran++; e.Stop() })
	e.After(2*time.Second, func() { ran++ })
	err := e.RunUntil(time.Minute)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
}

func TestEngineEventBudget(t *testing.T) {
	e := NewEngine(1)
	e.EventBudget = 10
	var loop func()
	loop = func() { e.After(time.Second, loop) }
	e.After(time.Second, loop)
	if err := e.Drain(); err == nil {
		t.Fatal("Drain with infinite event loop succeeded, want budget error")
	}
}

func TestEnginePastScheduleFiresNow(t *testing.T) {
	e := NewEngine(1)
	e.After(5*time.Second, func() {
		e.At(time.Second, func() {}) // in the past relative to t=5s
	})
	if err := e.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s (past event clamps to now)", e.Now())
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []float64 {
		e := NewEngine(42)
		var vals []float64
		stop, err := e.Every(time.Second, func() { vals = append(vals, e.RNG().Float64()) })
		if err != nil {
			t.Fatalf("Every: %v", err)
		}
		if err := e.RunUntil(10 * time.Second); err != nil {
			t.Fatalf("RunUntil: %v", err)
		}
		stop()
		return vals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

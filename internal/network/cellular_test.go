package network

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

const (
	mph35 = 15.6464
	mph70 = 31.2928
)

func TestLossComponentsAtRest(t *testing.T) {
	if got := CongestionLoss(3.8); math.Abs(got-0.002) > 1e-9 {
		t.Fatalf("CongestionLoss(3.8) = %v, want 0.002", got)
	}
	if CongestionLoss(0) != 0 || CongestionLoss(-1) != 0 {
		t.Fatal("non-positive bitrate congestion != 0")
	}
	if FadeLoss(0, 3.8) != 0 {
		t.Fatal("fade at rest != 0")
	}
	if OutageFraction(0) != 0 {
		t.Fatal("outage at rest != 0")
	}
}

func TestLossMonotonicity(t *testing.T) {
	// Loss must increase with speed and with bitrate.
	speeds := []float64{0, 5, 10, 15, 20, 25, 30, 35}
	for i := 1; i < len(speeds); i++ {
		a := ExpectedPacketLoss(speeds[i-1], 3.8)
		b := ExpectedPacketLoss(speeds[i], 3.8)
		if b < a {
			t.Fatalf("loss decreased with speed: %v@%v -> %v@%v", a, speeds[i-1], b, speeds[i])
		}
	}
	for _, v := range speeds {
		if ExpectedPacketLoss(v, 5.8) < ExpectedPacketLoss(v, 3.8) {
			t.Fatalf("1080P loss below 720P at speed %v", v)
		}
	}
}

// TestFigure2PacketLossCalibration checks the closed-form model against the
// paper's six measured packet-loss points. Tolerances are loose by design:
// the goal is shape, not decimal equality.
func TestFigure2PacketLossCalibration(t *testing.T) {
	cases := []struct {
		name    string
		speed   float64
		bitrate float64
		want    float64
		tol     float64
	}{
		{"static-720p", 0, 3.8, 0.002, 0.002},
		{"static-1080p", 0, 5.8, 0.006, 0.004},
		{"35mph-720p", mph35, 3.8, 0.021, 0.010},
		{"35mph-1080p", mph35, 5.8, 0.070, 0.020},
		{"70mph-720p", mph70, 3.8, 0.535, 0.060},
		{"70mph-1080p", mph70, 5.8, 0.617, 0.060},
	}
	for _, tc := range cases {
		got := ExpectedPacketLoss(tc.speed, tc.bitrate)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("%s: loss = %.4f, paper %.4f (tol %.3f)", tc.name, got, tc.want, tc.tol)
		}
	}
}

func newTestChannel(t *testing.T, speedMS, bitrate float64, seed int64) *CellularChannel {
	t.Helper()
	road, err := geo.NewRoad(40000)
	if err != nil {
		t.Fatal(err)
	}
	road.PlaceStations(40, geo.BaseStation, 800, 0, "bs") // 1 km spacing
	mob := geo.Mobility{Road: road, SpeedMS: speedMS}
	ch, err := NewCellularChannel(Catalog()["lte"], mob, bitrate, sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// TestChannelMatchesClosedForm drives packets through the event channel and
// checks the empirical loss approaches the closed-form expectation.
func TestChannelMatchesClosedForm(t *testing.T) {
	for _, speed := range []float64{0, mph35, mph70} {
		ch := newTestChannel(t, speed, 5.8, 99)
		// 5.8 Mbps with 1316 B payloads ≈ 551 packets/s for 5 minutes.
		payloadBits := 1316.0 * 8
		interval := time.Duration(float64(time.Second) * payloadBits / 5.8e6)
		now := time.Duration(0)
		for i := 0; i < 551*300; i++ {
			ch.SendPacket(now)
			now += interval
		}
		want := ExpectedPacketLoss(speed, 5.8)
		got := ch.LossRate()
		if math.Abs(got-want) > 0.05 {
			t.Errorf("speed %.1f: channel loss %.4f vs closed-form %.4f", speed, got, want)
		}
	}
}

func TestChannelLossIsBursty(t *testing.T) {
	// At 70 MPH most losses come from outage windows, so consecutive
	// losses should be far more common than under independent loss.
	ch := newTestChannel(t, mph70, 3.8, 7)
	interval := 2770 * time.Microsecond
	now := time.Duration(0)
	var prevLost bool
	losses, runs := 0, 0
	for i := 0; i < 100000; i++ {
		ok := ch.SendPacket(now)
		if !ok {
			losses++
			if prevLost {
				runs++
			}
		}
		prevLost = !ok
		now += interval
	}
	if losses == 0 {
		t.Fatal("no losses at 70 MPH")
	}
	p := ch.LossRate()
	// Under independence, P(loss | prev loss) == p. Burstiness should make
	// the conditional probability much larger.
	conditional := float64(runs) / float64(losses)
	if conditional < 1.5*p {
		t.Fatalf("loss not bursty: P(loss|loss) = %.3f vs marginal %.3f", conditional, p)
	}
}

func TestChannelStaticHasNoOutages(t *testing.T) {
	ch := newTestChannel(t, 0, 3.8, 3)
	for d := time.Duration(0); d < 10*time.Minute; d += time.Second {
		if ch.InOutage(d) {
			t.Fatal("static vehicle entered outage")
		}
	}
}

func TestNewCellularChannelValidation(t *testing.T) {
	mob := geo.Mobility{}
	if _, err := NewCellularChannel(LinkSpec{}, mob, 3.8, sim.NewRNG(1)); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := NewCellularChannel(Catalog()["lte"], mob, 0, sim.NewRNG(1)); err == nil {
		t.Fatal("zero bitrate accepted")
	}
	if _, err := NewCellularChannel(Catalog()["lte"], mob, 3.8, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestChannelStats(t *testing.T) {
	ch := newTestChannel(t, 0, 3.8, 5)
	if ch.LossRate() != 0 {
		t.Fatal("loss rate nonzero before any packet")
	}
	for i := 0; i < 100; i++ {
		ch.SendPacket(time.Duration(i) * time.Millisecond)
	}
	sent, lost := ch.Stats()
	if sent != 100 {
		t.Fatalf("sent = %d, want 100", sent)
	}
	if lost < 0 || lost > sent {
		t.Fatalf("lost = %d out of range", lost)
	}
}

// TestZeroDwellChannelAtLargeTime: regression for the advanceTo infinite
// loop — a parked vehicle (dwell 0) queried at a virtual time at or beyond
// the far-future handoff sentinel must answer, not spin forever.
func TestZeroDwellChannelAtLargeTime(t *testing.T) {
	lte, err := LookupLink("lte")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewCellularChannel(lte, geo.Mobility{SpeedMS: 0}, 3.8, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool, 1)
	go func() {
		// Past the MaxInt64/2 sentinel: the pre-fix loop advanced the
		// schedule by a zero dwell forever here.
		done <- ch.SendPacket(time.Duration(math.MaxInt64/2) + time.Hour)
	}()
	select {
	case delivered := <-done:
		if !delivered {
			t.Fatal("parked vehicle lost a packet to a handoff outage")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("zero-dwell channel spun forever in advanceTo")
	}
	if ch.InOutage(time.Duration(math.MaxInt64 - 1)) {
		t.Fatal("parked vehicle reported a handoff outage")
	}
	sent, lost := ch.Stats()
	if sent != 1 || lost != 0 {
		t.Fatalf("stats = (%d, %d), want (1, 0)", sent, lost)
	}
}

package network

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

func BenchmarkSendPacket(b *testing.B) {
	road, err := geo.NewRoad(40000)
	if err != nil {
		b.Fatal(err)
	}
	road.PlaceStations(40, geo.BaseStation, 800, 0, "bs")
	ch, err := NewCellularChannel(Catalog()["lte"], geo.Mobility{Road: road, SpeedMS: 30}, 5.8, sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	interval := 2 * time.Millisecond
	now := time.Duration(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.SendPacket(now)
		now += interval
	}
}

func BenchmarkPathTransferTime(b *testing.B) {
	lte := Catalog()["lte"]
	wan := Catalog()["wan"]
	p := Path{Name: "bench", Links: []LinkSpec{lte, wan}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.TransferTime(1e6, Uplink); err != nil {
			b.Fatal(err)
		}
	}
}

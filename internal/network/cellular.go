package network

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Figure-2 loss-model calibration constants. The model composes three
// mechanisms, each of which the paper identifies in §III-A:
//
//  1. Congestion loss: a stream whose bitrate presses against the shared
//     uplink loses a small baseline of packets even at rest, superlinear in
//     the bitrate (p0 · (B/Bref)^congestionExp).
//  2. Fade loss: Doppler / multipath at speed; grows quadratically with
//     speed and superlinearly with bitrate.
//  3. Handoff outage: the fraction of time the modem is detached while
//     crossing cell boundaries. Dwell time shrinks linearly with speed
//     while reattachment at speed suffers radio-link failures, so the
//     detached fraction rises sharply — modeled as a logistic in speed.
//
// With the paper's two operating points (35 MPH, 70 MPH; 3.8 and 5.8 Mbps
// streams) these constants reproduce Figure 2's packet-loss rates within a
// few points; see EXPERIMENTS.md for the side-by-side.
const (
	congestionP0   = 0.002   // loss of a 3.8 Mbps stream at rest
	congestionBref = 3.8     // Mbps reference bitrate
	congestionExp  = 2.6     // superlinearity in bitrate
	fadeP0         = 0.013   // fade loss at 35 MPH for the reference stream
	fadeVrefMS     = 15.6464 // 35 MPH in m/s
	fadeSpeedExp   = 2.0     // quadratic in speed
	fadeBitrateExp = 3.6     // superlinearity in bitrate
	outageMax      = 0.62    // saturating detached fraction
	outageMidMS    = 28.0    // speed at half-saturation (m/s)
	outageScaleMS  = 2.5     // logistic steepness (m/s)
)

// CongestionLoss returns the at-rest loss probability for a stream of the
// given bitrate (Mbps).
func CongestionLoss(bitrateMbps float64) float64 {
	if bitrateMbps <= 0 {
		return 0
	}
	return clampProb(congestionP0 * math.Pow(bitrateMbps/congestionBref, congestionExp))
}

// FadeLoss returns the speed-dependent fading loss probability for a stream
// of the given bitrate (Mbps) at the given speed (m/s).
func FadeLoss(speedMS, bitrateMbps float64) float64 {
	if speedMS <= 0 || bitrateMbps <= 0 {
		return 0
	}
	p := fadeP0 * math.Pow(speedMS/fadeVrefMS, fadeSpeedExp) * math.Pow(bitrateMbps/congestionBref, fadeBitrateExp)
	return clampProb(p)
}

// OutageFraction returns the expected fraction of drive time the modem is
// detached (handoff / radio-link-failure state) at the given speed (m/s).
func OutageFraction(speedMS float64) float64 {
	if speedMS <= 0 {
		return 0
	}
	return clampProb(outageMax / (1 + math.Exp(-(speedMS-outageMidMS)/outageScaleMS)))
}

// ExpectedPacketLoss composes the three mechanisms into a single per-packet
// loss probability — the closed-form counterpart of the event-driven
// channel below, used by the offloading estimator.
func ExpectedPacketLoss(speedMS, bitrateMbps float64) float64 {
	pc := CongestionLoss(bitrateMbps)
	pf := FadeLoss(speedMS, bitrateMbps)
	po := OutageFraction(speedMS)
	return clampProb(1 - (1-pc)*(1-pf)*(1-po))
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 0.995 {
		return 0.995
	}
	return p
}

// CellularChannel is an event-driven LTE/5G uplink bound to a moving
// vehicle. It realizes the loss model mechanistically: handoff events
// derived from the vehicle's mobility open outage windows during which all
// packets are lost; outside outages, packets suffer independent
// congestion + fade loss.
type CellularChannel struct {
	spec LinkSpec
	mob  geo.Mobility
	rng  *sim.RNG

	bitrateMbps float64

	// Outage window state, generated lazily as virtual time advances.
	nextHandoffAt time.Duration
	outageUntil   time.Duration
	dwell         time.Duration

	sent int
	lost int

	reg *telemetry.Registry
}

// SetTelemetry mirrors per-packet outcomes and outage windows into a
// registry under `network.cellular.*` (nil detaches).
func (c *CellularChannel) SetTelemetry(reg *telemetry.Registry) { c.reg = reg }

// count bumps a counter when a registry is attached.
func (c *CellularChannel) count(name string) {
	if c.reg != nil {
		c.reg.Add(name, 1)
	}
}

// NewCellularChannel builds a channel for a stream of the given bitrate
// over the given link, carried by a vehicle with the given mobility.
func NewCellularChannel(spec LinkSpec, mob geo.Mobility, bitrateMbps float64, rng *sim.RNG) (*CellularChannel, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if bitrateMbps <= 0 {
		return nil, fmt.Errorf("network: stream bitrate must be positive, got %v", bitrateMbps)
	}
	if rng == nil {
		return nil, fmt.Errorf("network: nil RNG")
	}
	c := &CellularChannel{spec: spec, mob: mob, rng: rng, bitrateMbps: bitrateMbps}
	c.dwell = c.dwellTime()
	if c.dwell > 0 && mob.SpeedMS > 0 {
		// First boundary crossing is uniformly placed within one dwell.
		c.nextHandoffAt = time.Duration(rng.Uniform(0, float64(c.dwell)))
	} else {
		c.nextHandoffAt = time.Duration(math.MaxInt64 / 2)
	}
	return c, nil
}

// dwellTime derives per-cell dwell from the road's base-station layout, or
// from the link's nominal range when no road is attached.
func (c *CellularChannel) dwellTime() time.Duration {
	if c.mob.SpeedMS <= 0 {
		return 0
	}
	spacing := 2 * c.spec.RangeM // fallback: diameter of nominal coverage
	if c.mob.Road != nil {
		if n := len(c.mob.Road.StationsOfKind(geo.BaseStation)); n > 0 {
			spacing = c.mob.Road.Length / float64(n)
		}
	}
	if spacing <= 0 {
		return 0
	}
	return time.Duration(spacing / c.mob.SpeedMS * float64(time.Second))
}

// advanceTo rolls the outage-window schedule forward to virtual time t.
func (c *CellularChannel) advanceTo(t time.Duration) {
	// A non-positive dwell means the vehicle never crosses a cell boundary
	// (parked, or a degenerate station layout): there is no schedule to
	// advance, and stepping the loop by zero would spin forever once t
	// reaches the far-future sentinel.
	if c.dwell <= 0 {
		return
	}
	for c.nextHandoffAt <= t {
		// Outage duration: the logistic detached-fraction of one dwell,
		// jittered ±25% so GOP boundaries don't phase-lock to outages.
		frac := OutageFraction(c.mob.SpeedMS)
		mean := frac * float64(c.dwell)
		dur := time.Duration(c.rng.Uniform(0.75*mean, 1.25*mean))
		c.outageUntil = c.nextHandoffAt + dur
		c.nextHandoffAt += c.dwell
		c.count("network.cellular.handoffs")
	}
}

// InOutage reports whether the modem is detached at virtual time t.
// Time must not move backwards across calls.
func (c *CellularChannel) InOutage(t time.Duration) bool {
	c.advanceTo(t)
	return t < c.outageUntil
}

// SendPacket attempts to deliver one packet at virtual time t and returns
// whether it arrived. Calls must have non-decreasing t.
func (c *CellularChannel) SendPacket(t time.Duration) bool {
	c.sent++
	c.count("network.cellular.packets_sent")
	if c.InOutage(t) {
		c.lost++
		c.count("network.cellular.packets_lost_outage")
		return false
	}
	pc := CongestionLoss(c.bitrateMbps)
	pf := FadeLoss(c.mob.SpeedMS, c.bitrateMbps)
	pInd := clampProb(1 - (1-pc)*(1-pf))
	if c.rng.Bernoulli(pInd) {
		c.lost++
		c.count("network.cellular.packets_lost_fade")
		return false
	}
	return true
}

// Stats returns packets sent and lost so far.
func (c *CellularChannel) Stats() (sent, lost int) { return c.sent, c.lost }

// LossRate returns the observed packet-loss rate (0 when nothing sent).
func (c *CellularChannel) LossRate() float64 {
	if c.sent == 0 {
		return 0
	}
	return float64(c.lost) / float64(c.sent)
}

package network

import (
	"time"

	"repro/internal/telemetry"
)

// Meter records link-layer activity into a telemetry registry under
// `network.*` metric names. A nil *Meter is inert, so callers on the
// offload path can carry one unconditionally.
type Meter struct {
	reg *telemetry.Registry
}

// NewMeter wraps a registry (nil registry yields an inert meter).
func NewMeter(reg *telemetry.Registry) *Meter {
	if reg == nil {
		return nil
	}
	return &Meter{reg: reg}
}

// RecordTransfer accounts one reliable transfer over a path: totals, a
// latency histogram, per-path counters, and the worst per-hop loss seen.
func (m *Meter) RecordTransfer(p Path, sizeBytes float64, d Direction, dur time.Duration) {
	if m == nil {
		return
	}
	m.reg.Add("network.transfers", 1)
	if d == Downlink {
		m.reg.Add("network.bytes_down", sizeBytes)
	} else {
		m.reg.Add("network.bytes_up", sizeBytes)
	}
	m.reg.ObserveDuration("network.transfer_ms", dur)
	if p.Name != "" {
		m.reg.Add("network.path."+p.Name+".transfers", 1)
		m.reg.Add("network.path."+p.Name+".bytes", sizeBytes)
	}
	m.reg.Observe("network.loss", WorstLoss(p))
}

// WorstLoss returns the highest per-hop loss probability along the path —
// the figure the mobility-degradation model raises with speed.
func WorstLoss(p Path) float64 {
	var worst float64
	for _, l := range p.Links {
		if l.BaseLoss > worst {
			worst = l.BaseLoss
		}
	}
	return worst
}

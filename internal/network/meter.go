package network

import (
	"time"

	"repro/internal/telemetry"
)

// Meter records link-layer activity into a telemetry registry under
// `network.*` metric names. A nil *Meter is inert, so callers on the
// offload path can carry one unconditionally. The fixed-name metrics are
// resolved to interned handles at construction; per-path counters are
// interned on first use, so steady-state transfer accounting never touches
// the registry lock or rebuilds metric names.
type Meter struct {
	reg        *telemetry.Registry
	transfers  *telemetry.Counter
	bytesUp    *telemetry.Counter
	bytesDown  *telemetry.Counter
	transferMS *telemetry.HistogramHandle
	loss       *telemetry.HistogramHandle
	perPath    map[string]pathCounters
}

// pathCounters is one path's interned counter pair.
type pathCounters struct {
	transfers *telemetry.Counter
	bytes     *telemetry.Counter
}

// NewMeter wraps a registry (nil registry yields an inert meter).
func NewMeter(reg *telemetry.Registry) *Meter {
	if reg == nil {
		return nil
	}
	return &Meter{
		reg:        reg,
		transfers:  reg.CounterHandle("network.transfers"),
		bytesUp:    reg.CounterHandle("network.bytes_up"),
		bytesDown:  reg.CounterHandle("network.bytes_down"),
		transferMS: reg.HistogramHandle("network.transfer_ms"),
		loss:       reg.HistogramHandle("network.loss"),
		perPath:    make(map[string]pathCounters),
	}
}

// RecordTransfer accounts one reliable transfer over a path: totals, a
// latency histogram, per-path counters, and the worst per-hop loss seen.
func (m *Meter) RecordTransfer(p Path, sizeBytes float64, d Direction, dur time.Duration) {
	if m == nil {
		return
	}
	m.transfers.Inc()
	if d == Downlink {
		m.bytesDown.Add(sizeBytes)
	} else {
		m.bytesUp.Add(sizeBytes)
	}
	m.transferMS.ObserveDuration(dur)
	if p.Name != "" {
		pc, ok := m.perPath[p.Name]
		if !ok {
			pc = pathCounters{
				transfers: m.reg.CounterHandle("network.path." + p.Name + ".transfers"),
				bytes:     m.reg.CounterHandle("network.path." + p.Name + ".bytes"),
			}
			m.perPath[p.Name] = pc
		}
		pc.transfers.Inc()
		pc.bytes.Add(sizeBytes)
	}
	m.loss.Observe(WorstLoss(p))
}

// WorstLoss returns the highest per-hop loss probability along the path —
// the figure the mobility-degradation model raises with speed.
func WorstLoss(p Path) float64 {
	var worst float64
	for _, l := range p.Links {
		if l.BaseLoss > worst {
			worst = l.BaseLoss
		}
	}
	return worst
}

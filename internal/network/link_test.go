package network

import (
	"math"
	"testing"
	"time"
)

func TestCatalogAllValid(t *testing.T) {
	cat := Catalog()
	if len(cat) < 6 {
		t.Fatalf("catalog has %d links, want >= 6", len(cat))
	}
	for name, l := range cat {
		if err := l.Validate(); err != nil {
			t.Errorf("link %s invalid: %v", name, err)
		}
	}
}

func TestLookupLink(t *testing.T) {
	l, err := LookupLink("lte")
	if err != nil || l.Tech != LTE {
		t.Fatalf("LookupLink(lte) = %v, %v", l, err)
	}
	if _, err := LookupLink("carrier-pigeon"); err == nil {
		t.Fatal("unknown link lookup succeeded")
	}
}

func TestLinkValidate(t *testing.T) {
	bad := []LinkSpec{
		{},
		{Name: "x", UpMbps: 0, DownMbps: 10},
		{Name: "x", UpMbps: 10, DownMbps: 0},
		{Name: "x", UpMbps: 10, DownMbps: 10, BaseLoss: 1},
		{Name: "x", UpMbps: 10, DownMbps: 10, BaseLoss: -0.1},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: Validate passed for %+v", i, l)
		}
	}
}

func TestTransferTime(t *testing.T) {
	l := LinkSpec{Name: "t", Tech: WiFi, UpMbps: 8, DownMbps: 80, RTT: 10 * time.Millisecond}
	// 1 MB at 8 Mbps = 1s + RTT.
	up, err := l.TransferTime(1e6, Uplink)
	if err != nil {
		t.Fatal(err)
	}
	if want := time.Second + 10*time.Millisecond; up != want {
		t.Fatalf("uplink transfer = %v, want %v", up, want)
	}
	down, _ := l.TransferTime(1e6, Downlink)
	if want := 100*time.Millisecond + 10*time.Millisecond; down != want {
		t.Fatalf("downlink transfer = %v, want %v", down, want)
	}
	zero, _ := l.TransferTime(0, Uplink)
	if zero != l.RTT {
		t.Fatalf("zero-byte transfer = %v, want RTT", zero)
	}
	if _, err := l.TransferTime(-1, Uplink); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestTransferTimeLossInflation(t *testing.T) {
	clean := LinkSpec{Name: "c", UpMbps: 8, DownMbps: 8}
	lossy := LinkSpec{Name: "l", UpMbps: 8, DownMbps: 8, BaseLoss: 0.5}
	tc, _ := clean.TransferTime(1e6, Uplink)
	tl, _ := lossy.TransferTime(1e6, Uplink)
	if math.Abs(float64(tl)/float64(tc)-2) > 1e-9 {
		t.Fatalf("50%% loss should double transfer time: clean %v lossy %v", tc, tl)
	}
}

func TestPathTransferAndBottleneck(t *testing.T) {
	lte, _ := LookupLink("lte")
	wan, _ := LookupLink("wan")
	p := Path{Name: "vehicle-cloud", Links: []LinkSpec{lte, wan}}
	if got := p.BottleneckMbps(Uplink); got != lte.UpMbps {
		t.Fatalf("bottleneck up = %v, want %v", got, lte.UpMbps)
	}
	if got := p.BottleneckMbps(Downlink); got != lte.DownMbps {
		t.Fatalf("bottleneck down = %v, want %v", got, lte.DownMbps)
	}
	total, err := p.TransferTime(1e6, Uplink)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := lte.TransferTime(1e6, Uplink)
	t2, _ := wan.TransferTime(1e6, Uplink)
	if total != t1+t2 {
		t.Fatalf("path transfer = %v, want %v", total, t1+t2)
	}
	if p.RTT() != lte.RTT+wan.RTT {
		t.Fatalf("path RTT = %v, want sum", p.RTT())
	}
	var empty Path
	if _, err := empty.TransferTime(1, Uplink); err == nil {
		t.Fatal("empty path transfer succeeded")
	}
	if empty.BottleneckMbps(Uplink) != 0 {
		t.Fatal("empty path bottleneck != 0")
	}
}

func TestTechString(t *testing.T) {
	if DSRC.String() != "dsrc" || FiveG.String() != "5g" || Tech(77).String() != "tech(77)" {
		t.Fatal("tech names wrong")
	}
}

func TestOneWayLatency(t *testing.T) {
	l := LinkSpec{Name: "x", UpMbps: 1, DownMbps: 1, RTT: 20 * time.Millisecond}
	if l.OneWayLatency() != 10*time.Millisecond {
		t.Fatalf("one-way = %v, want 10ms", l.OneWayLatency())
	}
}

// Package network models OpenVDAP's communication substrate: generic link
// specifications (DSRC, LTE, 5G, WiFi, BLE, wired backhaul) used by the
// offloading engine, and a mechanistic cellular uplink channel whose
// mobility-dependent loss reproduces the paper's Figure-2 drive test.
package network

import (
	"fmt"
	"time"
)

// Tech enumerates link technologies available on the VCU (paper §IV-A).
type Tech int

const (
	// DSRC is dedicated short-range communication (V2V / V2-RSU).
	DSRC Tech = iota + 1
	// LTE is 4G cellular.
	LTE
	// FiveG is 5G cellular.
	FiveG
	// WiFi is 802.11 to nearby infrastructure.
	WiFi
	// BLE is Bluetooth low energy (passenger devices).
	BLE
	// Wired is Ethernet / optical fiber (RSU or base station to cloud).
	Wired
)

var techNames = map[Tech]string{
	DSRC: "dsrc", LTE: "lte", FiveG: "5g", WiFi: "wifi", BLE: "ble", Wired: "wired",
}

// String returns the lower-case technology name.
func (t Tech) String() string {
	if s, ok := techNames[t]; ok {
		return s
	}
	return fmt.Sprintf("tech(%d)", int(t))
}

// LinkSpec describes a point-to-point link's nominal characteristics.
type LinkSpec struct {
	Name     string
	Tech     Tech
	UpMbps   float64       // uplink bandwidth, megabits per second
	DownMbps float64       // downlink bandwidth
	RTT      time.Duration // round-trip propagation + protocol latency
	BaseLoss float64       // residual packet loss probability at rest
	RangeM   float64       // usable range in meters (0 = unlimited)
}

// Validate reports configuration errors.
func (l LinkSpec) Validate() error {
	if l.Name == "" {
		return fmt.Errorf("network: link has no name")
	}
	if l.UpMbps <= 0 || l.DownMbps <= 0 {
		return fmt.Errorf("network: link %s must have positive bandwidth", l.Name)
	}
	if l.BaseLoss < 0 || l.BaseLoss >= 1 {
		return fmt.Errorf("network: link %s loss %v outside [0,1)", l.Name, l.BaseLoss)
	}
	return nil
}

// Direction selects which side of an asymmetric link a transfer uses.
type Direction int

const (
	// Uplink is from the vehicle toward infrastructure.
	Uplink Direction = iota + 1
	// Downlink is from infrastructure toward the vehicle.
	Downlink
)

// TransferTime returns the time to reliably move sizeBytes across the link
// in the given direction. Reliability is modeled as goodput scaling: loss
// triggers retransmission, shrinking effective bandwidth by (1-loss), plus
// one RTT of protocol latency. sizeBytes of zero costs one RTT.
func (l LinkSpec) TransferTime(sizeBytes float64, d Direction) (time.Duration, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	if sizeBytes < 0 {
		return 0, fmt.Errorf("network: negative transfer size %v", sizeBytes)
	}
	mbps := l.UpMbps
	if d == Downlink {
		mbps = l.DownMbps
	}
	goodput := mbps * (1 - l.BaseLoss) * 1e6 / 8 // bytes per second
	return l.RTT + time.Duration(sizeBytes/goodput*float64(time.Second)), nil
}

// OneWayLatency returns half the RTT.
func (l LinkSpec) OneWayLatency() time.Duration { return l.RTT / 2 }

// Catalog returns the default link catalog keyed by name.
func Catalog() map[string]LinkSpec {
	specs := []LinkSpec{
		{Name: "dsrc", Tech: DSRC, UpMbps: 27, DownMbps: 27, RTT: 4 * time.Millisecond, BaseLoss: 0.01, RangeM: 300},
		{Name: "lte", Tech: LTE, UpMbps: 20, DownMbps: 80, RTT: 50 * time.Millisecond, BaseLoss: 0.002, RangeM: 2000},
		{Name: "5g", Tech: FiveG, UpMbps: 200, DownMbps: 900, RTT: 12 * time.Millisecond, BaseLoss: 0.001, RangeM: 500},
		{Name: "wifi", Tech: WiFi, UpMbps: 120, DownMbps: 120, RTT: 6 * time.Millisecond, BaseLoss: 0.005, RangeM: 100},
		{Name: "ble", Tech: BLE, UpMbps: 1, DownMbps: 1, RTT: 15 * time.Millisecond, BaseLoss: 0.01, RangeM: 10},
		{Name: "backhaul", Tech: Wired, UpMbps: 1000, DownMbps: 1000, RTT: 2 * time.Millisecond, BaseLoss: 0},
		{Name: "wan", Tech: Wired, UpMbps: 500, DownMbps: 500, RTT: 60 * time.Millisecond, BaseLoss: 0},
	}
	out := make(map[string]LinkSpec, len(specs))
	for _, s := range specs {
		out[s.Name] = s
	}
	return out
}

// LookupLink returns the named catalog link.
func LookupLink(name string) (LinkSpec, error) {
	l, ok := Catalog()[name]
	if !ok {
		return LinkSpec{}, fmt.Errorf("network: unknown link %q", name)
	}
	return l, nil
}

// Path is a sequence of links traversed in order (e.g. vehicle→LTE→WAN→cloud).
type Path struct {
	Name  string
	Links []LinkSpec
}

// TransferTime sums per-hop reliable transfer times in direction d.
func (p Path) TransferTime(sizeBytes float64, d Direction) (time.Duration, error) {
	if len(p.Links) == 0 {
		return 0, fmt.Errorf("network: path %q has no links", p.Name)
	}
	var total time.Duration
	for _, l := range p.Links {
		t, err := l.TransferTime(sizeBytes, d)
		if err != nil {
			return 0, fmt.Errorf("path %q: %w", p.Name, err)
		}
		total += t
	}
	return total, nil
}

// RTT sums link round-trip times along the path.
func (p Path) RTT() time.Duration {
	var total time.Duration
	for _, l := range p.Links {
		total += l.RTT
	}
	return total
}

// BottleneckMbps returns the minimum bandwidth along the path in direction d.
func (p Path) BottleneckMbps(d Direction) float64 {
	if len(p.Links) == 0 {
		return 0
	}
	pick := func(l LinkSpec) float64 {
		if d == Downlink {
			return l.DownMbps
		}
		return l.UpMbps
	}
	minBW := pick(p.Links[0])
	for _, l := range p.Links[1:] {
		if bw := pick(l); bw < minBW {
			minBW = bw
		}
	}
	return minBW
}

package huffman

import (
	"encoding/binary"
)

// Block API: append-style encode/decode over the same wire format as
// Encode/Decode, built for callers that compress many independent blocks
// into reused buffers (the DDI segment writer compresses one payload block
// per sealed segment). AppendDecode additionally replaces the map-based
// symbol lookup with canonical decode tables and a prefix LUT, an order of
// magnitude faster on the segment-scan path.

// lutBits sizes the prefix lookup table: every code of at most lutBits
// bits decodes with a single table read.
const lutBits = 11

// AppendEncode compresses data and appends the encoded block to dst,
// returning the extended slice. The format is identical to Encode's.
func AppendEncode(dst, data []byte) ([]byte, error) {
	if len(data) == 0 {
		return dst, ErrEmptyInput
	}
	var freq [256]int
	for _, b := range data {
		freq[b]++
	}
	lens := codeLengths(&freq)
	codes, ok := canonicalCodes(&lens)
	if !ok {
		return dst, errCodeOverflow
	}

	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(data)))
	dst = append(dst, hdr[:]...)
	distinct := 0
	for _, l := range lens {
		if l > 0 {
			distinct++
		}
	}
	dst = append(dst, byte(distinct-1)) // 1..256 encoded as 0..255
	for s, l := range lens {
		if l == 0 {
			continue
		}
		dst = append(dst, byte(s), byte(l))
	}

	var acc uint64
	var nbits uint
	for _, b := range data {
		l := uint(lens[b])
		acc = acc<<l | codes[b]
		nbits += l
		for nbits >= 8 {
			nbits -= 8
			dst = append(dst, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc<<(8-nbits)))
	}
	return dst, nil
}

// decodeTables holds the canonical decoder state for one block.
type decodeTables struct {
	// lut maps the next lutBits of the stream to sym<<8|len for codes of
	// at most lutBits bits; len 0 marks a longer code (slow path).
	lut [1 << lutBits]uint16
	// firstCode/firstIdx/countAt drive the per-length slow path.
	firstCode [65]uint64
	firstIdx  [65]int
	countAt   [65]int
	syms      [256]byte // ordered by (length, symbol)
	maxLen    int
}

// build populates the tables from the sparse code-length header.
func (t *decodeTables) build(lens *[256]int) bool {
	codes, ok := canonicalCodes(lens)
	if !ok {
		return false
	}
	for _, l := range lens {
		if l > 0 {
			t.countAt[l]++
			if l > t.maxLen {
				t.maxLen = l
			}
		}
	}
	if t.maxLen == 0 {
		return false
	}
	idx := 0
	for l := 1; l <= t.maxLen; l++ {
		t.firstIdx[l] = idx
		first := true
		for s := 0; s < 256; s++ {
			if lens[s] != l {
				continue
			}
			if first {
				t.firstCode[l] = codes[s]
				first = false
			}
			t.syms[idx] = byte(s)
			idx++
			if l <= lutBits {
				// Every stream position whose top l bits equal this code
				// decodes to s.
				base := codes[s] << (lutBits - uint(l))
				span := uint64(1) << (lutBits - uint(l))
				entry := uint16(s)<<8 | uint16(l)
				for i := uint64(0); i < span; i++ {
					t.lut[base+i] = entry
				}
			}
		}
	}
	return true
}

// AppendDecode decompresses an encoded block, appending the original bytes
// to dst. It accepts exactly the blocks AppendEncode/Encode produce.
func AppendDecode(dst, enc []byte) ([]byte, error) {
	if len(enc) < 8+1+2 {
		return dst, ErrCorrupt
	}
	n := binary.LittleEndian.Uint64(enc[:8])
	if n == 0 || n > 1<<40 {
		return dst, ErrCorrupt
	}
	distinct := int(enc[8]) + 1
	tableEnd := 9 + 2*distinct
	if len(enc) < tableEnd {
		return dst, ErrCorrupt
	}
	var lens [256]int
	for i := 0; i < distinct; i++ {
		sym := enc[9+2*i]
		l := int(enc[9+2*i+1])
		if l == 0 || l > 64 || lens[sym] != 0 {
			return dst, ErrCorrupt
		}
		lens[sym] = l
	}
	var t decodeTables
	if !t.build(&lens) {
		return dst, ErrCorrupt
	}

	payload := enc[tableEnd:]
	totalBits := uint64(len(payload)) * 8
	// acc holds the next nbits of the stream left-aligned at bit 63.
	var acc uint64
	var nbits uint
	var pos int // next payload byte to load
	var used uint64
	start := len(dst)
	want := int(n)
	for len(dst)-start < want {
		// Refill so the LUT always sees lutBits bits (zero-padded at EOF).
		for nbits <= 56 && pos < len(payload) {
			acc |= uint64(payload[pos]) << (56 - nbits)
			nbits += 8
			pos++
		}
		e := t.lut[acc>>(64-lutBits)]
		l := uint(e & 0xff)
		if l != 0 {
			if used += uint64(l); used > totalBits {
				return dst[:start], ErrCorrupt
			}
			dst = append(dst, byte(e>>8))
			acc <<= l
			nbits -= min(nbits, l)
			continue
		}
		// Slow path: codes longer than lutBits bits.
		code := acc >> (64 - lutBits)
		length := uint(lutBits)
		matched := false
		for length < uint(t.maxLen) {
			length++
			code = code<<1 | (acc>>(64-length))&1
			if cnt := t.countAt[length]; cnt > 0 {
				d := code - t.firstCode[length]
				if d < uint64(cnt) {
					if used += uint64(length); used > totalBits {
						return dst[:start], ErrCorrupt
					}
					dst = append(dst, t.syms[t.firstIdx[length]+int(d)])
					acc <<= length
					nbits -= min(nbits, length)
					matched = true
					break
				}
			}
		}
		if !matched {
			return dst[:start], ErrCorrupt
		}
	}
	return dst, nil
}

func min(a, b uint) uint {
	if a < b {
		return a
	}
	return b
}

// Package huffman implements canonical Huffman coding over byte symbols.
// The standard library offers no reusable Huffman coder, and OpenVDAP's
// Deep-Compression pipeline (prune → weight-share → Huffman) needs one to
// entropy-code quantized weight indices.
package huffman

import (
	"container/heap"
	"errors"
	"sort"
)

// ErrEmptyInput is returned when encoding zero bytes.
var ErrEmptyInput = errors.New("huffman: empty input")

// ErrCorrupt is returned when a decode fails structural validation.
var ErrCorrupt = errors.New("huffman: corrupt stream")

type node struct {
	sym   int // 0..255, or -1 for internal nodes
	count int
	left  *node
	right *node
	order int // insertion order for deterministic tie-breaking
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	return h[i].order < h[j].order
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any) {
	n, ok := x.(*node)
	if ok {
		*h = append(*h, n)
	}
}
func (h *nodeHeap) Pop() any {
	old := *h
	n := old[len(old)-1]
	*h = old[:len(old)-1]
	return n
}

// codeLengths builds per-symbol code lengths from frequencies.
func codeLengths(freq *[256]int) [256]int {
	var lens [256]int
	h := &nodeHeap{}
	order := 0
	for s, c := range freq {
		if c > 0 {
			heap.Push(h, &node{sym: s, count: c, order: order})
			order++
		}
	}
	if h.Len() == 1 {
		// Single distinct symbol: give it a 1-bit code.
		only, _ := heap.Pop(h).(*node)
		lens[only.sym] = 1
		return lens
	}
	for h.Len() > 1 {
		a, _ := heap.Pop(h).(*node)
		b, _ := heap.Pop(h).(*node)
		heap.Push(h, &node{sym: -1, count: a.count + b.count, left: a, right: b, order: order})
		order++
	}
	root, _ := heap.Pop(h).(*node)
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n == nil {
			return
		}
		if n.sym >= 0 {
			lens[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lens
}

// canonicalCodes assigns canonical codes from code lengths: codes of the
// same length are consecutive, ordered by symbol value.
func canonicalCodes(lens *[256]int) (codes [256]uint64, ok bool) {
	type sl struct{ sym, length int }
	var order []sl
	maxLen := 0
	for s, l := range lens {
		if l > 0 {
			order = append(order, sl{s, l})
			if l > maxLen {
				maxLen = l
			}
		}
	}
	if maxLen > 64 {
		return codes, false
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].length != order[j].length {
			return order[i].length < order[j].length
		}
		return order[i].sym < order[j].sym
	})
	var code uint64
	prevLen := 0
	for _, e := range order {
		code <<= uint(e.length - prevLen)
		codes[e.sym] = code
		code++
		prevLen = e.length
	}
	return codes, true
}

// errCodeOverflow reports a code longer than 64 bits (unreachable for any
// real frequency distribution over byte symbols, guarded anyway).
var errCodeOverflow = errors.New("huffman: code length overflow")

// Encode compresses data. The output embeds the original length, a sparse
// canonical code-length table (count + symbol/length pairs — most streams
// here use few distinct symbols), and the bit stream.
func Encode(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, ErrEmptyInput
	}
	return AppendEncode(make([]byte, 0, len(data)/2+64), data)
}

// Decode reverses Encode.
func Decode(enc []byte) ([]byte, error) {
	out, err := AppendDecode(nil, enc)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Ratio returns compressed size over original size for data (1.0 means no
// gain). It returns 1 for empty input.
func Ratio(data []byte) float64 {
	enc, err := Encode(data)
	if err != nil {
		return 1
	}
	return float64(len(enc)) / float64(len(data))
}

// Package huffman implements canonical Huffman coding over byte symbols.
// The standard library offers no reusable Huffman coder, and OpenVDAP's
// Deep-Compression pipeline (prune → weight-share → Huffman) needs one to
// entropy-code quantized weight indices.
package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// ErrEmptyInput is returned when encoding zero bytes.
var ErrEmptyInput = errors.New("huffman: empty input")

// ErrCorrupt is returned when a decode fails structural validation.
var ErrCorrupt = errors.New("huffman: corrupt stream")

type node struct {
	sym   int // 0..255, or -1 for internal nodes
	count int
	left  *node
	right *node
	order int // insertion order for deterministic tie-breaking
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	return h[i].order < h[j].order
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any) {
	n, ok := x.(*node)
	if ok {
		*h = append(*h, n)
	}
}
func (h *nodeHeap) Pop() any {
	old := *h
	n := old[len(old)-1]
	*h = old[:len(old)-1]
	return n
}

// codeLengths builds per-symbol code lengths from frequencies.
func codeLengths(freq *[256]int) [256]int {
	var lens [256]int
	h := &nodeHeap{}
	order := 0
	for s, c := range freq {
		if c > 0 {
			heap.Push(h, &node{sym: s, count: c, order: order})
			order++
		}
	}
	if h.Len() == 1 {
		// Single distinct symbol: give it a 1-bit code.
		only, _ := heap.Pop(h).(*node)
		lens[only.sym] = 1
		return lens
	}
	for h.Len() > 1 {
		a, _ := heap.Pop(h).(*node)
		b, _ := heap.Pop(h).(*node)
		heap.Push(h, &node{sym: -1, count: a.count + b.count, left: a, right: b, order: order})
		order++
	}
	root, _ := heap.Pop(h).(*node)
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n == nil {
			return
		}
		if n.sym >= 0 {
			lens[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lens
}

// canonicalCodes assigns canonical codes from code lengths: codes of the
// same length are consecutive, ordered by symbol value.
func canonicalCodes(lens *[256]int) (codes [256]uint64, ok bool) {
	type sl struct{ sym, length int }
	var order []sl
	maxLen := 0
	for s, l := range lens {
		if l > 0 {
			order = append(order, sl{s, l})
			if l > maxLen {
				maxLen = l
			}
		}
	}
	if maxLen > 64 {
		return codes, false
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].length != order[j].length {
			return order[i].length < order[j].length
		}
		return order[i].sym < order[j].sym
	})
	var code uint64
	prevLen := 0
	for _, e := range order {
		code <<= uint(e.length - prevLen)
		codes[e.sym] = code
		code++
		prevLen = e.length
	}
	return codes, true
}

// Encode compresses data. The output embeds the original length, a sparse
// canonical code-length table (count + symbol/length pairs — most streams
// here use few distinct symbols), and the bit stream.
func Encode(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, ErrEmptyInput
	}
	var freq [256]int
	for _, b := range data {
		freq[b]++
	}
	lens := codeLengths(&freq)
	codes, ok := canonicalCodes(&lens)
	if !ok {
		return nil, fmt.Errorf("huffman: code length overflow")
	}

	out := make([]byte, 0, len(data)/2+64)
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(data)))
	out = append(out, hdr[:]...)
	distinct := 0
	for _, l := range lens {
		if l > 0 {
			distinct++
		}
	}
	if distinct > 256 {
		return nil, fmt.Errorf("huffman: impossible symbol count %d", distinct)
	}
	out = append(out, byte(distinct-1)) // 1..256 encoded as 0..255
	for s, l := range lens {
		if l == 0 {
			continue
		}
		if l > 255 {
			return nil, fmt.Errorf("huffman: code length %d exceeds byte", l)
		}
		out = append(out, byte(s), byte(l))
	}

	var acc uint64
	var nbits uint
	for _, b := range data {
		l := uint(lens[b])
		acc = acc<<l | codes[b]
		nbits += l
		for nbits >= 8 {
			nbits -= 8
			out = append(out, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		out = append(out, byte(acc<<(8-nbits)))
	}
	return out, nil
}

// Decode reverses Encode.
func Decode(enc []byte) ([]byte, error) {
	if len(enc) < 8+1+2 {
		return nil, ErrCorrupt
	}
	n := binary.LittleEndian.Uint64(enc[:8])
	if n == 0 || n > 1<<40 {
		return nil, ErrCorrupt
	}
	distinct := int(enc[8]) + 1
	tableEnd := 9 + 2*distinct
	if len(enc) < tableEnd {
		return nil, ErrCorrupt
	}
	var lens [256]int
	for i := 0; i < distinct; i++ {
		sym := enc[9+2*i]
		l := int(enc[9+2*i+1])
		if l == 0 || lens[sym] != 0 {
			return nil, ErrCorrupt
		}
		lens[sym] = l
	}
	codes, ok := canonicalCodes(&lens)
	if !ok {
		return nil, ErrCorrupt
	}

	// Build decode map: (length, code) -> symbol.
	type key struct {
		length int
		code   uint64
	}
	decode := make(map[key]byte)
	maxLen := 0
	for s, l := range lens {
		if l > 0 {
			decode[key{l, codes[s]}] = byte(s)
			if l > maxLen {
				maxLen = l
			}
		}
	}
	if len(decode) == 0 {
		return nil, ErrCorrupt
	}

	out := make([]byte, 0, n)
	payload := enc[tableEnd:]
	var acc uint64
	length := 0
	bitIdx := 0
	totalBits := len(payload) * 8
	for uint64(len(out)) < n {
		if bitIdx >= totalBits {
			return nil, ErrCorrupt
		}
		bit := (payload[bitIdx/8] >> (7 - uint(bitIdx%8))) & 1
		bitIdx++
		acc = acc<<1 | uint64(bit)
		length++
		if length > maxLen {
			return nil, ErrCorrupt
		}
		if sym, ok := decode[key{length, acc}]; ok {
			out = append(out, sym)
			acc, length = 0, 0
		}
	}
	return out, nil
}

// Ratio returns compressed size over original size for data (1.0 means no
// gain). It returns 1 for empty input.
func Ratio(data []byte) float64 {
	enc, err := Encode(data)
	if err != nil {
		return 1
	}
	return float64(len(enc)) / float64(len(data))
}

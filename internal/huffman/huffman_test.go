package huffman

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []byte) []byte {
	t.Helper()
	enc, err := Encode(data)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatalf("round trip mismatch: %d bytes in, %d out", len(data), len(dec))
	}
	return enc
}

func TestRoundTripSimple(t *testing.T) {
	roundTrip(t, []byte("hello huffman world"))
}

func TestRoundTripSingleSymbol(t *testing.T) {
	roundTrip(t, bytes.Repeat([]byte{42}, 1000))
}

func TestRoundTripSingleByte(t *testing.T) {
	roundTrip(t, []byte{7})
}

func TestRoundTripAllSymbols(t *testing.T) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	roundTrip(t, data)
}

func TestEncodeEmpty(t *testing.T) {
	if _, err := Encode(nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("err = %v, want ErrEmptyInput", err)
	}
}

func TestSkewedInputCompresses(t *testing.T) {
	// 95% zeros — the shape of pruned weight indices.
	data := make([]byte, 10000)
	for i := 0; i < len(data); i++ {
		if i%20 == 0 {
			data[i] = byte(1 + i%15)
		}
	}
	enc := roundTrip(t, data)
	if len(enc) >= len(data) {
		t.Fatalf("skewed input did not compress: %d -> %d", len(data), len(enc))
	}
	if r := Ratio(data); r >= 0.6 {
		t.Fatalf("ratio = %v, want < 0.6 for 95%%-sparse input", r)
	}
}

func TestUniformRandomDoesNotExplode(t *testing.T) {
	data := make([]byte, 4096)
	state := uint32(1)
	for i := range data {
		state = state*1664525 + 1013904223
		data[i] = byte(state >> 24)
	}
	enc := roundTrip(t, data)
	// Uniform bytes are incompressible; overhead must stay bounded by the
	// sparse header (9 bytes + 2 per distinct symbol = 521 max) plus padding.
	if len(enc) > len(data)+560 {
		t.Fatalf("uniform input exploded: %d -> %d", len(data), len(enc))
	}
}

func TestDecodeCorruptInputs(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 8+256), // claims 0 length
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: Decode succeeded on corrupt input", i)
		}
	}
	// Truncated payload: valid header, missing bits.
	enc, err := Encode(bytes.Repeat([]byte("abcdef"), 100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(enc[:len(enc)-20]); err == nil {
		t.Error("Decode succeeded on truncated payload")
	}
}

func TestDecodeGarbageLengthTable(t *testing.T) {
	enc := make([]byte, 8+256+16)
	enc[0] = 10 // claim 10 symbols
	// All code lengths zero -> empty decode table -> must fail.
	if _, err := Decode(enc); err == nil {
		t.Fatal("Decode succeeded with empty code table")
	}
}

func TestRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		enc, err := Encode(data)
		if err != nil {
			return false
		}
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, data)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRatioEmptyInput(t *testing.T) {
	if r := Ratio(nil); r != 1 {
		t.Fatalf("Ratio(nil) = %v, want 1", r)
	}
}

func BenchmarkEncode(b *testing.B) {
	data := make([]byte, 64*1024)
	for i := range data {
		if i%10 == 0 {
			data[i] = byte(i % 16)
		}
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

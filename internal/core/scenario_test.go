package core

import (
	"testing"
	"time"

	"repro/internal/edgeos"
	"repro/internal/hardware"
	"repro/internal/tasks"
	"repro/internal/vcu"
)

// TestScenarioDayInTheLife drives the full platform through a realistic
// sequence: boot, install the paper's four service types, collect data
// while invoking services across changing speeds, suffer and recover from
// a compromise, and end with cloud migration. Every module is exercised
// against the same virtual timeline.
func TestScenarioDayInTheLife(t *testing.T) {
	p := newPlatform(t)
	services := []*edgeos.Service{
		{Name: "pedestrian-alert", Priority: edgeos.PrioritySafety,
			Deadline: 500 * time.Millisecond, DAG: tasks.PedestrianAlert(),
			TEE: true, Image: []byte("ped-v1")},
		{Name: "real-time-diagnostics", Priority: edgeos.PriorityInteractive,
			Deadline: 2 * time.Second, DAG: tasks.Diagnostics(), Image: []byte("diag-v1")},
		{Name: "infotainment", Priority: edgeos.PriorityBackground,
			DAG: tasks.InfotainmentDecode(), Image: []byte("info-v1")},
		{Name: "kidnapper-search", Priority: edgeos.PriorityInteractive,
			Deadline: 2 * time.Second, DAG: tasks.ALPR(), Image: []byte("a3-v1")},
	}
	for _, s := range services {
		if err := p.InstallService(s); err != nil {
			t.Fatalf("install %s: %v", s.Name, err)
		}
	}
	if err := p.StartCollection(time.Second); err != nil {
		t.Fatal(err)
	}

	invocations := 0
	for leg, mph := range []float64{0, 35, 70, 35} {
		p.SetSpeedMPH(mph)
		for i := 0; i < 5; i++ {
			for _, s := range services {
				res, err := p.InvokeService(s.Name)
				if err != nil {
					t.Fatalf("leg %d invoke %s: %v", leg, s.Name, err)
				}
				if !res.HungUp {
					invocations++
				}
			}
		}
		// A minute of cruising between service bursts.
		if err := p.Engine().RunUntil(p.Engine().Now() + time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if invocations < 60 {
		t.Fatalf("completed %d invocations, want >= 60", invocations)
	}

	// Compromise and recovery mid-drive.
	if err := p.Security().MarkCompromised("infotainment"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.InvokeService("infotainment"); err == nil {
		t.Fatal("compromised service invoked")
	}
	if err := p.Security().Reinstall("infotainment"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.InvokeService("infotainment"); err != nil {
		t.Fatalf("reinstalled service failed: %v", err)
	}

	// Data kept flowing the whole time.
	count := p.DDI().Store().Count()
	if count < 4*60*4 { // 4+ records/second for 4+ minutes
		t.Fatalf("DDI holds %d records, want >= 960", count)
	}
	// End of day: migrate everything older than half the drive.
	p.StopCollection()
	n, _, err := p.MigrateOldData(p.Engine().Now() / 2)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing migrated")
	}
	if p.DDI().Store().Count()+n != count {
		t.Fatal("migration lost records")
	}
	// Safety service stats reflect priority work.
	st, err := p.Elastic().Stats("pedestrian-alert")
	if err != nil {
		t.Fatal(err)
	}
	if st.Invocations < 20 {
		t.Fatalf("pedestrian-alert ran %d times", st.Invocations)
	}
}

// TestScenarioPhoneJoinsAndLeaves exercises 2ndHEP dynamics end to end:
// a passenger phone joins the mHEP, absorbs work, then leaves mid-
// operation without breaking subsequent scheduling.
func TestScenarioPhoneJoinsAndLeaves(t *testing.T) {
	p := newPlatform(t)
	svc := &edgeos.Service{
		Name: "kidnapper-search", Priority: edgeos.PriorityInteractive,
		DAG: tasks.ALPR(), Image: []byte("a3-v1"),
	}
	if err := p.InstallService(svc); err != nil {
		t.Fatal(err)
	}
	if _, err := p.InvokeService("kidnapper-search"); err != nil {
		t.Fatal(err)
	}
	phone, err := hardware.Lookup(hardware.DevicePhone)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MHEP().AddDevice(phone, vcu.SecondLevel, vcu.WiFiIO()); err != nil {
		t.Fatal(err)
	}
	if len(p.MHEP().Devices()) != 5 {
		t.Fatal("phone not registered")
	}
	if _, err := p.InvokeService("kidnapper-search"); err != nil {
		t.Fatalf("invoke with phone attached: %v", err)
	}
	// Passenger leaves.
	if err := p.MHEP().RemoveDevice(hardware.DevicePhone); err != nil {
		t.Fatal(err)
	}
	if _, err := p.InvokeService("kidnapper-search"); err != nil {
		t.Fatalf("invoke after phone left: %v", err)
	}
}

// TestScenarioHangUpRecovery: a service with a deadline only the edge can
// meet hangs up when every VCU device that could serve it goes offline and
// no pipeline fits, then resumes when hardware returns.
func TestScenarioHangUpRecovery(t *testing.T) {
	p := newPlatform(t)
	svc := &edgeos.Service{
		Name:     "pedestrian-alert",
		Priority: edgeos.PrioritySafety,
		// Tight but achievable with the full platform.
		Deadline: 80 * time.Millisecond,
		DAG:      tasks.PedestrianAlert(),
		Image:    []byte("ped-v1"),
		// Safety service: remote execution is not allowed (the paper's
		// point about safety-critical work staying local).
		Pipelines: []edgeos.Pipeline{{Name: "onboard", SplitAfter: 2}},
	}
	if err := p.InstallService(svc); err != nil {
		t.Fatal(err)
	}
	res, err := p.InvokeService("pedestrian-alert")
	if err != nil {
		t.Fatal(err)
	}
	if res.HungUp {
		t.Fatalf("healthy platform hung up the safety service")
	}
	// The DNN accelerators fail: only the (slow at DNN) CPU remains.
	for _, dev := range []string{hardware.DeviceVCUASIC, hardware.DeviceVCUFPGA, hardware.DeviceTX2MaxP} {
		if err := p.MHEP().SetOnline(dev, false); err != nil {
			t.Fatal(err)
		}
	}
	res, err = p.InvokeService("pedestrian-alert")
	if err != nil {
		t.Fatal(err)
	}
	if !res.HungUp {
		t.Fatalf("service met an 80 ms deadline on the CPU alone (latency %v)", res.Latency)
	}
	sAfter, _ := p.Elastic().Service("pedestrian-alert")
	if sAfter.State() != edgeos.HungUp {
		t.Fatalf("state = %v, want hung-up", sAfter.State())
	}
	// Hardware recovers; the service resumes automatically.
	for _, dev := range []string{hardware.DeviceVCUASIC, hardware.DeviceVCUFPGA, hardware.DeviceTX2MaxP} {
		if err := p.MHEP().SetOnline(dev, true); err != nil {
			t.Fatal(err)
		}
	}
	res, err = p.InvokeService("pedestrian-alert")
	if err != nil {
		t.Fatal(err)
	}
	if res.HungUp {
		t.Fatal("service did not resume after hardware recovery")
	}
	if sAfter.State() != edgeos.Running {
		t.Fatalf("state = %v after recovery", sAfter.State())
	}
}

// TestScenarioDSRCPrivacyChain: records leaving the vehicle carry rotating
// pseudonyms and generalized locations; the platform's own privacy module
// recognizes its past pseudonyms while a second vehicle's does not.
func TestScenarioDSRCPrivacyChain(t *testing.T) {
	p := newPlatform(t)
	cfgB := DefaultConfig(t.TempDir())
	cfgB.Secret = []byte("other-vehicle-secret-0123456789!")
	other, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()

	rec := p.Privacy().Scrub(p.Engine().Now(), 1234.5, 17.2, "detection", []byte("3 cars"))
	if rec.X == 1234.5 && rec.Y == 17.2 {
		t.Fatal("location not generalized")
	}
	if !p.Privacy().IsMine(rec.Pseudonym, p.Engine().Now(), time.Hour) {
		t.Fatal("own pseudonym unrecognized")
	}
	if other.Privacy().IsMine(rec.Pseudonym, other.Engine().Now(), time.Hour) {
		t.Fatal("foreign vehicle claimed our pseudonym")
	}
}

package core

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/edgeos"
	"repro/internal/tasks"
	"repro/internal/telemetry"
)

func TestMetricsEndpointSubsystems(t *testing.T) {
	p := newPlatform(t)
	svc := &edgeos.Service{Name: "kidnapper-search", Priority: edgeos.PriorityInteractive,
		Deadline: 5 * time.Second, DAG: tasks.ALPR(), Image: []byte("a3")}
	if err := p.InstallService(svc); err != nil {
		t.Fatal(err)
	}
	if err := p.StartCollection(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Engine().RunUntil(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := p.InvokeService("kidnapper-search"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p.API())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	subsys := map[string]bool{}
	for name := range snap.Counters {
		subsys[strings.SplitN(name, ".", 2)[0]] = true
	}
	for name := range snap.Histograms {
		subsys[strings.SplitN(name, ".", 2)[0]] = true
	}
	t.Logf("subsystems: %v (counters=%d hists=%d)", subsys, len(snap.Counters), len(snap.Histograms))
	if len(subsys) < 4 {
		t.Fatalf("only %d subsystems", len(subsys))
	}
}

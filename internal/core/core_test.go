package core

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/edgeos"
	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/tasks"
	"repro/internal/trace"
)

func newPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := New(DefaultConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := DefaultConfig(t.TempDir())
	cfg.Secret = []byte("short")
	if _, err := New(cfg); err == nil {
		t.Fatal("short secret accepted")
	}
	cfg = DefaultConfig("")
	cfg.RoadLengthM = 100
	if _, err := New(cfg); err == nil {
		t.Fatal("empty data dir accepted")
	}
}

func TestPlatformWiring(t *testing.T) {
	p := newPlatform(t)
	if p.Engine() == nil || p.Road() == nil || p.MHEP() == nil || p.DSF() == nil ||
		p.Offload() == nil || p.Elastic() == nil || p.Security() == nil ||
		p.Runtime() == nil || p.Sharing() == nil || p.Privacy() == nil ||
		p.DDI() == nil || p.Cloud() == nil || p.Registry() == nil || p.API() == nil {
		t.Fatal("platform component missing")
	}
	// RSUs + cloud are offload sites.
	if got := len(p.Offload().Sites()); got != DefaultConfig("x").RSUs+1 {
		t.Fatalf("sites = %d", got)
	}
	if len(p.Registry().List()) == 0 {
		t.Fatal("common model library not loaded")
	}
}

func TestInstallAndInvokeService(t *testing.T) {
	p := newPlatform(t)
	svc := &edgeos.Service{
		Name:     "kidnapper-search",
		Priority: edgeos.PriorityInteractive,
		Deadline: 5 * time.Second,
		DAG:      tasks.ALPR(),
		Image:    []byte("a3-mobile-v1"),
	}
	if err := p.InstallService(svc); err != nil {
		t.Fatal(err)
	}
	res, err := p.InvokeService("kidnapper-search")
	if err != nil {
		t.Fatal(err)
	}
	if res.HungUp {
		t.Fatal("service hung up in healthy conditions")
	}
	if res.Latency <= 0 {
		t.Fatal("no latency recorded")
	}
	// Virtual time advanced past completion.
	if p.Engine().Now() < res.Completed {
		t.Fatalf("clock %v behind completion %v", p.Engine().Now(), res.Completed)
	}
	// Container exists and is attested.
	if err := p.Security().Attest("kidnapper-search"); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionLoop(t *testing.T) {
	p := newPlatform(t)
	if err := p.StartCollection(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.StartCollection(time.Second); err == nil {
		t.Fatal("double start accepted")
	}
	if err := p.Engine().RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := p.DDI().Store().Count(); got < 4*30 {
		t.Fatalf("collected %d records in 30s, want >= 120", got)
	}
	p.StopCollection()
	count := p.DDI().Store().Count()
	if err := p.Engine().RunUntil(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p.DDI().Store().Count() != count {
		t.Fatal("collection continued after stop")
	}
}

func TestMigrateOldData(t *testing.T) {
	p := newPlatform(t)
	if err := p.StartCollection(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Engine().RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	p.StopCollection()
	n, dur, err := p.MigrateOldData(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || dur <= 0 {
		t.Fatalf("migrated %d in %v", n, dur)
	}
	if p.Cloud().Data().Count() != n {
		t.Fatal("cloud did not receive migrated records")
	}
	// Identity was pseudonymized.
	for _, r := range p.Cloud().Data().Query("", 0, time.Hour) {
		if r.Vehicle == "" || len(r.Vehicle) != 32 {
			t.Fatalf("bad pseudonym %q", r.Vehicle)
		}
	}
}

func TestSetSpeedPropagates(t *testing.T) {
	p := newPlatform(t)
	heavy := &edgeos.Service{
		Name:     "cloud-only-check",
		Priority: edgeos.PriorityBackground,
		DAG:      &tasks.DAG{Name: "d", Tasks: []*tasks.Task{tasks.VehicleDetectionDNN()}},
		Image:    []byte("x"),
	}
	if err := p.InstallService(heavy); err != nil {
		t.Fatal(err)
	}
	if p.Mobility().SpeedMS != geo.MPH(35) {
		t.Fatalf("initial speed = %v", p.Mobility().SpeedMS)
	}
	p.SetSpeedMPH(70)
	if p.Mobility().SpeedMS != geo.MPH(70) {
		t.Fatal("speed not updated")
	}
}

func TestAPIEndToEnd(t *testing.T) {
	p := newPlatform(t)
	ts := httptest.NewServer(p.API())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/api/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	groups, ok := status["groups"].(map[string]any)
	if !ok {
		t.Fatalf("status = %v", status)
	}
	for _, g := range []string{"models", "resources", "data", "sharing"} {
		if groups[g] != true {
			t.Fatalf("group %s not attached", g)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func(dir string) time.Duration {
		cfg := DefaultConfig(dir)
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		svc := &edgeos.Service{
			Name: "svc", Priority: edgeos.PriorityInteractive,
			DAG: tasks.ALPR(), Image: []byte("v1"),
		}
		if err := p.InstallService(svc); err != nil {
			t.Fatal(err)
		}
		var total time.Duration
		for i := 0; i < 5; i++ {
			res, err := p.InvokeService("svc")
			if err != nil {
				t.Fatal(err)
			}
			total += res.Latency
		}
		return total
	}
	a := run(t.TempDir())
	b := run(t.TempDir())
	if a != b {
		t.Fatalf("runs diverged: %v vs %v", a, b)
	}
}

func TestMetricsAndReport(t *testing.T) {
	p := newPlatform(t)
	svc := &edgeos.Service{
		Name: "kidnapper-search", Priority: edgeos.PriorityInteractive,
		DAG: tasks.ALPR(), Image: []byte("a3"),
	}
	if err := p.InstallService(svc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.InvokeService("kidnapper-search"); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.StartCollection(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Engine().RunUntil(p.Engine().Now() + 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := p.Metrics().Counter("service.kidnapper-search.invocations"); got != 3 {
		t.Fatalf("invocation counter = %v", got)
	}
	h := p.Metrics().Histogram("service.kidnapper-search.latency_ms")
	if h == nil || h.Count() != 3 {
		t.Fatal("latency histogram missing samples")
	}
	if got := p.Metrics().Counter("ddi.records_collected"); got < 40 {
		t.Fatalf("collection counter = %v", got)
	}
	report := p.Report()
	for _, want := range []string{
		"OpenVDAP platform report",
		"kidnapper-search",
		"VCU devices",
		"DDI",
		"service.kidnapper-search.latency_ms",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func BenchmarkPlatformInvokeALPR(b *testing.B) {
	p, err := New(DefaultConfig(b.TempDir()))
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	svc := &edgeos.Service{
		Name: "kidnapper-search", Priority: edgeos.PriorityInteractive,
		DAG: tasks.ALPR(), Image: []byte("a3"),
	}
	if err := p.InstallService(svc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.InvokeService("kidnapper-search"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPlatformFirewall(t *testing.T) {
	p := newPlatform(t)
	v, rule := p.AdmitFlow(edgeos.Flow{Iface: network.LTE, Protocol: "ssh", Source: "internet:evil"})
	if v != edgeos.Deny || rule != "default-deny" {
		t.Fatalf("remote ssh = %v via %s", v, rule)
	}
	v, _ = p.AdmitFlow(edgeos.Flow{Iface: network.DSRC, Protocol: "bsm", Source: "pseudonym:x"})
	if v != edgeos.Allow {
		t.Fatalf("DSRC beacon = %v", v)
	}
	if got := p.Metrics().Counter("firewall.deny"); got != 1 {
		t.Fatalf("deny counter = %v", got)
	}
	if !strings.Contains(p.Report(), "firewall") {
		t.Fatal("report missing firewall section")
	}
}

// TestEndToEndTraceSpanTree is the observability E2E: the quickstart
// offload scenario must produce the expected span tree (service invocation
// wrapping pipeline choice, per-destination estimates, and execution), and
// both exporters must be byte-identical across same-seed runs.
func TestEndToEndTraceSpanTree(t *testing.T) {
	run := func() (string, string) {
		p := newPlatform(t)
		svc := &edgeos.Service{
			Name:     "kidnapper-search",
			Priority: edgeos.PriorityInteractive,
			Deadline: 5 * time.Second,
			DAG:      tasks.ALPR(),
			Image:    []byte("a3-mobile-v1"),
		}
		if err := p.InstallService(svc); err != nil {
			t.Fatal(err)
		}
		if err := p.StartCollection(time.Second); err != nil {
			t.Fatal(err)
		}
		// By t=60s the vehicle (35 MPH) is ~940 m in — inside the first
		// RSU's 400 m coverage — so XEdge estimates are evaluated too.
		if err := p.Engine().RunUntil(60 * time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := p.InvokeService("kidnapper-search"); err != nil {
			t.Fatal(err)
		}
		tree := p.Tracer().RenderTree()
		chrome, err := p.Tracer().ChromeTrace()
		if err != nil {
			t.Fatal(err)
		}

		// Structure: an edgeos.invoke root holding the pipeline choice,
		// whose estimates nest under it, and the execution.
		var invoke *trace.Span
		for _, r := range p.Tracer().Roots() {
			if r.Name == "edgeos.invoke" {
				invoke = r
			}
		}
		if invoke == nil {
			t.Fatalf("no edgeos.invoke root in:\n%s", tree)
		}
		childNames := map[string]int{}
		for _, c := range invoke.Children {
			childNames[c.Name]++
		}
		if childNames["edgeos.choose"] != 1 {
			t.Fatalf("edgeos.invoke children = %v, want one edgeos.choose", childNames)
		}
		if childNames["offload.execute"] != 1 {
			t.Fatalf("edgeos.invoke children = %v, want one offload.execute", childNames)
		}
		var choose *trace.Span
		for _, c := range invoke.Children {
			if c.Name == "edgeos.choose" {
				choose = c
			}
		}
		estimates := 0
		for _, c := range choose.Children {
			if c.Name == "offload.estimate" {
				estimates++
			}
		}
		// ALPR has three pipelines evaluated over onboard + 11 sites.
		if estimates < 3 {
			t.Fatalf("edgeos.choose holds %d offload.estimate spans, want >= 3:\n%s", estimates, tree)
		}
		for _, want := range []string{"vcu.plan", "network.uplink", "network.downlink", "xedge.exec", "cloud.exec", "ddi.collect"} {
			if !strings.Contains(tree, want) {
				t.Fatalf("span %q missing from tree:\n%s", want, tree)
			}
		}
		comps := p.Tracer().Components()
		for _, want := range []string{"cloud", "ddi", "edgeos", "network", "offload", "vcu", "xedge"} {
			found := false
			for _, c := range comps {
				if c == want {
					found = true
				}
			}
			if !found {
				t.Fatalf("component %q missing from %v", want, comps)
			}
		}
		return tree, string(chrome)
	}
	tree1, chrome1 := run()
	tree2, chrome2 := run()
	if tree1 != tree2 {
		t.Fatal("RenderTree differs across same-seed runs")
	}
	if chrome1 != chrome2 {
		t.Fatal("ChromeTrace differs across same-seed runs")
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(chrome1), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("chrome trace missing traceEvents")
	}
}

// TestObservabilityWiring drives the platform with sampling on and reads
// the series, events, and stream endpoints end to end.
func TestObservabilityWiring(t *testing.T) {
	p := newPlatform(t)
	if p.Series() == nil || p.FlightRecorder() == nil {
		t.Fatal("observability stores not wired")
	}
	if err := p.InstallService(&edgeos.Service{
		Name: "alpr", Priority: edgeos.PriorityInteractive,
		Deadline: 2 * time.Second, DAG: tasks.ALPR(), Image: []byte("alpr-v1"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.StartSampling(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := p.StartSampling(time.Second); err == nil {
		t.Fatal("double StartSampling accepted")
	}
	for i := 0; i < 5; i++ {
		if _, err := p.InvokeService("alpr"); err != nil {
			t.Fatal(err)
		}
		if err := p.Engine().RunUntil(p.Engine().Now() + 200*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if p.Series().Len() == 0 {
		t.Fatal("no series sampled")
	}

	ts := httptest.NewServer(p.API())
	defer ts.Close()
	var payload struct {
		Series []struct {
			Name   string `json:"name"`
			Points int    `json:"points"`
		} `json:"series"`
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/metrics/series")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, s := range payload.Series {
		if strings.HasPrefix(s.Name, "service.alpr.") && s.Points > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no service.alpr series in %+v", payload.Series)
	}

	// The stream endpoint's first frame carries the backlog.
	resp, err = ts.Client().Get(ts.URL + "/v1/stream?frames=1")
	if err != nil {
		t.Fatal(err)
	}
	var frame struct {
		WatermarkNs int64 `json:"watermarkNs"`
		Series      *struct {
			Series []any `json:"series"`
		} `json:"series"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&frame); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if frame.WatermarkNs <= 0 || frame.Series == nil || len(frame.Series.Series) == 0 {
		t.Fatalf("stream frame = %+v", frame)
	}

	p.StopSampling()
	if err := p.StartSampling(time.Second); err != nil {
		t.Fatalf("restart after stop: %v", err)
	}
}

// Package core assembles the full OpenVDAP stack into one vehicle
// platform: the simulation kernel, the road world, the VCU with its DSF
// scheduler, the offloading engine over XEdge and cloud sites, EdgeOSv
// (elastic management, isolation, security, data sharing, privacy), the
// DDI data tier, and the libvdap registry and RESTful API.
//
// This is the public surface examples and tools build on.
package core

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/cloud"
	"repro/internal/ddi"
	"repro/internal/edgeos"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/libvdap"
	"repro/internal/obs"
	"repro/internal/offload"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vcu"
	"repro/internal/xedge"
)

// Config parameterizes a platform instance. The zero value is not valid;
// use DefaultConfig as a base.
type Config struct {
	// Seed drives every random stream; same seed, same run.
	Seed int64
	// RoadLengthM is the corridor length in meters.
	RoadLengthM float64
	// BaseStations and RSUs are placed uniformly along the road.
	BaseStations int
	RSUs         int
	// RSUCoverageM and BaseStationCoverageM are coverage radii.
	RSUCoverageM         float64
	BaseStationCoverageM float64
	// SpeedMPH is the vehicle's cruise speed.
	SpeedMPH float64
	// DataDir is where DDI persists its disk tier.
	DataDir string
	// Policy is the DSF scheduling policy. Nil means GreedyEFT.
	Policy vcu.Policy
	// Objective is the elastic-management goal. Zero means MinLatency.
	Objective edgeos.Objective
	// Secret is the vehicle's long-term secret (>= 16 bytes).
	Secret []byte
	// PseudonymRotation is the privacy epoch. Zero means 10 minutes.
	PseudonymRotation time.Duration
	// NeighborVehicles adds peer CAVs as offload destinations.
	NeighborVehicles int
	// TraceCapacity caps retained spans (memory bound). Non-positive means
	// trace.DefaultSpanLimit.
	TraceCapacity int
	// MetricsReservoir, when positive, bounds every histogram to k
	// deterministically-sampled values (exact count/sum/min/max are kept).
	// Zero keeps all samples.
	MetricsReservoir int
	// Resilience, when non-nil, installs the offload resilience policy
	// (per-site circuit breakers, bounded retry, degradation ladder) on the
	// offloading engine.
	Resilience *offload.Policy
	// Faults, when non-nil, compiles a deterministic fault plan over the
	// platform's sites from the kernel's RNG, attaches its injector to every
	// site, schedules outage transitions on the simulation kernel, and routes
	// link degradation through the offload engine's path adjuster.
	Faults *faults.PlanConfig
}

// DefaultConfig returns a sensible single-vehicle scenario: a 20 km
// corridor, LTE towers every 1 km, RSUs every 2 km, 35 MPH cruise.
func DefaultConfig(dataDir string) Config {
	return Config{
		Seed:                 1,
		RoadLengthM:          20000,
		BaseStations:         20,
		RSUs:                 10,
		RSUCoverageM:         400,
		BaseStationCoverageM: 900,
		SpeedMPH:             35,
		DataDir:              dataDir,
		Secret:               []byte("openvdap-vehicle-longterm-secret"),
	}
}

// Platform is one running OpenVDAP vehicle node.
//
// Concurrency: the simulation state (kernel, road, VCU, offload engine,
// sites, EdgeOSv modules) is owned by a single run loop. To serve live
// HTTP traffic while that loop advances, the loop MUST step the kernel
// through AdvanceTo (which holds the API server's run lock exclusively)
// rather than calling Engine().RunUntil directly; libvdap handlers take
// the same lock shared or exclusive per the contract documented on
// libvdap.Server. The purely observational stores (telemetry registry,
// tracer, series store, flight recorder, virtual clock) are internally
// synchronized and readable lock-free at any time. Replication harnesses
// that need many platforms at once build one per worker and merge
// telemetry afterwards (see internal/runner).
type Platform struct {
	cfg Config

	engine   *sim.Engine
	road     *geo.Road
	mobility geo.Mobility

	mhep     *vcu.MHEP
	dsf      *vcu.DSF
	offload  *offload.Engine
	elastic  *edgeos.ElasticManager
	runtime  *edgeos.ContainerRuntime
	security *edgeos.SecurityModule
	sharing  *edgeos.DataSharing
	privacy  *edgeos.PrivacyModule
	data     *ddi.DDI
	cloud    *cloud.Cloud
	registry *libvdap.Registry
	api      *libvdap.Server
	metrics  *telemetry.Registry
	tracer   *trace.Tracer
	firewall *edgeos.Firewall
	injector *faults.Injector
	recorder *obs.Recorder
	series   *obs.SeriesStore
	sampler  *obs.Sampler

	stopCollect func()
	stopSample  func()
}

// New assembles a platform.
func New(cfg Config) (*Platform, error) {
	if cfg.RoadLengthM <= 0 {
		return nil, fmt.Errorf("core: road length must be positive")
	}
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("core: DataDir is required")
	}
	if len(cfg.Secret) < 16 {
		return nil, fmt.Errorf("core: Secret must be at least 16 bytes")
	}
	if cfg.Policy == nil {
		cfg.Policy = vcu.GreedyEFT{}
	}
	if cfg.Objective == 0 {
		cfg.Objective = edgeos.MinLatency
	}
	if cfg.PseudonymRotation == 0 {
		cfg.PseudonymRotation = 10 * time.Minute
	}

	engine := sim.NewEngine(cfg.Seed)

	road, err := geo.NewRoad(cfg.RoadLengthM)
	if err != nil {
		return nil, err
	}
	if cfg.BaseStations > 0 {
		road.PlaceStations(cfg.BaseStations, geo.BaseStation, cfg.BaseStationCoverageM, 0, "bs")
	}
	if cfg.RSUs > 0 {
		road.PlaceStations(cfg.RSUs, geo.RSU, cfg.RSUCoverageM, 0, "rsu")
	}
	mobility := geo.Mobility{Road: road, SpeedMS: geo.MPH(cfg.SpeedMPH)}

	mhep, err := vcu.DefaultVCU()
	if err != nil {
		return nil, err
	}
	dsf, err := vcu.NewDSF(mhep, cfg.Policy)
	if err != nil {
		return nil, err
	}

	var sites []*xedge.Site
	rsuSites, err := xedge.PlaceAlongRoad(road)
	if err != nil {
		return nil, err
	}
	sites = append(sites, rsuSites...)
	cl, err := cloud.New()
	if err != nil {
		return nil, err
	}
	sites = append(sites, cl.Site())
	for i := 0; i < cfg.NeighborVehicles; i++ {
		n, err := xedge.NewNeighborVehicle(fmt.Sprintf("neighbor-%d", i))
		if err != nil {
			return nil, err
		}
		sites = append(sites, n)
	}

	eng, err := offload.NewEngine(dsf, mobility, sites)
	if err != nil {
		return nil, err
	}
	elastic, err := edgeos.NewElasticManager(eng, cfg.Objective)
	if err != nil {
		return nil, err
	}
	runtime := edgeos.NewContainerRuntime()
	security, err := edgeos.NewSecurityModule(runtime, elastic)
	if err != nil {
		return nil, err
	}
	sharing, err := edgeos.NewDataSharing(cfg.Secret, 64)
	if err != nil {
		return nil, err
	}
	privacy, err := edgeos.NewPrivacyModule(cfg.Secret, cfg.PseudonymRotation, 100)
	if err != nil {
		return nil, err
	}
	data, err := ddi.New(ddi.Options{Dir: cfg.DataDir, Mobility: mobility}, engine.RNG().Fork())
	if err != nil {
		return nil, err
	}
	registry := libvdap.NewRegistry()
	if err := libvdap.DefaultCommonLibrary(registry); err != nil {
		return nil, err
	}
	api, err := libvdap.NewServer(registry, mhep, data, sharing, engine.Now)
	if err != nil {
		return nil, err
	}
	api.AttachElastic(elastic)

	metrics := telemetry.NewRegistry()
	if cfg.MetricsReservoir > 0 {
		metrics.EnableReservoir(cfg.MetricsReservoir, cfg.Seed)
	}
	tracer := trace.New(engine.Now)
	tracer.SetSpanLimit(cfg.TraceCapacity)
	dsf.Instrument(tracer, metrics)
	eng.Instrument(tracer, metrics)
	elastic.Instrument(tracer, metrics)
	data.Instrument(tracer, metrics)
	api.AttachTelemetry(metrics)
	api.AttachTracer(tracer)

	// Flight recorder and series store: the recorder must be installed
	// before any traffic so lazily-created circuit breakers pick it up.
	recorder := obs.NewRecorder(0)
	series := obs.NewSeriesStore(0)
	eng.SetRecorder(recorder)
	data.SetRecorder(recorder)
	api.AttachSeries(series)
	api.AttachEvents(recorder)

	if cfg.Resilience != nil {
		pol := *cfg.Resilience
		eng.SetResilience(&pol)
	}
	var injector *faults.Injector
	if cfg.Faults != nil {
		plan, err := faults.NewPlan(*cfg.Faults, engine.RNG().Fork(), sites)
		if err != nil {
			return nil, err
		}
		injector, err = faults.NewInjector(plan)
		if err != nil {
			return nil, err
		}
		injector.Instrument(tracer, metrics)
		injector.SetRecorder(recorder)
		injector.Attach()
		if err := injector.Schedule(engine); err != nil {
			return nil, err
		}
		eng.SetPathAdjuster(injector.AdjustPath)
	}

	return &Platform{
		cfg:      cfg,
		engine:   engine,
		road:     road,
		mobility: mobility,
		mhep:     mhep,
		dsf:      dsf,
		offload:  eng,
		elastic:  elastic,
		runtime:  runtime,
		security: security,
		sharing:  sharing,
		privacy:  privacy,
		data:     data,
		cloud:    cl,
		registry: registry,
		api:      api,
		metrics:  metrics,
		tracer:   tracer,
		firewall: edgeos.DefaultVehicleFirewall(),
		injector: injector,
		recorder: recorder,
		series:   series,
	}, nil
}

// Faults returns the platform's fault injector, nil when no fault plan was
// configured.
func (p *Platform) Faults() *faults.Injector { return p.injector }

// Engine returns the simulation kernel.
func (p *Platform) Engine() *sim.Engine { return p.engine }

// Road returns the world model.
func (p *Platform) Road() *geo.Road { return p.road }

// Mobility returns the vehicle's current mobility.
func (p *Platform) Mobility() geo.Mobility { return p.mobility }

// MHEP returns the VCU hardware platform.
func (p *Platform) MHEP() *vcu.MHEP { return p.mhep }

// DSF returns the scheduler.
func (p *Platform) DSF() *vcu.DSF { return p.dsf }

// Offload returns the offloading engine.
func (p *Platform) Offload() *offload.Engine { return p.offload }

// Elastic returns the EdgeOSv elastic manager.
func (p *Platform) Elastic() *edgeos.ElasticManager { return p.elastic }

// Security returns the EdgeOSv security module.
func (p *Platform) Security() *edgeos.SecurityModule { return p.security }

// Runtime returns the container runtime.
func (p *Platform) Runtime() *edgeos.ContainerRuntime { return p.runtime }

// Sharing returns the data-sharing module.
func (p *Platform) Sharing() *edgeos.DataSharing { return p.sharing }

// Privacy returns the privacy module.
func (p *Platform) Privacy() *edgeos.PrivacyModule { return p.privacy }

// DDI returns the driving-data integrator.
func (p *Platform) DDI() *ddi.DDI { return p.data }

// Cloud returns the remote tier.
func (p *Platform) Cloud() *cloud.Cloud { return p.cloud }

// Registry returns the libvdap model registry.
func (p *Platform) Registry() *libvdap.Registry { return p.registry }

// API returns the libvdap RESTful handler, ready for http.ListenAndServe.
func (p *Platform) API() http.Handler { return p.api }

// Server returns the libvdap API server itself, for serve-tier tuning
// (admission bounds, cache stats) and its Advance run lock.
func (p *Platform) Server() *libvdap.Server { return p.api }

// AdvanceTo advances the simulation kernel to virtual time t under the API
// server's exclusive run lock. This is the only safe way to step a
// platform that is concurrently serving HTTP traffic; see the Platform
// concurrency note.
func (p *Platform) AdvanceTo(t time.Duration) error {
	return p.api.Advance(func() error {
		if t <= p.engine.Now() {
			return nil
		}
		return p.engine.RunUntil(t)
	})
}

// SetSpeedMPH changes the vehicle's cruise speed, propagating to the
// offloading engine's network-degradation model.
func (p *Platform) SetSpeedMPH(mph float64) {
	p.mobility.SpeedMS = geo.MPH(mph)
	p.offload.SetMobility(p.mobility)
}

// InstallService registers a service with the Security module using
// default container limits scaled by priority.
func (p *Platform) InstallService(s *edgeos.Service) error {
	shares := 100 * int(s.Priority)
	return p.security.Install(s, shares, 2048)
}

// InvokeService runs one invocation of a service at the current virtual
// time and advances the clock past its completion.
func (p *Platform) InvokeService(name string) (edgeos.InvocationResult, error) {
	res, err := p.elastic.Invoke(name, p.engine.Now())
	if err != nil {
		return res, err
	}
	if res.HungUp {
		p.metrics.Add("service."+name+".hangups", 1)
		return res, nil
	}
	p.metrics.Add("service."+name+".invocations", 1)
	p.metrics.ObserveDuration("service."+name+".latency_ms", res.Latency)
	p.metrics.Add("service."+name+".energy_j", res.EnergyJ)
	p.metrics.Add("dest."+res.Dest+".invocations", 1)
	if res.Completed > p.engine.Now() {
		if err := p.engine.RunUntil(res.Completed); err != nil {
			return res, err
		}
	}
	return res, nil
}

// Metrics exposes the platform's telemetry registry.
func (p *Platform) Metrics() *telemetry.Registry { return p.metrics }

// Tracer exposes the platform's span recorder; every subsystem on the
// request path reports into it in virtual time.
func (p *Platform) Tracer() *trace.Tracer { return p.tracer }

// Firewall returns the vehicle's default-deny inbound firewall.
func (p *Platform) Firewall() *edgeos.Firewall { return p.firewall }

// AdmitFlow evaluates an inbound connection attempt against the firewall
// and records the outcome in telemetry.
func (p *Platform) AdmitFlow(f edgeos.Flow) (edgeos.Verdict, string) {
	v, rule := p.firewall.Evaluate(f)
	p.metrics.Add("firewall."+v.String(), 1)
	return v, rule
}

// StartCollection begins periodic DDI collection every interval of
// virtual time.
func (p *Platform) StartCollection(interval time.Duration) error {
	if p.stopCollect != nil {
		return fmt.Errorf("core: collection already running")
	}
	stop, err := p.engine.Every(interval, func() {
		// Collect reports ddi.collections / ddi.records_collected itself.
		if _, err := p.data.Collect(p.engine.Now()); err != nil {
			// Collection failures should not kill the simulation; the
			// store surfaces them on the next explicit access.
			p.metrics.Add("ddi.collect_errors", 1)
		}
	})
	if err != nil {
		return err
	}
	p.stopCollect = stop
	return nil
}

// FlightRecorder returns the platform's structured event ring.
func (p *Platform) FlightRecorder() *obs.Recorder { return p.recorder }

// Series returns the platform's metric time-series store.
func (p *Platform) Series() *obs.SeriesStore { return p.series }

// StartSampling begins snapshotting every registered metric into the
// series store at the given virtual-time interval (non-positive means
// obs.DefaultSampleInterval).
func (p *Platform) StartSampling(interval time.Duration) error {
	if p.stopSample != nil {
		return fmt.Errorf("core: sampling already running")
	}
	sp := obs.NewSampler(p.series, interval)
	sp.Watch(p.metrics)
	stop, err := sp.Start(p.engine)
	if err != nil {
		return err
	}
	p.sampler = sp
	p.stopSample = stop
	return nil
}

// StopSampling halts periodic metric sampling.
func (p *Platform) StopSampling() {
	if p.stopSample != nil {
		p.stopSample()
		p.stopSample = nil
		p.sampler = nil
	}
}

// StopCollection halts periodic collection.
func (p *Platform) StopCollection() {
	if p.stopCollect != nil {
		p.stopCollect()
		p.stopCollect = nil
	}
}

// MigrateOldData ships DDI records older than `before` to the cloud data
// server under the vehicle's current pseudonym.
func (p *Platform) MigrateOldData(before time.Duration) (int, time.Duration, error) {
	lte := p.cloud.Site().Access()
	return p.data.MigrateToCloud(
		p.cloud.Data(),
		p.privacy.Pseudonym(p.engine.Now()),
		before,
		func(bytes float64) (time.Duration, error) {
			return cloud.MigrationCost(lte, bytes)
		},
	)
}

// Report renders a human-readable scenario summary: virtual time, device
// utilization, per-service statistics, DDI activity, and the raw metrics.
func (p *Platform) Report() string {
	var b strings.Builder
	now := p.engine.Now()
	fmt.Fprintf(&b, "== OpenVDAP platform report @ t=%v ==\n", now)
	fmt.Fprintf(&b, "vehicle position %.0f m, speed %.1f m/s\n",
		p.mobility.PositionAt(now).X, p.mobility.SpeedMS)

	horizon := now
	if horizon <= 0 {
		horizon = time.Second
	}
	b.WriteString("\n-- VCU devices --\n")
	for _, prof := range p.mhep.Profiles(now, horizon) {
		fmt.Fprintf(&b, "%-18s %-6s util=%5.1f%% online=%v\n",
			prof.Name, prof.Kind, prof.Utilization*100, prof.Online)
	}

	b.WriteString("\n-- services --\n")
	for _, s := range p.elastic.Services() {
		st, err := p.elastic.Stats(s.Name)
		if err != nil {
			continue
		}
		avg := time.Duration(0)
		if n := st.Invocations - st.HangUps; n > 0 {
			avg = st.TotalLatency / time.Duration(n)
		}
		fmt.Fprintf(&b, "%-24s prio=%d state=%-8v runs=%-4d hangups=%-3d avg=%v energy=%.1fJ pipelines=%v\n",
			s.Name, s.Priority, s.State(), st.Invocations, st.HangUps,
			avg.Round(time.Millisecond), st.TotalEnergyJ, st.PipelineUse)
	}

	fwAllowed, fwDenied := p.firewall.Stats()
	fmt.Fprintf(&b, "\n-- firewall --\nallowed=%d denied=%d\n", fwAllowed, fwDenied)

	ups, downs, hitRate := p.data.Stats()
	fmt.Fprintf(&b, "\n-- DDI --\nrecords=%d uploads=%d downloads=%d cache-hit=%.2f\n",
		p.data.Store().Count(), ups, downs, hitRate)
	fmt.Fprintf(&b, "cloud archive: %d records, %d bytes\n",
		p.cloud.Data().Count(), p.cloud.Data().Bytes())

	if m := p.metrics.Render(); m != "" {
		b.WriteString("\n-- metrics --\n")
		b.WriteString(m)
	}
	return b.String()
}

// Close releases platform resources (the DDI disk tier).
func (p *Platform) Close() error {
	p.StopCollection()
	p.StopSampling()
	return p.data.Close()
}

package core

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestServeConcurrentWithTickLoop is the PR's -race acceptance test: a
// platform advancing on a tick loop (via AdvanceTo, the run-lock path)
// while 64 parallel clients hammer every handler class — lock-free
// observability reads, shared-lock simulation reads, and exclusive-lock
// mutations. Before the run-lock contract, vdapd's tick loop mutated the
// platform while handlers read it; `go test -race` on this test was the
// reproducer.
func TestServeConcurrentWithTickLoop(t *testing.T) {
	cfg := DefaultConfig(t.TempDir())
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.StartCollection(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := p.StartSampling(0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p.API())
	defer ts.Close()

	const (
		clients  = 64
		reqEach  = 20
		tickStep = 20 * time.Millisecond
	)

	stop := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if err := p.AdvanceTo(p.Engine().Now() + tickStep); err != nil {
					t.Errorf("AdvanceTo: %v", err)
					return
				}
			}
		}
	}()

	paths := []string{
		// Lock-free observability and cached snapshots.
		"/api/v1/status",
		"/v1/metrics",
		"/v1/metrics/series",
		"/v1/events",
		"/v1/trace",
		"/v1/stream?frames=1",
		// Shared-lock simulation reads.
		"/api/v1/resources",
		"/api/v1/models",
		"/api/v1/sharing/topics",
		"/api/v1/services",
		// Exclusive-lock simulation mutations.
		"/api/v1/data/query?source=camera&from=0&to=1000",
	}
	client := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: clients},
		Timeout:   30 * time.Second,
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < reqEach; i++ {
				path := paths[(id+i)%len(paths)]
				var resp *http.Response
				var err error
				if i%7 == 3 {
					// An exclusive-lock write: upload one record.
					body := fmt.Sprintf(`{"source":"camera","x":%d,"y":0,"payload":"YQ=="}`, id)
					resp, err = client.Post(ts.URL+"/api/v1/data/upload", "application/json",
						bytes.NewReader([]byte(body)))
				} else {
					resp, err = client.Get(ts.URL + path)
				}
				if err != nil {
					t.Errorf("client %d: %v", id, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				// 503 is legal under overload; 5xx otherwise is not.
				if resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("client %d %s: status %d", id, path, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	tickWG.Wait()

	if got := p.Engine().Now(); got == 0 {
		t.Fatal("tick loop never advanced virtual time")
	}
	// The cached endpoints must have been exercised.
	total := int64(0)
	for _, st := range p.Server().CacheStats() {
		total += st.Hits + st.Misses
	}
	if total == 0 {
		t.Fatal("response caches never consulted")
	}
}

package core

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestShutdownUnderConcurrentLoad is the graceful-lifecycle -race test:
// Server.Shutdown fires while the tick loop is advancing, a client fleet
// is mid-request, and an unbounded /v1/stream consumer is attached. The
// drain contract under test: every admitted request finishes with a
// complete response (rejected ones get a clean 503, never a dropped
// connection), and the stream ends with a marked final frame and a clean
// EOF rather than a severed socket.
func TestShutdownUnderConcurrentLoad(t *testing.T) {
	cfg := DefaultConfig(t.TempDir())
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.StartCollection(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := p.StartSampling(0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p.API())
	defer ts.Close()

	const (
		clients  = 32
		reqEach  = 30
		tickStep = 20 * time.Millisecond
	)

	stop := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if err := p.AdvanceTo(p.Engine().Now() + tickStep); err != nil {
					t.Errorf("AdvanceTo: %v", err)
					return
				}
			}
		}
	}()

	client := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: clients + 1},
		Timeout:   30 * time.Second,
	}

	// The stream consumer attaches before the drain and reads to EOF. A
	// fast poll keeps it inside the poll select when Shutdown fires.
	var framesSeen, finalSeen atomic.Int64
	var streamErr error
	var streamWG sync.WaitGroup
	streamWG.Add(1)
	go func() {
		defer streamWG.Done()
		resp, err := client.Get(ts.URL + "/v1/stream?poll=0.005")
		if err != nil {
			streamErr = err
			return
		}
		defer resp.Body.Close()
		dec := json.NewDecoder(resp.Body)
		for {
			var f obs.Frame
			if err := dec.Decode(&f); err != nil {
				if !errors.Is(err, io.EOF) {
					streamErr = err
				}
				return
			}
			framesSeen.Add(1)
			if f.Final {
				finalSeen.Add(1)
			}
		}
	}()
	// Make sure the stream is live before the drain starts.
	deadline := time.Now().Add(5 * time.Second)
	for framesSeen.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if framesSeen.Load() == 0 {
		t.Fatal("stream consumer never received a frame")
	}

	paths := []string{
		"/api/v1/status",
		"/v1/metrics",
		"/v1/metrics/series",
		"/v1/events",
		"/api/v1/resources",
		"/api/v1/services",
	}
	var completed, drained atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < reqEach; i++ {
				resp, err := client.Get(ts.URL + paths[(id+i)%len(paths)])
				if err != nil {
					// A dropped in-flight response: the drain contract says
					// this must never happen — rejects are clean 503s.
					t.Errorf("client %d: dropped response: %v", id, err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Errorf("client %d: truncated body: %v", id, err)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusServiceUnavailable:
					drained.Add(1)
				case resp.StatusCode >= 500:
					t.Errorf("client %d: status %d", id, resp.StatusCode)
					return
				default:
					completed.Add(1)
				}
			}
		}(c)
	}

	// Fire the drain while the fleet and the stream are both mid-flight:
	// wait for a quarter of the fleet's requests to land, so plenty have
	// completed and plenty remain to observe the draining 503.
	trigger := int64(clients * reqEach / 4)
	deadline = time.Now().Add(5 * time.Second)
	for completed.Load() < trigger && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Server().Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	wg.Wait()
	streamWG.Wait()
	close(stop)
	tickWG.Wait()

	if streamErr != nil {
		t.Fatalf("stream did not end cleanly: %v", streamErr)
	}
	if finalSeen.Load() == 0 {
		t.Fatalf("stream never saw a final frame (%d frames)", framesSeen.Load())
	}
	if completed.Load() == 0 {
		t.Fatal("no request completed before the drain")
	}
	if drained.Load() == 0 {
		t.Fatal("no request observed the draining 503 — shutdown fired too late to test anything")
	}
	if got := completed.Load() + drained.Load(); got != clients*reqEach {
		t.Fatalf("accounted responses = %d, want %d", got, clients*reqEach)
	}
	// Post-drain requests keep getting clean 503s, not connection errors.
	resp, err := client.Get(ts.URL + "/api/v1/status")
	if err != nil {
		t.Fatalf("post-drain request dropped: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status = %d, want 503", resp.StatusCode)
	}
}

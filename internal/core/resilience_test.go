package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/edgeos"
	"repro/internal/faults"
	"repro/internal/offload"
	"repro/internal/tasks"
)

func chaosConfig(t *testing.T) Config {
	cfg := DefaultConfig(t.TempDir())
	cfg.Seed = 42
	pol := offload.DefaultPolicy()
	cfg.Resilience = &pol
	cfg.Faults = &faults.PlanConfig{
		Horizon:             30 * time.Second,
		MeanTimeToOutage:    3 * time.Second,
		MeanOutage:          time.Second,
		MeanTimeToDegrade:   4 * time.Second,
		MeanTimeToExecFault: 2 * time.Second,
	}
	return cfg
}

// TestPlatformFaultWiring: a platform built with a fault plan and a
// resilience policy survives a faulted run end to end — outages fire on
// the simulation kernel, the faults.* telemetry appears next to the
// offload metrics, and no invocation errors escape the resilience ladder.
func TestPlatformFaultWiring(t *testing.T) {
	p, err := New(chaosConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if p.Faults() == nil {
		t.Fatal("fault injector not exposed")
	}
	if p.Faults().Plan().EventCount() == 0 {
		t.Fatal("fault plan is empty under a dense config")
	}
	if p.Offload().Resilience() == nil {
		t.Fatal("resilience policy not installed")
	}

	svc := &edgeos.Service{
		Name:     "kidnapper-search",
		Priority: edgeos.PriorityInteractive,
		Deadline: 2 * time.Second,
		DAG:      tasks.ALPR(),
		Image:    []byte("a3"),
	}
	if err := p.InstallService(svc); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		target := time.Duration(i) * 400 * time.Millisecond
		if p.Engine().Now() < target {
			if err := p.Engine().RunUntil(target); err != nil {
				t.Fatal(err)
			}
		}
		res, err := p.InvokeService("kidnapper-search")
		if err != nil {
			t.Fatalf("invocation %d at %v: %v", i, p.Engine().Now(), err)
		}
		if !res.HungUp && res.Attempts < 1 {
			t.Fatalf("invocation %d reports no attempts: %+v", i, res)
		}
	}

	snap := p.Metrics().Snapshot()
	if snap.Counters["faults.site_down"] == 0 {
		t.Fatalf("no outages fired on the kernel: %v", snap.Counters)
	}
	if snap.Counters["edgeos.invocations"] == 0 {
		t.Fatal("no invocations recorded")
	}
	if !strings.Contains(p.Report(), "faults.site_down") {
		t.Fatal("fault telemetry missing from the platform report")
	}
}

// TestPlatformFaultPlanDeterministic: equal seeds compile byte-identical
// fault plans; different seeds diverge.
func TestPlatformFaultPlanDeterministic(t *testing.T) {
	a, err := New(chaosConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(chaosConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.Faults().Plan().Describe() != b.Faults().Plan().Describe() {
		t.Fatal("same seed produced different fault plans")
	}
	cfg := chaosConfig(t)
	cfg.Seed = 43
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if a.Faults().Plan().Describe() == c.Faults().Plan().Describe() {
		t.Fatal("different seeds produced identical fault plans")
	}
}

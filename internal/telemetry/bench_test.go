package telemetry

import (
	"testing"
	"time"
)

// BenchmarkRegistryAdd measures the classic name-keyed counter bump — the
// path every hot emitter used before interned handles existed.
func BenchmarkRegistryAdd(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Add("offload.executions", 1)
	}
}

// BenchmarkRegistryAddDynamicName measures a counter bump whose name is
// assembled per call (the `offload.execution.<kind>` pattern).
func BenchmarkRegistryAddDynamicName(b *testing.B) {
	r := NewRegistry()
	kinds := [...]string{"rsu", "cloud", "neighbor-vehicle"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Add("offload.execution."+kinds[i%3], 1)
	}
}

// BenchmarkCounterHandleAdd measures the interned-handle counter bump the
// hot emitters use: one lock-free CAS, no registry lock, no name hash.
func BenchmarkCounterHandleAdd(b *testing.B) {
	r := NewRegistry()
	c := r.CounterHandle("offload.executions")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramHandleObserve measures the interned-handle histogram
// sample: only the histogram's own lock is taken.
func BenchmarkHistogramHandleObserve(b *testing.B) {
	r := NewRegistry()
	r.EnableReservoir(512, 1)
	h := r.HistogramHandle("offload.total_ms")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 97))
	}
}

// BenchmarkRegistryObserve measures a name-keyed histogram sample.
func BenchmarkRegistryObserve(b *testing.B) {
	r := NewRegistry()
	r.EnableReservoir(512, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Observe("offload.total_ms", float64(i%97))
	}
}

// BenchmarkRegistryObserveDuration measures the duration-sample wrapper.
func BenchmarkRegistryObserveDuration(b *testing.B) {
	r := NewRegistry()
	r.EnableReservoir(512, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ObserveDuration("vcu.task_exec_ms", time.Duration(i%977)*time.Microsecond)
	}
}
